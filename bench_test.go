package repro

// One testing.B benchmark per table/figure of the paper's evaluation. Each
// benchmark exercises exactly the code path the corresponding spgemm-bench
// experiment measures, at a size that completes quickly under
// `go test -bench=. -benchmem`; the spgemm-bench CLI runs the full sweeps.

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matrix"
	"repro/internal/memmodel"
	"repro/internal/mempool"
	"repro/internal/sched"
	"repro/internal/semiring"
	"repro/internal/spgemm"
)

// fixtures are generated once and shared across benchmarks.
var fixtures struct {
	once     sync.Once
	er       *matrix.CSR // ER scale 10, ef 16
	g500     *matrix.CSR // G500 scale 10, ef 16
	g500u    *matrix.CSR // unsorted variant
	tall     *matrix.CSR // tall-skinny from g500
	proxyLo  *matrix.CSR // low-CR proxy (patents_main)
	proxyHi  *matrix.CSR // high-CR proxy (cant)
	triangle *graph.TriangleResult
}

func fx(b *testing.B) *struct {
	once     sync.Once
	er       *matrix.CSR
	g500     *matrix.CSR
	g500u    *matrix.CSR
	tall     *matrix.CSR
	proxyLo  *matrix.CSR
	proxyHi  *matrix.CSR
	triangle *graph.TriangleResult
} {
	fixtures.once.Do(func() {
		rng := rand.New(rand.NewSource(20180618))
		fixtures.er = gen.ER(10, 16, rng)
		fixtures.g500 = gen.RMAT(10, 16, gen.G500Params, rng)
		fixtures.g500u = gen.Unsorted(fixtures.g500, rng)
		fixtures.tall = gen.TallSkinny(fixtures.g500, 6, rng)
		fixtures.proxyLo = gen.Proxy(*gen.ProfileByName("patents_main"), 1<<12, rng)
		fixtures.proxyHi = gen.Proxy(*gen.ProfileByName("cant"), 1<<11, rng)
		tri, err := graph.PrepareTriangles(fixtures.g500)
		if err != nil {
			panic(err)
		}
		fixtures.triangle = tri
	})
	return &fixtures
}

// reportMFLOPS attaches the paper's metric to a benchmark.
func reportMFLOPS(b *testing.B, a, rhs *matrix.CSR) {
	flop, _ := matrix.Flop(a, rhs)
	b.ReportMetric(2*float64(flop)*float64(b.N)/b.Elapsed().Seconds()/1e6, "MFLOPS")
}

// --- Figure 2: scheduling cost -------------------------------------------

func BenchmarkFig02Scheduling(b *testing.B) {
	for _, s := range []sched.Schedule{sched.Static, sched.Dynamic, sched.Guided} {
		b.Run(s.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sched.ParallelFor(0, 1<<15, s, 1, func(w, lo, hi int) {})
			}
		})
	}
}

// --- Figure 4: allocation schemes -----------------------------------------

func BenchmarkFig04Alloc(b *testing.B) {
	const bytes = 64 << 20
	b.Run("single", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mempool.MeasureSingle(bytes)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mempool.MeasureParallel(bytes, sched.DefaultWorkers())
		}
	})
}

// --- Figure 5: stanza bandwidth -------------------------------------------

func BenchmarkFig05Stanza(b *testing.B) {
	for _, stanza := range []int{8, 128, 4096} {
		b.Run(fmt.Sprintf("stanza=%dB", stanza), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				memmodel.MeasureStanzaBandwidth(1<<22, []int{stanza}, time.Millisecond)
			}
		})
	}
}

// --- Figure 9: heap scheduling variants -----------------------------------

func BenchmarkFig09HeapSched(b *testing.B) {
	f := fx(b)
	for _, v := range []spgemm.HeapVariant{
		spgemm.HeapStatic, spgemm.HeapDynamic, spgemm.HeapGuided,
		spgemm.HeapBalancedSingle, spgemm.HeapBalancedParallel,
	} {
		b.Run(v.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := spgemm.Multiply(f.g500, f.g500, &spgemm.Options{Algorithm: spgemm.AlgHeap, HeapVariant: v}); err != nil {
					b.Fatal(err)
				}
			}
			reportMFLOPS(b, f.g500, f.g500)
		})
	}
}

// --- Figure 10: MCDRAM model ----------------------------------------------

func BenchmarkFig10MCDRAM(b *testing.B) {
	f := fx(b)
	ddr := memmodel.DefaultDDR
	mc := memmodel.MCDRAMFrom(ddr)
	b.Run("collect+model", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			st := spgemm.CollectAccessStats(f.g500, f.g500, 0)
			_ = memmodel.ModeledSpeedup(st, ddr, mc, memmodel.StanzaReads)
			_ = memmodel.ModeledSpeedup(st, ddr, mc, memmodel.FineGrained)
		}
	})
}

// --- Figures 11/12: A² across algorithms (density/size scaling) -----------

func benchSquare(b *testing.B, a *matrix.CSR, alg spgemm.Algorithm, unsorted bool) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := spgemm.Multiply(a, a, &spgemm.Options{Algorithm: alg, Unsorted: unsorted}); err != nil {
			b.Fatal(err)
		}
	}
	reportMFLOPS(b, a, a)
}

func BenchmarkFig11Density(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, ef := range []int{4, 16} {
		a := gen.RMAT(10, ef, gen.G500Params, rng)
		for _, alg := range []spgemm.Algorithm{spgemm.AlgMKL, spgemm.AlgHeap, spgemm.AlgHash, spgemm.AlgHashVec} {
			b.Run(fmt.Sprintf("ef=%d/%v", ef, alg), func(b *testing.B) { benchSquare(b, a, alg, false) })
		}
	}
}

func BenchmarkFig12Scale(b *testing.B) {
	f := fx(b)
	for _, tc := range []struct {
		name string
		m    *matrix.CSR
	}{{"ER", f.er}, {"G500", f.g500}} {
		for _, alg := range []spgemm.Algorithm{spgemm.AlgMKL, spgemm.AlgHeap, spgemm.AlgHash, spgemm.AlgHashVec} {
			b.Run(fmt.Sprintf("%s/%v/sorted", tc.name, alg), func(b *testing.B) { benchSquare(b, tc.m, alg, false) })
		}
	}
	// The unsorted track (permuted inputs, unsorted output).
	for _, alg := range []spgemm.Algorithm{spgemm.AlgMKL, spgemm.AlgMKLInspector, spgemm.AlgKokkos, spgemm.AlgHash, spgemm.AlgHashVec} {
		b.Run(fmt.Sprintf("G500/%v/unsorted", alg), func(b *testing.B) { benchSquare(b, f.g500u, alg, true) })
	}
}

// --- Figure 13: thread scaling --------------------------------------------

func BenchmarkFig13Threads(b *testing.B) {
	f := fx(b)
	for _, th := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("hash/threads=%d", th), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := spgemm.Multiply(f.g500, f.g500, &spgemm.Options{Algorithm: spgemm.AlgHash, Workers: th}); err != nil {
					b.Fatal(err)
				}
			}
			reportMFLOPS(b, f.g500, f.g500)
		})
	}
}

// --- Figures 14/15 and Table 2: SuiteSparse proxies -----------------------

func BenchmarkFig14Suite(b *testing.B) {
	f := fx(b)
	for _, tc := range []struct {
		name string
		m    *matrix.CSR
	}{{"lowCR=patents_main", f.proxyLo}, {"highCR=cant", f.proxyHi}} {
		for _, alg := range []spgemm.Algorithm{spgemm.AlgMKL, spgemm.AlgHeap, spgemm.AlgHash, spgemm.AlgHashVec} {
			b.Run(fmt.Sprintf("%s/%v", tc.name, alg), func(b *testing.B) { benchSquare(b, tc.m, alg, false) })
		}
	}
}

// --- Figure 16: square × tall-skinny --------------------------------------

func BenchmarkFig16TallSkinny(b *testing.B) {
	f := fx(b)
	for _, alg := range []spgemm.Algorithm{spgemm.AlgHeap, spgemm.AlgHash, spgemm.AlgHashVec} {
		b.Run(alg.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := spgemm.Multiply(f.g500, f.tall, &spgemm.Options{Algorithm: alg}); err != nil {
					b.Fatal(err)
				}
			}
			reportMFLOPS(b, f.g500, f.tall)
		})
	}
}

// --- Figure 17: triangle counting L·U --------------------------------------

func BenchmarkFig17Triangle(b *testing.B) {
	f := fx(b)
	for _, alg := range []spgemm.Algorithm{spgemm.AlgMKL, spgemm.AlgHeap, spgemm.AlgHash, spgemm.AlgHashVec} {
		b.Run(alg.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := graph.CountFromLU(f.triangle.L, f.triangle.U, &spgemm.Options{Algorithm: alg}); err != nil {
					b.Fatal(err)
				}
			}
			reportMFLOPS(b, f.triangle.L, f.triangle.U)
		})
	}
}

// --- Generic value/semiring layer: narrow-value bandwidth ------------------

// The monomorphized kernels run unchanged over narrower value types, cutting
// value-array traffic 2x (float32) and 8x (bool) against float64.
// ReportAllocs attaches B/op so the footprint shift is visible without
// -benchmem; the f64 subbenchmarks are the in-place baseline.

func BenchmarkGenericF32Square(b *testing.B) {
	f := fx(b)
	a32 := matrix.MapValues(f.g500, func(v float64) float32 { return float32(v) })
	for _, alg := range []spgemm.Algorithm{spgemm.AlgHash, spgemm.AlgHashVec} {
		b.Run(fmt.Sprintf("%v/f64", alg), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := spgemm.MultiplyRing(semiring.PlusTimesF64{}, f.g500, f.g500, &spgemm.OptionsG[float64]{Algorithm: alg}); err != nil {
					b.Fatal(err)
				}
			}
			reportMFLOPS(b, f.g500, f.g500)
		})
		b.Run(fmt.Sprintf("%v/f32", alg), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := spgemm.MultiplyRing(semiring.PlusTimesF32{}, a32, a32, &spgemm.OptionsG[float32]{Algorithm: alg}); err != nil {
					b.Fatal(err)
				}
			}
			// Same structure as the f64 track, so the flop count carries over.
			reportMFLOPS(b, f.g500, f.g500)
		})
	}
}

func BenchmarkGenericBoolMSBFS(b *testing.B) {
	f := fx(b)
	sources := []int32{0, 7, 42, 99, 512, 777, 900, 1013}
	for _, alg := range []spgemm.Algorithm{spgemm.AlgHash, spgemm.AlgHashVec} {
		b.Run(alg.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := graph.MSBFS(f.g500, sources, &spgemm.Options{Algorithm: alg}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Section 5.4.4: sorted vs unsorted ------------------------------------

func BenchmarkUnsortedSpeedup(b *testing.B) {
	f := fx(b)
	b.Run("hash/sorted", func(b *testing.B) { benchSquare(b, f.g500, spgemm.AlgHash, false) })
	b.Run("hash/unsorted", func(b *testing.B) { benchSquare(b, f.g500u, spgemm.AlgHash, true) })
}

// --- Workspace reuse (iterative applications like MCL) ---------------------

func BenchmarkWorkspaceReuse(b *testing.B) {
	f := fx(b)
	b.Run("fresh-scratch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := spgemm.Multiply(f.g500, f.g500, &spgemm.Options{Algorithm: spgemm.AlgHash}); err != nil {
				b.Fatal(err)
			}
		}
		reportMFLOPS(b, f.g500, f.g500)
	})
	b.Run("workspace", func(b *testing.B) {
		ws := spgemm.NewWorkspace(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ws.Multiply(f.g500, f.g500, false); err != nil {
				b.Fatal(err)
			}
		}
		reportMFLOPS(b, f.g500, f.g500)
	})
}

// --- Table 4: the recipe's auto-selection overhead -------------------------

func BenchmarkTable4AutoSelect(b *testing.B) {
	f := fx(b)
	b.Run("recommend", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = spgemm.Recommend(f.g500, f.g500, true, spgemm.UseSquare)
		}
	})
	b.Run("auto-multiply", func(b *testing.B) { benchSquare(b, f.g500, spgemm.AlgAuto, false) })
}
