// Command spgemm-bench regenerates the tables and figures of Nagasaka et
// al., "High-Performance Sparse Matrix-Matrix Products on Intel KNL and
// Multicore Architectures" (ICPP 2018).
//
// Usage:
//
//	spgemm-bench -list
//	spgemm-bench -exp fig11
//	spgemm-bench -exp all -preset quick -csv
//	spgemm-bench -breakdown -preset tiny
//	spgemm-bench -snapshot BENCH_spgemm.json
//	spgemm-bench -compare BENCH_spgemm.json -compare-tolerance 1.0
//
// Presets: tiny (seconds, CI-sized), quick (default, minutes), full
// (paper-scale inputs; hours and tens of GiB for the largest proxies).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/obs"
)

func main() {
	var (
		exp       = flag.String("exp", "", "experiment id (fig2..fig17, table2, table4, hmean, all)")
		preset    = flag.String("preset", "quick", "workload preset: tiny|quick|full")
		workers   = flag.Int("workers", 0, "worker count (0 = GOMAXPROCS)")
		seed      = flag.Int64("seed", 0, "generator seed (0 = default)")
		reps      = flag.Int("reps", 0, "timing repetitions (0 = preset default)")
		csv       = flag.Bool("csv", false, "emit CSV instead of aligned columns")
		list      = flag.Bool("list", false, "list experiments and exit")
		brk       = flag.Bool("breakdown", false, "print the per-phase ExecStats breakdown (shortcut for -exp fig8)")
		snap      = flag.String("snapshot", "", "run the reuse experiment and write a JSON snapshot to this path")
		compare   = flag.String("compare", "", "re-run the reuse experiment at a snapshot's recorded config and gate against it (exit 1 on regression)")
		cmpTol    = flag.Float64("compare-tolerance", 0.5, "allowed fractional slowdown vs the -compare baseline (0.5 = 1.5x)")
		tracePath = flag.String("trace", "", "write a Chrome trace-event JSON of phases and pool regions to this path (load in Perfetto)")
		debugAddr = flag.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	if *debugAddr != "" {
		srv, err := obs.StartDebugServer(*debugAddr, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "spgemm-bench:", err)
			os.Exit(1)
		}
		// Graceful shutdown: srv.Close() would truncate a /metrics scrape
		// racing process exit; drain in-flight requests briefly instead.
		defer srv.ShutdownTimeout(2 * time.Second)
		fmt.Fprintf(os.Stderr, "spgemm-bench: debug server on http://%s\n", srv.Addr())
	}
	if *tracePath != "" {
		obs.SetActive(obs.NewTracer())
		defer writeTrace(*tracePath)
	}

	if *brk {
		if *exp != "" && *exp != "fig8" {
			fmt.Fprintln(os.Stderr, "spgemm-bench: -breakdown conflicts with -exp", *exp)
			os.Exit(2)
		}
		*exp = "fig8"
	}
	if *list {
		for _, e := range bench.Registry() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	if *exp == "" && *snap == "" && *compare == "" {
		fmt.Fprintln(os.Stderr, "spgemm-bench: -exp is required (or -list, -snapshot, -compare); try -exp all")
		flag.Usage()
		os.Exit(2)
	}
	if *compare != "" {
		base, err := bench.ReadSnapshot(*compare)
		if err != nil {
			fmt.Fprintln(os.Stderr, "spgemm-bench:", err)
			os.Exit(1)
		}
		regressions, err := bench.CompareSnapshots(base, *cmpTol, os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, "spgemm-bench:", err)
			os.Exit(1)
		}
		if len(regressions) > 0 {
			for _, r := range regressions {
				fmt.Fprintln(os.Stderr, "spgemm-bench: regression:", r)
			}
			os.Exit(1)
		}
		fmt.Println("bench regression gate OK")
		return
	}
	p, err := bench.ParsePreset(*preset)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg := bench.Config{Preset: p, Workers: *workers, Seed: *seed, Reps: *reps, CSV: *csv}
	if *snap != "" {
		s, err := bench.ReuseSnapshot(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "spgemm-bench:", err)
			os.Exit(1)
		}
		if err := bench.WriteSnapshot(*snap, s); err != nil {
			fmt.Fprintln(os.Stderr, "spgemm-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *snap)
		if *exp == "" {
			return
		}
	}
	bench.Environment(os.Stdout)
	if err := bench.Run(*exp, cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "spgemm-bench:", err)
		os.Exit(1)
	}
}

// writeTrace exports the active tracer as Chrome trace-event JSON.
func writeTrace(path string) {
	tr := obs.Active()
	if tr == nil {
		return
	}
	obs.SetActive(nil)
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spgemm-bench:", err)
		return
	}
	defer f.Close()
	if err := tr.WriteChromeTrace(f); err != nil {
		fmt.Fprintln(os.Stderr, "spgemm-bench: write trace:", err)
		return
	}
	fmt.Fprintf(os.Stderr, "spgemm-bench: wrote trace to %s\n", path)
}
