// Command rmatgen generates the paper's synthetic workloads — R-MAT ER /
// G500 matrices and the Table 2 SuiteSparse proxies — as Matrix Market
// files.
//
// Usage:
//
//	rmatgen -scale 14 -ef 16 -pattern g500 -o g500_s14.mtx
//	rmatgen -proxy cant -maxn 65536 -o cant_proxy.mtx
//	rmatgen -list-proxies
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/gen"
	"repro/internal/matrix"
)

func main() {
	var (
		scale   = flag.Int("scale", 12, "matrix is 2^scale x 2^scale")
		ef      = flag.Int("ef", 16, "edge factor (average nonzeros per row)")
		pattern = flag.String("pattern", "g500", "nonzero pattern: er|g500")
		proxy   = flag.String("proxy", "", "generate a Table 2 proxy by matrix name instead")
		maxN    = flag.Int("maxn", 0, "cap proxy row count (0 = paper size)")
		seed    = flag.Int64("seed", 1, "generator seed")
		out     = flag.String("o", "", "output Matrix Market file (default stdout)")
		list    = flag.Bool("list-proxies", false, "list Table 2 proxy names and exit")
	)
	flag.Parse()

	if *list {
		for _, p := range gen.Table2 {
			fmt.Printf("%-18s n=%-9d nnz=%-11d CR=%.2f\n", p.Name, p.N, p.NNZ, p.CompressionRatio())
		}
		return
	}

	rng := rand.New(rand.NewSource(*seed))
	var m *matrix.CSR
	switch {
	case *proxy != "":
		p := gen.ProfileByName(*proxy)
		if p == nil {
			fatalf("unknown proxy %q (see -list-proxies)", *proxy)
		}
		m = gen.Proxy(*p, *maxN, rng)
	case *pattern == "er":
		m = gen.ER(*scale, *ef, rng)
	case *pattern == "g500":
		m = gen.RMAT(*scale, *ef, gen.G500Params, rng)
	default:
		fatalf("unknown pattern %q (want er|g500)", *pattern)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("create %s: %v", *out, err)
		}
		defer f.Close()
		w = f
	}
	if err := matrix.WriteMatrixMarket(w, m); err != nil {
		fatalf("write: %v", err)
	}
	fmt.Fprintf(os.Stderr, "generated %v\n", m)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rmatgen: "+format+"\n", args...)
	os.Exit(1)
}
