package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The vet smoke tests drive runVetUnit in-process with hand-built unit
// configs, exactly as `go vet -vettool=spgemm-lint` would: a JSON .cfg names
// the unit's files and the vetx facts output, the tool exits 0/2 for
// clean/diagnosed units, and the vetx file must exist afterwards in every
// case (its absence makes the go command treat the run as a tool crash).

// writeVetUnit lays out a one-file package plus its .cfg in a temp dir and
// returns the cfg path and the vetx path the unit must produce.
func writeVetUnit(t *testing.T, src string, mutate func(*vetConfig)) (cfgPath, vetxPath string) {
	t.Helper()
	dir := t.TempDir()
	goFile := filepath.Join(dir, "unit.go")
	if err := os.WriteFile(goFile, []byte(src), 0o666); err != nil {
		t.Fatal(err)
	}
	vetxPath = filepath.Join(dir, "unit.vetx")
	cfg := vetConfig{
		ID:         "unitpkg",
		Dir:        dir,
		ImportPath: "example.test/unitpkg",
		GoFiles:    []string{goFile},
		VetxOutput: vetxPath,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgPath = filepath.Join(dir, "vet.cfg")
	if err := os.WriteFile(cfgPath, data, 0o666); err != nil {
		t.Fatal(err)
	}
	return cfgPath, vetxPath
}

// captureStderr runs f with os.Stderr redirected to a file and returns what
// was written (runVetUnit prints diagnostics straight to stderr, per the vet
// protocol).
func captureStderr(t *testing.T, f func()) string {
	t.Helper()
	tmp, err := os.CreateTemp(t.TempDir(), "stderr")
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stderr
	os.Stderr = tmp
	defer func() {
		os.Stderr = old
		tmp.Close()
	}()
	f()
	data, err := os.ReadFile(tmp.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestRunVetUnitReportsHotpathDefer(t *testing.T) {
	const src = `package unitpkg

//spgemm:hotpath
func drain(xs []int32) (n int) {
	defer cleanup()
	for range xs {
		n++
	}
	return n
}

func cleanup() {}
`
	cfgPath, vetxPath := writeVetUnit(t, src, nil)
	var code int
	out := captureStderr(t, func() { code = runVetUnit(cfgPath) })
	if code != 2 {
		t.Fatalf("runVetUnit = %d, want 2 (diagnostics reported); stderr:\n%s", code, out)
	}
	if !strings.Contains(out, "deferhot") || !strings.Contains(out, "defer in hotpath function") {
		t.Errorf("stderr missing deferhot diagnostic:\n%s", out)
	}
	if _, err := os.Stat(vetxPath); err != nil {
		t.Errorf("vetx facts file not written: %v", err)
	}
}

func TestRunVetUnitCleanPackage(t *testing.T) {
	const src = `package unitpkg

//spgemm:hotpath
func scatter(dst, idx []int32) {
	for i, s := range idx {
		dst[i] = s
	}
}
`
	cfgPath, vetxPath := writeVetUnit(t, src, nil)
	var code int
	out := captureStderr(t, func() { code = runVetUnit(cfgPath) })
	if code != 0 {
		t.Fatalf("runVetUnit = %d, want 0; stderr:\n%s", code, out)
	}
	if out != "" {
		t.Errorf("clean unit produced output:\n%s", out)
	}
	if _, err := os.Stat(vetxPath); err != nil {
		t.Errorf("vetx facts file not written: %v", err)
	}
}

func TestRunVetUnitVetxOnlySkipsAnalysis(t *testing.T) {
	// Dependency units are loaded for facts only; the tool must write the
	// vetx file and stop without even parsing the (here: broken) sources.
	cfgPath, vetxPath := writeVetUnit(t, "package unitpkg\nfunc {", func(cfg *vetConfig) {
		cfg.VetxOnly = true
	})
	var code int
	out := captureStderr(t, func() { code = runVetUnit(cfgPath) })
	if code != 0 {
		t.Fatalf("runVetUnit = %d, want 0 for VetxOnly unit; stderr:\n%s", code, out)
	}
	if _, err := os.Stat(vetxPath); err != nil {
		t.Errorf("vetx facts file not written: %v", err)
	}
}

func TestRunVetUnitSucceedOnTypecheckFailure(t *testing.T) {
	// With the go command's SucceedOnTypecheckFailure set (e.g. under
	// `go vet -e=false`), unparseable units exit 0 instead of failing the
	// build a second time.
	cfgPath, _ := writeVetUnit(t, "package unitpkg\nfunc {", func(cfg *vetConfig) {
		cfg.SucceedOnTypecheckFailure = true
	})
	var code int
	captureStderr(t, func() { code = runVetUnit(cfgPath) })
	if code != 0 {
		t.Fatalf("runVetUnit = %d, want 0 with SucceedOnTypecheckFailure", code)
	}
}

func TestRunVetUnitBadConfig(t *testing.T) {
	dir := t.TempDir()
	cfgPath := filepath.Join(dir, "vet.cfg")
	if err := os.WriteFile(cfgPath, []byte("{not json"), 0o666); err != nil {
		t.Fatal(err)
	}
	var code int
	captureStderr(t, func() { code = runVetUnit(cfgPath) })
	if code != 1 {
		t.Fatalf("runVetUnit = %d, want 1 for malformed config", code)
	}
}
