// Command spgemm-lint runs the repo's custom static analyzers over Go
// packages. It exists in three modes:
//
//	spgemm-lint ./...                 standalone: load, typecheck, analyze
//	go vet -vettool=$(which spgemm-lint) ./...
//	                                  vet mode: driven by the go command's
//	                                  unitchecker protocol (-V=full, *.cfg)
//	spgemm-lint -mode=escapes [-update]
//	                                  escape-budget mode: diff the compiler's
//	                                  -m escape report for the hot packages
//	                                  against lint/escape_allowlist.txt
//
// Diagnostics print as file:line:col: [analyzer] message, followed by the
// analyzer's fix hint. Any diagnostic makes the exit status nonzero, which
// is what CI keys off.
package main

import (
	"bufio"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/passes/hotalloc"
	"repro/internal/analysis/passes/parcapture"
	"repro/internal/analysis/passes/poolpair"
	"repro/internal/analysis/passes/spanpair"
	"repro/internal/analysis/passes/statsnil"
)

var analyzers = []*analysis.Analyzer{
	hotalloc.Analyzer,
	spanpair.Analyzer,
	poolpair.Analyzer,
	parcapture.Analyzer,
	statsnil.Analyzer,
}

func main() {
	// Vet protocol, part 1: `go vet` probes the tool's identity with -V=full
	// before handing it any work.
	if len(os.Args) == 2 && os.Args[1] == "-V=full" {
		// The go command parses the token after "buildID=" to key its cache;
		// a content hash of the executable is what x/tools' unitchecker
		// prints, and it makes `go vet` re-run the tool when it is rebuilt.
		exe, err := os.Executable()
		if err != nil {
			fmt.Fprintf(os.Stderr, "spgemm-lint: %v\n", err)
			os.Exit(1)
		}
		data, err := os.ReadFile(exe)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spgemm-lint: %v\n", err)
			os.Exit(1)
		}
		h := sha256.Sum256(data)
		fmt.Printf("spgemm-lint version devel buildID=%02x\n", string(h[:4]))
		return
	}
	// Vet protocol, part 1b: the go command also probes the tool's flag set;
	// we expose none beyond the protocol's own.
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		fmt.Println("[]")
		return
	}
	// Vet protocol, part 2: one argument naming a *.cfg JSON file describing
	// the package unit to check.
	if len(os.Args) == 2 && strings.HasSuffix(os.Args[1], ".cfg") {
		os.Exit(runVetUnit(os.Args[1]))
	}

	mode := flag.String("mode", "lint", "lint (analyze packages) or escapes (escape-budget diff)")
	update := flag.Bool("update", false, "with -mode=escapes: rewrite the allowlist instead of diffing")
	flag.Parse()

	switch *mode {
	case "lint":
		patterns := flag.Args()
		if len(patterns) == 0 {
			patterns = []string{"./..."}
		}
		os.Exit(runLint(patterns))
	case "escapes":
		os.Exit(runEscapes(*update))
	default:
		fmt.Fprintf(os.Stderr, "spgemm-lint: unknown -mode=%s\n", *mode)
		os.Exit(2)
	}
}

// ---------------------------------------------------------------------------
// Standalone mode
// ---------------------------------------------------------------------------

func runLint(patterns []string) int {
	loader := analysis.NewLoader(".")
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spgemm-lint: load: %v\n", err)
		return 2
	}
	bad := 0
	for _, lp := range pkgs {
		diags, err := analysis.RunAnalyzers(lp, loader.Fset(), analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spgemm-lint: %v\n", err)
			return 2
		}
		bad += len(diags)
		printDiags(loader.Fset(), diags)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "spgemm-lint: %d problem(s)\n", bad)
		return 1
	}
	return 0
}

// hintFor maps analyzer names to their fix hints for diagnostic output.
var hintFor = func() map[string]string {
	m := make(map[string]string, len(analyzers))
	for _, a := range analyzers {
		m[a.Name] = a.Hint
	}
	return m
}()

func printDiags(fset *token.FileSet, diags []analysis.Diagnostic) {
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", pos, d.Analyzer, d.Message)
		hint := d.Hint
		if hint == "" {
			hint = hintFor[d.Analyzer]
		}
		if hint != "" {
			fmt.Fprintf(os.Stderr, "\thint: %s\n", hint)
		}
	}
}

// ---------------------------------------------------------------------------
// Vet mode (unitchecker protocol)
// ---------------------------------------------------------------------------

// vetConfig is the subset of the go command's vet config we consume.
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetUnit checks one package unit as driven by `go vet -vettool`. The go
// command expects the vetx facts file to be written even on success, plain
// diagnostics on stderr, and exit 2 when diagnostics were reported.
func runVetUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spgemm-lint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "spgemm-lint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// Facts file first: go vet treats its absence as a tool failure.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "spgemm-lint: %v\n", err)
			return 1
		}
	}
	// Dependencies are loaded only so checkers can export facts (VetxOnly);
	// we keep no facts and our analyzers are repo-specific, so dependency and
	// standard-library units are done once the (empty) vetx file exists.
	if cfg.VetxOnly || cfg.Standard[cfg.ImportPath] {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "spgemm-lint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	// Best-effort typecheck. Vet units are checked in dependency order but we
	// do not consume the export-data map, so cross-package references resolve
	// through the compiler's export files when available and degrade to
	// partial type info otherwise — the analyzers tolerate nil/partial Info.
	tinfo := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer:                 importer.ForCompiler(fset, "gc", nil),
		Error:                    func(error) {},
		DisableUnusedImportCheck: true,
	}
	pkg, _ := conf.Check(cfg.ImportPath, fset, files, tinfo)

	lp := &analysis.LoadedPackage{
		ImportPath: cfg.ImportPath,
		Dir:        cfg.Dir,
		Files:      files,
		Pkg:        pkg,
		Info:       tinfo,
	}
	diags, err := analysis.RunAnalyzers(lp, fset, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spgemm-lint: %v\n", err)
		return 1
	}
	printDiags(fset, diags)
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// ---------------------------------------------------------------------------
// Escape-budget mode
// ---------------------------------------------------------------------------

// escapePkgs are the hot packages whose heap escapes are budgeted.
var escapePkgs = []string{
	"repro/internal/accum",
	"repro/internal/mempool",
	"repro/internal/sched",
	"repro/internal/spgemm",
}

const allowlistPath = "lint/escape_allowlist.txt"

// runEscapes compares the compiler's escape report against the checked-in
// allowlist. Entries are normalized to "file.go: message" (line numbers
// dropped, duplicates collapsed) so unrelated edits don't churn the list.
func runEscapes(update bool) int {
	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "spgemm-lint: %v\n", err)
		return 2
	}
	got, err := collectEscapes(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spgemm-lint: %v\n", err)
		return 2
	}
	listFile := filepath.Join(root, allowlistPath)
	if update {
		if err := writeAllowlist(listFile, got); err != nil {
			fmt.Fprintf(os.Stderr, "spgemm-lint: %v\n", err)
			return 2
		}
		fmt.Printf("spgemm-lint: wrote %d escape entries to %s\n", len(got), allowlistPath)
		return 0
	}
	want, err := readAllowlist(listFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spgemm-lint: %v (run with -mode=escapes -update to create it)\n", err)
		return 2
	}
	var added, removed []string
	for e := range got {
		if !want[e] {
			added = append(added, e)
		}
	}
	for e := range want {
		if !got[e] {
			removed = append(removed, e)
		}
	}
	sort.Strings(added)
	sort.Strings(removed)
	for _, e := range removed {
		fmt.Printf("spgemm-lint: escape no longer present (prune from %s): %s\n", allowlistPath, e)
	}
	if len(added) > 0 {
		for _, e := range added {
			fmt.Fprintf(os.Stderr, "spgemm-lint: NEW heap escape in hot package: %s\n", e)
		}
		fmt.Fprintf(os.Stderr,
			"spgemm-lint: %d new escape(s) exceed the budget; fix the allocation or, if intentional, re-run with -mode=escapes -update and justify in the PR\n",
			len(added))
		return 1
	}
	fmt.Printf("spgemm-lint: escape budget OK (%d allowlisted, %d observed)\n", len(want), len(got))
	return 0
}

func moduleRoot() (string, error) {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		return "", fmt.Errorf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("not inside a Go module")
	}
	return filepath.Dir(gomod), nil
}

// collectEscapes builds the hot packages with -gcflags=-m and parses the
// normalized escape entries. The go command replays cached compiler output,
// so repeated runs are cheap and deterministic.
func collectEscapes(root string) (map[string]bool, error) {
	args := []string{"build"}
	for _, p := range escapePkgs {
		args = append(args, "-gcflags="+p+"=-m")
	}
	args = append(args, escapePkgs...)
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("go build -gcflags=-m: %v\n%s", err, out)
	}
	got := map[string]bool{}
	sc := bufio.NewScanner(strings.NewReader(string(out)))
	for sc.Scan() {
		entry, ok := normalizeEscapeLine(sc.Text())
		if ok {
			got[entry] = true
		}
	}
	return got, nil
}

// normalizeEscapeLine turns "dir/file.go:12:6: x escapes to heap" into
// "dir/file.go: x escapes to heap"; non-escape diagnostics are dropped.
func normalizeEscapeLine(line string) (string, bool) {
	line = strings.TrimSpace(line)
	if !strings.Contains(line, "escapes to heap") && !strings.Contains(line, "moved to heap") {
		return "", false
	}
	// file.go:line:col: message
	parts := strings.SplitN(line, ":", 4)
	if len(parts) < 4 {
		return "", false
	}
	file := parts[0]
	msg := strings.TrimSpace(parts[3])
	if !strings.HasSuffix(file, ".go") {
		return "", false
	}
	return file + ": " + msg, true
}

func readAllowlist(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	out := map[string]bool{}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out[line] = true
	}
	return out, nil
}

func writeAllowlist(path string, entries map[string]bool) error {
	keys := make([]string, 0, len(entries))
	for k := range entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString("# Heap-escape budget for the hot packages (accum, mempool, sched, spgemm).\n")
	b.WriteString("# One normalized compiler diagnostic per line: \"file.go: message\".\n")
	b.WriteString("# Regenerate with: go run ./cmd/spgemm-lint -mode=escapes -update\n")
	b.WriteString("# CI fails when a hot-package build reports an escape not listed here.\n")
	for _, k := range keys {
		b.WriteString(k)
		b.WriteString("\n")
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
		return err
	}
	return os.WriteFile(path, []byte(b.String()), 0o666)
}
