// Command spgemm-lint runs the repo's custom static analyzers over Go
// packages. It exists in three modes:
//
//	spgemm-lint ./...                 standalone: load, typecheck, analyze
//	go vet -vettool=$(which spgemm-lint) ./...
//	                                  vet mode: driven by the go command's
//	                                  unitchecker protocol (-V=full, *.cfg)
//	spgemm-lint -mode=escapes [-update]
//	                                  escape-budget mode: diff the compiler's
//	                                  -m escape report for the hot packages
//	                                  against lint/escape_allowlist.txt
//	spgemm-lint -mode=inline [-update]
//	                                  inline budget: diff the compiler's -m=2
//	                                  inlining/devirtualization decisions for
//	                                  //spgemm:hotpath functions and ring
//	                                  methods against lint/inline_allowlist.txt,
//	                                  and require the devirtualized ring fast
//	                                  path's call sites to inline
//	spgemm-lint -mode=bce [-update]
//	                                  bounds-check budget: diff the residual
//	                                  -d=ssa/check_bce findings in hotpath
//	                                  functions against lint/bce_allowlist.txt
//
// Diagnostics print as file:line:col: [analyzer] message, followed by the
// analyzer's fix hint. Any diagnostic makes the exit status nonzero, which
// is what CI keys off.
package main

import (
	"bufio"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/compilerfb"
	"repro/internal/analysis/passes/chanown"
	"repro/internal/analysis/passes/deferhot"
	"repro/internal/analysis/passes/hotalloc"
	"repro/internal/analysis/passes/parcapture"
	"repro/internal/analysis/passes/poolpair"
	"repro/internal/analysis/passes/spanpair"
	"repro/internal/analysis/passes/statsnil"
)

var analyzers = []*analysis.Analyzer{
	hotalloc.Analyzer,
	deferhot.Analyzer,
	spanpair.Analyzer,
	poolpair.Analyzer,
	chanown.Analyzer,
	parcapture.Analyzer,
	statsnil.Analyzer,
}

func main() {
	// Vet protocol, part 1: `go vet` probes the tool's identity with -V=full
	// before handing it any work.
	if len(os.Args) == 2 && os.Args[1] == "-V=full" {
		// The go command parses the token after "buildID=" to key its cache;
		// a content hash of the executable is what x/tools' unitchecker
		// prints, and it makes `go vet` re-run the tool when it is rebuilt.
		exe, err := os.Executable()
		if err != nil {
			fmt.Fprintf(os.Stderr, "spgemm-lint: %v\n", err)
			os.Exit(1)
		}
		data, err := os.ReadFile(exe)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spgemm-lint: %v\n", err)
			os.Exit(1)
		}
		h := sha256.Sum256(data)
		fmt.Printf("spgemm-lint version devel buildID=%02x\n", string(h[:4]))
		return
	}
	// Vet protocol, part 1b: the go command also probes the tool's flag set;
	// we expose none beyond the protocol's own.
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		fmt.Println("[]")
		return
	}
	// Vet protocol, part 2: one argument naming a *.cfg JSON file describing
	// the package unit to check.
	if len(os.Args) == 2 && strings.HasSuffix(os.Args[1], ".cfg") {
		os.Exit(runVetUnit(os.Args[1]))
	}

	mode := flag.String("mode", "lint", "lint (analyze packages), escapes (escape-budget diff), inline (inlining/devirtualization budget), or bce (bounds-check budget)")
	update := flag.Bool("update", false, "with -mode=escapes/inline/bce: rewrite the allowlist instead of diffing")
	flag.Parse()

	switch *mode {
	case "lint":
		patterns := flag.Args()
		if len(patterns) == 0 {
			patterns = []string{"./..."}
		}
		os.Exit(runLint(patterns))
	case "escapes":
		os.Exit(runEscapes(*update))
	case "inline":
		os.Exit(runInline(*update))
	case "bce":
		os.Exit(runBCE(*update))
	default:
		fmt.Fprintf(os.Stderr, "spgemm-lint: unknown -mode=%s\n", *mode)
		os.Exit(2)
	}
}

// ---------------------------------------------------------------------------
// Standalone mode
// ---------------------------------------------------------------------------

func runLint(patterns []string) int {
	loader := analysis.NewLoader(".")
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spgemm-lint: load: %v\n", err)
		return 2
	}
	bad := 0
	for _, lp := range pkgs {
		diags, err := analysis.RunAnalyzers(lp, loader.Fset(), analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spgemm-lint: %v\n", err)
			return 2
		}
		bad += len(diags)
		printDiags(loader.Fset(), diags)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "spgemm-lint: %d problem(s)\n", bad)
		return 1
	}
	return 0
}

// hintFor maps analyzer names to their fix hints for diagnostic output.
var hintFor = func() map[string]string {
	m := make(map[string]string, len(analyzers))
	for _, a := range analyzers {
		m[a.Name] = a.Hint
	}
	return m
}()

func printDiags(fset *token.FileSet, diags []analysis.Diagnostic) {
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", pos, d.Analyzer, d.Message)
		hint := d.Hint
		if hint == "" {
			hint = hintFor[d.Analyzer]
		}
		if hint != "" {
			fmt.Fprintf(os.Stderr, "\thint: %s\n", hint)
		}
	}
}

// ---------------------------------------------------------------------------
// Vet mode (unitchecker protocol)
// ---------------------------------------------------------------------------

// vetConfig is the subset of the go command's vet config we consume.
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetUnit checks one package unit as driven by `go vet -vettool`. The go
// command expects the vetx facts file to be written even on success, plain
// diagnostics on stderr, and exit 2 when diagnostics were reported.
func runVetUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spgemm-lint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "spgemm-lint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// Facts file first: go vet treats its absence as a tool failure.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "spgemm-lint: %v\n", err)
			return 1
		}
	}
	// Dependencies are loaded only so checkers can export facts (VetxOnly);
	// we keep no facts and our analyzers are repo-specific, so dependency and
	// standard-library units are done once the (empty) vetx file exists.
	if cfg.VetxOnly || cfg.Standard[cfg.ImportPath] {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "spgemm-lint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	// Best-effort typecheck. Vet units are checked in dependency order but we
	// do not consume the export-data map, so cross-package references resolve
	// through the compiler's export files when available and degrade to
	// partial type info otherwise — the analyzers tolerate nil/partial Info.
	tinfo := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer:                 importer.ForCompiler(fset, "gc", nil),
		Error:                    func(error) {},
		DisableUnusedImportCheck: true,
	}
	pkg, _ := conf.Check(cfg.ImportPath, fset, files, tinfo)

	lp := &analysis.LoadedPackage{
		ImportPath: cfg.ImportPath,
		Dir:        cfg.Dir,
		Files:      files,
		Pkg:        pkg,
		Info:       tinfo,
	}
	diags, err := analysis.RunAnalyzers(lp, fset, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spgemm-lint: %v\n", err)
		return 1
	}
	printDiags(fset, diags)
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// ---------------------------------------------------------------------------
// Escape-budget mode
// ---------------------------------------------------------------------------

// escapePkgs are the hot packages whose heap escapes are budgeted.
var escapePkgs = []string{
	"repro/internal/accum",
	"repro/internal/mempool",
	"repro/internal/sched",
	"repro/internal/spgemm",
}

const allowlistPath = "lint/escape_allowlist.txt"

// runEscapes compares the compiler's escape report against the checked-in
// allowlist. Entries are normalized to "file.go: message" (line numbers
// dropped, duplicates collapsed) so unrelated edits don't churn the list.
func runEscapes(update bool) int {
	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "spgemm-lint: %v\n", err)
		return 2
	}
	got, err := collectEscapes(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spgemm-lint: %v\n", err)
		return 2
	}
	listFile := filepath.Join(root, allowlistPath)
	if update {
		if err := writeAllowlist(listFile, got); err != nil {
			fmt.Fprintf(os.Stderr, "spgemm-lint: %v\n", err)
			return 2
		}
		fmt.Printf("spgemm-lint: wrote %d escape entries to %s\n", len(got), allowlistPath)
		return 0
	}
	want, err := readAllowlist(listFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spgemm-lint: %v (run with -mode=escapes -update to create it)\n", err)
		return 2
	}
	var added, removed []string
	for e := range got {
		if !want[e] {
			added = append(added, e)
		}
	}
	for e := range want {
		if !got[e] {
			removed = append(removed, e)
		}
	}
	sort.Strings(added)
	sort.Strings(removed)
	for _, e := range removed {
		fmt.Printf("spgemm-lint: escape no longer present (prune from %s): %s\n", allowlistPath, e)
	}
	if len(added) > 0 {
		for _, e := range added {
			fmt.Fprintf(os.Stderr, "spgemm-lint: NEW heap escape in hot package: %s\n", e)
		}
		fmt.Fprintf(os.Stderr,
			"spgemm-lint: %d new escape(s) exceed the budget; fix the allocation or, if intentional, re-run with -mode=escapes -update and justify in the PR\n",
			len(added))
		return 1
	}
	fmt.Printf("spgemm-lint: escape budget OK (%d allowlisted, %d observed)\n", len(want), len(got))
	return 0
}

func moduleRoot() (string, error) {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		return "", fmt.Errorf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("not inside a Go module")
	}
	return filepath.Dir(gomod), nil
}

// collectEscapes builds the hot packages with -gcflags=-m and parses the
// normalized escape entries. The go command replays cached compiler output,
// so repeated runs are cheap and deterministic.
func collectEscapes(root string) (map[string]bool, error) {
	args := []string{"build"}
	for _, p := range escapePkgs {
		args = append(args, "-gcflags="+p+"=-m")
	}
	args = append(args, escapePkgs...)
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("go build -gcflags=-m: %v\n%s", err, out)
	}
	got := map[string]bool{}
	sc := bufio.NewScanner(strings.NewReader(string(out)))
	for sc.Scan() {
		entry, ok := normalizeEscapeLine(sc.Text())
		if ok {
			got[entry] = true
		}
	}
	return got, nil
}

// normalizeEscapeLine turns "dir/file.go:12:6: x escapes to heap" into
// "dir/file.go: x escapes to heap"; non-escape diagnostics are dropped.
// Package qualifiers inside the message are stripped: the compiler reports
// the same escape as "&HashTableG[...]{}" when compiling accum and as
// "&accum.HashTableG[...]{}" when re-reporting it from an inlined body in a
// dependent package, and without normalization the allowlist carries both.
func normalizeEscapeLine(line string) (string, bool) {
	line = strings.TrimSpace(line)
	if !strings.Contains(line, "escapes to heap") && !strings.Contains(line, "moved to heap") {
		return "", false
	}
	// file.go:line:col: message
	parts := strings.SplitN(line, ":", 4)
	if len(parts) < 4 {
		return "", false
	}
	file := parts[0]
	msg := compilerfb.StripQualifiers(strings.TrimSpace(parts[3]))
	if !strings.HasSuffix(file, ".go") {
		return "", false
	}
	return file + ": " + msg, true
}

// ---------------------------------------------------------------------------
// Inline/devirtualization budget mode
// ---------------------------------------------------------------------------

// hotDirs are the module-relative package directories whose
// //spgemm:hotpath functions the inline and BCE budgets cover.
var hotDirs = []string{
	"internal/accum",
	"internal/mempool",
	"internal/sched",
	"internal/spgemm",
}

// inlinePkgs extends the hot packages with semiring: the ring methods are
// what the kernels need inlined, so their own inlinability is gated too.
var inlinePkgs = append(append([]string{}, escapePkgs...), "repro/internal/semiring")

const (
	inlineAllowlistPath = "lint/inline_allowlist.txt"
	bceAllowlistPath    = "lint/bce_allowlist.txt"
	semiringDir         = "internal/semiring"
)

// requiredInlines are the gate's hard guarantees: the hand-devirtualized
// float64 plus-times fast path (internal/spgemm/ringfast.go) writes its ring
// operations as method calls on a concrete semiring.PlusTimesF64 precisely
// so the compiler reports them as inlined; if these lines disappear the fast
// path has regressed to indirect dictionary calls and no allowlist can
// excuse it.
var requiredInlines = []compilerfb.RequiredInline{
	{File: "internal/spgemm/ringfast.go", Callee: "PlusTimesF64.Mul"},
	{File: "internal/spgemm/ringfast.go", Callee: "PlusTimesF64.Add"},
}

// runInline diffs the compiler's -m=2 inline/devirtualization decisions
// against the checked-in allowlist: any //spgemm:hotpath function reported
// "cannot inline", and any semiring Add/Mul/Zero method reported "cannot
// inline", must be allowlisted; the ring fast path's inlining-call witnesses
// must be present unconditionally.
func runInline(update bool) int {
	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "spgemm-lint: %v\n", err)
		return 2
	}
	ix, err := compilerfb.ScanHotFuncs(root, hotDirs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spgemm-lint: %v\n", err)
		return 2
	}
	out, err := compilerfb.CompilerOutput(root, inlinePkgs, "-m=2")
	if err != nil {
		fmt.Fprintf(os.Stderr, "spgemm-lint: %v\n", err)
		return 2
	}
	rep := compilerfb.BuildInlineReport(compilerfb.ParseInlineOutput(out), ix, semiringDir, requiredInlines)
	// The required-inline contract is checked before any allowlist logic:
	// -update must not be able to bless its loss.
	if len(rep.MissingRequired) > 0 {
		for _, m := range rep.MissingRequired {
			fmt.Fprintf(os.Stderr, "spgemm-lint: REQUIRED INLINE MISSING: %s\n", m)
		}
		return 1
	}
	return diffBudget(budgetGate{
		name:     "inline",
		listPath: inlineAllowlistPath,
		regen:    "go run ./cmd/spgemm-lint -mode=inline -update",
		header: []string{
			"Inlining budget for //spgemm:hotpath functions and semiring ring methods.",
			"One normalized -m=2 decision per line: \"file.go: cannot inline Func: reason\".",
			"Regenerate with: go run ./cmd/spgemm-lint -mode=inline -update",
			"CI fails when a hotpath function or ring method stops inlining and is not listed here.",
		},
		newMsg: "function stopped inlining",
	}, root, rep.Violations, update)
}

// runBCE diffs the residual bounds checks that -d=ssa/check_bce reports
// inside //spgemm:hotpath functions against the checked-in allowlist.
// Entries budget counts per (function, check kind), not positions, so moving
// code doesn't churn the list but a new residual check fails the gate.
func runBCE(update bool) int {
	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "spgemm-lint: %v\n", err)
		return 2
	}
	ix, err := compilerfb.ScanHotFuncs(root, hotDirs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spgemm-lint: %v\n", err)
		return 2
	}
	out, err := compilerfb.CompilerOutput(root, escapePkgs, "-d=ssa/check_bce")
	if err != nil {
		fmt.Fprintf(os.Stderr, "spgemm-lint: %v\n", err)
		return 2
	}
	entries := compilerfb.BuildBCEReport(compilerfb.ParseBCEOutput(out), ix)
	return diffBudget(budgetGate{
		name:     "bce",
		listPath: bceAllowlistPath,
		regen:    "go run ./cmd/spgemm-lint -mode=bce -update",
		header: []string{
			"Bounds-check budget for //spgemm:hotpath functions.",
			"One entry per (function, check kind) with the count of distinct positions:",
			"\"file.go: Func: IsInBounds xN\". The listed checks are the ones the prove",
			"pass cannot eliminate (data-dependent indices); new ones need a re-slicing",
			"hint or a justified -update.",
			"Regenerate with: go run ./cmd/spgemm-lint -mode=bce -update",
		},
		newMsg: "new residual bounds check in hotpath function",
	}, root, entries, update)
}

// budgetGate describes one compiler-feedback allowlist gate for diffBudget.
type budgetGate struct {
	name     string
	listPath string
	regen    string
	header   []string
	newMsg   string
}

// diffBudget is the shared allowlist workflow of the inline and BCE gates:
// -update rewrites the list (pinned to the current toolchain); otherwise the
// observed entries are diffed against it, with a toolchain mismatch failing
// loudly since both gates parse version-sensitive compiler output.
func diffBudget(g budgetGate, root string, got map[string]bool, update bool) int {
	tc, err := compilerfb.Toolchain()
	if err != nil {
		fmt.Fprintf(os.Stderr, "spgemm-lint: %v\n", err)
		return 2
	}
	listFile := filepath.Join(root, g.listPath)
	if update {
		if err := compilerfb.WriteAllowlist(listFile, g.header, tc, got); err != nil {
			fmt.Fprintf(os.Stderr, "spgemm-lint: %v\n", err)
			return 2
		}
		fmt.Printf("spgemm-lint: wrote %d %s entries to %s (toolchain %s)\n", len(got), g.name, g.listPath, tc)
		return 0
	}
	al, err := compilerfb.ReadAllowlist(listFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spgemm-lint: %v (run with -mode=%s -update to create it)\n", err, g.name)
		return 2
	}
	if err := compilerfb.CheckToolchain(al, tc, g.listPath, g.regen); err != nil {
		fmt.Fprintf(os.Stderr, "spgemm-lint: %v\n", err)
		return 1
	}
	added, removed := compilerfb.Diff(got, al.Entries)
	for _, e := range removed {
		fmt.Printf("spgemm-lint: %s entry no longer present (prune from %s): %s\n", g.name, g.listPath, e)
	}
	if len(added) > 0 {
		for _, e := range added {
			fmt.Fprintf(os.Stderr, "spgemm-lint: %s: %s\n", strings.ToUpper(g.newMsg), e)
		}
		fmt.Fprintf(os.Stderr,
			"spgemm-lint: %d new %s violation(s); fix the hot function or, if unavoidable, re-run with %s and justify in the PR\n",
			len(added), g.name, g.regen)
		return 1
	}
	fmt.Printf("spgemm-lint: %s budget OK (%d allowlisted, %d observed, toolchain %s)\n", g.name, len(al.Entries), len(got), tc)
	return 0
}

func readAllowlist(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	out := map[string]bool{}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out[line] = true
	}
	return out, nil
}

func writeAllowlist(path string, entries map[string]bool) error {
	keys := make([]string, 0, len(entries))
	for k := range entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString("# Heap-escape budget for the hot packages (accum, mempool, sched, spgemm).\n")
	b.WriteString("# One normalized compiler diagnostic per line: \"file.go: message\".\n")
	b.WriteString("# Regenerate with: go run ./cmd/spgemm-lint -mode=escapes -update\n")
	b.WriteString("# CI fails when a hot-package build reports an escape not listed here.\n")
	for _, k := range keys {
		b.WriteString(k)
		b.WriteString("\n")
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
		return err
	}
	return os.WriteFile(path, []byte(b.String()), 0o666)
}
