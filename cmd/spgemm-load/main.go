// Command spgemm-load drives a running spgemm-serve instance: it generates
// R-MAT matrices locally, uploads them over the binary CSR wire format, and
// fires multiply requests at a fixed concurrency while measuring latency
// quantiles and throughput. With -sweep it steps through increasing
// concurrency levels to trace the saturation curve (req/s vs p50/p99), and
// -snapshot writes the whole run as JSON for benchmarking records.
//
// Usage:
//
//	spgemm-load -url http://127.0.0.1:8080 -n 1000 -c 8
//	spgemm-load -url http://127.0.0.1:8080 -n 400 -sweep 1,2,4,8,16 -snapshot BENCH_server.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/gen"
	"repro/internal/matrix"
	"repro/internal/server"
)

type levelResult struct {
	Concurrency int `json:"concurrency"`
	Requests    int `json:"requests"`
	// Error-class breakdown: saturation shows up as Rejected (shed load by
	// design), a client bug as Client4xx, a server bug as Server5xx, and an
	// unreachable/overwhelmed server as Transport. Errors is their sum
	// excluding Rejected — the "something is actually wrong" count.
	Errors    int     `json:"errors"`
	Rejected  int     `json:"rejected"` // 429 responses (shed load, not errors)
	Client4xx int     `json:"client4xx"`
	Server5xx int     `json:"server5xx"`
	Transport int     `json:"transport"`
	ReqPerSec float64 `json:"reqPerSec"`
	P50Ms     float64 `json:"p50Ms"`
	P90Ms     float64 `json:"p90Ms"`
	P99Ms     float64 `json:"p99Ms"`
	MaxMs     float64 `json:"maxMs"`
	// QueueP*Ms are the server-reported admission waits (queueSeconds in the
	// multiply response): how much of the client-observed latency was spent
	// waiting for a Context rather than multiplying.
	QueueP50Ms float64 `json:"queueP50Ms"`
	QueueP90Ms float64 `json:"queueP90Ms"`
	QueueP99Ms float64 `json:"queueP99Ms"`
	PlanHits   int     `json:"planHits"`
}

type snapshot struct {
	Timestamp string        `json:"timestamp"`
	URL       string        `json:"url"`
	Scale     int           `json:"scale"`
	EdgeFac   int           `json:"edgeFactor"`
	Pairs     int           `json:"pairs"`
	Algorithm string        `json:"algorithm"`
	GoVersion string        `json:"goVersion"`
	MaxProcs  int           `json:"maxProcs"`
	Levels    []levelResult `json:"levels"`
}

func main() {
	var (
		url      = flag.String("url", "http://127.0.0.1:8080", "base URL of spgemm-serve")
		n        = flag.Int("n", 1000, "multiply requests per concurrency level")
		conc     = flag.Int("c", 4, "request concurrency (ignored with -sweep)")
		sweep    = flag.String("sweep", "", "comma-separated concurrency levels, e.g. 1,2,4,8,16")
		scale    = flag.Int("scale", 8, "R-MAT scale of generated operands (n = 2^scale)")
		edgeFac  = flag.Int("edgefactor", 8, "R-MAT edge factor")
		pairs    = flag.Int("pairs", 4, "distinct operand pairs to rotate through")
		alg      = flag.String("alg", "hash", "algorithm requested per multiply")
		seed     = flag.Int64("seed", 42, "generator seed")
		snapPath = flag.String("snapshot", "", "write results as JSON to this path")
	)
	flag.Parse()

	levels := []int{*conc}
	if *sweep != "" {
		levels = levels[:0]
		for _, f := range strings.Split(*sweep, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || v < 1 {
				fatalf("bad -sweep element %q", f)
			}
			levels = append(levels, v)
		}
	}

	// Generate and upload the operand pool. Rotating through a few distinct
	// pairs keeps the plan cache honest (several live keys) while still
	// making repeat products the common case, as in a real serving workload.
	rng := rand.New(rand.NewSource(*seed))
	hashes := make([][2]string, *pairs)
	for i := range hashes {
		a := gen.RMAT(*scale, *edgeFac, gen.G500Params, rng)
		b := gen.RMAT(*scale, *edgeFac, gen.G500Params, rng)
		hashes[i] = [2]string{upload(*url, a), upload(*url, b)}
	}
	fmt.Fprintf(os.Stderr, "spgemm-load: uploaded %d operand pairs (scale %d, edgefactor %d)\n",
		*pairs, *scale, *edgeFac)

	snap := snapshot{
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		URL:       *url,
		Scale:     *scale,
		EdgeFac:   *edgeFac,
		Pairs:     *pairs,
		Algorithm: *alg,
		GoVersion: runtime.Version(),
		MaxProcs:  runtime.GOMAXPROCS(0),
	}
	for _, c := range levels {
		res := runLevel(*url, hashes, *alg, *n, c)
		snap.Levels = append(snap.Levels, res)
		fmt.Printf("c=%-3d  %8.1f req/s  p50 %7.2fms  p90 %7.2fms  p99 %7.2fms  max %7.2fms  queue p50/p99 %6.2f/%6.2fms  rejected %d  planHits %d\n",
			res.Concurrency, res.ReqPerSec, res.P50Ms, res.P90Ms, res.P99Ms, res.MaxMs,
			res.QueueP50Ms, res.QueueP99Ms, res.Rejected, res.PlanHits)
		if res.Errors > 0 {
			fmt.Printf("       errors %d (4xx %d, 5xx %d, transport %d)\n",
				res.Errors, res.Client4xx, res.Server5xx, res.Transport)
		}
		if res.Errors > 0 {
			defer os.Exit(1)
		}
	}

	if *snapPath != "" {
		out, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			fatalf("%v", err)
		}
		if err := os.WriteFile(*snapPath, append(out, '\n'), 0o644); err != nil {
			fatalf("%v", err)
		}
		fmt.Fprintf(os.Stderr, "spgemm-load: wrote %s\n", *snapPath)
	}
}

func runLevel(url string, hashes [][2]string, alg string, n, c int) levelResult {
	lat := make([]time.Duration, n)
	queue := make([]float64, n) // server-reported queueSeconds, -1 = no response
	var next atomic.Int64
	var rejected, client4xx, server5xx, transport, planHits atomic.Int64
	client := &http.Client{Timeout: 60 * time.Second}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				queue[i] = -1
				pair := hashes[i%len(hashes)]
				body, _ := json.Marshal(server.MultiplyRequest{A: pair[0], B: pair[1], Algorithm: alg})
				t0 := time.Now()
				resp, err := client.Post(url+"/v1/multiply", "application/json", bytes.NewReader(body))
				lat[i] = time.Since(t0)
				if err != nil {
					transport.Add(1)
					continue
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch {
				case resp.StatusCode == http.StatusOK:
					var mr server.MultiplyResponse
					if json.Unmarshal(raw, &mr) == nil {
						if mr.PlanCacheHit {
							planHits.Add(1)
						}
						queue[i] = mr.QueueSeconds
					}
				case resp.StatusCode == http.StatusTooManyRequests:
					rejected.Add(1)
				case resp.StatusCode >= 500:
					server5xx.Add(1)
				default:
					client4xx.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	q := func(p float64) float64 {
		i := int(p * float64(n-1))
		return float64(lat[i]) / float64(time.Millisecond)
	}
	// Queue-wait percentiles over answered requests only.
	waits := queue[:0:0]
	for _, s := range queue {
		if s >= 0 {
			waits = append(waits, s)
		}
	}
	sort.Float64s(waits)
	qw := func(p float64) float64 {
		if len(waits) == 0 {
			return 0
		}
		return waits[int(p*float64(len(waits)-1))] * 1e3
	}
	return levelResult{
		Concurrency: c,
		Requests:    n,
		Errors:      int(client4xx.Load() + server5xx.Load() + transport.Load()),
		Rejected:    int(rejected.Load()),
		Client4xx:   int(client4xx.Load()),
		Server5xx:   int(server5xx.Load()),
		Transport:   int(transport.Load()),
		ReqPerSec:   float64(n) / elapsed.Seconds(),
		P50Ms:       q(0.50),
		P90Ms:       q(0.90),
		P99Ms:       q(0.99),
		MaxMs:       float64(lat[n-1]) / float64(time.Millisecond),
		QueueP50Ms:  qw(0.50),
		QueueP90Ms:  qw(0.90),
		QueueP99Ms:  qw(0.99),
		PlanHits:    int(planHits.Load()),
	}
}

func upload(url string, m *matrix.CSR) string {
	var buf bytes.Buffer
	if err := matrix.WriteCSRBinary(&buf, m); err != nil {
		fatalf("encode upload: %v", err)
	}
	resp, err := http.Post(url+"/v1/matrices", server.ContentTypeCSRBinary, &buf)
	if err != nil {
		fatalf("upload: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		fatalf("upload: status %d: %s", resp.StatusCode, raw)
	}
	var info struct {
		Hash string `json:"hash"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		fatalf("upload: decode response: %v", err)
	}
	return info.Hash
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "spgemm-load: "+format+"\n", args...)
	os.Exit(1)
}
