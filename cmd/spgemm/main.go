// Command spgemm multiplies two sparse matrices stored in Matrix Market
// coordinate format and writes the product, reporting timing and structural
// statistics.
//
// Usage:
//
//	spgemm -a A.mtx -b B.mtx -o C.mtx -alg hash
//	spgemm -a A.mtx -square -alg auto -unsorted
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/matrix"
	"repro/internal/obs"
	"repro/internal/spgemm"
)

var algNames = map[string]spgemm.Algorithm{
	"auto":          spgemm.AlgAuto,
	"hash":          spgemm.AlgHash,
	"hashvec":       spgemm.AlgHashVec,
	"heap":          spgemm.AlgHeap,
	"spa":           spgemm.AlgSPA,
	"mkl":           spgemm.AlgMKL,
	"mkl-inspector": spgemm.AlgMKLInspector,
	"kokkos":        spgemm.AlgKokkos,
	"merge":         spgemm.AlgMerge,
	"ikj":           spgemm.AlgIKJ,
	"blockedspa":    spgemm.AlgBlockedSPA,
	"esc":           spgemm.AlgESC,
	"tiled":         spgemm.AlgTiled,
	"sharded":       spgemm.AlgSharded,
}

func main() {
	var (
		aPath    = flag.String("a", "", "left operand (Matrix Market file)")
		bPath    = flag.String("b", "", "right operand (Matrix Market file)")
		square   = flag.Bool("square", false, "compute A·A (ignore -b)")
		outPath  = flag.String("o", "", "write the product to this file (optional)")
		algName  = flag.String("alg", "auto", "algorithm: auto|hash|hashvec|heap|spa|mkl|mkl-inspector|kokkos|merge|ikj|blockedspa|esc|tiled|sharded")
		unsorted = flag.Bool("unsorted", false, "emit unsorted output rows (skips per-row sorting)")
		workers  = flag.Int("workers", 0, "worker count (0 = GOMAXPROCS)")
		stats    = flag.Bool("stats", false, "print the per-phase ExecStats breakdown of the multiply")
		trace    = flag.String("trace", "", "write a Chrome trace-event JSON of phases and pool regions to this path")
		debug    = flag.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address")
	)
	flag.Parse()

	if *debug != "" {
		srv, err := obs.StartDebugServer(*debug, nil)
		if err != nil {
			fatalf("%v", err)
		}
		// Graceful shutdown: srv.Close() would truncate a /metrics scrape
		// racing process exit; drain in-flight requests briefly instead.
		defer srv.ShutdownTimeout(2 * time.Second)
		fmt.Fprintf(os.Stderr, "spgemm: debug server on http://%s\n", srv.Addr())
	}
	if *trace != "" {
		obs.SetActive(obs.NewTracer())
		defer writeTrace(*trace)
	}

	alg, ok := algNames[*algName]
	if !ok {
		fatalf("unknown algorithm %q", *algName)
	}
	if *aPath == "" {
		fatalf("-a is required")
	}
	a := readMatrix(*aPath)
	b := a
	if !*square {
		if *bPath == "" {
			fatalf("-b is required unless -square is given")
		}
		b = readMatrix(*bPath)
	}

	opt := &spgemm.Options{Algorithm: alg, Unsorted: *unsorted, Workers: *workers}
	if *stats {
		opt.Stats = &spgemm.ExecStats{}
	}
	start := time.Now()
	c, err := spgemm.Multiply(a, b, opt)
	if err != nil {
		fatalf("multiply: %v", err)
	}
	elapsed := time.Since(start)

	flop, _ := matrix.Flop(a, b)
	fmt.Printf("A: %v\nB: %v\nC: %v\n", a, b, c)
	fmt.Printf("flop: %d  time: %v  MFLOPS: %.1f  compression ratio: %.2f\n",
		flop, elapsed, 2*float64(flop)/elapsed.Seconds()/1e6, float64(flop)/float64(c.NNZ()))
	if opt.Stats != nil {
		fmt.Printf("stats: %s\n", opt.Stats)
	}

	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatalf("create %s: %v", *outPath, err)
		}
		defer f.Close()
		out := c
		if !out.Sorted {
			out = out.Clone()
			out.SortRows()
		}
		if err := matrix.WriteMatrixMarket(f, out); err != nil {
			fatalf("write %s: %v", *outPath, err)
		}
		fmt.Printf("wrote %s\n", *outPath)
	}
}

func readMatrix(path string) *matrix.CSR {
	f, err := os.Open(path)
	if err != nil {
		fatalf("open %s: %v", path, err)
	}
	defer f.Close()
	m, err := matrix.ReadMatrixMarket(f)
	if err != nil {
		fatalf("parse %s: %v", path, err)
	}
	return m
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "spgemm: "+format+"\n", args...)
	os.Exit(1)
}

// writeTrace exports the active tracer as Chrome trace-event JSON.
func writeTrace(path string) {
	tr := obs.Active()
	if tr == nil {
		return
	}
	obs.SetActive(nil)
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spgemm: %v\n", err)
		return
	}
	defer f.Close()
	if err := tr.WriteChromeTrace(f); err != nil {
		fmt.Fprintf(os.Stderr, "spgemm: write trace: %v\n", err)
		return
	}
	fmt.Fprintf(os.Stderr, "spgemm: wrote trace to %s\n", path)
}
