// Command spgemm-serve runs the SpGEMM multiply server: a long-running
// HTTP/JSON service that interns uploaded matrices by content hash and
// multiplies them on a bounded pool of reusable kernel contexts, with a
// concurrent plan cache for repeat products.
//
// Usage:
//
//	spgemm-serve -addr :8080 -contexts 8 -queue 128
//	spgemm-serve -addr :8080 -slow-threshold 250ms -baseline BENCH_spgemm.json
//
// Endpoints:
//
//	POST /v1/matrices          upload (Matrix Market text or binary CSR)
//	GET  /v1/matrices/{hash}   metadata for an interned matrix
//	POST /v1/multiply          multiply two interned matrices by hash
//	GET  /healthz              liveness (503 while the perf sentry is degraded)
//	GET  /metrics              Prometheus text exposition (server_* series)
//	GET  /debug/requests       recent + slow request traces (JSON)
//	GET  /debug/requests/{id}  one request as Chrome trace JSON (Perfetto)
//	GET  /debug/loglevel       read or switch the structured log level
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8080", "listen address")
		contexts   = flag.Int("contexts", 0, "size of the kernel context pool (0 = default)")
		queue      = flag.Int("queue", 0, "admission queue depth before shedding with 429 (0 = default)")
		planCache  = flag.Int("plan-cache", 0, "max cached multiply plans (0 = default)")
		workers    = flag.Int("workers", 0, "worker threads per multiply (0 = default)")
		storeBytes = flag.Int64("max-store-bytes", 0, "matrix store byte budget before LRU eviction (0 = default)")
		uploadMax  = flag.Int64("max-upload-bytes", 0, "largest accepted upload body (0 = default)")
		maxDim     = flag.Int("max-dim", 0, "largest accepted matrix dimension (0 = default)")
		maxNNZ     = flag.Int64("max-nnz", 0, "largest accepted nonzero count (0 = default)")
		grace      = flag.Duration("grace", 5*time.Second, "shutdown drain timeout")

		logLevel = flag.String("log-level", "info", "structured log level: debug|info|warn|error|off (runtime-switchable at /debug/loglevel)")

		reqRing  = flag.Int("request-ring", 256, "request traces retained at /debug/requests (0 disables request tracing)")
		slowThr  = flag.Duration("slow-threshold", 0, "latency marking a request slow (retained, logged, optionally profiled; 0 disables)")
		slowRing = flag.Int("slow-ring", 0, "slow-request ring capacity (0 = default)")
		slowProf = flag.Duration("slow-profile", 0, "CPU profile window captured when a slow request lands (0 disables; served at /debug/requests/profile)")

		baseline      = flag.String("baseline", "", "BENCH_spgemm.json to baseline the perf sentry against (empty disables the sentry)")
		sentryRatio   = flag.Float64("sentry-ratio", 0, "tolerated live-vs-baseline slowdown before degrading (0 = default)")
		sentryEvery   = flag.Duration("sentry-interval", 0, "perf sentry check cadence (0 = default)")
		sentrySustain = flag.Int("sentry-sustain", 0, "consecutive failing checks before /healthz degrades (0 = default)")
		sentryMinObs  = flag.Int64("sentry-min-samples", 0, "per-algorithm observations before the sentry judges it (0 = default)")

		tracePath = flag.String("trace", "", "write the process Chrome trace (worker-lane phases) to this path on shutdown")
		drainPath = flag.String("drain", "", "dump the request rings as JSON to this path on shutdown (\"-\" = stderr)")
	)
	flag.Parse()

	// Structured logging: JSON lines on stderr, level switchable at runtime
	// via /debug/loglevel. "off" keeps the zero-cost disabled handler.
	if *logLevel != "off" {
		lvl, err := obs.ParseLogLevel(*logLevel)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spgemm-serve: %v\n", err)
			os.Exit(2)
		}
		obs.SetLogger(obs.ConfigureLogger(os.Stderr, lvl))
	}
	log := obs.Logger()

	if *tracePath != "" {
		obs.SetActive(obs.NewTracer())
	}

	cfg := server.Config{
		Contexts:       *contexts,
		QueueDepth:     *queue,
		PlanCacheSize:  *planCache,
		Workers:        *workers,
		MaxStoreBytes:  *storeBytes,
		MaxUploadBytes: *uploadMax,
		MaxDim:         *maxDim,
		MaxNNZ:         *maxNNZ,

		RequestRing:    *reqRing,
		SlowThreshold:  *slowThr,
		SlowRing:       *slowRing,
		SlowProfileDur: *slowProf,

		SentryRatio:      *sentryRatio,
		SentryInterval:   *sentryEvery,
		SentrySustain:    *sentrySustain,
		SentryMinSamples: *sentryMinObs,
	}
	if *baseline != "" {
		base, err := server.LoadSentryBaseline(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spgemm-serve: %v\n", err)
			os.Exit(1)
		}
		cfg.SentryBaseline = base
		log.Info("perf sentry armed", "baseline", *baseline, "algorithms", len(base))
	}

	s := server.New(cfg)
	defer s.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spgemm-serve: %v\n", err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Fprintf(os.Stderr, "spgemm-serve: listening on http://%s\n", ln.Addr())
	log.Info("serving", "addr", ln.Addr().String(),
		"requestRing", *reqRing, "slowThreshold", (*slowThr).String(), "logLevel", obs.LogLevel().String())

	err = server.Serve(ctx, ln, s.Handler(), *grace)

	// Shutdown order: in-flight requests have drained (server.Serve), so the
	// rings and tracer are quiescent — flush them before the process exits.
	flushObservability(s, *tracePath, *drainPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spgemm-serve: %v\n", err)
		os.Exit(1)
	}
	log.Info("shutdown complete")
}

// flushObservability exports what the process learned before it exits: the
// request rings (the tail of request history) and the process tracer's
// worker-lane spans. Losing either on SIGTERM is losing the evidence of
// whatever made someone send the SIGTERM.
func flushObservability(s *server.Server, tracePath, drainPath string) {
	log := obs.Logger()
	if drainPath != "" {
		out := os.Stderr
		if drainPath != "-" {
			f, err := os.Create(drainPath)
			if err != nil {
				log.Error("drain requests", "err", err)
				out = nil
			} else {
				defer f.Close()
				out = f
			}
		}
		if out != nil {
			n := s.DrainRequests(func(b []byte) { _, _ = out.Write(b) })
			log.Info("drained request rings", "traces", n, "to", drainPath)
		}
	}
	if tracePath != "" {
		if tr := obs.Active(); tr != nil {
			obs.SetActive(nil)
			f, err := os.Create(tracePath)
			if err != nil {
				log.Error("write trace", "err", err)
				return
			}
			defer f.Close()
			if err := tr.WriteChromeTrace(f); err != nil {
				log.Error("write trace", "err", err)
				return
			}
			log.Info("flushed process trace", "to", tracePath)
		}
	}
}
