// Command spgemm-serve runs the SpGEMM multiply server: a long-running
// HTTP/JSON service that interns uploaded matrices by content hash and
// multiplies them on a bounded pool of reusable kernel contexts, with a
// concurrent plan cache for repeat products.
//
// Usage:
//
//	spgemm-serve -addr :8080 -contexts 8 -queue 128
//
// Endpoints:
//
//	POST /v1/matrices        upload (Matrix Market text or binary CSR)
//	GET  /v1/matrices/{hash} metadata for an interned matrix
//	POST /v1/multiply        multiply two interned matrices by hash
//	GET  /healthz            liveness
//	GET  /metrics            Prometheus text exposition (server_* series)
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8080", "listen address")
		contexts   = flag.Int("contexts", 0, "size of the kernel context pool (0 = default)")
		queue      = flag.Int("queue", 0, "admission queue depth before shedding with 429 (0 = default)")
		planCache  = flag.Int("plan-cache", 0, "max cached multiply plans (0 = default)")
		workers    = flag.Int("workers", 0, "worker threads per multiply (0 = default)")
		storeBytes = flag.Int64("max-store-bytes", 0, "matrix store byte budget before LRU eviction (0 = default)")
		uploadMax  = flag.Int64("max-upload-bytes", 0, "largest accepted upload body (0 = default)")
		maxDim     = flag.Int("max-dim", 0, "largest accepted matrix dimension (0 = default)")
		maxNNZ     = flag.Int64("max-nnz", 0, "largest accepted nonzero count (0 = default)")
		grace      = flag.Duration("grace", 5*time.Second, "shutdown drain timeout")
	)
	flag.Parse()

	s := server.New(server.Config{
		Contexts:       *contexts,
		QueueDepth:     *queue,
		PlanCacheSize:  *planCache,
		Workers:        *workers,
		MaxStoreBytes:  *storeBytes,
		MaxUploadBytes: *uploadMax,
		MaxDim:         *maxDim,
		MaxNNZ:         *maxNNZ,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spgemm-serve: %v\n", err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Fprintf(os.Stderr, "spgemm-serve: listening on http://%s\n", ln.Addr())
	if err := server.Serve(ctx, ln, s.Handler(), *grace); err != nil {
		fmt.Fprintf(os.Stderr, "spgemm-serve: %v\n", err)
		os.Exit(1)
	}
}
