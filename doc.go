// Package repro is a from-scratch Go reproduction of Nagasaka, Matsuoka,
// Azad and Buluç, "High-Performance Sparse Matrix-Matrix Products on Intel
// KNL and Multicore Architectures" (ICPP 2018; arXiv:1804.01698).
//
// The library lives under internal/:
//
//   - internal/matrix    — CSR/COO storage, Matrix Market I/O, statistics
//   - internal/semiring  — (+,×), or-and, min-plus, max-times semirings
//   - internal/sched     — static/dynamic/guided/balanced loop scheduling
//   - internal/mempool   — thread-private memory management (single vs parallel)
//   - internal/accum     — hash, chunked-hash, heap, SPA, two-level accumulators
//   - internal/spgemm    — the SpGEMM algorithms and the Table 4 recipe
//   - internal/gen       — R-MAT ER/G500 generators and Table 2 proxies
//   - internal/graph     — triangle counting, multi-source BFS, Markov clustering
//   - internal/memmodel  — stanza bandwidth microbenchmark and MCDRAM model
//   - internal/bench     — the experiment harness for every table and figure
//
// Binaries: cmd/spgemm-bench (regenerate the paper's tables and figures),
// cmd/spgemm (multiply Matrix Market files), cmd/rmatgen (generate
// workloads). Runnable examples are under examples/.
//
// The benchmarks in bench_test.go map one-to-one onto the paper's figures;
// see DESIGN.md for the per-experiment index and EXPERIMENTS.md for
// paper-vs-measured results.
package repro
