// Algebraic-multigrid Galerkin product: the paper's Section 1 cites AMG
// coarsening as a canonical numerical SpGEMM workload. This example builds a
// 1-D Poisson operator A and a piecewise-constant prolongation P, then forms
// the coarse operator A_c = Pᵀ·A·P with two SpGEMM calls.
//
//	go run ./examples/amg
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/matrix"
	"repro/internal/spgemm"
)

func main() {
	const fine = 1 << 16
	a := poisson1D(fine)
	p := prolongation(fine)
	r := p.Transpose()
	fmt.Printf("A: %v\nP: %v\n", a, p)

	start := time.Now()
	ap, err := spgemm.Multiply(a, p, &spgemm.Options{Algorithm: spgemm.AlgHash})
	if err != nil {
		log.Fatal(err)
	}
	coarse, err := spgemm.Multiply(r, ap, &spgemm.Options{Algorithm: spgemm.AlgHash})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("A_c = R·A·P: %v (%.2fms)\n", coarse, float64(time.Since(start).Microseconds())/1000)

	// Sanity: the Galerkin coarse operator of the 1-D Laplacian with
	// piecewise-constant interpolation is again tridiagonal, with constant
	// row sums 0 in the interior (it preserves the nullspace of constants).
	cols, vals := coarse.Row(coarse.Rows / 2)
	fmt.Printf("middle coarse row: cols=%v vals=%v\n", cols, vals)
	var rowSum float64
	for _, v := range vals {
		rowSum += v
	}
	fmt.Printf("middle row sum: %g (expect 0 for an interior Laplacian row)\n", rowSum)
}

// poisson1D builds the tridiagonal [-1, 2, -1] operator.
func poisson1D(n int) *matrix.CSR {
	c := matrix.NewCOO(n, n)
	for i := 0; i < n; i++ {
		c.Append(int32(i), int32(i), 2)
		if i > 0 {
			c.Append(int32(i), int32(i-1), -1)
		}
		if i < n-1 {
			c.Append(int32(i), int32(i+1), -1)
		}
	}
	return c.ToCSR()
}

// prolongation maps each coarse dof to two fine dofs (piecewise constant).
func prolongation(fine int) *matrix.CSR {
	coarse := fine / 2
	c := matrix.NewCOO(fine, coarse)
	for i := 0; i < fine; i++ {
		c.Append(int32(i), int32(i/2), 1)
	}
	return c.ToCSR()
}
