// Multi-source BFS as SpGEMM (the paper's Section 5.5 use case): the graph
// is multiplied by a tall-skinny frontier matrix — one column per BFS — over
// the boolean or-and semiring, level by level.
//
//	go run ./examples/msbfs
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matrix"
	"repro/internal/spgemm"
)

func main() {
	rng := rand.New(rand.NewSource(11))
	g := gen.RMAT(13, 16, gen.G500Params, rng)
	// Undirected graph: symmetrize.
	coo := matrix.FromCSR(g)
	coo.Symmetrize()
	adj := coo.ToCSR()
	fmt.Printf("graph: %v\n", adj)

	// 64 simultaneous BFS searches from random sources.
	const k = 64
	sources := make([]int32, k)
	for i := range sources {
		sources[i] = int32(rng.Intn(adj.Rows))
	}

	start := time.Now()
	res, err := graph.MSBFS(adj, sources, &spgemm.Options{Algorithm: spgemm.AlgHash})
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	// Level histogram across all searches.
	hist := map[int32]int64{}
	var maxLevel int32
	for _, row := range res.Level {
		for _, l := range row {
			hist[l]++
			if l > maxLevel {
				maxLevel = l
			}
		}
	}
	fmt.Printf("%d BFS searches in %v; reached %d of %d (vertex,source) pairs\n",
		k, elapsed, res.Reached(), int64(adj.Rows)*k)
	for l := int32(0); l <= maxLevel; l++ {
		fmt.Printf("  level %2d: %8d vertices\n", l, hist[l])
	}
	fmt.Printf("  unreached: %d\n", hist[-1])
}
