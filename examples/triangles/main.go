// Triangle counting via SpGEMM (the paper's Section 5.6 use case): reorder
// vertices by degree, split the adjacency A = L + U, and count the wedges
// that close — triangles = Σ((L·U) .* L) — with the masked hash SpGEMM.
//
//	go run ./examples/triangles
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matrix"
	"repro/internal/spgemm"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	g := gen.RMAT(13, 16, gen.G500Params, rng)
	fmt.Printf("graph: %v\n", g)

	// Preprocess once (symmetrize, degree-reorder, split L+U), then time
	// the SpGEMM step under different algorithms, as Figure 17 does.
	prep, err := graph.PrepareTriangles(g)
	if err != nil {
		log.Fatal(err)
	}
	st := matrix.ProductStats(prep.L, prep.U)
	fmt.Printf("L: %v  U: %v  flop(LxU)=%d  CR=%.2f\n\n", prep.L, prep.U, st.Flop, st.CompressionRatio)

	var reference int64 = -1
	for _, alg := range []spgemm.Algorithm{spgemm.AlgHash, spgemm.AlgHashVec, spgemm.AlgHeap, spgemm.AlgMKL} {
		start := time.Now()
		count, err := graph.CountFromLU(prep.L, prep.U, &spgemm.Options{Algorithm: alg})
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		fmt.Printf("%-8s triangles=%-10d time=%-12v MFLOPS=%.1f\n",
			alg, count, elapsed, 2*float64(st.Flop)/elapsed.Seconds()/1e6)
		if reference < 0 {
			reference = count
		} else if count != reference {
			log.Fatalf("algorithms disagree: %d vs %d", count, reference)
		}
	}
	fmt.Println("\nhash/hashvec fuse the L mask into the SpGEMM; the others filter afterwards")
}
