// Markov clustering (MCL): the paper's canonical A² workload — community
// detection by repeated SpGEMM expansion and elementwise inflation.
//
//	go run ./examples/mcl
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/graph"
	"repro/internal/matrix"
	"repro/internal/spgemm"
)

func main() {
	// Build a planted-partition graph: 8 communities of 64 vertices,
	// dense inside (p=0.3), sparse across (p=0.004).
	rng := rand.New(rand.NewSource(5))
	const communities, size = 8, 64
	n := communities * size
	coo := matrix.NewCOO(n, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			p := 0.004
			if i/size == j/size {
				p = 0.3
			}
			if rng.Float64() < p {
				coo.Append(int32(i), int32(j), 1)
				coo.Append(int32(j), int32(i), 1)
			}
		}
	}
	adj := coo.ToCSR()
	fmt.Printf("planted graph: %v, %d communities of %d\n", adj, communities, size)

	start := time.Now()
	res, err := graph.MCL(adj, &graph.MCLOptions{
		Inflation: 2,
		SpGEMM:    &spgemm.Options{Algorithm: spgemm.AlgHash},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MCL: %d clusters in %d iterations (%v)\n", res.NumClusters, res.Iterations, time.Since(start))

	// Score against the planted truth: fraction of vertex pairs whose
	// same/different-cluster relation matches the plant.
	var agree, total int64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			same := res.Cluster[i] == res.Cluster[j]
			planted := i/size == j/size
			if same == planted {
				agree++
			}
			total++
		}
	}
	fmt.Printf("pair agreement with planted communities: %.1f%%\n", 100*float64(agree)/float64(total))
}
