// Quickstart: generate a sparse matrix, square it with the optimized Hash
// SpGEMM, and compare the algorithms on the same input.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/gen"
	"repro/internal/matrix"
	"repro/internal/spgemm"
)

func main() {
	// A scale-12 Graph500 matrix: 4096 rows, ~16 nonzeros per row, with
	// the skewed degree distribution real graphs have.
	rng := rand.New(rand.NewSource(42))
	a := gen.RMAT(12, 16, gen.G500Params, rng)
	fmt.Printf("input: %v (mean degree %.1f)\n", a, a.AvgRowNNZ())

	// The one-call API: C = A·A with the algorithm chosen by the paper's
	// recipe (Table 4).
	c, err := spgemm.Multiply(a, a, &spgemm.Options{Algorithm: spgemm.AlgAuto})
	if err != nil {
		log.Fatal(err)
	}
	flop, _ := matrix.Flop(a, a)
	fmt.Printf("C = A*A: %v, compression ratio %.2f\n\n", c, float64(flop)/float64(c.NNZ()))

	// Compare every algorithm on the same product, sorted and unsorted.
	fmt.Printf("%-14s %12s %12s\n", "algorithm", "sorted", "unsorted")
	for _, alg := range []spgemm.Algorithm{
		spgemm.AlgHash, spgemm.AlgHashVec, spgemm.AlgHeap, spgemm.AlgSPA,
		spgemm.AlgMKL, spgemm.AlgMKLInspector, spgemm.AlgKokkos, spgemm.AlgMerge,
		spgemm.AlgTiled,
	} {
		fmt.Printf("%-14s %12s %12s\n", alg, run(a, alg, false), run(a, alg, true))
	}
	fmt.Println("\ncells are MFLOPS; '-' = mode unsupported (heap/merge cannot skip sorting)")
}

func run(a *matrix.CSR, alg spgemm.Algorithm, unsorted bool) string {
	if unsorted && !spgemm.SupportsUnsorted(alg) {
		return "-"
	}
	flop, _ := matrix.Flop(a, a)
	start := time.Now()
	if _, err := spgemm.Multiply(a, a, &spgemm.Options{Algorithm: alg, Unsorted: unsorted}); err != nil {
		return "err"
	}
	return fmt.Sprintf("%.1f", 2*float64(flop)/time.Since(start).Seconds()/1e6)
}
