// Betweenness centrality via batched SpGEMM (Brandes' algorithm in the
// linear-algebra formulation of the Combinatorial BLAS, the paper's
// reference [8]): forward BFS path counting and backward dependency
// accumulation are both multiplications of the graph by tall-skinny
// matrices, one column per source.
//
//	go run ./examples/betweenness
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/spgemm"
)

func main() {
	rng := rand.New(rand.NewSource(13))
	g := gen.RMAT(11, 8, gen.G500Params, rng)
	fmt.Printf("graph: %v\n", g)

	// Approximate centrality from a sample of 128 sources.
	sources := make([]int32, 128)
	for i := range sources {
		sources[i] = int32(rng.Intn(g.Rows))
	}

	start := time.Now()
	bc, err := graph.Betweenness(g, sources, 64, &spgemm.Options{Algorithm: spgemm.AlgHash})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d-source approximation in %v\n\n", len(sources), time.Since(start))

	// Top-10 most central vertices.
	idx := make([]int, len(bc))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return bc[idx[a]] > bc[idx[b]] })
	fmt.Println("most central vertices (hub-dominated, as expected for G500):")
	for rank := 0; rank < 10; rank++ {
		v := idx[rank]
		fmt.Printf("  #%2d vertex %5d  bc=%.1f\n", rank+1, v, bc[v])
	}
}
