package gen

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/matrix"
)

func TestRMATDimensionsAndDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	for _, p := range []RMATParams{ERParams, G500Params} {
		m := RMAT(10, 8, p, rng)
		if err := m.Validate(); err != nil {
			t.Fatal(err)
		}
		if m.Rows != 1024 || m.Cols != 1024 {
			t.Fatalf("dims %dx%d", m.Rows, m.Cols)
		}
		// nnz ≤ generated edges; and at least half survive duplicate
		// merging even for skewed parameters at this density.
		if m.NNZ() > 8*1024 || m.NNZ() < 4*1024 {
			t.Fatalf("nnz = %d", m.NNZ())
		}
	}
}

func TestERMatchesRMATUniformStatistically(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	er := ER(10, 8, rng)
	if err := er.Validate(); err != nil {
		t.Fatal(err)
	}
	// Uniform: no row should be enormously heavy.
	if er.MaxRowNNZ() > 40 {
		t.Fatalf("ER max degree %d is implausibly high", er.MaxRowNNZ())
	}
}

func TestG500IsSkewedERIsNot(t *testing.T) {
	rng := rand.New(rand.NewSource(203))
	er := ER(12, 16, rng)
	g500 := RMAT(12, 16, G500Params, rng)
	// Skew signal: max degree relative to mean.
	erRatio := float64(er.MaxRowNNZ()) / er.AvgRowNNZ()
	gRatio := float64(g500.MaxRowNNZ()) / g500.AvgRowNNZ()
	if gRatio < 3*erRatio {
		t.Fatalf("G500 skew ratio %.1f not clearly above ER %.1f", gRatio, erRatio)
	}
}

func TestRMATDeterministicWithSeed(t *testing.T) {
	a := RMAT(8, 8, G500Params, rand.New(rand.NewSource(7)))
	b := RMAT(8, 8, G500Params, rand.New(rand.NewSource(7)))
	if !matrix.Equal(a, b) {
		t.Fatal("same seed should reproduce the same matrix")
	}
}

func TestTallSkinny(t *testing.T) {
	rng := rand.New(rand.NewSource(204))
	g := RMAT(10, 8, G500Params, rng)
	ts := TallSkinny(g, 6, rng)
	if err := ts.Validate(); err != nil {
		t.Fatal(err)
	}
	if ts.Rows != g.Rows || ts.Cols != 64 {
		t.Fatalf("dims %dx%d", ts.Rows, ts.Cols)
	}
	if !ts.Sorted {
		t.Fatal("tall-skinny selection should preserve sortedness")
	}
	// Requesting more columns than exist clamps.
	ts2 := TallSkinny(g, 30, rng)
	if ts2.Cols != g.Cols {
		t.Fatalf("clamp failed: %d", ts2.Cols)
	}
}

func TestUnsortedPreservesProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(205))
	g := RMAT(8, 4, ERParams, rng)
	u := Unsorted(g, rng)
	if u.Sorted {
		t.Fatal("Unsorted must clear the Sorted flag")
	}
	if u.NNZ() != g.NNZ() {
		t.Fatal("shuffle changed nnz")
	}
	// The represented matrix must be unchanged — only storage order may
	// differ (this is what makes sorted-vs-unsorted timing comparable).
	if !matrix.EqualApprox(g, u, 0) {
		t.Fatal("Unsorted changed the matrix, not just the entry order")
	}
	// And the flop of the square is identical.
	fg, _ := matrix.Flop(g, g)
	fu, _ := matrix.Flop(u, u)
	if fg != fu {
		t.Fatalf("flop changed: %d vs %d", fg, fu)
	}
}

func TestSpreadBandStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(206))
	m := SpreadBand(500, 8, 30, rng)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m.Rows; i++ {
		cols, _ := m.Row(i)
		if len(cols) != 8 {
			t.Fatalf("row %d has %d entries", i, len(cols))
		}
		for _, c := range cols {
			if int(c) < i-30 || int(c) > i+30 {
				t.Fatalf("row %d entry %d outside window", i, c)
			}
		}
	}
}

func TestSpreadBandDenseWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(207))
	// d larger than the window: rows are clamped to the window size.
	m := SpreadBand(100, 20, 5, rng)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 5; i < 95; i++ {
		if m.RowNNZ(i) != 11 { // full window 2*5+1
			t.Fatalf("row %d nnz %d, want 11", i, m.RowNNZ(i))
		}
	}
}

func TestSolveLambda(t *testing.T) {
	for _, cr := range []float64{1.01, 1.5, 2, 5, 15, 30} {
		l := solveLambda(cr)
		got := crOfLambda(l)
		if math.Abs(got-cr) > 1e-6 {
			t.Fatalf("cr=%v: λ=%v gives %v", cr, l, got)
		}
	}
	if solveLambda(1.0) != 0 || solveLambda(0.5) != 0 {
		t.Fatal("cr<=1 must map to λ=0")
	}
	// Asymptotics of the triangular model.
	if crOfLambda(1e-13) != 1 {
		t.Fatal("crOfLambda(0) must be 1")
	}
	if math.Abs(crOfLambda(1000)-500) > 1 {
		t.Fatalf("crOfLambda(1000) = %v, want ≈500", crOfLambda(1000))
	}
}

func TestProxyMatchesProfileCR(t *testing.T) {
	rng := rand.New(rand.NewSource(208))
	// A spread of CR regimes: low (graph), mid, high (FEM).
	for _, name := range []string{"patents_main", "cage12", "cant", "pdb1HYS", "webbase-1M"} {
		p := ProfileByName(name)
		if p == nil {
			t.Fatalf("profile %s missing", name)
		}
		m := Proxy(*p, 1<<14, rng)
		if err := m.Validate(); err != nil {
			t.Fatal(err)
		}
		st := matrix.ProductStats(m, m)
		wantCR := p.CompressionRatio()
		// The analytic window model is approximate; accept 40% relative
		// error — Figure 14/15 only need the CR ordering preserved.
		if st.CompressionRatio < wantCR*0.6 || st.CompressionRatio > wantCR*1.6 {
			t.Errorf("%s: proxy CR %.2f, paper %.2f", name, st.CompressionRatio, wantCR)
		}
		// Degree matches.
		if math.Abs(m.AvgRowNNZ()-p.Degree()) > p.Degree()*0.3+1 {
			t.Errorf("%s: proxy degree %.1f, paper %.1f", name, m.AvgRowNNZ(), p.Degree())
		}
	}
}

func TestProxyCROrderingPreserved(t *testing.T) {
	// Figures 14/15/17 sort matrices by CR; the proxies must preserve the
	// relative order between a clearly-low and a clearly-high CR profile.
	rng := rand.New(rand.NewSource(209))
	low := Proxy(*ProfileByName("patents_main"), 1<<13, rng) // CR 1.14
	high := Proxy(*ProfileByName("pdb1HYS"), 1<<13, rng)     // CR 28.3
	crLow := matrix.ProductStats(low, low).CompressionRatio
	crHigh := matrix.ProductStats(high, high).CompressionRatio
	if crLow >= crHigh {
		t.Fatalf("CR ordering broken: low=%v high=%v", crLow, crHigh)
	}
}

func TestTable2Complete(t *testing.T) {
	if len(Table2) != 26 {
		t.Fatalf("Table2 has %d entries, want 26", len(Table2))
	}
	for _, p := range Table2 {
		if p.N <= 0 || p.NNZ <= 0 || p.Flop <= 0 || p.NNZC <= 0 {
			t.Fatalf("%s: bad profile %+v", p.Name, p)
		}
		if p.Flop < p.NNZC {
			t.Fatalf("%s: flop < nnzC", p.Name)
		}
	}
	if ProfileByName("no-such-matrix") != nil {
		t.Fatal("unknown profile should be nil")
	}
}

func TestProxyFullSizeWhenMaxNZero(t *testing.T) {
	rng := rand.New(rand.NewSource(210))
	p := Profile{Name: "tiny", N: 1000, NNZ: 4000, Flop: 32000, NNZC: 16000}
	m := Proxy(p, 0, rng)
	if m.Rows != 1000 {
		t.Fatalf("rows = %d", m.Rows)
	}
}
