// Package gen generates the evaluation workloads of the paper's Section 5:
// R-MAT synthetic matrices with ER (uniform) and G500 (power-law) nonzero
// patterns, tall-skinny right-hand sides, and profile-matched synthetic
// proxies for the 26 SuiteSparse matrices of Table 2.
package gen

import (
	"math/rand"

	"repro/internal/matrix"
)

// RMATParams are the quadrant probabilities of the recursive matrix
// generator of Chakrabarti et al. A scale-s matrix is 2^s × 2^s.
type RMATParams struct {
	A, B, C, D float64
}

// ERParams generates Erdős-Rényi-like uniform matrices (a=b=c=d=0.25),
// the paper's "ER" inputs.
var ERParams = RMATParams{0.25, 0.25, 0.25, 0.25}

// G500Params are the Graph500 parameters (a=0.57, b=c=0.19, d=0.05),
// the paper's skewed "G500" inputs.
var G500Params = RMATParams{0.57, 0.19, 0.19, 0.05}

// RMAT generates a scale×scale R-MAT matrix with edgeFactor·2^scale
// generated edges. Duplicate edges are merged by summation, so the final
// nnz is slightly below edgeFactor·2^scale for skewed parameters (as with
// the Graph500 generator). Values are uniform in (0, 1].
func RMAT(scale, edgeFactor int, p RMATParams, rng *rand.Rand) *matrix.CSR {
	n := 1 << uint(scale)
	edges := int64(edgeFactor) * int64(n)
	coo := &matrix.COO{Rows: n, Cols: n, Entries: make([]matrix.Entry, 0, edges)}
	for e := int64(0); e < edges; e++ {
		row, col := rmatEdge(scale, p, rng)
		coo.Append(row, col, 1-rng.Float64())
	}
	return coo.ToCSR()
}

// rmatEdge draws one edge by recursive quadrant descent.
func rmatEdge(scale int, p RMATParams, rng *rand.Rand) (int32, int32) {
	var row, col int32
	ab := p.A + p.B
	abc := ab + p.C
	for bit := scale - 1; bit >= 0; bit-- {
		r := rng.Float64()
		switch {
		case r < p.A:
			// top-left: nothing to set
		case r < ab:
			col |= 1 << uint(bit)
		case r < abc:
			row |= 1 << uint(bit)
		default:
			row |= 1 << uint(bit)
			col |= 1 << uint(bit)
		}
	}
	return row, col
}

// ER generates a uniform random matrix directly (equivalent to RMAT with
// ERParams but cheaper): edgeFactor·2^scale entries at uniform positions,
// duplicates merged.
func ER(scale, edgeFactor int, rng *rand.Rand) *matrix.CSR {
	n := 1 << uint(scale)
	edges := int64(edgeFactor) * int64(n)
	coo := &matrix.COO{Rows: n, Cols: n, Entries: make([]matrix.Entry, 0, edges)}
	for e := int64(0); e < edges; e++ {
		coo.Append(int32(rng.Intn(n)), int32(rng.Intn(n)), 1-rng.Float64())
	}
	return coo.ToCSR()
}

// TallSkinny builds the right-hand side of the paper's Section 5.5: a
// tall-skinny matrix formed by randomly selecting 2^shortScale distinct
// columns of g ("we generate the tall-skinny matrix by randomly selecting
// columns from the graph itself").
func TallSkinny(g *matrix.CSR, shortScale int, rng *rand.Rand) *matrix.CSR {
	k := 1 << uint(shortScale)
	if k > g.Cols {
		k = g.Cols
	}
	perm := rng.Perm(g.Cols)[:k]
	cols := make([]int32, k)
	for i, c := range perm {
		cols[i] = int32(c)
	}
	// Sort selection so the result keeps sorted rows.
	for i := 1; i < len(cols); i++ {
		for j := i; j > 0 && cols[j] < cols[j-1]; j-- {
			cols[j], cols[j-1] = cols[j-1], cols[j]
		}
	}
	return g.SelectColumns(cols)
}

// Unsorted returns a copy of m representing the same matrix but with each
// row's column indices stored in random order — the paper's protocol for
// producing unsorted inputs ("the column indices of input matrices are
// randomly permuted"). The represented matrix (and hence the product and its
// flop count) is unchanged, which is what makes the paper's sorted-vs-
// unsorted speedup comparison meaningful.
func Unsorted(m *matrix.CSR, rng *rand.Rand) *matrix.CSR {
	return m.ShuffleRowEntries(rng)
}
