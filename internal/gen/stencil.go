package gen

import (
	"math/rand"

	"repro/internal/matrix"
)

// Stencil generators: the regular discretization matrices of the paper's
// numerical motivation (AMG, Section 1). These have the "regular non-zero
// pattern" the cost analysis of Section 4.2.4 identifies as the
// high-compression-ratio regime where Hash dominates.

// Poisson2D returns the 5-point Laplacian on an nx×ny grid (dimension
// nx·ny): 4 on the diagonal, -1 to each grid neighbour.
func Poisson2D(nx, ny int) *matrix.CSR {
	n := nx * ny
	coo := &matrix.COO{Rows: n, Cols: n, Entries: make([]matrix.Entry, 0, 5*n)}
	id := func(x, y int) int32 { return int32(y*nx + x) }
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			v := id(x, y)
			coo.Append(v, v, 4)
			if x > 0 {
				coo.Append(v, id(x-1, y), -1)
			}
			if x < nx-1 {
				coo.Append(v, id(x+1, y), -1)
			}
			if y > 0 {
				coo.Append(v, id(x, y-1), -1)
			}
			if y < ny-1 {
				coo.Append(v, id(x, y+1), -1)
			}
		}
	}
	return coo.ToCSR()
}

// Poisson3D returns the 7-point Laplacian on an nx×ny×nz grid.
func Poisson3D(nx, ny, nz int) *matrix.CSR {
	n := nx * ny * nz
	coo := &matrix.COO{Rows: n, Cols: n, Entries: make([]matrix.Entry, 0, 7*n)}
	id := func(x, y, z int) int32 { return int32((z*ny+y)*nx + x) }
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				v := id(x, y, z)
				coo.Append(v, v, 6)
				if x > 0 {
					coo.Append(v, id(x-1, y, z), -1)
				}
				if x < nx-1 {
					coo.Append(v, id(x+1, y, z), -1)
				}
				if y > 0 {
					coo.Append(v, id(x, y-1, z), -1)
				}
				if y < ny-1 {
					coo.Append(v, id(x, y+1, z), -1)
				}
				if z > 0 {
					coo.Append(v, id(x, y, z-1), -1)
				}
				if z < nz-1 {
					coo.Append(v, id(x, y, z+1), -1)
				}
			}
		}
	}
	return coo.ToCSR()
}

// AggregationProlongator returns the piecewise-constant prolongation P
// (fine×coarse) used by aggregation-based AMG: fine dof i maps to coarse
// aggregate i/aggSize. With rng non-nil the aggregate boundaries are
// jittered to mimic irregular smoothed-aggregation supports.
func AggregationProlongator(fine, aggSize int, rng *rand.Rand) *matrix.CSR {
	if aggSize < 1 {
		aggSize = 2
	}
	coarse := (fine + aggSize - 1) / aggSize
	coo := &matrix.COO{Rows: fine, Cols: coarse, Entries: make([]matrix.Entry, 0, fine)}
	for i := 0; i < fine; i++ {
		c := i / aggSize
		if rng != nil && rng.Float64() < 0.2 {
			// Jitter: attach to a neighbouring aggregate occasionally.
			if rng.Intn(2) == 0 && c > 0 {
				c--
			} else if c < coarse-1 {
				c++
			}
		}
		coo.Append(int32(i), int32(c), 1)
	}
	return coo.ToCSR()
}
