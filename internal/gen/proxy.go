package gen

import (
	"math"
	"math/rand"

	"repro/internal/matrix"
)

// Profile records one row of the paper's Table 2: the structural statistics
// of a SuiteSparse matrix (all counts in absolute units, converted from the
// paper's millions).
type Profile struct {
	Name string
	N    int
	NNZ  int64
	Flop int64 // flop(A²)
	NNZC int64 // nnz(A²)
}

// CompressionRatio is the paper's flop(A²)/nnz(A²).
func (p Profile) CompressionRatio() float64 { return float64(p.Flop) / float64(p.NNZC) }

// Degree is the mean nonzeros per row.
func (p Profile) Degree() float64 { return float64(p.NNZ) / float64(p.N) }

// Table2 lists the 26 SuiteSparse matrices of the paper's Table 2.
var Table2 = []Profile{
	{"2cubes_sphere", 101_000, 1_650_000, 27_450_000, 8_970_000},
	{"cage12", 130_000, 2_030_000, 34_610_000, 15_230_000},
	{"cage15", 5_155_000, 99_200_000, 2_078_630_000, 929_020_000},
	{"cant", 62_000, 4_010_000, 269_490_000, 17_440_000},
	{"conf5_4-8x8-05", 49_000, 1_920_000, 74_760_000, 10_910_000},
	{"consph", 83_000, 6_010_000, 463_850_000, 26_540_000},
	{"cop20k_A", 121_000, 2_620_000, 79_880_000, 18_710_000},
	{"delaunay_n24", 16_777_000, 100_660_000, 633_910_000, 347_320_000},
	{"filter3D", 106_000, 2_710_000, 85_960_000, 20_160_000},
	{"hood", 221_000, 10_770_000, 562_030_000, 34_240_000},
	{"m133-b3", 200_000, 800_000, 3_200_000, 3_180_000},
	{"mac_econ_fwd500", 207_000, 1_270_000, 7_560_000, 6_700_000},
	{"majorbasis", 160_000, 1_750_000, 19_180_000, 8_240_000},
	{"mario002", 390_000, 2_100_000, 12_830_000, 6_450_000},
	{"mc2depi", 526_000, 2_100_000, 8_390_000, 5_250_000},
	{"mono_500Hz", 169_000, 5_040_000, 204_030_000, 41_380_000},
	{"offshore", 260_000, 4_240_000, 71_340_000, 23_360_000},
	{"patents_main", 241_000, 560_000, 2_600_000, 2_280_000},
	{"pdb1HYS", 36_000, 4_340_000, 555_320_000, 19_590_000},
	{"poisson3Da", 14_000, 350_000, 11_770_000, 2_960_000},
	{"pwtk", 218_000, 11_630_000, 626_050_000, 32_770_000},
	{"rma10", 47_000, 2_370_000, 156_480_000, 7_900_000},
	{"scircuit", 171_000, 960_000, 8_680_000, 5_220_000},
	{"shipsec1", 141_000, 7_810_000, 450_640_000, 24_090_000},
	{"wb-edu", 9_846_000, 57_160_000, 1_559_580_000, 630_080_000},
	{"webbase-1M", 1_000_000, 3_110_000, 69_520_000, 51_110_000},
}

// ProfileByName returns the Table 2 profile with the given name, or nil.
func ProfileByName(name string) *Profile {
	for i := range Table2 {
		if Table2[i].Name == name {
			return &Table2[i]
		}
	}
	return nil
}

// Proxy generates a synthetic stand-in for a Table 2 matrix. The SuiteSparse
// collection is not available offline, so we build a "spread band" matrix
// with the same row count (scaled down to at most maxN rows; 0 keeps the
// original size), the same mean degree, and — the property the paper's
// Figures 14, 15 and 17 key on — the same compression ratio flop/nnz(A²).
//
// Spread band: row i has d nonzeros at distinct uniform positions within a
// window of half-width W centered on column i. Squaring such a matrix lands
// d² products on columns distributed triangularly over [i−2W, i+2W] (the
// convolution of two uniform windows), with peak intensity λ = d²/(2W) at
// the center. The expected compression ratio is then
//
//	CR(λ) = λ / (2·(1 − (1−e^{−λ})/λ))
//
// (→1 as λ→0, →λ/2 as λ→∞); W is solved from the profile's target CR. This
// preserves n, nnz, flop and CR while replacing the exact sparsity pattern;
// skew is not reproduced (see DESIGN.md's substitution table).
func Proxy(p Profile, maxN int, rng *rand.Rand) *matrix.CSR {
	n := p.N
	if maxN > 0 && n > maxN {
		n = maxN
	}
	d := int(math.Round(p.Degree()))
	if d < 1 {
		d = 1
	}
	cr := p.CompressionRatio()
	lambda := solveLambda(cr)
	// Peak product intensity λ = d²/(2W) → half-width W = d²/(2λ).
	var window int
	if lambda <= 0 {
		window = n
	} else {
		window = int(math.Round(float64(d*d) / (2 * lambda)))
	}
	if window < d {
		window = d
	}
	if window > n {
		window = n
	}
	return SpreadBand(n, d, window, rng)
}

// crOfLambda is the expected compression ratio of a spread-band square at
// peak intensity λ under the triangular overlap model (see Proxy).
func crOfLambda(l float64) float64 {
	if l < 1e-12 {
		return 1
	}
	return l / (2 * (1 - (1-math.Exp(-l))/l))
}

// solveLambda inverts crOfLambda by bisection. cr ≤ 1 maps to 0 (no
// collisions: unbounded window).
func solveLambda(cr float64) float64 {
	if cr <= 1+1e-9 {
		return 0
	}
	lo, hi := 1e-9, 4*cr+10 // crOfLambda(λ)≈λ/2 for large λ
	for iter := 0; iter < 100; iter++ {
		mid := (lo + hi) / 2
		if crOfLambda(mid) < cr {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// SpreadBand builds an n×n matrix whose row i has exactly min(d, window
// size) distinct nonzeros at uniform positions within the window of width
// 2·halfW+1 centered on column i (clipped at the matrix edge). Rows are
// sorted. Values are uniform in (0, 1].
func SpreadBand(n, d, halfW int, rng *rand.Rand) *matrix.CSR {
	m := &matrix.CSR{Rows: n, Cols: n, RowPtr: make([]int64, n+1), Sorted: true}
	m.ColIdx = make([]int32, 0, int64(n)*int64(d))
	m.Val = make([]float64, 0, int64(n)*int64(d))
	row := make([]int32, 0, d)
	seen := make(map[int32]bool, d)
	for i := 0; i < n; i++ {
		lo := i - halfW
		if lo < 0 {
			lo = 0
		}
		hi := i + halfW
		if hi >= n {
			hi = n - 1
		}
		width := hi - lo + 1
		k := d
		if k > width {
			k = width
		}
		row = row[:0]
		clear(seen)
		if k*2 >= width {
			// Dense window: sample by shuffling the window.
			for off := 0; off < width; off++ {
				row = append(row, int32(lo+off))
			}
			rng.Shuffle(width, func(a, b int) { row[a], row[b] = row[b], row[a] })
			row = row[:k]
		} else {
			for len(row) < k {
				c := int32(lo + rng.Intn(width))
				if !seen[c] {
					seen[c] = true
					row = append(row, c)
				}
			}
		}
		// Insertion sort keeps the row sorted.
		for x := 1; x < len(row); x++ {
			for y := x; y > 0 && row[y] < row[y-1]; y-- {
				row[y], row[y-1] = row[y-1], row[y]
			}
		}
		for _, c := range row {
			m.ColIdx = append(m.ColIdx, c)
			m.Val = append(m.Val, 1-rng.Float64())
		}
		m.RowPtr[i+1] = int64(len(m.ColIdx))
	}
	return m
}
