package gen

import (
	"math/rand"
	"testing"

	"repro/internal/matrix"
)

func TestPoisson2DStructure(t *testing.T) {
	m := Poisson2D(4, 3)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Rows != 12 {
		t.Fatalf("rows = %d", m.Rows)
	}
	// Interior vertex (1,1) = id 5 has 5 entries; corner id 0 has 3.
	if m.RowNNZ(5) != 5 {
		t.Fatalf("interior row nnz = %d", m.RowNNZ(5))
	}
	if m.RowNNZ(0) != 3 {
		t.Fatalf("corner row nnz = %d", m.RowNNZ(0))
	}
	// Symmetric and rows sum to >= 0 (diagonally dominant M-matrix).
	tr := m.Transpose()
	if !matrix.Equal(m, tr) {
		t.Fatal("Poisson2D not symmetric")
	}
	for i, s := range m.RowSums() {
		if s < 0 {
			t.Fatalf("row %d sum %v < 0", i, s)
		}
	}
}

func TestPoisson3DStructure(t *testing.T) {
	m := Poisson3D(3, 3, 3)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Rows != 27 {
		t.Fatalf("rows = %d", m.Rows)
	}
	// Center vertex has all 7 entries.
	center := (1*3+1)*3 + 1
	if m.RowNNZ(center) != 7 {
		t.Fatalf("center nnz = %d", m.RowNNZ(center))
	}
	if !matrix.Equal(m, m.Transpose()) {
		t.Fatal("Poisson3D not symmetric")
	}
}

func TestPoissonSquareCompressionRatio(t *testing.T) {
	// Regular stencils are the regular-pattern regime of Section 4.2.4:
	// the 5-point stencil squared has interior flop 25 and 13 distinct
	// outputs, CR → 25/13 ≈ 1.92.
	m := Poisson2D(40, 40)
	st := matrix.ProductStats(m, m)
	if st.CompressionRatio < 1.8 || st.CompressionRatio > 1.95 {
		t.Fatalf("Poisson2D CR = %v, want ≈25/13", st.CompressionRatio)
	}
}

func TestAggregationProlongator(t *testing.T) {
	p := AggregationProlongator(10, 2, nil)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Rows != 10 || p.Cols != 5 {
		t.Fatalf("dims %dx%d", p.Rows, p.Cols)
	}
	// Every fine dof maps to exactly one aggregate.
	for i := 0; i < p.Rows; i++ {
		if p.RowNNZ(i) != 1 {
			t.Fatalf("row %d nnz %d", i, p.RowNNZ(i))
		}
	}
	// Jittered version stays valid and single-entry.
	pj := AggregationProlongator(100, 4, rand.New(rand.NewSource(1)))
	if err := pj.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < pj.Rows; i++ {
		if pj.RowNNZ(i) != 1 {
			t.Fatalf("jittered row %d nnz %d", i, pj.RowNNZ(i))
		}
	}
	// Degenerate aggregate size clamps.
	if AggregationProlongator(5, 0, nil).Cols != 3 {
		t.Fatal("aggSize clamp broken")
	}
}
