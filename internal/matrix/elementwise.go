package matrix

import (
	"fmt"

	"repro/internal/semiring"
)

// Elementwise matrix algebra. These operate row-by-row on sorted matrices
// (unsorted inputs are sorted into a copy first) and return sorted results.
// Add is float64-specific (it scales by float64 factors); Hadamard and the
// reductions below it are generic.

// Add returns alpha·a + beta·b. Dimensions must match.
func Add(a, b *CSR, alpha, beta float64) (*CSR, error) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return nil, fmt.Errorf("matrix: Add dimension mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	a = ensureSorted(a)
	b = ensureSorted(b)
	out := &CSR{Rows: a.Rows, Cols: a.Cols, RowPtr: make([]int64, a.Rows+1), Sorted: true}
	out.ColIdx = make([]int32, 0, a.NNZ()+b.NNZ())
	out.Val = make([]float64, 0, a.NNZ()+b.NNZ())
	for i := 0; i < a.Rows; i++ {
		ac, av := a.Row(i)
		bc, bv := b.Row(i)
		p, q := 0, 0
		for p < len(ac) || q < len(bc) {
			switch {
			case q >= len(bc) || (p < len(ac) && ac[p] < bc[q]):
				out.push(ac[p], alpha*av[p])
				p++
			case p >= len(ac) || bc[q] < ac[p]:
				out.push(bc[q], beta*bv[q])
				q++
			default:
				if v := alpha*av[p] + beta*bv[q]; v != 0 {
					out.push(ac[p], v)
				}
				p++
				q++
			}
		}
		out.RowPtr[i+1] = int64(len(out.ColIdx))
	}
	return out, nil
}

// Hadamard returns the elementwise product a .* b (intersection of
// patterns). Dimensions must match.
func Hadamard(a, b *CSR) (*CSR, error) { return HadamardG(a, b) }

// HadamardG is the generic elementwise product: mulValue semantics (numeric
// product; logical AND for bool), entries whose product is the storage zero
// are dropped.
func HadamardG[V semiring.Value](a, b *CSRG[V]) (*CSRG[V], error) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return nil, fmt.Errorf("matrix: Hadamard dimension mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	a = ensureSorted(a)
	b = ensureSorted(b)
	out := &CSRG[V]{Rows: a.Rows, Cols: a.Cols, RowPtr: make([]int64, a.Rows+1), Sorted: true}
	for i := 0; i < a.Rows; i++ {
		ac, av := a.Row(i)
		bc, bv := b.Row(i)
		p, q := 0, 0
		for p < len(ac) && q < len(bc) {
			switch {
			case ac[p] < bc[q]:
				p++
			case bc[q] < ac[p]:
				q++
			default:
				if v := mulValue(av[p], bv[q]); !isZeroValue(v) {
					out.push(ac[p], v)
				}
				p++
				q++
			}
		}
		out.RowPtr[i+1] = int64(len(out.ColIdx))
	}
	return out, nil
}

// Scale multiplies every stored value by alpha (logical AND for bool), in
// place, and returns m.
func (m *CSRG[V]) Scale(alpha V) *CSRG[V] {
	for i := range m.Val {
		m.Val[i] = mulValue(m.Val[i], alpha)
	}
	return m
}

// Sum returns the combination of all stored values under V's conventional
// addition (numeric sum; logical OR for bool).
func (m *CSRG[V]) Sum() V {
	var s V
	for _, v := range m.Val {
		s = addValue(s, v)
	}
	return s
}

// RowSums returns the per-row sums of stored values.
func (m *CSRG[V]) RowSums() []V {
	out := make([]V, m.Rows)
	for i := 0; i < m.Rows; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		var s V
		for p := lo; p < hi; p++ {
			s = addValue(s, m.Val[p])
		}
		out[i] = s
	}
	return out
}

// push appends one entry to the under-construction matrix.
func (m *CSRG[V]) push(col int32, v V) {
	m.ColIdx = append(m.ColIdx, col)
	m.Val = append(m.Val, v)
}

// ensureSorted returns m if its rows are sorted, else a sorted copy.
func ensureSorted[V semiring.Value](m *CSRG[V]) *CSRG[V] {
	if m.Sorted {
		return m
	}
	c := m.Clone()
	c.SortRows()
	return c
}
