package matrix

import (
	"math/rand"
	"testing"
)

func randomCSRStripe(t *testing.T, rng *rand.Rand, rows, cols int, density float64, sorted bool) *CSR {
	t.Helper()
	m := NewCSR(rows, cols)
	var colIdx []int32
	var vals []float64
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < density {
				colIdx = append(colIdx, int32(j))
				vals = append(vals, rng.NormFloat64())
			}
		}
		if !sorted && len(colIdx) > int(m.RowPtr[i]) {
			seg := colIdx[m.RowPtr[i]:]
			vseg := vals[m.RowPtr[i]:]
			rng.Shuffle(len(seg), func(a, b int) {
				seg[a], seg[b] = seg[b], seg[a]
				vseg[a], vseg[b] = vseg[b], vseg[a]
			})
		}
		m.RowPtr[i+1] = int64(len(colIdx))
	}
	m.ColIdx = colIdx
	m.Val = vals
	m.Sorted = sorted
	if err := m.Validate(); err != nil {
		t.Fatalf("generator produced invalid matrix: %v", err)
	}
	return m
}

func TestRowStripeViewsAliasParent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := randomCSRStripe(t, rng, 40, 23, 0.2, true)
	for _, r := range [][2]int{{0, 40}, {0, 0}, {40, 40}, {3, 17}, {17, 40}} {
		lo, hi := r[0], r[1]
		s := m.RowStripe(lo, hi)
		if err := s.Validate(); err != nil {
			t.Fatalf("stripe [%d,%d) invalid: %v", lo, hi, err)
		}
		if s.Rows != hi-lo || s.Cols != m.Cols || s.Sorted != m.Sorted {
			t.Fatalf("stripe [%d,%d) header mismatch: %dx%d", lo, hi, s.Rows, s.Cols)
		}
		for i := 0; i < s.Rows; i++ {
			wc, wv := m.Row(lo + i)
			gc, gv := s.Row(i)
			if len(wc) != len(gc) {
				t.Fatalf("stripe row %d: %d entries, want %d", i, len(gc), len(wc))
			}
			for k := range wc {
				if wc[k] != gc[k] || wv[k] != gv[k] {
					t.Fatalf("stripe row %d entry %d differs", i, k)
				}
			}
		}
	}
	// Zero-copy: writing through the view must hit the parent.
	s := m.RowStripe(3, 17)
	if s.NNZ() == 0 {
		t.Fatal("test stripe unexpectedly empty")
	}
	s.Val[0] = 42.5
	if m.Val[m.RowPtr[3]] != 42.5 {
		t.Fatal("stripe Val does not alias parent")
	}
}

func TestRowStripeIntoReusesBuffer(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := randomCSRStripe(t, rng, 20, 11, 0.3, true)
	buf := make([]int64, 64)
	s := m.RowStripeInto(5, 15, buf)
	if &s.RowPtr[0] != &buf[0] {
		t.Fatal("RowStripeInto ignored the provided buffer")
	}
	if s.RowPtr[0] != 0 {
		t.Fatalf("stripe RowPtr must start at 0, got %d", s.RowPtr[0])
	}
}

func TestRowStripeBounds(t *testing.T) {
	m := NewCSR(4, 4)
	for _, r := range [][2]int{{-1, 2}, {2, 1}, {0, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("RowStripe(%d, %d) did not panic", r[0], r[1])
				}
			}()
			m.RowStripe(r[0], r[1])
		}()
	}
}

func TestColBlockSortedAndUnsorted(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, sorted := range []bool{true, false} {
		m := randomCSRStripe(t, rng, 30, 29, 0.25, sorted)
		for _, blk := range [][2]int32{{0, 29}, {0, 8}, {8, 16}, {16, 29}, {5, 5}} {
			b := ColBlockOf(m, blk[0], blk[1])
			for i := 0; i < m.Rows; i++ {
				want := map[int32]float64{}
				fc, fv := m.Row(i)
				for k, col := range fc {
					if col >= blk[0] && col < blk[1] {
						want[col] = fv[k]
					}
				}
				got := map[int32]float64{}
				cols, vals, exact := b.Row(i)
				if exact != sorted {
					t.Fatalf("sorted=%v block exactness=%v", sorted, exact)
				}
				for k, col := range cols {
					if !exact && (col < blk[0] || col >= blk[1]) {
						continue
					}
					if exact && (col < blk[0] || col >= blk[1]) {
						t.Fatalf("exact block row %d leaked column %d outside [%d,%d)", i, col, blk[0], blk[1])
					}
					got[col] = vals[k]
				}
				if len(got) != len(want) {
					t.Fatalf("block [%d,%d) row %d: %d entries, want %d", blk[0], blk[1], i, len(got), len(want))
				}
				for col, v := range want {
					if got[col] != v {
						t.Fatalf("block row %d col %d: %v want %v", i, col, got[col], v)
					}
				}
			}
		}
	}
}

func TestStitchRowStripesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, sorted := range []bool{true, false} {
		m := randomCSRStripe(t, rng, 50, 17, 0.15, sorted)
		offsets := []int{0, 12, 12, 30, 50}
		parts := make([]*CSR, len(offsets)-1)
		for s := range parts {
			// Clone the views so the parts own disjoint storage, as shard
			// outputs would.
			parts[s] = m.RowStripe(offsets[s], offsets[s+1]).Clone()
		}
		c, err := StitchRowStripes[float64](m.Rows, m.Cols, offsets, parts)
		if err != nil {
			t.Fatalf("stitch: %v", err)
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("stitched matrix invalid: %v", err)
		}
		if c.Sorted != sorted {
			t.Fatalf("stitched Sorted=%v, want %v", c.Sorted, sorted)
		}
		if c.NNZ() != m.NNZ() {
			t.Fatalf("stitched nnz %d, want %d", c.NNZ(), m.NNZ())
		}
		for i := range c.RowPtr {
			if c.RowPtr[i] != m.RowPtr[i] {
				t.Fatalf("RowPtr[%d] = %d, want %d", i, c.RowPtr[i], m.RowPtr[i])
			}
		}
		for k := range c.ColIdx {
			if c.ColIdx[k] != m.ColIdx[k] || c.Val[k] != m.Val[k] {
				t.Fatalf("entry %d differs after round trip", k)
			}
		}
	}
}

func TestStitchRowStripesRejectsBadGeometry(t *testing.T) {
	m := NewCSR(4, 3)
	p := m.RowStripe(0, 2)
	if _, err := StitchRowStripes[float64](4, 3, []int{0, 2}, []*CSR{p, p}); err == nil {
		t.Error("offset/part count mismatch accepted")
	}
	if _, err := StitchRowStripes[float64](4, 3, []int{0, 2, 3}, []*CSR{p, p}); err == nil {
		t.Error("offsets not spanning rows accepted")
	}
	if _, err := StitchRowStripes[float64](4, 3, []int{0, 3, 4}, []*CSR{p, p}); err == nil {
		t.Error("part row-count mismatch accepted")
	}
	wrongCols := NewCSR(2, 9)
	if _, err := StitchRowStripes[float64](4, 3, []int{0, 2, 4}, []*CSR{p, wrongCols}); err == nil {
		t.Error("part column mismatch accepted")
	}
	if _, err := StitchRowStripes[float64](4, 3, []int{0, 2, 4}, []*CSR{p, nil}); err == nil {
		t.Error("nil part accepted")
	}
}
