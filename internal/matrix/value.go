package matrix

// Helpers for arithmetic over the generic value parameter V. The storage
// types are generic over semiring.Value — an exact (tilde-free) type set — so
// the pointer-based type switches below are total. They box *V, not V, which
// keeps them allocation-free; they back structural utilities (Compact, ToCSR,
// Sum, ToDense), never kernel inner loops, which take a semiring.Ring and
// monomorphize instead.

import "repro/internal/semiring"

// addValue returns a+b under the conventional addition of V's type family:
// numeric + for the number types, logical OR for bool. Structural merges
// (duplicate entries in Compact / COO.ToCSR) use it, matching the historic
// float64 behavior.
func addValue[V semiring.Value](a, b V) V {
	switch p := any(&a).(type) {
	case *float64:
		*p += *any(&b).(*float64)
	case *float32:
		*p += *any(&b).(*float32)
	case *int64:
		*p += *any(&b).(*int64)
	case *int32:
		*p += *any(&b).(*int32)
	case *int:
		*p += *any(&b).(*int)
	case *uint32:
		*p += *any(&b).(*uint32)
	case *uint64:
		*p += *any(&b).(*uint64)
	case *bool:
		*p = *p || *any(&b).(*bool)
	}
	return a
}

// mulValue returns a·b: numeric × for the number types, logical AND for bool.
func mulValue[V semiring.Value](a, b V) V {
	switch p := any(&a).(type) {
	case *float64:
		*p *= *any(&b).(*float64)
	case *float32:
		*p *= *any(&b).(*float32)
	case *int64:
		*p *= *any(&b).(*int64)
	case *int32:
		*p *= *any(&b).(*int32)
	case *int:
		*p *= *any(&b).(*int)
	case *uint32:
		*p *= *any(&b).(*uint32)
	case *uint64:
		*p *= *any(&b).(*uint64)
	case *bool:
		*p = *p && *any(&b).(*bool)
	}
	return a
}

// oneValue returns the multiplicative identity of V (true for bool).
func oneValue[V semiring.Value]() V {
	var one V
	switch p := any(&one).(type) {
	case *float64:
		*p = 1
	case *float32:
		*p = 1
	case *int64:
		*p = 1
	case *int32:
		*p = 1
	case *int:
		*p = 1
	case *uint32:
		*p = 1
	case *uint64:
		*p = 1
	case *bool:
		*p = true
	}
	return one
}

// toFloat64 converts v to float64 (bool maps to 0/1), for utilities that
// bridge into float64-typed reporting (ToDense, InfNorm).
func toFloat64[V semiring.Value](v V) float64 {
	switch p := any(&v).(type) {
	case *float64:
		return *p
	case *float32:
		return float64(*p)
	case *int64:
		return float64(*p)
	case *int32:
		return float64(*p)
	case *int:
		return float64(*p)
	case *uint32:
		return float64(*p)
	case *uint64:
		return float64(*p)
	case *bool:
		if *p {
			return 1
		}
	}
	return 0
}

// isZeroValue reports whether v is the machine zero of V (false for bool).
// Note this is the *storage* zero used by Compact's explicit-zero dropping,
// not a semiring's additive identity (MinPlus keeps +Inf ≠ 0 entries).
func isZeroValue[V semiring.Value](v V) bool {
	var zero V
	return v == zero
}

// MapValues converts m entry-by-entry through f, preserving structure and
// the Sorted flag. It is the bridge between value types: e.g. a float64
// adjacency matrix becomes a bool pattern via
// MapValues(m, func(v float64) bool { return v != 0 }).
func MapValues[V, U semiring.Value](m *CSRG[V], f func(V) U) *CSRG[U] {
	out := &CSRG[U]{
		Rows:   m.Rows,
		Cols:   m.Cols,
		RowPtr: append([]int64(nil), m.RowPtr...),
		ColIdx: append([]int32(nil), m.ColIdx...),
		Val:    make([]U, len(m.Val)),
		Sorted: m.Sorted,
	}
	for i, v := range m.Val {
		out.Val[i] = f(v)
	}
	return out
}
