package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustValid(t *testing.T, m *CSR) {
	t.Helper()
	if err := m.Validate(); err != nil {
		t.Fatalf("invalid CSR: %v", err)
	}
}

func TestNewCSREmpty(t *testing.T) {
	m := NewCSR(4, 7)
	mustValid(t, m)
	if m.NNZ() != 0 {
		t.Fatalf("NNZ = %d, want 0", m.NNZ())
	}
	if m.Rows != 4 || m.Cols != 7 {
		t.Fatalf("dims = %dx%d", m.Rows, m.Cols)
	}
}

func TestIdentity(t *testing.T) {
	m := Identity(5)
	mustValid(t, m)
	if m.NNZ() != 5 {
		t.Fatalf("NNZ = %d", m.NNZ())
	}
	for i := 0; i < 5; i++ {
		cols, vals := m.Row(i)
		if len(cols) != 1 || cols[0] != int32(i) || vals[0] != 1 {
			t.Fatalf("row %d = %v %v", i, cols, vals)
		}
	}
}

func TestValidateCatchesBadRowPtr(t *testing.T) {
	m := Identity(3)
	m.RowPtr[1] = 5
	if err := m.Validate(); err == nil {
		t.Fatal("expected error for non-monotone/oversized RowPtr")
	}
}

func TestValidateCatchesOutOfRangeColumn(t *testing.T) {
	m := Identity(3)
	m.ColIdx[2] = 99
	if err := m.Validate(); err == nil {
		t.Fatal("expected error for out-of-range column")
	}
}

func TestValidateCatchesUnsortedWhenFlagged(t *testing.T) {
	m := &CSR{
		Rows: 1, Cols: 4,
		RowPtr: []int64{0, 2},
		ColIdx: []int32{3, 1},
		Val:    []float64{1, 2},
		Sorted: true,
	}
	if err := m.Validate(); err == nil {
		t.Fatal("expected error: flagged sorted but row is unsorted")
	}
	m.Sorted = false
	mustValid(t, m)
}

func TestSortRows(t *testing.T) {
	m := &CSR{
		Rows: 2, Cols: 5,
		RowPtr: []int64{0, 3, 5},
		ColIdx: []int32{4, 0, 2, 3, 1},
		Val:    []float64{40, 0, 20, 31, 12},
		Sorted: false,
	}
	m.SortRows()
	mustValid(t, m)
	want := []int32{0, 2, 4, 1, 3}
	for i, c := range want {
		if m.ColIdx[i] != c {
			t.Fatalf("ColIdx = %v, want %v", m.ColIdx, want)
		}
	}
	// Values must travel with their columns.
	if m.Val[0] != 0 || m.Val[2] != 40 || m.Val[3] != 12 {
		t.Fatalf("Val = %v", m.Val)
	}
}

func TestCompactMergesDuplicatesAndDropsZeros(t *testing.T) {
	m := &CSR{
		Rows: 1, Cols: 5,
		RowPtr: []int64{0, 5},
		ColIdx: []int32{2, 2, 4, 0, 0},
		Val:    []float64{1, 2, 7, 3, -3},
		Sorted: false,
	}
	m.Compact()
	mustValid(t, m)
	if m.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2 (col0 cancels, col2 merges)", m.NNZ())
	}
	cols, vals := m.Row(0)
	if cols[0] != 2 || vals[0] != 3 || cols[1] != 4 || vals[1] != 7 {
		t.Fatalf("row = %v %v", cols, vals)
	}
}

func TestTransposeSmall(t *testing.T) {
	// [1 2 0; 0 0 3]
	m := &CSR{
		Rows: 2, Cols: 3,
		RowPtr: []int64{0, 2, 3},
		ColIdx: []int32{0, 1, 2},
		Val:    []float64{1, 2, 3},
		Sorted: true,
	}
	tr := m.Transpose()
	mustValid(t, tr)
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("dims %dx%d", tr.Rows, tr.Cols)
	}
	d := tr.ToDense()
	if d.At(0, 0) != 1 || d.At(1, 0) != 2 || d.At(2, 1) != 3 {
		t.Fatalf("transpose wrong: %+v", d)
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		m := Random(1+rng.Intn(30), 1+rng.Intn(30), 0.2, rng)
		tt := m.Transpose().Transpose()
		if !Equal(m, tt) {
			t.Fatalf("trial %d: transpose twice != original", trial)
		}
	}
}

func TestTransposeProducesSortedRows(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		m := Random(1+rng.Intn(40), 1+rng.Intn(40), 0.3, rng)
		tr := m.Transpose()
		if !tr.IsSortedRows() {
			t.Fatalf("trial %d: transpose rows not sorted", trial)
		}
		mustValid(t, tr)
	}
}

func TestPermuteColsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := Random(20, 15, 0.3, rng)
	perm := RandomPermutation(15, rng)
	p := m.PermuteCols(perm)
	if p.Sorted {
		t.Fatal("permuted matrix should be marked unsorted")
	}
	mustValid(t, p)
	// Inverse permutation restores the matrix.
	inv := make([]int32, 15)
	for i, v := range perm {
		inv[v] = int32(i)
	}
	back := p.PermuteCols(inv)
	back.SortRows()
	if !Equal(m, back) {
		t.Fatal("inverse column permutation did not restore matrix")
	}
}

func TestShuffleRowEntries(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := Random(20, 30, 0.4, rng)
	s := m.ShuffleRowEntries(rng)
	if s.Sorted {
		t.Fatal("shuffled matrix must be marked unsorted")
	}
	mustValid(t, s)
	if !EqualApprox(m, s, 0) {
		t.Fatal("shuffle changed the represented matrix")
	}
	// Original untouched.
	if !m.IsSortedRows() {
		t.Fatal("shuffle modified the original")
	}
	// Row pointers identical.
	for i := range m.RowPtr {
		if m.RowPtr[i] != s.RowPtr[i] {
			t.Fatal("shuffle changed row structure")
		}
	}
}

func TestPermuteRows(t *testing.T) {
	m := Identity(4)
	p := m.PermuteRows([]int{3, 2, 1, 0})
	mustValid(t, p)
	for i := 0; i < 4; i++ {
		cols, _ := p.Row(i)
		if len(cols) != 1 || cols[0] != int32(3-i) {
			t.Fatalf("row %d cols = %v", i, cols)
		}
	}
}

func TestTriangleSplitPartitions(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := Random(25, 25, 0.25, rng)
	l := m.LowerTriangle()
	u := m.UpperTriangle()
	mustValid(t, l)
	mustValid(t, u)
	// Every strictly-lower entry in L, strictly-upper in U.
	for i := 0; i < l.Rows; i++ {
		cols, _ := l.Row(i)
		for _, c := range cols {
			if int(c) >= i {
				t.Fatalf("L row %d has col %d", i, c)
			}
		}
		cols, _ = u.Row(i)
		for _, c := range cols {
			if int(c) <= i {
				t.Fatalf("U row %d has col %d", i, c)
			}
		}
	}
	// L + U + diag == m.
	var diag int64
	for i := 0; i < m.Rows; i++ {
		cols, _ := m.Row(i)
		for _, c := range cols {
			if int(c) == i {
				diag++
			}
		}
	}
	if l.NNZ()+u.NNZ()+diag != m.NNZ() {
		t.Fatalf("split loses entries: %d + %d + %d != %d", l.NNZ(), u.NNZ(), diag, m.NNZ())
	}
}

func TestSelectColumns(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := Random(10, 12, 0.4, rng)
	sel := []int32{1, 5, 9}
	s := m.SelectColumns(sel)
	mustValid(t, s)
	if s.Cols != 3 {
		t.Fatalf("Cols = %d", s.Cols)
	}
	if !s.Sorted {
		t.Fatal("increasing selection should stay sorted")
	}
	d := m.ToDense()
	ds := s.ToDense()
	for i := 0; i < 10; i++ {
		for j, c := range sel {
			if d.At(i, int(c)) != ds.At(i, j) {
				t.Fatalf("(%d,%d) mismatch", i, j)
			}
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := Identity(3)
	c := m.Clone()
	c.Val[0] = 42
	c.ColIdx[1] = 0
	if m.Val[0] != 1 || m.ColIdx[1] != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestRowAccessors(t *testing.T) {
	m := Identity(3)
	if m.RowNNZ(1) != 1 {
		t.Fatalf("RowNNZ = %d", m.RowNNZ(1))
	}
	cols, vals := m.Row(2)
	if len(cols) != 1 || cols[0] != 2 || vals[0] != 1 {
		t.Fatalf("Row(2) = %v %v", cols, vals)
	}
}

// Property: for any random matrix, Compact is idempotent.
func TestCompactIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := Random(1+rng.Intn(20), 1+rng.Intn(20), 0.3, rng)
		once := m.Clone().Compact()
		twice := once.Clone().Compact()
		return Equal(once, twice)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: transpose preserves nnz and swaps dimensions.
func TestTransposePropertyQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := Random(1+rng.Intn(25), 1+rng.Intn(25), 0.25, rng)
		tr := m.Transpose()
		return tr.Rows == m.Cols && tr.Cols == m.Rows && tr.NNZ() == m.NNZ()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
