// Package matrix provides sparse matrix storage formats and the structural
// operations the SpGEMM algorithms in this repository are built on.
//
// The central type is CSRG[V] (Compressed Sparse Rows, generic over the
// stored value type): three arrays — row pointers, column indices and values
// — exactly as described in Section 2 of Nagasaka et al. (ICPP 2018), with
// the value type chosen per workload (float64 numerics, float32 for half the
// value bandwidth, bool for reachability). CSR, COO and CSC are aliases for
// the float64 instantiations, preserving the historic API. Column indices
// within a row may be sorted or unsorted; the Sorted flag records which,
// because several SpGEMM algorithms in this repository behave differently
// (and are benchmarked differently) depending on sortedness.
package matrix

import (
	"fmt"
	"sort"

	"repro/internal/semiring"
)

// CSRG is a sparse matrix in Compressed Sparse Rows format, generic over the
// stored value type V.
//
// RowPtr has length Rows+1; the column indices and values of row i live in
// ColIdx[RowPtr[i]:RowPtr[i+1]] and Val[RowPtr[i]:RowPtr[i+1]].
//
// Column indices are int32 (the paper's implementations use 32-bit keys) and
// row pointers are int64 so that matrices with more than 2^31 nonzeros are
// representable.
type CSRG[V semiring.Value] struct {
	Rows, Cols int
	RowPtr     []int64
	ColIdx     []int32
	Val        []V
	// Sorted reports whether every row's column indices are in strictly
	// increasing order. Algorithms that require sorted inputs check this
	// flag; algorithms that emit unsorted output clear it.
	Sorted bool
}

// CSR is the float64 instantiation — the historic type of this package, and
// still the default for all numeric work.
type CSR = CSRG[float64]

// NewCSR returns an empty Rows×Cols float64 matrix with no nonzeros.
func NewCSR(rows, cols int) *CSR { return NewCSRG[float64](rows, cols) }

// NewCSRG returns an empty Rows×Cols matrix with no nonzeros over V.
func NewCSRG[V semiring.Value](rows, cols int) *CSRG[V] {
	return &CSRG[V]{
		Rows:   rows,
		Cols:   cols,
		RowPtr: make([]int64, rows+1),
		ColIdx: []int32{},
		Val:    []V{},
		Sorted: true,
	}
}

// NNZ returns the number of stored nonzero entries.
func (m *CSRG[V]) NNZ() int64 {
	if len(m.RowPtr) == 0 {
		return 0
	}
	return m.RowPtr[m.Rows]
}

// RowNNZ returns the number of stored entries in row i.
func (m *CSRG[V]) RowNNZ(i int) int64 {
	return m.RowPtr[i+1] - m.RowPtr[i]
}

// Row returns the column-index and value slices of row i. The slices alias
// the matrix storage; callers must not grow them.
func (m *CSRG[V]) Row(i int) ([]int32, []V) {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	return m.ColIdx[lo:hi], m.Val[lo:hi]
}

// Clone returns a deep copy of m.
func (m *CSRG[V]) Clone() *CSRG[V] {
	c := &CSRG[V]{
		Rows:   m.Rows,
		Cols:   m.Cols,
		RowPtr: append([]int64(nil), m.RowPtr...),
		ColIdx: append([]int32(nil), m.ColIdx...),
		Val:    append([]V(nil), m.Val...),
		Sorted: m.Sorted,
	}
	return c
}

// Validate checks the CSR structural invariants: monotone row pointers,
// in-range column indices, consistent array lengths, and — when Sorted is
// set — strictly increasing column indices within each row. It returns a
// descriptive error for the first violation found.
func (m *CSRG[V]) Validate() error {
	if m.Rows < 0 || m.Cols < 0 {
		return fmt.Errorf("matrix: negative dimensions %dx%d", m.Rows, m.Cols)
	}
	if len(m.RowPtr) != m.Rows+1 {
		return fmt.Errorf("matrix: RowPtr length %d, want %d", len(m.RowPtr), m.Rows+1)
	}
	if m.RowPtr[0] != 0 {
		return fmt.Errorf("matrix: RowPtr[0] = %d, want 0", m.RowPtr[0])
	}
	nnz := m.RowPtr[m.Rows]
	if int64(len(m.ColIdx)) != nnz {
		return fmt.Errorf("matrix: ColIdx length %d, want %d", len(m.ColIdx), nnz)
	}
	if int64(len(m.Val)) != nnz {
		return fmt.Errorf("matrix: Val length %d, want %d", len(m.Val), nnz)
	}
	for i := 0; i < m.Rows; i++ {
		if m.RowPtr[i] > m.RowPtr[i+1] {
			return fmt.Errorf("matrix: RowPtr not monotone at row %d: %d > %d", i, m.RowPtr[i], m.RowPtr[i+1])
		}
	}
	for i := 0; i < m.Rows; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		var prev int32 = -1
		for p := lo; p < hi; p++ {
			c := m.ColIdx[p]
			if c < 0 || int(c) >= m.Cols {
				return fmt.Errorf("matrix: row %d has column %d out of range [0,%d)", i, c, m.Cols)
			}
			if m.Sorted {
				if c <= prev {
					return fmt.Errorf("matrix: row %d not strictly sorted at position %d (%d after %d)", i, p-lo, c, prev)
				}
				prev = c
			}
		}
	}
	return nil
}

// SortRows sorts the column indices (and values) of each row into increasing
// order, in place, and sets Sorted. Duplicate columns within a row are not
// merged; use Compact for that.
func (m *CSRG[V]) SortRows() {
	for i := 0; i < m.Rows; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		sortRowSegment(m.ColIdx[lo:hi], m.Val[lo:hi])
	}
	m.Sorted = true
}

// sortRowSegment sorts cols ascending, permuting vals identically.
func sortRowSegment[V semiring.Value](cols []int32, vals []V) {
	if len(cols) < 2 {
		return
	}
	if sort.SliceIsSorted(cols, func(a, b int) bool { return cols[a] < cols[b] }) {
		return
	}
	sort.Sort(&rowSorter[V]{cols, vals})
}

type rowSorter[V semiring.Value] struct {
	cols []int32
	vals []V
}

func (s *rowSorter[V]) Len() int           { return len(s.cols) }
func (s *rowSorter[V]) Less(i, j int) bool { return s.cols[i] < s.cols[j] }
func (s *rowSorter[V]) Swap(i, j int) {
	s.cols[i], s.cols[j] = s.cols[j], s.cols[i]
	s.vals[i], s.vals[j] = s.vals[j], s.vals[i]
}

// Compact merges duplicate column entries within each row (combining their
// values with V's conventional addition — numeric +, logical OR for bool)
// and drops explicit storage zeros. Rows are left sorted. The matrix is
// modified in place and also returned for chaining.
func (m *CSRG[V]) Compact() *CSRG[V] {
	if !m.Sorted {
		m.SortRows()
	}
	out := int64(0)
	newPtr := make([]int64, m.Rows+1)
	for i := 0; i < m.Rows; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		p := lo
		for p < hi {
			c := m.ColIdx[p]
			v := m.Val[p]
			p++
			for p < hi && m.ColIdx[p] == c {
				v = addValue(v, m.Val[p])
				p++
			}
			if !isZeroValue(v) {
				m.ColIdx[out] = c
				m.Val[out] = v
				out++
			}
		}
		newPtr[i+1] = out
	}
	m.RowPtr = newPtr
	m.ColIdx = m.ColIdx[:out]
	m.Val = m.Val[:out]
	return m
}

// IsSortedRows reports whether each row's column indices are strictly
// increasing, regardless of the Sorted flag. Useful in tests.
func (m *CSRG[V]) IsSortedRows() bool {
	for i := 0; i < m.Rows; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		for p := lo + 1; p < hi; p++ {
			if m.ColIdx[p] <= m.ColIdx[p-1] {
				return false
			}
		}
	}
	return true
}

// Transpose returns the transpose of m in CSR format (equivalently, m in CSC
// format reinterpreted). The output has sorted rows.
func (m *CSRG[V]) Transpose() *CSRG[V] {
	t := &CSRG[V]{
		Rows:   m.Cols,
		Cols:   m.Rows,
		RowPtr: make([]int64, m.Cols+1),
		ColIdx: make([]int32, m.NNZ()),
		Val:    make([]V, m.NNZ()),
		Sorted: true,
	}
	// Count entries per column.
	for _, c := range m.ColIdx {
		t.RowPtr[c+1]++
	}
	for i := 0; i < m.Cols; i++ {
		t.RowPtr[i+1] += t.RowPtr[i]
	}
	// Scatter. next[c] is the insertion cursor for output row c.
	next := make([]int64, m.Cols)
	copy(next, t.RowPtr[:m.Cols])
	for i := 0; i < m.Rows; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		for p := lo; p < hi; p++ {
			c := m.ColIdx[p]
			q := next[c]
			t.ColIdx[q] = int32(i)
			t.Val[q] = m.Val[p]
			next[c] = q + 1
		}
	}
	return t
}

// PermuteCols relabels columns through perm (new column of old column j is
// perm[j]). Used to produce the "randomly permuted column indices" unsorted
// inputs of the paper's evaluation. The result is marked unsorted.
func (m *CSRG[V]) PermuteCols(perm []int32) *CSRG[V] {
	if len(perm) != m.Cols {
		panic(fmt.Sprintf("matrix: PermuteCols perm length %d, want %d", len(perm), m.Cols))
	}
	out := m.Clone()
	for i, c := range out.ColIdx {
		out.ColIdx[i] = perm[c]
	}
	out.Sorted = false
	return out
}

// PermuteRows reorders rows through perm: output row i is input row perm[i].
func (m *CSRG[V]) PermuteRows(perm []int) *CSRG[V] {
	if len(perm) != m.Rows {
		panic(fmt.Sprintf("matrix: PermuteRows perm length %d, want %d", len(perm), m.Rows))
	}
	out := &CSRG[V]{
		Rows:   m.Rows,
		Cols:   m.Cols,
		RowPtr: make([]int64, m.Rows+1),
		ColIdx: make([]int32, m.NNZ()),
		Val:    make([]V, m.NNZ()),
		Sorted: m.Sorted,
	}
	pos := int64(0)
	for i := 0; i < m.Rows; i++ {
		src := perm[i]
		lo, hi := m.RowPtr[src], m.RowPtr[src+1]
		copy(out.ColIdx[pos:], m.ColIdx[lo:hi])
		copy(out.Val[pos:], m.Val[lo:hi])
		pos += hi - lo
		out.RowPtr[i+1] = pos
	}
	return out
}

// Identity returns the n×n float64 identity matrix.
func Identity(n int) *CSR { return IdentityG[float64](n) }

// IdentityG returns the n×n identity over V (diagonal of multiplicative
// ones — true for bool).
func IdentityG[V semiring.Value](n int) *CSRG[V] {
	m := &CSRG[V]{
		Rows:   n,
		Cols:   n,
		RowPtr: make([]int64, n+1),
		ColIdx: make([]int32, n),
		Val:    make([]V, n),
		Sorted: true,
	}
	one := oneValue[V]()
	for i := 0; i < n; i++ {
		m.RowPtr[i+1] = int64(i + 1)
		m.ColIdx[i] = int32(i)
		m.Val[i] = one
	}
	return m
}

// LowerTriangle returns the strictly lower triangular part of m (entries with
// column < row), preserving row sortedness.
func (m *CSRG[V]) LowerTriangle() *CSRG[V] { return m.triangle(true) }

// UpperTriangle returns the strictly upper triangular part of m (entries with
// column > row), preserving row sortedness.
func (m *CSRG[V]) UpperTriangle() *CSRG[V] { return m.triangle(false) }

func (m *CSRG[V]) triangle(lower bool) *CSRG[V] {
	out := &CSRG[V]{Rows: m.Rows, Cols: m.Cols, RowPtr: make([]int64, m.Rows+1), Sorted: m.Sorted}
	var cols []int32
	var vals []V
	for i := 0; i < m.Rows; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		for p := lo; p < hi; p++ {
			c := m.ColIdx[p]
			if (lower && int(c) < i) || (!lower && int(c) > i) {
				cols = append(cols, c)
				vals = append(vals, m.Val[p])
			}
		}
		out.RowPtr[i+1] = int64(len(cols))
	}
	out.ColIdx = cols
	out.Val = vals
	return out
}

// SelectColumns returns the Rows×len(cols) submatrix formed by the given
// columns of m, relabelled 0..len(cols)-1 in the given order. cols must be
// strictly increasing for the output to preserve sortedness; otherwise the
// output is marked unsorted. Used to build the tall-skinny right-hand sides
// of the paper's Section 5.5 evaluation.
func (m *CSRG[V]) SelectColumns(cols []int32) *CSRG[V] {
	remap := make(map[int32]int32, len(cols))
	increasing := true
	for i, c := range cols {
		remap[c] = int32(i)
		if i > 0 && cols[i] <= cols[i-1] {
			increasing = false
		}
	}
	out := &CSRG[V]{Rows: m.Rows, Cols: len(cols), RowPtr: make([]int64, m.Rows+1)}
	var oc []int32
	var ov []V
	for i := 0; i < m.Rows; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		for p := lo; p < hi; p++ {
			if nc, ok := remap[m.ColIdx[p]]; ok {
				oc = append(oc, nc)
				ov = append(ov, m.Val[p])
			}
		}
		out.RowPtr[i+1] = int64(len(oc))
	}
	out.ColIdx = oc
	out.Val = ov
	out.Sorted = m.Sorted && increasing
	return out
}

// String returns a short human-readable description (not the full contents).
func (m *CSRG[V]) String() string {
	return fmt.Sprintf("CSR{%dx%d, nnz=%d, sorted=%v}", m.Rows, m.Cols, m.NNZ(), m.Sorted)
}
