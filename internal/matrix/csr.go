// Package matrix provides sparse matrix storage formats and the structural
// operations the SpGEMM algorithms in this repository are built on.
//
// The central type is CSR (Compressed Sparse Rows): three arrays — row
// pointers, column indices and values — exactly as described in Section 2 of
// Nagasaka et al. (ICPP 2018). Column indices within a row may be sorted or
// unsorted; the Sorted flag records which, because several SpGEMM algorithms
// in this repository behave differently (and are benchmarked differently)
// depending on sortedness.
package matrix

import (
	"fmt"
	"sort"
)

// CSR is a sparse matrix in Compressed Sparse Rows format.
//
// RowPtr has length Rows+1; the column indices and values of row i live in
// ColIdx[RowPtr[i]:RowPtr[i+1]] and Val[RowPtr[i]:RowPtr[i+1]].
//
// Column indices are int32 (the paper's implementations use 32-bit keys) and
// row pointers are int64 so that matrices with more than 2^31 nonzeros are
// representable.
type CSR struct {
	Rows, Cols int
	RowPtr     []int64
	ColIdx     []int32
	Val        []float64
	// Sorted reports whether every row's column indices are in strictly
	// increasing order. Algorithms that require sorted inputs check this
	// flag; algorithms that emit unsorted output clear it.
	Sorted bool
}

// NewCSR returns an empty Rows×Cols matrix with no nonzeros.
func NewCSR(rows, cols int) *CSR {
	return &CSR{
		Rows:   rows,
		Cols:   cols,
		RowPtr: make([]int64, rows+1),
		ColIdx: []int32{},
		Val:    []float64{},
		Sorted: true,
	}
}

// NNZ returns the number of stored nonzero entries.
func (m *CSR) NNZ() int64 {
	if len(m.RowPtr) == 0 {
		return 0
	}
	return m.RowPtr[m.Rows]
}

// RowNNZ returns the number of stored entries in row i.
func (m *CSR) RowNNZ(i int) int64 {
	return m.RowPtr[i+1] - m.RowPtr[i]
}

// Row returns the column-index and value slices of row i. The slices alias
// the matrix storage; callers must not grow them.
func (m *CSR) Row(i int) ([]int32, []float64) {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	return m.ColIdx[lo:hi], m.Val[lo:hi]
}

// Clone returns a deep copy of m.
func (m *CSR) Clone() *CSR {
	c := &CSR{
		Rows:   m.Rows,
		Cols:   m.Cols,
		RowPtr: append([]int64(nil), m.RowPtr...),
		ColIdx: append([]int32(nil), m.ColIdx...),
		Val:    append([]float64(nil), m.Val...),
		Sorted: m.Sorted,
	}
	return c
}

// Validate checks the CSR structural invariants: monotone row pointers,
// in-range column indices, consistent array lengths, and — when Sorted is
// set — strictly increasing column indices within each row. It returns a
// descriptive error for the first violation found.
func (m *CSR) Validate() error {
	if m.Rows < 0 || m.Cols < 0 {
		return fmt.Errorf("matrix: negative dimensions %dx%d", m.Rows, m.Cols)
	}
	if len(m.RowPtr) != m.Rows+1 {
		return fmt.Errorf("matrix: RowPtr length %d, want %d", len(m.RowPtr), m.Rows+1)
	}
	if m.RowPtr[0] != 0 {
		return fmt.Errorf("matrix: RowPtr[0] = %d, want 0", m.RowPtr[0])
	}
	nnz := m.RowPtr[m.Rows]
	if int64(len(m.ColIdx)) != nnz {
		return fmt.Errorf("matrix: ColIdx length %d, want %d", len(m.ColIdx), nnz)
	}
	if int64(len(m.Val)) != nnz {
		return fmt.Errorf("matrix: Val length %d, want %d", len(m.Val), nnz)
	}
	for i := 0; i < m.Rows; i++ {
		if m.RowPtr[i] > m.RowPtr[i+1] {
			return fmt.Errorf("matrix: RowPtr not monotone at row %d: %d > %d", i, m.RowPtr[i], m.RowPtr[i+1])
		}
	}
	for i := 0; i < m.Rows; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		var prev int32 = -1
		for p := lo; p < hi; p++ {
			c := m.ColIdx[p]
			if c < 0 || int(c) >= m.Cols {
				return fmt.Errorf("matrix: row %d has column %d out of range [0,%d)", i, c, m.Cols)
			}
			if m.Sorted {
				if c <= prev {
					return fmt.Errorf("matrix: row %d not strictly sorted at position %d (%d after %d)", i, p-lo, c, prev)
				}
				prev = c
			}
		}
	}
	return nil
}

// SortRows sorts the column indices (and values) of each row into increasing
// order, in place, and sets Sorted. Duplicate columns within a row are not
// merged; use Compact for that.
func (m *CSR) SortRows() {
	for i := 0; i < m.Rows; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		sortRowSegment(m.ColIdx[lo:hi], m.Val[lo:hi])
	}
	m.Sorted = true
}

// sortRowSegment sorts cols ascending, permuting vals identically.
func sortRowSegment(cols []int32, vals []float64) {
	if len(cols) < 2 {
		return
	}
	if sort.SliceIsSorted(cols, func(a, b int) bool { return cols[a] < cols[b] }) {
		return
	}
	sort.Sort(&rowSorter{cols, vals})
}

type rowSorter struct {
	cols []int32
	vals []float64
}

func (s *rowSorter) Len() int           { return len(s.cols) }
func (s *rowSorter) Less(i, j int) bool { return s.cols[i] < s.cols[j] }
func (s *rowSorter) Swap(i, j int) {
	s.cols[i], s.cols[j] = s.cols[j], s.cols[i]
	s.vals[i], s.vals[j] = s.vals[j], s.vals[i]
}

// Compact merges duplicate column entries within each row (summing their
// values) and drops explicit zeros. Rows are left sorted. The matrix is
// modified in place and also returned for chaining.
func (m *CSR) Compact() *CSR {
	if !m.Sorted {
		m.SortRows()
	}
	out := int64(0)
	newPtr := make([]int64, m.Rows+1)
	for i := 0; i < m.Rows; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		p := lo
		for p < hi {
			c := m.ColIdx[p]
			v := m.Val[p]
			p++
			for p < hi && m.ColIdx[p] == c {
				v += m.Val[p]
				p++
			}
			if v != 0 {
				m.ColIdx[out] = c
				m.Val[out] = v
				out++
			}
		}
		newPtr[i+1] = out
	}
	m.RowPtr = newPtr
	m.ColIdx = m.ColIdx[:out]
	m.Val = m.Val[:out]
	return m
}

// IsSortedRows reports whether each row's column indices are strictly
// increasing, regardless of the Sorted flag. Useful in tests.
func (m *CSR) IsSortedRows() bool {
	for i := 0; i < m.Rows; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		for p := lo + 1; p < hi; p++ {
			if m.ColIdx[p] <= m.ColIdx[p-1] {
				return false
			}
		}
	}
	return true
}

// Transpose returns the transpose of m in CSR format (equivalently, m in CSC
// format reinterpreted). The output has sorted rows.
func (m *CSR) Transpose() *CSR {
	t := &CSR{
		Rows:   m.Cols,
		Cols:   m.Rows,
		RowPtr: make([]int64, m.Cols+1),
		ColIdx: make([]int32, m.NNZ()),
		Val:    make([]float64, m.NNZ()),
		Sorted: true,
	}
	// Count entries per column.
	for _, c := range m.ColIdx {
		t.RowPtr[c+1]++
	}
	for i := 0; i < m.Cols; i++ {
		t.RowPtr[i+1] += t.RowPtr[i]
	}
	// Scatter. next[c] is the insertion cursor for output row c.
	next := make([]int64, m.Cols)
	copy(next, t.RowPtr[:m.Cols])
	for i := 0; i < m.Rows; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		for p := lo; p < hi; p++ {
			c := m.ColIdx[p]
			q := next[c]
			t.ColIdx[q] = int32(i)
			t.Val[q] = m.Val[p]
			next[c] = q + 1
		}
	}
	return t
}

// PermuteCols relabels columns through perm (new column of old column j is
// perm[j]). Used to produce the "randomly permuted column indices" unsorted
// inputs of the paper's evaluation. The result is marked unsorted.
func (m *CSR) PermuteCols(perm []int32) *CSR {
	if len(perm) != m.Cols {
		panic(fmt.Sprintf("matrix: PermuteCols perm length %d, want %d", len(perm), m.Cols))
	}
	out := m.Clone()
	for i, c := range out.ColIdx {
		out.ColIdx[i] = perm[c]
	}
	out.Sorted = false
	return out
}

// PermuteRows reorders rows through perm: output row i is input row perm[i].
func (m *CSR) PermuteRows(perm []int) *CSR {
	if len(perm) != m.Rows {
		panic(fmt.Sprintf("matrix: PermuteRows perm length %d, want %d", len(perm), m.Rows))
	}
	out := &CSR{
		Rows:   m.Rows,
		Cols:   m.Cols,
		RowPtr: make([]int64, m.Rows+1),
		ColIdx: make([]int32, m.NNZ()),
		Val:    make([]float64, m.NNZ()),
		Sorted: m.Sorted,
	}
	pos := int64(0)
	for i := 0; i < m.Rows; i++ {
		src := perm[i]
		lo, hi := m.RowPtr[src], m.RowPtr[src+1]
		copy(out.ColIdx[pos:], m.ColIdx[lo:hi])
		copy(out.Val[pos:], m.Val[lo:hi])
		pos += hi - lo
		out.RowPtr[i+1] = pos
	}
	return out
}

// Identity returns the n×n identity matrix.
func Identity(n int) *CSR {
	m := &CSR{
		Rows:   n,
		Cols:   n,
		RowPtr: make([]int64, n+1),
		ColIdx: make([]int32, n),
		Val:    make([]float64, n),
		Sorted: true,
	}
	for i := 0; i < n; i++ {
		m.RowPtr[i+1] = int64(i + 1)
		m.ColIdx[i] = int32(i)
		m.Val[i] = 1
	}
	return m
}

// LowerTriangle returns the strictly lower triangular part of m (entries with
// column < row), preserving row sortedness.
func (m *CSR) LowerTriangle() *CSR { return m.triangle(true) }

// UpperTriangle returns the strictly upper triangular part of m (entries with
// column > row), preserving row sortedness.
func (m *CSR) UpperTriangle() *CSR { return m.triangle(false) }

func (m *CSR) triangle(lower bool) *CSR {
	out := &CSR{Rows: m.Rows, Cols: m.Cols, RowPtr: make([]int64, m.Rows+1), Sorted: m.Sorted}
	var cols []int32
	var vals []float64
	for i := 0; i < m.Rows; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		for p := lo; p < hi; p++ {
			c := m.ColIdx[p]
			if (lower && int(c) < i) || (!lower && int(c) > i) {
				cols = append(cols, c)
				vals = append(vals, m.Val[p])
			}
		}
		out.RowPtr[i+1] = int64(len(cols))
	}
	out.ColIdx = cols
	out.Val = vals
	return out
}

// SelectColumns returns the Rows×len(cols) submatrix formed by the given
// columns of m, relabelled 0..len(cols)-1 in the given order. cols must be
// strictly increasing for the output to preserve sortedness; otherwise the
// output is marked unsorted. Used to build the tall-skinny right-hand sides
// of the paper's Section 5.5 evaluation.
func (m *CSR) SelectColumns(cols []int32) *CSR {
	remap := make(map[int32]int32, len(cols))
	increasing := true
	for i, c := range cols {
		remap[c] = int32(i)
		if i > 0 && cols[i] <= cols[i-1] {
			increasing = false
		}
	}
	out := &CSR{Rows: m.Rows, Cols: len(cols), RowPtr: make([]int64, m.Rows+1)}
	var oc []int32
	var ov []float64
	for i := 0; i < m.Rows; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		for p := lo; p < hi; p++ {
			if nc, ok := remap[m.ColIdx[p]]; ok {
				oc = append(oc, nc)
				ov = append(ov, m.Val[p])
			}
		}
		out.RowPtr[i+1] = int64(len(oc))
	}
	out.ColIdx = oc
	out.Val = ov
	out.Sorted = m.Sorted && increasing
	return out
}

// String returns a short human-readable description (not the full contents).
func (m *CSR) String() string {
	return fmt.Sprintf("CSR{%dx%d, nnz=%d, sorted=%v}", m.Rows, m.Cols, m.NNZ(), m.Sorted)
}
