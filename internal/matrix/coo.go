package matrix

import (
	"fmt"
	"sort"

	"repro/internal/semiring"
)

// EntryG is one (row, column, value) triple of a sparse matrix over V.
type EntryG[V semiring.Value] struct {
	Row, Col int32
	Val      V
}

// Entry is the float64 instantiation.
type Entry = EntryG[float64]

// COOG is a sparse matrix in coordinate (triplet) format over V. It is the
// natural output format of the generators and of Matrix Market parsing, and
// converts to CSR for computation.
type COOG[V semiring.Value] struct {
	Rows, Cols int
	Entries    []EntryG[V]
}

// COO is the float64 instantiation.
type COO = COOG[float64]

// NewCOO returns an empty rows×cols float64 coordinate matrix.
func NewCOO(rows, cols int) *COO { return NewCOOG[float64](rows, cols) }

// NewCOOG returns an empty rows×cols coordinate matrix over V.
func NewCOOG[V semiring.Value](rows, cols int) *COOG[V] {
	return &COOG[V]{Rows: rows, Cols: cols}
}

// Append adds one entry. It does not check for duplicates; ToCSR merges them.
func (c *COOG[V]) Append(row, col int32, val V) {
	c.Entries = append(c.Entries, EntryG[V]{row, col, val})
}

// Validate checks that all entries are in range.
func (c *COOG[V]) Validate() error {
	for i, e := range c.Entries {
		if e.Row < 0 || int(e.Row) >= c.Rows || e.Col < 0 || int(e.Col) >= c.Cols {
			return fmt.Errorf("matrix: COO entry %d (%d,%d) out of range %dx%d", i, e.Row, e.Col, c.Rows, c.Cols)
		}
	}
	return nil
}

// ToCSR converts to CSR, merging duplicate (row,col) entries (numeric +,
// logical OR for bool) and dropping entries whose merged value is the
// storage zero. Rows come out sorted.
func (c *COOG[V]) ToCSR() *CSRG[V] {
	if err := c.Validate(); err != nil {
		panic(err)
	}
	// Counting sort by row, then sort each row segment by column.
	rowCount := make([]int64, c.Rows+1)
	for _, e := range c.Entries {
		rowCount[e.Row+1]++
	}
	for i := 0; i < c.Rows; i++ {
		rowCount[i+1] += rowCount[i]
	}
	cols := make([]int32, len(c.Entries))
	vals := make([]V, len(c.Entries))
	next := make([]int64, c.Rows)
	copy(next, rowCount[:c.Rows])
	for _, e := range c.Entries {
		p := next[e.Row]
		cols[p] = e.Col
		vals[p] = e.Val
		next[e.Row] = p + 1
	}
	m := &CSRG[V]{
		Rows:   c.Rows,
		Cols:   c.Cols,
		RowPtr: rowCount,
		ColIdx: cols,
		Val:    vals,
		Sorted: false,
	}
	m.SortRows()
	return m.Compact()
}

// FromCSR converts back to coordinate format with entries in row-major order.
func FromCSR[V semiring.Value](m *CSRG[V]) *COOG[V] {
	c := &COOG[V]{Rows: m.Rows, Cols: m.Cols, Entries: make([]EntryG[V], 0, m.NNZ())}
	for i := 0; i < m.Rows; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		for p := lo; p < hi; p++ {
			c.Entries = append(c.Entries, EntryG[V]{int32(i), m.ColIdx[p], m.Val[p]})
		}
	}
	return c
}

// Symmetrize adds the transpose entry for every off-diagonal entry, producing
// the adjacency of an undirected graph. Duplicates are merged later by ToCSR.
func (c *COOG[V]) Symmetrize() {
	n := len(c.Entries)
	for i := 0; i < n; i++ {
		e := c.Entries[i]
		if e.Row != e.Col {
			c.Entries = append(c.Entries, EntryG[V]{e.Col, e.Row, e.Val})
		}
	}
}

// SortRowMajor sorts the entries in (row, col) order. Duplicates stay adjacent.
func (c *COOG[V]) SortRowMajor() {
	sort.Slice(c.Entries, func(a, b int) bool {
		ea, eb := c.Entries[a], c.Entries[b]
		if ea.Row != eb.Row {
			return ea.Row < eb.Row
		}
		return ea.Col < eb.Col
	})
}
