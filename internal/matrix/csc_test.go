package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCSCRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(901))
	for trial := 0; trial < 20; trial++ {
		m := Random(1+rng.Intn(30), 1+rng.Intn(30), 0.25, rng)
		csc := m.ToCSC()
		if err := csc.Validate(); err != nil {
			t.Fatal(err)
		}
		back := csc.ToCSR()
		if !Equal(m, back) {
			t.Fatalf("trial %d: CSC round trip changed matrix", trial)
		}
	}
}

func TestCSCColumnAccess(t *testing.T) {
	// [1 0; 2 3]
	m := FromDense(&Dense{Rows: 2, Cols: 2, Data: []float64{1, 0, 2, 3}})
	csc := m.ToCSC()
	rows, vals := csc.Col(0)
	if len(rows) != 2 || rows[0] != 0 || rows[1] != 1 || vals[0] != 1 || vals[1] != 2 {
		t.Fatalf("col 0 = %v %v", rows, vals)
	}
	rows, vals = csc.Col(1)
	if len(rows) != 1 || rows[0] != 1 || vals[0] != 3 {
		t.Fatalf("col 1 = %v %v", rows, vals)
	}
	if csc.NNZ() != 3 {
		t.Fatalf("nnz = %d", csc.NNZ())
	}
}

func TestCSCMatchesTransposeCSR(t *testing.T) {
	// CSC of M has the same storage as CSR of Mᵀ.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := Random(1+rng.Intn(20), 1+rng.Intn(20), 0.3, rng)
		csc := m.ToCSC()
		tr := m.Transpose()
		if csc.NNZ() != tr.NNZ() {
			return false
		}
		for i := range tr.RowPtr {
			if csc.ColPtr[i] != tr.RowPtr[i] {
				return false
			}
		}
		for i := range tr.ColIdx {
			if csc.RowIdx[i] != tr.ColIdx[i] || csc.Val[i] != tr.Val[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestCSCValidateCatchesCorruption(t *testing.T) {
	m := Identity(3).ToCSC()
	m.RowIdx[1] = 99
	if err := m.Validate(); err == nil {
		t.Fatal("expected out-of-range error")
	}
	m2 := Identity(3).ToCSC()
	m2.ColPtr[1] = 5
	if err := m2.Validate(); err == nil {
		t.Fatal("expected monotonicity error")
	}
}

func TestDiagonalAndTrace(t *testing.T) {
	m := FromDense(&Dense{Rows: 3, Cols: 3, Data: []float64{5, 1, 0, 0, 7, 0, 2, 0, -3}})
	d := m.Diagonal()
	if d[0] != 5 || d[1] != 7 || d[2] != -3 {
		t.Fatalf("diag = %v", d)
	}
	if m.Trace() != 9 {
		t.Fatalf("trace = %v", m.Trace())
	}
	// Rectangular: diagonal length = min dimension.
	r := NewCSR(2, 5)
	if len(r.Diagonal()) != 2 {
		t.Fatal("rectangular diagonal length")
	}
}

func TestTraceCountsTrianglesViaA3(t *testing.T) {
	// trace(A³)/6 counts triangles of a simple undirected graph: K3 has 1.
	coo := NewCOO(3, 3)
	for _, e := range [][2]int32{{0, 1}, {1, 2}, {0, 2}} {
		coo.Append(e[0], e[1], 1)
		coo.Append(e[1], e[0], 1)
	}
	a := coo.ToCSR()
	a2 := NaiveMultiply(a, a)
	a3 := NaiveMultiply(a2, a)
	if got := a3.Trace() / 6; math.Abs(got-1) > 1e-12 {
		t.Fatalf("trace(A^3)/6 = %v, want 1", got)
	}
}

func TestInfNorm(t *testing.T) {
	m := FromDense(&Dense{Rows: 2, Cols: 2, Data: []float64{1, -4, 2, 2}})
	if m.InfNorm() != 5 {
		t.Fatalf("InfNorm = %v", m.InfNorm())
	}
	if NewCSR(3, 3).InfNorm() != 0 {
		t.Fatal("empty InfNorm")
	}
}
