package matrix

import (
	"math/rand"
	"testing"
)

func TestCOOToCSRMergesDuplicates(t *testing.T) {
	c := NewCOO(3, 3)
	c.Append(0, 1, 2)
	c.Append(0, 1, 3)
	c.Append(2, 0, 1)
	c.Append(1, 2, -1)
	c.Append(1, 2, 1) // cancels to zero, should be dropped
	m := c.ToCSR()
	mustValid(t, m)
	if m.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2", m.NNZ())
	}
	d := m.ToDense()
	if d.At(0, 1) != 5 || d.At(2, 0) != 1 || d.At(1, 2) != 0 {
		t.Fatalf("wrong dense: %+v", d)
	}
}

func TestCOORoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := Random(15, 20, 0.25, rng)
	back := FromCSR(m).ToCSR()
	if !Equal(m, back) {
		t.Fatal("COO round trip changed matrix")
	}
}

func TestCOOValidateRejectsOutOfRange(t *testing.T) {
	c := NewCOO(2, 2)
	c.Append(0, 5, 1)
	if err := c.Validate(); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

func TestSymmetrize(t *testing.T) {
	c := NewCOO(3, 3)
	c.Append(0, 1, 2)
	c.Append(1, 1, 5) // diagonal: must not be duplicated
	c.Symmetrize()
	m := c.ToCSR()
	d := m.ToDense()
	if d.At(0, 1) != 2 || d.At(1, 0) != 2 {
		t.Fatalf("not symmetric: %v %v", d.At(0, 1), d.At(1, 0))
	}
	if d.At(1, 1) != 5 {
		t.Fatalf("diagonal doubled: %v", d.At(1, 1))
	}
}

func TestSortRowMajor(t *testing.T) {
	c := NewCOO(3, 3)
	c.Append(2, 0, 1)
	c.Append(0, 2, 1)
	c.Append(0, 1, 1)
	c.SortRowMajor()
	if c.Entries[0].Row != 0 || c.Entries[0].Col != 1 {
		t.Fatalf("entries not sorted: %+v", c.Entries)
	}
	if c.Entries[2].Row != 2 {
		t.Fatalf("entries not sorted: %+v", c.Entries)
	}
}

func TestEmptyCOO(t *testing.T) {
	m := NewCOO(4, 4).ToCSR()
	mustValid(t, m)
	if m.NNZ() != 0 {
		t.Fatalf("NNZ = %d", m.NNZ())
	}
}
