package matrix

import "math/rand"

// Random returns a rows×cols matrix where each entry is nonzero independently
// with probability density; values are uniform in [-1, 1). Intended for tests
// and examples — the evaluation workloads use the R-MAT generators in
// internal/gen.
func Random(rows, cols int, density float64, rng *rand.Rand) *CSR {
	m := &CSR{Rows: rows, Cols: cols, RowPtr: make([]int64, rows+1), Sorted: true}
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < density {
				m.ColIdx = append(m.ColIdx, int32(j))
				m.Val = append(m.Val, rng.Float64()*2-1)
			}
		}
		m.RowPtr[i+1] = int64(len(m.ColIdx))
	}
	return m
}

// RandomWithDegree returns a rows×cols matrix with exactly min(deg, cols)
// distinct nonzeros per row at uniformly random columns.
func RandomWithDegree(rows, cols, deg int, rng *rand.Rand) *CSR {
	if deg > cols {
		deg = cols
	}
	m := &CSR{Rows: rows, Cols: cols, RowPtr: make([]int64, rows+1), Sorted: true}
	seen := make(map[int32]bool, deg)
	row := make([]int32, 0, deg)
	for i := 0; i < rows; i++ {
		clear(seen)
		row = row[:0]
		for len(row) < deg {
			c := int32(rng.Intn(cols))
			if !seen[c] {
				seen[c] = true
				row = append(row, c)
			}
		}
		// Insertion sort keeps rows sorted.
		for x := 1; x < len(row); x++ {
			for y := x; y > 0 && row[y] < row[y-1]; y-- {
				row[y], row[y-1] = row[y-1], row[y]
			}
		}
		for _, c := range row {
			m.ColIdx = append(m.ColIdx, c)
			m.Val = append(m.Val, rng.Float64()*2-1)
		}
		m.RowPtr[i+1] = int64(len(m.ColIdx))
	}
	return m
}

// ShuffleRowEntries returns a copy of m in which the stored order of each
// row's entries is randomly shuffled. The matrix it represents is unchanged;
// only the storage order (and the Sorted flag) differ. This is the paper's
// "unsorted input" evaluation mode: same problem, rows no longer sorted.
func (m *CSRG[V]) ShuffleRowEntries(rng *rand.Rand) *CSRG[V] {
	out := m.Clone()
	for i := 0; i < out.Rows; i++ {
		lo, hi := out.RowPtr[i], out.RowPtr[i+1]
		n := int(hi - lo)
		cols := out.ColIdx[lo:hi]
		vals := out.Val[lo:hi]
		rng.Shuffle(n, func(a, b int) {
			cols[a], cols[b] = cols[b], cols[a]
			vals[a], vals[b] = vals[b], vals[a]
		})
	}
	out.Sorted = false
	return out
}

// RandomPermutation returns a uniformly random permutation of 0..n-1 as
// int32, for use with PermuteCols.
func RandomPermutation(n int, rng *rand.Rand) []int32 {
	p := make([]int32, n)
	for i := range p {
		p[i] = int32(i)
	}
	rng.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}
