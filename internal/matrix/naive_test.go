package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNaiveMultiplyAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		a := Random(1+rng.Intn(15), 1+rng.Intn(15), 0.3, rng)
		b := Random(a.Cols, 1+rng.Intn(15), 0.3, rng)
		c := NaiveMultiply(a, b)
		mustValid(t, c)
		want := a.ToDense().Mul(b.ToDense())
		if !c.ToDense().EqualApprox(want, 1e-12) {
			t.Fatalf("trial %d: naive product disagrees with dense", trial)
		}
	}
}

func TestNaiveMultiplyIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	m := Random(10, 10, 0.3, rng)
	c := NaiveMultiply(m, Identity(10))
	if !EqualApprox(m, c, 1e-15) {
		t.Fatal("M*I != M")
	}
	c = NaiveMultiply(Identity(10), m)
	if !EqualApprox(m, c, 1e-15) {
		t.Fatal("I*M != M")
	}
}

func TestEqualApproxToleratesReordering(t *testing.T) {
	a := &CSR{
		Rows: 1, Cols: 4,
		RowPtr: []int64{0, 2},
		ColIdx: []int32{3, 1},
		Val:    []float64{4, 2},
		Sorted: false,
	}
	b := &CSR{
		Rows: 1, Cols: 4,
		RowPtr: []int64{0, 2},
		ColIdx: []int32{1, 3},
		Val:    []float64{2, 4},
		Sorted: true,
	}
	if !EqualApprox(a, b, 0) {
		t.Fatal("EqualApprox should canonicalize order")
	}
}

func TestEqualApproxDetectsDifferences(t *testing.T) {
	a := Identity(3)
	b := Identity(3)
	b.Val[1] = 2
	if EqualApprox(a, b, 1e-9) {
		t.Fatal("EqualApprox missed a value difference")
	}
	c := Identity(3)
	c.ColIdx[1] = 0 // moves an entry
	if EqualApprox(a, c, 1e-9) {
		t.Fatal("EqualApprox missed a structural difference")
	}
}

func TestEqualApproxTreatsTinyAsZero(t *testing.T) {
	a := Identity(2)
	b := a.Clone()
	// b has an extra entry below tolerance.
	b.ColIdx = append(b.ColIdx[:1], append([]int32{1}, b.ColIdx[1:]...)...)
	b.Val = append(b.Val[:1], append([]float64{1e-14}, b.Val[1:]...)...)
	b.RowPtr[1] = 2
	b.RowPtr[2] = 3
	mustValid(t, b)
	if !EqualApprox(a, b, 1e-12) {
		t.Fatal("tiny extra entry should be within tolerance")
	}
	if EqualApprox(a, b, 1e-16) {
		t.Fatal("tight tolerance should reject extra entry")
	}
}

// Property: (A·B)ᵀ == Bᵀ·Aᵀ via the naive reference.
func TestNaiveTransposeProduct(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := Random(1+rng.Intn(12), 1+rng.Intn(12), 0.3, rng)
		b := Random(a.Cols, 1+rng.Intn(12), 0.3, rng)
		left := NaiveMultiply(a, b).Transpose()
		right := NaiveMultiply(b.Transpose(), a.Transpose())
		return EqualApprox(left, right, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: A·(B+B) = 2·(A·B). Exercises value combination.
func TestNaiveLinearity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := Random(1+rng.Intn(12), 1+rng.Intn(12), 0.3, rng)
		b := Random(a.Cols, 1+rng.Intn(12), 0.3, rng)
		b2 := b.Clone()
		for i := range b2.Val {
			b2.Val[i] *= 2
		}
		c := NaiveMultiply(a, b)
		c2 := NaiveMultiply(a, b2)
		for i := range c.Val {
			c.Val[i] *= 2
		}
		return EqualApprox(c, c2, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
