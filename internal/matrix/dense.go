package matrix

import "math"

// Dense is a row-major dense matrix, used as a reference bridge in tests and
// small examples. It is deliberately simple; no attempt is made at blocking.
type Dense struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, row-major
}

// NewDense returns a zeroed rows×cols dense matrix.
func NewDense(rows, cols int) *Dense {
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (d *Dense) At(i, j int) float64 { return d.Data[i*d.Cols+j] }

// Set assigns element (i, j).
func (d *Dense) Set(i, j int, v float64) { d.Data[i*d.Cols+j] = v }

// ToDense expands a CSR matrix into float64 dense form (bool entries map to
// 0/1). Duplicate entries within a row (possible in unsorted non-compacted
// matrices) are summed.
func (m *CSRG[V]) ToDense() *Dense {
	d := NewDense(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		for p := lo; p < hi; p++ {
			d.Data[i*m.Cols+int(m.ColIdx[p])] += toFloat64(m.Val[p])
		}
	}
	return d
}

// FromDense converts a dense matrix to CSR, dropping exact zeros.
func FromDense(d *Dense) *CSR {
	m := &CSR{Rows: d.Rows, Cols: d.Cols, RowPtr: make([]int64, d.Rows+1), Sorted: true}
	for i := 0; i < d.Rows; i++ {
		for j := 0; j < d.Cols; j++ {
			if v := d.Data[i*d.Cols+j]; v != 0 {
				m.ColIdx = append(m.ColIdx, int32(j))
				m.Val = append(m.Val, v)
			}
		}
		m.RowPtr[i+1] = int64(len(m.ColIdx))
	}
	return m
}

// Mul returns the dense product d × o.
func (d *Dense) Mul(o *Dense) *Dense {
	if d.Cols != o.Rows {
		panic("matrix: dense dimension mismatch")
	}
	out := NewDense(d.Rows, o.Cols)
	for i := 0; i < d.Rows; i++ {
		for k := 0; k < d.Cols; k++ {
			a := d.Data[i*d.Cols+k]
			if a == 0 {
				continue
			}
			ro := k * o.Cols
			rd := i * o.Cols
			for j := 0; j < o.Cols; j++ {
				out.Data[rd+j] += a * o.Data[ro+j]
			}
		}
	}
	return out
}

// EqualApprox reports whether two dense matrices agree elementwise within tol
// (absolute or relative, whichever is looser).
func (d *Dense) EqualApprox(o *Dense, tol float64) bool {
	if d.Rows != o.Rows || d.Cols != o.Cols {
		return false
	}
	for i, v := range d.Data {
		w := o.Data[i]
		diff := math.Abs(v - w)
		scale := math.Max(math.Abs(v), math.Abs(w))
		if diff > tol && diff > tol*scale {
			return false
		}
	}
	return true
}
