package matrix

import (
	"math"

	"repro/internal/semiring"
)

// NaiveMultiply computes a·b sequentially with a map accumulator over
// ordinary (+, ×) arithmetic. It is the correctness oracle for the float64
// plus-times SpGEMM paths: slow but obviously right. The output has sorted,
// compacted rows.
func NaiveMultiply(a, b *CSR) *CSR {
	return NaiveMultiplyRing(semiring.PlusTimesF64{}, a, b)
}

// NaiveMultiplyRing computes a·b sequentially with a map accumulator over an
// arbitrary ring. It is the correctness oracle for the generic kernels and
// for semiring Zero-handling audits: an output entry exists iff at least one
// product landed on it (never dropped because its value equals ring.Zero(),
// never fabricated for untouched columns — the MinPlus +Inf discipline).
// The output has sorted rows; values equal to ring.Zero() are kept.
func NaiveMultiplyRing[V semiring.Value, R semiring.Ring[V]](ring R, a, b *CSRG[V]) *CSRG[V] {
	if a.Cols != b.Rows {
		panic("matrix: NaiveMultiply dimension mismatch")
	}
	out := &CSRG[V]{Rows: a.Rows, Cols: b.Cols, RowPtr: make([]int64, a.Rows+1), Sorted: true}
	acc := make(map[int32]V)
	for i := 0; i < a.Rows; i++ {
		clear(acc)
		lo, hi := a.RowPtr[i], a.RowPtr[i+1]
		for p := lo; p < hi; p++ {
			k := a.ColIdx[p]
			av := a.Val[p]
			blo, bhi := b.RowPtr[k], b.RowPtr[k+1]
			for q := blo; q < bhi; q++ {
				c := b.ColIdx[q]
				prod := ring.Mul(av, b.Val[q])
				if cur, ok := acc[c]; ok {
					acc[c] = ring.Add(cur, prod)
				} else {
					acc[c] = prod
				}
			}
		}
		cols := make([]int32, 0, len(acc))
		for c := range acc {
			cols = append(cols, c)
		}
		// Insertion sort: rows are short in tests.
		for x := 1; x < len(cols); x++ {
			for y := x; y > 0 && cols[y] < cols[y-1]; y-- {
				cols[y], cols[y-1] = cols[y-1], cols[y]
			}
		}
		for _, c := range cols {
			out.ColIdx = append(out.ColIdx, c)
			out.Val = append(out.Val, acc[c])
		}
		out.RowPtr[i+1] = int64(len(out.ColIdx))
	}
	return out
}

// Equal reports exact structural and numerical equality (same dimensions,
// row pointers, column order and values). Both matrices should be in the same
// canonical form for this to be meaningful.
func Equal[V semiring.Value](a, b *CSRG[V]) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols || a.NNZ() != b.NNZ() {
		return false
	}
	for i := range a.RowPtr {
		if a.RowPtr[i] != b.RowPtr[i] {
			return false
		}
	}
	for i := range a.ColIdx {
		if a.ColIdx[i] != b.ColIdx[i] || a.Val[i] != b.Val[i] {
			return false
		}
	}
	return true
}

// EqualApprox reports whether a and b represent the same float64 matrix up to
// floating-point tolerance, after canonicalizing both (sorting rows and
// merging duplicates). Entries smaller than tol in both matrices are treated
// as zero, so algorithms that drop or keep numeric zeros both pass. Note the
// Compact canonicalization merges with + and drops machine zeros, which is
// only meaningful under plus-times; ring-aware comparisons (MinPlus et al.)
// must compare structure exactly instead (see spgemm/difftest).
func EqualApprox(a, b *CSR, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	ca := a.Clone().Compact()
	cb := b.Clone().Compact()
	for i := 0; i < ca.Rows; i++ {
		alo, ahi := ca.RowPtr[i], ca.RowPtr[i+1]
		blo, bhi := cb.RowPtr[i], cb.RowPtr[i+1]
		pa, pb := alo, blo
		for pa < ahi || pb < bhi {
			switch {
			case pb >= bhi || (pa < ahi && ca.ColIdx[pa] < cb.ColIdx[pb]):
				if math.Abs(ca.Val[pa]) > tol {
					return false
				}
				pa++
			case pa >= ahi || cb.ColIdx[pb] < ca.ColIdx[pa]:
				if math.Abs(cb.Val[pb]) > tol {
					return false
				}
				pb++
			default:
				va, vb := ca.Val[pa], cb.Val[pb]
				diff := math.Abs(va - vb)
				scale := math.Max(math.Abs(va), math.Abs(vb))
				if diff > tol && diff > tol*scale {
					return false
				}
				pa++
				pb++
			}
		}
	}
	return true
}
