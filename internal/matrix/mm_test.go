package matrix

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestMatrixMarketRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	m := Random(12, 9, 0.3, rng)
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(m, back) {
		t.Fatal("Matrix Market round trip changed matrix")
	}
}

func TestMatrixMarketPattern(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate pattern general
% a comment
3 3 2
1 2
3 1
`
	m, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	d := m.ToDense()
	if d.At(0, 1) != 1 || d.At(2, 0) != 1 || m.NNZ() != 2 {
		t.Fatalf("pattern parse wrong: nnz=%d", m.NNZ())
	}
}

func TestMatrixMarketSymmetric(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate real symmetric
3 3 3
1 1 5.0
2 1 2.0
3 2 7.0
`
	m, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	d := m.ToDense()
	if d.At(0, 0) != 5 {
		t.Fatal("diagonal lost")
	}
	if d.At(1, 0) != 2 || d.At(0, 1) != 2 {
		t.Fatal("symmetric expansion missing")
	}
	if d.At(2, 1) != 7 || d.At(1, 2) != 7 {
		t.Fatal("symmetric expansion missing")
	}
	if m.NNZ() != 5 {
		t.Fatalf("nnz = %d, want 5", m.NNZ())
	}
}

func TestMatrixMarketSkewSymmetric(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate real skew-symmetric
2 2 1
2 1 3.0
`
	m, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	d := m.ToDense()
	if d.At(1, 0) != 3 || d.At(0, 1) != -3 {
		t.Fatalf("skew expansion wrong: %v %v", d.At(1, 0), d.At(0, 1))
	}
}

func TestMatrixMarketIntegerValues(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate integer general
2 2 1
1 1 42
`
	m, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if m.ToDense().At(0, 0) != 42 {
		t.Fatal("integer value lost")
	}
}

func TestMatrixMarketErrors(t *testing.T) {
	cases := map[string]string{
		"empty":           "",
		"bad header":      "%%MatrixMarket tensor coordinate real general\n1 1 0\n",
		"array format":    "%%MatrixMarket matrix array real general\n1 1\n1.0\n",
		"bad value type":  "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n",
		"bad symmetry":    "%%MatrixMarket matrix coordinate real hermitian\n1 1 1\n1 1 1\n",
		"short entry":     "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1\n",
		"truncated":       "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n",
		"out of range":    "%%MatrixMarket matrix coordinate real general\n2 2 1\n5 1 1.0\n",
		"non-numeric val": "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 abc\n",
	}
	for name, src := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

func TestDenseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	m := Random(8, 11, 0.4, rng)
	back := FromDense(m.ToDense())
	if !Equal(m, back) {
		t.Fatal("dense round trip changed matrix")
	}
}

func TestRandomWithDegree(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	m := RandomWithDegree(30, 40, 7, rng)
	mustValid(t, m)
	for i := 0; i < m.Rows; i++ {
		if m.RowNNZ(i) != 7 {
			t.Fatalf("row %d has %d entries, want 7", i, m.RowNNZ(i))
		}
	}
	// Degree capped at column count.
	m = RandomWithDegree(5, 3, 10, rng)
	for i := 0; i < m.Rows; i++ {
		if m.RowNNZ(i) != 3 {
			t.Fatalf("row %d has %d entries, want 3", i, m.RowNNZ(i))
		}
	}
}

func TestMatrixMarketDimensionBounds(t *testing.T) {
	// Indices are int32: the largest representable dimension is MaxInt32.
	// 2^31 used to pass the (> 1<<31) validation despite overflowing the
	// int32 index space; anything above MaxInt32 must be rejected.
	reject := []string{
		"%%MatrixMarket matrix coordinate real general\n2147483648 1 0\n",
		"%%MatrixMarket matrix coordinate real general\n1 2147483648 0\n",
		"%%MatrixMarket matrix coordinate real general\n4294967296 1 0\n",
	}
	for _, src := range reject {
		if _, err := ReadMatrixMarket(strings.NewReader(src)); err == nil {
			t.Errorf("accepted out-of-range dimensions: %q", src)
		}
	}
	// Exactly MaxInt32 columns is the boundary and must be accepted
	// (cheap here: a single empty row, so no index-space allocation).
	ok := "%%MatrixMarket matrix coordinate real general\n1 2147483647 0\n"
	m, err := ReadMatrixMarket(strings.NewReader(ok))
	if err != nil {
		t.Fatalf("rejected boundary dimensions: %v", err)
	}
	if m.Cols != 2147483647 {
		t.Fatalf("cols = %d, want MaxInt32", m.Cols)
	}
}

func TestMatrixMarketStrictSizeLine(t *testing.T) {
	// fmt.Sscan used to stop after three tokens, silently accepting
	// trailing junk on the size line. The parser must reject it.
	reject := []string{
		"%%MatrixMarket matrix coordinate real general\n3 3 1 junk\n1 1 1.0\n",
		"%%MatrixMarket matrix coordinate real general\n3 3 1 4\n1 1 1.0\n",
		"%%MatrixMarket matrix coordinate real general\n3 3\n1 1 1.0\n",
		"%%MatrixMarket matrix coordinate real general\n3 3 1.5\n1 1 1.0\n",
		"%%MatrixMarket matrix coordinate real general\n3 x 1\n1 1 1.0\n",
	}
	for _, src := range reject {
		if _, err := ReadMatrixMarket(strings.NewReader(src)); err == nil {
			t.Errorf("accepted malformed size line: %q", src)
		}
	}
	// A well-formed size line still parses.
	ok := "%%MatrixMarket matrix coordinate real general\n3 3 1\n1 1 1.0\n"
	if _, err := ReadMatrixMarket(strings.NewReader(ok)); err != nil {
		t.Fatalf("rejected valid size line: %v", err)
	}
}
