package matrix

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Matrix Market (MM) coordinate-format I/O. The subset implemented here is
// what the SuiteSparse collection uses for the matrices of the paper's
// Table 2: "matrix coordinate (real|integer|pattern) (general|symmetric)".

// ReadMatrixMarket parses a Matrix Market coordinate stream into a CSR
// matrix. Pattern matrices get value 1 for every entry; symmetric matrices
// are expanded to full storage.
func ReadMatrixMarket(r io.Reader) (*CSR, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	header, err := readNonEmptyLine(br)
	if err != nil {
		return nil, fmt.Errorf("matrixmarket: missing header: %w", err)
	}
	fields := strings.Fields(strings.ToLower(header))
	if len(fields) < 5 || fields[0] != "%%matrixmarket" || fields[1] != "matrix" {
		return nil, fmt.Errorf("matrixmarket: bad header %q", header)
	}
	if fields[2] != "coordinate" {
		return nil, fmt.Errorf("matrixmarket: unsupported format %q (only coordinate)", fields[2])
	}
	valType := fields[3]
	switch valType {
	case "real", "integer", "pattern":
	default:
		return nil, fmt.Errorf("matrixmarket: unsupported value type %q", valType)
	}
	symmetry := fields[4]
	switch symmetry {
	case "general", "symmetric", "skew-symmetric":
	default:
		return nil, fmt.Errorf("matrixmarket: unsupported symmetry %q", symmetry)
	}

	// Size line (after comments).
	sizeLine, err := readDataLine(br)
	if err != nil {
		return nil, fmt.Errorf("matrixmarket: missing size line: %w", err)
	}
	var rows, cols int
	var nnz int64
	if _, err := fmt.Sscan(sizeLine, &rows, &cols, &nnz); err != nil {
		return nil, fmt.Errorf("matrixmarket: bad size line %q: %w", sizeLine, err)
	}
	if rows < 0 || cols < 0 || nnz < 0 {
		return nil, fmt.Errorf("matrixmarket: negative size %d %d %d", rows, cols, nnz)
	}
	// Column indices are stored as int32 throughout this library.
	const maxDim = 1 << 31
	if rows > maxDim || cols > maxDim {
		return nil, fmt.Errorf("matrixmarket: dimensions %dx%d exceed int32 index space", rows, cols)
	}

	coo := &COO{Rows: rows, Cols: cols, Entries: make([]Entry, 0, nnz)}
	for k := int64(0); k < nnz; k++ {
		line, err := readDataLine(br)
		if err != nil {
			return nil, fmt.Errorf("matrixmarket: entry %d: %w", k, err)
		}
		f := strings.Fields(line)
		want := 3
		if valType == "pattern" {
			want = 2
		}
		if len(f) < want {
			return nil, fmt.Errorf("matrixmarket: entry %d: short line %q", k, line)
		}
		i, err := strconv.Atoi(f[0])
		if err != nil {
			return nil, fmt.Errorf("matrixmarket: entry %d row: %w", k, err)
		}
		j, err := strconv.Atoi(f[1])
		if err != nil {
			return nil, fmt.Errorf("matrixmarket: entry %d col: %w", k, err)
		}
		v := 1.0
		if valType != "pattern" {
			v, err = strconv.ParseFloat(f[2], 64)
			if err != nil {
				return nil, fmt.Errorf("matrixmarket: entry %d value: %w", k, err)
			}
		}
		// Matrix Market is 1-indexed.
		row, col := int32(i-1), int32(j-1)
		coo.Append(row, col, v)
		if row != col {
			switch symmetry {
			case "symmetric":
				coo.Append(col, row, v)
			case "skew-symmetric":
				coo.Append(col, row, -v)
			}
		}
	}
	if err := coo.Validate(); err != nil {
		return nil, err
	}
	return coo.ToCSR(), nil
}

// WriteMatrixMarket writes m in "matrix coordinate real general" format.
func WriteMatrixMarket(w io.Writer, m *CSR) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real general\n"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "%d %d %d\n", m.Rows, m.Cols, m.NNZ()); err != nil {
		return err
	}
	for i := 0; i < m.Rows; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		for p := lo; p < hi; p++ {
			if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", i+1, m.ColIdx[p]+1, m.Val[p]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

func readNonEmptyLine(br *bufio.Reader) (string, error) {
	for {
		line, err := br.ReadString('\n')
		line = strings.TrimSpace(line)
		if line != "" {
			return line, nil
		}
		if err != nil {
			return "", err
		}
	}
}

// readDataLine skips blank and comment lines.
func readDataLine(br *bufio.Reader) (string, error) {
	for {
		line, err := br.ReadString('\n')
		trimmed := strings.TrimSpace(line)
		if trimmed != "" && !strings.HasPrefix(trimmed, "%") {
			return trimmed, nil
		}
		if err != nil {
			return "", err
		}
	}
}
