package matrix

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Matrix Market (MM) coordinate-format I/O. The subset implemented here is
// what the SuiteSparse collection uses for the matrices of the paper's
// Table 2: "matrix coordinate (real|integer|pattern) (general|symmetric)".

// ReadLimits bounds the matrix shape a reader will accept before doing any
// shape-proportional allocation. Servers parsing untrusted uploads set
// these: a handful of header bytes can otherwise claim 2^31 rows and make
// the parser allocate gigabytes for row pointers. Zero fields mean
// "unlimited" (subject only to the int32 index space).
type ReadLimits struct {
	MaxRows int
	MaxCols int
	MaxNNZ  int64
}

// check validates a claimed shape against the limits. A nil receiver
// accepts everything.
func (l *ReadLimits) check(rows, cols int, nnz int64) error {
	if l == nil {
		return nil
	}
	if l.MaxRows > 0 && rows > l.MaxRows {
		return fmt.Errorf("matrix: %d rows exceeds limit %d", rows, l.MaxRows)
	}
	if l.MaxCols > 0 && cols > l.MaxCols {
		return fmt.Errorf("matrix: %d cols exceeds limit %d", cols, l.MaxCols)
	}
	if l.MaxNNZ > 0 && nnz > l.MaxNNZ {
		return fmt.Errorf("matrix: %d nonzeros exceeds limit %d", nnz, l.MaxNNZ)
	}
	return nil
}

// ReadMatrixMarket parses a Matrix Market coordinate stream into a CSR
// matrix. Pattern matrices get value 1 for every entry; symmetric matrices
// are expanded to full storage.
func ReadMatrixMarket(r io.Reader) (*CSR, error) {
	return ReadMatrixMarketLimited(r, nil)
}

// ReadMatrixMarketLimited is ReadMatrixMarket with a shape bound enforced
// before any shape-proportional allocation happens.
func ReadMatrixMarketLimited(r io.Reader, lim *ReadLimits) (*CSR, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	header, err := readNonEmptyLine(br)
	if err != nil {
		return nil, fmt.Errorf("matrixmarket: missing header: %w", err)
	}
	fields := strings.Fields(strings.ToLower(header))
	if len(fields) < 5 || fields[0] != "%%matrixmarket" || fields[1] != "matrix" {
		return nil, fmt.Errorf("matrixmarket: bad header %q", header)
	}
	if fields[2] != "coordinate" {
		return nil, fmt.Errorf("matrixmarket: unsupported format %q (only coordinate)", fields[2])
	}
	valType := fields[3]
	switch valType {
	case "real", "integer", "pattern":
	default:
		return nil, fmt.Errorf("matrixmarket: unsupported value type %q", valType)
	}
	symmetry := fields[4]
	switch symmetry {
	case "general", "symmetric", "skew-symmetric":
	default:
		return nil, fmt.Errorf("matrixmarket: unsupported symmetry %q", symmetry)
	}

	// Size line (after comments).
	sizeLine, err := readDataLine(br)
	if err != nil {
		return nil, fmt.Errorf("matrixmarket: missing size line: %w", err)
	}
	// The size line is exactly "rows cols nnz". fmt.Sscan would silently
	// ignore trailing tokens ("3 3 4 junk" used to parse), so split and
	// require the exact field count before converting.
	sf := strings.Fields(sizeLine)
	if len(sf) != 3 {
		return nil, fmt.Errorf("matrixmarket: bad size line %q: want exactly \"rows cols nnz\"", sizeLine)
	}
	rows, err := strconv.Atoi(sf[0])
	if err != nil {
		return nil, fmt.Errorf("matrixmarket: bad size line %q: %w", sizeLine, err)
	}
	cols, err := strconv.Atoi(sf[1])
	if err != nil {
		return nil, fmt.Errorf("matrixmarket: bad size line %q: %w", sizeLine, err)
	}
	nnz, err := strconv.ParseInt(sf[2], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("matrixmarket: bad size line %q: %w", sizeLine, err)
	}
	if rows < 0 || cols < 0 || nnz < 0 {
		return nil, fmt.Errorf("matrixmarket: negative size %d %d %d", rows, cols, nnz)
	}
	// Row and column indices are stored as int32 throughout this library;
	// the largest representable index is math.MaxInt32, so any dimension
	// beyond that overflows (2^31 itself used to slip through a > 1<<31
	// comparison).
	if rows > math.MaxInt32 || cols > math.MaxInt32 {
		return nil, fmt.Errorf("matrixmarket: dimensions %dx%d exceed int32 index space", rows, cols)
	}
	if err := lim.check(rows, cols, nnz); err != nil {
		return nil, fmt.Errorf("matrixmarket: %w", err)
	}

	// Cap the Entries preallocation: nnz comes from the (untrusted) size
	// line, and the loop below appends one parsed entry at a time, so a
	// truncated stream claiming a huge count fails fast instead of
	// committing gigabytes up front.
	prealloc := nnz
	if prealloc > 1<<20 {
		prealloc = 1 << 20
	}
	coo := &COO{Rows: rows, Cols: cols, Entries: make([]Entry, 0, prealloc)}
	for k := int64(0); k < nnz; k++ {
		line, err := readDataLine(br)
		if err != nil {
			return nil, fmt.Errorf("matrixmarket: entry %d: %w", k, err)
		}
		f := strings.Fields(line)
		want := 3
		if valType == "pattern" {
			want = 2
		}
		if len(f) < want {
			return nil, fmt.Errorf("matrixmarket: entry %d: short line %q", k, line)
		}
		i, err := strconv.Atoi(f[0])
		if err != nil {
			return nil, fmt.Errorf("matrixmarket: entry %d row: %w", k, err)
		}
		j, err := strconv.Atoi(f[1])
		if err != nil {
			return nil, fmt.Errorf("matrixmarket: entry %d col: %w", k, err)
		}
		v := 1.0
		if valType != "pattern" {
			v, err = strconv.ParseFloat(f[2], 64)
			if err != nil {
				return nil, fmt.Errorf("matrixmarket: entry %d value: %w", k, err)
			}
		}
		// Matrix Market is 1-indexed.
		row, col := int32(i-1), int32(j-1)
		coo.Append(row, col, v)
		if row != col {
			switch symmetry {
			case "symmetric":
				coo.Append(col, row, v)
			case "skew-symmetric":
				coo.Append(col, row, -v)
			}
		}
	}
	if err := coo.Validate(); err != nil {
		return nil, err
	}
	return coo.ToCSR(), nil
}

// WriteMatrixMarket writes m in "matrix coordinate real general" format.
func WriteMatrixMarket(w io.Writer, m *CSR) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real general\n"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "%d %d %d\n", m.Rows, m.Cols, m.NNZ()); err != nil {
		return err
	}
	for i := 0; i < m.Rows; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		for p := lo; p < hi; p++ {
			if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", i+1, m.ColIdx[p]+1, m.Val[p]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

func readNonEmptyLine(br *bufio.Reader) (string, error) {
	for {
		line, err := br.ReadString('\n')
		line = strings.TrimSpace(line)
		if line != "" {
			return line, nil
		}
		if err != nil {
			return "", err
		}
	}
}

// readDataLine skips blank and comment lines.
func readDataLine(br *bufio.Reader) (string, error) {
	for {
		line, err := br.ReadString('\n')
		trimmed := strings.TrimSpace(line)
		if trimmed != "" && !strings.HasPrefix(trimmed, "%") {
			return trimmed, nil
		}
		if err != nil {
			return "", err
		}
	}
}
