package matrix

import (
	"math"
	"math/rand"
	"testing"
)

func TestFlopSmall(t *testing.T) {
	// A = [1 1; 0 1], B = [1 1; 1 0]
	a := FromDense(&Dense{Rows: 2, Cols: 2, Data: []float64{1, 1, 0, 1}})
	b := FromDense(&Dense{Rows: 2, Cols: 2, Data: []float64{1, 1, 1, 0}})
	total, perRow := Flop(a, b)
	// Row 0 of A touches B rows 0 (2 nnz) and 1 (1 nnz) = 3 flop.
	// Row 1 of A touches B row 1 (1 nnz) = 1 flop.
	if total != 4 || perRow[0] != 3 || perRow[1] != 1 {
		t.Fatalf("flop = %d, perRow = %v", total, perRow)
	}
}

func TestFlopMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		a := Random(1+rng.Intn(20), 1+rng.Intn(20), 0.3, rng)
		b := Random(a.Cols, 1+rng.Intn(20), 0.3, rng)
		total, perRow := Flop(a, b)
		var brute int64
		for i := 0; i < a.Rows; i++ {
			var rowf int64
			acols, _ := a.Row(i)
			for _, k := range acols {
				rowf += b.RowNNZ(int(k))
			}
			if rowf != perRow[i] {
				t.Fatalf("trial %d row %d: perRow=%d brute=%d", trial, i, perRow[i], rowf)
			}
			brute += rowf
		}
		if total != brute {
			t.Fatalf("trial %d: total=%d brute=%d", trial, total, brute)
		}
	}
}

func TestSymbolicNNZMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 20; trial++ {
		a := Random(1+rng.Intn(25), 1+rng.Intn(25), 0.25, rng)
		b := Random(a.Cols, 1+rng.Intn(25), 0.25, rng)
		sym := SymbolicNNZ(a, b)
		// NaiveMultiply keeps numerically-cancelled entries out, so compare
		// against the structural count: union of patterns.
		c := NaiveMultiply(a, b)
		// SymbolicNNZ counts structural nonzeros, which can exceed numeric
		// nnz if values cancel; with random floats cancellation has
		// probability zero.
		if sym != c.NNZ() {
			t.Fatalf("trial %d: symbolic=%d naive=%d", trial, sym, c.NNZ())
		}
	}
}

func TestProductStats(t *testing.T) {
	a := Identity(4)
	s := ProductStats(a, a)
	if s.Flop != 4 || s.NNZOut != 4 || s.CompressionRatio != 1 {
		t.Fatalf("I*I stats = %+v", s)
	}
}

func TestProductStatsEmptyProduct(t *testing.T) {
	a := NewCSR(3, 3)
	s := ProductStats(a, a)
	if s.NNZOut != 0 || !math.IsInf(s.CompressionRatio, 1) {
		t.Fatalf("stats = %+v", s)
	}
}

func TestMaxAvgRowNNZ(t *testing.T) {
	m := &CSR{
		Rows: 3, Cols: 5,
		RowPtr: []int64{0, 1, 4, 4},
		ColIdx: []int32{0, 1, 2, 3},
		Val:    []float64{1, 1, 1, 1},
		Sorted: true,
	}
	if m.MaxRowNNZ() != 3 {
		t.Fatalf("MaxRowNNZ = %d", m.MaxRowNNZ())
	}
	if got := m.AvgRowNNZ(); math.Abs(got-4.0/3.0) > 1e-15 {
		t.Fatalf("AvgRowNNZ = %v", got)
	}
}

func TestDegreeHistogram(t *testing.T) {
	m := &CSR{
		Rows: 4, Cols: 8,
		RowPtr: []int64{0, 0, 1, 3, 7},
		ColIdx: []int32{0, 1, 2, 3, 4, 5, 6},
		Val:    make([]float64, 7),
		Sorted: true,
	}
	h := m.DegreeHistogram()
	// Row degrees: 0, 1, 2, 4 → buckets 0, 1, 2, 3.
	want := []int64{1, 1, 1, 1}
	if len(h) != len(want) {
		t.Fatalf("hist = %v", h)
	}
	for i := range want {
		if h[i] != want[i] {
			t.Fatalf("hist = %v, want %v", h, want)
		}
	}
}

func TestFlopIntoReusesBuffer(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := Random(40, 30, 0.2, rng)
	b := Random(30, 25, 0.2, rng)
	wantTotal, wantRows := Flop(a, b)

	buf := make([]int64, 0, 64)
	gotTotal, gotRows := FlopInto(a, b, buf)
	if gotTotal != wantTotal {
		t.Fatalf("total = %d, want %d", gotTotal, wantTotal)
	}
	if len(gotRows) != len(wantRows) {
		t.Fatalf("perRow length %d, want %d", len(gotRows), len(wantRows))
	}
	for i := range wantRows {
		if gotRows[i] != wantRows[i] {
			t.Fatalf("perRow[%d] = %d, want %d", i, gotRows[i], wantRows[i])
		}
	}
	if &gotRows[0] != &buf[:1][0] {
		t.Fatal("buffer with sufficient capacity was not reused")
	}
	// Undersized buffer: must allocate, not panic.
	gotTotal2, rows2 := FlopInto(a, b, make([]int64, 0, 1))
	if gotTotal2 != wantTotal || len(rows2) != a.Rows {
		t.Fatalf("undersized-buffer FlopInto wrong: %d, %d rows", gotTotal2, len(rows2))
	}
}

func TestStructureChecksum(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := Random(30, 30, 0.2, rng)

	// Stable across calls and clones.
	if m.StructureChecksum() != m.StructureChecksum() {
		t.Fatal("checksum not deterministic")
	}
	if m.Clone().StructureChecksum() != m.StructureChecksum() {
		t.Fatal("clone checksum differs")
	}

	// Blind to values.
	vc := m.Clone()
	for i := range vc.Val {
		vc.Val[i] *= 3.25
	}
	if vc.StructureChecksum() != m.StructureChecksum() {
		t.Fatal("value change altered the structure checksum")
	}

	// Sensitive to structure: column relabeling and row-pointer shifts.
	cc := m.Clone()
	if len(cc.ColIdx) == 0 {
		t.Skip("empty random matrix")
	}
	cc.ColIdx[0] = (cc.ColIdx[0] + 1) % int32(cc.Cols)
	if cc.StructureChecksum() == m.StructureChecksum() {
		t.Fatal("column change not detected")
	}
	dd := m.Clone()
	dd.Rows++
	dd.RowPtr = append(dd.RowPtr, dd.RowPtr[len(dd.RowPtr)-1])
	if dd.StructureChecksum() == m.StructureChecksum() {
		t.Fatal("dimension change not detected")
	}
}
