package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddBasic(t *testing.T) {
	a := FromDense(&Dense{Rows: 2, Cols: 2, Data: []float64{1, 2, 0, 3}})
	b := FromDense(&Dense{Rows: 2, Cols: 2, Data: []float64{4, 0, 5, -3}})
	c, err := Add(a, b, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	mustValid(t, c)
	d := c.ToDense()
	if d.At(0, 0) != 5 || d.At(0, 1) != 2 || d.At(1, 0) != 5 {
		t.Fatalf("sum wrong: %+v", d)
	}
	// 3 + (-3) cancels and must be dropped.
	if d.At(1, 1) != 0 {
		t.Fatalf("cancellation value: %v", d.At(1, 1))
	}
	for i := 0; i < c.Rows; i++ {
		cols, _ := c.Row(i)
		for _, col := range cols {
			if i == 1 && col == 1 {
				t.Fatal("cancelled entry kept")
			}
		}
	}
}

func TestAddScalars(t *testing.T) {
	rng := rand.New(rand.NewSource(801))
	a := Random(10, 10, 0.3, rng)
	b := Random(10, 10, 0.3, rng)
	c, err := Add(a, b, 2, -0.5)
	if err != nil {
		t.Fatal(err)
	}
	da, db, dc := a.ToDense(), b.ToDense(), c.ToDense()
	for i := range dc.Data {
		want := 2*da.Data[i] - 0.5*db.Data[i]
		if diff := dc.Data[i] - want; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("entry %d: %v want %v", i, dc.Data[i], want)
		}
	}
}

func TestAddDimensionMismatch(t *testing.T) {
	if _, err := Add(NewCSR(2, 2), NewCSR(2, 3), 1, 1); err == nil {
		t.Fatal("expected error")
	}
	if _, err := Hadamard(NewCSR(2, 2), NewCSR(3, 2)); err == nil {
		t.Fatal("expected error")
	}
}

func TestAddUnsortedInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(802))
	a := Random(8, 8, 0.4, rng)
	au := a.ShuffleRowEntries(rng)
	c1, err := Add(a, a, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Add(au, au, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(c1, c2) {
		t.Fatal("unsorted input changed Add result")
	}
	// Inputs must not be mutated.
	if au.Sorted {
		t.Fatal("input was sorted in place")
	}
}

func TestHadamardBasic(t *testing.T) {
	a := FromDense(&Dense{Rows: 2, Cols: 2, Data: []float64{1, 2, 3, 0}})
	b := FromDense(&Dense{Rows: 2, Cols: 2, Data: []float64{5, 0, 2, 7}})
	c, err := Hadamard(a, b)
	if err != nil {
		t.Fatal(err)
	}
	mustValid(t, c)
	d := c.ToDense()
	if d.At(0, 0) != 5 || d.At(1, 0) != 6 {
		t.Fatalf("product wrong: %+v", d)
	}
	if c.NNZ() != 2 {
		t.Fatalf("nnz = %d, want 2 (pattern intersection)", c.NNZ())
	}
}

func TestHadamardAgainstDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := Random(1+rng.Intn(15), 1+rng.Intn(15), 0.4, rng)
		b := Random(a.Rows, a.Cols, 0.4, rng)
		c, err := Hadamard(a, b)
		if err != nil {
			return false
		}
		da, db, dc := a.ToDense(), b.ToDense(), c.ToDense()
		for i := range dc.Data {
			if dc.Data[i] != da.Data[i]*db.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestScaleSumRowSums(t *testing.T) {
	a := FromDense(&Dense{Rows: 2, Cols: 2, Data: []float64{1, 2, 3, 4}})
	a.Scale(2)
	if a.Sum() != 20 {
		t.Fatalf("Sum = %v", a.Sum())
	}
	rs := a.RowSums()
	if rs[0] != 6 || rs[1] != 14 {
		t.Fatalf("RowSums = %v", rs)
	}
}

// Property: A + (-1)·A == empty matrix.
func TestAddSelfCancellation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := Random(1+rng.Intn(20), 1+rng.Intn(20), 0.3, rng)
		c, err := Add(a, a, 1, -1)
		return err == nil && c.NNZ() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
