package matrix

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadMatrixMarket checks that the parser never panics and that anything
// it accepts is a structurally valid matrix that survives a write/read round
// trip. Under plain `go test` the seed corpus runs as unit tests; use
// `go test -fuzz=FuzzReadMatrixMarket ./internal/matrix` to explore.
func FuzzReadMatrixMarket(f *testing.F) {
	seeds := []string{
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 3.5\n",
		"%%MatrixMarket matrix coordinate pattern symmetric\n3 3 2\n2 1\n3 3\n",
		"%%MatrixMarket matrix coordinate integer general\n1 1 1\n1 1 7\n",
		"%%MatrixMarket matrix coordinate real skew-symmetric\n2 2 1\n2 1 1.0\n",
		"%%MatrixMarket matrix coordinate real general\n% comment\n\n2 3 0\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 9999\n1 1 1\n",
		"%%MatrixMarket matrix coordinate real general\n-1 2 1\n1 1 1\n",
		"%%MatrixMarket matrix coordinate real general\n3 3 4 junk\n1 1 1\n",
		"%%MatrixMarket matrix coordinate real general\n3 3 1 4\n1 1 1\n",
		"%%MatrixMarket matrix coordinate real general\n2147483648 1 0\n",
		"%%MatrixMarket matrix coordinate real general\n1 2147483647 0\n",
		"garbage",
		"%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 NaN\n",
		"%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 1e309\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		m, err := ReadMatrixMarket(strings.NewReader(src))
		if err != nil {
			return // rejecting malformed input is fine; panicking is not
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("parser accepted invalid matrix: %v", err)
		}
		// Guard against absurd dimensions eating memory in the round trip.
		if m.Rows > 1<<16 || m.Cols > 1<<16 || m.NNZ() > 1<<16 {
			return
		}
		var buf bytes.Buffer
		if err := WriteMatrixMarket(&buf, m); err != nil {
			t.Fatalf("write failed for accepted matrix: %v", err)
		}
		back, err := ReadMatrixMarket(&buf)
		if err != nil {
			t.Fatalf("round trip parse failed: %v", err)
		}
		if back.Rows != m.Rows || back.Cols != m.Cols || back.NNZ() != m.NNZ() {
			t.Fatalf("round trip changed shape: %v vs %v", m, back)
		}
	})
}
