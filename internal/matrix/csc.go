package matrix

import "fmt"

// CSC is a sparse matrix in Compressed Sparse Columns format: the column-
// major dual of CSR. Column j's row indices and values live in
// RowIdx[ColPtr[j]:ColPtr[j+1]] and Val[ColPtr[j]:ColPtr[j+1]].
//
// The row-wise SpGEMM algorithms of this repository operate on CSR; CSC is
// provided for interoperability (many numerical packages are column-major)
// and for column-access patterns such as the right-hand-side slicing of the
// tall-skinny use case.
type CSC struct {
	Rows, Cols int
	ColPtr     []int64
	RowIdx     []int32
	Val        []float64
	// Sorted reports whether every column's row indices are strictly
	// increasing.
	Sorted bool
}

// NNZ returns the number of stored entries.
func (m *CSC) NNZ() int64 {
	if len(m.ColPtr) == 0 {
		return 0
	}
	return m.ColPtr[m.Cols]
}

// Col returns the row-index and value slices of column j, aliasing storage.
func (m *CSC) Col(j int) ([]int32, []float64) {
	lo, hi := m.ColPtr[j], m.ColPtr[j+1]
	return m.RowIdx[lo:hi], m.Val[lo:hi]
}

// Validate checks the CSC structural invariants.
func (m *CSC) Validate() error {
	if m.Rows < 0 || m.Cols < 0 {
		return fmt.Errorf("matrix: negative dimensions %dx%d", m.Rows, m.Cols)
	}
	if len(m.ColPtr) != m.Cols+1 {
		return fmt.Errorf("matrix: ColPtr length %d, want %d", len(m.ColPtr), m.Cols+1)
	}
	if m.ColPtr[0] != 0 {
		return fmt.Errorf("matrix: ColPtr[0] = %d, want 0", m.ColPtr[0])
	}
	nnz := m.ColPtr[m.Cols]
	if int64(len(m.RowIdx)) != nnz || int64(len(m.Val)) != nnz {
		return fmt.Errorf("matrix: storage length mismatch (nnz %d, idx %d, val %d)", nnz, len(m.RowIdx), len(m.Val))
	}
	// Monotonicity first: a non-monotone pointer array would send the
	// range loop below out of bounds.
	for j := 0; j < m.Cols; j++ {
		if m.ColPtr[j] > m.ColPtr[j+1] {
			return fmt.Errorf("matrix: ColPtr not monotone at column %d", j)
		}
	}
	for j := 0; j < m.Cols; j++ {
		var prev int32 = -1
		for p := m.ColPtr[j]; p < m.ColPtr[j+1]; p++ {
			r := m.RowIdx[p]
			if r < 0 || int(r) >= m.Rows {
				return fmt.Errorf("matrix: column %d has row %d out of range [0,%d)", j, r, m.Rows)
			}
			if m.Sorted {
				if r <= prev {
					return fmt.Errorf("matrix: column %d not strictly sorted", j)
				}
				prev = r
			}
		}
	}
	return nil
}

// ToCSC converts a CSR matrix to CSC. Columns come out sorted (the
// conversion is a stable counting sort by column).
func (m *CSR) ToCSC() *CSC {
	out := &CSC{
		Rows:   m.Rows,
		Cols:   m.Cols,
		ColPtr: make([]int64, m.Cols+1),
		RowIdx: make([]int32, m.NNZ()),
		Val:    make([]float64, m.NNZ()),
		Sorted: true,
	}
	for _, c := range m.ColIdx {
		out.ColPtr[c+1]++
	}
	for j := 0; j < m.Cols; j++ {
		out.ColPtr[j+1] += out.ColPtr[j]
	}
	next := make([]int64, m.Cols)
	copy(next, out.ColPtr[:m.Cols])
	for i := 0; i < m.Rows; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		for p := lo; p < hi; p++ {
			c := m.ColIdx[p]
			q := next[c]
			out.RowIdx[q] = int32(i)
			out.Val[q] = m.Val[p]
			next[c] = q + 1
		}
	}
	return out
}

// ToCSR converts a CSC matrix to CSR with sorted rows.
func (m *CSC) ToCSR() *CSR {
	out := &CSR{
		Rows:   m.Rows,
		Cols:   m.Cols,
		RowPtr: make([]int64, m.Rows+1),
		ColIdx: make([]int32, m.NNZ()),
		Val:    make([]float64, m.NNZ()),
		Sorted: true,
	}
	for _, r := range m.RowIdx {
		out.RowPtr[r+1]++
	}
	for i := 0; i < m.Rows; i++ {
		out.RowPtr[i+1] += out.RowPtr[i]
	}
	next := make([]int64, m.Rows)
	copy(next, out.RowPtr[:m.Rows])
	for j := 0; j < m.Cols; j++ {
		lo, hi := m.ColPtr[j], m.ColPtr[j+1]
		for p := lo; p < hi; p++ {
			r := m.RowIdx[p]
			q := next[r]
			out.ColIdx[q] = int32(j)
			out.Val[q] = m.Val[p]
			next[r] = q + 1
		}
	}
	return out
}

// Diagonal returns the main-diagonal values of a CSR matrix as a dense
// slice (missing entries are zero).
func (m *CSR) Diagonal() []float64 {
	n := m.Rows
	if m.Cols < n {
		n = m.Cols
	}
	d := make([]float64, n)
	for i := 0; i < n; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		for p := lo; p < hi; p++ {
			if int(m.ColIdx[p]) == i {
				d[i] += m.Val[p]
			}
		}
	}
	return d
}

// Trace returns the sum of the main diagonal.
func (m *CSR) Trace() float64 {
	var t float64
	for _, v := range m.Diagonal() {
		t += v
	}
	return t
}

// InfNorm returns the maximum absolute row sum.
func (m *CSR) InfNorm() float64 {
	var worst float64
	for i := 0; i < m.Rows; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		var s float64
		for p := lo; p < hi; p++ {
			v := m.Val[p]
			if v < 0 {
				v = -v
			}
			s += v
		}
		if s > worst {
			worst = s
		}
	}
	return worst
}
