package matrix

import (
	"fmt"

	"repro/internal/semiring"
)

// CSCG is a sparse matrix in Compressed Sparse Columns format: the column-
// major dual of CSR, generic over the stored value type V. Column j's row
// indices and values live in RowIdx[ColPtr[j]:ColPtr[j+1]] and
// Val[ColPtr[j]:ColPtr[j+1]].
//
// The row-wise SpGEMM algorithms of this repository operate on CSR; CSC is
// provided for interoperability (many numerical packages are column-major)
// and for column-access patterns such as the right-hand-side slicing of the
// tall-skinny use case.
type CSCG[V semiring.Value] struct {
	Rows, Cols int
	ColPtr     []int64
	RowIdx     []int32
	Val        []V
	// Sorted reports whether every column's row indices are strictly
	// increasing.
	Sorted bool
}

// CSC is the float64 instantiation.
type CSC = CSCG[float64]

// NNZ returns the number of stored entries.
func (m *CSCG[V]) NNZ() int64 {
	if len(m.ColPtr) == 0 {
		return 0
	}
	return m.ColPtr[m.Cols]
}

// Col returns the row-index and value slices of column j, aliasing storage.
func (m *CSCG[V]) Col(j int) ([]int32, []V) {
	lo, hi := m.ColPtr[j], m.ColPtr[j+1]
	return m.RowIdx[lo:hi], m.Val[lo:hi]
}

// Validate checks the CSC structural invariants.
func (m *CSCG[V]) Validate() error {
	if m.Rows < 0 || m.Cols < 0 {
		return fmt.Errorf("matrix: negative dimensions %dx%d", m.Rows, m.Cols)
	}
	if len(m.ColPtr) != m.Cols+1 {
		return fmt.Errorf("matrix: ColPtr length %d, want %d", len(m.ColPtr), m.Cols+1)
	}
	if m.ColPtr[0] != 0 {
		return fmt.Errorf("matrix: ColPtr[0] = %d, want 0", m.ColPtr[0])
	}
	nnz := m.ColPtr[m.Cols]
	if int64(len(m.RowIdx)) != nnz || int64(len(m.Val)) != nnz {
		return fmt.Errorf("matrix: storage length mismatch (nnz %d, idx %d, val %d)", nnz, len(m.RowIdx), len(m.Val))
	}
	// Monotonicity first: a non-monotone pointer array would send the
	// range loop below out of bounds.
	for j := 0; j < m.Cols; j++ {
		if m.ColPtr[j] > m.ColPtr[j+1] {
			return fmt.Errorf("matrix: ColPtr not monotone at column %d", j)
		}
	}
	for j := 0; j < m.Cols; j++ {
		var prev int32 = -1
		for p := m.ColPtr[j]; p < m.ColPtr[j+1]; p++ {
			r := m.RowIdx[p]
			if r < 0 || int(r) >= m.Rows {
				return fmt.Errorf("matrix: column %d has row %d out of range [0,%d)", j, r, m.Rows)
			}
			if m.Sorted {
				if r <= prev {
					return fmt.Errorf("matrix: column %d not strictly sorted", j)
				}
				prev = r
			}
		}
	}
	return nil
}

// ToCSC converts a CSR matrix to CSC. Columns come out sorted (the
// conversion is a stable counting sort by column).
func (m *CSRG[V]) ToCSC() *CSCG[V] {
	out := &CSCG[V]{
		Rows:   m.Rows,
		Cols:   m.Cols,
		ColPtr: make([]int64, m.Cols+1),
		RowIdx: make([]int32, m.NNZ()),
		Val:    make([]V, m.NNZ()),
		Sorted: true,
	}
	for _, c := range m.ColIdx {
		out.ColPtr[c+1]++
	}
	for j := 0; j < m.Cols; j++ {
		out.ColPtr[j+1] += out.ColPtr[j]
	}
	next := make([]int64, m.Cols)
	copy(next, out.ColPtr[:m.Cols])
	for i := 0; i < m.Rows; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		for p := lo; p < hi; p++ {
			c := m.ColIdx[p]
			q := next[c]
			out.RowIdx[q] = int32(i)
			out.Val[q] = m.Val[p]
			next[c] = q + 1
		}
	}
	return out
}

// ToCSR converts a CSC matrix to CSR with sorted rows.
func (m *CSCG[V]) ToCSR() *CSRG[V] {
	out := &CSRG[V]{
		Rows:   m.Rows,
		Cols:   m.Cols,
		RowPtr: make([]int64, m.Rows+1),
		ColIdx: make([]int32, m.NNZ()),
		Val:    make([]V, m.NNZ()),
		Sorted: true,
	}
	for _, r := range m.RowIdx {
		out.RowPtr[r+1]++
	}
	for i := 0; i < m.Rows; i++ {
		out.RowPtr[i+1] += out.RowPtr[i]
	}
	next := make([]int64, m.Rows)
	copy(next, out.RowPtr[:m.Rows])
	for j := 0; j < m.Cols; j++ {
		lo, hi := m.ColPtr[j], m.ColPtr[j+1]
		for p := lo; p < hi; p++ {
			r := m.RowIdx[p]
			q := next[r]
			out.ColIdx[q] = int32(j)
			out.Val[q] = m.Val[p]
			next[r] = q + 1
		}
	}
	return out
}

// Diagonal returns the main-diagonal values of a CSR matrix as a dense
// slice (missing entries are the storage zero; duplicates merge with V's
// conventional addition).
func (m *CSRG[V]) Diagonal() []V {
	n := m.Rows
	if m.Cols < n {
		n = m.Cols
	}
	d := make([]V, n)
	for i := 0; i < n; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		for p := lo; p < hi; p++ {
			if int(m.ColIdx[p]) == i {
				d[i] = addValue(d[i], m.Val[p])
			}
		}
	}
	return d
}

// Trace returns the sum of the main diagonal.
func (m *CSRG[V]) Trace() V {
	var t V
	for _, v := range m.Diagonal() {
		t = addValue(t, v)
	}
	return t
}

// InfNorm returns the maximum absolute row sum (bool entries count as 1).
func (m *CSRG[V]) InfNorm() float64 {
	var worst float64
	for i := 0; i < m.Rows; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		var s float64
		for p := lo; p < hi; p++ {
			v := toFloat64(m.Val[p])
			if v < 0 {
				v = -v
			}
			s += v
		}
		if s > worst {
			worst = s
		}
	}
	return worst
}
