package matrix

import (
	"fmt"

	"repro/internal/semiring"
)

// Shard views: zero-copy windows over a CSRG that the sharded execution
// engine (internal/spgemm, AlgSharded) slices its operands with. A RowStripe
// is a horizontal band of A processed as an independent shard-local product;
// a ColBlock is a vertical slab of B a shard sweeps when its accumulator
// working set would overflow the cache tier. StitchRowStripes is the inverse
// of RowStripe: it assembles stripe-local outputs back into one matrix.

// RowStripe returns a view of rows [lo, hi): ColIdx and Val alias the
// receiver's storage (no entry data is copied; mutating the view's entries
// mutates the parent), while RowPtr is a fresh offset-adjusted window whose
// first entry is 0. Panics when the range is out of bounds.
func (m *CSRG[V]) RowStripe(lo, hi int) *CSRG[V] {
	return m.RowStripeInto(lo, hi, nil)
}

// RowStripeInto is RowStripe with a caller-provided row-pointer buffer (the
// only allocation a stripe view needs); rowPtr is grown when its capacity is
// under hi-lo+1. The entry arrays always alias the parent.
func (m *CSRG[V]) RowStripeInto(lo, hi int, rowPtr []int64) *CSRG[V] {
	if lo < 0 || hi < lo || hi > m.Rows {
		panic(fmt.Sprintf("matrix: RowStripe [%d, %d) out of range for %d rows", lo, hi, m.Rows))
	}
	n := hi - lo
	if cap(rowPtr) < n+1 {
		rowPtr = make([]int64, n+1)
	}
	rowPtr = rowPtr[:n+1]
	base := m.RowPtr[lo]
	for i := 0; i <= n; i++ {
		rowPtr[i] = m.RowPtr[lo+i] - base
	}
	end := m.RowPtr[hi]
	return &CSRG[V]{
		Rows:   n,
		Cols:   m.Cols,
		RowPtr: rowPtr,
		ColIdx: m.ColIdx[base:end:end],
		Val:    m.Val[base:end:end],
		Sorted: m.Sorted,
	}
}

// ColBlock is a zero-copy view of the columns [Lo, Hi) of a parent matrix.
// Nothing is materialized at construction: Row locates the block-local
// segment of a row on demand, by binary search when the parent's rows are
// sorted. For unsorted parents no contiguous segment exists, so Row returns
// the whole row with exact=false and the consumer filters by column — the
// view stays zero-copy in both regimes, trading filter work for the gather
// pass a materialized split (see splitColumns) would pay up front.
type ColBlock[V semiring.Value] struct {
	parent *CSRG[V]
	lo, hi int32
	exact  bool
}

// ColBlockOf returns the view of m's columns [lo, hi). Panics when the range
// is out of bounds.
func ColBlockOf[V semiring.Value](m *CSRG[V], lo, hi int32) ColBlock[V] {
	if lo < 0 || hi < lo || int(hi) > m.Cols {
		panic(fmt.Sprintf("matrix: ColBlock [%d, %d) out of range for %d cols", lo, hi, m.Cols))
	}
	return ColBlock[V]{parent: m, lo: lo, hi: hi, exact: m.Sorted}
}

// Bounds returns the block's column range [lo, hi).
func (b ColBlock[V]) Bounds() (lo, hi int32) { return b.lo, b.hi }

// Row returns the entries of row i that fall inside the block. When exact is
// true (sorted parent) the returned slices hold exactly the block-local
// entries, located by binary search. When exact is false (unsorted parent)
// the slices are the whole row and the caller must skip entries whose column
// is outside [lo, hi). Either way the slices alias the parent's storage.
//
//spgemm:hotpath
func (b ColBlock[V]) Row(i int) (cols []int32, vals []V, exact bool) {
	m := b.parent
	plo, phi := m.RowPtr[i], m.RowPtr[i+1]
	cols = m.ColIdx[plo:phi]
	if !b.exact {
		return cols, m.Val[plo:phi], false
	}
	s := lowerBoundI32(cols, b.lo)
	e := lowerBoundI32(cols, b.hi)
	return cols[s:e], m.Val[plo+int64(s) : plo+int64(e)], true
}

// lowerBoundI32 returns the first index in sorted s whose value is >= key.
//
//spgemm:hotpath
func lowerBoundI32(s []int32, key int32) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// StitchRowStripes assembles stripe-local products back into one rows×cols
// matrix: part s holds the output rows [offsets[s], offsets[s+1]), exactly
// the decomposition RowStripe produces. Entries are copied in ascending
// stripe (hence ascending row) order and each part's rows verbatim, so when
// every part has sorted rows the stitched matrix is sorted and bit-identical
// to a monolithic product that built the same per-row entries. offsets must
// have len(parts)+1 entries, start at 0 and end at rows; each part must span
// its stripe's rows and share the output column count.
func StitchRowStripes[V semiring.Value](rows, cols int, offsets []int, parts []*CSRG[V]) (*CSRG[V], error) {
	if len(offsets) != len(parts)+1 {
		return nil, fmt.Errorf("matrix: stitch needs len(parts)+1 offsets, got %d for %d parts", len(offsets), len(parts))
	}
	if len(offsets) == 0 || offsets[0] != 0 || offsets[len(offsets)-1] != rows {
		return nil, fmt.Errorf("matrix: stitch offsets must span [0, %d]", rows)
	}
	var nnz int64
	sorted := true
	for s, p := range parts {
		if p == nil {
			return nil, fmt.Errorf("matrix: stitch part %d is nil", s)
		}
		if want := offsets[s+1] - offsets[s]; p.Rows != want {
			return nil, fmt.Errorf("matrix: stitch part %d has %d rows, stripe wants %d", s, p.Rows, want)
		}
		if p.Cols != cols {
			return nil, fmt.Errorf("matrix: stitch part %d has %d cols, want %d", s, p.Cols, cols)
		}
		nnz += p.NNZ()
		sorted = sorted && p.Sorted
	}
	c := &CSRG[V]{
		Rows:   rows,
		Cols:   cols,
		RowPtr: make([]int64, rows+1),
		ColIdx: make([]int32, nnz),
		Val:    make([]V, nnz),
		Sorted: sorted,
	}
	var at int64
	for s, p := range parts {
		base := offsets[s]
		for i := 0; i < p.Rows; i++ {
			c.RowPtr[base+i] = at + p.RowPtr[i]
		}
		n := p.NNZ()
		copy(c.ColIdx[at:], p.ColIdx[:n])
		copy(c.Val[at:], p.Val[:n])
		at += n
	}
	c.RowPtr[rows] = at
	return c, nil
}
