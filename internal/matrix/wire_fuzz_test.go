package matrix

import (
	"bytes"
	"math/rand"
	"testing"
)

// FuzzReadCSRBinary checks that the wire-format parser never panics and
// that anything it accepts is a structurally valid matrix that survives an
// encode/decode round trip. The seed corpus covers valid encodings plus the
// header-level corruptions the unit tests pin individually.
func FuzzReadCSRBinary(f *testing.F) {
	rng := rand.New(rand.NewSource(11))
	for _, m := range []*CSR{
		NewCSR(0, 0),
		Identity(4),
		Random(7, 9, 0.4, rng),
	} {
		var buf bytes.Buffer
		if err := WriteCSRBinary(&buf, m); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	var buf bytes.Buffer
	_ = WriteCSRBinary(&buf, Identity(3))
	good := buf.Bytes()
	truncated := append([]byte(nil), good[:len(good)-5]...)
	f.Add(truncated)
	badMagic := append([]byte(nil), good...)
	badMagic[0] = 'Z'
	f.Add(badMagic)
	bomb := append([]byte(nil), good[:wireHeaderSize]...)
	bomb[28] = 0xff // claims ~10^12 nonzeros with no payload
	f.Add(bomb)

	f.Fuzz(func(t *testing.T, data []byte) {
		lim := &ReadLimits{MaxRows: 1 << 16, MaxCols: 1 << 16, MaxNNZ: 1 << 20}
		m, err := ReadCSRBinaryLimited(bytes.NewReader(data), lim)
		if err != nil {
			return // rejecting malformed input is fine; panicking is not
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("parser accepted invalid matrix: %v", err)
		}
		var out bytes.Buffer
		if err := WriteCSRBinary(&out, m); err != nil {
			t.Fatalf("re-encode failed for accepted matrix: %v", err)
		}
		back, err := ReadCSRBinary(&out)
		if err != nil {
			t.Fatalf("round trip parse failed: %v", err)
		}
		if back.Rows != m.Rows || back.Cols != m.Cols || back.NNZ() != m.NNZ() || back.Sorted != m.Sorted {
			t.Fatalf("round trip changed shape: %v vs %v", m, back)
		}
	})
}
