package matrix

import (
	"math"

	"repro/internal/semiring"
)

// Stats summarizes the structural quantities the paper's evaluation keys on
// (Table 2 and the compression-ratio plots of Figures 14 and 17).
type Stats struct {
	Rows, Cols int
	NNZ        int64 // nonzeros of the input matrix
	Flop       int64 // scalar multiplications to form the product
	NNZOut     int64 // nonzeros of the product
	// CompressionRatio is Flop / NNZOut — the paper's "compression ratio"
	// (how many intermediate products merge into each output nonzero).
	CompressionRatio float64
}

// Flop returns the number of non-trivial scalar multiplications required to
// compute A·B by a row-wise algorithm (the paper's "flop"), together with the
// per-row counts that drive the balanced scheduler of Figure 6. It depends
// only on structure, so it is generic over the value types.
func Flop[V, W semiring.Value](a *CSRG[V], b *CSRG[W]) (total int64, perRow []int64) {
	return FlopInto(a, b, nil)
}

// FlopInto is Flop with a caller-provided per-row buffer: when cap(buf) is at
// least a.Rows the counts are written in place and no allocation happens,
// otherwise a new slice is allocated. Iterative callers (spgemm.Context) pass
// the same buffer every multiplication so the flop pre-pass stops allocating
// at steady state.
func FlopInto[V, W semiring.Value](a *CSRG[V], b *CSRG[W], buf []int64) (total int64, perRow []int64) {
	if a.Cols != b.Rows {
		panic("matrix: Flop dimension mismatch")
	}
	if cap(buf) < a.Rows {
		buf = make([]int64, a.Rows)
	}
	perRow = buf[:a.Rows]
	for i := 0; i < a.Rows; i++ {
		lo, hi := a.RowPtr[i], a.RowPtr[i+1]
		var f int64
		for p := lo; p < hi; p++ {
			k := a.ColIdx[p]
			f += b.RowPtr[k+1] - b.RowPtr[k]
		}
		perRow[i] = f
		total += f
	}
	return total, perRow
}

// StructureChecksum returns an FNV-1a hash over the matrix's dimensions, row
// pointers and column indices — the sparsity structure, deliberately blind to
// the values. spgemm.Plan uses it to validate that a cached symbolic phase
// still applies: numeric re-execution is sound whenever the structure is
// unchanged, however much the values moved. Cost is O(rows + nnz), far below
// the O(flop) symbolic pass it guards.
func (m *CSRG[V]) StructureChecksum() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(uint64(m.Rows))
	mix(uint64(m.Cols))
	for _, p := range m.RowPtr {
		mix(uint64(p))
	}
	for _, c := range m.ColIdx {
		mix(uint64(uint32(c)))
	}
	return h
}

// MaxRowNNZ returns the maximum number of stored entries in any row.
func (m *CSRG[V]) MaxRowNNZ() int64 {
	var mx int64
	for i := 0; i < m.Rows; i++ {
		if r := m.RowPtr[i+1] - m.RowPtr[i]; r > mx {
			mx = r
		}
	}
	return mx
}

// AvgRowNNZ returns the mean number of entries per row (the "edge factor" of
// the paper's synthetic matrices).
func (m *CSRG[V]) AvgRowNNZ() float64 {
	if m.Rows == 0 {
		return 0
	}
	return float64(m.NNZ()) / float64(m.Rows)
}

// ProductStats computes the Table 2 style statistics of the product a·b
// without materializing the product values: nnz of the inputs, flop, nnz of
// the output (via a symbolic pass with a dense generation-stamped accumulator)
// and the compression ratio.
func ProductStats[V, W semiring.Value](a *CSRG[V], b *CSRG[W]) Stats {
	flop, _ := Flop(a, b)
	nnzOut := SymbolicNNZ(a, b)
	cr := math.Inf(1)
	if nnzOut > 0 {
		cr = float64(flop) / float64(nnzOut)
	}
	return Stats{
		Rows: a.Rows, Cols: b.Cols,
		NNZ:              a.NNZ(),
		Flop:             flop,
		NNZOut:           nnzOut,
		CompressionRatio: cr,
	}
}

// SymbolicNNZ returns nnz(a·b) using a sequential symbolic pass. It is the
// simple reference used for statistics; the parallel symbolic phases live in
// the spgemm package.
func SymbolicNNZ[V, W semiring.Value](a *CSRG[V], b *CSRG[W]) int64 {
	if a.Cols != b.Rows {
		panic("matrix: SymbolicNNZ dimension mismatch")
	}
	mark := make([]int32, b.Cols)
	for i := range mark {
		mark[i] = -1
	}
	var total int64
	for i := 0; i < a.Rows; i++ {
		stamp := int32(i)
		lo, hi := a.RowPtr[i], a.RowPtr[i+1]
		for p := lo; p < hi; p++ {
			k := a.ColIdx[p]
			blo, bhi := b.RowPtr[k], b.RowPtr[k+1]
			for q := blo; q < bhi; q++ {
				c := b.ColIdx[q]
				if mark[c] != stamp {
					mark[c] = stamp
					total++
				}
			}
		}
	}
	return total
}

// DegreeHistogram returns counts of rows by nnz bucket: bucket i counts rows
// with nnz in [2^(i-1), 2^i), bucket 0 counts empty rows. Used to
// characterize skew (ER vs G500) in the experiment reports.
func (m *CSRG[V]) DegreeHistogram() []int64 {
	var hist []int64
	bump := func(b int) {
		for len(hist) <= b {
			hist = append(hist, 0)
		}
		hist[b]++
	}
	for i := 0; i < m.Rows; i++ {
		d := m.RowPtr[i+1] - m.RowPtr[i]
		if d == 0 {
			bump(0)
			continue
		}
		b := 1
		for v := d; v > 1; v >>= 1 {
			b++
		}
		bump(b)
	}
	return hist
}
