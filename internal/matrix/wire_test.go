package matrix

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestWireRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := []*CSR{
		NewCSR(0, 0),
		NewCSR(3, 5),
		Identity(17),
		Random(23, 31, 0.2, rng),
		Random(1, 1000, 0.5, rng),
	}
	unsorted := Random(16, 16, 0.3, rng).PermuteCols(randPerm32(16, rng))
	cases = append(cases, unsorted)
	for _, m := range cases {
		var buf bytes.Buffer
		if err := WriteCSRBinary(&buf, m); err != nil {
			t.Fatalf("%v: write: %v", m, err)
		}
		if got, want := int64(buf.Len()), WireSize(m); got != want {
			t.Fatalf("%v: encoded %d bytes, WireSize says %d", m, got, want)
		}
		back, err := ReadCSRBinary(&buf)
		if err != nil {
			t.Fatalf("%v: read: %v", m, err)
		}
		if back.Sorted != m.Sorted {
			t.Fatalf("%v: sorted flag flipped to %v", m, back.Sorted)
		}
		if !equalStructureAndValues(m, back) {
			t.Fatalf("%v: round trip changed contents", m)
		}
	}
}

func randPerm32(n int, rng *rand.Rand) []int32 {
	p := make([]int32, n)
	for i, v := range rng.Perm(n) {
		p[i] = int32(v)
	}
	return p
}

func equalStructureAndValues(a, b *CSR) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols || a.NNZ() != b.NNZ() {
		return false
	}
	for i := range a.RowPtr {
		if a.RowPtr[i] != b.RowPtr[i] {
			return false
		}
	}
	for i := range a.ColIdx {
		if a.ColIdx[i] != b.ColIdx[i] || a.Val[i] != b.Val[i] {
			return false
		}
	}
	return true
}

func TestWireRejectsCorruptInput(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := Random(10, 10, 0.3, rng)
	var buf bytes.Buffer
	if err := WriteCSRBinary(&buf, m); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Truncation at every interesting boundary.
	for _, n := range []int{0, 3, wireHeaderSize - 1, wireHeaderSize, wireHeaderSize + 7, len(good) - 1} {
		if _, err := ReadCSRBinary(bytes.NewReader(good[:n])); err == nil {
			t.Errorf("accepted input truncated to %d bytes", n)
		}
	}

	corrupt := func(mut func(b []byte)) []byte {
		b := append([]byte(nil), good...)
		mut(b)
		return b
	}
	cases := map[string][]byte{
		"bad magic":    corrupt(func(b []byte) { b[0] = 'X' }),
		"bad version":  corrupt(func(b []byte) { b[4] = 99 }),
		"huge rows":    corrupt(func(b []byte) { b[8], b[9], b[10], b[11] = 0, 0, 0, 0x80 }), // rows = 2^31
		"negative nnz": corrupt(func(b []byte) { b[31] = 0x80 }),
		// First row pointer nonzero breaks the CSR invariant.
		"bad rowptr": corrupt(func(b []byte) { b[wireHeaderSize] = 1 }),
		// A column index beyond Cols must be rejected by Validate.
		"col out of range": corrupt(func(b []byte) {
			off := wireHeaderSize + (m.Rows+1)*8
			b[off], b[off+1] = 0xff, 0xff
		}),
	}
	for name, b := range cases {
		if _, err := ReadCSRBinary(bytes.NewReader(b)); err == nil {
			t.Errorf("%s: accepted corrupt input", name)
		}
	}

	// A lying Sorted flag on unsorted data must be rejected.
	un := m.PermuteCols(randPerm32(10, rng))
	buf.Reset()
	if err := WriteCSRBinary(&buf, un); err != nil {
		t.Fatal(err)
	}
	lying := buf.Bytes()
	lying[6] |= wireFlagSorted
	if back, err := ReadCSRBinary(bytes.NewReader(lying)); err == nil && !back.IsSortedRows() {
		t.Error("accepted lying sorted flag on unsorted rows")
	}
}

// TestWireHeaderBombFailsFast: a 32-byte header claiming billions of
// nonzeros over an empty body must fail on the first missing chunk, not
// allocate the claimed arrays. (The chunked reader caps the commit at one
// chunk per delivered chunk; run with -test.memprofile to see it.)
func TestWireHeaderBombFailsFast(t *testing.T) {
	var buf bytes.Buffer
	m := NewCSR(1, 1)
	if err := WriteCSRBinary(&buf, m); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()[:wireHeaderSize]
	// Claim nnz = 2^40 with no payload.
	b[24], b[25], b[26], b[27], b[28], b[29] = 0, 0, 0, 0, 0, 1
	if _, err := ReadCSRBinary(bytes.NewReader(b)); err == nil {
		t.Fatal("accepted header bomb")
	}
}

func TestWireReadLimits(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := Random(20, 30, 0.2, rng)
	var buf bytes.Buffer
	if err := WriteCSRBinary(&buf, m); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	for name, lim := range map[string]*ReadLimits{
		"rows": {MaxRows: 19},
		"cols": {MaxCols: 29},
		"nnz":  {MaxNNZ: m.NNZ() - 1},
	} {
		if _, err := ReadCSRBinaryLimited(bytes.NewReader(good), lim); err == nil {
			t.Errorf("limit %s not enforced", name)
		}
	}
	if _, err := ReadCSRBinaryLimited(bytes.NewReader(good),
		&ReadLimits{MaxRows: 20, MaxCols: 30, MaxNNZ: m.NNZ()}); err != nil {
		t.Fatalf("exact-fit limits rejected: %v", err)
	}

	// The Matrix Market reader shares the same limit type.
	mm := "%%MatrixMarket matrix coordinate real general\n5 5 1\n1 1 1.0\n"
	if _, err := ReadMatrixMarketLimited(strings.NewReader(mm), &ReadLimits{MaxRows: 4}); err == nil {
		t.Error("matrix market row limit not enforced")
	}
	if _, err := ReadMatrixMarketLimited(strings.NewReader(mm), &ReadLimits{MaxRows: 5}); err != nil {
		t.Errorf("matrix market exact-fit limit rejected: %v", err)
	}
}
