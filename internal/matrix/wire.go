package matrix

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary CSR wire format ("SPGB"): the compact transfer encoding used by
// the multiply server and its clients. Matrix Market is the interchange
// format of the paper's corpus, but it is text — parsing dominates upload
// time for anything large. The wire format is the CSR arrays verbatim,
// little-endian, preceded by a fixed header:
//
//	offset  size  field
//	0       4     magic "SPGB"
//	4       2     version (uint16, currently 1)
//	6       2     flags   (uint16; bit 0 = rows sorted)
//	8       8     rows    (int64, ≤ MaxInt32)
//	16      8     cols    (int64, ≤ MaxInt32)
//	24      8     nnz     (int64)
//	32      ...   rowptr  [rows+1]int64
//	...     ...   colidx  [nnz]int32
//	...     ...   val     [nnz]float64
//
// The encoding is canonical for a given CSR (no padding, no optional
// sections), so a content hash over the encoded bytes identifies the matrix
// — dimensions, structure, values and sortedness — which is exactly what
// the server's interning store keys on.

// wireMagic identifies a binary CSR stream.
var wireMagic = [4]byte{'S', 'P', 'G', 'B'}

// WireVersion is the format version written by WriteCSRBinary.
const WireVersion = 1

const (
	wireHeaderSize = 32
	wireFlagSorted = 1 << 0
	// wireChunk is the element-count granularity of array reads: bounded
	// so a header claiming a huge nnz on a truncated stream fails at the
	// first short chunk instead of committing the full allocation.
	wireChunk = 1 << 16
)

// WireSize returns the exact encoded size of m in bytes.
func WireSize(m *CSR) int64 {
	return wireHeaderSize + int64(len(m.RowPtr))*8 + m.NNZ()*12
}

// WriteCSRBinary writes m in the binary CSR wire format.
func WriteCSRBinary(w io.Writer, m *CSR) error {
	if int64(len(m.RowPtr)) != int64(m.Rows)+1 {
		return fmt.Errorf("matrix: wire encode: RowPtr length %d, want %d", len(m.RowPtr), m.Rows+1)
	}
	var hdr [wireHeaderSize]byte
	copy(hdr[0:4], wireMagic[:])
	binary.LittleEndian.PutUint16(hdr[4:6], WireVersion)
	var flags uint16
	if m.Sorted {
		flags |= wireFlagSorted
	}
	binary.LittleEndian.PutUint16(hdr[6:8], flags)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(m.Rows))
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(m.Cols))
	binary.LittleEndian.PutUint64(hdr[24:32], uint64(m.NNZ()))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}

	buf := make([]byte, wireChunk*8)
	for lo := 0; lo < len(m.RowPtr); lo += wireChunk {
		hi := min(lo+wireChunk, len(m.RowPtr))
		n := 0
		for _, v := range m.RowPtr[lo:hi] {
			binary.LittleEndian.PutUint64(buf[n:], uint64(v))
			n += 8
		}
		if _, err := w.Write(buf[:n]); err != nil {
			return err
		}
	}
	for lo := 0; lo < len(m.ColIdx); lo += wireChunk {
		hi := min(lo+wireChunk, len(m.ColIdx))
		n := 0
		for _, v := range m.ColIdx[lo:hi] {
			binary.LittleEndian.PutUint32(buf[n:], uint32(v))
			n += 4
		}
		if _, err := w.Write(buf[:n]); err != nil {
			return err
		}
	}
	for lo := 0; lo < len(m.Val); lo += wireChunk {
		hi := min(lo+wireChunk, len(m.Val))
		n := 0
		for _, v := range m.Val[lo:hi] {
			binary.LittleEndian.PutUint64(buf[n:], math.Float64bits(v))
			n += 8
		}
		if _, err := w.Write(buf[:n]); err != nil {
			return err
		}
	}
	return nil
}

// ReadCSRBinary parses a binary CSR stream and validates the result: the
// magic, version and dimension bounds up front, then the full CSR
// structural invariants (monotone row pointers, in-range column indices,
// sortedness when flagged) once the arrays are in. Array storage is
// committed chunk by chunk as bytes actually arrive, so a truncated or
// lying header errors out early instead of allocating what it claims.
func ReadCSRBinary(r io.Reader) (*CSR, error) {
	return ReadCSRBinaryLimited(r, nil)
}

// ReadCSRBinaryLimited is ReadCSRBinary with a shape bound enforced before
// any shape-proportional allocation happens.
func ReadCSRBinaryLimited(r io.Reader, lim *ReadLimits) (*CSR, error) {
	var hdr [wireHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("matrix: wire header: %w", err)
	}
	if [4]byte(hdr[0:4]) != wireMagic {
		return nil, fmt.Errorf("matrix: wire: bad magic %q", hdr[0:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != WireVersion {
		return nil, fmt.Errorf("matrix: wire: unsupported version %d", v)
	}
	flags := binary.LittleEndian.Uint16(hdr[6:8])
	rows := int64(binary.LittleEndian.Uint64(hdr[8:16]))
	cols := int64(binary.LittleEndian.Uint64(hdr[16:24]))
	nnz := int64(binary.LittleEndian.Uint64(hdr[24:32]))
	if rows < 0 || cols < 0 || nnz < 0 {
		return nil, fmt.Errorf("matrix: wire: negative shape %dx%d nnz=%d", rows, cols, nnz)
	}
	if rows > math.MaxInt32 || cols > math.MaxInt32 {
		return nil, fmt.Errorf("matrix: wire: dimensions %dx%d exceed int32 index space", rows, cols)
	}
	if err := lim.check(int(rows), int(cols), nnz); err != nil {
		return nil, fmt.Errorf("matrix: wire: %w", err)
	}

	m := &CSRG[float64]{
		Rows:   int(rows),
		Cols:   int(cols),
		Sorted: flags&wireFlagSorted != 0,
	}
	buf := make([]byte, wireChunk*8)
	rowPtr, err := readInt64Chunked(r, buf, rows+1, nil)
	if err != nil {
		return nil, fmt.Errorf("matrix: wire rowptr: %w", err)
	}
	m.RowPtr = rowPtr
	colIdx, err := readInt32Chunked(r, buf, nnz)
	if err != nil {
		return nil, fmt.Errorf("matrix: wire colidx: %w", err)
	}
	m.ColIdx = colIdx
	val, err := readFloat64Chunked(r, buf, nnz)
	if err != nil {
		return nil, fmt.Errorf("matrix: wire val: %w", err)
	}
	m.Val = val
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("matrix: wire: %w", err)
	}
	return m, nil
}

// readInt64Chunked reads n little-endian int64s, growing dst one chunk at a
// time so allocation tracks delivered bytes, not the claimed count.
func readInt64Chunked(r io.Reader, buf []byte, n int64, dst []int64) ([]int64, error) {
	for int64(len(dst)) < n {
		want := min(n-int64(len(dst)), wireChunk)
		b := buf[:want*8]
		if _, err := io.ReadFull(r, b); err != nil {
			return nil, err
		}
		for i := int64(0); i < want; i++ {
			dst = append(dst, int64(binary.LittleEndian.Uint64(b[i*8:])))
		}
	}
	if dst == nil {
		dst = []int64{}
	}
	return dst, nil
}

func readInt32Chunked(r io.Reader, buf []byte, n int64) ([]int32, error) {
	dst := []int32{}
	for int64(len(dst)) < n {
		want := min(n-int64(len(dst)), wireChunk)
		b := buf[:want*4]
		if _, err := io.ReadFull(r, b); err != nil {
			return nil, err
		}
		for i := int64(0); i < want; i++ {
			dst = append(dst, int32(binary.LittleEndian.Uint32(b[i*4:])))
		}
	}
	return dst, nil
}

func readFloat64Chunked(r io.Reader, buf []byte, n int64) ([]float64, error) {
	dst := []float64{}
	for int64(len(dst)) < n {
		want := min(n-int64(len(dst)), wireChunk)
		b := buf[:want*8]
		if _, err := io.ReadFull(r, b); err != nil {
			return nil, err
		}
		for i := int64(0); i < want; i++ {
			dst = append(dst, math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:])))
		}
	}
	return dst, nil
}
