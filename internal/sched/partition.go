package sched

// This file implements the paper's Figure 6: RowsToThreads. Rows are assigned
// to threads in contiguous blocks whose total estimated work (flop) is as
// even as possible, computed with a prefix sum and one binary search per
// thread. This keeps the scheduling overhead of static scheduling while
// achieving the balance of dynamic scheduling.

// PrefixSum writes the exclusive prefix sum of weights into out (which must
// have len(weights)+1 entries; out[0]=0, out[i]=Σ weights[:i]) and returns
// out. If out is nil a new slice is allocated. The sum is computed in
// parallel for large inputs: each worker sums a block, block offsets are
// combined serially (P values), then blocks are fixed up in parallel.
// Parallel regions run on the process-wide default pool; callers with a
// dedicated pool use the Pool method.
func PrefixSum(weights []int64, out []int64, workers int) []int64 {
	return Default().PrefixSum(weights, out, workers)
}

// PrefixSum is the free PrefixSum with parallel regions running on this pool.
func (p *Pool) PrefixSum(weights []int64, out []int64, workers int) []int64 {
	n := len(weights)
	if out == nil {
		out = make([]int64, n+1)
	}
	if len(out) != n+1 {
		panic("sched: PrefixSum out length must be len(weights)+1")
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	const serialCutoff = 1 << 14
	if workers == 1 || n < serialCutoff {
		var acc int64
		out[0] = 0
		for i, w := range weights {
			acc += w
			out[i+1] = acc
		}
		return out
	}
	if workers > n {
		workers = n
	}
	blockSums := make([]int64, workers)
	p.RunWorkersNamed("prefix-sum", workers, func(w int) {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		var acc int64
		for i := lo; i < hi; i++ {
			acc += weights[i]
			out[i+1] = acc // local inclusive sum; offset fixed below
		}
		blockSums[w] = acc
	})
	offsets := make([]int64, workers)
	var acc int64
	for w := 0; w < workers; w++ {
		offsets[w] = acc
		acc += blockSums[w]
	}
	out[0] = 0
	p.RunWorkersNamed("prefix-sum", workers, func(w int) {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		off := offsets[w]
		if off == 0 {
			return
		}
		for i := lo; i < hi; i++ {
			out[i+1] += off
		}
	})
	return out
}

// LowerBound returns the smallest index i such that a[i] >= v, or len(a) if
// no such index exists. a must be non-decreasing. This is the lowbnd of the
// paper's Figure 6.
func LowerBound(a []int64, v int64) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// BalancedPartition implements RowsToThreads (Figure 6): given per-row work
// weights, it returns offsets of length parts+1 such that rows
// [offsets[t], offsets[t+1]) are assigned to thread t and every thread's
// total weight is within one row's weight of the average. The prefix sum is
// computed in parallel; each boundary is found with one binary search.
func BalancedPartition(weights []int64, parts int, workers int) []int {
	return BalancedPartitionInto(weights, parts, workers, nil, nil)
}

// BalancedPartitionInto is BalancedPartition with caller-provided buffers:
// offsets receives the partition (grown when its capacity is below parts+1)
// and ps is scratch for the prefix sum (grown when below len(weights)+1).
// Either may be nil. Iterative callers (spgemm.Context) pass the same buffers
// every multiplication so the partition allocates nothing at steady state.
func BalancedPartitionInto(weights []int64, parts, workers int, offsets []int, ps []int64) []int {
	return Default().BalancedPartitionInto(weights, parts, workers, offsets, ps)
}

// BalancedPartitionInto is the free BalancedPartitionInto with the prefix sum
// running on this pool.
func (p *Pool) BalancedPartitionInto(weights []int64, parts, workers int, offsets []int, ps []int64) []int {
	n := len(weights)
	if parts <= 0 {
		parts = 1
	}
	if cap(offsets) < parts+1 {
		offsets = make([]int, parts+1)
	}
	offsets = offsets[:parts+1]
	for i := range offsets {
		offsets[i] = 0
	}
	if n == 0 {
		return offsets
	}
	if cap(ps) < n+1 {
		ps = make([]int64, n+1)
	}
	ps = p.PrefixSum(weights, ps[:n+1], workers)
	total := ps[n]
	if total == 0 {
		// Degenerate: all weights zero; fall back to equal row counts.
		for t := 0; t <= parts; t++ {
			offsets[t] = t * n / parts
		}
		return offsets
	}
	ave := float64(total) / float64(parts)
	offsets[0] = 0
	for t := 1; t < parts; t++ {
		target := int64(ave * float64(t))
		// lowbnd over the inclusive prefix array ps[1..n]; index i in ps
		// corresponds to "first i rows".
		idx := LowerBound(ps[1:], target)
		if idx > n {
			idx = n
		}
		if idx < offsets[t-1] {
			idx = offsets[t-1] // keep offsets monotone even with zero rows
		}
		offsets[t] = idx
	}
	offsets[parts] = n
	// Monotonicity repair (possible when many rows have zero weight).
	for t := 1; t <= parts; t++ {
		if offsets[t] < offsets[t-1] {
			offsets[t] = offsets[t-1]
		}
	}
	return offsets
}

// BalancedForNamed fuses the Figure 6 partition with worker dispatch: it
// flop-balances weights over workers and runs body once per worker with its
// contiguous [lo, hi) item range, labelling the region name on the tracer's
// worker lanes. This is the unit-grain scheduling entry of the tiled SpGEMM
// kernel, where items are (row, tile) units rather than rows. offsets and ps
// are caller-provided reusable buffers (either may be nil; ps must have
// capacity len(weights)+1 to avoid an allocation); the computed offsets are
// returned for reuse.
func (p *Pool) BalancedForNamed(name string, weights []int64, workers int, offsets []int, ps []int64, body func(worker, lo, hi int)) []int {
	offsets = p.BalancedPartitionInto(weights, workers, workers, offsets, ps)
	p.RunWorkersNamed(name, workers, func(w int) {
		body(w, offsets[w], offsets[w+1])
	})
	return offsets
}

// PartitionImbalance returns max thread weight divided by average thread
// weight for the given partition — 1.0 is perfect balance. Used by tests and
// the Fig 9 experiment report.
func PartitionImbalance(weights []int64, offsets []int) float64 {
	parts := len(offsets) - 1
	var total, maxPart int64
	for t := 0; t < parts; t++ {
		var s int64
		for i := offsets[t]; i < offsets[t+1]; i++ {
			s += weights[i]
		}
		total += s
		if s > maxPart {
			maxPart = s
		}
	}
	if total == 0 {
		return 1
	}
	return float64(maxPart) * float64(parts) / float64(total)
}
