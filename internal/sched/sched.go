// Package sched provides the loop-scheduling substrate of the paper's
// Section 3.1 and Section 4.1.
//
// It reimplements the three OpenMP schedules the paper microbenchmarks
// (static, dynamic, guided — Figure 2) on top of a goroutine worker pool,
// plus the paper's own contribution: the light-weight load-balanced static
// schedule of Figure 6, where rows are partitioned by a per-row flop count,
// a parallel prefix sum, and a binary search (lowbnd) per thread.
package sched

import (
	"runtime"
)

// Schedule selects how loop iterations are distributed over workers.
type Schedule int

const (
	// Static divides the iteration space into one contiguous block per
	// worker up front. Near-zero scheduling overhead; load balance is only
	// as good as the uniformity of per-iteration cost.
	Static Schedule = iota
	// Dynamic hands out fixed-size chunks from a shared atomic counter.
	// Perfect balance, but every chunk costs a contended atomic operation.
	Dynamic
	// Guided hands out geometrically shrinking chunks (remaining/2P, floored
	// at the grain) from a shared counter: large chunks early, small late.
	Guided
	// Balanced is the paper's scheme: a weighted static partition computed
	// from per-iteration work estimates (see BalancedPartition). It needs
	// the weights up front, so ParallelFor treats it as Static; SpGEMM
	// drivers call BalancedPartition explicitly.
	Balanced
)

// String returns the lower-case schedule name used in benchmark output.
func (s Schedule) String() string {
	switch s {
	case Static:
		return "static"
	case Dynamic:
		return "dynamic"
	case Guided:
		return "guided"
	case Balanced:
		return "balanced"
	}
	return "unknown"
}

// DefaultWorkers returns the worker count to use when the caller does not
// specify one: GOMAXPROCS, the Go analogue of omp_get_max_threads().
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// ParallelFor runs body(worker, lo, hi) over the half-open range [0, n) split
// according to the schedule, using the given number of workers (0 means
// DefaultWorkers). grain is the minimum chunk size for Dynamic and Guided
// (0 means 1). It returns only when every iteration has run.
//
// body may be called concurrently from different goroutines with disjoint
// [lo, hi) ranges; worker identifies the calling worker in [0, workers) so
// bodies can use per-worker scratch space.
//
// The iterations run on the process-wide default Pool: goroutines are parked
// between regions rather than spawned per call.
func ParallelFor(workers, n int, s Schedule, grain int, body func(worker, lo, hi int)) {
	Default().ParallelFor(workers, n, s, grain, body)
}

// ParallelForNamed is ParallelFor with a tracer region name (see
// Pool.RunWorkersNamed), on the process-wide default Pool.
func ParallelForNamed(name string, workers, n int, s Schedule, grain int, body func(worker, lo, hi int)) {
	Default().ParallelForNamed(name, workers, n, s, grain, body)
}

// RunWorkers starts exactly `workers` invocations of body(worker) and waits
// for all of them. It is the building block for drivers that manage their
// own iteration ranges (e.g. the balanced partition of Figure 6). Workers
// run on the process-wide default Pool.
func RunWorkers(workers int, body func(worker int)) {
	Default().RunWorkers(workers, body)
}

// RunWorkersNamed is RunWorkers with a tracer region name (see
// Pool.RunWorkersNamed), on the process-wide default Pool.
func RunWorkersNamed(name string, workers int, body func(worker int)) {
	Default().RunWorkersNamed(name, workers, body)
}
