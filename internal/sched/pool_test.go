package sched

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestPoolRunWorkersCoversAllIDs(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	for _, workers := range []int{1, 2, 4, 9} { // 9 > pool size: overflow spawn path
		var mu sync.Mutex
		seen := map[int]bool{}
		p.RunWorkers(workers, func(w int) {
			mu.Lock()
			seen[w] = true
			mu.Unlock()
		})
		if len(seen) != workers {
			t.Fatalf("workers=%d: saw %d ids", workers, len(seen))
		}
		for w := 0; w < workers; w++ {
			if !seen[w] {
				t.Fatalf("workers=%d: id %d never ran", workers, w)
			}
		}
	}
}

func TestPoolRunWorkersDefaultSize(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	var n int32
	p.RunWorkers(0, func(w int) { atomic.AddInt32(&n, 1) })
	if n != 3 {
		t.Fatalf("ran %d workers, want pool size 3", n)
	}
	if p.Size() != 3 {
		t.Fatalf("Size() = %d", p.Size())
	}
}

func TestPoolParallelForCoversEveryIndexExactlyOnce(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	for _, s := range []Schedule{Static, Dynamic, Guided, Balanced} {
		for _, workers := range []int{1, 2, 3, 8} {
			for _, n := range []int{1, 7, 100, 1023} {
				hits := make([]int32, n)
				p.ParallelFor(workers, n, s, 4, func(w, lo, hi int) {
					if lo < 0 || hi > n || lo > hi {
						t.Errorf("bad range [%d,%d) for n=%d", lo, hi, n)
					}
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&hits[i], 1)
					}
				})
				for i, h := range hits {
					if h != 1 {
						t.Fatalf("%v workers=%d n=%d: index %d visited %d times", s, workers, n, i, h)
					}
				}
			}
		}
	}
}

func TestPoolReuseAcrossManyRegions(t *testing.T) {
	// The point of the pool: many consecutive regions on the same parked
	// goroutines. A correctness-only check that region k sees the writes of
	// region k-1 (the channel handoff must establish happens-before).
	p := NewPool(4)
	defer p.Close()
	buf := make([]int64, 256)
	for round := 0; round < 100; round++ {
		p.RunWorkers(4, func(w int) {
			for i := w; i < len(buf); i += 4 {
				buf[i]++
			}
		})
	}
	for i, v := range buf {
		if v != 100 {
			t.Fatalf("buf[%d] = %d, want 100", i, v)
		}
	}
}

func TestPoolNestedRegionsDoNotDeadlock(t *testing.T) {
	// A body that itself opens a parallel region must not deadlock even
	// though every parked worker is busy: the inner region overflows to
	// plain goroutine spawns.
	p := NewPool(2)
	defer p.Close()
	var n int32
	p.RunWorkers(2, func(w int) {
		p.RunWorkers(2, func(inner int) {
			atomic.AddInt32(&n, 1)
		})
	})
	if n != 4 {
		t.Fatalf("inner bodies ran %d times, want 4", n)
	}
}

func TestPoolConcurrentRegions(t *testing.T) {
	// Distinct goroutines submitting regions to one pool concurrently.
	p := NewPool(4)
	defer p.Close()
	var wg sync.WaitGroup
	var total int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.ParallelFor(4, 1000, Dynamic, 16, func(w, lo, hi int) {
				atomic.AddInt64(&total, int64(hi-lo))
			})
		}()
	}
	wg.Wait()
	if total != 8*1000 {
		t.Fatalf("total = %d, want 8000", total)
	}
}

func TestPoolCloseIsIdempotentAndPoolStillWorks(t *testing.T) {
	p := NewPool(2)
	p.Close()
	p.Close() // must not panic
	// After Close, regions still complete via the spawn fallback.
	var n int32
	p.RunWorkers(3, func(w int) { atomic.AddInt32(&n, 1) })
	if n != 3 {
		t.Fatalf("ran %d workers after Close, want 3", n)
	}
}

func TestDefaultPoolIsSingleton(t *testing.T) {
	if Default() != Default() {
		t.Fatal("Default() returned distinct pools")
	}
}

func TestBalancedPartitionIntoReusesBuffers(t *testing.T) {
	w := []int64{5, 1, 1, 1, 5, 1, 1, 1}
	offsets := make([]int, 0, 16)
	ps := make([]int64, 0, 16)
	got := BalancedPartitionInto(w, 4, 1, offsets, ps)
	want := BalancedPartition(w, 4, 1)
	if len(got) != len(want) {
		t.Fatalf("length %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("offsets differ at %d: %v vs %v", i, got, want)
		}
	}
	if &got[0] != &offsets[:1][0] {
		t.Fatal("offsets buffer not reused despite sufficient capacity")
	}
	// Stale contents must not leak into a smaller follow-up partition.
	got2 := BalancedPartitionInto([]int64{1, 1}, 2, 1, got, ps)
	if got2[0] != 0 || got2[2] != 2 {
		t.Fatalf("reused-buffer partition wrong: %v", got2)
	}
}

// TestPoolBalancedForNamed checks the fused partition+dispatch helper: every
// index is covered exactly once, ranges are contiguous and ascending, and a
// skewed weight vector still spreads across workers.
func TestPoolBalancedForNamed(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	weights := make([]int64, 100)
	for i := range weights {
		weights[i] = 1
	}
	weights[0] = 500 // one mega-unit
	var covered [100]atomic.Int32
	offsets := p.BalancedForNamed("test-balanced", weights, 4, nil, nil, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			covered[i].Add(1)
		}
	})
	if len(offsets) != 5 || offsets[0] != 0 || offsets[4] != 100 {
		t.Fatalf("offsets = %v, want 5 entries spanning [0,100]", offsets)
	}
	for w := 0; w < 4; w++ {
		if offsets[w] > offsets[w+1] {
			t.Fatalf("offsets not monotone: %v", offsets)
		}
	}
	for i := range covered {
		if n := covered[i].Load(); n != 1 {
			t.Fatalf("index %d ran %d times, want 1", i, n)
		}
	}
	// The mega-unit must not drag the rest of the work onto its worker.
	if offsets[1]-offsets[0] > 60 {
		t.Errorf("skewed partition: worker 0 got %d of 100 units", offsets[1])
	}
	// Preallocated offsets/scratch are reused in place (the zero-alloc
	// contract the tiled kernel's steady state depends on): the returned
	// slice aliases the one passed in.
	off := make([]int, 5)
	ps := make([]int64, 8)
	got := p.BalancedForNamed("test-balanced", weights, 4, off, ps, func(w, lo, hi int) {})
	if &got[0] != &off[0] {
		t.Error("BalancedForNamed reallocated caller-provided offsets")
	}
}
