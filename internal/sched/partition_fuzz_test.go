package sched

import (
	"testing"
)

// FuzzBalancedPartition drives RowsToThreads (Figure 6) and its prefix-sum
// substrate with arbitrary weight vectors, checking structural invariants
// rather than exact offsets: the partition must cover [0, n] with monotone
// boundaries for any input, including the empty matrix, a single mega-row
// holding all the work, and more workers than rows.
func FuzzBalancedPartition(f *testing.F) {
	// Seeds for the boundary shapes named above. Weights are encoded as a
	// byte string (one weight per byte) so the fuzzer can mutate freely;
	// parts/workers ride along as small ints.
	f.Add([]byte{}, 4, 2)              // no rows at all
	f.Add([]byte{255}, 8, 4)           // single mega-row, nrows < parts
	f.Add([]byte{0, 0, 0, 0}, 2, 2)    // all-zero weights
	f.Add([]byte{1, 2, 3, 4, 5}, 3, 1) // plain case, serial prefix sum
	f.Add([]byte{0, 200, 0, 0, 200, 0, 0, 0, 200}, 3, 3)
	f.Add([]byte{9, 9, 9}, 16, 8) // far more parts than rows

	f.Fuzz(func(t *testing.T, raw []byte, parts, workers int) {
		if len(raw) > 1<<12 || parts > 1<<10 || workers > 1<<8 {
			t.Skip("bounded problem sizes")
		}
		weights := make([]int64, len(raw))
		for i, b := range raw {
			weights[i] = int64(b)
		}
		n := len(weights)

		offsets := BalancedPartitionInto(weights, parts, workers, nil, nil)

		wantParts := parts
		if wantParts <= 0 {
			wantParts = 1
		}
		if len(offsets) != wantParts+1 {
			t.Fatalf("len(offsets) = %d, want %d", len(offsets), wantParts+1)
		}
		if offsets[0] != 0 {
			t.Fatalf("offsets[0] = %d, want 0", offsets[0])
		}
		if n > 0 && offsets[wantParts] != n {
			t.Fatalf("offsets[parts] = %d, want %d", offsets[wantParts], n)
		}
		for i := 1; i < len(offsets); i++ {
			if offsets[i] < offsets[i-1] {
				t.Fatalf("offsets not monotone at %d: %v", i, offsets)
			}
			if offsets[i] < 0 || offsets[i] > n {
				t.Fatalf("offsets[%d] = %d out of range [0,%d]", i, offsets[i], n)
			}
		}

		// Prefix-sum invariants on the same weights: correct totals and
		// agreement between the serial and parallel paths.
		ps := PrefixSum(weights, nil, workers)
		if len(ps) != n+1 || ps[0] != 0 {
			t.Fatalf("prefix sum shape: len=%d ps[0]=%d", len(ps), ps[0])
		}
		var acc int64
		for i, w := range weights {
			acc += w
			if ps[i+1] != acc {
				t.Fatalf("ps[%d] = %d, want %d", i+1, ps[i+1], acc)
			}
		}

		// LowerBound must bracket every boundary target consistently.
		for i := 1; i < len(ps); i++ {
			idx := LowerBound(ps, ps[i])
			if idx > i || ps[idx] != ps[i] {
				t.Fatalf("LowerBound(ps, ps[%d]) = %d (ps[idx]=%d, want value %d)",
					i, idx, ps[idx], ps[i])
			}
		}

		// Reusing caller buffers must produce the identical partition.
		again := BalancedPartitionInto(weights, parts, workers,
			make([]int, wantParts+1), make([]int64, n+1))
		for i := range offsets {
			if offsets[i] != again[i] {
				t.Fatalf("buffer-reuse mismatch at %d: %v vs %v", i, offsets, again)
			}
		}
	})
}
