package sched

// This file implements the persistent worker pool behind every parallel
// region in the repository. The paper's Section 3.2/4.1 lesson is that on
// many-core hardware the fixed costs around the numeric work — thread
// spawn/join, memory management — dominate SpGEMM unless they are amortized.
// OpenMP amortizes thread startup for free (its runtime parks a thread team
// between parallel regions); naive goroutine fan-out does not. A Pool gives
// the Go port the same property: goroutines are spawned once and parked on a
// channel, and each parallel region costs two channel operations per worker
// instead of a goroutine spawn + exit.

import (
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Pool observability: coarse per-region counters (never per-iteration) and,
// when a tracer is active, one span per worker per region on that worker's
// lane — the raw material of the load-imbalance report.
var (
	mRegions = obs.NewCounter("sched_pool_regions_total",
		"parallel regions executed by worker pools")
	mParkedRuns = obs.NewCounter("sched_pool_parked_runs_total",
		"region bodies picked up by parked pool goroutines")
	mSpawnFallbacks = obs.NewCounter("sched_pool_spawn_fallbacks_total",
		"region bodies that fell back to a fresh goroutine because every parked worker was busy")
)

// poolTask is one worker invocation dispatched to a parked goroutine.
type poolTask struct {
	w    int
	body func(worker int)
	wg   *sync.WaitGroup
}

// Pool is a set of parked goroutines that execute parallel regions. It is
// safe for concurrent use: regions submitted from multiple goroutines share
// the parked workers, and submissions that find every worker busy fall back
// to spawning (never block, never deadlock — even for nested regions).
//
// The free functions RunWorkers and ParallelFor run on a lazily-created
// process-wide default Pool, so most code never constructs one; iterative
// callers that want an isolated team (or a bounded lifetime via Close) can.
type Pool struct {
	work chan poolTask
	quit chan struct{}
	size int
	once sync.Once // guards Close
}

// NewPool starts a pool of size parked goroutines (0 means DefaultWorkers).
// The goroutines live until Close is called.
func NewPool(size int) *Pool {
	if size <= 0 {
		size = DefaultWorkers()
	}
	p := &Pool{
		work: make(chan poolTask),
		quit: make(chan struct{}),
		size: size,
	}
	for i := 0; i < size; i++ {
		go p.park()
	}
	return p
}

// park is the parked worker loop: wait for a task, run it, signal, repeat.
func (p *Pool) park() {
	for {
		select {
		case t := <-p.work:
			t.body(t.w)
			t.wg.Done()
		case <-p.quit:
			return
		}
	}
}

// Size returns the number of parked goroutines.
func (p *Pool) Size() int { return p.size }

// Close releases the pool's goroutines. Idempotent. Regions already running
// complete; submitting new regions after Close still works but degrades to
// spawning goroutines (the pre-pool behavior).
func (p *Pool) Close() {
	p.once.Do(func() { close(p.quit) })
}

// RunWorkers starts exactly `workers` invocations of body(worker) and waits
// for all of them. Worker 0 runs inline on the calling goroutine; the rest
// are handed to parked pool goroutines (or spawned when none is idle — e.g.
// when workers exceeds the pool size or regions overlap).
func (p *Pool) RunWorkers(workers int, body func(worker int)) {
	p.RunWorkersNamed("region", workers, body)
}

// RunWorkersNamed is RunWorkers with a region name used by the tracer: when
// observability is on, every worker's execution of body is recorded as a span
// named name on that worker's timeline lane. With tracing off the name costs
// nothing (one atomic load and a nil compare decide).
func (p *Pool) RunWorkersNamed(name string, workers int, body func(worker int)) {
	if workers <= 0 {
		workers = p.size
	}
	mRegions.Inc()
	if tr := obs.Active(); tr != nil {
		inner := body
		body = func(w int) {
			tr.Begin(w+1, name)
			inner(w)
			tr.End(w+1, name)
		}
	}
	if workers == 1 {
		body(0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers - 1)
	for w := 1; w < workers; w++ {
		t := poolTask{w: w, body: body, wg: &wg}
		select {
		case p.work <- t:
			// A parked worker picked it up.
			mParkedRuns.Inc()
		default:
			// All parked workers busy: degrade to a plain spawn rather
			// than queueing, so independent regions never serialize and
			// nested regions cannot deadlock.
			mSpawnFallbacks.Inc()
			go func(t poolTask) {
				t.body(t.w)
				t.wg.Done()
			}(t)
		}
	}
	body(0)
	wg.Wait()
}

// ParallelFor runs body(worker, lo, hi) over [0, n) split according to the
// schedule, on this pool. Semantics match the package-level ParallelFor.
func (p *Pool) ParallelFor(workers, n int, s Schedule, grain int, body func(worker, lo, hi int)) {
	p.ParallelForNamed("parallel-for", workers, n, s, grain, body)
}

// ParallelForNamed is ParallelFor with a region name for the tracer (see
// RunWorkersNamed).
func (p *Pool) ParallelForNamed(name string, workers, n int, s Schedule, grain int, body func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = p.size
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		body(0, 0, n)
		return
	}
	if grain < 1 {
		grain = 1
	}
	switch s {
	case Static, Balanced:
		// Contiguous blocks, sized within ±1 iteration of each other.
		p.RunWorkersNamed(name, workers, func(w int) {
			lo := w * n / workers
			hi := (w + 1) * n / workers
			if lo < hi {
				body(w, lo, hi)
			}
		})
	case Dynamic:
		var next int64
		p.RunWorkersNamed(name, workers, func(w int) {
			for {
				lo := int(atomic.AddInt64(&next, int64(grain))) - grain
				if lo >= n {
					return
				}
				hi := lo + grain
				if hi > n {
					hi = n
				}
				body(w, lo, hi)
			}
		})
	case Guided:
		var next int64
		p.RunWorkersNamed(name, workers, func(w int) {
			for {
				// Chunk size proportional to remaining work: the classic
				// guided heuristic remaining/(2P), floored at the grain.
				// Computed optimistically; the CAS-free fetch-add keeps it
				// cheap and any overshoot is clamped.
				cur := atomic.LoadInt64(&next)
				if cur >= int64(n) {
					return
				}
				chunk := (int64(n) - cur) / int64(2*workers)
				if chunk < int64(grain) {
					chunk = int64(grain)
				}
				lo := atomic.AddInt64(&next, chunk) - chunk
				if lo >= int64(n) {
					return
				}
				hi := lo + chunk
				if hi > int64(n) {
					hi = int64(n)
				}
				body(w, int(lo), int(hi))
			}
		})
	default:
		panic("sched: unknown schedule")
	}
}

// defaultPool is the process-wide pool behind the free RunWorkers and
// ParallelFor, created on first use with DefaultWorkers goroutines.
var (
	defaultPoolOnce sync.Once
	defaultPool     *Pool
)

// Default returns the lazily-created process-wide pool.
func Default() *Pool {
	defaultPoolOnce.Do(func() { defaultPool = NewPool(DefaultWorkers()) })
	return defaultPool
}
