package sched

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func coverage(t *testing.T, workers, n int, s Schedule, grain int) {
	t.Helper()
	hits := make([]int32, n)
	ParallelFor(workers, n, s, grain, func(w, lo, hi int) {
		if lo < 0 || hi > n || lo > hi {
			t.Errorf("bad range [%d,%d) for n=%d", lo, hi, n)
		}
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("%v workers=%d n=%d grain=%d: index %d visited %d times", s, workers, n, grain, i, h)
		}
	}
}

func TestParallelForCoversEveryIndexExactlyOnce(t *testing.T) {
	for _, s := range []Schedule{Static, Dynamic, Guided, Balanced} {
		for _, workers := range []int{1, 2, 3, 8} {
			for _, n := range []int{1, 2, 7, 100, 1023} {
				for _, grain := range []int{1, 4, 16} {
					coverage(t, workers, n, s, grain)
				}
			}
		}
	}
}

func TestParallelForZeroAndNegativeN(t *testing.T) {
	var called atomic.Bool
	ParallelFor(4, 0, Static, 1, func(w, lo, hi int) { called.Store(true) })
	ParallelFor(4, -3, Dynamic, 1, func(w, lo, hi int) { called.Store(true) })
	if called.Load() {
		t.Fatal("body called for empty range")
	}
}

func TestParallelForWorkerIDsInRange(t *testing.T) {
	const workers = 4
	var bad int32
	ParallelFor(workers, 1000, Dynamic, 8, func(w, lo, hi int) {
		if w < 0 || w >= workers {
			atomic.AddInt32(&bad, 1)
		}
	})
	if bad != 0 {
		t.Fatal("worker id out of range")
	}
}

func TestParallelForSingleWorkerIsSequential(t *testing.T) {
	// With one worker the body must see the whole range in one call.
	var calls atomic.Int32
	ParallelFor(1, 57, Guided, 1, func(w, lo, hi int) {
		calls.Add(1)
		if w != 0 || lo != 0 || hi != 57 {
			t.Fatalf("unexpected call (%d, %d, %d)", w, lo, hi)
		}
	})
	if calls.Load() != 1 {
		t.Fatalf("calls = %d", calls.Load())
	}
}

func TestScheduleString(t *testing.T) {
	names := map[Schedule]string{Static: "static", Dynamic: "dynamic", Guided: "guided", Balanced: "balanced", Schedule(99): "unknown"}
	for s, want := range names {
		if s.String() != want {
			t.Fatalf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}

func TestRunWorkers(t *testing.T) {
	var mu sync.Mutex
	seen := map[int]bool{}
	RunWorkers(5, func(w int) {
		mu.Lock()
		seen[w] = true
		mu.Unlock()
	})
	if len(seen) != 5 {
		t.Fatalf("saw %d workers, want 5", len(seen))
	}
}

func TestPrefixSumSerialSmall(t *testing.T) {
	ps := PrefixSum([]int64{3, 1, 4, 1, 5}, nil, 1)
	want := []int64{0, 3, 4, 8, 9, 14}
	for i := range want {
		if ps[i] != want[i] {
			t.Fatalf("ps = %v, want %v", ps, want)
		}
	}
}

func TestPrefixSumParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	n := 1 << 16 // above the serial cutoff
	w := make([]int64, n)
	for i := range w {
		w[i] = int64(rng.Intn(100))
	}
	serial := PrefixSum(w, nil, 1)
	for _, workers := range []int{2, 3, 7} {
		par := PrefixSum(w, nil, workers)
		for i := range serial {
			if par[i] != serial[i] {
				t.Fatalf("workers=%d: mismatch at %d: %d vs %d", workers, i, par[i], serial[i])
			}
		}
	}
}

func TestPrefixSumEmpty(t *testing.T) {
	ps := PrefixSum(nil, nil, 4)
	if len(ps) != 1 || ps[0] != 0 {
		t.Fatalf("ps = %v", ps)
	}
}

func TestLowerBound(t *testing.T) {
	a := []int64{1, 3, 3, 7, 10}
	cases := []struct {
		v    int64
		want int
	}{{0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 3}, {7, 3}, {8, 4}, {10, 4}, {11, 5}}
	for _, c := range cases {
		if got := LowerBound(a, c.v); got != c.want {
			t.Fatalf("LowerBound(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestLowerBoundProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		a := make([]int64, n)
		var acc int64
		for i := range a {
			acc += int64(rng.Intn(5))
			a[i] = acc
		}
		v := int64(rng.Intn(int(acc + 2)))
		i := LowerBound(a, v)
		// All elements before i are < v, element at i (if any) is >= v.
		for j := 0; j < i; j++ {
			if a[j] >= v {
				return false
			}
		}
		return i == n || a[i] >= v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBalancedPartitionCoversAllRows(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(500)
		parts := 1 + rng.Intn(16)
		w := make([]int64, n)
		for i := range w {
			w[i] = int64(rng.Intn(50))
		}
		off := BalancedPartition(w, parts, 2)
		if len(off) != parts+1 {
			t.Fatalf("offsets length %d", len(off))
		}
		if off[0] != 0 || off[parts] != n {
			t.Fatalf("offsets do not span rows: %v", off)
		}
		for t2 := 1; t2 <= parts; t2++ {
			if off[t2] < off[t2-1] {
				t.Fatalf("offsets not monotone: %v", off)
			}
		}
	}
}

func TestBalancedPartitionBalancesSkewedWork(t *testing.T) {
	// Heavy head: first 10 rows carry 100x the work of the rest. A plain
	// static split over 4 threads puts all heavy rows on thread 0; the
	// balanced partition must spread them.
	n := 1000
	w := make([]int64, n)
	for i := range w {
		if i < 10 {
			w[i] = 1000
		} else {
			w[i] = 1
		}
	}
	off := BalancedPartition(w, 4, 1)
	imb := PartitionImbalance(w, off)
	if imb > 1.5 {
		t.Fatalf("balanced partition imbalance %.2f, want <= 1.5 (offsets %v)", imb, off)
	}
	// Contrast: equal-rows static split is badly imbalanced on this input.
	static := []int{0, 250, 500, 750, 1000}
	if staticImb := PartitionImbalance(w, static); staticImb < 2 {
		t.Fatalf("test premise broken: static imbalance %.2f should be large", staticImb)
	}
}

func TestBalancedPartitionAllZeroWeights(t *testing.T) {
	off := BalancedPartition(make([]int64, 100), 4, 1)
	if off[0] != 0 || off[4] != 100 {
		t.Fatalf("offsets = %v", off)
	}
	// Should fall back to even row counts.
	for t2 := 0; t2 < 4; t2++ {
		if off[t2+1]-off[t2] != 25 {
			t.Fatalf("uneven fallback: %v", off)
		}
	}
}

func TestBalancedPartitionEmptyWeights(t *testing.T) {
	off := BalancedPartition(nil, 4, 1)
	for _, o := range off {
		if o != 0 {
			t.Fatalf("offsets = %v", off)
		}
	}
}

func TestPartitionImbalancePerfect(t *testing.T) {
	w := []int64{1, 1, 1, 1}
	if imb := PartitionImbalance(w, []int{0, 2, 4}); imb != 1 {
		t.Fatalf("imbalance = %v, want 1", imb)
	}
}
