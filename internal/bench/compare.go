package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Bench regression smoke: re-run the reuse experiment at the configuration
// recorded in a checked-in snapshot (BENCH_spgemm.json) and gate the result
// against it. Two signals with very different noise profiles:
//
//   - allocs_per_op is machine-independent and deterministic for a fixed
//     workload — the strict gate. A steady-state allocation creeping into the
//     context or plan path fails here regardless of host speed.
//   - ns_per_op varies with the host, so the timing gate takes a tolerance
//     (fraction of the baseline; only slowdowns beyond it fail). CI passes a
//     generous value to absorb runner-vs-recording-host variance; local runs
//     on the recording host can use a tight one.
//
// bytes_per_op sits in between (dominated by the output matrix, but the
// runtime's own allocations jitter) and gets a fixed 10% + 1 MiB budget.

// ReadSnapshot loads a snapshot written by WriteSnapshot.
func ReadSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if s.Schema != 1 {
		return nil, fmt.Errorf("%s: unsupported snapshot schema %d", path, s.Schema)
	}
	return &s, nil
}

// baselineConfig reconstructs the Config that produced base, so the
// comparison run measures the identical workload.
func baselineConfig(base *Snapshot) (Config, error) {
	p, err := ParsePreset(base.Preset)
	if err != nil {
		return Config{}, err
	}
	return Config{Preset: p, Workers: base.Workers, Seed: base.Seed, Reps: base.Iters}, nil
}

// allocBudget is the allowed allocs_per_op growth over the baseline: a small
// absolute slack for runtime-internal jitter (GC bookkeeping, goroutine
// stacks land in MemStats.Mallocs too), plus 25% relative.
func allocBudget(base uint64) uint64 {
	slack := base / 4
	if slack < 4 {
		slack = 4
	}
	return base + slack
}

// CompareSnapshots re-runs the reuse experiment at base's recorded
// configuration and checks each (alg, variant) row against the baseline.
// timeTol is the allowed fractional slowdown (0.5 = fail beyond 1.5x the
// baseline time). The rendered table and any verdicts go to w; the returned
// slice holds one message per regression (empty = gate passes).
func CompareSnapshots(base *Snapshot, timeTol float64, w io.Writer) ([]string, error) {
	cfg, err := baselineConfig(base)
	if err != nil {
		return nil, err
	}
	cur, err := ReuseSnapshot(cfg)
	if err != nil {
		return nil, err
	}

	type key struct{ alg, variant string }
	baseRows := make(map[key]reuseVariant, len(base.Results))
	for _, r := range base.Results {
		baseRows[key{r.Alg, r.Variant}] = r
	}

	fmt.Fprintf(w, "baseline: %s/%s preset=%s workers=%d seed=%d (go %s)\n",
		base.OS, base.Arch, base.Preset, base.Workers, base.Seed, base.Go)
	fmt.Fprintf(w, "timing tolerance: +%.0f%%; alloc budget: +max(4, 25%%)\n", timeTol*100)
	t := newTable("alg", "variant", "base ms", "cur ms", "Δtime", "base allocs", "cur allocs", "verdict")

	var regressions []string
	seen := make(map[key]bool, len(cur.Results))
	for _, r := range cur.Results {
		k := key{r.Alg, r.Variant}
		seen[k] = true
		b, ok := baseRows[k]
		if !ok {
			t.add(r.Alg, r.Variant, "-", f2(float64(r.NsPerOp)/1e6), "-",
				"-", fmt.Sprintf("%d", r.Allocs), "new")
			continue
		}
		dt := float64(r.NsPerOp)/float64(b.NsPerOp) - 1
		verdict := "ok"
		if r.NsPerOp > int64(float64(b.NsPerOp)*(1+timeTol)) {
			verdict = "SLOW"
			regressions = append(regressions, fmt.Sprintf(
				"%s/%s: %.2f ms/iter vs baseline %.2f (%+.0f%%, tolerance +%.0f%%)",
				r.Alg, r.Variant, float64(r.NsPerOp)/1e6, float64(b.NsPerOp)/1e6, dt*100, timeTol*100))
		}
		if r.Allocs > allocBudget(b.Allocs) {
			verdict = "ALLOCS"
			regressions = append(regressions, fmt.Sprintf(
				"%s/%s: %d allocs/iter vs baseline %d (budget %d)",
				r.Alg, r.Variant, r.Allocs, b.Allocs, allocBudget(b.Allocs)))
		}
		if r.Bytes > b.Bytes+b.Bytes/10+1<<20 {
			verdict = "BYTES"
			regressions = append(regressions, fmt.Sprintf(
				"%s/%s: %d bytes/iter vs baseline %d (+10%% + 1 MiB budget)",
				r.Alg, r.Variant, r.Bytes, b.Bytes))
		}
		t.add(r.Alg, r.Variant,
			f2(float64(b.NsPerOp)/1e6), f2(float64(r.NsPerOp)/1e6),
			fmt.Sprintf("%+.1f%%", dt*100),
			fmt.Sprintf("%d", b.Allocs), fmt.Sprintf("%d", r.Allocs), verdict)
	}
	for _, r := range base.Results {
		if !seen[key{r.Alg, r.Variant}] {
			regressions = append(regressions, fmt.Sprintf(
				"%s/%s: present in baseline but missing from this run", r.Alg, r.Variant))
		}
	}
	t.write(w, false)
	regressions = append(regressions, tiledWinGate(cur.Results, w)...)
	return regressions, nil
}

// tiledWinGate enforces the tiled kernel's headline claim on THIS run's
// skewed G500 rows (variant "g500-s<scale>"): the tiled kernel must be
// strictly faster than every other explicit algorithm measured on that
// workload, and the auto recipe must have resolved to it. Asserting on the
// fresh measurement (not the baseline delta) keeps the gate meaningful on
// hosts other than the one that recorded the snapshot. The gate only arms
// at scale >= 16 — the acceptance regime, where the 65,536-plus-column
// output splits into multiple analytic tiles and hub rows really overflow;
// at smaller scales every row fits one tile, tiling degenerates to the
// hash path, and the recipe correctly keeps picking hash. Absent qualifying
// rows the gate is moot.
func tiledWinGate(rows []reuseVariant, w io.Writer) []string {
	var tiled, auto *reuseVariant
	var best *reuseVariant // fastest explicit non-tiled algorithm
	for i := range rows {
		r := &rows[i]
		var scale int
		if n, _ := fmt.Sscanf(r.Variant, "g500-s%d", &scale); n != 1 || scale < 16 {
			continue
		}
		switch r.Alg {
		case "tiled":
			tiled = r
		case "auto":
			auto = r
		default:
			if best == nil || r.NsPerOp < best.NsPerOp {
				best = r
			}
		}
	}
	if tiled == nil || best == nil {
		return nil
	}
	var out []string
	fmt.Fprintf(w, "skewed win gate (%s): tiled %.2f ms/iter vs best other (%s) %.2f ms/iter\n",
		tiled.Variant, float64(tiled.NsPerOp)/1e6, best.Alg, float64(best.NsPerOp)/1e6)
	if tiled.NsPerOp >= best.NsPerOp {
		out = append(out, fmt.Sprintf(
			"%s: tiled %.2f ms/iter does not beat %s %.2f ms/iter on the skewed preset",
			tiled.Variant, float64(tiled.NsPerOp)/1e6, best.Alg, float64(best.NsPerOp)/1e6))
	}
	if auto != nil && auto.Resolved != "tiled" {
		out = append(out, fmt.Sprintf(
			"%s: auto resolved to %q, want tiled on the skewed preset", auto.Variant, auto.Resolved))
	}
	return out
}
