package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/memmodel"
	"repro/internal/mempool"
	"repro/internal/sched"
)

// runFig2 reproduces Figure 2: the cost of scheduling an empty loop body
// over the three OpenMP-style schedules, as a function of iteration count.
func runFig2(cfg Config, w io.Writer) error {
	maxExp := 19
	if cfg.Preset == Tiny {
		maxExp = 10
	}
	// The microbenchmark measures the scheduling *protocol* (per-chunk
	// dispatch, shared-counter atomics), which needs at least two workers
	// — with one worker ParallelFor legitimately short-circuits the whole
	// protocol away.
	workers := cfg.workers()
	if workers < 2 {
		workers = 2
	}
	reps := cfg.reps()
	t := newTable("iterations", "static_ms", "dynamic_ms", "guided_ms")
	for e := 5; e <= maxExp; e += 2 {
		n := 1 << uint(e)
		row := []string{fmt.Sprintf("2^%d", e)}
		for _, s := range []sched.Schedule{sched.Static, sched.Dynamic, sched.Guided} {
			d := timeAvg(reps, func() {
				sched.ParallelFor(workers, n, s, 1, func(worker, lo, hi int) {
					// Empty body: the measurement is pure scheduling
					// overhead, exactly as in the paper's microbenchmark.
				})
			})
			row = append(row, fmt.Sprintf("%.4f", float64(d.Nanoseconds())/1e6))
		}
		t.add(row...)
	}
	t.write(w, cfg.CSV)
	fmt.Fprintln(w, "# expectation (paper): static << dynamic ≈ guided, gap widening with iterations")
	return nil
}

// runFig4 reproduces Figure 4: the cost of one allocate–touch–release round
// trip for a single shared block vs per-worker blocks. Go's GC stands in for
// delete/scalable_free; see DESIGN.md.
func runFig4(cfg Config, w io.Writer) error {
	// Array sizes in MB: the paper sweeps 2^1..2^15 MB; Quick stops at
	// 512 MB to stay friendly to CI machines.
	maxExp := 9
	switch cfg.Preset {
	case Tiny:
		maxExp = 3
	case Full:
		maxExp = 13
	}
	workers := cfg.workers()
	t := newTable("size_mb", "single_alloc_ms", "single_dealloc_ms", "parallel_alloc_ms", "parallel_dealloc_ms")
	for e := 1; e <= maxExp; e += 2 {
		bytes := (1 << uint(e)) * (1 << 20)
		s := mempool.MeasureSingle(bytes)
		p := mempool.MeasureParallel(bytes, workers)
		t.add(fmt.Sprintf("%d", 1<<uint(e)),
			fmt.Sprintf("%.3f", s.Alloc.Seconds()*1e3),
			fmt.Sprintf("%.3f", s.Dealloc.Seconds()*1e3),
			fmt.Sprintf("%.3f", p.Alloc.Seconds()*1e3),
			fmt.Sprintf("%.3f", p.Dealloc.Seconds()*1e3))
	}
	t.write(w, cfg.CSV)
	fmt.Fprintln(w, "# expectation (paper): parallel dealloc beats single for large sizes; small sizes favor single")
	return nil
}

// runFig5 reproduces Figure 5: read bandwidth vs contiguous-access (stanza)
// length. The DDR curve is measured on this host; the MCDRAM curve is the
// modeled tier (no KNL hardware available).
func runFig5(cfg Config, w io.Writer) error {
	arrayBytes := 1 << 26 // 64 MiB: beyond typical LLC
	perPoint := 30 * time.Millisecond
	if cfg.Preset == Tiny {
		arrayBytes = 1 << 22
		perPoint = 5 * time.Millisecond
	}
	if cfg.Preset == Full {
		arrayBytes = 1 << 28
		perPoint = 200 * time.Millisecond
	}
	var lengths []int
	for l := 16; l <= 16384; l *= 4 {
		lengths = append(lengths, l)
	}
	results := memmodel.MeasureStanzaBandwidth(arrayBytes, lengths, perPoint)
	ddr, err := memmodel.FitTier("DDR (fit)", results)
	if err != nil {
		return err
	}
	mc := memmodel.MCDRAMFrom(ddr)
	t := newTable("stanza_bytes", "ddr_measured_GBps", "ddr_fit_GBps", "mcdram_model_GBps")
	for _, r := range results {
		t.add(fmt.Sprintf("%d", r.StanzaBytes),
			f2(r.GBps), f2(ddr.Bandwidth(float64(r.StanzaBytes))), f2(mc.Bandwidth(float64(r.StanzaBytes))))
	}
	t.write(w, cfg.CSV)
	fmt.Fprintf(w, "# fitted DDR tier: peak %.1f GB/s, latency %.0f ns; MCDRAM modeled at %.1fx peak, %.1fx latency\n",
		ddr.PeakGBps, ddr.LatencyNs, memmodel.MCDRAMPeakRatio, memmodel.MCDRAMLatencyRatio)
	fmt.Fprintln(w, "# expectation (paper): both curves rise with stanza length; MCDRAM only wins for long stanzas")
	return nil
}
