package bench

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/gen"
	"repro/internal/matrix"
	"repro/internal/memmodel"
	"repro/internal/spgemm"
)

// sortedAlgos and unsortedAlgos mirror the paper's two evaluation tracks
// (Section 5): "For the case where input and output matrices are sorted, we
// evaluate MKL, Heap and Hash/HashVector, and for the case where they are
// unsorted we evaluate MKL, MKL-inspector, KokkosKernels and
// Hash/HashVector."
var sortedAlgos = []spgemm.Algorithm{spgemm.AlgMKL, spgemm.AlgHeap, spgemm.AlgHash, spgemm.AlgHashVec}

var unsortedAlgos = []spgemm.Algorithm{spgemm.AlgMKL, spgemm.AlgMKLInspector, spgemm.AlgKokkos, spgemm.AlgHash, spgemm.AlgHashVec}

// algoColumns builds the combined header the figures use.
func algoColumns() []string {
	cols := []string{}
	for _, a := range sortedAlgos {
		cols = append(cols, a.String())
	}
	for _, a := range unsortedAlgos {
		cols = append(cols, a.String()+"(unsorted)")
	}
	return cols
}

// runBothTracks measures MFLOPS for the sorted track on (a,b) and the
// unsorted track on the column-permuted variants, in header order.
func runBothTracks(a, b *matrix.CSR, sameOperand bool, cfg Config, rng *rand.Rand) []string {
	reps := cfg.reps()
	var cells []string
	for _, alg := range sortedAlgos {
		mf, err := timedMultiply(a, b, &spgemm.Options{Algorithm: alg, Workers: cfg.Workers}, reps)
		if err != nil {
			cells = append(cells, "-")
			continue
		}
		cells = append(cells, f1(mf))
	}
	ua := gen.Unsorted(a, rng)
	ub := ua
	if !sameOperand {
		ub = gen.Unsorted(b, rng)
	}
	for _, alg := range unsortedAlgos {
		mf, err := timedMultiply(ua, ub, &spgemm.Options{Algorithm: alg, Workers: cfg.Workers, Unsorted: true}, reps)
		if err != nil {
			cells = append(cells, "-")
			continue
		}
		cells = append(cells, f1(mf))
	}
	return cells
}

// runFig9 reproduces Figure 9: Heap SpGEMM MFLOPS across scheduling and
// memory-management variants, squaring G500 matrices of increasing scale
// (edge factor 16).
func runFig9(cfg Config, w io.Writer) error {
	lo, hi := 6, 14
	switch cfg.Preset {
	case Tiny:
		lo, hi = 6, 8
	case Full:
		lo, hi = 6, 18
	}
	rng := rand.New(rand.NewSource(cfg.seed()))
	variants := []spgemm.HeapVariant{
		spgemm.HeapStatic, spgemm.HeapDynamic, spgemm.HeapGuided,
		spgemm.HeapBalancedSingle, spgemm.HeapBalancedParallel,
	}
	header := []string{"scale"}
	for _, v := range variants {
		header = append(header, v.String())
	}
	t := newTable(header...)
	for scale := lo; scale <= hi; scale += 2 {
		a := gen.RMAT(scale, 16, gen.G500Params, rng)
		flop, _ := matrix.Flop(a, a)
		row := []string{fmt.Sprintf("%d", scale)}
		for _, v := range variants {
			d := timeAvg(cfg.reps(), func() {
				_, err := spgemm.Multiply(a, a, &spgemm.Options{
					Algorithm: spgemm.AlgHeap, HeapVariant: v, Workers: cfg.Workers,
				})
				if err != nil {
					panic(err)
				}
			})
			row = append(row, f1(mflops(flop, d)))
		}
		t.add(row...)
	}
	t.write(w, cfg.CSV)
	fmt.Fprintln(w, "# MFLOPS (higher is better)")
	fmt.Fprintln(w, "# expectation (paper): 'balanced parallel' highest and stable; static suffers imbalance,")
	fmt.Fprintln(w, "# dynamic/guided pay scheduling overhead, 'balanced single' degrades at large scales")
	return nil
}

// runFig10 reproduces Figure 10: the speedup MCDRAM (Cache mode) gives over
// DDR-only, for G500 matrices of fixed scale and growing edge factor. With
// no MCDRAM hardware, speedups come from the fitted two-tier model applied
// to each workload's measured access statistics (see DESIGN.md).
func runFig10(cfg Config, w io.Writer) error {
	// The memory experiment needs B to exceed the simulated 1 MiB L2, so
	// Quick already runs the paper's scale 15; Tiny stays small (and its B
	// fits in cache — near-1 speedups are the correct prediction there).
	scale := 15
	if cfg.Preset == Tiny {
		scale = 10
	}
	rng := rand.New(rand.NewSource(cfg.seed()))
	// Fit the DDR tier to this host's measured stanza curve (the Figure 5
	// methodology) and derive the MCDRAM tier from the paper's published
	// ratios. The analytic model with the fitted tier reproduces the
	// paper's speedup band and trend; the cache-simulator columns are
	// reported as diagnostics (a faithful traffic simulation would need
	// the aggregate 272-thread cache pressure, out of scope — DESIGN.md).
	lengths := []int{16, 64, 256, 1024, 4096, 16384}
	hostResults := memmodel.MeasureStanzaBandwidth(1<<25, lengths, 10_000_000) // 10ms per point
	ddr, err := memmodel.FitTier("DDR", hostResults)
	if err != nil {
		ddr = memmodel.DefaultDDR
	}
	mc := memmodel.MCDRAMFrom(ddr)

	t := newTable("edge_factor", "heap", "hash", "hashvec", "hash(unsorted)", "hashvec(unsorted)", "sim_spill", "sim_Bmiss")
	for _, ef := range []int{4, 8, 16, 32, 64} {
		a := gen.RMAT(scale, ef, gen.G500Params, rng)
		nnzC := matrix.SymbolicNNZ(a, a)
		st := spgemm.CollectAccessStats(a, a, nnzC)
		// Replay each algorithm's access pattern through a simulated
		// KNL-tile L2 to determine how much traffic reaches memory.
		sim := memmodel.SimulateHashSpGEMM(a, a, memmodel.KNLTileL2, 1<<21)
		heapSp := memmodel.ModeledSpeedup(st, ddr, mc, memmodel.FineGrained)
		hashSp := memmodel.ModeledSpeedup(st, ddr, mc, memmodel.StanzaReads)
		// Sorting traffic is cache-resident; sorted and unsorted variants
		// differ only marginally in memory terms — the paper's Figure 10
		// shows them tracking each other closely.
		t.add(fmt.Sprintf("%d", ef), f2(heapSp), f2(hashSp), f2(hashSp), f2(hashSp), f2(hashSp),
			f2(sim.AccumulatorSpill()), f2(sim.BMissRate()))
	}
	t.write(w, cfg.CSV)
	fmt.Fprintf(w, "# modeled speedup = time(DDR)/time(MCDRAM); DDR fit: peak %.1f GB/s latency %.0f ns\n", ddr.PeakGBps, ddr.LatencyNs)
	fmt.Fprintln(w, "# sim_spill / sim_Bmiss: diagnostic fractions of accumulator updates / B reads reaching memory")
	fmt.Fprintln(w, "# in a simulated 1MiB 16-way KNL-tile L2 (see internal/memmodel/cachesim.go)")
	fmt.Fprintln(w, "# expectation (paper): hash-family speedup grows with edge factor (toward ~1.3x);")
	fmt.Fprintln(w, "# heap stays ~1x and can dip below 1 at high edge factor")
	return nil
}

// runFig11 reproduces Figure 11: MFLOPS as density (edge factor 4, 8, 16)
// grows, for ER and G500 patterns, both sortedness tracks.
func runFig11(cfg Config, w io.Writer) error {
	scale := 11
	switch cfg.Preset {
	case Tiny:
		scale = 8
	case Full:
		scale = 16 // the paper's configuration
	}
	rng := rand.New(rand.NewSource(cfg.seed()))
	for _, pattern := range []string{"ER", "G500"} {
		fmt.Fprintf(w, "-- %s (scale %d) --\n", pattern, scale)
		t := newTable(append([]string{"edge_factor"}, algoColumns()...)...)
		for _, ef := range []int{4, 8, 16} {
			var a *matrix.CSR
			if pattern == "ER" {
				a = gen.ER(scale, ef, rng)
			} else {
				a = gen.RMAT(scale, ef, gen.G500Params, rng)
			}
			t.add(append([]string{fmt.Sprintf("%d", ef)}, runBothTracks(a, a, true, cfg, rng)...)...)
		}
		t.write(w, cfg.CSV)
	}
	fmt.Fprintln(w, "# MFLOPS (higher is better)")
	fmt.Fprintln(w, "# expectation (paper): performance rises with density (esp. ER); hash-family leads;")
	fmt.Fprintln(w, "# unsorted beats sorted; MKL stand-in weakest on skewed G500")
	return nil
}

// runFig12 reproduces Figure 12: MFLOPS as matrix size grows at fixed edge
// factor 16, ER and G500.
func runFig12(cfg Config, w io.Writer) error {
	loER, hiER := 8, 13
	loG, hiG := 8, 12
	switch cfg.Preset {
	case Tiny:
		loER, hiER, loG, hiG = 7, 9, 7, 9
	case Full:
		loER, hiER, loG, hiG = 8, 20, 8, 17 // the paper's ranges
	}
	rng := rand.New(rand.NewSource(cfg.seed()))
	run := func(pattern string, lo, hi int) {
		fmt.Fprintf(w, "-- %s (edge factor 16) --\n", pattern)
		t := newTable(append([]string{"scale"}, algoColumns()...)...)
		for scale := lo; scale <= hi; scale++ {
			var a *matrix.CSR
			if pattern == "ER" {
				a = gen.ER(scale, 16, rng)
			} else {
				a = gen.RMAT(scale, 16, gen.G500Params, rng)
			}
			t.add(append([]string{fmt.Sprintf("%d", scale)}, runBothTracks(a, a, true, cfg, rng)...)...)
		}
		t.write(w, cfg.CSV)
	}
	run("ER", loER, hiER)
	run("G500", loG, hiG)
	fmt.Fprintln(w, "# MFLOPS (higher is better)")
	fmt.Fprintln(w, "# expectation (paper): MKL stand-ins fade at large scales; hash/heap stay stable;")
	fmt.Fprintln(w, "# sorted-vs-unsorted gap narrows as scale grows")
	return nil
}

// runFig13 reproduces Figure 13: strong scaling with thread count on
// scale-16 ER and G500 (edge factor 16). On a host with few cores the curve
// flattens at the core count — the scheduling paths are still exercised.
func runFig13(cfg Config, w io.Writer) error {
	scale := 11
	switch cfg.Preset {
	case Tiny:
		scale = 8
	case Full:
		scale = 16
	}
	rng := rand.New(rand.NewSource(cfg.seed()))
	maxThreads := 4 * cfg.workers()
	if maxThreads > 64 {
		maxThreads = 64
	}
	var threads []int
	for th := 1; th <= maxThreads; th *= 2 {
		threads = append(threads, th)
	}
	algos := []struct {
		name     string
		alg      spgemm.Algorithm
		unsorted bool
	}{
		{"heap", spgemm.AlgHeap, false},
		{"hash", spgemm.AlgHash, false},
		{"hashvec", spgemm.AlgHashVec, false},
		{"mkl(unsorted)", spgemm.AlgMKL, true},
		{"mkl-inspector(unsorted)", spgemm.AlgMKLInspector, true},
		{"kokkos(unsorted)", spgemm.AlgKokkos, true},
		{"hash(unsorted)", spgemm.AlgHash, true},
		{"hashvec(unsorted)", spgemm.AlgHashVec, true},
	}
	for _, pattern := range []string{"ER", "G500"} {
		fmt.Fprintf(w, "-- %s (scale %d, edge factor 16) --\n", pattern, scale)
		var a *matrix.CSR
		if pattern == "ER" {
			a = gen.ER(scale, 16, rng)
		} else {
			a = gen.RMAT(scale, 16, gen.G500Params, rng)
		}
		ua := gen.Unsorted(a, rng)
		header := []string{"threads"}
		for _, al := range algos {
			header = append(header, al.name)
		}
		t := newTable(header...)
		for _, th := range threads {
			row := []string{fmt.Sprintf("%d", th)}
			for _, al := range algos {
				in := a
				if al.unsorted {
					in = ua
				}
				mf, err := timedMultiply(in, in, &spgemm.Options{Algorithm: al.alg, Workers: th, Unsorted: al.unsorted}, cfg.reps())
				if err != nil {
					row = append(row, "-")
					continue
				}
				row = append(row, f1(mf))
			}
			t.add(row...)
		}
		t.write(w, cfg.CSV)
	}
	fmt.Fprintln(w, "# MFLOPS (higher is better); wall-clock speedup is bounded by the physical core count")
	return nil
}

// runFig16 reproduces Figure 16: multiplying a G500 square matrix by a
// tall-skinny matrix built from randomly selected columns (multi-source BFS
// frontier shape), for several long-side and short-side scales.
func runFig16(cfg Config, w io.Writer) error {
	longScales := []int{11, 12}
	shortScales := []int{5, 6, 7, 8}
	switch cfg.Preset {
	case Tiny:
		longScales = []int{9}
		shortScales = []int{4, 5}
	case Full:
		longScales = []int{18, 19, 20} // the paper's configuration
		shortScales = []int{10, 12, 14, 16}
	}
	rng := rand.New(rand.NewSource(cfg.seed()))
	for _, ls := range longScales {
		fmt.Fprintf(w, "-- long-side scale %d (G500, edge factor 16) --\n", ls)
		a := gen.RMAT(ls, 16, gen.G500Params, rng)
		t := newTable(append([]string{"short_scale"}, algoColumns()...)...)
		for _, ss := range shortScales {
			b := gen.TallSkinny(a, ss, rng)
			t.add(append([]string{fmt.Sprintf("%d", ss)}, runBothTracks(a, b, false, cfg, rng)...)...)
		}
		t.write(w, cfg.CSV)
	}
	fmt.Fprintln(w, "# MFLOPS (higher is better)")
	fmt.Fprintln(w, "# expectation (paper): follows the A^2 G500 result — hash/hashvec lead in both tracks")
	return nil
}
