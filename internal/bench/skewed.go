package bench

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"time"

	"repro/internal/gen"
	"repro/internal/matrix"
	"repro/internal/sched"
	"repro/internal/spgemm"
)

// The skewed experiment is the tiled kernel's headline workload: G500 R-MAT
// A² — the paper's power-law regime, where hub rows overflow any
// cache-resident accumulator and both the hash kernel's probe cost and its
// per-row load imbalance blow up. Each algorithm runs Context-reused (the
// iterative-workload configuration the reuse experiment motivates), and
// AlgAuto runs last with its resolved pick recorded, so the snapshot gate
// can assert both that the tiled kernel wins here and that the recipe
// actually routes this regime to it.

// skewedScale maps the preset to the R-MAT scale: quick is the acceptance
// workload (scale 16: 65536 columns — two analytic 32768-wide tiles, real
// heavy rows), tiny is a smoke run, full approaches paper scale.
func skewedScale(p Preset) int {
	switch p {
	case Tiny:
		return 8
	case Full:
		return 18
	}
	return 16
}

// skewedAlgs is the comparison set: the recipe's previous best picks for
// this regime plus the tiled kernel and the auto recipe itself.
func skewedAlgs() []spgemm.Algorithm {
	return []spgemm.Algorithm{spgemm.AlgHash, spgemm.AlgHeap, spgemm.AlgTiled, spgemm.AlgAuto}
}

// measureSkewed times Context-reused A² on the skewed G500 input for each
// algorithm in skewedAlgs. The variant name encodes the workload
// ("g500-s<scale>"); AlgAuto rows carry the resolved algorithm.
func measureSkewed(cfg Config) (scale int, flop int64, out []reuseVariant, err error) {
	scale = skewedScale(cfg.Preset)
	rng := rand.New(rand.NewSource(cfg.seed()))
	a := gen.RMAT(scale, 16, gen.G500Params, rng)
	flop, _ = matrix.Flop(a, a)
	iters := cfg.reps()
	workers := cfg.workers()
	variant := fmt.Sprintf("g500-s%d", scale)

	for _, alg := range skewedAlgs() {
		ctx := spgemm.NewContext()
		ctx.Pool = sched.NewPool(workers)
		var st spgemm.ExecStats
		warm := &spgemm.Options{Algorithm: alg, Workers: workers, Context: ctx, Stats: &st}
		if _, err = spgemm.Multiply(a, a, warm); err != nil {
			ctx.Pool.Close()
			return
		}
		resolved := ""
		if alg == spgemm.AlgAuto {
			resolved = st.Algorithm.String()
		}
		// Timed loop without stats: the production fast path.
		opt := &spgemm.Options{Algorithm: alg, Workers: workers, Context: ctx}
		d, allocs, bytes := timedAllocsMin(iters, func() {
			if _, e := spgemm.Multiply(a, a, opt); e != nil {
				err = e
			}
		})
		ctx.Pool.Close()
		if err != nil {
			return
		}
		out = append(out, reuseVariant{alg.String(), variant, d.Nanoseconds(), mflops(flop, d), allocs, bytes, resolved})
	}
	return
}

// timedAllocsMin is timedAllocs with per-iteration timing, reporting the
// MINIMUM iteration time instead of the mean. The skewed iterations run
// tens of seconds each, so a single scheduling hiccup, GC pause train, or
// burst of hypervisor steal time can inflate a mean by tens of percent; the
// minimum is the least-disturbed observation of the same deterministic
// work, which is what the win gate should compare. Allocation counters stay
// per-iteration means (they are deterministic anyway).
func timedAllocsMin(iters int, f func()) (time.Duration, uint64, uint64) {
	if iters < 1 {
		iters = 1
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	best := time.Duration(0)
	for i := 0; i < iters; i++ {
		start := time.Now()
		f()
		if d := time.Since(start); best == 0 || d < best {
			best = d
		}
	}
	runtime.ReadMemStats(&m1)
	n := uint64(iters)
	return best, (m1.Mallocs - m0.Mallocs) / n, (m1.TotalAlloc - m0.TotalAlloc) / n
}

// runSkewed renders the skewed experiment as a table.
func runSkewed(cfg Config, w io.Writer) error {
	scale, flop, rows, err := measureSkewed(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "G500 R-MAT scale %d, edge factor 16, A² (Context-reused), flop=%d, iters=%d\n",
		scale, flop, cfg.reps())
	t := newTable("alg", "variant", "ms/iter", "MFLOPS", "allocs/iter", "resolved")
	for _, r := range rows {
		t.add(r.Alg, r.Variant,
			f2(float64(r.NsPerOp)/1e6), f1(r.MFLOPS),
			fmt.Sprintf("%d", r.Allocs), r.Resolved)
	}
	t.write(w, cfg.CSV)
	fmt.Fprintln(w, "# expectation: tiled beats hash and heap on the skewed hub rows, and auto resolves to tiled")
	return nil
}
