package bench

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"time"

	"repro/internal/gen"
	"repro/internal/matrix"
	"repro/internal/sched"
	"repro/internal/spgemm"
)

// The reuse experiment quantifies what the paper's Section 3.2 memory
// management and the inspector-executor pattern (MKL's mkl_sparse_sp2m two-
// stage interface, Section 4.2) buy an *iterative* SpGEMM workload: the same
// A² product executed repeatedly, as in MCL expansion or multi-source BFS.
// Three variants:
//
//	oneshot — spgemm.Multiply with nil Context: every call pays partition,
//	          symbolic, and all per-worker allocations (status quo ante).
//	context — one spgemm.Context across calls: accumulators, scratch and
//	          bookkeeping are allocated once and reused; partition+symbolic
//	          still run every call.
//	plan    — spgemm.NewPlan once, Plan.Execute per call: the symbolic
//	          result itself is cached, so re-execution runs only the numeric
//	          phase (plus the structure-fingerprint check).
//
// Reported per variant: time and MFLOPS per iteration, plus heap allocations
// and bytes per iteration (runtime.MemStats deltas — the analogue of
// testing's -benchmem for this harness).

// reuseVariant names one measured configuration.
type reuseVariant struct {
	Alg     string  `json:"alg"`
	Variant string  `json:"variant"`
	NsPerOp int64   `json:"ns_per_op"`
	MFLOPS  float64 `json:"mflops"`
	Allocs  uint64  `json:"allocs_per_op"`
	Bytes   uint64  `json:"bytes_per_op"`
	// Resolved records the algorithm AlgAuto dispatched to (empty for
	// explicit algorithms). The skewed-preset gate asserts on it.
	Resolved string `json:"resolved,omitempty"`
}

// timedAllocs runs f iters times and returns per-iteration wall time, heap
// allocation count and allocated bytes.
func timedAllocs(iters int, f func()) (time.Duration, uint64, uint64) {
	if iters < 1 {
		iters = 1
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for i := 0; i < iters; i++ {
		f()
	}
	d := time.Since(start)
	runtime.ReadMemStats(&m1)
	n := uint64(iters)
	return d / time.Duration(iters), (m1.Mallocs - m0.Mallocs) / n, (m1.TotalAlloc - m0.TotalAlloc) / n
}

// measureReuse runs the three variants for both hash algorithms on ER A².
func measureReuse(cfg Config) (scale int, flop int64, out []reuseVariant, err error) {
	scale = 14 // the acceptance workload: ER scale 14, edge factor 16
	switch cfg.Preset {
	case Tiny:
		scale = 8
	case Full:
		scale = 16
	}
	rng := rand.New(rand.NewSource(cfg.seed()))
	a := gen.ER(scale, 16, rng)
	flop, _ = matrix.Flop(a, a)
	iters := cfg.reps()
	workers := cfg.workers()

	for _, alg := range []spgemm.Algorithm{spgemm.AlgHash, spgemm.AlgHashVec} {
		// One-shot: fresh state every call.
		oneshot := &spgemm.Options{Algorithm: alg, Workers: workers}
		if _, err = spgemm.Multiply(a, a, oneshot); err != nil {
			return
		}
		d, allocs, bytes := timedAllocs(iters, func() {
			if _, e := spgemm.Multiply(a, a, oneshot); e != nil {
				err = e
			}
		})
		if err != nil {
			return
		}
		out = append(out, reuseVariant{alg.String(), "oneshot", d.Nanoseconds(), mflops(flop, d), allocs, bytes, ""})

		// Context: reusable state, on a dedicated persistent pool.
		ctx := spgemm.NewContext()
		ctx.Pool = sched.NewPool(workers)
		withCtx := &spgemm.Options{Algorithm: alg, Workers: workers, Context: ctx}
		if _, err = spgemm.Multiply(a, a, withCtx); err != nil {
			ctx.Pool.Close()
			return
		}
		d, allocs, bytes = timedAllocs(iters, func() {
			if _, e := spgemm.Multiply(a, a, withCtx); e != nil {
				err = e
			}
		})
		ctx.Pool.Close()
		if err != nil {
			return
		}
		out = append(out, reuseVariant{alg.String(), "context", d.Nanoseconds(), mflops(flop, d), allocs, bytes, ""})

		// Plan: symbolic phase cached, numeric-only re-execution.
		pctx := spgemm.NewContext()
		pctx.Pool = sched.NewPool(workers)
		var plan *spgemm.Plan
		plan, err = spgemm.NewPlan(a, a, &spgemm.Options{Algorithm: alg, Workers: workers, Context: pctx})
		if err != nil {
			pctx.Pool.Close()
			return
		}
		if _, err = plan.Execute(); err != nil {
			pctx.Pool.Close()
			return
		}
		d, allocs, bytes = timedAllocs(iters, func() {
			if _, e := plan.Execute(); e != nil {
				err = e
			}
		})
		pctx.Pool.Close()
		if err != nil {
			return
		}
		out = append(out, reuseVariant{alg.String(), "plan", d.Nanoseconds(), mflops(flop, d), allocs, bytes, ""})
	}
	return
}

// runReuse renders the reuse experiment as a table.
func runReuse(cfg Config, w io.Writer) error {
	scale, flop, rows, err := measureReuse(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "ER scale %d, edge factor 16, A², flop=%d, iters=%d\n", scale, flop, cfg.reps())
	t := newTable("alg", "variant", "ms/iter", "MFLOPS", "allocs/iter", "KiB/iter")
	for _, r := range rows {
		t.add(r.Alg, r.Variant,
			f2(float64(r.NsPerOp)/1e6), f1(r.MFLOPS),
			fmt.Sprintf("%d", r.Allocs), f1(float64(r.Bytes)/1024))
	}
	t.write(w, cfg.CSV)
	fmt.Fprintln(w, "# expectation: context cuts allocs/iter to the output matrix plus pool dispatch;")
	fmt.Fprintln(w, "# plan additionally skips partition+symbolic, so ms/iter drops toward the numeric phase")
	return nil
}
