package bench

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/spgemm"
)

// runApps benchmarks the end-to-end graph applications built on SpGEMM —
// the workloads the paper's introduction motivates (triangle counting,
// multi-source BFS, Markov clustering, betweenness centrality, clustering
// coefficients, label propagation) — on one G500 graph. Not a paper figure;
// included to demonstrate and regression-track the application layer.
func runApps(cfg Config, w io.Writer) error {
	scale := 11
	switch cfg.Preset {
	case Tiny:
		scale = 8
	case Full:
		scale = 14
	}
	rng := rand.New(rand.NewSource(cfg.seed()))
	g := gen.RMAT(scale, 8, gen.G500Params, rng)
	opt := &spgemm.Options{Algorithm: spgemm.AlgHash, Workers: cfg.Workers}

	t := newTable("application", "time_ms", "result")
	timeMS := func(start time.Time) string {
		return fmt.Sprintf("%.1f", float64(time.Since(start).Microseconds())/1000)
	}

	start := time.Now()
	tri, err := graph.CountTriangles(g, opt)
	if err != nil {
		return err
	}
	t.add("triangle counting (masked LxU)", timeMS(start), fmt.Sprintf("%d triangles", tri.Triangles))

	sources := make([]int32, 32)
	for i := range sources {
		sources[i] = int32(rng.Intn(g.Rows))
	}
	start = time.Now()
	bfs, err := graph.MSBFS(g, sources, opt)
	if err != nil {
		return err
	}
	t.add("multi-source BFS (32 sources)", timeMS(start), fmt.Sprintf("%d pairs reached", bfs.Reached()))

	start = time.Now()
	cc, err := graph.ClusteringCoefficients(g, opt)
	if err != nil {
		return err
	}
	var mean float64
	for _, c := range cc {
		mean += c
	}
	mean /= float64(len(cc))
	t.add("clustering coefficients", timeMS(start), fmt.Sprintf("mean cc %.4f", mean))

	start = time.Now()
	lp, err := graph.LabelPropagation(g, 20, rng, opt)
	if err != nil {
		return err
	}
	t.add("label propagation", timeMS(start), fmt.Sprintf("%d communities in %d iters", lp.NumCommunities, lp.Iterations))

	start = time.Now()
	bc, err := graph.Betweenness(g, sources, 32, opt)
	if err != nil {
		return err
	}
	var maxBC float64
	for _, v := range bc {
		if v > maxBC {
			maxBC = v
		}
	}
	t.add("betweenness (32-source approx)", timeMS(start), fmt.Sprintf("max bc %.1f", maxBC))

	// MCL on a smaller graph: expansion on the full G500 graph densifies
	// quickly and is out of proportion for a smoke benchmark.
	small := gen.RMAT(scale-2, 6, gen.G500Params, rng)
	start = time.Now()
	mcl, err := graph.MCL(small, &graph.MCLOptions{SpGEMM: opt, MaxIters: 30})
	if err != nil {
		return err
	}
	t.add(fmt.Sprintf("Markov clustering (scale %d)", scale-2), timeMS(start),
		fmt.Sprintf("%d clusters in %d iters", mcl.NumClusters, mcl.Iterations))

	t.write(w, cfg.CSV)
	fmt.Fprintf(w, "# graph: G500 scale %d, edge factor 8 (%v)\n", scale, g)
	return nil
}
