package bench

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/gen"
	"repro/internal/matrix"
	"repro/internal/mempool"
	"repro/internal/sched"
	"repro/internal/spgemm"
)

// The outofcore experiment exercises the sharded engine's bounded-memory
// claim end to end: a G500 A² whose output entry storage exceeds the chosen
// resident budget, executed through a SpillSink so finished stripes land in
// the temp-file-backed CSR instead of RAM. The run self-asserts — output
// larger than the budget, sink peak residency under the budget, per-worker
// scratch (mempool live bytes) under the budget, and the spilled product
// bit-identical to the in-RAM hash product — so `-exp outofcore` doubles as
// the CI spill smoke: any violated bound is an error exit, not a footnote.

// outOfCoreScale maps the preset to the R-MAT scale of the input.
func outOfCoreScale(p Preset) int {
	switch p {
	case Tiny:
		return 8
	case Full:
		return 18
	}
	return 14
}

// outOfCoreResult carries the measurements plus the bound bookkeeping the
// runner prints and asserts on.
type outOfCoreResult struct {
	Scale    int
	Flop     int64
	OutBytes int64 // entry storage of the product (12 bytes each)
	Budget   int64 // SpillSink resident budget
	Peak     int64 // high-water resident stripe bytes across all runs
	Spilled  int64 // spill file size
	Stripes  int
	Live     int64 // mempool live bytes grown by this experiment's runs
	Rows     []reuseVariant
}

// measureOutOfCore times the spill-backed sharded multiply against the
// fully-resident hash baseline on the same input, verifying bit-identity and
// the residency bounds along the way. The budget is a quarter of the output
// entry storage (floor 64 KiB), so the product can never fit: completing at
// all proves the out-of-core path works.
func measureOutOfCore(cfg Config) (*outOfCoreResult, error) {
	res := &outOfCoreResult{Scale: outOfCoreScale(cfg.Preset)}
	rng := rand.New(rand.NewSource(cfg.seed()))
	a := gen.RMAT(res.Scale, 16, gen.G500Params, rng)
	res.Flop, _ = matrix.Flop(a, a)
	iters := cfg.reps()
	workers := cfg.workers()
	variant := fmt.Sprintf("outofcore-s%d", res.Scale)

	// Fully-resident hash baseline: the reference product and the comparison
	// row showing what bounded residency costs.
	hashCtx := spgemm.NewContext()
	hashCtx.Pool = sched.NewPool(workers)
	hashOpt := &spgemm.Options{Algorithm: spgemm.AlgHash, Workers: workers, Context: hashCtx}
	want, err := spgemm.Multiply(a, a, hashOpt)
	if err != nil {
		hashCtx.Pool.Close()
		return nil, err
	}
	d, allocs, bytes := timedAllocsMin(iters, func() {
		if _, e := spgemm.Multiply(a, a, hashOpt); e != nil {
			err = e
		}
	})
	hashCtx.Pool.Close()
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, reuseVariant{"hash", variant, d.Nanoseconds(), mflops(res.Flop, d), allocs, bytes, ""})

	res.OutBytes = want.NNZ() * 12
	res.Budget = res.OutBytes / 4
	if res.Budget < 64<<10 {
		res.Budget = 64 << 10
	}
	if res.OutBytes <= res.Budget {
		return nil, fmt.Errorf("outofcore: output %d bytes fits the %d-byte budget; nothing is out of core at scale %d",
			res.OutBytes, res.Budget, res.Scale)
	}

	// The live-bytes gauge is process-wide; other experiments in the same
	// process (snapshot runs) have already grown scratch, so the budget is
	// asserted on the growth this experiment causes, not the absolute level.
	// In the standalone CI smoke the baseline is zero and they coincide.
	live0 := mempool.LiveBytes()

	ctx := spgemm.NewContext()
	ctx.Pool = sched.NewPool(workers)
	defer ctx.Pool.Close()
	mkOpt := func(sink *spgemm.SpillSink[float64], st *spgemm.ExecStats) *spgemm.Options {
		return &spgemm.Options{
			Algorithm: spgemm.AlgSharded, Workers: workers, Context: ctx,
			// Cut stripes to a quarter of the budget so several can be
			// resident at once and the peak stays strictly under it.
			ShardMemBudget: res.Budget / 4,
			ShardSink:      sink, Stats: st,
		}
	}

	// Verification run: bit-identity and the per-stripe spill marking.
	var st spgemm.ExecStats
	sink := spgemm.NewSpillSink[float64]("", res.Budget)
	got, err := spgemm.Multiply(a, a, mkOpt(sink, &st))
	if err != nil {
		sink.Close()
		return nil, err
	}
	if got.NNZ() != want.NNZ() {
		sink.Close()
		return nil, fmt.Errorf("outofcore: spilled nnz %d, hash nnz %d", got.NNZ(), want.NNZ())
	}
	for i := range want.ColIdx {
		if got.ColIdx[i] != want.ColIdx[i] || got.Val[i] != want.Val[i] {
			sink.Close()
			return nil, fmt.Errorf("outofcore: spilled product differs from hash at entry %d", i)
		}
	}
	res.Stripes = len(st.Stripes)
	for _, s := range st.Stripes {
		if !s.Spilled {
			sink.Close()
			return nil, fmt.Errorf("outofcore: stripe [%d,%d) not marked spilled", s.Lo, s.Hi)
		}
	}
	res.Peak = sink.PeakResident()
	res.Spilled = sink.SpilledBytes()
	if err := sink.Close(); err != nil {
		return nil, err
	}

	// Timed loop: sink creation, spilling and teardown are all part of what
	// out-of-core execution costs, so they stay inside the timer.
	d, allocs, bytes = timedAllocsMin(iters, func() {
		s := spgemm.NewSpillSink[float64]("", res.Budget)
		if _, e := spgemm.Multiply(a, a, mkOpt(s, nil)); e != nil {
			err = e
		}
		if pk := s.PeakResident(); pk > res.Peak {
			res.Peak = pk
		}
		if e := s.Close(); e != nil && err == nil {
			err = e
		}
	})
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, reuseVariant{"sharded-spill", variant, d.Nanoseconds(), mflops(res.Flop, d), allocs, bytes, ""})

	if res.Peak > res.Budget {
		return nil, fmt.Errorf("outofcore: peak resident %d bytes exceeds the %d-byte budget", res.Peak, res.Budget)
	}
	res.Live = mempool.LiveBytes() - live0
	if res.Live > res.Budget {
		return nil, fmt.Errorf("outofcore: mempool live bytes grew %d, exceeding the %d-byte budget", res.Live, res.Budget)
	}
	return res, nil
}

// runOutOfCore renders the out-of-core experiment. Violated bounds surface
// as errors (non-zero exit), which is what the CI spill smoke relies on.
func runOutOfCore(cfg Config, w io.Writer) error {
	res, err := measureOutOfCore(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "G500 R-MAT scale %d, edge factor 16, A², flop=%d, iters=%d\n",
		res.Scale, res.Flop, cfg.reps())
	fmt.Fprintf(w, "output entries: %d bytes; resident budget: %d bytes; stripes: %d\n",
		res.OutBytes, res.Budget, res.Stripes)
	fmt.Fprintf(w, "peak resident: %d bytes; spill file: %d bytes; mempool growth: %d bytes\n",
		res.Peak, res.Spilled, res.Live)
	t := newTable("alg", "variant", "ms/iter", "MFLOPS", "allocs/iter")
	for _, r := range res.Rows {
		t.add(r.Alg, r.Variant, f2(float64(r.NsPerOp)/1e6), f1(r.MFLOPS), fmt.Sprintf("%d", r.Allocs))
	}
	t.write(w, cfg.CSV)
	fmt.Fprintln(w, "# expectation: the spilled product completes bit-identical to hash with peak residency under budget")
	return nil
}
