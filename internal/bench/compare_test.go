package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCompareSnapshotsGate exercises the bench regression gate end to end at
// tiny scale: a fresh snapshot compared against itself must pass with a
// loose timing tolerance, and a doctored baseline (faster times, fewer
// allocs, missing row) must produce one regression per doctored axis.
func TestCompareSnapshotsGate(t *testing.T) {
	cfg := Config{Preset: Tiny, Workers: 1, Seed: 42}
	snap, err := ReuseSnapshot(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "base.json")
	if err := WriteSnapshot(path, snap); err != nil {
		t.Fatal(err)
	}
	base, err := ReadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if base.Preset != "tiny" || base.Seed != 42 || len(base.Results) != len(snap.Results) {
		t.Fatalf("round-trip mismatch: %+v", base)
	}

	var out strings.Builder
	// Self-comparison with a very loose timing tolerance: allocs and bytes
	// are deterministic for a fixed workload, timing absorbs host jitter.
	regs, err := CompareSnapshots(base, 10, &out)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("self-comparison regressed: %v\n%s", regs, out.String())
	}
	for _, col := range []string{"verdict", "hash", "oneshot", "plan"} {
		if !strings.Contains(out.String(), col) {
			t.Fatalf("report missing %q:\n%s", col, out.String())
		}
	}

	// Doctor the baseline: claim it was 100x faster with zero allocs, and
	// that a variant existed that this run will not produce.
	doctored := *base
	doctored.Results = append([]reuseVariant(nil), base.Results...)
	for i := range doctored.Results {
		doctored.Results[i].NsPerOp /= 100
		doctored.Results[i].Allocs = 0
		doctored.Results[i].Bytes = 1
	}
	doctored.Results = append(doctored.Results, reuseVariant{Alg: "ghost", Variant: "plan"})
	regs, err = CompareSnapshots(&doctored, 0.5, &out)
	if err != nil {
		t.Fatal(err)
	}
	// SLOW + ALLOCS per row (the bytes budget's 1 MiB absolute slack
	// swallows tiny-scale footprints), plus the missing ghost row.
	wantAtLeast := 2*len(base.Results) + 1
	if len(regs) < wantAtLeast {
		t.Fatalf("doctored baseline produced %d regressions, want >= %d: %v", len(regs), wantAtLeast, regs)
	}
	foundGhost := false
	for _, r := range regs {
		if strings.Contains(r, "ghost/plan") && strings.Contains(r, "missing") {
			foundGhost = true
		}
	}
	if !foundGhost {
		t.Fatalf("missing-row regression not reported: %v", regs)
	}
}

func TestReadSnapshotErrors(t *testing.T) {
	if _, err := ReadSnapshot(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("expected error for missing file")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema": 99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshot(bad); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("expected schema error, got %v", err)
	}
}
