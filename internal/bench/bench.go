// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (Section 3 microbenchmarks and Section 5
// SpGEMM studies). Each experiment prints the same rows/series the paper
// plots, so paper-vs-measured comparisons are direct; EXPERIMENTS.md records
// the outcomes.
package bench

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	"repro/internal/matrix"
	"repro/internal/sched"
	"repro/internal/spgemm"
)

// Preset scales workloads: Tiny for unit tests, Quick for a laptop-class
// single run (the default), Full for paper-scale inputs (hours, and >64 GiB
// for the largest proxies).
type Preset int

const (
	Quick Preset = iota
	Tiny
	Full
)

// ParsePreset maps a CLI string to a Preset.
func ParsePreset(s string) (Preset, error) {
	switch s {
	case "", "quick":
		return Quick, nil
	case "tiny":
		return Tiny, nil
	case "full":
		return Full, nil
	}
	return Quick, fmt.Errorf("bench: unknown preset %q (want tiny|quick|full)", s)
}

// Config controls an experiment run.
type Config struct {
	Preset  Preset
	Workers int   // 0 = GOMAXPROCS
	Seed    int64 // RNG seed for generators
	Reps    int   // timing repetitions; 0 picks a preset default
	CSV     bool  // emit comma-separated values instead of aligned columns
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return sched.DefaultWorkers()
}

func (c Config) seed() int64 {
	if c.Seed != 0 {
		return c.Seed
	}
	return 20180618 // arXiv v2 date of the paper
}

func (c Config) reps() int {
	if c.Reps > 0 {
		return c.Reps
	}
	switch c.Preset {
	case Tiny:
		return 1
	case Full:
		return 10 // the paper: "average of ten SpGEMM runs"
	default:
		return 3
	}
}

// Experiment is one reproducible table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg Config, w io.Writer) error
}

// Registry lists every experiment in paper order.
func Registry() []Experiment {
	return []Experiment{
		{"fig2", "OpenMP-style scheduling cost vs iteration count (Figure 2)", runFig2},
		{"fig4", "Memory deallocation cost, single vs parallel (Figure 4)", runFig4},
		{"fig5", "Stanza bandwidth: DDR measured, MCDRAM modeled (Figure 5)", runFig5},
		{"fig8", "Per-phase time breakdown with ExecStats (Figure 8)", runFig8},
		{"fig9", "Heap SpGEMM scheduling variants on G500 (Figure 9)", runFig9},
		{"fig10", "Modeled MCDRAM speedup vs edge factor (Figure 10)", runFig10},
		{"fig11", "Scaling with density, ER and G500 (Figure 11)", runFig11},
		{"fig12", "Scaling with input size, ER and G500 (Figure 12)", runFig12},
		{"fig13", "Strong scaling with thread count (Figure 13)", runFig13},
		{"fig14", "SuiteSparse proxies: MFLOPS vs compression ratio (Figure 14)", runFig14},
		{"fig15", "Performance profiles over SuiteSparse proxies (Figure 15)", runFig15},
		{"fig16", "Square x tall-skinny SpGEMM (Figure 16)", runFig16},
		{"fig17", "Triangle counting LxU vs compression ratio (Figure 17)", runFig17},
		{"table2", "Matrix statistics: proxies vs paper (Table 2)", runTable2},
		{"table4", "Best-algorithm recipe from measured runs (Table 4)", runTable4},
		{"hmean", "Harmonic-mean unsorted speedup (Section 5.4.4)", runHMean},
		{"apps", "Graph applications built on SpGEMM (Section 1 workloads)", runApps},
		{"reuse", "Context/Plan reuse for iterative SpGEMM (inspector-executor)", runReuse},
		{"skewed", "Tiled vs hash/heap on skewed G500 A² (cache-conscious tiling)", runSkewed},
		{"outofcore", "Bounded-memory sharded SpGEMM through a spill-to-disk sink", runOutOfCore},
	}
}

// Find returns the experiment with the given id, or nil.
func Find(id string) *Experiment {
	for _, e := range Registry() {
		if e.ID == id {
			exp := e
			return &exp
		}
	}
	return nil
}

// Run executes one experiment by id ("all" runs the whole registry).
func Run(id string, cfg Config, w io.Writer) error {
	if id == "all" {
		for _, e := range Registry() {
			fmt.Fprintf(w, "=== %s: %s ===\n", e.ID, e.Title)
			if err := e.Run(cfg, w); err != nil {
				return fmt.Errorf("%s: %w", e.ID, err)
			}
			fmt.Fprintln(w)
		}
		return nil
	}
	e := Find(id)
	if e == nil {
		return fmt.Errorf("bench: unknown experiment %q", id)
	}
	fmt.Fprintf(w, "=== %s: %s ===\n", e.ID, e.Title)
	return e.Run(cfg, w)
}

// Environment prints the host configuration (the analogue of the paper's
// Table 3).
func Environment(w io.Writer) {
	fmt.Fprintf(w, "go: %s  os/arch: %s/%s  cpus: %d  gomaxprocs: %d\n",
		runtime.Version(), runtime.GOOS, runtime.GOARCH, runtime.NumCPU(), runtime.GOMAXPROCS(0))
}

// ---------------------------------------------------------------------------
// Timing and metric helpers
// ---------------------------------------------------------------------------

// timeAvg runs f reps times and returns the mean duration.
func timeAvg(reps int, f func()) time.Duration {
	if reps < 1 {
		reps = 1
	}
	var total time.Duration
	for r := 0; r < reps; r++ {
		start := time.Now()
		f()
		total += time.Since(start)
	}
	return total / time.Duration(reps)
}

// mflops converts a flop count and duration to the paper's MFLOPS metric
// (2·flop for multiply+add, per the SpGEMM convention).
func mflops(flop int64, d time.Duration) float64 {
	s := d.Seconds()
	if s <= 0 {
		return 0
	}
	return 2 * float64(flop) / s / 1e6
}

// timedMultiply runs one timed SpGEMM and returns MFLOPS. Errors (e.g. an
// algorithm rejecting unsorted input) surface to the caller.
func timedMultiply(a, b *matrix.CSR, opt *spgemm.Options, reps int) (float64, error) {
	flop, _ := matrix.Flop(a, b)
	var err error
	d := timeAvg(reps, func() {
		_, e := spgemm.Multiply(a, b, opt)
		if e != nil {
			err = e
		}
	})
	if err != nil {
		return 0, err
	}
	return mflops(flop, d), nil
}

// ---------------------------------------------------------------------------
// Output helpers
// ---------------------------------------------------------------------------

// table accumulates rows and renders either aligned columns or CSV.
type table struct {
	header []string
	rows   [][]string
}

func newTable(header ...string) *table { return &table{header: header} }

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) addf(format string, args ...any) {
	t.add(fmt.Sprintf(format, args...))
}

func (t *table) write(w io.Writer, csv bool) {
	if csv {
		writeCSVRow(w, t.header)
		for _, r := range t.rows {
			writeCSVRow(w, r)
		}
		return
	}
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeAligned(w, t.header, widths)
	for _, r := range t.rows {
		writeAligned(w, r, widths)
	}
}

func writeCSVRow(w io.Writer, cells []string) {
	for i, c := range cells {
		if i > 0 {
			fmt.Fprint(w, ",")
		}
		fmt.Fprint(w, c)
	}
	fmt.Fprintln(w)
}

func writeAligned(w io.Writer, cells []string, widths []int) {
	for i, c := range cells {
		pad := 0
		if i < len(widths) {
			pad = widths[i] - len(c)
		}
		if i > 0 {
			fmt.Fprint(w, "  ")
		}
		fmt.Fprint(w, c)
		for p := 0; p < pad; p++ {
			fmt.Fprint(w, " ")
		}
	}
	fmt.Fprintln(w)
}

// f1, f2 format floats compactly for tables.
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// linearFit returns slope and intercept of y over x (least squares), used
// for the fit lines the paper draws in Figures 14 and 17.
func linearFit(x, y []float64) (slope, intercept float64) {
	n := float64(len(x))
	if n < 2 {
		return 0, 0
	}
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	denom := n*sxx - sx*sx
	if denom == 0 {
		return 0, sy / n
	}
	slope = (n*sxy - sx*sy) / denom
	intercept = (sy - slope*sx) / n
	return slope, intercept
}

// harmonicMean returns the harmonic mean of positive values.
func harmonicMean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	var inv float64
	for _, v := range vs {
		if v <= 0 {
			return 0
		}
		inv += 1 / v
	}
	return float64(len(vs)) / inv
}

// sortByKey sorts idx so that key[idx[i]] ascends.
func sortByKey(idx []int, key []float64) {
	sort.Slice(idx, func(a, b int) bool { return key[idx[a]] < key[idx[b]] })
}
