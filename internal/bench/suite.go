package bench

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matrix"
	"repro/internal/spgemm"
)

// proxyMaxN caps the proxy row counts per preset (DESIGN.md: scaled-down
// stand-ins preserve degree and compression ratio, which is what Figures
// 14/15/17 plot against).
func proxyMaxN(p Preset) int {
	switch p {
	case Tiny:
		return 1 << 9
	case Full:
		return 0 // paper-size
	default:
		return 1 << 12
	}
}

// suiteResult holds one proxy matrix's measurements across both tracks.
type suiteResult struct {
	profile  gen.Profile
	cr       float64   // measured compression ratio of the proxy's A²
	sorted   []float64 // MFLOPS per sortedAlgos entry (0 = failed)
	unsorted []float64 // MFLOPS per unsortedAlgos entry
}

var suiteCache struct {
	sync.Mutex
	key  string
	runs []suiteResult
}

// runSuite measures all Table 2 proxies under both tracks, memoized per
// configuration so fig14/fig15/table4/hmean share one pass.
func runSuite(cfg Config) []suiteResult {
	key := fmt.Sprintf("%d/%d/%d/%d", cfg.Preset, cfg.Workers, cfg.seed(), cfg.reps())
	suiteCache.Lock()
	defer suiteCache.Unlock()
	if suiteCache.key == key {
		return suiteCache.runs
	}
	rng := rand.New(rand.NewSource(cfg.seed()))
	maxN := proxyMaxN(cfg.Preset)
	reps := cfg.reps()
	var runs []suiteResult
	for _, p := range gen.Table2 {
		a := gen.Proxy(p, maxN, rng)
		st := matrix.ProductStats(a, a)
		res := suiteResult{profile: p, cr: st.CompressionRatio}
		for _, alg := range sortedAlgos {
			mf, err := timedMultiply(a, a, &spgemm.Options{Algorithm: alg, Workers: cfg.Workers}, reps)
			if err != nil {
				mf = 0
			}
			res.sorted = append(res.sorted, mf)
		}
		ua := gen.Unsorted(a, rng)
		for _, alg := range unsortedAlgos {
			mf, err := timedMultiply(ua, ua, &spgemm.Options{Algorithm: alg, Workers: cfg.Workers, Unsorted: true}, reps)
			if err != nil {
				mf = 0
			}
			res.unsorted = append(res.unsorted, mf)
		}
		runs = append(runs, res)
	}
	suiteCache.key = key
	suiteCache.runs = runs
	return runs
}

// runFig14 reproduces Figure 14: MFLOPS of every algorithm on the 26
// SuiteSparse proxies, ordered by compression ratio, with the linear fit
// the paper draws.
func runFig14(cfg Config, w io.Writer) error {
	runs := runSuite(cfg)
	order := make([]int, len(runs))
	crs := make([]float64, len(runs))
	for i, r := range runs {
		order[i] = i
		crs[i] = r.cr
	}
	sortByKey(order, crs)

	fmt.Fprintln(w, "-- sorted track --")
	t := newTable(append([]string{"matrix", "CR"}, names(sortedAlgos)...)...)
	for _, i := range order {
		r := runs[i]
		row := []string{r.profile.Name, f2(r.cr)}
		for _, mf := range r.sorted {
			row = append(row, f1(mf))
		}
		t.add(row...)
	}
	t.write(w, cfg.CSV)
	writeFitLines(w, runs, order, true)

	fmt.Fprintln(w, "-- unsorted track --")
	t = newTable(append([]string{"matrix", "CR"}, namesSuffixed(unsortedAlgos, "(unsorted)")...)...)
	for _, i := range order {
		r := runs[i]
		row := []string{r.profile.Name, f2(r.cr)}
		for _, mf := range r.unsorted {
			row = append(row, f1(mf))
		}
		t.add(row...)
	}
	t.write(w, cfg.CSV)
	writeFitLines(w, runs, order, false)
	fmt.Fprintln(w, "# MFLOPS (higher is better); matrices ordered by measured compression ratio")
	fmt.Fprintln(w, "# expectation (paper): hash leads broadly; heap flat across CR; MKL stand-ins improve with CR")
	return nil
}

func names(algos []spgemm.Algorithm) []string {
	out := make([]string, len(algos))
	for i, a := range algos {
		out[i] = a.String()
	}
	return out
}

func namesSuffixed(algos []spgemm.Algorithm, suffix string) []string {
	out := names(algos)
	for i := range out {
		out[i] += suffix
	}
	return out
}

// writeFitLines prints per-algorithm linear fits of MFLOPS over log2(CR),
// the analogue of the fit lines in Figures 14 and 17.
func writeFitLines(w io.Writer, runs []suiteResult, order []int, sorted bool) {
	algos := sortedAlgos
	if !sorted {
		algos = unsortedAlgos
	}
	for ai, alg := range algos {
		var xs, ys []float64
		for _, i := range order {
			var mf float64
			if sorted {
				mf = runs[i].sorted[ai]
			} else {
				mf = runs[i].unsorted[ai]
			}
			if mf > 0 {
				xs = append(xs, log2(runs[i].cr))
				ys = append(ys, mf)
			}
		}
		slope, intercept := linearFit(xs, ys)
		fmt.Fprintf(w, "# fit %-24s MFLOPS ≈ %.1f + %.1f·log2(CR)\n", alg.String(), intercept, slope)
	}
}

func log2(v float64) float64 {
	if v <= 0 {
		return 0
	}
	l := 0.0
	for v >= 2 {
		v /= 2
		l++
	}
	return l + v - 1 // piecewise-linear log2 is fine for fits
}

// runFig15 reproduces Figure 15: Dolan-Moré performance profiles over the
// same runs — for each algorithm, the fraction of problems solved within a
// factor τ of the per-problem best.
func runFig15(cfg Config, w io.Writer) error {
	runs := runSuite(cfg)
	taus := []float64{1, 1.25, 1.5, 2, 2.5, 3, 4, 5}

	emit := func(label string, algos []spgemm.Algorithm, get func(r suiteResult) []float64) {
		fmt.Fprintf(w, "-- %s track --\n", label)
		// Build time ratios: best MFLOPS / own MFLOPS per problem.
		ratios := make([][]float64, len(algos))
		for _, r := range runs {
			vals := get(r)
			best := 0.0
			for _, v := range vals {
				if v > best {
					best = v
				}
			}
			if best == 0 {
				continue
			}
			for ai, v := range vals {
				if v > 0 {
					ratios[ai] = append(ratios[ai], best/v)
				} else {
					ratios[ai] = append(ratios[ai], inf)
				}
			}
		}
		t := newTable(append([]string{"tau"}, names(algos)...)...)
		for _, tau := range taus {
			row := []string{f2(tau)}
			for ai := range algos {
				n := 0
				for _, rr := range ratios[ai] {
					if rr <= tau {
						n++
					}
				}
				frac := 0.0
				if len(ratios[ai]) > 0 {
					frac = float64(n) / float64(len(ratios[ai]))
				}
				row = append(row, f2(frac))
			}
			t.add(row...)
		}
		t.write(w, cfg.CSV)
	}
	emit("sorted", sortedAlgos, func(r suiteResult) []float64 { return r.sorted })
	emit("unsorted", unsortedAlgos, func(r suiteResult) []float64 { return r.unsorted })
	fmt.Fprintln(w, "# fraction of problems within factor tau of the best algorithm (higher is better)")
	fmt.Fprintln(w, "# expectation (paper): hash dominates the sorted profile; hash/hashvec/mkl-inspector")
	fmt.Fprintln(w, "# share the unsorted lead; kokkos trails")
	return nil
}

const inf = 1e30

// runFig17 reproduces Figure 17: the SpGEMM between the triangular factors
// L·U of the reordered adjacency (triangle counting's wedge-generation
// step), on the Table 2 proxies, sorted algorithms, ordered by the L·U
// compression ratio.
func runFig17(cfg Config, w io.Writer) error {
	rng := rand.New(rand.NewSource(cfg.seed()))
	maxN := proxyMaxN(cfg.Preset)
	reps := cfg.reps()
	type res struct {
		name   string
		cr     float64
		mflops []float64
	}
	var results []res
	for _, p := range gen.Table2 {
		if cfg.Preset != Full && p.N > 5_000_000 && maxN == 0 {
			continue
		}
		a := gen.Proxy(p, maxN, rng)
		prep, err := graph.PrepareTriangles(a)
		if err != nil {
			return err
		}
		st := matrix.ProductStats(prep.L, prep.U)
		r := res{name: p.Name, cr: st.CompressionRatio}
		for _, alg := range sortedAlgos {
			mf, err := timedMultiply(prep.L, prep.U, &spgemm.Options{Algorithm: alg, Workers: cfg.Workers}, reps)
			if err != nil {
				mf = 0
			}
			r.mflops = append(r.mflops, mf)
		}
		results = append(results, r)
	}
	sort.Slice(results, func(a, b int) bool { return results[a].cr < results[b].cr })
	t := newTable(append([]string{"matrix", "CR(LxU)"}, names(sortedAlgos)...)...)
	for _, r := range results {
		row := []string{r.name, f2(r.cr)}
		for _, mf := range r.mflops {
			row = append(row, f1(mf))
		}
		t.add(row...)
	}
	t.write(w, cfg.CSV)
	fmt.Fprintln(w, "# MFLOPS (higher is better); L·U after degree reordering, output sorted")
	fmt.Fprintln(w, "# expectation (paper): hash/hashvec lead overall; heap best at low compression ratio")
	return nil
}

// runTable2 prints the proxy statistics next to the paper's Table 2 values.
func runTable2(cfg Config, w io.Writer) error {
	rng := rand.New(rand.NewSource(cfg.seed()))
	maxN := proxyMaxN(cfg.Preset)
	t := newTable("matrix", "n", "nnz", "flop", "nnzC", "CR(proxy)", "CR(paper)")
	for _, p := range gen.Table2 {
		a := gen.Proxy(p, maxN, rng)
		st := matrix.ProductStats(a, a)
		t.add(p.Name,
			fmt.Sprintf("%d", a.Rows),
			fmt.Sprintf("%d", a.NNZ()),
			fmt.Sprintf("%d", st.Flop),
			fmt.Sprintf("%d", st.NNZOut),
			f2(st.CompressionRatio),
			f2(p.CompressionRatio()))
	}
	t.write(w, cfg.CSV)
	fmt.Fprintln(w, "# proxies are scaled-down stand-ins preserving degree and compression ratio (DESIGN.md)")
	return nil
}

// runTable4 derives the paper's Table 4 recipe from measured data: for each
// scenario it reports which algorithm won most often.
func runTable4(cfg Config, w io.Writer) error {
	runs := runSuite(cfg)
	t := newTable("scenario", "winner", "paper_says")

	// (a) Real data by compression ratio.
	winHigh := winner(runs, sortedAlgos, func(r suiteResult) ([]float64, bool) { return r.sorted, r.cr > 2 })
	winLow := winner(runs, sortedAlgos, func(r suiteResult) ([]float64, bool) { return r.sorted, r.cr <= 2 })
	t.add("AxA sorted, CR>2", winHigh, "Hash")
	t.add("AxA sorted, CR<=2", winLow, "Hash")
	winHighU := winner(runs, unsortedAlgos, func(r suiteResult) ([]float64, bool) { return r.unsorted, r.cr > 2 })
	winLowU := winner(runs, unsortedAlgos, func(r suiteResult) ([]float64, bool) { return r.unsorted, r.cr <= 2 })
	t.add("AxA unsorted, CR>2", winHighU, "MKL-inspector")
	t.add("AxA unsorted, CR<=2", winLowU, "Hash")

	// (b) Synthetic data: sparse/dense × uniform/skewed.
	rng := rand.New(rand.NewSource(cfg.seed()))
	scale := 10
	if cfg.Preset == Tiny {
		scale = 8
	}
	reps := cfg.reps()
	synth := func(pattern string, ef int) *matrix.CSR {
		if pattern == "uniform" {
			return gen.ER(scale, ef, rng)
		}
		return gen.RMAT(scale, ef, gen.G500Params, rng)
	}
	for _, pattern := range []string{"uniform", "skewed"} {
		for _, ef := range []int{4, 16} {
			density := "sparse"
			if ef > 8 {
				density = "dense"
			}
			a := synth(pattern, ef)
			ua := gen.Unsorted(a, rng)
			best := func(algos []spgemm.Algorithm, in *matrix.CSR, unsorted bool) string {
				bestName, bestMf := "-", 0.0
				for _, alg := range algos {
					mf, err := timedMultiply(in, in, &spgemm.Options{Algorithm: alg, Workers: cfg.Workers, Unsorted: unsorted}, reps)
					if err == nil && mf > bestMf {
						bestMf = mf
						bestName = alg.String()
					}
				}
				return bestName
			}
			t.add(fmt.Sprintf("AxA sorted, %s %s", density, pattern), best(sortedAlgos, a, false), paperSynth(true, density, pattern))
			t.add(fmt.Sprintf("AxA unsorted, %s %s", density, pattern), best(unsortedAlgos, ua, true), paperSynth(false, density, pattern))
		}
	}
	t.write(w, cfg.CSV)
	fmt.Fprintln(w, "# winner = algorithm with the best measured MFLOPS in each scenario")
	return nil
}

// paperSynth returns the paper's Table 4(b) cell.
func paperSynth(sorted bool, density, pattern string) string {
	if sorted {
		if density == "dense" && pattern == "skewed" {
			return "Hash"
		}
		return "Heap"
	}
	if density == "dense" && pattern == "skewed" {
		return "Hash"
	}
	return "HashVec"
}

// winner returns the name of the algorithm that wins the most problems in
// the filtered subset.
func winner(runs []suiteResult, algos []spgemm.Algorithm, get func(r suiteResult) ([]float64, bool)) string {
	wins := make([]int, len(algos))
	any := false
	for _, r := range runs {
		vals, ok := get(r)
		if !ok {
			continue
		}
		bi, bv := -1, 0.0
		for i, v := range vals {
			if v > bv {
				bv = v
				bi = i
			}
		}
		if bi >= 0 {
			wins[bi]++
			any = true
		}
	}
	if !any {
		return "-"
	}
	bi := 0
	for i := range wins {
		if wins[i] > wins[bi] {
			bi = i
		}
	}
	return algos[bi].String()
}

// runHMean reproduces the Section 5.4.4 statistic: the harmonic mean, over
// all proxies, of each algorithm's unsorted-over-sorted speedup. The paper
// reports 1.58x for MKL, 1.63x for Hash and 1.68x for HashVector on KNL.
func runHMean(cfg Config, w io.Writer) error {
	runs := runSuite(cfg)
	pairs := []struct {
		name     string
		sortedI  int // index into sortedAlgos
		unsortI  int // index into unsortedAlgos
		paperVal string
	}{
		{"mkl", 0, 0, "1.58"},
		{"hash", 2, 3, "1.63"},
		{"hashvec", 3, 4, "1.68"},
	}
	t := newTable("algorithm", "hmean_unsorted_speedup", "paper")
	for _, p := range pairs {
		var speedups []float64
		for _, r := range runs {
			s, u := r.sorted[p.sortedI], r.unsorted[p.unsortI]
			if s > 0 && u > 0 {
				speedups = append(speedups, u/s)
			}
		}
		t.add(p.name, f2(harmonicMean(speedups)), p.paperVal)
	}
	t.write(w, cfg.CSV)
	fmt.Fprintln(w, "# speedup of operating unsorted over sorted, harmonic mean across SuiteSparse proxies")
	return nil
}
