package bench

import (
	"encoding/json"
	"math"
	"os"
	"strings"
	"testing"
	"time"
)

func TestParsePreset(t *testing.T) {
	cases := map[string]Preset{"": Quick, "quick": Quick, "tiny": Tiny, "full": Full}
	for s, want := range cases {
		got, err := ParsePreset(s)
		if err != nil || got != want {
			t.Fatalf("ParsePreset(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParsePreset("bogus"); err == nil {
		t.Fatal("expected error for unknown preset")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}
	if c.workers() < 1 {
		t.Fatal("workers default")
	}
	if c.seed() == 0 {
		t.Fatal("seed default")
	}
	if c.reps() != 3 {
		t.Fatalf("quick reps = %d", c.reps())
	}
	if (Config{Preset: Tiny}).reps() != 1 || (Config{Preset: Full}).reps() != 10 {
		t.Fatal("preset reps")
	}
	if (Config{Reps: 7}).reps() != 7 {
		t.Fatal("explicit reps")
	}
}

func TestRegistryCompleteAndUnique(t *testing.T) {
	reg := Registry()
	want := []string{"fig2", "fig4", "fig5", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "table2", "table4", "hmean", "apps", "reuse", "skewed", "outofcore"}
	if len(reg) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(reg), len(want))
	}
	seen := map[string]bool{}
	for i, e := range reg {
		if e.ID != want[i] {
			t.Fatalf("registry[%d] = %s, want %s", i, e.ID, want[i])
		}
		if seen[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil || e.Title == "" {
			t.Fatalf("%s: incomplete experiment", e.ID)
		}
	}
	if Find("fig11") == nil || Find("nope") != nil {
		t.Fatal("Find broken")
	}
}

func TestReuseSnapshot(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short")
	}
	s, err := ReuseSnapshot(Config{Preset: Tiny})
	if err != nil {
		t.Fatal(err)
	}
	// 6 reuse rows (2 algs × 3 variants) + 4 skewed G500 rows + 2 outofcore
	// rows (hash baseline and sharded-spill).
	if s.Experiment != "reuse" || s.Scale != 8 || len(s.Results) != 12 {
		t.Fatalf("unexpected snapshot: %+v", s)
	}
	var skewedRows, oocRows int
	for _, r := range s.Results {
		if r.Variant == "g500-s8" {
			skewedRows++
		}
		if r.Variant == "outofcore-s8" {
			oocRows++
		}
		if r.Alg == "auto" && r.Resolved == "" {
			t.Fatalf("auto row missing resolved algorithm: %+v", r)
		}
	}
	if skewedRows != 4 {
		t.Fatalf("want 4 skewed rows, got %d", skewedRows)
	}
	if oocRows != 2 {
		t.Fatalf("want 2 outofcore rows, got %d", oocRows)
	}
	for _, r := range s.Results {
		if r.NsPerOp <= 0 || r.MFLOPS <= 0 {
			t.Fatalf("degenerate measurement: %+v", r)
		}
	}
	// The reuse variants must allocate strictly less than one-shot.
	byVariant := map[string]uint64{}
	for _, r := range s.Results {
		if r.Alg == "hash" {
			byVariant[r.Variant] = r.Allocs
		}
	}
	if byVariant["context"] >= byVariant["oneshot"] || byVariant["plan"] > byVariant["context"] {
		t.Fatalf("allocs not monotone: %v", byVariant)
	}
	path := t.TempDir() + "/snap.json"
	if err := WriteSnapshot(path, s); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Experiment != s.Experiment || len(back.Results) != len(s.Results) {
		t.Fatalf("round-trip mismatch: %+v", back)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var sb strings.Builder
	if err := Run("nope", Config{Preset: Tiny}, &sb); err == nil {
		t.Fatal("expected error")
	}
}

// TestEveryExperimentRunsTiny executes the full registry at the Tiny preset
// — the end-to-end smoke test of the whole reproduction harness.
func TestEveryExperimentRunsTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry run skipped in -short")
	}
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var sb strings.Builder
			if err := e.Run(Config{Preset: Tiny}, &sb); err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			out := sb.String()
			if len(out) < 40 {
				t.Fatalf("%s produced implausibly short output: %q", e.ID, out)
			}
			if strings.Contains(out, "NaN") {
				t.Fatalf("%s output contains NaN:\n%s", e.ID, out)
			}
		})
	}
}

func TestRunAllDispatch(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short")
	}
	var sb strings.Builder
	// Run a single experiment through the dispatcher.
	if err := Run("fig2", Config{Preset: Tiny}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "=== fig2") {
		t.Fatal("missing banner")
	}
}

func TestCSVOutputMode(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short")
	}
	var sb strings.Builder
	if err := Run("fig2", Config{Preset: Tiny, CSV: true}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "iterations,static_ms,dynamic_ms,guided_ms") {
		t.Fatalf("CSV header missing:\n%s", sb.String())
	}
}

func TestEnvironment(t *testing.T) {
	var sb strings.Builder
	Environment(&sb)
	if !strings.Contains(sb.String(), "gomaxprocs") {
		t.Fatal("environment output missing fields")
	}
}

func TestMFLOPSMetric(t *testing.T) {
	// 1e6 flop in 1s = 2 MFLOPS (multiply+add convention).
	if got := mflops(1_000_000, time.Second); math.Abs(got-2) > 1e-9 {
		t.Fatalf("mflops = %v", got)
	}
	if mflops(100, 0) != 0 {
		t.Fatal("zero duration must give 0")
	}
}

func TestTimeAvg(t *testing.T) {
	calls := 0
	d := timeAvg(5, func() { calls++ })
	if calls != 5 {
		t.Fatalf("calls = %d", calls)
	}
	if d < 0 {
		t.Fatal("negative duration")
	}
	timeAvg(0, func() { calls++ })
	if calls != 6 {
		t.Fatal("reps<1 should clamp to 1")
	}
}

func TestHarmonicMean(t *testing.T) {
	if hm := harmonicMean([]float64{1, 1, 1}); math.Abs(hm-1) > 1e-12 {
		t.Fatalf("hm = %v", hm)
	}
	// HM of 2 and 6 is 3.
	if hm := harmonicMean([]float64{2, 6}); math.Abs(hm-3) > 1e-12 {
		t.Fatalf("hm = %v", hm)
	}
	if harmonicMean(nil) != 0 || harmonicMean([]float64{1, 0}) != 0 {
		t.Fatal("degenerate cases")
	}
}

func TestLinearFit(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{1, 3, 5, 7} // y = 2x + 1
	slope, intercept := linearFit(x, y)
	if math.Abs(slope-2) > 1e-9 || math.Abs(intercept-1) > 1e-9 {
		t.Fatalf("fit = %v, %v", slope, intercept)
	}
	if s, _ := linearFit([]float64{1}, []float64{1}); s != 0 {
		t.Fatal("underdetermined fit should return 0 slope")
	}
}

func TestTableRendering(t *testing.T) {
	tab := newTable("a", "bb")
	tab.add("1", "2")
	tab.add("333", "4")
	var sb strings.Builder
	tab.write(&sb, false)
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %v", lines)
	}
	// Aligned: the second column starts at the same offset on every line.
	if !strings.HasPrefix(lines[0], "a    bb") {
		t.Fatalf("header = %q", lines[0])
	}
	var csv strings.Builder
	tab.write(&csv, true)
	if !strings.HasPrefix(csv.String(), "a,bb\n1,2\n") {
		t.Fatalf("csv = %q", csv.String())
	}
}
