package bench

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/gen"
	"repro/internal/matrix"
	"repro/internal/obs"
	"repro/internal/spgemm"
)

// tracedImbalance runs f with a tracer observing its worker-pool regions and
// returns the resulting load-imbalance summary. When the process already has
// an active tracer (the -trace flag), it is reused and the delta attributed to
// f is returned — so the trace file still sees the breakdown's spans.
// Otherwise a temporary tracer is installed for the duration of f.
func tracedImbalance(f func()) obs.Imbalance {
	if tr := obs.Active(); tr != nil {
		before := tr.Imbalance()
		f()
		return tr.Imbalance().Sub(before)
	}
	tr := obs.NewTracer()
	obs.SetActive(tr)
	f()
	obs.SetActive(nil)
	return tr.Imbalance()
}

// runFig8 reproduces the paper's Figure 8-style phase breakdown: for each
// algorithm, the share of execution time spent in the partition, symbolic,
// alloc, numeric and assemble phases, measured with the ExecStats
// instrumentation, plus the accumulator counters (hash collision factor,
// heap pushes, level-2 overflows) that explain the numeric-phase behavior.
// Squares one ER and one G500 matrix; `spgemm-bench -breakdown` is a
// shortcut for this experiment.
func runFig8(cfg Config, w io.Writer) error {
	scale, ef := 12, 8
	switch cfg.Preset {
	case Tiny:
		scale, ef = 7, 4
	case Full:
		scale, ef = 16, 16
	}
	rng := rand.New(rand.NewSource(cfg.seed()))
	inputs := []struct {
		name string
		m    *matrix.CSR
	}{
		{"ER", gen.ER(scale, ef, rng)},
		{"G500", gen.RMAT(scale, ef, gen.G500Params, rng)},
	}
	algs := []spgemm.Algorithm{
		spgemm.AlgHash, spgemm.AlgHashVec, spgemm.AlgHeap, spgemm.AlgSPA,
		spgemm.AlgMKL, spgemm.AlgMKLInspector, spgemm.AlgKokkos, spgemm.AlgTiled,
	}

	t := newTable("matrix", "alg", "total_ms", "partition%", "symbolic%", "alloc%", "numeric%", "assemble%", "mflops", "cf", "heap_pushes", "l2_overflow", "imb")
	reports := make(map[string]obs.Imbalance)
	tiledStats := make(map[string]*spgemm.ExecStats)
	for _, in := range inputs {
		flop, _ := matrix.Flop(in.m, in.m)
		for _, alg := range algs {
			var st spgemm.ExecStats
			opt := &spgemm.Options{Algorithm: alg, Workers: cfg.Workers, Stats: &st}
			var err error
			var d time.Duration
			imb := tracedImbalance(func() {
				d = timeAvg(cfg.reps(), func() {
					if _, e := spgemm.Multiply(in.m, in.m, opt); e != nil {
						err = e
					}
				})
			})
			if err != nil {
				return fmt.Errorf("fig8 %s/%v: %w", in.name, alg, err)
			}
			if alg == spgemm.AlgHash {
				reports[in.name] = imb
			}
			if alg == spgemm.AlgTiled {
				s := st
				tiledStats[in.name] = &s
			}
			row := []string{in.name, alg.String(), fmt.Sprintf("%.2f", float64(st.Total)/float64(time.Millisecond))}
			for p := spgemm.Phase(0); p < spgemm.NumPhases; p++ {
				pct := 0.0
				if st.Total > 0 {
					pct = 100 * float64(st.Phases[p]) / float64(st.Total)
				}
				row = append(row, f1(pct))
			}
			tot := st.TotalWorker()
			row = append(row, f1(mflops(flop, d)), f2(st.CollisionFactor()),
				fmt.Sprintf("%d", tot.HeapPushes), fmt.Sprintf("%d", tot.L2Overflows),
				f2(imb.Ratio()))
			t.add(row...)
		}
	}
	t.write(w, cfg.CSV)
	fmt.Fprintln(w, "# phase shares of total wall time; cf = hash collision factor (Eq. 2)")
	fmt.Fprintln(w, "# imb = max/mean per-worker busy time over the pool regions of the runs")
	fmt.Fprintln(w, "# expectation (paper): numeric dominates; symbolic adds ~30-50% on two-phase")
	fmt.Fprintln(w, "# algorithms; G500 raises the collision factor and heap pushes vs ER")
	for _, in := range inputs {
		if imb, ok := reports[in.name]; ok && len(imb.Workers) > 0 {
			fmt.Fprintf(w, "\n# load balance, %s / hash (%d reps):\n%s", in.name, cfg.reps(), imb.Report())
		}
	}
	// The tiled kernel's ExecStats-side imbalance view: per worker, the rows
	// it owned, the flop it executed, and how many heavy (row, tile) units
	// were routed through the cache-resident tiling path. Zero overflows
	// means every row fit one analytic tile at this preset's scale; the
	// skewed experiment (spgemm-bench -exp skewed) is the heavy regime.
	for _, in := range inputs {
		st := tiledStats[in.name]
		if st == nil || len(st.Workers) == 0 {
			continue
		}
		fmt.Fprintf(w, "\n# tiled per-worker routing, %s (%d reps):\n", in.name, cfg.reps())
		for wi := range st.Workers {
			ws := st.Workers[wi]
			fmt.Fprintf(w, "#   worker %d: rows=%d flop=%d l2_overflows=%d\n", wi, ws.Rows, ws.Flop, ws.L2Overflows)
		}
	}
	return nil
}
