package bench

import (
	"encoding/json"
	"os"
	"runtime"
)

// Snapshot is the machine-readable record of a reuse-experiment run, written
// by spgemm-bench -snapshot. Checked-in snapshots (BENCH_spgemm.json at the
// repository root) give later sessions a baseline to diff regressions
// against; the file is deterministic modulo timings for a fixed
// preset/seed/workers triple.
type Snapshot struct {
	Schema     int            `json:"schema"`
	Experiment string         `json:"experiment"`
	Go         string         `json:"go"`
	OS         string         `json:"os"`
	Arch       string         `json:"arch"`
	CPUs       int            `json:"cpus"`
	Workers    int            `json:"workers"`
	Preset     string         `json:"preset"`
	Seed       int64          `json:"seed"`
	Scale      int            `json:"scale"`
	EdgeFactor int            `json:"edge_factor"`
	Flop       int64          `json:"flop"`
	Iters      int            `json:"iters"`
	Results    []reuseVariant `json:"results"`
}

// presetName is the inverse of ParsePreset, for the snapshot record.
func presetName(p Preset) string {
	switch p {
	case Tiny:
		return "tiny"
	case Full:
		return "full"
	default:
		return "quick"
	}
}

// ReuseSnapshot runs the reuse experiment plus the skewed G500 and
// out-of-core experiments and packages the results. The skewed rows (variant
// "g500-s<scale>") carry the tiled-vs-best comparison the -compare win gate
// enforces; the outofcore rows (variant "outofcore-s<scale>") track the
// spill-backed sharded engine so residency-bound regressions show up in the
// same diff.
func ReuseSnapshot(cfg Config) (*Snapshot, error) {
	scale, flop, rows, err := measureReuse(cfg)
	if err != nil {
		return nil, err
	}
	_, _, skewedRows, err := measureSkewed(cfg)
	if err != nil {
		return nil, err
	}
	rows = append(rows, skewedRows...)
	ooc, err := measureOutOfCore(cfg)
	if err != nil {
		return nil, err
	}
	rows = append(rows, ooc.Rows...)
	return &Snapshot{
		Schema:     1,
		Experiment: "reuse",
		Go:         runtime.Version(),
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		Workers:    cfg.workers(),
		Preset:     presetName(cfg.Preset),
		Seed:       cfg.seed(),
		Scale:      scale,
		EdgeFactor: 16,
		Flop:       flop,
		Iters:      cfg.reps(),
		Results:    rows,
	}, nil
}

// WriteSnapshot serializes s as indented JSON to path.
func WriteSnapshot(path string, s *Snapshot) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
