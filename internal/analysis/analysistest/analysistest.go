// Package analysistest checks an analyzer against a testdata package of
// `// want` comments, in the style of x/tools' analysistest (reimplemented
// on the repository's stdlib-only analysis framework).
//
// Each line of a testdata source file may carry an expectation:
//
//	h.used = make([]int32, 4) // want `allocation in hotpath`
//
// The string between backquotes (or double quotes) is a regular expression
// that must match the message of a diagnostic reported on that line. Lines
// without a want comment must receive no diagnostic, and every want must be
// matched — both directions are errors.
package analysistest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"testing"

	"repro/internal/analysis"
)

// wantRe matches the expectation clause: // want `re` `re2` ... (or "re").
// A single want comment may carry several patterns, one per expected
// diagnostic on that line.
var (
	wantRe    = regexp.MustCompile("// want (.+)$")
	patternRe = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")
)

// Run loads the package in dir (a directory of .go files, typically
// testdata/src/a relative to the analyzer's test), applies the analyzer and
// compares diagnostics against the want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	l := analysis.NewLoader("")
	lp, err := l.LoadDir(abs)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	for _, terr := range lp.TypeErrors {
		t.Logf("typecheck (non-fatal): %v", terr)
	}
	diags, err := analysis.RunAnalyzers(lp, l.Fset(), []*analysis.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}

	type key struct {
		file string
		line int
	}
	// Collect wants from the comment maps of every file.
	wants := make(map[key][]*regexp.Regexp)
	for _, f := range lp.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pats := patternRe.FindAllStringSubmatch(m[1], -1)
				if len(pats) == 0 {
					t.Fatalf("want comment with no quoted pattern: %s", c.Text)
				}
				pos := l.Fset().Position(c.Pos())
				k := key{file: filepath.Base(pos.Filename), line: pos.Line}
				for _, pm := range pats {
					pat := pm[1]
					if pat == "" {
						pat = pm[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("bad want pattern %q: %v", pat, err)
					}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}

	// Match diagnostics against wants.
	for _, d := range diags {
		pos := l.Fset().Position(d.Pos)
		k := key{file: filepath.Base(pos.Filename), line: pos.Line}
		ws := wants[k]
		matched := -1
		for i, re := range ws {
			if re.MatchString(d.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("%s: unexpected diagnostic: %s", posString(pos), d.Message)
			continue
		}
		wants[k] = append(ws[:matched], ws[matched+1:]...)
	}
	for k, ws := range wants {
		for _, re := range ws {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, re)
		}
	}
}

func posString(p token.Position) string {
	return fmt.Sprintf("%s:%d:%d", filepath.Base(p.Filename), p.Line, p.Column)
}
