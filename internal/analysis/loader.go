package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// This file is the package loader behind spgemm-lint: `go list -json -deps`
// enumerates packages and their source files, and go/types typechecks them
// from source. Root packages (the ones analyzers run over) are checked with
// full function bodies and complete type information; dependencies — all the
// way down the standard library — are checked with IgnoreFuncBodies, which
// keeps a whole-module load around a second. No export data, build cache or
// third-party loader is involved, so the loader works on any toolchain that
// has `go` on PATH.

// LoadedPackage is one typechecked package ready for analysis.
type LoadedPackage struct {
	ImportPath string
	Dir        string
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
	// TypeErrors holds non-fatal typecheck problems. Analyzers still run —
	// with partial type information — when this is non-empty.
	TypeErrors []error
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Imports    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Loader loads and typechecks packages of the module rooted at (or above)
// Dir. It memoizes typechecked packages, so loading several overlapping
// patterns or testdata directories shares the dependency work.
type Loader struct {
	// Dir is the directory `go list` runs in; "" means the process working
	// directory. It must lie inside the target module.
	Dir string

	fset *token.FileSet
	meta map[string]*listPkg
	pkgs map[string]*types.Package
	// checking guards against import cycles (invalid code) during the
	// recursive dependency walk.
	checking map[string]bool
}

// NewLoader returns a loader running `go list` from dir.
func NewLoader(dir string) *Loader {
	return &Loader{
		Dir:      dir,
		fset:     token.NewFileSet(),
		meta:     make(map[string]*listPkg),
		pkgs:     make(map[string]*types.Package),
		checking: make(map[string]bool),
	}
}

// Fset returns the loader's single file set (shared across all packages).
func (l *Loader) Fset() *token.FileSet { return l.fset }

// goList runs `go list -e -json -deps args...` and folds the results into
// l.meta.
func (l *Loader) goList(args ...string) error {
	cmd := exec.Command("go", append([]string{
		"list", "-e", "-json=ImportPath,Dir,GoFiles,Imports,Standard,DepOnly,Error", "-deps",
	}, args...)...)
	cmd.Dir = l.Dir
	// CGO off selects the pure-Go file sets (net, os/user, ...), which are
	// the only ones a source-level typechecker can follow.
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, errb.String())
	}
	dec := json.NewDecoder(&out)
	for dec.More() {
		var p listPkg
		if err := dec.Decode(&p); err != nil {
			return fmt.Errorf("go list: decoding output: %v", err)
		}
		if prev, ok := l.meta[p.ImportPath]; ok {
			// Keep the root-flavored entry: DepOnly=false wins.
			if prev.DepOnly && !p.DepOnly {
				l.meta[p.ImportPath] = &p
			}
			continue
		}
		pp := p
		l.meta[p.ImportPath] = &pp
	}
	return nil
}

// Load typechecks the packages matched by the patterns (e.g. "./...") with
// full bodies and returns them sorted by import path.
func (l *Loader) Load(patterns ...string) ([]*LoadedPackage, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	if err := l.goList(patterns...); err != nil {
		return nil, err
	}
	var roots []*listPkg
	for _, p := range l.meta {
		if !p.DepOnly {
			roots = append(roots, p)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].ImportPath < roots[j].ImportPath })
	var out []*LoadedPackage
	for _, p := range roots {
		if p.Error != nil {
			return nil, fmt.Errorf("package %s: %s", p.ImportPath, p.Error.Err)
		}
		if len(p.GoFiles) == 0 {
			continue
		}
		lp, err := l.checkRoot(p)
		if err != nil {
			return nil, err
		}
		out = append(out, lp)
	}
	return out, nil
}

// LoadDir parses and typechecks the .go files of one directory that `go
// list` patterns do not reach (analysistest's testdata packages live under
// testdata/, which the go tool skips). Imports are resolved through the
// module's dependency graph like any other load.
func (l *Loader) LoadDir(dir string) (*LoadedPackage, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, e.Name())
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	sort.Strings(files)
	p := &listPkg{ImportPath: dir, Dir: dir, GoFiles: files}
	return l.checkRoot(p)
}

// checkRoot typechecks one package with full bodies and full type info.
func (l *Loader) checkRoot(p *listPkg) (*LoadedPackage, error) {
	files, err := l.parseFiles(p)
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var terrs []error
	conf := types.Config{
		Importer:    (*loaderImporter)(l),
		FakeImportC: true,
		Error:       func(err error) { terrs = append(terrs, err) },
	}
	pkg, _ := conf.Check(p.ImportPath, l.fset, files, info)
	return &LoadedPackage{
		ImportPath: p.ImportPath,
		Dir:        p.Dir,
		Files:      files,
		Pkg:        pkg,
		Info:       info,
		TypeErrors: terrs,
	}, nil
}

// parseFiles parses the package's GoFiles with comments retained (the
// hotalloc analyzer reads //spgemm:hotpath directives).
func (l *Loader) parseFiles(p *listPkg) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range p.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(p.Dir, name)
		}
		f, err := parser.ParseFile(l.fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// loaderImporter resolves an import path to a typechecked package, checking
// dependencies from source with IgnoreFuncBodies.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	meta, ok := l.meta[path]
	if !ok {
		// Import not reached by the initial pattern walk (testdata packages
		// may import anything in the module). Fetch its metadata on demand.
		if err := l.goList(path); err != nil {
			return nil, err
		}
		meta, ok = l.meta[path]
		if !ok {
			return nil, fmt.Errorf("cannot resolve import %q", path)
		}
	}
	if meta.Error != nil {
		return nil, fmt.Errorf("import %s: %s", path, meta.Error.Err)
	}
	if l.checking[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	l.checking[path] = true
	defer delete(l.checking, path)

	files, err := l.parseFiles(meta)
	if err != nil {
		return nil, err
	}
	conf := types.Config{
		Importer:         li,
		FakeImportC:      true,
		IgnoreFuncBodies: true,
		// Dependencies only need their exported API shape; tolerate errors
		// (e.g. exotic build-tagged corners of the stdlib) and keep going.
		Error: func(error) {},
	}
	pkg, err := conf.Check(path, l.fset, files, nil)
	if pkg == nil {
		return nil, fmt.Errorf("typechecking import %s: %v", path, err)
	}
	// Mark complete even on partial errors so the result is importable.
	pkg.MarkComplete()
	l.pkgs[path] = pkg
	return pkg, nil
}

// RunAnalyzers runs each analyzer over the package and returns the combined
// diagnostics in position order.
func RunAnalyzers(lp *LoadedPackage, fset *token.FileSet, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     lp.Files,
			Pkg:       lp.Pkg,
			TypesInfo: lp.Info,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %v", a.Name, lp.ImportPath, err)
		}
		for i := range pass.Diagnostics {
			d := pass.Diagnostics[i]
			d.Analyzer = a.Name
			diags = append(diags, d)
		}
	}
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}
