package compilerfb

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func readCorpus(t *testing.T, name string) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatalf("read corpus: %v", err)
	}
	return string(data)
}

func scanFixture(t *testing.T) *HotIndex {
	t.Helper()
	ix, err := ScanHotFuncs("testdata", []string{"hotpkg"})
	if err != nil {
		t.Fatalf("ScanHotFuncs: %v", err)
	}
	return ix
}

func TestScanHotFuncs(t *testing.T) {
	ix := scanFixture(t)
	fns := ix.Funcs()
	if len(fns) != 2 {
		t.Fatalf("want 2 hotpath functions, got %v", fns)
	}
	if fns[0].Name != "table.Upsert" || fns[0].File != "hotpkg/hot.go" {
		t.Errorf("first func = %+v, want table.Upsert in hotpkg/hot.go", fns[0])
	}
	if fns[1].Name != "scatter" {
		t.Errorf("second func = %+v, want scatter", fns[1])
	}
	// Line extents drive Enclosing: a line inside Upsert's body attributes
	// to it, setup's body attributes to nothing.
	if hf, ok := ix.Enclosing("hotpkg/hot.go", fns[0].StartLine+1); !ok || hf.Name != "table.Upsert" {
		t.Errorf("Enclosing(body of Upsert) = %v, %v", hf, ok)
	}
	if _, ok := ix.Enclosing("hotpkg/hot.go", 38); ok {
		t.Error("Enclosing(setup body) matched a hotpath function")
	}
	if _, ok := ix.Enclosing("other.go", fns[0].StartLine); ok {
		t.Error("Enclosing matched in a file with no hotpath functions")
	}
}

func TestMatchHot(t *testing.T) {
	ix := scanFixture(t)
	for _, raw := range []string{
		"(*table).Upsert",
		"(*table[go.shape.int32]).Upsert",
		"hotpkg.(*table[go.shape.int32]).Upsert",
		"scatter",
		"scatter[go.shape.int32]",
		"hotpkg.scatter",
	} {
		if _, ok := ix.MatchHot("hotpkg/hot.go", raw); !ok {
			t.Errorf("MatchHot(%q) = false, want true", raw)
		}
	}
	for _, raw := range []string{"setup", "hotpkg.setup", "Upsert.table"} {
		if _, ok := ix.MatchHot("hotpkg/hot.go", raw); ok {
			t.Errorf("MatchHot(%q) = true, want false", raw)
		}
	}
}

func TestCanonicalFuncName(t *testing.T) {
	cases := []struct{ raw, want string }{
		{"sortPairs[go.shape.float64]", "sortPairs"},
		{"(*HashTableG[go.shape.float64]).Upsert", "HashTableG.Upsert"},
		{"accum.(*SPAG[go.shape.float64]).Upsert", "SPAG.Upsert"},
		{"(*repro/internal/accum.HashTableG[go.shape.float64]).Reset", "HashTableG.Reset"},
		{"semiring.PlusTimesF64.Mul", "semiring.PlusTimesF64.Mul"},
		{"plain", "plain"},
		{"repro/internal/spgemm.hashRowNumericF64", "spgemm.hashRowNumericF64"},
	}
	for _, c := range cases {
		if got := CanonicalFuncName(c.raw); got != c.want {
			t.Errorf("CanonicalFuncName(%q) = %q, want %q", c.raw, got, c.want)
		}
	}
}

func TestStripQualifiers(t *testing.T) {
	cases := []struct{ in, want string }{
		{"accum.HashTableG", "HashTableG"},
		{"go.shape.float64", "float64"},
		{"semiring.PlusTimesF64.Mul", "PlusTimesF64.Mul"},
		{"make([]float64, nnz) escapes to heap", "make([]float64, nnz) escapes to heap"},
		{"&CSRG[float64]{...} escapes to heap", "&CSRG[float64]{...} escapes to heap"},
		{"accum.(*HashTableG).Upsert", "(*HashTableG).Upsert"},
	}
	for _, c := range cases {
		if got := StripQualifiers(c.in); got != c.want {
			t.Errorf("StripQualifiers(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParseInlineOutputGolden(t *testing.T) {
	lines := ParseInlineOutput(readCorpus(t, "inline_m2.txt"))
	// The corpus holds 13 lines; the parser must keep exactly the decision
	// lines with a file position and a well-formed message.
	want := []InlineLine{
		{File: "hotpkg/hot.go", Line: 15, Col: 6, Kind: CannotInline, Func: "(*table[go.shape.int32]).Upsert", Detail: "function too complex: cost 178 exceeds budget 80"},
		{File: "hotpkg/hot.go", Line: 29, Col: 6, Kind: CannotInline, Func: "hotpkg.scatter[go.shape.int32]", Detail: "unhandled op: RANGE"},
		{File: "hotpkg/hot.go", Line: 37, Col: 6, Kind: CannotInline, Func: "setup", Detail: "function too complex: cost 90 exceeds budget 80"},
		{File: "hotpkg/hot.go", Line: 18, Col: 10, Kind: CanInline, Func: "(*table).get", Detail: "4"},
		{File: "hotpkg/hot.go", Line: 19, Col: 20, Kind: InliningCall, Func: "semiring.PlusTimesF64.Mul"},
		{File: "hotpkg/hot.go", Line: 20, Col: 21, Kind: InliningCall, Func: "PlusTimesF64.Add"},
		{File: "hotpkg/hot.go", Line: 19, Col: 20, Kind: Devirtualized, Func: "r.Mul", Detail: "PlusTimesF64"},
		{File: "fakering/ring.go", Line: 10, Col: 6, Kind: CannotInline, Func: "MaxTimesF64.Add", Detail: "function too complex: cost 90 exceeds budget 80"},
		{File: "fakering/ring.go", Line: 11, Col: 6, Kind: CannotInline, Func: "fakering.helper", Detail: "function too complex: cost 99 exceeds budget 80"},
		{File: "/usr/local/go/src/slices/sort.go", Line: 16, Col: 6, Kind: CannotInline, Func: "slices.Sort[[]int32,int32]", Detail: "function too complex: cost 81 exceeds budget 80"},
	}
	if !reflect.DeepEqual(lines, want) {
		t.Errorf("ParseInlineOutput mismatch:\n got %+v\nwant %+v", lines, want)
	}
}

func TestBuildInlineReport(t *testing.T) {
	ix := scanFixture(t)
	lines := ParseInlineOutput(readCorpus(t, "inline_m2.txt"))
	required := []RequiredInline{
		{File: "hotpkg/hot.go", Callee: "PlusTimesF64.Mul"}, // witnessed, package-qualified in corpus
		{File: "hotpkg/hot.go", Callee: "PlusTimesF64.Add"}, // witnessed, unqualified in corpus
	}
	rep := BuildInlineReport(lines, ix, "fakering", required)
	wantViolations := map[string]bool{
		// Hotpath functions, canonicalized and with the reason truncated at
		// its first clause; the un-annotated setup and the stdlib line are
		// absent.
		"hotpkg/hot.go: cannot inline table.Upsert: function too complex": true,
		"hotpkg/hot.go: cannot inline scatter: unhandled op":              true,
		// The ring method in the semiring dir; fakering.helper is not a
		// ring method and must not appear.
		"fakering/ring.go: cannot inline MaxTimesF64.Add: function too complex": true,
	}
	if !reflect.DeepEqual(rep.Violations, wantViolations) {
		t.Errorf("Violations:\n got %v\nwant %v", rep.Violations, wantViolations)
	}
	if len(rep.MissingRequired) != 0 {
		t.Errorf("MissingRequired = %v, want none", rep.MissingRequired)
	}
	if len(rep.RingFailures) != 1 || !strings.Contains(rep.RingFailures[0], "MaxTimesF64.Add") {
		t.Errorf("RingFailures = %v, want the MaxTimesF64.Add entry", rep.RingFailures)
	}
}

func TestBuildInlineReportMissingRequired(t *testing.T) {
	// Negative scenario: the corpus has no inlining-call witness for Zero,
	// and none at all in a different file — both must surface as fatal.
	ix := scanFixture(t)
	lines := ParseInlineOutput(readCorpus(t, "inline_m2.txt"))
	required := []RequiredInline{
		{File: "hotpkg/hot.go", Callee: "PlusTimesF64.Zero"},
		{File: "hotpkg/other.go", Callee: "PlusTimesF64.Mul"},
	}
	rep := BuildInlineReport(lines, ix, "fakering", required)
	if len(rep.MissingRequired) != 2 {
		t.Fatalf("MissingRequired = %v, want 2 entries", rep.MissingRequired)
	}
	if !strings.Contains(rep.MissingRequired[0], "PlusTimesF64.Zero") {
		t.Errorf("first missing entry = %q, want mention of PlusTimesF64.Zero", rep.MissingRequired[0])
	}
}

func TestParseBCEOutputGolden(t *testing.T) {
	lines := ParseBCEOutput(readCorpus(t, "check_bce.txt"))
	want := []BCELine{
		{File: "hotpkg/hot.go", Line: 18, Col: 10, Kind: "IsInBounds"}, // duplicate position collapsed
		{File: "hotpkg/hot.go", Line: 22, Col: 13, Kind: "IsInBounds"},
		{File: "hotpkg/hot.go", Line: 31, Col: 7, Kind: "IsInBounds"},
		{File: "hotpkg/hot.go", Line: 30, Col: 12, Kind: "IsSliceInBounds"},
		{File: "hotpkg/hot.go", Line: 38, Col: 9, Kind: "IsInBounds"},
		{File: "/usr/local/go/src/slices/zsortordered.go", Line: 12, Col: 6, Kind: "IsInBounds"},
	}
	if !reflect.DeepEqual(lines, want) {
		t.Errorf("ParseBCEOutput mismatch:\n got %+v\nwant %+v", lines, want)
	}
}

func TestBuildBCEReport(t *testing.T) {
	ix := scanFixture(t)
	entries := BuildBCEReport(ParseBCEOutput(readCorpus(t, "check_bce.txt")), ix)
	want := map[string]bool{
		// Two distinct positions in Upsert fold to x2; the duplicated
		// position counts once. scatter gets one entry per check kind.
		// setup's line 38 and the stdlib file are not budgeted.
		"hotpkg/hot.go: table.Upsert: IsInBounds x2": true,
		"hotpkg/hot.go: scatter: IsInBounds x1":      true,
		"hotpkg/hot.go: scatter: IsSliceInBounds x1": true,
	}
	if !reflect.DeepEqual(entries, want) {
		t.Errorf("BuildBCEReport:\n got %v\nwant %v", entries, want)
	}
	sum := FormatBCESummary(ParseBCEOutput(readCorpus(t, "check_bce.txt")), ix)
	if !strings.Contains(sum, "table.Upsert: IsInBounds x2") {
		t.Errorf("FormatBCESummary = %q, want Upsert line", sum)
	}
}

func TestAllowlistRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "list.txt")
	entries := map[string]bool{
		"b.go: cannot inline B: recursive":            true,
		"a.go: cannot inline A: function too complex": true,
	}
	if err := WriteAllowlist(path, []string{"Header line."}, "go1.24", entries); err != nil {
		t.Fatalf("WriteAllowlist: %v", err)
	}
	al, err := ReadAllowlist(path)
	if err != nil {
		t.Fatalf("ReadAllowlist: %v", err)
	}
	if al.Toolchain != "go1.24" {
		t.Errorf("Toolchain = %q, want go1.24", al.Toolchain)
	}
	if !reflect.DeepEqual(al.Entries, entries) {
		t.Errorf("Entries = %v, want %v", al.Entries, entries)
	}
	// Entries are written sorted so the file diffs cleanly.
	data, _ := os.ReadFile(path)
	aIdx := strings.Index(string(data), "a.go:")
	bIdx := strings.Index(string(data), "b.go:")
	if aIdx < 0 || bIdx < 0 || aIdx > bIdx {
		t.Errorf("allowlist not sorted:\n%s", data)
	}

	got := map[string]bool{
		"a.go: cannot inline A: function too complex": true,
		"c.go: cannot inline C: function too complex": true,
	}
	added, removed := Diff(got, al.Entries)
	if !reflect.DeepEqual(added, []string{"c.go: cannot inline C: function too complex"}) {
		t.Errorf("added = %v", added)
	}
	if !reflect.DeepEqual(removed, []string{"b.go: cannot inline B: recursive"}) {
		t.Errorf("removed = %v", removed)
	}

	if err := CheckToolchain(al, "go1.24", path, "regen"); err != nil {
		t.Errorf("CheckToolchain same version: %v", err)
	}
	if err := CheckToolchain(al, "go1.31", path, "go run ./cmd/spgemm-lint -mode=inline -update"); err == nil {
		t.Error("CheckToolchain accepted a toolchain mismatch")
	} else if !strings.Contains(err.Error(), "go1.31") || !strings.Contains(err.Error(), "-update") {
		t.Errorf("CheckToolchain error %q lacks version or regen hint", err)
	}
	// An unpinned list (legacy) passes any toolchain.
	if err := CheckToolchain(&Allowlist{Entries: map[string]bool{}}, "go1.31", path, "regen"); err != nil {
		t.Errorf("CheckToolchain unpinned: %v", err)
	}
}
