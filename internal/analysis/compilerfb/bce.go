package compilerfb

import (
	"bufio"
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// check_bce parsing: the bounds-check side of the compiler-feedback gate.
// -d=ssa/check_bce prints one line per bounds check that survives the prove
// pass into final SSA:
//
//	file.go:l:c: Found IsInBounds
//	file.go:l:c: Found IsSliceInBounds
//
// Generic functions repeat the report once per shape instantiation at the
// same position, so positions are deduplicated before counting. The budget
// covers only //spgemm:hotpath functions: a residual check in setup code is
// noise, one in a probe loop runs per flop.

// BCELine is one parsed residual-bounds-check position.
type BCELine struct {
	File string
	Line int
	Col  int
	Kind string // "IsInBounds" or "IsSliceInBounds"
}

var bceRe = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): Found (Is(?:Slice)?InBounds)$`)

// ParseBCEOutput extracts deduplicated bounds-check findings from raw
// check_bce compiler output.
func ParseBCEOutput(out string) []BCELine {
	seen := map[BCELine]bool{}
	var res []BCELine
	sc := bufio.NewScanner(strings.NewReader(out))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := bceRe.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		line, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		bl := BCELine{File: m[1], Line: line, Col: col, Kind: m[4]}
		if !seen[bl] {
			seen[bl] = true
			res = append(res, bl)
		}
	}
	return res
}

// BuildBCEReport folds residual checks into allowlist entries, one per
// (hotpath function, check kind) with the count of distinct source positions:
//
//	internal/accum/hash.go: HashTableG.Upsert: IsInBounds x2
//
// Counts — not positions — are budgeted so unrelated edits that move lines
// don't churn the list, while a new check in a budgeted function fails the
// diff. Checks outside hotpath functions are not budgeted.
func BuildBCEReport(lines []BCELine, ix *HotIndex) map[string]bool {
	counts := map[string]int{}
	for _, bl := range lines {
		hf, ok := ix.Enclosing(bl.File, bl.Line)
		if !ok {
			continue
		}
		counts[fmt.Sprintf("%s: %s: %s", hf.File, hf.Name, bl.Kind)]++
	}
	entries := map[string]bool{}
	for k, n := range counts {
		entries[fmt.Sprintf("%s x%d", k, n)] = true
	}
	return entries
}

// FormatBCESummary renders a per-function residual-check summary for
// human-readable gate output and EXPERIMENTS bookkeeping.
func FormatBCESummary(lines []BCELine, ix *HotIndex) string {
	entries := BuildBCEReport(lines, ix)
	keys := make([]string, 0, len(entries))
	for k := range entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, "\n")
}
