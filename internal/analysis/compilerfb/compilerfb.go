// Package compilerfb turns compiler feedback into lintable facts: it drives
// go build with diagnostic gcflags (-m=2 for inlining decisions,
// -d=ssa/check_bce for residual bounds checks), parses the version-sensitive
// output into stable normalized entries, and diffs them against checked-in
// allowlists — the same budget workflow as the heap-escape gate, extended to
// the other two compiler decisions the paper's kernels depend on.
//
// Everything here is keyed by the //spgemm:hotpath directive: only functions
// that carry it are budgeted, so the gates track exactly the loops whose
// micro-properties (inlined ring ops, no bounds checks) the kernels' measured
// position rests on.
package compilerfb

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path"
	"path/filepath"
	"regexp"
	"sort"
	"strings"

	"repro/internal/analysis/passes/hotalloc"
)

// HotFunc is one //spgemm:hotpath function as found in source: its file
// (module-relative, forward slashes), canonical name, and line extent.
type HotFunc struct {
	File      string
	Name      string // "Func" or "Recv.Method", generics stripped
	StartLine int
	EndLine   int
}

// HotIndex locates hotpath functions by file and by position, bridging
// compiler diagnostics (which carry positions and mangled names) back to the
// annotated source functions they budget.
type HotIndex struct {
	byFile map[string][]HotFunc
}

// ScanHotFuncs parses every non-test .go file under the given module-relative
// package dirs and indexes the functions carrying the hotpath directive.
func ScanHotFuncs(root string, pkgDirs []string) (*HotIndex, error) {
	ix := &HotIndex{byFile: map[string][]HotFunc{}}
	fset := token.NewFileSet()
	for _, dir := range pkgDirs {
		abs := filepath.Join(root, dir)
		entries, err := os.ReadDir(abs)
		if err != nil {
			return nil, fmt.Errorf("scan %s: %v", dir, err)
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(abs, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("parse %s/%s: %v", dir, name, err)
			}
			rel := path.Join(dir, name)
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || !hotalloc.IsHot(fd) {
					continue
				}
				ix.byFile[rel] = append(ix.byFile[rel], HotFunc{
					File:      rel,
					Name:      declName(fd),
					StartLine: fset.Position(fd.Pos()).Line,
					EndLine:   fset.Position(fd.End()).Line,
				})
			}
		}
	}
	return ix, nil
}

// declName is the canonical name of a declared function: bare name for
// functions, "Recv.Method" (pointer stars and type parameters stripped) for
// methods — the same shape CanonicalFuncName reduces compiler names to.
func declName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name + "." + fd.Name.Name
		default:
			return fd.Name.Name
		}
	}
}

// Funcs returns every indexed hotpath function, ordered by file then line.
func (ix *HotIndex) Funcs() []HotFunc {
	var out []HotFunc
	for _, fns := range ix.byFile {
		out = append(out, fns...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].StartLine < out[j].StartLine
	})
	return out
}

// Enclosing returns the hotpath function containing file:line, if any. Lines
// inside closures nested in a hotpath body attribute to the outer function,
// which is what a budget wants.
func (ix *HotIndex) Enclosing(file string, line int) (HotFunc, bool) {
	for _, hf := range ix.byFile[file] {
		if line >= hf.StartLine && line <= hf.EndLine {
			return hf, true
		}
	}
	return HotFunc{}, false
}

// MatchHot reports whether a compiler-reported function name in file refers
// to an indexed hotpath function. Compiler names arrive mangled
// ("(*HashTableG[go.shape.float64]).Upsert", "accum.sortPairs[...]"); the
// canonicalized form is matched exactly, then with a leading package
// qualifier tolerated.
func (ix *HotIndex) MatchHot(file, rawName string) (HotFunc, bool) {
	canon := CanonicalFuncName(rawName)
	for _, hf := range ix.byFile[file] {
		if hf.Name == canon || strings.HasSuffix(canon, "."+hf.Name) {
			return hf, true
		}
	}
	return HotFunc{}, false
}

// CanonicalFuncName reduces a compiler-printed function name to the stable
// "Func" / "Recv.Method" form used in allowlists: type-parameter brackets
// are dropped, receiver parentheses and stars unwrapped, and package paths
// in receiver position stripped. A plain leading "pkg." qualifier on a
// function is kept (MatchHot tolerates it); receiver-qualified methods are
// unambiguous and normalize fully.
func CanonicalFuncName(raw string) string {
	s := stripBrackets(strings.TrimSpace(raw))
	if i := strings.Index(s, "("); i >= 0 {
		if j := strings.Index(s[i:], ")"); j > 0 {
			recv := strings.TrimLeft(s[i+1:i+j], "*")
			if k := strings.LastIndex(recv, "."); k >= 0 {
				recv = recv[k+1:]
			}
			method := strings.TrimPrefix(s[i+j+1:], ".")
			if method == "" {
				return recv
			}
			return recv + "." + method
		}
	}
	if i := strings.LastIndex(s, "/"); i >= 0 {
		s = s[i+1:]
	}
	return s
}

// stripBrackets removes balanced [...] groups (type arguments).
func stripBrackets(s string) string {
	if !strings.Contains(s, "[") {
		return s
	}
	var b strings.Builder
	depth := 0
	for _, r := range s {
		switch {
		case r == '[':
			depth++
		case r == ']' && depth > 0:
			depth--
		case depth == 0:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// qualifierRe matches a lowercase identifier qualifier ("pkg." or a chain
// like "go.shape.") immediately followed by more identifier text. Applied to
// fixpoint it collapses "accum.HashTableG" → "HashTableG" and
// "go.shape.float64" → "float64" without eating prose ("escapes to heap"
// has no dot-identifier pair).
var qualifierRe = regexp.MustCompile(`\b[a-z][a-zA-Z0-9_]*\.([A-Za-z_(])`)

// StripQualifiers removes lowercase package/shape qualifiers from the
// identifiers inside a diagnostic message so the same diagnostic reported
// from two build contexts (in-package vs. re-exported during cross-package
// inlining) normalizes to one allowlist entry.
func StripQualifiers(msg string) string {
	for {
		next := qualifierRe.ReplaceAllString(msg, "$1")
		if next == msg {
			return msg
		}
		msg = next
	}
}

// CompilerOutput builds pkgs from the module root with the given extra
// gcflags applied to each listed package, returning the combined compiler
// diagnostics. The go command replays cached compiler output, so repeated
// runs are cheap and deterministic.
func CompilerOutput(root string, pkgs []string, gcflag string) (string, error) {
	args := []string{"build"}
	for _, p := range pkgs {
		args = append(args, "-gcflags="+p+"="+gcflag)
	}
	args = append(args, pkgs...)
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		return "", fmt.Errorf("go build -gcflags=%s: %v\n%s", gcflag, err, out)
	}
	return string(out), nil
}

// Toolchain returns the running go toolchain's major.minor version
// ("go1.24"), the key the inline/BCE allowlists are pinned to: both parse
// compiler output whose shape and decisions may change between releases.
func Toolchain() (string, error) {
	out, err := exec.Command("go", "env", "GOVERSION").Output()
	if err != nil {
		return "", fmt.Errorf("go env GOVERSION: %v", err)
	}
	v := strings.TrimSpace(string(out))
	if parts := strings.Split(v, "."); len(parts) >= 2 {
		return parts[0] + "." + parts[1], nil
	}
	return v, nil
}

// toolchainPrefix marks the allowlist header line carrying the pinned
// toolchain version.
const toolchainPrefix = "# toolchain: "

// Allowlist is a budget file: a set of allowed normalized entries plus the
// toolchain version they were generated under.
type Allowlist struct {
	Entries   map[string]bool
	Toolchain string
}

// ReadAllowlist loads path, treating '#' lines as comments except for the
// toolchain pin.
func ReadAllowlist(path string) (*Allowlist, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	al := &Allowlist{Entries: map[string]bool{}}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, toolchainPrefix) {
			al.Toolchain = strings.TrimSpace(strings.TrimPrefix(line, toolchainPrefix))
			continue
		}
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		al.Entries[line] = true
	}
	return al, nil
}

// WriteAllowlist writes entries sorted under the given header comment lines
// (without "# ") and a toolchain pin.
func WriteAllowlist(path string, header []string, toolchain string, entries map[string]bool) error {
	keys := make([]string, 0, len(entries))
	for k := range entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, h := range header {
		b.WriteString("# ")
		b.WriteString(h)
		b.WriteString("\n")
	}
	b.WriteString(toolchainPrefix)
	b.WriteString(toolchain)
	b.WriteString("\n")
	for _, k := range keys {
		b.WriteString(k)
		b.WriteString("\n")
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
		return err
	}
	return os.WriteFile(path, []byte(b.String()), 0o666)
}

// Diff splits observed entries into those missing from the allowlist (budget
// violations) and allowed entries no longer observed (prune candidates).
func Diff(got map[string]bool, allowed map[string]bool) (added, removed []string) {
	for e := range got {
		if !allowed[e] {
			added = append(added, e)
		}
	}
	for e := range allowed {
		if !got[e] {
			removed = append(removed, e)
		}
	}
	sort.Strings(added)
	sort.Strings(removed)
	return added, removed
}

// CheckToolchain compares an allowlist's pinned toolchain against the
// current one, returning a regeneration instruction on mismatch. Compiler
// upgrades must fail loudly: inlining budgets and bounds-check elimination
// both shift between releases, and a stale allowlist would mask or invent
// regressions.
func CheckToolchain(al *Allowlist, current, listPath, regen string) error {
	if al.Toolchain == "" || al.Toolchain == current {
		return nil
	}
	return fmt.Errorf("%s was generated with %s but the current toolchain is %s; inspect the diff and regenerate with: %s",
		listPath, al.Toolchain, current, regen)
}
