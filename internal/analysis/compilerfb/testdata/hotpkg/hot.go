// Package hotpkg is the fixture corpus for the compiler-feedback gate
// tests: ScanHotFuncs indexes the annotated functions below, and the pinned
// diagnostics in ../inline_m2.txt and ../check_bce.txt reference these line
// numbers — keep them stable (append only).
package hotpkg

type table struct {
	keys []int32
	mask int
}

// Upsert is a hotpath method fixture (lines 15-24).
//
//spgemm:hotpath
func (t *table) Upsert(key int32) int32 {
	s := int(key) & t.mask
	for {
		k := t.keys[s]
		if k == key || k == -1 {
			return k
		}
		s = (s + 1) & t.mask
	}
}

// scatter is a hotpath plain-function fixture (lines 29-33).
//
//spgemm:hotpath
func scatter(dst []int32, idx []int32) {
	for i, s := range idx {
		dst[i] = s
	}
}

// setup is intentionally un-annotated: diagnostics attributed to it must not
// be budgeted (lines 37-39).
func setup(n int) []int32 {
	return make([]int32, n)
}
