// Package analysis is a self-contained miniature of the
// golang.org/x/tools/go/analysis framework: an Analyzer runs over one
// typechecked package (a Pass) and reports position-anchored Diagnostics.
//
// The repository vendors no third-party modules, so instead of depending on
// x/tools this package reimplements the small subset the spgemm-lint suite
// needs — the Analyzer/Pass/Diagnostic contract, a `go list`-driven source
// loader (loader.go) and an analysistest-style want-comment harness
// (analysistest/) — on the standard library's go/ast, go/parser and go/types.
//
// The seven analyzers under passes/ encode the repository's performance and
// concurrency contracts (see DESIGN.md "Static analysis"): hotalloc,
// deferhot, spanpair, poolpair, chanown, parcapture and statsnil.
// cmd/spgemm-lint drives them standalone or as a `go vet -vettool`, and its
// escapes/inline/bce modes add the compiler-feedback budget gates
// (internal/analysis/compilerfb).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Diagnostic is one finding, anchored at a token position. Hint carries the
// "how to fix it" line spgemm-lint prints under the finding; Analyzer is
// filled in by the runner.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Hint     string
	Analyzer string
}

// Pass describes one analyzed package and collects findings. Reports append
// to Diagnostics in source order of discovery.
type Pass struct {
	Analyzer    *Analyzer
	Fset        *token.FileSet
	Files       []*ast.File
	Pkg         *types.Package
	TypesInfo   *types.Info
	Diagnostics []Diagnostic
}

// Reportf records a finding with the analyzer's generic fix hint.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.ReportHintf(pos, "", format, args...)
}

// ReportHintf records a finding with a specific fix hint.
func (p *Pass) ReportHintf(pos token.Pos, hint, format string, args ...any) {
	if hint == "" {
		hint = p.Analyzer.Hint
	}
	p.Diagnostics = append(p.Diagnostics, Diagnostic{
		Pos:     pos,
		Message: fmt.Sprintf(format, args...),
		Hint:    hint,
	})
}

// Analyzer is one named check. Run inspects the Pass and reports findings;
// the returned error means the analyzer itself failed (not that it found
// violations).
type Analyzer struct {
	Name string
	Doc  string
	// Hint is the generic one-line fix advice printed when a diagnostic
	// carries no specific hint of its own.
	Hint string
	Run  func(*Pass) error
}

// ---------------------------------------------------------------------------
// Shared AST/type helpers used by several passes.
// ---------------------------------------------------------------------------

// NamedTypeName returns the name of t's underlying named type, following one
// pointer indirection: *obs.Tracer and obs.Tracer both yield "Tracer".
// Returns "" for unnamed types.
func NamedTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	// Alias-resolve then look for a named type.
	t = types.Unalias(t)
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// ReceiverTypeName resolves the named type of a method call's receiver, e.g.
// "Tracer" for tr.Begin(...) with tr a *obs.Tracer. Returns "" when the call
// is not a method call or types are unavailable.
func ReceiverTypeName(info *types.Info, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if info == nil {
		return ""
	}
	if tv, ok := info.Types[sel.X]; ok {
		return NamedTypeName(tv.Type)
	}
	return ""
}

// CalleeName returns the bare name of the function or method being called:
// "Begin" for tr.Begin(...), "RunWorkers" for sched.RunWorkers(...) and for
// a plain RunWorkers(...). Returns "" for indirect calls.
func CalleeName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}

// ExprString renders an expression compactly for textual matching (e.g.
// pairing tr.Begin(w+1, name) with tr.End(w+1, name) by argument text).
// It is a lossy printer: good enough to compare small receiver/argument
// expressions, not a formatter.
func ExprString(e ast.Expr) string {
	switch e := e.(type) {
	case nil:
		return ""
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return ExprString(e.X) + "." + e.Sel.Name
	case *ast.BasicLit:
		return e.Value
	case *ast.CallExpr:
		s := ExprString(e.Fun) + "("
		for i, a := range e.Args {
			if i > 0 {
				s += ","
			}
			s += ExprString(a)
		}
		return s + ")"
	case *ast.IndexExpr:
		return ExprString(e.X) + "[" + ExprString(e.Index) + "]"
	case *ast.BinaryExpr:
		return ExprString(e.X) + e.Op.String() + ExprString(e.Y)
	case *ast.UnaryExpr:
		return e.Op.String() + ExprString(e.X)
	case *ast.StarExpr:
		return "*" + ExprString(e.X)
	case *ast.ParenExpr:
		return "(" + ExprString(e.X) + ")"
	case *ast.SliceExpr:
		return ExprString(e.X) + "[" + ExprString(e.Low) + ":" + ExprString(e.High) + "]"
	case *ast.TypeAssertExpr:
		return ExprString(e.X) + ".(type)"
	case *ast.CompositeLit:
		return ExprString(e.Type) + "{…}"
	case *ast.ArrayType:
		return "[]" + ExprString(e.Elt)
	case *ast.FuncLit:
		return "func literal"
	}
	return fmt.Sprintf("%T", e)
}
