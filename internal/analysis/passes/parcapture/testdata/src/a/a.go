// Package a is the parcapture fixture: mock sched entry points with worker
// closures exercising the sanctioned and racy capture patterns.
package a

// RunWorkers mirrors sched.RunWorkers.
func RunWorkers(n int, body func(w int)) {
	for w := 0; w < n; w++ {
		body(w)
	}
}

// ParallelFor mirrors sched.ParallelFor.
func ParallelFor(n, workers int, body func(w, lo, hi int)) {
	body(0, 0, n)
}

// perWorker uses the blessed patterns: per-worker slots, closure-local
// accumulation, self-append through a worker-indexed element.
func perWorker(n int, in []float64) []float64 {
	sums := make([]float64, n)
	bufs := make([][]int32, n)
	out := make([]float64, len(in))
	RunWorkers(n, func(w int) {
		local := 0.0
		for i := range in {
			local += in[i]
			out[i] = in[i] // index is closure-local: clean
		}
		sums[w] = local
		bufs[w] = append(bufs[w], int32(w))
	})
	return sums
}

// chunked writes only its own [lo,hi) slice range: clean.
func chunked(n int, out []int64) {
	ParallelFor(n, 4, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i+1] = int64(i)
		}
	})
}

// guarded writes a constant index behind a worker check: clean.
func guarded(n int, out []int64) {
	RunWorkers(n, func(w int) {
		if w == 0 {
			out[0] = int64(n)
		}
	})
}

// races accumulates into captured variables from every worker.
func races(n int, in []float64) float64 {
	total := 0.0
	count := 0
	RunWorkers(n, func(w int) {
		total += in[w] // want `worker closure writes captured variable total`
		count++        // want `worker closure writes captured variable count`
	})
	return total + float64(count)
}

// sharedAppend grows one captured slice from every worker.
func sharedAppend(n int) []int {
	var shared []int
	RunWorkers(n, func(w int) {
		shared = append(shared, w) // want `append to captured slice shared races on the slice header`
	})
	return shared
}

// sameElement writes one element from every worker.
func sameElement(n int, out []int64) {
	RunWorkers(n, func(w int) {
		out[0] = int64(w) // want `worker closure writes shared slice out with a worker-independent index`
	})
}

// sequential closures not passed to a parallel entry point are exempt.
func sequential(in []float64) float64 {
	total := 0.0
	add := func(x float64) { total += x }
	for _, v := range in {
		add(v)
	}
	return total
}
