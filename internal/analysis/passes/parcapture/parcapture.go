// Package parcapture checks closures handed to the sched parallel-execution
// entry points (RunWorkers, ParallelFor and friends). Every worker runs the
// same closure concurrently, so:
//
//   - assigning to a variable captured from the enclosing function is a data
//     race (every worker writes the same memory);
//   - appending to a captured slice races on the slice header;
//   - writing a captured slice element with an index that depends on no
//     closure-local variable means every worker hits the same element.
//
// The sanctioned patterns stay silent: per-worker indexing (blockSums[w],
// out[i+1] with i a closure-local loop variable), reads of captured state,
// and writes guarded by a condition on a closure-local variable
// (if w == 0 { ... }).
package parcapture

import (
	"go/ast"
	"go/token"

	"repro/internal/analysis"
)

// Analyzer is the parcapture pass.
var Analyzer = &analysis.Analyzer{
	Name: "parcapture",
	Doc:  "worker closures must not write captured variables or shared slices without per-worker indexing",
	Hint: "give each worker its own slot (indexed by the worker id or a closure-local loop variable), or move the write outside the parallel region",
	Run:  run,
}

// parallelCallees are the sched entry points whose closure argument runs
// concurrently on every worker.
var parallelCallees = map[string]bool{
	"RunWorkers":       true,
	"RunWorkersNamed":  true,
	"ParallelFor":      true,
	"ParallelForNamed": true,
	"runWorkers":       true,
	"parallelFor":      true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !parallelCallees[analysis.CalleeName(call)] {
				return true
			}
			for _, arg := range call.Args {
				if lit, ok := arg.(*ast.FuncLit); ok {
					checkWorkerClosure(pass, lit)
				}
			}
			return true
		})
	}
	return nil
}

// checkWorkerClosure flags races inside one worker-body closure.
func checkWorkerClosure(pass *analysis.Pass, lit *ast.FuncLit) {
	isLocal := localOracle(pass, lit)
	guarded := guardedRanges(lit, isLocal)

	inGuard := func(pos token.Pos) bool {
		for _, r := range guarded {
			if pos >= r[0] && pos <= r[1] {
				return true
			}
		}
		return false
	}

	// exprHasLocal reports whether any identifier in e is closure-local.
	exprHasLocal := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && isLocal(id) {
				found = true
				return false
			}
			return true
		})
		return found
	}

	checkLhs := func(lhs ast.Expr, rhs ast.Expr) {
		switch l := lhs.(type) {
		case *ast.Ident:
			if l.Name == "_" || isLocal(l) {
				return
			}
			if call, ok := rhs.(*ast.CallExpr); ok && analysis.CalleeName(call) == "append" {
				pass.Reportf(lhs.Pos(),
					"append to captured slice %s races on the slice header across workers", l.Name)
				return
			}
			pass.Reportf(lhs.Pos(),
				"worker closure writes captured variable %s: every worker races on the same memory", l.Name)
		case *ast.IndexExpr:
			base, ok := l.X.(*ast.Ident)
			if !ok || isLocal(base) {
				return
			}
			if exprHasLocal(l.Index) {
				return // per-worker indexing: blockSums[w], out[i+1]
			}
			if inGuard(l.Pos()) {
				return // e.g. if w == 0 { out[0] = ... }
			}
			pass.Reportf(lhs.Pos(),
				"worker closure writes shared slice %s with a worker-independent index: every worker hits the same element", base.Name)
		}
	}

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A nested closure is not (necessarily) run per-worker; its body
			// is checked only if it is itself passed to a parallel callee,
			// which the outer file walk already covers.
			return false
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				var rhs ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				} else if len(n.Rhs) == 1 {
					rhs = n.Rhs[0]
				}
				checkLhs(lhs, rhs)
			}
		case *ast.IncDecStmt:
			if id, ok := n.X.(*ast.Ident); ok && !isLocal(id) {
				pass.Reportf(n.Pos(),
					"worker closure writes captured variable %s: every worker races on the same memory", id.Name)
			}
		}
		return true
	})
}

// localOracle returns a predicate reporting whether an identifier resolves to
// an object declared inside the closure (parameters, := bindings, var decls,
// range variables). With full type information the test is positional on the
// object's declaration; without it, the oracle falls back to a textual scan
// of names declared in the closure.
func localOracle(pass *analysis.Pass, lit *ast.FuncLit) func(*ast.Ident) bool {
	info := pass.TypesInfo
	if info != nil {
		return func(id *ast.Ident) bool {
			obj := info.Uses[id]
			if obj == nil {
				obj = info.Defs[id]
			}
			if obj == nil {
				// Unresolved (e.g. a package name): not a capture hazard.
				return true
			}
			if obj.Pkg() == nil {
				return false // builtin or universe scope
			}
			return obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End()
		}
	}
	declared := map[string]bool{}
	if lit.Type.Params != nil {
		for _, f := range lit.Type.Params.List {
			for _, nm := range f.Names {
				declared[nm.Name] = true
			}
		}
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				for _, l := range n.Lhs {
					if id, ok := l.(*ast.Ident); ok {
						declared[id.Name] = true
					}
				}
			}
		case *ast.RangeStmt:
			if n.Tok == token.DEFINE {
				if id, ok := n.Key.(*ast.Ident); ok {
					declared[id.Name] = true
				}
				if id, ok := n.Value.(*ast.Ident); ok {
					declared[id.Name] = true
				}
			}
		case *ast.ValueSpec:
			for _, nm := range n.Names {
				declared[nm.Name] = true
			}
		}
		return true
	})
	return func(id *ast.Ident) bool { return declared[id.Name] }
}

// guardedRanges returns the position ranges of if-bodies whose condition
// mentions a closure-local variable: writes inside them are worker-dependent
// even with a constant index (the `if w == 0` pattern).
func guardedRanges(lit *ast.FuncLit, isLocal func(*ast.Ident) bool) [][2]token.Pos {
	var out [][2]token.Pos
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok || ifs.Cond == nil {
			return true
		}
		hasLocal := false
		ast.Inspect(ifs.Cond, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok && isLocal(id) {
				hasLocal = true
				return false
			}
			return true
		})
		if hasLocal {
			out = append(out, [2]token.Pos{ifs.Body.Pos(), ifs.Body.End()})
		}
		return true
	})
	return out
}
