package parcapture_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/parcapture"
)

func TestParcapture(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", parcapture.Analyzer)
}
