// Package a is the poolpair fixture: mock checkout APIs with the mempool
// and sched shapes.
package a

// Scratch mirrors mempool.Scratch.
type Scratch struct{ buf []int64 }

// Acquire / Release mirror the mempool free-list checkout API.
func Acquire() *Scratch  { return &Scratch{} }
func Release(s *Scratch) {}

// Pool mirrors sched.Pool: created by NewPool, retired by Close.
type Pool struct{}

func NewPool(n int) *Pool                { return &Pool{} }
func (p *Pool) Close()                   {}
func (p *Pool) Run(f func(w int), n int) {}

// FlatPool mirrors mempool.Pool: same constructor name, but no Close method,
// so the analyzer must not demand one.
type FlatPool struct{}

func NewFlatPool(n int) *FlatPool { return &FlatPool{} }

func fallible() error { return nil }

// deferred is the recommended form: released on every path, panics included.
func deferred() error {
	s := Acquire()
	defer Release(s)
	if err := fallible(); err != nil {
		return err
	}
	return nil
}

// linear releases on the single path: clean.
func linear() {
	s := Acquire()
	_ = s.buf
	Release(s)
}

// branches releases on both arms: clean.
func branches(cond bool) {
	s := Acquire()
	if cond {
		Release(s)
		return
	}
	Release(s)
}

// earlyReturn leaks the scratch on the error path.
func earlyReturn() error {
	s := Acquire()
	if err := fallible(); err != nil {
		return err // want `s checked out by Acquire is not released on this path`
	}
	Release(s)
	return nil
}

// fallsOffEnd never releases at all.
func fallsOffEnd() {
	s := Acquire()
	_ = s.buf
} // want `s checked out by Acquire is not released on this path`

// discarded throws the checkout away immediately.
func discarded() {
	Acquire() // want `Acquire result discarded`
}

// escapes hands the scratch to its caller: ownership moved, stay silent.
func escapes() *Scratch {
	s := Acquire()
	return s
}

// handedOff passes the scratch to another function: ownership moved.
func handedOff(consume func(*Scratch)) {
	s := Acquire()
	consume(s)
}

// poolClosed pairs NewPool with Close: clean.
func poolClosed() {
	p := NewPool(4)
	defer p.Close()
	p.Run(func(w int) {}, 4)
}

// poolLeaked creates a worker pool and forgets to Close it.
func poolLeaked() {
	p := NewPool(4)
	p.Run(func(w int) {}, 4)
} // want `p checked out by NewPool is not released on this path`

// flatPool has no Close method to call; the analyzer must not demand one.
func flatPool() {
	p := NewFlatPool(4)
	_ = p
}

// loopBalanced acquires and releases within each iteration: clean.
func loopBalanced(n int) {
	for i := 0; i < n; i++ {
		s := Acquire()
		_ = s.buf
		Release(s)
	}
}

// switchDefault releases in every arm of a defaulted switch: clean.
func switchDefault(x int) {
	s := Acquire()
	switch x {
	case 0:
		Release(s)
	default:
		Release(s)
	}
}
