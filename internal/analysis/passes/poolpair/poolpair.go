// Package poolpair checks resource checkout/return pairing:
//
//   - mempool.Acquire() results must be passed to Release on every
//     control-flow path out of the acquiring function (defer recommended,
//     which also covers panics);
//   - sched.NewPool(...) results must be Closed before the creating
//     function returns, unless the pool escapes (returned, stored in a
//     struct, passed along) — in which case ownership moved and the
//     analyzer stays silent.
//
// The check is a small path-sensitive walk over the function body: branch
// arms are analyzed with copies of the live-resource set and joined with a
// union (a resource released on only one arm is still reported at the other
// arm's exit). Loops are walked once; acquire/release cycles balanced within
// one iteration behave as expected.
package poolpair

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the poolpair pass.
var Analyzer = &analysis.Analyzer{
	Name: "poolpair",
	Doc:  "mempool.Acquire/Release and sched.NewPool/Close must be balanced on all paths",
	Hint: "release on every path: put `defer mempool.Release(s)` (or the Close call) immediately after the checkout",
	Run:  run,
}

// pairSpec describes one checkout/return API family.
type pairSpec struct {
	acquire string // callee name producing the resource
	release string // package function releasing it: release(x)
	method  string // method on the resource releasing it: x.Method()
}

var specs = []pairSpec{
	{acquire: "Acquire", release: "Release"},
	{acquire: "NewPool", method: "Close"},
}

// acquireSpec returns the pair specification for an acquire callee name.
func acquireSpec(name string) *pairSpec {
	for i := range specs {
		if specs[i].acquire == name {
			return &specs[i]
		}
	}
	return nil
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// resource is one tracked checkout.
type resource struct {
	obj     types.Object
	name    string
	kind    string // printed acquire expression, for messages
	release string // matching release function name ("" if method-released)
	method  string // matching release method name ("" if function-released)
	escaped bool
}

type checker struct {
	pass      *analysis.Pass
	resources map[types.Object]*resource
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	c := &checker{pass: pass, resources: make(map[types.Object]*resource)}
	c.collect(fd.Body)
	if len(c.resources) == 0 {
		return
	}
	c.markEscapes(fd.Body)
	live := make(map[types.Object]bool)
	if c.walkStmts(fd.Body.List, live) {
		c.reportLive(fd.Body.Rbrace, live)
	}
}

// collect finds `x := Acquire()`-shaped checkouts and discarded checkouts.
func (c *checker) collect(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok {
					continue
				}
				spec := acquireSpec(analysis.CalleeName(call))
				if spec == nil {
					continue
				}
				id, ok := n.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				if id.Name == "_" {
					c.pass.Reportf(call.Pos(),
						"%s result discarded: the checked-out resource can never be released",
						analysis.ExprString(call.Fun))
					continue
				}
				obj := c.objectOf(id)
				if obj == nil {
					continue
				}
				// Method-released pairs only apply when the concrete type
				// actually has the method: mempool.NewPool and sched.NewPool
				// share a callee name, but only sched's Pool has Close.
				if spec.method != "" && !hasMethod(obj.Type(), spec.method) {
					continue
				}
				c.resources[obj] = &resource{
					obj:     obj,
					name:    id.Name,
					kind:    analysis.ExprString(call.Fun),
					release: spec.release,
					method:  spec.method,
				}
			}
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				if acquireSpec(analysis.CalleeName(call)) != nil {
					c.pass.Reportf(call.Pos(),
						"%s result discarded: the checked-out resource can never be released",
						analysis.ExprString(call.Fun))
				}
			}
		}
		return true
	})
}

// hasMethod reports whether type t (or *t) has a method with the given name.
// When type information is missing (t == nil or invalid), it returns true so
// the analyzer stays conservative in partially typed packages.
func hasMethod(t types.Type, name string) bool {
	if t == nil {
		return false
	}
	if basic, ok := t.Underlying().(*types.Basic); ok && basic.Kind() == types.Invalid {
		return true
	}
	obj, _, _ := types.LookupFieldOrMethod(t, true, nil, name)
	_, isFunc := obj.(*types.Func)
	return isFunc
}

// objectOf resolves an identifier to its object (definition or use).
func (c *checker) objectOf(id *ast.Ident) types.Object {
	info := c.pass.TypesInfo
	if info == nil {
		return nil
	}
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// markEscapes disables tracking for resources whose variable leaves the
// function's hands: returned, re-assigned or stored elsewhere, passed to a
// call other than its release function, placed in a composite literal, or
// sent on a channel. An escaped resource changed owners; the new owner is
// responsible for releasing it.
func (c *checker) markEscapes(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				c.escapeIdentsIn(r)
			}
		case *ast.AssignStmt:
			for _, r := range n.Rhs {
				// Skip the acquire calls themselves; any other RHS use of a
				// tracked variable aliases or stores it.
				if _, ok := r.(*ast.CallExpr); ok {
					continue
				}
				c.escapeIdentsIn(r)
			}
		case *ast.CallExpr:
			name := analysis.CalleeName(n)
			for _, arg := range n.Args {
				res := c.resourceFor(arg)
				if res == nil {
					c.escapeIdentsIn(arg)
					continue
				}
				if name != res.release {
					res.escaped = true
				}
			}
		case *ast.CompositeLit:
			for _, e := range n.Elts {
				c.escapeIdentsIn(e)
			}
		case *ast.SendStmt:
			c.escapeIdentsIn(n.Value)
		}
		return true
	})
}

// resourceFor returns the tracked resource named directly by e, or nil if e
// is not a bare tracked identifier.
func (c *checker) resourceFor(e ast.Expr) *resource {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	obj := c.objectOf(id)
	if obj == nil {
		return nil
	}
	return c.resources[obj]
}

// escapeIdentsIn marks tracked resources mentioned inside e as escaped.
// Selecting a field or calling a method on the resource (s.buf, s.Ensure(n))
// uses it in place and is NOT an escape; the bare identifier appearing as a
// value (returned, stored, passed along) is.
func (c *checker) escapeIdentsIn(e ast.Expr) {
	if e == nil {
		return
	}
	switch e := e.(type) {
	case *ast.Ident:
		if res := c.resourceFor(e); res != nil {
			res.escaped = true
		}
	case *ast.SelectorExpr:
		// A selection on a bare tracked ident uses it in place; only a
		// deeper base expression can smuggle the resource out.
		if _, ok := e.X.(*ast.Ident); !ok {
			c.escapeIdentsIn(e.X)
		}
	case *ast.ParenExpr:
		c.escapeIdentsIn(e.X)
	case *ast.StarExpr:
		c.escapeIdentsIn(e.X)
	case *ast.UnaryExpr:
		c.escapeIdentsIn(e.X)
	case *ast.BinaryExpr:
		c.escapeIdentsIn(e.X)
		c.escapeIdentsIn(e.Y)
	case *ast.IndexExpr:
		c.escapeIdentsIn(e.X)
		c.escapeIdentsIn(e.Index)
	case *ast.SliceExpr:
		c.escapeIdentsIn(e.X)
	case *ast.KeyValueExpr:
		c.escapeIdentsIn(e.Value)
	case *ast.CallExpr:
		for _, a := range e.Args {
			c.escapeIdentsIn(a)
		}
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			c.escapeIdentsIn(el)
		}
	default:
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if res := c.resourceFor(id); res != nil {
					res.escaped = true
				}
			}
			return true
		})
	}
}

// releaseTarget returns the resource a call releases, or nil.
func (c *checker) releaseTarget(call *ast.CallExpr) *resource {
	name := analysis.CalleeName(call)
	// Function form: Release(x).
	for _, arg := range call.Args {
		if res := c.resourceFor(arg); res != nil && name == res.release {
			return res
		}
	}
	// Method form: x.Close().
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if res := c.resourceFor(sel.X); res != nil && name == res.method {
			return res
		}
	}
	return nil
}

// walkStmts walks a statement list updating the live set; it reports whether
// control can fall past the end of the list.
func (c *checker) walkStmts(stmts []ast.Stmt, live map[types.Object]bool) bool {
	for _, s := range stmts {
		if !c.walkStmt(s, live) {
			return false
		}
	}
	return true
}

func copyLive(m map[types.Object]bool) map[types.Object]bool {
	out := make(map[types.Object]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// join unions branch results into dst: a resource live on any surviving
// branch stays live.
func join(dst map[types.Object]bool, branches ...map[types.Object]bool) {
	for _, b := range branches {
		for k, v := range b {
			if v {
				dst[k] = true
			}
		}
	}
}

// walkStmt processes one statement; it returns false when control cannot
// continue past it on the current path (return, break, terminating if/else).
func (c *checker) walkStmt(s ast.Stmt, live map[types.Object]bool) bool {
	switch s := s.(type) {
	case *ast.AssignStmt:
		c.scanCalls(s, live)
		for i, rhs := range s.Rhs {
			if i >= len(s.Lhs) {
				break
			}
			call, ok := rhs.(*ast.CallExpr)
			if !ok || acquireSpec(analysis.CalleeName(call)) == nil {
				continue
			}
			if id, ok := s.Lhs[i].(*ast.Ident); ok {
				if obj := c.objectOf(id); obj != nil {
					if res := c.resources[obj]; res != nil && !res.escaped {
						live[obj] = true
					}
				}
			}
		}
		return true
	case *ast.DeferStmt:
		c.deferRelease(s.Call, live)
		return true
	case *ast.ReturnStmt:
		c.reportLive(s.Pos(), live)
		return false
	case *ast.IfStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, live)
		}
		thenLive := copyLive(live)
		thenFalls := c.walkStmts(s.Body.List, thenLive)
		elseLive := copyLive(live)
		elseFalls := true
		if s.Else != nil {
			elseFalls = c.walkStmt(s.Else, elseLive)
		}
		for k := range live {
			delete(live, k)
		}
		if thenFalls {
			join(live, thenLive)
		}
		if elseFalls {
			join(live, elseLive)
		}
		return thenFalls || elseFalls
	case *ast.BlockStmt:
		return c.walkStmts(s.List, live)
	case *ast.ForStmt:
		bodyLive := copyLive(live)
		c.walkStmts(s.Body.List, bodyLive)
		// The loop body may run zero times; keep the union.
		join(live, bodyLive)
		return true
	case *ast.RangeStmt:
		bodyLive := copyLive(live)
		c.walkStmts(s.Body.List, bodyLive)
		join(live, bodyLive)
		return true
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		var body *ast.BlockStmt
		switch sw := s.(type) {
		case *ast.SwitchStmt:
			body = sw.Body
		case *ast.TypeSwitchStmt:
			body = sw.Body
		case *ast.SelectStmt:
			body = sw.Body
		}
		hasDefault := false
		anyFalls := false
		var surviving []map[types.Object]bool
		for _, cc := range body.List {
			var stmts []ast.Stmt
			switch cl := cc.(type) {
			case *ast.CaseClause:
				stmts = cl.Body
				if cl.List == nil {
					hasDefault = true
				}
			case *ast.CommClause:
				stmts = cl.Body
				if cl.Comm == nil {
					hasDefault = true
				}
			}
			caseLive := copyLive(live)
			if c.walkStmts(stmts, caseLive) {
				anyFalls = true
				surviving = append(surviving, caseLive)
			}
		}
		if hasDefault {
			// Exactly one arm runs: replace live with the union of the
			// surviving arms.
			for k := range live {
				delete(live, k)
			}
			join(live, surviving...)
			return anyFalls
		}
		// No default: the switch may be skipped entirely, so the incoming
		// state also survives.
		join(live, surviving...)
		return true
	case *ast.BranchStmt:
		// break/continue/goto leave the current path; the release may follow
		// the loop, so do not report here.
		return false
	case *ast.LabeledStmt:
		return c.walkStmt(s.Stmt, live)
	default:
		if s != nil {
			c.scanCalls(s, live)
		}
		return true
	}
}

// scanCalls clears liveness for any release calls nested in the statement.
func (c *checker) scanCalls(s ast.Stmt, live map[types.Object]bool) {
	ast.Inspect(s, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if res := c.releaseTarget(call); res != nil {
				live[res.obj] = false
			}
		}
		return true
	})
}

// deferRelease handles `defer Release(s)`, `defer p.Close()`, and defers of
// closures whose bodies contain the release. Deferred releases run on every
// exit path including panics, so the resource is simply no longer live.
func (c *checker) deferRelease(call *ast.CallExpr, live map[types.Object]bool) {
	if res := c.releaseTarget(call); res != nil {
		live[res.obj] = false
		return
	}
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if inner, ok := n.(*ast.CallExpr); ok {
				if res := c.releaseTarget(inner); res != nil {
					live[res.obj] = false
				}
			}
			return true
		})
	}
}

// reportLive reports every still-live, still-tracked resource at an exit.
func (c *checker) reportLive(pos token.Pos, live map[types.Object]bool) {
	var out []*resource
	for obj, isLive := range live {
		if !isLive {
			continue
		}
		if res := c.resources[obj]; res != nil && !res.escaped {
			out = append(out, res)
		}
	}
	// Stable order for deterministic diagnostics.
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j].name < out[i].name {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	for _, res := range out {
		want := "Release(" + res.name + ")"
		if res.method != "" {
			want = res.name + "." + res.method + "()"
		}
		c.pass.Reportf(pos,
			"%s checked out by %s is not released on this path (missing %s)",
			res.name, res.kind, want)
	}
}
