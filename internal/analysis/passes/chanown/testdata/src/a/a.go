package a

import "errors"

type Context struct{ n int }

type ContextPool struct{ ch chan *Context }

func (p *ContextPool) Acquire(ctx any) (*Context, error)             { return <-p.ch, nil }
func (p *ContextPool) AcquireTraced(ctx any) (*Context, bool, error) { return <-p.ch, false, nil }
func (p *ContextPool) Release(c *Context)                            { p.ch <- c }
func (p *ContextPool) Exec(c *Context, f func(*Context)) error       { f(c); return nil }

var errBusy = errors.New("busy")

// goodDefer is the canonical handler shape: err guard, then defer Release.
func goodDefer(p *ContextPool, rctx any) error {
	c, err := p.Acquire(rctx)
	if err != nil {
		return err
	}
	defer p.Release(c)
	c.n++
	return nil
}

// goodTraced is the server's actual shape: AcquireTraced with a queued flag.
func goodTraced(p *ContextPool, rctx any) error {
	c, queued, err := p.AcquireTraced(rctx)
	if err != nil {
		return err
	}
	_ = queued
	defer p.Release(c)
	return nil
}

// leakReturn drops the Context on an early return after the err guard.
func leakReturn(p *ContextPool, rctx any, fail bool) error {
	c, err := p.Acquire(rctx)
	if err != nil {
		return err
	}
	if fail {
		return errBusy // want `Context c checked out by p.Acquire is not released on this path`
	}
	p.Release(c)
	return nil
}

// leakBranch releases on one switch arm only.
func leakBranch(p *ContextPool, rctx any, mode int) {
	c, err := p.Acquire(rctx)
	if err != nil {
		return
	}
	switch mode {
	case 0:
		p.Release(c)
	default:
		c.n++
	}
} // want `Context c checked out by p.Acquire is not released on this path`

// leakFallOff never releases at all.
func leakFallOff(p *ContextPool, rctx any) {
	c, _, _ := p.AcquireTraced(rctx)
	c.n++
} // want `Context c checked out by p.AcquireTraced is not released on this path`

// discard throws the checkout away, unreleasable by construction.
func discard(p *ContextPool, rctx any) {
	_, err := p.Acquire(rctx) // want `p.Acquire result discarded`
	_ = err
	p.Acquire(rctx) // want `p.Acquire result discarded`
}

// transferReturn hands ownership to the caller: silent.
func transferReturn(p *ContextPool, rctx any) (*Context, error) {
	c, err := p.Acquire(rctx)
	if err != nil {
		return nil, err
	}
	return c, nil
}

// transferSend hands ownership through a channel (the pool's own pattern):
// silent.
func transferSend(p *ContextPool, rctx any, out chan *Context) {
	c, err := p.Acquire(rctx)
	if err != nil {
		return
	}
	out <- c
}

// transferCall passes the Context to another owner: silent.
func transferCall(p *ContextPool, rctx any) {
	c, err := p.Acquire(rctx)
	if err != nil {
		return
	}
	_ = p.Exec(c, func(c *Context) { c.n++ })
}

// errGuardEqNil: success work inside `err == nil`, failure branch holds
// nothing.
func errGuardEqNil(p *ContextPool, rctx any) {
	c, err := p.Acquire(rctx)
	if err == nil {
		c.n++
		p.Release(c)
	}
}

// deferClosure releases inside a deferred closure.
func deferClosure(p *ContextPool, rctx any) {
	c, err := p.Acquire(rctx)
	if err != nil {
		return
	}
	defer func() {
		c.n--
		p.Release(c)
	}()
	c.n++
}

// otherAcquire is a different Acquire (not on a ContextPool) and must not be
// tracked.
type filePool struct{}

func (filePool) Acquire() (*Context, error) { return nil, nil }

func otherAcquire(f filePool) {
	c, err := f.Acquire()
	_, _ = c, err
}
