package chanown_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/chanown"
)

func TestChanown(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", chanown.Analyzer)
}
