// Package chanown checks the server ContextPool's channel
// ownership-transfer contract. An spgemm.Context is not safe for concurrent
// use; the pool keeps it safe by construction — a Context lives either in
// the pool's channel or in exactly one holder — and that construction only
// holds if every checkout is returned. For each
//
//	c, err := pool.Acquire(ctx)
//	c, queued, err := pool.AcquireTraced(ctx)
//
// the analyzer requires pool.Release(c) (deferred or explicit) on every
// control-flow path where the checkout succeeded. Two outs are recognized:
//
//   - error paths: inside `if err != nil { ... }` the checkout failed and
//     nothing is held, so early returns there are clean;
//   - explicit ownership transfer: a Context that is returned, stored,
//     sent on a channel, or passed to a function other than Release has a
//     new owner, and the analyzer goes silent (the transfer is the pattern
//     — the pool's channel send IS the happens-before edge; what the pass
//     forbids is the silent drop, where a *Context leaks out of the pool's
//     accounting forever and the pool shrinks by one).
//
// Like poolpair, the walk is path-sensitive: branch arms run on copies of
// the live set and join by union, so a Release on one arm does not excuse
// the other.
package chanown

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the chanown pass.
var Analyzer = &analysis.Analyzer{
	Name: "chanown",
	Doc:  "ContextPool checkouts must be Released or explicitly transferred on every path",
	Hint: "put `defer pool.Release(c)` right after the err check, or hand the Context to a new owner explicitly (return/store/send it)",
	Run:  run,
}

// poolType is the named type whose Acquire/AcquireTraced/Release methods
// form the checkout contract.
const poolType = "ContextPool"

// acquireMethods maps acquire method names to their result arity (the
// checked-out Context is always result 0, the error always last).
var acquireMethods = map[string]int{
	"Acquire":       2, // (*spgemm.Context, error)
	"AcquireTraced": 3, // (*spgemm.Context, bool, error)
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				checkFunc(pass, fd)
			}
		}
	}
	return nil
}

// resource is one tracked Context checkout.
type resource struct {
	obj     types.Object // the Context variable
	errObj  types.Object // the paired error variable (may be nil)
	name    string
	kind    string // printed acquire expression, for messages
	pool    string // pool expression, for the hint in messages
	escaped bool
}

type checker struct {
	pass      *analysis.Pass
	resources map[types.Object]*resource
	errOf     map[types.Object]*resource // error object → its checkout
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	c := &checker{
		pass:      pass,
		resources: make(map[types.Object]*resource),
		errOf:     make(map[types.Object]*resource),
	}
	c.collect(fd.Body)
	if len(c.resources) == 0 {
		return
	}
	c.markEscapes(fd.Body)
	live := make(map[types.Object]bool)
	if c.walkStmts(fd.Body.List, live) {
		c.reportLive(fd.Body.Rbrace, live)
	}
}

// acquireCall returns the acquire call's method name if the call is
// pool.Acquire/pool.AcquireTraced on a ContextPool-typed receiver. When type
// information cannot resolve the receiver the call is NOT treated as a
// checkout — mempool.Acquire and friends share the bare name, and a false
// positive here would fire on every hot-path checkout poolpair already
// owns.
func (c *checker) acquireCall(call *ast.CallExpr) (string, bool) {
	name := analysis.CalleeName(call)
	if _, ok := acquireMethods[name]; !ok {
		return "", false
	}
	if analysis.ReceiverTypeName(c.pass.TypesInfo, call) != poolType {
		return "", false
	}
	return name, true
}

// releaseCall reports whether the call is pool.Release(x) on a ContextPool.
func (c *checker) releaseCall(call *ast.CallExpr) bool {
	if analysis.CalleeName(call) != "Release" || len(call.Args) != 1 {
		return false
	}
	return analysis.ReceiverTypeName(c.pass.TypesInfo, call) == poolType
}

// poolExpr renders the receiver of an acquire call for messages ("s.pool").
func poolExpr(call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		return analysis.ExprString(sel.X)
	}
	return "pool"
}

// collect finds `c, [queued,] err := pool.Acquire*(ctx)` checkouts and
// flags checkouts whose Context result is discarded.
func (c *checker) collect(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// Tuple form only: one call on the RHS, 2 or 3 results.
			if len(n.Rhs) != 1 {
				return true
			}
			call, ok := n.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := c.acquireCall(call)
			if !ok || len(n.Lhs) != acquireMethods[name] {
				return true
			}
			ctxID, ok := n.Lhs[0].(*ast.Ident)
			if !ok {
				return true
			}
			if ctxID.Name == "_" {
				c.pass.Reportf(call.Pos(),
					"%s result discarded: the checked-out Context can never be returned to the pool",
					analysis.ExprString(call.Fun))
				return true
			}
			obj := c.objectOf(ctxID)
			if obj == nil {
				return true
			}
			res := &resource{
				obj:  obj,
				name: ctxID.Name,
				kind: analysis.ExprString(call.Fun),
				pool: poolExpr(call),
			}
			if errID, ok := n.Lhs[len(n.Lhs)-1].(*ast.Ident); ok && errID.Name != "_" {
				if errObj := c.objectOf(errID); errObj != nil {
					res.errObj = errObj
					c.errOf[errObj] = res
				}
			}
			c.resources[obj] = res
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				if _, isAcq := c.acquireCall(call); isAcq {
					c.pass.Reportf(call.Pos(),
						"%s result discarded: the checked-out Context can never be returned to the pool",
						analysis.ExprString(call.Fun))
				}
			}
		}
		return true
	})
}

// objectOf resolves an identifier to its object (definition or use).
func (c *checker) objectOf(id *ast.Ident) types.Object {
	info := c.pass.TypesInfo
	if info == nil {
		return nil
	}
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// markEscapes marks Contexts whose variable leaves the function's hands —
// returned, stored, sent, or passed to a call other than Release — as
// ownership transfers. Transfer is legal and silent; the analyzer only
// polices paths that drop the Context on the floor.
func (c *checker) markEscapes(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				c.escapeIdentsIn(r)
			}
		case *ast.AssignStmt:
			for _, r := range n.Rhs {
				if _, ok := r.(*ast.CallExpr); ok {
					continue
				}
				c.escapeIdentsIn(r)
			}
		case *ast.CallExpr:
			isRelease := c.releaseCall(n)
			for _, arg := range n.Args {
				res := c.resourceFor(arg)
				if res == nil {
					c.escapeIdentsIn(arg)
					continue
				}
				if !isRelease {
					res.escaped = true
				}
			}
		case *ast.CompositeLit:
			for _, e := range n.Elts {
				c.escapeIdentsIn(e)
			}
		case *ast.SendStmt:
			c.escapeIdentsIn(n.Value)
		}
		return true
	})
}

// resourceFor returns the tracked checkout named directly by e, if any.
func (c *checker) resourceFor(e ast.Expr) *resource {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	obj := c.objectOf(id)
	if obj == nil {
		return nil
	}
	return c.resources[obj]
}

// escapeIdentsIn marks tracked Contexts used as values inside e as escaped.
// Method calls and field selections on the Context use it in place and are
// not transfers.
func (c *checker) escapeIdentsIn(e ast.Expr) {
	if e == nil {
		return
	}
	switch e := e.(type) {
	case *ast.Ident:
		if res := c.resourceFor(e); res != nil {
			res.escaped = true
		}
	case *ast.SelectorExpr:
		if _, ok := e.X.(*ast.Ident); !ok {
			c.escapeIdentsIn(e.X)
		}
	case *ast.ParenExpr:
		c.escapeIdentsIn(e.X)
	case *ast.StarExpr:
		c.escapeIdentsIn(e.X)
	case *ast.UnaryExpr:
		c.escapeIdentsIn(e.X)
	case *ast.BinaryExpr:
		c.escapeIdentsIn(e.X)
		c.escapeIdentsIn(e.Y)
	case *ast.IndexExpr:
		c.escapeIdentsIn(e.X)
		c.escapeIdentsIn(e.Index)
	case *ast.SliceExpr:
		c.escapeIdentsIn(e.X)
	case *ast.KeyValueExpr:
		c.escapeIdentsIn(e.Value)
	case *ast.CallExpr:
		for _, a := range e.Args {
			c.escapeIdentsIn(a)
		}
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			c.escapeIdentsIn(el)
		}
	default:
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if res := c.resourceFor(id); res != nil {
					res.escaped = true
				}
			}
			return true
		})
	}
}

// releaseTarget returns the checkout a call releases, or nil.
func (c *checker) releaseTarget(call *ast.CallExpr) *resource {
	if !c.releaseCall(call) {
		return nil
	}
	return c.resourceFor(call.Args[0])
}

// errGuard inspects an if condition for `err != nil` / `err == nil` over a
// tracked checkout's error. It returns the checkout and whether the
// NIL-error (checkout succeeded) case is the THEN branch.
func (c *checker) errGuard(cond ast.Expr) (*resource, bool) {
	be, ok := cond.(*ast.BinaryExpr)
	if !ok || (be.Op != token.NEQ && be.Op != token.EQL) {
		return nil, false
	}
	errSide := be.X
	other := be.Y
	if isNilIdent(other) {
		// err OP nil
	} else if isNilIdent(errSide) {
		errSide, other = other, errSide
	} else {
		return nil, false
	}
	_ = other
	id, ok := errSide.(*ast.Ident)
	if !ok {
		return nil, false
	}
	obj := c.objectOf(id)
	if obj == nil {
		return nil, false
	}
	res := c.errOf[obj]
	if res == nil {
		return nil, false
	}
	// err == nil: THEN is the success branch. err != nil: ELSE is.
	return res, be.Op == token.EQL
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// walkStmts walks a statement list updating the live set; it reports whether
// control can fall past the end of the list.
func (c *checker) walkStmts(stmts []ast.Stmt, live map[types.Object]bool) bool {
	for _, s := range stmts {
		if !c.walkStmt(s, live) {
			return false
		}
	}
	return true
}

func copyLive(m map[types.Object]bool) map[types.Object]bool {
	out := make(map[types.Object]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// join unions branch results into dst: a Context live on any surviving
// branch stays live.
func join(dst map[types.Object]bool, branches ...map[types.Object]bool) {
	for _, b := range branches {
		for k, v := range b {
			if v {
				dst[k] = true
			}
		}
	}
}

// walkStmt processes one statement; it returns false when control cannot
// continue past it on the current path.
func (c *checker) walkStmt(s ast.Stmt, live map[types.Object]bool) bool {
	switch s := s.(type) {
	case *ast.AssignStmt:
		c.scanCalls(s, live)
		if len(s.Rhs) == 1 {
			if call, ok := s.Rhs[0].(*ast.CallExpr); ok {
				if _, isAcq := c.acquireCall(call); isAcq && len(s.Lhs) >= 1 {
					if id, ok := s.Lhs[0].(*ast.Ident); ok {
						if obj := c.objectOf(id); obj != nil {
							if res := c.resources[obj]; res != nil && !res.escaped {
								live[obj] = true
							}
						}
					}
				}
			}
		}
		return true
	case *ast.DeferStmt:
		c.deferRelease(s.Call, live)
		return true
	case *ast.ReturnStmt:
		c.reportLive(s.Pos(), live)
		return false
	case *ast.IfStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, live)
		}
		thenLive := copyLive(live)
		elseLive := copyLive(live)
		if res, successIsThen := c.errGuard(s.Cond); res != nil {
			// On the failed-checkout branch nothing is held.
			if successIsThen {
				elseLive[res.obj] = false
			} else {
				thenLive[res.obj] = false
			}
		}
		thenFalls := c.walkStmts(s.Body.List, thenLive)
		elseFalls := true
		if s.Else != nil {
			elseFalls = c.walkStmt(s.Else, elseLive)
		}
		for k := range live {
			delete(live, k)
		}
		if thenFalls {
			join(live, thenLive)
		}
		if elseFalls {
			join(live, elseLive)
		}
		return thenFalls || elseFalls
	case *ast.BlockStmt:
		return c.walkStmts(s.List, live)
	case *ast.ForStmt:
		bodyLive := copyLive(live)
		c.walkStmts(s.Body.List, bodyLive)
		join(live, bodyLive)
		return true
	case *ast.RangeStmt:
		bodyLive := copyLive(live)
		c.walkStmts(s.Body.List, bodyLive)
		join(live, bodyLive)
		return true
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		var body *ast.BlockStmt
		switch sw := s.(type) {
		case *ast.SwitchStmt:
			body = sw.Body
		case *ast.TypeSwitchStmt:
			body = sw.Body
		case *ast.SelectStmt:
			body = sw.Body
		}
		hasDefault := false
		anyFalls := false
		var surviving []map[types.Object]bool
		for _, cc := range body.List {
			var stmts []ast.Stmt
			switch cl := cc.(type) {
			case *ast.CaseClause:
				stmts = cl.Body
				if cl.List == nil {
					hasDefault = true
				}
			case *ast.CommClause:
				stmts = cl.Body
				if cl.Comm == nil {
					hasDefault = true
				}
			}
			caseLive := copyLive(live)
			if c.walkStmts(stmts, caseLive) {
				anyFalls = true
				surviving = append(surviving, caseLive)
			}
		}
		if hasDefault {
			for k := range live {
				delete(live, k)
			}
			join(live, surviving...)
			return anyFalls
		}
		join(live, surviving...)
		return true
	case *ast.BranchStmt:
		return false
	case *ast.LabeledStmt:
		return c.walkStmt(s.Stmt, live)
	default:
		if s != nil {
			c.scanCalls(s, live)
		}
		return true
	}
}

// scanCalls clears liveness for any Release calls nested in the statement.
func (c *checker) scanCalls(s ast.Stmt, live map[types.Object]bool) {
	ast.Inspect(s, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if res := c.releaseTarget(call); res != nil {
				live[res.obj] = false
			}
		}
		return true
	})
}

// deferRelease handles `defer pool.Release(c)` and defers of closures whose
// bodies contain the Release; deferred releases cover every exit path
// including panics.
func (c *checker) deferRelease(call *ast.CallExpr, live map[types.Object]bool) {
	if res := c.releaseTarget(call); res != nil {
		live[res.obj] = false
		return
	}
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if inner, ok := n.(*ast.CallExpr); ok {
				if res := c.releaseTarget(inner); res != nil {
					live[res.obj] = false
				}
			}
			return true
		})
	}
}

// reportLive reports every still-held checkout at an exit point.
func (c *checker) reportLive(pos token.Pos, live map[types.Object]bool) {
	var out []*resource
	for obj, isLive := range live {
		if !isLive {
			continue
		}
		if res := c.resources[obj]; res != nil && !res.escaped {
			out = append(out, res)
		}
	}
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j].name < out[i].name {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	for _, res := range out {
		c.pass.Reportf(pos,
			"Context %s checked out by %s is not released on this path (missing %s.Release(%s) or an explicit ownership transfer)",
			res.name, res.kind, res.pool, res.name)
	}
}
