package hotalloc_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/hotalloc"
)

func TestHotalloc(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", hotalloc.Analyzer)
}
