// Package a is the hotalloc analyzer's fixture: hotpath-annotated functions
// exercising every flagged construct, and unannotated/clean functions that
// must stay silent.
package a

type table struct {
	keys []int32
	used []int32
	name string
}

// accumulate is the clean hot loop shape: indexed writes, self-append,
// arithmetic. Must produce no findings.
//
//spgemm:hotpath
func (t *table) accumulate(key int32) {
	s := key & 15
	t.keys[s] = key
	t.used = append(t.used, s) // self-append: allowed
	for i := range t.keys {
		t.keys[i]++
	}
}

// grow allocates in every way hotalloc knows about.
//
//spgemm:hotpath
func (t *table) grow(n int) []int32 {
	buf := make([]int32, n) // want `allocation in hotpath function: make`
	p := new(table)         // want `allocation in hotpath function: new`
	_ = p
	lit := []int32{1, 2, 3}         // want `composite literal allocates in hotpath function`
	m := map[int32]bool{}           // want `composite literal allocates in hotpath function`
	q := &table{}                   // want `&composite literal allocates in hotpath function`
	other := append(t.keys, lit...) // want `append result not reassigned to its first argument`
	t.name = t.name + "x"           // want `string concatenation allocates in hotpath function`
	bs := []byte(t.name)            // want `conversion .* allocates in hotpath function`
	_ = string(bs)                  // want `conversion .* allocates in hotpath function`
	go func() { _ = m }()           // want `closure literal in hotpath function` `go statement in hotpath function`
	defer func() {}()               // want `closure literal in hotpath function`
	_, _, _ = other, q, buf
	return buf
}

// cold has no annotation: identical constructs, no findings.
func (t *table) cold(n int) []int32 {
	buf := make([]int32, n)
	buf = append(buf, []int32{1}...)
	return buf
}

// valueLit checks that stack-friendly literals pass: struct values and
// fixed-size arrays.
//
//spgemm:hotpath
func valueLit() int32 {
	var arr [4]int32
	s := struct{ a, b int32 }{1, 2}
	arr[0] = s.a
	return arr[0]
}
