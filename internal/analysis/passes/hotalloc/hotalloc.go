// Package hotalloc flags allocation-inducing constructs inside functions
// annotated //spgemm:hotpath.
//
// The paper's kernels (and this port) live or die by the allocate-once,
// reinitialize-per-row discipline of Section 3.2: per-row and per-element
// loops must not allocate. A function whose doc comment carries the
// //spgemm:hotpath directive promises exactly that, and this analyzer makes
// the promise mechanical. Inside a hotpath function it reports:
//
//   - make(...), new(...)
//   - slice and map composite literals, and &T{...}
//   - append whose result is not reassigned to its own first argument
//     (x = append(x, ...) is permitted: the Reserve/high-water-mark
//     discipline amortizes self-appends to zero at steady state)
//   - closure literals (captured variables escape to the heap)
//   - go statements
//   - string concatenation and string<->[]byte/[]rune conversions
//
// defer, recover, and interface-value conversions are the deferhot
// analyzer's territory: they tax the hot path through call overhead and
// devirtualization loss rather than (only) allocation, so the two passes
// split the directive's contract along that line.
//
// Functions that legitimately allocate (growth slow paths, constructors)
// simply must not carry the annotation; there is deliberately no line-level
// suppression mechanism.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Directive is the comment marking a function as allocation-free hot path.
const Directive = "//spgemm:hotpath"

// Analyzer is the hotalloc pass.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "forbid allocating constructs in //spgemm:hotpath functions",
	Hint: "hoist the allocation out of the hot path (Reserve/Ensure scratch up front), or drop the //spgemm:hotpath annotation if this function is allowed to allocate",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !IsHot(fd) {
				continue
			}
			checkBody(pass, fd.Body)
		}
	}
	return nil
}

// IsHot reports whether the function's doc comment contains the directive.
func IsHot(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), Directive) {
			return true
		}
	}
	return false
}

// checkBody walks one hotpath function body, flagging allocation sites.
func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	// Pre-pass: appends whose result is assigned back to their own first
	// argument (x = append(x, ...)) are the amortized-growth idiom and are
	// permitted.
	selfAppend := make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || analysis.CalleeName(call) != "append" || len(call.Args) == 0 {
				continue
			}
			if analysis.ExprString(as.Lhs[i]) == analysis.ExprString(call.Args[0]) {
				selfAppend[call] = true
			}
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure literal in hotpath function (captured variables escape to the heap)")
			return false // the closure's own body is not hot-path code
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "go statement in hotpath function (allocates a goroutine per call)")
		case *ast.CompositeLit:
			if allocatingLiteral(pass, n) {
				pass.Reportf(n.Pos(), "composite literal allocates in hotpath function")
				return false
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "&composite literal allocates in hotpath function")
					return false
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(pass, n.X) {
				pass.Reportf(n.Pos(), "string concatenation allocates in hotpath function")
			}
		case *ast.CallExpr:
			switch analysis.CalleeName(n) {
			case "make":
				if isBuiltin(pass, n) {
					pass.Reportf(n.Pos(), "allocation in hotpath function: make")
				}
			case "new":
				if isBuiltin(pass, n) {
					pass.Reportf(n.Pos(), "allocation in hotpath function: new")
				}
			case "append":
				if isBuiltin(pass, n) && !selfAppend[n] {
					pass.ReportHintf(n.Pos(),
						"append back onto the same slice (x = append(x, ...)) so growth is amortized by the reserve discipline, or write through a presized buffer",
						"append result not reassigned to its first argument in hotpath function")
				}
			default:
				if conv, ok := allocatingConversion(pass, n); ok {
					pass.Reportf(n.Pos(), "conversion %s allocates in hotpath function", conv)
				}
			}
		}
		return true
	})
}

// isBuiltin reports whether the call's callee resolves to a builtin (or
// types are unavailable, in which case the bare name is trusted).
func isBuiltin(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	if pass.TypesInfo == nil {
		return true
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return true
	}
	_, builtin := obj.(*types.Builtin)
	return builtin
}

// allocatingLiteral reports whether the composite literal builds a slice or
// map (heap-allocating); fixed-size arrays and struct values may live on the
// stack and are permitted.
func allocatingLiteral(pass *analysis.Pass, lit *ast.CompositeLit) bool {
	if pass.TypesInfo != nil {
		if tv, ok := pass.TypesInfo.Types[lit]; ok && tv.Type != nil {
			switch tv.Type.Underlying().(type) {
			case *types.Slice, *types.Map:
				return true
			}
			return false
		}
	}
	switch t := lit.Type.(type) {
	case *ast.MapType:
		return true
	case *ast.ArrayType:
		return t.Len == nil // []T{...} is a slice literal
	}
	return false
}

// isString reports whether the expression has static type string.
func isString(pass *analysis.Pass, e ast.Expr) bool {
	if pass.TypesInfo == nil {
		return false
	}
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// allocatingConversion detects string([]byte), []byte(string) and
// []rune(string) conversions, which copy their operand.
func allocatingConversion(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	if pass.TypesInfo == nil || len(call.Args) != 1 {
		return "", false
	}
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() {
		return "", false
	}
	at, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || at.Type == nil {
		return "", false
	}
	dst, src := tv.Type.Underlying(), at.Type.Underlying()
	dstStr := isStringType(dst)
	srcStr := isStringType(src)
	dstSlice := isByteOrRuneSlice(dst)
	srcSlice := isByteOrRuneSlice(src)
	if (dstStr && srcSlice) || (dstSlice && srcStr) {
		return analysis.ExprString(call.Fun) + "(...)", true
	}
	return "", false
}

func isStringType(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
