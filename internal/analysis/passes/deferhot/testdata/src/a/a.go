package a

import "sort"

// adder is a stand-in for Ring[V]: a single-method interface hot code must
// never box values into.
type adder interface {
	Add(a, b float64) float64
}

type plusF64 struct{}

func (plusF64) Add(a, b float64) float64 { return a + b }

type table struct {
	keys []int32
	mu   interface{ Unlock() }
}

// kernelRow is a hotpath body exercising every forbidden construct.
//
//spgemm:hotpath
func kernelRow(t *table, keys []int32) int {
	defer t.mu.Unlock() // want `defer in hotpath function`
	if r := recover(); r != nil { // want `recover in hotpath function`
		return -1
	}
	var r plusF64
	a := adder(r) // want `conversion to interface type adder in hotpath function`
	_ = a
	box(r) // want `argument boxes plusF64 into interface adder in hotpath function`
	sort.Ints(nil)
	n := 0
	for _, k := range keys {
		n += int(k)
	}
	return n
}

func box(a adder) { _ = a }

// setup is un-annotated: the same constructs are fine here (this is where
// the per-worker ring assertion and deferred cleanup belong).
func setup(t *table, r plusF64) adder {
	defer t.mu.Unlock()
	return adder(r)
}

// emptyIface checks the variadic/any sink path.
//
//spgemm:hotpath
func emptyIface(x int) {
	sink(x)      // want `argument boxes int into interface any in hotpath function`
	sink(nil)    // untyped nil is not a boxing conversion
	sinks(1, 2)  // want `argument boxes int into interface any in hotpath function` `argument boxes int into interface any in hotpath function`
	var as []any //
	sinks(as...) // forwarding an existing []any does not box per element
}

func sink(v any)     { _ = v }
func sinks(v ...any) { _ = v }

// assertOK: assertions *from* interfaces read, not box.
//
//spgemm:hotpath
func assertOK(a adder) plusF64 {
	p, _ := a.(plusF64)
	return p
}
