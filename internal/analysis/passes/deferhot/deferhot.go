// Package deferhot forbids the control-flow and abstraction constructs that
// tax //spgemm:hotpath functions without necessarily allocating: defer,
// recover, and conversions of concrete values to interface types.
//
// hotalloc polices allocation; this pass polices the other half of the
// directive's contract. A defer in a per-row function costs a deferproc or
// open-coded frame bookkeeping per call and pins cleanup to function exit
// (the kernels want explicit cleanup at loop granularity); recover implies a
// defer and a panic-path the kernels must not have; and an interface
// conversion is where devirtualization dies — once a concrete ring or
// accumulator value is boxed, every method on it is an indirect call and,
// for non-pointer non-zero-size values, a heap box as well. The
// hand-devirtualized fast paths keep their one type assertion per worker in
// un-annotated setup code for exactly this reason.
package deferhot

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/passes/hotalloc"
)

// Analyzer is the deferhot pass.
var Analyzer = &analysis.Analyzer{
	Name: "deferhot",
	Doc:  "forbid defer, recover, and interface conversions in //spgemm:hotpath functions",
	Hint: "move the construct to un-annotated setup/driver code (assert rings to concrete types once per worker, clean up explicitly at loop exit), or drop the //spgemm:hotpath annotation",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hotalloc.IsHot(fd) {
				continue
			}
			checkBody(pass, fd.Body)
		}
	}
	return nil
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// hotalloc already rejects closures in hotpath bodies; their
			// contents are not hot-path code.
			return false
		case *ast.DeferStmt:
			pass.Reportf(n.Pos(), "defer in hotpath function (per-call scheduling cost; use explicit cleanup)")
		case *ast.CallExpr:
			if analysis.CalleeName(n) == "recover" && isBuiltin(pass, n) {
				pass.Reportf(n.Pos(), "recover in hotpath function (implies a defer/panic path the kernels must not have)")
			}
			if ifaceName, ok := explicitIfaceConversion(pass, n); ok {
				pass.Reportf(n.Pos(), "conversion to interface type %s in hotpath function (boxes the value; methods become indirect calls)", ifaceName)
				return false
			}
			reportIfaceArgs(pass, n)
		case *ast.TypeAssertExpr:
			// Type assertions *from* an interface are reads, not boxing;
			// permitted (and unused by hotpath code today).
		}
		return true
	})
}

// explicitIfaceConversion reports a conversion expression I(x) whose target
// is an interface type and whose operand is a concrete type.
func explicitIfaceConversion(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	if pass.TypesInfo == nil || len(call.Args) != 1 {
		return "", false
	}
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() {
		return "", false
	}
	if !isIface(tv.Type) {
		return "", false
	}
	at, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || at.Type == nil || isIface(at.Type) {
		return "", false
	}
	return types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)), true
}

// reportIfaceArgs flags implicit boxing at call sites: a concrete-typed
// argument passed to an interface-typed parameter. This is how hot-loop
// values usually leak into interfaces (fmt-style sinks, sort.Sort), so the
// explicit-conversion check alone would miss the common case.
func reportIfaceArgs(pass *analysis.Pass, call *ast.CallExpr) {
	if pass.TypesInfo == nil {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || tv.Type == nil || tv.IsType() {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if ok && sig.TypeParams() != nil {
		// Generic call: parameter types mention type parameters, and a
		// Ring[V]-constrained argument is not boxed.
		return
	}
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding a slice, no per-element boxing here
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if pt == nil || !isIface(pt) {
			continue
		}
		at, ok := pass.TypesInfo.Types[arg]
		if !ok || at.Type == nil || isIface(at.Type) || at.IsNil() {
			continue
		}
		pass.Reportf(arg.Pos(), "argument boxes %s into interface %s in hotpath function",
			types.TypeString(at.Type, types.RelativeTo(pass.Pkg)),
			types.TypeString(pt, types.RelativeTo(pass.Pkg)))
	}
}

func isIface(t types.Type) bool {
	if t == nil {
		return false
	}
	if _, ok := t.(*types.TypeParam); ok {
		return false
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

func isBuiltin(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	if pass.TypesInfo == nil {
		return true
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return true
	}
	_, builtin := obj.(*types.Builtin)
	return builtin
}
