package deferhot_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/deferhot"
)

func TestDeferhot(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", deferhot.Analyzer)
}
