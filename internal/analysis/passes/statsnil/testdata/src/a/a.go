// Package a is the statsnil fixture: mock stats types with the spgemm shapes.
package a

// ExecStats mirrors spgemm.ExecStats.
type ExecStats struct {
	Flops   int64
	Workers []WorkerStats
}

func (s *ExecStats) addPhase(p, d int64) {
	if s == nil {
		return
	}
	s.Flops += d
}

func (s *ExecStats) reset() { s.Flops = 0 }

// WorkerStats mirrors spgemm.WorkerStats.
type WorkerStats struct{ Rows int64 }

// Options mirrors spgemm.Options.
type Options struct{ Stats *ExecStats }

func worker(i int) *WorkerStats { return nil }

// guardedUse is the codebase's standard pattern: clean.
func guardedUse(opt Options) {
	if opt.Stats != nil {
		opt.Stats.Flops++
		opt.Stats.reset()
	}
}

// nilSafeCall relies on addPhase's documented nil-receiver check: clean.
func nilSafeCall(opt Options) {
	opt.Stats.addPhase(0, 1)
}

// guardedWorker nil-checks the per-worker lookup: clean.
func guardedWorker(i int) int64 {
	ws := worker(i)
	if ws == nil {
		return 0
	}
	return ws.Rows
}

// unguardedField dereferences the optional stats pointer directly.
func unguardedField(opt Options) {
	opt.Stats.Flops++ // want `possible nil dereference: opt\.Stats \(\*ExecStats\)`
}

// unguardedCall calls a non-nil-safe method without a guard.
func unguardedCall(opt Options) {
	opt.Stats.reset() // want `possible nil dereference: opt\.Stats \(\*ExecStats\)`
}

// unguardedWorker uses the lookup result without checking it.
func unguardedWorker(i int) int64 {
	ws := worker(i)
	return ws.Rows // want `possible nil dereference: ws \(\*WorkerStats\)`
}

// methodBody: the receiver itself is exempt (reset is entered non-nil or is
// the caller's problem), but addPhase still guards explicitly above.
func (s *ExecStats) bump() { s.Flops++ }
