package statsnil_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/statsnil"
)

func TestStatsnil(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", statsnil.Analyzer)
}
