// Package statsnil checks that instrumentation pointers are nil-guarded.
// Stats collection is optional everywhere in this codebase: Options.Stats is
// a *ExecStats that is nil unless the caller opted in, and per-worker
// *WorkerStats lookups return nil for out-of-range workers. Dereferencing
// either without a guard panics precisely on the default (uninstrumented)
// configuration, which plain tests rarely cover.
//
// A use is considered guarded when the same function contains a textual
// nil comparison of the same expression (s != nil / s == nil), when the
// expression is the method's own receiver (methods are entered with the
// caller holding a non-nil value or are themselves nil-safe), or when the
// called method is on the nil-safe allowlist (addPhase documents its own
// nil-receiver check).
package statsnil

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the statsnil pass.
var Analyzer = &analysis.Analyzer{
	Name: "statsnil",
	Doc:  "Options.Stats / ExecStats / WorkerStats pointers must be nil-checked before use",
	Hint: "wrap the use in `if s != nil { ... }` (or call a nil-safe method like addPhase); stats are nil on every uninstrumented run",
	Run:  run,
}

// guardedTypes are the named types whose *pointer* uses require a guard.
var guardedTypes = map[string]bool{
	"ExecStats":   true,
	"WorkerStats": true,
}

// nilSafeMethods may be called on a nil receiver by documented contract.
var nilSafeMethods = map[string]bool{
	"addPhase": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		// Tests build concrete stats by hand and dereference them freely; a
		// nil slip there fails the test run loudly. The guard discipline is
		// about production code running uninstrumented, so _test.go files
		// are out of scope.
		if pass.Fset != nil &&
			strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	recv := receiverName(fd)
	guards := nilComparisons(fd.Body)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name := pointerStatsType(pass.TypesInfo, sel.X)
		if name == "" {
			return true
		}
		if nilSafeMethods[sel.Sel.Name] {
			return true
		}
		expr := analysis.ExprString(sel.X)
		if expr == recv {
			return true
		}
		if guards[expr] {
			return true
		}
		pass.Reportf(sel.Pos(),
			"possible nil dereference: %s (*%s) is used without a nil check in this function",
			expr, name)
		// Don't descend: a.b.c would re-report the inner selector.
		return false
	})
}

// receiverName returns the name of fd's receiver variable, or "".
func receiverName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return ""
	}
	return fd.Recv.List[0].Names[0].Name
}

// pointerStatsType returns the guarded type name when e's static type is a
// pointer to one of the guarded named types, else "".
func pointerStatsType(info *types.Info, e ast.Expr) string {
	if info == nil {
		return ""
	}
	t := info.TypeOf(e)
	if t == nil {
		return ""
	}
	ptr, ok := types.Unalias(t).(*types.Pointer)
	if !ok {
		return ""
	}
	named, ok := types.Unalias(ptr.Elem()).(*types.Named)
	if !ok {
		return ""
	}
	name := named.Obj().Name()
	if !guardedTypes[name] {
		return ""
	}
	return name
}

// nilComparisons collects the printed forms of every expression compared
// against nil anywhere in the body (s != nil, s == nil, including inside
// && / || chains and if-init statements). The check is intentionally
// function-scoped and textual: a guard anywhere in the function blesses all
// uses of that expression, which matches how the codebase writes its guards
// (one `if x.Stats != nil { ... }` block per function).
func nilComparisons(body *ast.BlockStmt) map[string]bool {
	out := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		bin, ok := n.(*ast.BinaryExpr)
		if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
			return true
		}
		if isNilIdent(bin.Y) {
			out[analysis.ExprString(bin.X)] = true
		} else if isNilIdent(bin.X) {
			out[analysis.ExprString(bin.Y)] = true
		}
		return true
	})
	return out
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}
