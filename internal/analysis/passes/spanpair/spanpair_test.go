package spanpair_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/spanpair"
)

func TestSpanpair(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", spanpair.Analyzer)
}
