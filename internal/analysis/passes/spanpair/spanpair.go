// Package spanpair checks the obs.Tracer span discipline:
//
//  1. Every tracer Begin(lane, name) must have a matching End(lane, name) —
//     same name expression — somewhere in the same top-level function
//     (including inside defers and nested closures, which is where the
//     worker-wrapping idiom puts them). A Begin with no matching End leaves
//     the span open forever and corrupts the Chrome trace and the imbalance
//     report; an End with no Begin closes someone else's span.
//
//  2. The process tracer must be nil-checked before use: obs.Active()
//     returns nil when tracing is disabled, so chained calls like
//     obs.Active().Begin(...) are a latent panic on every disabled-tracing
//     run (exactly the configuration benchmarks use).
//
// The pairing check is intentionally name-textual: it compares the printed
// form of the name argument, which pairs tr.Begin(w+1, name) with
// tr.End(w+1, name) across a worker closure without a control-flow graph.
package spanpair

import (
	"go/ast"

	"repro/internal/analysis"
)

// Analyzer is the spanpair pass.
var Analyzer = &analysis.Analyzer{
	Name: "spanpair",
	Doc:  "tracer Begin/End spans must pair up and obs.Active() must be nil-checked",
	Hint: "every tracer Begin needs an End with the same span name on all paths; hold obs.Active() in a variable and nil-check it before calling tracer methods",
	Run:  run,
}

// tracerCall describes one Begin/End call site.
type tracerCall struct {
	pos  ast.Node
	name string // printed form of the span-name argument
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	var begins, ends []tracerCall
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		// Check 2: method call chained directly onto Active().
		if inner, ok := sel.X.(*ast.CallExpr); ok {
			if analysis.CalleeName(inner) == "Active" {
				pass.Reportf(call.Pos(),
					"method call on unchecked obs.Active() result (nil when tracing is disabled)")
				return true // don't also drag it into span pairing
			}
		}
		// Check 1: collect Begin/End on Tracer receivers.
		if !isTracerReceiver(pass, call) {
			return true
		}
		switch sel.Sel.Name {
		case "Begin":
			if len(call.Args) == 2 {
				begins = append(begins, tracerCall{pos: call, name: analysis.ExprString(call.Args[1])})
			}
		case "End":
			if len(call.Args) == 2 {
				ends = append(ends, tracerCall{pos: call, name: analysis.ExprString(call.Args[1])})
			}
		}
		return true
	})

	// Pair Begins against Ends by span-name text.
	remaining := make(map[string]int)
	for _, e := range ends {
		remaining[e.name]++
	}
	for _, b := range begins {
		if remaining[b.name] > 0 {
			remaining[b.name]--
			continue
		}
		pass.Reportf(b.pos.Pos(),
			"tracer span %s opened but never ended in this function", b.name)
	}
	// Surplus Ends: more Ends than Begins for a name.
	opened := make(map[string]int)
	for _, b := range begins {
		opened[b.name]++
	}
	for _, e := range ends {
		if opened[e.name] > 0 {
			opened[e.name]--
			continue
		}
		pass.Reportf(e.pos.Pos(),
			"tracer span %s ended but never opened in this function", e.name)
	}
}

// isTracerReceiver reports whether the method call's receiver is an
// obs.Tracer (by named-type name; falls back to accepting when type
// information is unavailable).
func isTracerReceiver(pass *analysis.Pass, call *ast.CallExpr) bool {
	name := analysis.ReceiverTypeName(pass.TypesInfo, call)
	if name == "" {
		// Partial type info: match on the method-name shape alone.
		return true
	}
	return name == "Tracer"
}
