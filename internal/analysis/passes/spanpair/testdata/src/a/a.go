// Package a is the spanpair fixture: a mock Tracer with the obs API shape.
package a

// Tracer mirrors obs.Tracer's span methods.
type Tracer struct{}

func (t *Tracer) Begin(lane int, name string) {}
func (t *Tracer) End(lane int, name string)   {}

// Active mirrors obs.Active: nil when tracing is disabled.
func Active() *Tracer { return nil }

// paired opens and closes the same span: clean.
func paired(tr *Tracer, w int) {
	tr.Begin(w+1, "numeric")
	work()
	tr.End(w+1, "numeric")
}

// pairedAcrossClosure is the pool.go idiom: Begin/End inside a wrapping
// closure, matched within the same top-level function.
func pairedAcrossClosure(tr *Tracer, name string) {
	body := func(w int) {
		tr.Begin(w+1, name)
		work()
		tr.End(w+1, name)
	}
	body(0)
}

// pairedViaDefer closes the span in a defer: clean.
func pairedViaDefer(tr *Tracer) {
	tr.Begin(0, "phase")
	defer tr.End(0, "phase")
	work()
}

// leaks opens a span and forgets it.
func leaks(tr *Tracer) {
	tr.Begin(0, "symbolic") // want `tracer span "symbolic" opened but never ended`
	work()
}

// mismatched closes a different span than it opened.
func mismatched(tr *Tracer) {
	tr.Begin(0, "alloc") // want `tracer span "alloc" opened but never ended`
	work()
	tr.End(0, "assemble") // want `tracer span "assemble" ended but never opened`
}

// chained calls a tracer method on the unchecked Active() result.
func chained() {
	Active().Begin(0, "oops") // want `method call on unchecked (obs\.)?Active\(\) result`
}

// guarded is the correct disabled-tracing pattern.
func guarded() {
	if tr := Active(); tr != nil {
		tr.Begin(0, "ok")
		work()
		tr.End(0, "ok")
	}
}

func work() {}
