package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/matrix"
	"repro/internal/spgemm"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func uploadBinary(t *testing.T, base string, m *matrix.CSR) MatrixInfo {
	t.Helper()
	var buf bytes.Buffer
	if err := matrix.WriteCSRBinary(&buf, m); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/matrices", ContentTypeCSRBinary, &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("upload: status %d: %s", resp.StatusCode, body)
	}
	var info MatrixInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	return info
}

func postMultiply(t *testing.T, base string, req MultiplyRequest) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/multiply", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func decodeMultiply(t *testing.T, body []byte) MultiplyResponse {
	t.Helper()
	var mr MultiplyResponse
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatalf("decode multiply response %q: %v", body, err)
	}
	return mr
}

func TestUploadInternAndInfo(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	rng := rand.New(rand.NewSource(1))
	m := matrix.Random(40, 50, 0.1, rng)

	info := uploadBinary(t, ts.URL, m)
	if info.Rows != 40 || info.Cols != 50 || info.NNZ != m.NNZ() || info.Interned {
		t.Fatalf("bad upload info: %+v", info)
	}

	// Same matrix as Matrix Market text interns to the same hash.
	var mm bytes.Buffer
	if err := matrix.WriteMatrixMarket(&mm, m); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/matrices", "text/plain", &mm)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var again MatrixInfo
	if err := json.NewDecoder(resp.Body).Decode(&again); err != nil {
		t.Fatal(err)
	}
	if again.Hash != info.Hash || !again.Interned {
		t.Fatalf("re-upload did not intern: %+v vs %+v", again, info)
	}

	// Metadata lookup.
	resp2, err := http.Get(ts.URL + "/v1/matrices/" + info.Hash)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("info: status %d", resp2.StatusCode)
	}

	// Unknown hash is a 404.
	resp3, err := http.Get(ts.URL + "/v1/matrices/deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	if resp3.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown matrix: status %d, want 404", resp3.StatusCode)
	}
}

func TestMultiplyAndPlanCacheHit(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	rng := rand.New(rand.NewSource(2))
	a := matrix.Random(60, 50, 0.1, rng)
	b := matrix.Random(50, 70, 0.1, rng)
	ha := uploadBinary(t, ts.URL, a).Hash
	hb := uploadBinary(t, ts.URL, b).Hash

	want, err := spgemm.Multiply(a, b, &spgemm.Options{Algorithm: spgemm.AlgHash})
	if err != nil {
		t.Fatal(err)
	}

	code, body := postMultiply(t, ts.URL, MultiplyRequest{A: ha, B: hb, Algorithm: "hash"})
	if code != http.StatusOK {
		t.Fatalf("multiply: status %d: %s", code, body)
	}
	first := decodeMultiply(t, body)
	if first.PlanCacheHit {
		t.Fatal("first multiply claims a plan cache hit")
	}
	if first.NNZ != want.NNZ() || first.Rows != 60 || first.Cols != 70 {
		t.Fatalf("wrong product shape: %+v", first)
	}

	code, body = postMultiply(t, ts.URL, MultiplyRequest{A: ha, B: hb, Algorithm: "hash"})
	if code != http.StatusOK {
		t.Fatalf("repeat multiply: status %d: %s", code, body)
	}
	second := decodeMultiply(t, body)
	if !second.PlanCacheHit {
		t.Fatal("repeat multiply missed the plan cache")
	}
	if second.NNZ != first.NNZ {
		t.Fatalf("repeat product changed: %+v vs %+v", second, first)
	}

	// The hit is visible on /metrics — the counter the load generator and
	// CI smoke assert on.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	metrics, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(metrics), "server_plan_cache_hits_total") {
		t.Fatal("/metrics missing server_plan_cache_hits_total")
	}
}

func TestMultiplyReturnMatrixRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	rng := rand.New(rand.NewSource(3))
	a := matrix.Random(30, 25, 0.15, rng)
	b := matrix.Random(25, 35, 0.15, rng)
	ha := uploadBinary(t, ts.URL, a).Hash
	hb := uploadBinary(t, ts.URL, b).Hash

	req, _ := json.Marshal(MultiplyRequest{A: ha, B: hb, Algorithm: "hash", Return: "matrix"})
	resp, err := http.Post(ts.URL+"/v1/multiply", "application/json", bytes.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != ContentTypeCSRBinary {
		t.Fatalf("content type %q", ct)
	}
	got, err := matrix.ReadCSRBinary(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	want, err := spgemm.Multiply(a, b, &spgemm.Options{Algorithm: spgemm.AlgHash})
	if err != nil {
		t.Fatal(err)
	}
	if got.NNZ() != want.NNZ() || got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("streamed product differs: %v vs %v", got, want)
	}
	for i := range want.ColIdx {
		if got.ColIdx[i] != want.ColIdx[i] || got.Val[i] != want.Val[i] {
			t.Fatalf("streamed product differs at entry %d", i)
		}
	}
}

func TestMultiplyReturnStore(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	rng := rand.New(rand.NewSource(4))
	a := matrix.Random(20, 20, 0.2, rng)
	ha := uploadBinary(t, ts.URL, a).Hash

	code, body := postMultiply(t, ts.URL, MultiplyRequest{A: ha, B: ha, Return: "store"})
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	mr := decodeMultiply(t, body)
	if mr.Hash == "" {
		t.Fatal("return=store produced no hash")
	}
	// The product is immediately addressable, e.g. for A·A·A.
	code, body = postMultiply(t, ts.URL, MultiplyRequest{A: mr.Hash, B: ha})
	if code != http.StatusOK {
		t.Fatalf("chained multiply: status %d: %s", code, body)
	}
}

func TestMultiplySemiringOverride(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	rng := rand.New(rand.NewSource(5))
	a := matrix.Random(25, 25, 0.2, rng)
	ha := uploadBinary(t, ts.URL, a).Hash

	code, body := postMultiply(t, ts.URL, MultiplyRequest{A: ha, B: ha, Semiring: "min-plus"})
	if code != http.StatusOK {
		t.Fatalf("min-plus: status %d: %s", code, body)
	}
	mr := decodeMultiply(t, body)
	if mr.Semiring != "min-plus" || mr.PlanCacheHit {
		t.Fatalf("bad min-plus response: %+v", mr)
	}
}

func TestMultiplyErrorPaths(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	rng := rand.New(rand.NewSource(6))
	a := matrix.Random(10, 10, 0.3, rng)
	tall := matrix.Random(7, 3, 0.5, rng)
	ha := uploadBinary(t, ts.URL, a).Hash
	htall := uploadBinary(t, ts.URL, tall).Hash

	post := func(body string) (int, string) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/multiply", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	cases := []struct {
		name string
		body string
		want int
	}{
		{"unknown A hash", fmt.Sprintf(`{"a":"beef","b":%q}`, ha), http.StatusNotFound},
		{"unknown B hash", fmt.Sprintf(`{"a":%q,"b":"beef"}`, ha), http.StatusNotFound},
		{"dimension mismatch", fmt.Sprintf(`{"a":%q,"b":%q}`, ha, htall), http.StatusBadRequest},
		{"malformed JSON", `{"a":`, http.StatusBadRequest},
		{"not JSON", `hello`, http.StatusBadRequest},
		{"unknown field", fmt.Sprintf(`{"a":%q,"b":%q,"bogus":1}`, ha, ha), http.StatusBadRequest},
		{"trailing garbage", fmt.Sprintf(`{"a":%q,"b":%q} extra`, ha, ha), http.StatusBadRequest},
		{"missing hashes", `{}`, http.StatusBadRequest},
		{"bad algorithm", fmt.Sprintf(`{"a":%q,"b":%q,"algorithm":"quantum"}`, ha, ha), http.StatusBadRequest},
		{"bad semiring", fmt.Sprintf(`{"a":%q,"b":%q,"semiring":"xor"}`, ha, ha), http.StatusBadRequest},
		{"bad return", fmt.Sprintf(`{"a":%q,"b":%q,"return":"email"}`, ha, ha), http.StatusBadRequest},
		{"negative workers", fmt.Sprintf(`{"a":%q,"b":%q,"workers":-1}`, ha, ha), http.StatusBadRequest},
	}
	for _, tc := range cases {
		code, body := post(tc.body)
		if code != tc.want {
			t.Errorf("%s: status %d (want %d): %s", tc.name, code, tc.want, body)
		}
		if !strings.Contains(body, `"error"`) {
			t.Errorf("%s: error body missing error field: %s", tc.name, body)
		}
	}
}

func TestUploadErrorPaths(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxUploadBytes: 256, MaxDim: 64, MaxNNZ: 128})

	// Garbage in both formats.
	for _, ct := range []string{"text/plain", ContentTypeCSRBinary} {
		resp, err := http.Post(ts.URL+"/v1/matrices", ct, strings.NewReader("not a matrix"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s garbage: status %d, want 400", ct, resp.StatusCode)
		}
	}

	// Over the body-size limit: 413.
	big := "%%MatrixMarket matrix coordinate real general\n10 10 40\n" + strings.Repeat("1 1 1.0\n", 40)
	resp, err := http.Post(ts.URL+"/v1/matrices", "text/plain", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized upload: status %d, want 413", resp.StatusCode)
	}

	// Within the byte limit but over the shape limit: 400 without the
	// server committing shape-proportional memory.
	bomb := "%%MatrixMarket matrix coordinate real general\n1000000 1000000 0\n"
	resp, err = http.Post(ts.URL+"/v1/matrices", "text/plain", strings.NewReader(bomb))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("shape bomb: status %d, want 400", resp.StatusCode)
	}
}

// TestAdmissionControl429 pins the backpressure contract: with every
// Context checked out and the queue full, a multiply is rejected
// immediately with 429 rather than queued indefinitely.
func TestAdmissionControl429(t *testing.T) {
	s, ts := newTestServer(t, Config{Contexts: 1, QueueDepth: 1})
	rng := rand.New(rand.NewSource(7))
	a := matrix.Random(10, 10, 0.3, rng)
	ha := uploadBinary(t, ts.URL, a).Hash

	// Drain the pool: the one Context is now "in flight".
	ctx, err := s.pool.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// Fill the one queue slot with a request that will block.
	queued := make(chan struct {
		code int
		body []byte
	}, 1)
	go func() {
		code, body := postMultiply(t, ts.URL, MultiplyRequest{A: ha, B: ha})
		queued <- struct {
			code int
			body []byte
		}{code, body}
	}()
	waitFor(t, func() bool { return s.pool.waiting.Load() == 1 })

	// Queue full: the next request is shed with 429 and a Retry-After.
	req, _ := json.Marshal(MultiplyRequest{A: ha, B: ha})
	resp, err := http.Post(ts.URL+"/v1/multiply", "application/json", bytes.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	body429, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated multiply: status %d, want 429: %s", resp.StatusCode, body429)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 missing Retry-After")
	}

	// Releasing the Context lets the queued request complete normally.
	s.pool.Release(ctx)
	select {
	case r := <-queued:
		if r.code != http.StatusOK {
			t.Fatalf("queued request: status %d: %s", r.code, r.body)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("queued request never completed")
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestConcurrentMultiplies is the -race proof of the checkout-pool
// ownership discipline: many goroutines hammer a small Context pool with
// mixed cache-hitting products and every response must be correct.
func TestConcurrentMultiplies(t *testing.T) {
	_, ts := newTestServer(t, Config{Contexts: 3, QueueDepth: 256, Workers: 2})
	rng := rand.New(rand.NewSource(8))
	a := matrix.Random(80, 60, 0.08, rng)
	b := matrix.Random(60, 90, 0.08, rng)
	sq := matrix.Random(60, 60, 0.08, rng)
	ha := uploadBinary(t, ts.URL, a).Hash
	hb := uploadBinary(t, ts.URL, b).Hash
	hsq := uploadBinary(t, ts.URL, sq).Hash

	wantAB, err := spgemm.Multiply(a, b, &spgemm.Options{Algorithm: spgemm.AlgHash})
	if err != nil {
		t.Fatal(err)
	}
	wantSq, err := spgemm.Multiply(sq, sq, &spgemm.Options{Algorithm: spgemm.AlgHashVec})
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	const perG = 12
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*perG)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				var req MultiplyRequest
				var wantNNZ int64
				if (g+i)%2 == 0 {
					req = MultiplyRequest{A: ha, B: hb, Algorithm: "hash"}
					wantNNZ = wantAB.NNZ()
				} else {
					req = MultiplyRequest{A: hsq, B: hsq, Algorithm: "hashvec"}
					wantNNZ = wantSq.NNZ()
				}
				body, _ := json.Marshal(req)
				resp, err := http.Post(ts.URL+"/v1/multiply", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("status %d: %s", resp.StatusCode, raw)
					return
				}
				var mr MultiplyResponse
				if err := json.Unmarshal(raw, &mr); err != nil {
					errs <- err
					return
				}
				if mr.NNZ != wantNNZ {
					errs <- fmt.Errorf("wrong product nnz %d, want %d", mr.NNZ, wantNNZ)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestStoreEvictionDropsPlans(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	// Budget fits roughly two of the three matrices.
	m1 := matrix.Random(40, 40, 0.2, rng)
	m2 := matrix.Random(40, 40, 0.2, rng)
	m3 := matrix.Random(40, 40, 0.2, rng)
	budget := matrix.WireSize(m1) + matrix.WireSize(m2) + matrix.WireSize(m3)/2

	s, ts := newTestServer(t, Config{MaxStoreBytes: budget})
	h1 := uploadBinary(t, ts.URL, m1).Hash
	h2 := uploadBinary(t, ts.URL, m2).Hash

	// Build a plan for (m1, m1) so there is something to invalidate.
	code, body := postMultiply(t, ts.URL, MultiplyRequest{A: h1, B: h1})
	if code != http.StatusOK {
		t.Fatalf("multiply: %d %s", code, body)
	}
	if s.plans.Len() != 1 {
		t.Fatalf("plan cache has %d entries, want 1", s.plans.Len())
	}

	// Touch m2 so m1 is the LRU victim, then upload m3 to blow the budget.
	if _, ok := s.store.Get(h2); !ok {
		t.Fatal("m2 missing")
	}
	uploadBinary(t, ts.URL, m3)

	if _, ok := s.store.Get(h1); ok {
		t.Fatal("m1 should have been evicted")
	}
	if s.plans.Len() != 0 {
		t.Fatalf("plans referencing an evicted matrix survived: %d", s.plans.Len())
	}
	// A multiply against the evicted hash is now a 404, not a crash.
	code, _ = postMultiply(t, ts.URL, MultiplyRequest{A: h1, B: h1})
	if code != http.StatusNotFound {
		t.Fatalf("evicted-matrix multiply: status %d, want 404", code)
	}
}

func TestPlanCacheLRUEviction(t *testing.T) {
	cache := NewPlanCache(2)
	rng := rand.New(rand.NewSource(10))
	a := matrix.Random(20, 20, 0.2, rng)
	mkPlan := func() *spgemm.Plan {
		p, err := spgemm.NewPlan(a, a, &spgemm.Options{Algorithm: spgemm.AlgHash})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	k1 := PlanKey{A: "1", B: "1", Workers: 1}
	k2 := PlanKey{A: "2", B: "2", Workers: 1}
	k3 := PlanKey{A: "3", B: "3", Workers: 1}
	cache.Add(k1, mkPlan())
	cache.Add(k2, mkPlan())
	if _, ok := cache.Get(k1); !ok { // bump k1: k2 becomes LRU
		t.Fatal("k1 missing")
	}
	cache.Add(k3, mkPlan())
	if _, ok := cache.Get(k2); ok {
		t.Fatal("k2 should have been evicted (LRU)")
	}
	if _, ok := cache.Get(k1); !ok {
		t.Fatal("k1 evicted despite recent use")
	}
	if _, ok := cache.Get(k3); !ok {
		t.Fatal("k3 missing")
	}
}

// TestServeGracefulShutdown exercises the Serve helper the CLI uses: cancel
// the context, and Serve returns after draining without truncating.
func TestServeGracefulShutdown(t *testing.T) {
	s := New(Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- Serve(ctx, ln, s.Handler(), 2*time.Second) }()

	base := "http://" + ln.Addr().String()
	waitFor(t, func() bool {
		resp, err := http.Get(base + "/healthz")
		if err != nil {
			return false
		}
		resp.Body.Close()
		return resp.StatusCode == http.StatusOK
	})
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after cancel")
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("server still accepting connections after shutdown")
	}
}

// TestMultiplyTiledOverrideAndPlanKeyIsolation: "tiled" is accepted as an
// algorithm override, produces the same product as "hash" (the tiled kernel
// is bit-compatible), is plannable (second call hits the plan cache), and
// its cached plan does NOT collide with the hash plan for the same operand
// pair — PlanKey includes the algorithm, so switching algorithms on the
// same matrices must miss the cache and recompute, not replay the other
// kernel's plan.
func TestMultiplyTiledOverrideAndPlanKeyIsolation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	rng := rand.New(rand.NewSource(9))
	a := matrix.Random(60, 50, 0.12, rng)
	b := matrix.Random(50, 70, 0.12, rng)
	ha := uploadBinary(t, ts.URL, a).Hash
	hb := uploadBinary(t, ts.URL, b).Hash

	want, err := spgemm.Multiply(a, b, &spgemm.Options{Algorithm: spgemm.AlgHash})
	if err != nil {
		t.Fatal(err)
	}

	// tiled: first call misses, second hits.
	code, body := postMultiply(t, ts.URL, MultiplyRequest{A: ha, B: hb, Algorithm: "tiled"})
	if code != http.StatusOK {
		t.Fatalf("tiled multiply: status %d: %s", code, body)
	}
	first := decodeMultiply(t, body)
	if first.PlanCacheHit {
		t.Fatal("first tiled multiply claims a plan cache hit")
	}
	if first.NNZ != want.NNZ() || first.Rows != want.Rows || first.Cols != want.Cols {
		t.Fatalf("tiled product shape: %+v, want %dx%d/%d", first, want.Rows, want.Cols, want.NNZ())
	}
	code, body = postMultiply(t, ts.URL, MultiplyRequest{A: ha, B: hb, Algorithm: "tiled"})
	if code != http.StatusOK {
		t.Fatalf("repeat tiled multiply: status %d: %s", code, body)
	}
	if second := decodeMultiply(t, body); !second.PlanCacheHit {
		t.Fatal("repeat tiled multiply missed the plan cache")
	}

	// hash on the SAME operands: a different PlanKey, so the first call
	// must miss (no collision with the cached tiled plan) and still agree.
	code, body = postMultiply(t, ts.URL, MultiplyRequest{A: ha, B: hb, Algorithm: "hash"})
	if code != http.StatusOK {
		t.Fatalf("hash multiply: status %d: %s", code, body)
	}
	hashFirst := decodeMultiply(t, body)
	if hashFirst.PlanCacheHit {
		t.Fatal("hash multiply hit the tiled plan: PlanKey collision across algorithms")
	}
	if hashFirst.NNZ != want.NNZ() {
		t.Fatalf("hash product nnz %d, want %d", hashFirst.NNZ, want.NNZ())
	}
	code, body = postMultiply(t, ts.URL, MultiplyRequest{A: ha, B: hb, Algorithm: "hash"})
	if code != http.StatusOK {
		t.Fatalf("repeat hash multiply: status %d: %s", code, body)
	}
	if hashSecond := decodeMultiply(t, body); !hashSecond.PlanCacheHit {
		t.Fatal("repeat hash multiply missed its own plan")
	}

	// Full-matrix round trip through the tiled path: entry-for-entry equal
	// to the hash kernel's product.
	req, _ := json.Marshal(MultiplyRequest{A: ha, B: hb, Algorithm: "tiled", Return: "matrix"})
	resp, err := http.Post(ts.URL+"/v1/multiply", "application/json", bytes.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tiled matrix return: status %d", resp.StatusCode)
	}
	got, err := matrix.ReadCSRBinary(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.ColIdx {
		if got.ColIdx[i] != want.ColIdx[i] || got.Val[i] != want.Val[i] {
			t.Fatalf("tiled product differs from hash at entry %d", i)
		}
	}
}

// TestMultiplySharded: "sharded" is accepted as an algorithm override, its
// product is bit-identical to "hash" (the stripe engine's acceptance
// criterion), it is plannable (second call hits the plan cache), and the
// cached sharded plan does not collide with the hash plan for the same
// operand pair.
func TestMultiplySharded(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	rng := rand.New(rand.NewSource(11))
	a := matrix.Random(70, 55, 0.12, rng)
	b := matrix.Random(55, 65, 0.12, rng)
	ha := uploadBinary(t, ts.URL, a).Hash
	hb := uploadBinary(t, ts.URL, b).Hash

	want, err := spgemm.Multiply(a, b, &spgemm.Options{Algorithm: spgemm.AlgHash})
	if err != nil {
		t.Fatal(err)
	}

	code, body := postMultiply(t, ts.URL, MultiplyRequest{A: ha, B: hb, Algorithm: "sharded"})
	if code != http.StatusOK {
		t.Fatalf("sharded multiply: status %d: %s", code, body)
	}
	first := decodeMultiply(t, body)
	if first.PlanCacheHit {
		t.Fatal("first sharded multiply claims a plan cache hit")
	}
	if first.Algorithm != "sharded" {
		t.Fatalf("resolved algorithm %q, want sharded", first.Algorithm)
	}
	if first.NNZ != want.NNZ() || first.Rows != want.Rows || first.Cols != want.Cols {
		t.Fatalf("sharded product shape: %+v, want %dx%d/%d", first, want.Rows, want.Cols, want.NNZ())
	}
	code, body = postMultiply(t, ts.URL, MultiplyRequest{A: ha, B: hb, Algorithm: "sharded"})
	if code != http.StatusOK {
		t.Fatalf("repeat sharded multiply: status %d: %s", code, body)
	}
	if second := decodeMultiply(t, body); !second.PlanCacheHit {
		t.Fatal("repeat sharded multiply missed the plan cache")
	}

	// hash on the same operands must miss: PlanKey includes the algorithm.
	code, body = postMultiply(t, ts.URL, MultiplyRequest{A: ha, B: hb, Algorithm: "hash"})
	if code != http.StatusOK {
		t.Fatalf("hash multiply: status %d: %s", code, body)
	}
	if hashFirst := decodeMultiply(t, body); hashFirst.PlanCacheHit {
		t.Fatal("hash multiply hit the sharded plan: PlanKey collision across algorithms")
	}

	// Full-matrix round trip: entry-for-entry equal to the hash product.
	req, _ := json.Marshal(MultiplyRequest{A: ha, B: hb, Algorithm: "sharded", Return: "matrix"})
	resp, err := http.Post(ts.URL+"/v1/multiply", "application/json", bytes.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sharded matrix return: status %d", resp.StatusCode)
	}
	got, err := matrix.ReadCSRBinary(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if got.NNZ() != want.NNZ() {
		t.Fatalf("sharded nnz %d, want %d", got.NNZ(), want.NNZ())
	}
	for i := range want.ColIdx {
		if got.ColIdx[i] != want.ColIdx[i] || got.Val[i] != want.Val[i] {
			t.Fatalf("sharded product differs from hash at entry %d", i)
		}
	}
}
