package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/matrix"
	"repro/internal/obs"
	"repro/internal/spgemm"
)

// TestConcurrentRequestTraces is the -race exercise of the request-trace
// path: N concurrent multiplies get distinct request IDs, every retained
// trace has an internally consistent span tree (spans inside the request
// window, kernel phase sub-spans inside the kernel span), and the per-trace
// phase accounting honors PhaseSum <= Total.
func TestConcurrentRequestTraces(t *testing.T) {
	s, ts := newTestServer(t, Config{Contexts: 3, RequestRing: 128})
	rng := rand.New(rand.NewSource(7))
	a := uploadBinary(t, ts.URL, matrix.Random(60, 60, 0.08, rng))
	b := uploadBinary(t, ts.URL, matrix.Random(60, 60, 0.08, rng))

	const N = 24
	ids := make([]string, N)
	var wg sync.WaitGroup
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, body := postMultiply(t, ts.URL, MultiplyRequest{A: a.Hash, B: b.Hash, Algorithm: "hash"})
			if code != http.StatusOK {
				t.Errorf("multiply %d: status %d: %s", i, code, body)
				return
			}
			ids[i] = decodeMultiply(t, body).RequestID
		}(i)
	}
	wg.Wait()

	seen := make(map[string]bool, N)
	for i, id := range ids {
		if id == "" {
			t.Fatalf("request %d: empty RequestID with tracing enabled", i)
		}
		if seen[id] {
			t.Fatalf("request ID %q issued twice", id)
		}
		seen[id] = true
	}

	traces := s.reqobs.recent.Snapshot()
	if len(traces) != N {
		t.Fatalf("ring holds %d traces, want %d", len(traces), N)
	}
	const slackMs = 2.0
	for _, tr := range traces {
		if !seen[tr.ID] {
			t.Fatalf("ring trace %q not among issued IDs", tr.ID)
		}
		var kernel, kernelPhases float64
		for _, sp := range tr.Spans {
			if sp.StartMs < -slackMs || sp.StartMs+sp.DurMs > tr.TotalMs+slackMs {
				t.Errorf("trace %s: span %s [%v,%v] escapes request window %v",
					tr.ID, sp.Name, sp.StartMs, sp.StartMs+sp.DurMs, tr.TotalMs)
			}
			switch {
			case sp.Name == "kernel":
				kernel = sp.DurMs
			case len(sp.Name) > 7 && sp.Name[:7] == "kernel.":
				kernelPhases += sp.DurMs
			}
		}
		if kernel == 0 {
			t.Errorf("trace %s: no kernel span", tr.ID)
		}
		// Request-level restatement of ExecStats.PhaseSum() <= Total.
		if kernelPhases > kernel+slackMs {
			t.Errorf("trace %s: phase sub-spans sum %vms > kernel %vms", tr.ID, kernelPhases, kernel)
		}
		if tr.Status != http.StatusOK {
			t.Errorf("trace %s: status %d", tr.ID, tr.Status)
		}
	}
}

// TestRequestDebugEndpoints covers /debug/requests, /debug/requests/{id}
// (the per-request Chrome trace) and the disabled-path 404s.
func TestRequestDebugEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{RequestRing: 8, SlowThreshold: time.Nanosecond})
	rng := rand.New(rand.NewSource(8))
	a := uploadBinary(t, ts.URL, matrix.Random(30, 30, 0.1, rng))
	code, body := postMultiply(t, ts.URL, MultiplyRequest{A: a.Hash, B: a.Hash})
	if code != http.StatusOK {
		t.Fatalf("multiply: %d %s", code, body)
	}
	id := decodeMultiply(t, body).RequestID

	resp, err := http.Get(ts.URL + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var dbg requestsDebugBody
	if err := json.NewDecoder(resp.Body).Decode(&dbg); err != nil {
		t.Fatal(err)
	}
	if dbg.Capacity != 8 || len(dbg.Recent) != 1 || dbg.Recent[0].ID != id {
		t.Fatalf("debug body: capacity %d, %d recent", dbg.Capacity, len(dbg.Recent))
	}
	// Every request beats a 1ns threshold, so the slow ring caught it too.
	if len(dbg.Slow) != 1 || dbg.SlowThresholdMs == 0 {
		t.Fatalf("slow capture missing: %d slow entries, threshold %v", len(dbg.Slow), dbg.SlowThresholdMs)
	}

	// The per-request trace is a Chrome trace-event document.
	resp2, err := http.Get(ts.URL + "/debug/requests/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	raw, _ := io.ReadAll(resp2.Body)
	var chrome struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &chrome); err != nil {
		t.Fatalf("per-request trace is not JSON: %v\n%s", err, raw)
	}
	if len(chrome.TraceEvents) < 3 { // thread_name meta + request root + >=1 span
		t.Fatalf("per-request trace has %d events", len(chrome.TraceEvents))
	}

	resp3, err := http.Get(ts.URL + "/debug/requests/r-nope-000001")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown trace: status %d", resp3.StatusCode)
	}

	// Tracing disabled: the endpoints answer 404 and responses carry no ID.
	_, tsOff := newTestServer(t, Config{})
	respOff, err := http.Get(tsOff.URL + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	respOff.Body.Close()
	if respOff.StatusCode != http.StatusNotFound {
		t.Fatalf("disabled /debug/requests: status %d, want 404", respOff.StatusCode)
	}
}

// TestSlowRequestGoldenJSON pins the /debug/requests JSON shape for a slow
// request against testdata/slow_requests.golden — the contract dashboards
// and the shutdown drain parse.
func TestSlowRequestGoldenJSON(t *testing.T) {
	rt := obs.NewRequestTrace("r-cafe0123-000042")
	rt.Start = time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	rt.SpanAt("queue.wait", 0, 4*time.Millisecond)
	rt.SpanAt("plan.lookup", 4*time.Millisecond, 10*time.Microsecond)
	rt.SpanAt("kernel", 5*time.Millisecond, 200*time.Millisecond)
	rt.SpanAt("kernel.symbolic", 5*time.Millisecond, 80*time.Millisecond)
	rt.SpanAt("kernel.numeric", 85*time.Millisecond, 120*time.Millisecond)
	rt.SetAttr("a", "aaaa")
	rt.SetAttr("b", "bbbb")
	rt.SetAttr("alg", "hash")
	rt.SetAttr("algResolved", "hash")
	rt.SetAttr("planHit", false)
	rt.SetAttr("flop", int64(123456))
	rt.SetAttr("collisionFactor", 1.25)
	rt.Finish(200)
	rt.TotalMs = 206.5 // deterministic synthetic stamp replacing the wall clock

	body := requestsDebugBody{
		Capacity:        64,
		SlowThresholdMs: 100,
		Recent:          []*obs.RequestTrace{rt},
		Slow:            []*obs.RequestTrace{rt},
	}
	got, err := json.MarshalIndent(body, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	golden := filepath.Join("testdata", "slow_requests.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with UPDATE_GOLDEN=1 to regenerate): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("slow-request JSON drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestRequestObsDisabledZeroAllocs pins the zero-cost-when-disabled
// contract: with request tracing off (nil *requestObs) and logging at the
// disabled default, the per-request instrumentation hooks on the multiply
// hot path add zero allocations.
func TestRequestObsDisabledZeroAllocs(t *testing.T) {
	var o *requestObs
	stats := &spgemm.ExecStats{}
	allocs := testing.AllocsPerRun(1000, func() {
		rt := o.begin()
		if rt != nil {
			t.Fatal("nil requestObs produced a trace")
		}
		kt := kernelClock(rt)
		stampKernel(rt, kt, stats)
		o.finish(rt, http.StatusOK)
		_ = traceID(rt)
		observeRequestSeconds(spgemm.AlgHash, 0.001)
		mQueueWaitAcquired.Observe(0.0001)
		if log := obs.Logger(); log.Enabled(nil, 0) {
			t.Fatal("logger unexpectedly enabled")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled request-obs hooks allocate %v per request, want 0", allocs)
	}
}

// TestDrainRequests exercises the shutdown dump used by spgemm-serve.
func TestDrainRequests(t *testing.T) {
	s, ts := newTestServer(t, Config{RequestRing: 4})
	rng := rand.New(rand.NewSource(9))
	a := uploadBinary(t, ts.URL, matrix.Random(20, 20, 0.15, rng))
	for i := 0; i < 2; i++ {
		if code, body := postMultiply(t, ts.URL, MultiplyRequest{A: a.Hash, B: a.Hash}); code != http.StatusOK {
			t.Fatalf("multiply: %d %s", code, body)
		}
	}
	var out bytes.Buffer
	n := s.DrainRequests(func(b []byte) { out.Write(b) })
	if n != 2 {
		t.Fatalf("drained %d traces, want 2", n)
	}
	var dbg requestsDebugBody
	if err := json.Unmarshal(out.Bytes(), &dbg); err != nil {
		t.Fatalf("drain output is not the debug JSON: %v", err)
	}
	if len(dbg.Recent) != 2 {
		t.Fatalf("drain recorded %d recent traces, want 2", len(dbg.Recent))
	}

	// Disabled server drains nothing.
	sOff := New(Config{})
	defer sOff.Close()
	if n := sOff.DrainRequests(func([]byte) { t.Fatal("unexpected write") }); n != 0 {
		t.Fatalf("disabled drain returned %d", n)
	}
}

// TestMultiplyResponseQueueSeconds checks the server reports its admission
// wait: with one Context and a held checkout, a second request's
// queueSeconds reflects the wait.
func TestMultiplyResponseQueueSeconds(t *testing.T) {
	s, ts := newTestServer(t, Config{Contexts: 1, QueueDepth: 4, RequestRing: 8})
	rng := rand.New(rand.NewSource(10))
	a := uploadBinary(t, ts.URL, matrix.Random(20, 20, 0.15, rng))

	// Hold the only Context so the request must queue.
	c, err := s.pool.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	const hold = 30 * time.Millisecond
	done := make(chan MultiplyResponse, 1)
	go func() {
		code, body := postMultiply(t, ts.URL, MultiplyRequest{A: a.Hash, B: a.Hash})
		if code != http.StatusOK {
			t.Errorf("queued multiply: %d %s", code, body)
		}
		done <- decodeMultiply(t, body)
	}()
	time.Sleep(hold)
	s.pool.Release(c)
	resp := <-done
	if resp.QueueSeconds < (hold / 2).Seconds() {
		t.Fatalf("queueSeconds = %v, want >= %v", resp.QueueSeconds, (hold / 2).Seconds())
	}
	// The trace recorded the wait as a queue.wait span.
	tr, ok := s.reqobs.recent.Get(resp.RequestID)
	if !ok {
		t.Fatalf("no trace for %s", resp.RequestID)
	}
	found := false
	for _, sp := range tr.Spans {
		if sp.Name == "queue.wait" && sp.DurMs >= float64(hold/2)/1e6 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no queue.wait span covering the hold: %+v", tr.Spans)
	}
	if q, _ := tr.Attrs["queued"].(bool); !q {
		t.Fatalf("queued attr = %v, want true", tr.Attrs["queued"])
	}
}
