package server

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// sentryFor builds a sentry with deterministic test tuning and no background
// loop — checks are driven by hand.
func sentryFor(baseline map[string]float64, sustain int) *Sentry {
	return NewSentry(SentryConfig{
		Baseline:   baseline,
		Ratio:      2,
		Sustain:    sustain,
		MinSamples: 3,
		alpha:      1, // EWMA == last observation: no warm-up in tests
	})
}

func feed(s *Sentry, alg string, flopsPerSec float64, n int) {
	for i := 0; i < n; i++ {
		// flop over 1ms of kernel time at the requested throughput.
		s.Observe(alg, int64(flopsPerSec/1e3), time.Millisecond)
	}
}

func TestSentryDegradesAndRecovers(t *testing.T) {
	s := sentryFor(map[string]float64{"hash": 1e9}, 2)

	// Healthy traffic: live ~= baseline.
	feed(s, "hash", 1e9, 5)
	s.check()
	s.check()
	if degraded, _, _ := s.State(); degraded {
		t.Fatal("degraded on healthy traffic")
	}

	// Sustained 10x regression: first failing check arms, second flips.
	feed(s, "hash", 1e8, 5)
	s.check()
	if degraded, _, _ := s.State(); degraded {
		t.Fatal("degraded after one failing check (Sustain=2)")
	}
	s.check()
	degraded, failing, since := s.State()
	if !degraded || since.IsZero() {
		t.Fatalf("not degraded after sustained regression: %v %v", degraded, since)
	}
	if len(failing) != 1 || failing[0].Alg != "hash" || failing[0].Ratio < 5 {
		t.Fatalf("failing report: %+v", failing)
	}

	// Hysteresis on recovery too: one healthy check does not flip back.
	feed(s, "hash", 1e9, 5)
	s.check()
	if degraded, _, _ := s.State(); !degraded {
		t.Fatal("recovered after one passing check (Sustain=2)")
	}
	s.check()
	if degraded, _, _ := s.State(); degraded {
		t.Fatal("still degraded after sustained recovery")
	}
}

func TestSentryIgnoresUnbaselinedAndCold(t *testing.T) {
	s := sentryFor(map[string]float64{"hash": 1e9}, 1)
	// Unbaselined algorithm never judged, however slow.
	feed(s, "heap", 1, 10)
	// Baselined but below MinSamples: not judged yet.
	feed(s, "hash", 1, 2)
	s.check()
	if degraded, _, _ := s.State(); degraded {
		t.Fatal("judged an unbaselined or cold algorithm")
	}
}

func TestLoadSentryBaseline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	snap := map[string]any{
		"results": []map[string]any{
			{"alg": "hash", "variant": "oneshot", "mflops": 120.0},
			{"alg": "hash", "variant": "plan", "mflops": 250.0},
			{"alg": "heap", "variant": "oneshot", "mflops": 80.0},
		},
	}
	raw, _ := json.Marshal(snap)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	base, err := LoadSentryBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	// Best variant wins, mflops scaled to flop/s.
	if base["hash"] != 250e6 || base["heap"] != 80e6 {
		t.Fatalf("baseline = %v", base)
	}
	if _, err := LoadSentryBaseline(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file did not error")
	}
}

// TestHealthzDegraded drives the server's sentry into the degraded state and
// checks /healthz flips to 503 with the failing algorithms in the body.
func TestHealthzDegraded(t *testing.T) {
	s, ts := newTestServer(t, Config{
		SentryBaseline:   map[string]float64{"hash": 1e12},
		SentryRatio:      2,
		SentrySustain:    1,
		SentryMinSamples: 1,
		SentryInterval:   time.Hour, // loop stays quiet; checks driven by hand
	})
	defer s.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy /healthz: status %d", resp.StatusCode)
	}

	// An impossible baseline (1 Tflop/s) makes any real observation failing.
	s.sentry.Observe("hash", 1000, time.Millisecond)
	s.sentry.check()
	resp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded /healthz: status %d, want 503", resp2.StatusCode)
	}
	var body struct {
		Status   string      `json:"status"`
		Degraded []AlgHealth `json:"degraded"`
		Since    string      `json:"degradedSince"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Status != "degraded" || len(body.Degraded) != 1 || body.Degraded[0].Alg != "hash" || body.Since == "" {
		t.Fatalf("degraded body: %+v", body)
	}
}
