package server

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/obs"
)

// SentryConfig tunes the perf sentry: the background watchdog that compares
// the server's live per-algorithm throughput against the machine's own
// recorded baseline and degrades /healthz when the gap is sustained. The
// paper's own method — trust per-kernel measurement, not assumptions — turned
// into a production control loop: BENCH_spgemm.json says what this machine
// can do; the sentry says when the serving process stops doing it (GC
// thrash, noisy neighbor, a regression shipped in a kernel).
type SentryConfig struct {
	// Baseline maps algorithm name → expected throughput in flop/s,
	// typically from LoadSentryBaseline(BENCH_spgemm.json). Algorithms
	// without a baseline are never judged.
	Baseline map[string]float64
	// Ratio is the tolerated slowdown: the sentry flags an algorithm when
	// its live EWMA throughput drops below Baseline/Ratio. Default 4 —
	// serving overhead, small operands and contended contexts legitimately
	// cost a few x against an offline single-threaded bench; a sustained 4x
	// regression is pathological. Must be >= 1.
	Ratio float64
	// Interval is the check cadence. Default 5s.
	Interval time.Duration
	// Sustain is how many consecutive failing checks flip the state to
	// degraded (and how many passing checks flip it back) — one slow
	// interval is noise, Sustain of them is a condition. Default 2.
	Sustain int
	// MinSamples is the per-algorithm observation count before the sentry
	// judges it at all. Default 20.
	MinSamples int64
	// alpha is the EWMA smoothing factor (tests only; default 0.2).
	alpha float64
}

func (c SentryConfig) withDefaults() SentryConfig {
	if c.Ratio < 1 {
		c.Ratio = 4
	}
	if c.Interval <= 0 {
		c.Interval = 5 * time.Second
	}
	if c.Sustain < 1 {
		c.Sustain = 2
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 20
	}
	if c.alpha <= 0 || c.alpha > 1 {
		c.alpha = 0.2
	}
	return c
}

// AlgHealth is one algorithm's live-vs-baseline standing in the sentry's
// report (part of the /healthz body while degraded).
type AlgHealth struct {
	Alg       string  `json:"alg"`
	LiveFlops float64 `json:"liveFlops"`
	Baseline  float64 `json:"baselineFlops"`
	Ratio     float64 `json:"slowdown"` // baseline / live
	Samples   int64   `json:"samples"`
	Failing   bool    `json:"failing"`
}

// Sentry maintains per-algorithm flop/s EWMAs fed from each request's
// ExecStats and a background check loop that compares them to the baseline.
// Observe is called from request handlers (mutex-guarded, ~ns against
// ms-scale requests); the loop goroutine owns the health state machine.
type Sentry struct {
	cfg SentryConfig

	mu   sync.Mutex
	live map[string]*ewma

	stateMu  sync.Mutex
	degraded bool
	failing  []AlgHealth // snapshot from the last failing check
	streak   int         // consecutive checks agreeing against current state
	since    time.Time   // when the current state was entered

	stop chan struct{}
	done chan struct{}
}

type ewma struct {
	value   float64
	samples int64
}

// NewSentry returns a sentry; Start launches its check loop.
func NewSentry(cfg SentryConfig) *Sentry {
	return &Sentry{
		cfg:  cfg.withDefaults(),
		live: make(map[string]*ewma),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
}

// Observe feeds one completed multiply: flop of work done in kernelTime
// (ExecStats.Total — kernel wall time, not end-to-end latency, so queue
// waits under load do not masquerade as kernel regressions).
func (s *Sentry) Observe(alg string, flop int64, kernelTime time.Duration) {
	if flop <= 0 || kernelTime <= 0 {
		return
	}
	tput := float64(flop) / kernelTime.Seconds()
	s.mu.Lock()
	e := s.live[alg]
	if e == nil {
		e = &ewma{value: tput}
		s.live[alg] = e
	}
	e.value += s.cfg.alpha * (tput - e.value)
	e.samples++
	s.mu.Unlock()
}

// Start launches the check loop; Stop ends it.
func (s *Sentry) Start() {
	go func() {
		defer close(s.done)
		t := time.NewTicker(s.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.check()
			case <-s.stop:
				return
			}
		}
	}()
}

// Stop terminates the check loop and waits for it to exit.
func (s *Sentry) Stop() {
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	<-s.done
}

// check is one control-loop step: evaluate every baselined algorithm, then
// advance the sustained-state machine.
func (s *Sentry) check() {
	var failing []AlgHealth
	s.mu.Lock()
	for alg, base := range s.cfg.Baseline {
		e := s.live[alg]
		if e == nil || e.samples < s.cfg.MinSamples || base <= 0 {
			continue
		}
		h := AlgHealth{
			Alg: alg, LiveFlops: e.value, Baseline: base,
			Ratio: base / e.value, Samples: e.samples,
			Failing: e.value < base/s.cfg.Ratio,
		}
		if h.Failing {
			failing = append(failing, h)
		}
	}
	s.mu.Unlock()
	s.advance(len(failing) > 0, failing)
}

// advance runs the hysteresis: Sustain consecutive checks disagreeing with
// the current state flip it, anything else only moves the streak.
func (s *Sentry) advance(bad bool, failing []AlgHealth) {
	s.stateMu.Lock()
	if bad == s.degraded {
		s.streak = 0
		if bad {
			s.failing = failing // refresh the report while degraded
		}
		s.stateMu.Unlock()
		return
	}
	s.streak++
	if s.streak < s.cfg.Sustain {
		s.stateMu.Unlock()
		return
	}
	s.degraded = bad
	s.failing = failing
	s.streak = 0
	s.since = time.Now()
	s.stateMu.Unlock()

	mSentryTransitions.Inc()
	log := obs.Logger()
	if bad {
		mSentryDegraded.Set(1)
		for _, h := range failing {
			log.Warn("perf sentry: degraded",
				"alg", h.Alg, "liveFlops", h.LiveFlops, "baselineFlops", h.Baseline,
				"slowdown", h.Ratio, "samples", h.Samples)
		}
	} else {
		mSentryDegraded.Set(0)
		log.Info("perf sentry: recovered")
	}
}

// State returns the current health state and, while degraded, the failing
// algorithms from the most recent check.
func (s *Sentry) State() (degraded bool, failing []AlgHealth, since time.Time) {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	return s.degraded, append([]AlgHealth(nil), s.failing...), s.since
}

// LoadSentryBaseline extracts per-algorithm throughput baselines (flop/s)
// from a BENCH_spgemm.json snapshot written by spgemm-bench: for every
// algorithm it takes the best mflops across recorded variants (oneshot /
// context / plan) — the machine's demonstrated capability for that kernel.
func LoadSentryBaseline(path string) (map[string]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap struct {
		Results []struct {
			Alg    string  `json:"alg"`
			Mflops float64 `json:"mflops"`
		} `json:"results"`
	}
	if err := json.Unmarshal(raw, &snap); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	base := make(map[string]float64)
	for _, r := range snap.Results {
		if f := r.Mflops * 1e6; f > base[r.Alg] {
			base[r.Alg] = f
		}
	}
	if len(base) == 0 {
		return nil, fmt.Errorf("%s: no per-algorithm results to baseline against", path)
	}
	return base, nil
}
