package server

import (
	"container/list"
	"sync"

	"repro/internal/spgemm"
)

// PlanKey identifies a cached Plan: the content hashes of both operands
// (which, being hashes of the full wire encoding, fingerprint the exact
// structure the plan was inspected against) plus the execution options
// that change what the inspector computes. Interned matrices are
// immutable, so a key can never silently come to mean a different product;
// Plan.ExecuteIn still revalidates the structure fingerprints as a second
// line of defense.
type PlanKey struct {
	A, B      string
	Algorithm spgemm.Algorithm
	Unsorted  bool
	Workers   int
}

// PlanCache is the concurrent LRU cache of inspector results. Cached Plans
// are read-only after construction (their mutable execution state is
// supplied per-call via Plan.ExecuteIn), so a single Plan may be handed to
// any number of concurrent requests; the lock only guards the map and
// recency list, never execution.
type PlanCache struct {
	mu    sync.Mutex
	cap   int
	byKey map[PlanKey]*planEntry
	lru   *list.List // front = most recently used
}

type planEntry struct {
	key  PlanKey
	plan *spgemm.Plan
	elem *list.Element
}

// NewPlanCache returns a cache holding at most capacity Plans (minimum 1).
func NewPlanCache(capacity int) *PlanCache {
	if capacity < 1 {
		capacity = 1
	}
	return &PlanCache{
		cap:   capacity,
		byKey: map[PlanKey]*planEntry{},
		lru:   list.New(),
	}
}

// Get returns the cached Plan for k, bumping its recency.
func (c *PlanCache) Get(k PlanKey) (*spgemm.Plan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.byKey[k]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(e.elem)
	return e.plan, true
}

// Add inserts a freshly built Plan, evicting the least-recently-used entry
// past capacity. Two requests racing a miss may both build and Add the
// same key; the later Add wins and the loser's Plan is simply garbage —
// correct either way, and cheaper than holding a lock across an inspector
// run.
func (c *PlanCache) Add(k PlanKey, p *spgemm.Plan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.byKey[k]; ok {
		e.plan = p
		c.lru.MoveToFront(e.elem)
		return
	}
	e := &planEntry{key: k, plan: p}
	e.elem = c.lru.PushFront(e)
	c.byKey[k] = e
	for c.lru.Len() > c.cap {
		back := c.lru.Back().Value.(*planEntry)
		c.removeLocked(back)
		mPlanEvictions.Inc()
	}
	mPlanEntries.Set(int64(c.lru.Len()))
}

// Remove drops the entry for k, if cached.
func (c *PlanCache) Remove(k PlanKey) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.byKey[k]; ok {
		c.removeLocked(e)
		mPlanEvictions.Inc()
		mPlanEntries.Set(int64(c.lru.Len()))
	}
}

// InvalidateMatrix drops every Plan that references the given matrix hash
// as either operand — called when the matrix store evicts it, so dead
// matrices do not stay pinned by their plans.
func (c *PlanCache) InvalidateMatrix(hash string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, e := range c.byKey {
		if k.A == hash || k.B == hash {
			c.removeLocked(e)
			mPlanEvictions.Inc()
		}
	}
	mPlanEntries.Set(int64(c.lru.Len()))
}

// Len returns the number of cached Plans.
func (c *PlanCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

func (c *PlanCache) removeLocked(e *planEntry) {
	c.lru.Remove(e.elem)
	delete(c.byKey, e.key)
}
