package server

import (
	"context"
	"errors"
	"sync/atomic"

	"repro/internal/spgemm"
)

// ErrSaturated is returned by ContextPool.Acquire when every Context is
// checked out and the wait queue is already at its admission limit. The
// HTTP layer maps it to 429 Too Many Requests.
var ErrSaturated = errors.New("server: all contexts busy and queue full")

// ContextPool is the bounded checkout pool of spgemm.Contexts at the heart
// of the server's concurrency design. A Context is NOT safe for concurrent
// use (internal/spgemm/context.go), so the pool enforces exclusive
// ownership by construction: a Context lives either in the pool's channel
// or in exactly one request handler, and the channel send/receive is the
// ownership transfer (a happens-before edge, so the race detector proves
// the discipline rather than taking it on faith).
//
// Admission control is layered on top: at most size requests run
// concurrently, at most queueDepth more wait for a Context, and everything
// beyond that is rejected immediately with ErrSaturated — the server sheds
// load instead of accumulating unbounded queued work.
type ContextPool struct {
	contexts chan *spgemm.Context
	size     int
	maxQueue int64
	waiting  atomic.Int64
}

// NewContextPool returns a pool of size warm Contexts admitting at most
// queueDepth waiters.
func NewContextPool(size, queueDepth int) *ContextPool {
	if size < 1 {
		size = 1
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	p := &ContextPool{
		contexts: make(chan *spgemm.Context, size),
		size:     size,
		maxQueue: int64(queueDepth),
	}
	for i := 0; i < size; i++ {
		p.contexts <- spgemm.NewContext()
	}
	return p
}

// Size returns the number of Contexts owned by the pool.
func (p *ContextPool) Size() int { return p.size }

// Acquire checks a Context out, blocking while all are busy. It fails with
// ErrSaturated when the wait queue is full, or ctx.Err() when the caller
// gives up first (client disconnect). Every successful Acquire must be
// paired with Release.
func (p *ContextPool) Acquire(ctx context.Context) (*spgemm.Context, error) {
	c, _, err := p.AcquireTraced(ctx)
	return c, err
}

// AcquireTraced is Acquire plus the queueing fact the request trace wants:
// queued reports whether the fast path missed and the request actually
// waited in the admission queue (as opposed to checking a free Context out
// immediately).
func (p *ContextPool) AcquireTraced(ctx context.Context) (c *spgemm.Context, queued bool, err error) {
	// Fast path: a Context is free right now.
	select {
	case c := <-p.contexts:
		mInflight.Add(1)
		return c, false, nil
	default:
	}
	// Admission check before joining the queue.
	if p.waiting.Add(1) > p.maxQueue {
		p.waiting.Add(-1)
		mRejected.Inc()
		return nil, true, ErrSaturated
	}
	mQueueDepth.Set(p.waiting.Load())
	defer func() {
		p.waiting.Add(-1)
		mQueueDepth.Set(p.waiting.Load())
	}()
	select {
	case c := <-p.contexts:
		mInflight.Add(1)
		return c, true, nil
	case <-ctx.Done():
		return nil, true, ctx.Err()
	}
}

// Release returns a checked-out Context to the pool. The caller must not
// touch the Context afterwards.
func (p *ContextPool) Release(c *spgemm.Context) {
	mInflight.Add(-1)
	p.contexts <- c
}
