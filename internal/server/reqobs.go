package server

import (
	"bytes"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/spgemm"
)

// requestObs is the server's request-level observability state: ID
// generation, the recent-request ring behind /debug/requests, the
// slow-request capturer, and the optional on-spike CPU profile. A nil
// *requestObs (request tracing disabled) makes every hook a nil check —
// the zero-extra-allocation contract TestRequestObsDisabledZeroAllocs pins.
type requestObs struct {
	recent *obs.RequestRing
	slow   *obs.RequestRing
	// slowThreshold marks a request slow; 0 disables the capturer.
	slowThreshold time.Duration

	idPrefix string
	idSeq    atomic.Uint64

	// Slow-spike CPU profiling: at most one capture in flight; the last
	// completed profile is retained for /debug/requests/profile.
	profileDur  time.Duration
	profileBusy atomic.Bool
	profMu      sync.Mutex
	profData    []byte
	profReqID   string
}

// newRequestObs sizes the observer from the server config, or returns nil
// when request tracing is off (RequestRing == 0).
func newRequestObs(cfg Config) *requestObs {
	if cfg.RequestRing <= 0 {
		return nil
	}
	var pfx [4]byte
	_, _ = rand.Read(pfx[:])
	o := &requestObs{
		recent:        obs.NewRequestRing(cfg.RequestRing),
		slowThreshold: cfg.SlowThreshold,
		idPrefix:      hex.EncodeToString(pfx[:]),
		profileDur:    cfg.SlowProfileDur,
	}
	if cfg.SlowThreshold > 0 {
		n := cfg.SlowRing
		if n <= 0 {
			n = 32
		}
		o.slow = obs.NewRequestRing(n)
	}
	return o
}

// begin opens a trace for one request. Nil receiver (tracing disabled)
// yields a nil trace, which every downstream stamp accepts.
func (o *requestObs) begin() *obs.RequestTrace {
	if o == nil {
		return nil
	}
	return obs.NewRequestTrace(fmt.Sprintf("r-%s-%06d", o.idPrefix, o.idSeq.Add(1)))
}

// finish completes a trace: stamps status, publishes it to the recent ring,
// and runs the slow-request capturer. The trace is immutable afterwards.
func (o *requestObs) finish(t *obs.RequestTrace, status int) {
	if o == nil || t == nil {
		return
	}
	t.Finish(status)
	o.recent.Add(t)
	if o.slowThreshold > 0 && t.Total() >= o.slowThreshold {
		mSlowRequests.Inc()
		o.slow.Add(t)
		log := obs.Logger()
		log.Warn("slow request",
			"reqID", t.ID, "ms", t.TotalMs, "thresholdMs",
			float64(o.slowThreshold)/1e6, "status", status)
		o.maybeProfile(t.ID)
	}
}

// maybeProfile starts one short CPU profile when a slow request lands and no
// capture is already running — the spike evidence a postmortem wants: if the
// condition persists (GC thrash, a stuck neighbor, an algorithm regression),
// the profile window catches it in the act.
func (o *requestObs) maybeProfile(reqID string) {
	if o.profileDur <= 0 || !o.profileBusy.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer o.profileBusy.Store(false)
		var buf bytes.Buffer
		if err := pprof.StartCPUProfile(&buf); err != nil {
			// Another profiler (e.g. a live /debug/pprof/profile scrape)
			// owns the CPU profile; skip this spike.
			obs.Logger().Debug("slow-request profile skipped", "err", err)
			return
		}
		time.Sleep(o.profileDur)
		pprof.StopCPUProfile()
		o.profMu.Lock()
		o.profData = buf.Bytes()
		o.profReqID = reqID
		o.profMu.Unlock()
		obs.Logger().Info("slow-request CPU profile captured",
			"reqID", reqID, "bytes", buf.Len(), "windowMs", float64(o.profileDur)/1e6)
	}()
}

// requestsDebugBody is the JSON document served at /debug/requests.
type requestsDebugBody struct {
	Capacity        int                 `json:"capacity"`
	Dropped         int64               `json:"dropped"`
	SlowThresholdMs float64             `json:"slowThresholdMs,omitempty"`
	SlowDropped     int64               `json:"slowDropped,omitempty"`
	Recent          []*obs.RequestTrace `json:"recent"`
	Slow            []*obs.RequestTrace `json:"slow,omitempty"`
}

// handleRequests serves GET /debug/requests: the recent and slow rings as
// JSON, newest first, optionally limited with ?n=.
func (o *requestObs) handleRequests(w http.ResponseWriter, r *http.Request) {
	if o == nil {
		http.Error(w, "request tracing disabled (run with -request-ring > 0)", http.StatusNotFound)
		return
	}
	body := requestsDebugBody{
		Capacity: o.recent.Cap(),
		Dropped:  o.recent.Dropped(),
		Recent:   o.recent.Snapshot(),
	}
	if o.slow != nil {
		body.SlowThresholdMs = float64(o.slowThreshold) / 1e6
		body.Slow = o.slow.Snapshot()
		body.SlowDropped = o.slow.Dropped()
	}
	if s := r.URL.Query().Get("n"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			http.Error(w, "bad n", http.StatusBadRequest)
			return
		}
		if n < len(body.Recent) {
			body.Recent = body.Recent[:n]
		}
		if n < len(body.Slow) {
			body.Slow = body.Slow[:n]
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(body)
}

// handleRequestTrace serves GET /debug/requests/{id}: one request's full
// span tree as a self-contained Chrome trace JSON document (drag into
// Perfetto). Slow-ring entries outlive the recent ring, so a slow request's
// trace stays loadable after heavy traffic displaced it from recent.
func (o *requestObs) handleRequestTrace(w http.ResponseWriter, r *http.Request) {
	if o == nil {
		http.Error(w, "request tracing disabled (run with -request-ring > 0)", http.StatusNotFound)
		return
	}
	id := r.PathValue("id")
	t, ok := o.recent.Get(id)
	if !ok && o.slow != nil {
		t, ok = o.slow.Get(id)
	}
	if !ok {
		http.Error(w, fmt.Sprintf("no retained trace for request %q", id), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = t.WriteChromeTrace(w)
}

// handleSlowProfile serves GET /debug/requests/profile: the most recent
// slow-spike CPU profile in pprof format (go tool pprof reads it directly).
func (o *requestObs) handleSlowProfile(w http.ResponseWriter, r *http.Request) {
	if o == nil {
		http.Error(w, "request tracing disabled", http.StatusNotFound)
		return
	}
	o.profMu.Lock()
	data, reqID := o.profData, o.profReqID
	o.profMu.Unlock()
	if len(data) == 0 {
		http.Error(w, "no slow-request profile captured yet", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Spgemm-Slow-Request", reqID)
	_, _ = w.Write(data)
}

// stampKernel appends the kernel window and its per-phase sub-spans to the
// trace: the bridge from the request timeline to the paper's Fig. 8
// breakdown. Phases come from ExecStats.PhaseSpans (measured back-to-back
// from kernel start), anchored at where the kernel began inside the request.
func stampKernel(t *obs.RequestTrace, kernelStart time.Time, stats *spgemm.ExecStats) {
	if t == nil || stats == nil {
		return
	}
	off := kernelStart.Sub(t.Start)
	t.SpanAt("kernel", off, stats.Total)
	for _, sp := range stats.PhaseSpans() {
		t.SpanAt("kernel."+sp.Phase.String(), off+sp.Offset, sp.Dur)
	}
}

// DrainRequests writes every retained request trace (recent and slow rings)
// as the /debug/requests JSON document — the shutdown path: a terminated
// server dumps the tail of its request history instead of losing it.
func (s *Server) DrainRequests(w func(b []byte)) int {
	if s.reqobs == nil {
		return 0
	}
	body := requestsDebugBody{
		Capacity: s.reqobs.recent.Cap(),
		Dropped:  s.reqobs.recent.Dropped(),
		Recent:   s.reqobs.recent.Snapshot(),
	}
	if s.reqobs.slow != nil {
		body.SlowThresholdMs = float64(s.reqobs.slowThreshold) / 1e6
		body.Slow = s.reqobs.slow.Snapshot()
		body.SlowDropped = s.reqobs.slow.Dropped()
	}
	out, err := json.MarshalIndent(body, "", "  ")
	if err != nil {
		return 0
	}
	w(append(out, '\n'))
	return len(body.Recent) + len(body.Slow)
}
