package server

import (
	"repro/internal/obs"
	"repro/internal/spgemm"
)

// Server metrics, registered in the default obs registry so they appear on
// the same /metrics endpoint as the kernel-level spgemm_*, sched_* and
// mempool_* families the debug surface already exposes.
var (
	mRequests = obs.NewCounterVec("server_requests_total",
		"HTTP requests handled, by route", "route")
	mErrors = obs.NewCounterVec("server_request_errors_total",
		"HTTP error responses, by status code", "code")
	mRejected = obs.NewCounter("server_rejected_total",
		"multiply requests rejected by admission control (429)")
	mInflight = obs.NewGauge("server_inflight_multiplies",
		"multiply requests currently holding a checked-out Context")
	mQueueDepth = obs.NewGauge("server_queue_depth",
		"multiply requests waiting for a Context")
	mMultiplies = obs.NewCounter("server_multiplies_total",
		"multiply requests completed successfully")
	mMultiplySeconds = obs.NewHistogram("server_multiply_seconds",
		"end-to-end multiply handler latency in seconds",
		[]float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10})
	mPhaseNanos = obs.NewCounterVec("server_multiply_phase_nanos_total",
		"cumulative per-phase kernel time across multiply requests, by phase", "phase")
	mMultiplyFlop = obs.NewCounter("server_multiply_flop_total",
		"cumulative multiply-accumulate operations across multiply requests")

	mPlanHits = obs.NewCounter("server_plan_cache_hits_total",
		"multiply requests served by a cached Plan (numeric phase only)")
	mPlanMisses = obs.NewCounter("server_plan_cache_misses_total",
		"multiply requests that had to run the inspector (Plan built or plain Multiply)")
	mPlanEvictions = obs.NewCounter("server_plan_cache_evictions_total",
		"Plans evicted from the cache (LRU capacity or matrix eviction)")
	mPlanEntries = obs.NewGauge("server_plan_cache_entries",
		"Plans currently cached")

	// Request-level families (PR 8). server_request_seconds splits latency
	// by the *resolved* algorithm (after AlgAuto dispatch), which is what
	// makes a per-kernel regression visible on a dashboard at all;
	// server_queue_wait_seconds splits the admission wait by outcome so
	// saturation (long "acquired" waits, growing "rejected") is
	// distinguishable from slow kernels.
	mRequestSeconds = obs.NewHistogramVec("server_request_seconds",
		"end-to-end multiply latency in seconds, by resolved algorithm", "alg",
		[]float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10})
	mQueueWait = obs.NewHistogramVec("server_queue_wait_seconds",
		"context checkout wait in seconds, by outcome", "outcome",
		[]float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5})
	mSlowRequests = obs.NewCounter("server_slow_requests_total",
		"multiply requests over the slow-request threshold")
	mSentryDegraded = obs.NewGauge("server_sentry_degraded",
		"1 while the perf sentry holds /healthz degraded, else 0")
	mSentryTransitions = obs.NewCounter("server_sentry_transitions_total",
		"perf sentry health transitions (ok->degraded and back)")

	mUploads = obs.NewCounter("server_matrix_uploads_total",
		"matrix upload requests accepted")
	mDedup = obs.NewCounter("server_matrix_dedup_total",
		"uploads interned to an already-stored identical matrix")
	mStoreBytes = obs.NewGauge("server_matrix_store_bytes",
		"approximate bytes of matrix payload currently interned")
	mStoreEntries = obs.NewGauge("server_matrix_store_entries",
		"matrices currently interned")
	mStoreEvictions = obs.NewCounter("server_matrix_store_evictions_total",
		"matrices evicted from the store (LRU byte budget)")
)

// requestSecondsByAlg caches the per-algorithm child of server_request_seconds
// so recording a request is one alloc-free Observe, never a locked map lookup
// — the same discipline as spgemm's multiplyCounter.
var requestSecondsByAlg = func() [spgemm.NumAlgorithms]*obs.Histogram {
	var t [spgemm.NumAlgorithms]*obs.Histogram
	for a := spgemm.Algorithm(0); int(a) < len(t); a++ {
		t[a] = mRequestSeconds.With(a.String())
	}
	return t
}()

// Cached server_queue_wait_seconds children, one per admission outcome.
var (
	mQueueWaitAcquired = mQueueWait.With("acquired")
	mQueueWaitRejected = mQueueWait.With("rejected")
	mQueueWaitCanceled = mQueueWait.With("canceled")
)

// observeRequestSeconds records one request's end-to-end latency under its
// resolved algorithm.
func observeRequestSeconds(alg spgemm.Algorithm, seconds float64) {
	if int(alg) < len(requestSecondsByAlg) {
		requestSecondsByAlg[alg].Observe(seconds)
	}
}
