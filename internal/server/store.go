package server

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	"repro/internal/matrix"
)

// Store is the content-hash-addressed matrix intern table. Uploads are
// keyed by the SHA-256 of their canonical binary wire encoding (see
// matrix.WriteCSRBinary): two uploads of the same matrix — whatever format
// they arrived in — intern to one copy, and a hash in a multiply request
// can only ever mean one matrix. Stored matrices are immutable; everything
// downstream (the Plan cache in particular) relies on that.
//
// The store holds at most MaxBytes of matrix payload, evicting least-
// recently-used entries past the budget. Eviction notifies the onEvict
// hook (the server drops the evicted matrix's cached Plans there).
type Store struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	byHash   map[string]*storedMatrix
	lru      *list.List // front = most recently used
	onEvict  func(hash string)
}

type storedMatrix struct {
	hash  string
	m     *matrix.CSR
	bytes int64
	elem  *list.Element
}

// NewStore returns an empty store holding at most maxBytes of matrix
// payload (0 = unlimited). onEvict, when non-nil, is called (without the
// store lock held) with the hash of every evicted matrix.
func NewStore(maxBytes int64, onEvict func(hash string)) *Store {
	return &Store{
		maxBytes: maxBytes,
		byHash:   map[string]*storedMatrix{},
		lru:      list.New(),
		onEvict:  onEvict,
	}
}

// HashMatrix returns the content hash of m: hex SHA-256 over the canonical
// wire encoding.
func HashMatrix(m *matrix.CSR) (string, error) {
	h := sha256.New()
	if err := matrix.WriteCSRBinary(h, m); err != nil {
		return "", fmt.Errorf("server: hashing matrix: %w", err)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// Put interns m and returns its content hash. If an identical matrix is
// already stored, the existing copy wins (existed = true) and m is
// discarded — callers must use Get's copy, never m, after interning.
func (s *Store) Put(m *matrix.CSR) (hash string, existed bool, err error) {
	hash, err = HashMatrix(m)
	if err != nil {
		return "", false, err
	}
	size := matrix.WireSize(m)

	var evicted []string
	s.mu.Lock()
	if e, ok := s.byHash[hash]; ok {
		s.lru.MoveToFront(e.elem)
		s.mu.Unlock()
		mDedup.Inc()
		return hash, true, nil
	}
	e := &storedMatrix{hash: hash, m: m, bytes: size}
	e.elem = s.lru.PushFront(e)
	s.byHash[hash] = e
	s.bytes += size
	// Evict past the byte budget, never the entry just inserted.
	for s.maxBytes > 0 && s.bytes > s.maxBytes && s.lru.Len() > 1 {
		back := s.lru.Back().Value.(*storedMatrix)
		s.removeLocked(back)
		evicted = append(evicted, back.hash)
	}
	s.updateGaugesLocked()
	s.mu.Unlock()

	mUploads.Inc()
	for _, h := range evicted {
		mStoreEvictions.Inc()
		if s.onEvict != nil {
			s.onEvict(h)
		}
	}
	return hash, false, nil
}

// Get returns the interned matrix for hash, bumping its recency.
func (s *Store) Get(hash string) (*matrix.CSR, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.byHash[hash]
	if !ok {
		return nil, false
	}
	s.lru.MoveToFront(e.elem)
	return e.m, true
}

// Len returns the number of interned matrices.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.Len()
}

// Bytes returns the approximate interned payload size.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

func (s *Store) removeLocked(e *storedMatrix) {
	s.lru.Remove(e.elem)
	delete(s.byHash, e.hash)
	s.bytes -= e.bytes
}

func (s *Store) updateGaugesLocked() {
	mStoreBytes.Set(s.bytes)
	mStoreEntries.Set(int64(s.lru.Len()))
}
