// Package server turns the SpGEMM library into a long-running multiply
// service: matrices are uploaded once (Matrix Market text or the binary CSR
// wire format), interned by content hash, and multiplied by hash reference
// — so the per-request cost of a repeated product is the numeric phase of a
// cached Plan, not parsing, inspection, or accumulator allocation.
//
// The concurrency design is built from three pieces, each matching a
// documented non-concurrency contract of the library:
//
//   - Store: immutable content-addressed matrices (shared freely).
//   - ContextPool: spgemm.Contexts are NOT safe for concurrent use, so
//     they are checked out exclusively per request through a channel
//     (ownership transfer with a happens-before edge) with bounded-queue
//     admission control in front — saturation degrades to fast 429s.
//   - PlanCache: Plans are read-only after inspection; Plan.ExecuteIn
//     supplies the mutable state per call, so one cached Plan serves any
//     number of concurrent requests, each through its own checked-out
//     Context.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/matrix"
	"repro/internal/obs"
	"repro/internal/semiring"
	"repro/internal/spgemm"
)

// ContentTypeCSRBinary marks a request or response body in the binary CSR
// wire format (matrix.WriteCSRBinary). Anything else uploaded to
// /v1/matrices is parsed as Matrix Market text.
const ContentTypeCSRBinary = "application/x-spgemm-csr"

// Config sizes the server. The zero value of every field selects a
// reasonable default (see withDefaults).
type Config struct {
	// Contexts is the size of the Context checkout pool — the maximum
	// number of multiplies in flight at once. Default 4.
	Contexts int
	// QueueDepth is how many multiply requests may wait for a Context
	// before admission control starts returning 429. Default 64.
	QueueDepth int
	// PlanCacheSize is the maximum number of cached Plans. Default 128.
	PlanCacheSize int
	// Workers is the per-multiply worker count (0 = the scheduler
	// default). With several Contexts in flight the throughput-optimal
	// setting is small; the default is 1.
	Workers int
	// MaxStoreBytes bounds the interned matrix payload; least recently
	// used matrices (and their Plans) are evicted past it. Default 4 GiB.
	MaxStoreBytes int64
	// MaxUploadBytes bounds one upload request body. Default 1 GiB.
	MaxUploadBytes int64
	// MaxDim and MaxNNZ bound the shape a single uploaded matrix may
	// claim, enforced before any shape-proportional allocation — a
	// 32-byte header must not make the server commit gigabytes. Defaults
	// 1<<27 and 1<<31.
	MaxDim int
	MaxNNZ int64

	// RequestRing enables request-level tracing: the last RequestRing
	// multiply requests are retained with full span timelines at
	// /debug/requests. 0 (the default) disables request tracing entirely;
	// the disabled path adds zero allocations to the multiply hot path
	// (TestRequestObsDisabledZeroAllocs).
	RequestRing int
	// SlowThreshold marks a request slow: slow requests are retained in a
	// separate ring (surviving recent-ring turnover), logged at warn, and
	// optionally CPU-profiled. 0 disables the slow capturer.
	SlowThreshold time.Duration
	// SlowRing is the slow-request ring capacity (default 32).
	SlowRing int
	// SlowProfileDur, when > 0, captures one CPU profile of this duration
	// when a slow request lands (at most one capture in flight; the last
	// profile is served at /debug/requests/profile).
	SlowProfileDur time.Duration

	// SentryBaseline enables the perf sentry: algorithm name → expected
	// flop/s (see LoadSentryBaseline). Empty disables the sentry.
	SentryBaseline map[string]float64
	// SentryRatio / SentryInterval / SentrySustain / SentryMinSamples tune
	// the sentry; zero values take SentryConfig defaults.
	SentryRatio      float64
	SentryInterval   time.Duration
	SentrySustain    int
	SentryMinSamples int64
}

func (c Config) withDefaults() Config {
	if c.Contexts <= 0 {
		c.Contexts = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.PlanCacheSize <= 0 {
		c.PlanCacheSize = 128
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.MaxStoreBytes <= 0 {
		c.MaxStoreBytes = 4 << 30
	}
	if c.MaxUploadBytes <= 0 {
		c.MaxUploadBytes = 1 << 30
	}
	if c.MaxDim <= 0 {
		c.MaxDim = 1 << 27
	}
	if c.MaxNNZ <= 0 {
		c.MaxNNZ = 1 << 31
	}
	return c
}

// Server is the HTTP multiply service. Create with New; serve via Handler.
type Server struct {
	cfg    Config
	store  *Store
	plans  *PlanCache
	pool   *ContextPool
	reqobs *requestObs // nil = request tracing disabled
	sentry *Sentry     // nil = perf sentry disabled
	mux    *http.ServeMux
}

// New returns a Server sized by cfg.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{cfg: cfg}
	s.plans = NewPlanCache(cfg.PlanCacheSize)
	s.store = NewStore(cfg.MaxStoreBytes, s.plans.InvalidateMatrix)
	s.pool = NewContextPool(cfg.Contexts, cfg.QueueDepth)
	s.reqobs = newRequestObs(cfg)
	if len(cfg.SentryBaseline) > 0 {
		s.sentry = NewSentry(SentryConfig{
			Baseline:   cfg.SentryBaseline,
			Ratio:      cfg.SentryRatio,
			Interval:   cfg.SentryInterval,
			Sustain:    cfg.SentrySustain,
			MinSamples: cfg.SentryMinSamples,
		})
		s.sentry.Start()
	}

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/matrices", s.handleUpload)
	mux.HandleFunc("GET /v1/matrices/{hash}", s.handleMatrixInfo)
	mux.HandleFunc("POST /v1/multiply", s.handleMultiply)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /debug/requests", s.reqobs.handleRequests)
	mux.HandleFunc("GET /debug/requests/profile", s.reqobs.handleSlowProfile)
	mux.HandleFunc("GET /debug/requests/{id}", s.reqobs.handleRequestTrace)
	// The same observability surface the CLIs expose with -debug-addr:
	// /metrics (now including the server_* families), /debug/vars,
	// /debug/pprof, /debug/loglevel, /trace.json.
	obs.RegisterDebugHandlers(mux, nil)
	s.mux = mux
	return s
}

// Close stops the server's background machinery (the perf sentry). It does
// not touch in-flight HTTP requests — Serve's drain does that.
func (s *Server) Close() {
	if s.sentry != nil {
		s.sentry.Stop()
	}
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Store exposes the matrix intern table (tests and the serve CLI preload).
func (s *Server) Store() *Store { return s.store }

// Sentry exposes the perf sentry, nil when disabled (tests and /healthz).
func (s *Server) Sentry() *Sentry { return s.sentry }

// handleHealthz reports liveness — and, when the perf sentry holds the
// process degraded, says so with 503 and the failing algorithms, so load
// balancers rotate traffic away from a machine that has stopped performing.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	type healthz struct {
		Status   string      `json:"status"`
		Contexts int         `json:"contexts"`
		Matrices int         `json:"matrices"`
		Plans    int         `json:"plans"`
		Degraded []AlgHealth `json:"degraded,omitempty"`
		Since    string      `json:"degradedSince,omitempty"`
	}
	body := healthz{Status: "ok", Contexts: s.pool.Size(), Matrices: s.store.Len(), Plans: s.plans.Len()}
	code := http.StatusOK
	if s.sentry != nil {
		if degraded, failing, since := s.sentry.State(); degraded {
			body.Status = "degraded"
			body.Degraded = failing
			body.Since = since.UTC().Format(time.RFC3339)
			code = http.StatusServiceUnavailable
		}
	}
	writeJSON(w, code, body)
}

// MatrixInfo is the JSON metadata of an interned matrix.
type MatrixInfo struct {
	Hash     string `json:"hash"`
	Rows     int    `json:"rows"`
	Cols     int    `json:"cols"`
	NNZ      int64  `json:"nnz"`
	Sorted   bool   `json:"sorted"`
	Interned bool   `json:"interned,omitempty"` // true when the upload deduplicated
}

func matrixInfo(hash string, m *matrix.CSR, interned bool) MatrixInfo {
	return MatrixInfo{Hash: hash, Rows: m.Rows, Cols: m.Cols, NNZ: m.NNZ(), Sorted: m.Sorted, Interned: interned}
}

// MultiplyRequest is the body of POST /v1/multiply.
type MultiplyRequest struct {
	// A and B are content hashes of previously uploaded matrices.
	A string `json:"a"`
	B string `json:"b"`
	// Algorithm overrides the kernel ("auto", "hash", "hashvec", "heap",
	// ...); empty means auto.
	Algorithm string `json:"algorithm,omitempty"`
	// Semiring selects the ring: "" or "plus-times" (the default, Plan-
	// cacheable), "min-plus", "max-times".
	Semiring string `json:"semiring,omitempty"`
	// Unsorted requests unsorted output rows (skips the per-row sort).
	Unsorted bool `json:"unsorted,omitempty"`
	// Workers overrides the per-multiply worker count (0 = server config).
	Workers int `json:"workers,omitempty"`
	// Return selects the response: "meta" (default) returns metadata only,
	// "store" interns the product and returns its hash, "matrix" streams
	// the product in the binary CSR wire format.
	Return string `json:"return,omitempty"`
}

// MultiplyResponse is the JSON result of a multiply (Return "meta"/"store").
type MultiplyResponse struct {
	Rows           int     `json:"rows"`
	Cols           int     `json:"cols"`
	NNZ            int64   `json:"nnz"`
	Algorithm      string  `json:"algorithm"`
	Semiring       string  `json:"semiring"`
	PlanCacheHit   bool    `json:"planCacheHit"`
	ElapsedSeconds float64 `json:"elapsedSeconds"`
	// QueueSeconds is how long the request waited for a Context before the
	// kernel could start — the server-side admission wait the load
	// generator folds into its queue-wait percentiles.
	QueueSeconds float64 `json:"queueSeconds"`
	Flop         int64   `json:"flop"`
	Hash         string  `json:"hash,omitempty"` // set with Return "store"
	// RequestID links the response to its /debug/requests entry and log
	// lines; empty when request tracing is disabled.
	RequestID string `json:"requestID,omitempty"`
}

// jsonError is the uniform error body.
type jsonError struct {
	Error string `json:"error"`
}

func (s *Server) writeError(w http.ResponseWriter, code int, format string, args ...any) {
	mErrors.With(strconv.Itoa(code)).Inc()
	w.Header().Set("Content-Type", "application/json")
	if code == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(jsonError{Error: fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// handleUpload parses, validates and interns one matrix.
func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	mRequests.With("upload").Inc()
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes)
	lim := &matrix.ReadLimits{MaxRows: s.cfg.MaxDim, MaxCols: s.cfg.MaxDim, MaxNNZ: s.cfg.MaxNNZ}

	var m *matrix.CSR
	var err error
	ct := r.Header.Get("Content-Type")
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = strings.TrimSpace(ct[:i])
	}
	if ct == ContentTypeCSRBinary {
		m, err = matrix.ReadCSRBinaryLimited(body, lim)
	} else {
		m, err = matrix.ReadMatrixMarketLimited(body, lim)
	}
	if err != nil {
		var tooBig *http.MaxBytesError
		if !errors.As(err, &tooBig) {
			// A parser may fail on the truncated tail of an over-limit
			// body before it observes the limit error itself; probing the
			// reader distinguishes "too big" from "malformed".
			_, probeErr := body.Read(make([]byte, 1))
			errors.As(probeErr, &tooBig)
		}
		if tooBig != nil {
			s.writeError(w, http.StatusRequestEntityTooLarge, "upload exceeds %d bytes", tooBig.Limit)
			return
		}
		s.writeError(w, http.StatusBadRequest, "parse upload: %v", err)
		return
	}
	hash, existed, err := s.store.Put(m)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, "intern: %v", err)
		return
	}
	// Put interns the first copy: respond with the stored matrix, which
	// is m unless this upload deduplicated.
	stored, _ := s.store.Get(hash)
	writeJSON(w, http.StatusOK, matrixInfo(hash, stored, existed))
}

// handleMatrixInfo returns metadata for one interned matrix.
func (s *Server) handleMatrixInfo(w http.ResponseWriter, r *http.Request) {
	mRequests.With("matrix_info").Inc()
	hash := r.PathValue("hash")
	m, ok := s.store.Get(hash)
	if !ok {
		s.writeError(w, http.StatusNotFound, "unknown matrix %q", hash)
		return
	}
	writeJSON(w, http.StatusOK, matrixInfo(hash, m, false))
}

// traceID returns the request ID of a trace, or "" when tracing is off.
func traceID(t *obs.RequestTrace) string {
	if t == nil {
		return ""
	}
	return t.ID
}

// handleMultiply is the core endpoint: admission control, Plan cache,
// checked-out Context, per-request stats — and, when request tracing is on,
// the end-to-end span timeline linking queue wait → Context checkout →
// plan-cache lookup → kernel phases for /debug/requests.
func (s *Server) handleMultiply(w http.ResponseWriter, r *http.Request) {
	mRequests.With("multiply").Inc()
	rt := s.reqobs.begin()

	// fail answers an error, closes the trace, and emits the error log — the
	// single exit for every non-2xx outcome of this handler.
	fail := func(code int, format string, args ...any) {
		s.writeError(w, code, format, args...)
		log := obs.Logger()
		if rt != nil || log.Enabled(r.Context(), slog.LevelWarn) {
			msg := fmt.Sprintf(format, args...)
			if rt != nil {
				rt.Err = msg
				s.reqobs.finish(rt, code)
			}
			log.Warn("multiply failed", "reqID", traceID(rt), "status", code, "err", msg)
		}
	}

	req, ok := s.decodeMultiplyRequestTraced(w, r, rt)
	if !ok {
		return
	}
	alg, ok := spgemm.ParseAlgorithm(req.Algorithm)
	if !ok {
		fail(http.StatusBadRequest, "unknown algorithm %q", req.Algorithm)
		return
	}
	switch req.Semiring {
	case "", "plus-times", "min-plus", "max-times":
	default:
		fail(http.StatusBadRequest, "unknown semiring %q (want plus-times, min-plus or max-times)", req.Semiring)
		return
	}
	switch req.Return {
	case "", "meta", "store", "matrix":
	default:
		fail(http.StatusBadRequest, "unknown return mode %q (want meta, store or matrix)", req.Return)
		return
	}
	if req.Workers < 0 || req.Workers > 4096 {
		fail(http.StatusBadRequest, "workers %d out of range [0,4096]", req.Workers)
		return
	}
	a, ok := s.store.Get(req.A)
	if !ok {
		fail(http.StatusNotFound, "unknown matrix %q (upload it first)", req.A)
		return
	}
	b, ok := s.store.Get(req.B)
	if !ok {
		fail(http.StatusNotFound, "unknown matrix %q (upload it first)", req.B)
		return
	}
	if a.Cols != b.Rows {
		fail(http.StatusBadRequest,
			"dimension mismatch: %dx%d × %dx%d (inner dimensions %d and %d differ)",
			a.Rows, a.Cols, b.Rows, b.Cols, a.Cols, b.Rows)
		return
	}
	workers := req.Workers
	if workers == 0 {
		workers = s.cfg.Workers
	}
	if rt != nil {
		rt.SetAttr("a", req.A)
		rt.SetAttr("b", req.B)
		rt.SetAttr("alg", alg.String())
		rt.SetAttr("semiring", ringName(req.Semiring))
		rt.SetAttr("workers", workers)
	}

	// Admission control: check a Context out or shed load. The wait is
	// observed per outcome (acquired/rejected/canceled), and on the trace it
	// is "queue.wait" when the request actually queued, "ctx.checkout" when
	// a Context was free immediately.
	start := time.Now()
	ctx, queued, err := s.pool.AcquireTraced(r.Context())
	queueWait := time.Since(start)
	if err != nil {
		if errors.Is(err, ErrSaturated) {
			mQueueWaitRejected.Observe(queueWait.Seconds())
			fail(http.StatusTooManyRequests,
				"server saturated: %d multiplies in flight, %d queued", s.pool.Size(), s.cfg.QueueDepth)
			return
		}
		// Client went away while queued; nothing to answer.
		mQueueWaitCanceled.Observe(queueWait.Seconds())
		mErrors.With("499").Inc()
		if rt != nil {
			rt.Err = "client canceled while queued"
			rt.Span("queue.wait", start, start.Add(queueWait))
			s.reqobs.finish(rt, 499)
		}
		return
	}
	defer s.pool.Release(ctx)
	mQueueWaitAcquired.Observe(queueWait.Seconds())
	if rt != nil {
		name := "ctx.checkout"
		if queued {
			name = "queue.wait"
		}
		rt.Span(name, start, start.Add(queueWait))
		rt.SetAttr("queued", queued)
	}

	stats := &spgemm.ExecStats{}
	c, planHit, err := s.multiply(ctx, stats, a, b, alg, req, workers, rt)
	if err != nil {
		fail(http.StatusUnprocessableEntity, "multiply: %v", err)
		return
	}
	elapsed := time.Since(start)
	recordMultiplyMetrics(stats, elapsed, planHit)
	if stats != nil {
		observeRequestSeconds(stats.Algorithm, elapsed.Seconds())
		if s.sentry != nil {
			s.sentry.Observe(stats.Algorithm.String(), totalFlop(stats), stats.Total)
		}
	}

	resp := MultiplyResponse{
		Rows:           c.Rows,
		Cols:           c.Cols,
		NNZ:            c.NNZ(),
		Algorithm:      resolvedAlgorithm(stats, alg),
		Semiring:       ringName(req.Semiring),
		PlanCacheHit:   planHit,
		ElapsedSeconds: elapsed.Seconds(),
		QueueSeconds:   queueWait.Seconds(),
		Flop:           totalFlop(stats),
		RequestID:      traceID(rt),
	}
	if rt != nil {
		w.Header().Set("X-Request-Id", rt.ID)
	}
	switch req.Return {
	case "store":
		hash, _, err := s.store.Put(c)
		if err != nil {
			fail(http.StatusInternalServerError, "intern product: %v", err)
			return
		}
		resp.Hash = hash
		writeJSON(w, http.StatusOK, resp)
	case "matrix":
		w.Header().Set("Content-Type", ContentTypeCSRBinary)
		w.Header().Set("X-Spgemm-Algorithm", resp.Algorithm)
		w.Header().Set("X-Spgemm-Plan-Cache-Hit", strconv.FormatBool(planHit))
		_ = matrix.WriteCSRBinary(w, c)
	default:
		writeJSON(w, http.StatusOK, resp)
	}

	// Close the trace (response serialization included) and write the
	// access-log line. The Enabled guard keeps attribute construction off
	// the path when logging is quiet.
	if rt != nil {
		rt.SetAttr("algResolved", resp.Algorithm)
		rt.SetAttr("planHit", planHit)
		rt.SetAttr("flop", resp.Flop)
		rt.SetAttr("nnz", resp.NNZ)
		if stats != nil {
			if cf := stats.CollisionFactor(); cf > 0 {
				rt.SetAttr("collisionFactor", cf)
			}
		}
		s.reqobs.finish(rt, http.StatusOK)
	}
	if log := obs.Logger(); log.Enabled(r.Context(), slog.LevelInfo) {
		log.Info("multiply",
			"reqID", traceID(rt), "status", http.StatusOK,
			"a", req.A, "b", req.B,
			"alg", resp.Algorithm, "planHit", planHit,
			"ms", float64(elapsed)/1e6, "queueMs", float64(queueWait)/1e6,
			"flop", resp.Flop, "nnz", resp.NNZ)
	}
}

// decodeMultiplyRequest strictly parses the JSON body: unknown fields,
// trailing garbage and non-JSON bodies are all 400s — silently ignoring
// malformed requests is how wrong answers hide.
func (s *Server) decodeMultiplyRequest(w http.ResponseWriter, r *http.Request) (MultiplyRequest, bool) {
	var req MultiplyRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "decode request: %v", err)
		return req, false
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		s.writeError(w, http.StatusBadRequest, "trailing data after request body")
		return req, false
	}
	if req.A == "" || req.B == "" {
		s.writeError(w, http.StatusBadRequest, "both \"a\" and \"b\" matrix hashes are required")
		return req, false
	}
	return req, true
}

// decodeMultiplyRequestTraced is decodeMultiplyRequest plus trace closure on
// the failure path (decodeMultiplyRequest writes its own 400 body).
func (s *Server) decodeMultiplyRequestTraced(w http.ResponseWriter, r *http.Request, rt *obs.RequestTrace) (MultiplyRequest, bool) {
	req, ok := s.decodeMultiplyRequest(w, r)
	if !ok && rt != nil {
		rt.Err = "malformed request body"
		s.reqobs.finish(rt, http.StatusBadRequest)
	}
	return req, ok
}

// kernelClock reads the wall clock only when a trace wants it — paired with
// stampKernel, it brackets the kernel call without costing the disabled path
// a clock read.
func kernelClock(rt *obs.RequestTrace) time.Time {
	if rt == nil {
		return time.Time{}
	}
	return time.Now()
}

// multiply runs the product through the Plan cache when the request is
// plan-eligible (plus-times, hash-family algorithm), falling back to a
// plain Multiply otherwise. The checked-out Context supplies all mutable
// kernel state either way. A non-nil rt receives the plan-cache and kernel
// spans; kernel phase sub-spans are reconstructed from stats after the call
// (ExecuteIn resets stats, so Total covers exactly the bracketed kernel).
func (s *Server) multiply(ctx *spgemm.Context, stats *spgemm.ExecStats, a, b *matrix.CSR,
	alg spgemm.Algorithm, req MultiplyRequest, workers int, rt *obs.RequestTrace) (*matrix.CSR, bool, error) {

	opt := &spgemm.Options{
		Algorithm: alg,
		Unsorted:  req.Unsorted,
		Workers:   workers,
		Context:   ctx,
		Stats:     stats,
	}
	switch req.Semiring {
	case "min-plus":
		kt := kernelClock(rt)
		c, err := spgemm.MultiplyRing(semiring.MinPlusF64{}, a, b, optG(opt))
		if err == nil {
			stampKernel(rt, kt, stats)
		}
		return c, false, err
	case "max-times":
		kt := kernelClock(rt)
		c, err := spgemm.MultiplyRing(semiring.MaxTimesF64{}, a, b, optG(opt))
		if err == nil {
			stampKernel(rt, kt, stats)
		}
		return c, false, err
	}

	key := PlanKey{A: req.A, B: req.B, Algorithm: alg, Unsorted: req.Unsorted, Workers: workers}
	lt := kernelClock(rt)
	plan, hit := s.plans.Get(key)
	if rt != nil {
		rt.Span("plan.lookup", lt, time.Now())
		rt.SetAttr("planHit", hit)
	}
	if hit {
		kt := kernelClock(rt)
		c, err := plan.ExecuteIn(ctx, stats)
		if err == nil {
			stampKernel(rt, kt, stats)
			mPlanHits.Inc()
			return c, true, nil
		}
		// Interned matrices are immutable, so a stale plan should be
		// impossible — but if one surfaces, drop it and rebuild below.
		if !errors.Is(err, spgemm.ErrPlanStale) {
			return nil, false, err
		}
		s.plans.Remove(key)
	}
	mPlanMisses.Inc()
	bt := kernelClock(rt)
	plan, err := spgemm.NewPlan(a, b, opt)
	if err != nil {
		// Not plan-eligible (auto resolved to a non-hash kernel, explicit
		// heap/merge/... request): one-shot multiply through the Context.
		kt := kernelClock(rt)
		c, merr := spgemm.Multiply(a, b, opt)
		if merr == nil {
			stampKernel(rt, kt, stats)
		}
		return c, false, merr
	}
	if rt != nil {
		rt.Span("plan.build", bt, time.Now())
	}
	s.plans.Add(key, plan)
	kt := kernelClock(rt)
	c, err := plan.ExecuteIn(ctx, stats)
	if err == nil {
		stampKernel(rt, kt, stats)
	}
	return c, false, err
}

// optG converts the float64 Options to the generic form for MultiplyRing
// with a named ring.
func optG(o *spgemm.Options) *spgemm.OptionsG[float64] {
	return &spgemm.OptionsG[float64]{
		Algorithm: o.Algorithm,
		Workers:   o.Workers,
		Unsorted:  o.Unsorted,
		Stats:     o.Stats,
		Context:   o.Context,
	}
}

func ringName(s string) string {
	if s == "" {
		return "plus-times"
	}
	return s
}

// resolvedAlgorithm names the kernel that actually ran: AlgAuto resolves
// during execution and the choice is recorded in the stats.
func resolvedAlgorithm(stats *spgemm.ExecStats, requested spgemm.Algorithm) string {
	if stats != nil {
		return stats.Algorithm.String()
	}
	return requested.String()
}

func totalFlop(stats *spgemm.ExecStats) int64 {
	if stats == nil {
		return 0
	}
	var flop int64
	for _, ws := range stats.Workers {
		flop += ws.Flop
	}
	return flop
}

// recordMultiplyMetrics folds one request's ExecStats into the server_*
// families.
func recordMultiplyMetrics(stats *spgemm.ExecStats, elapsed time.Duration, planHit bool) {
	mMultiplies.Inc()
	mMultiplySeconds.Observe(elapsed.Seconds())
	if stats != nil {
		mMultiplyFlop.Add(totalFlop(stats))
		for p := spgemm.Phase(0); p < spgemm.NumPhases; p++ {
			if d := stats.Phases[p]; d > 0 {
				mPhaseNanos.With(p.String()).Add(int64(d))
			}
		}
	}
}

// Serve runs h on ln until ctx is canceled, then shuts down gracefully:
// the listener closes immediately, in-flight requests drain for up to
// grace, then remaining connections are closed. This is the same
// drain-don't-truncate exit path the CLIs use for their debug servers.
func Serve(ctx context.Context, ln net.Listener, h http.Handler, grace time.Duration) error {
	srv := &http.Server{Handler: h}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		sctx, cancel := context.WithTimeout(context.Background(), grace)
		defer cancel()
		return srv.Shutdown(sctx)
	}
}
