// Package server turns the SpGEMM library into a long-running multiply
// service: matrices are uploaded once (Matrix Market text or the binary CSR
// wire format), interned by content hash, and multiplied by hash reference
// — so the per-request cost of a repeated product is the numeric phase of a
// cached Plan, not parsing, inspection, or accumulator allocation.
//
// The concurrency design is built from three pieces, each matching a
// documented non-concurrency contract of the library:
//
//   - Store: immutable content-addressed matrices (shared freely).
//   - ContextPool: spgemm.Contexts are NOT safe for concurrent use, so
//     they are checked out exclusively per request through a channel
//     (ownership transfer with a happens-before edge) with bounded-queue
//     admission control in front — saturation degrades to fast 429s.
//   - PlanCache: Plans are read-only after inspection; Plan.ExecuteIn
//     supplies the mutable state per call, so one cached Plan serves any
//     number of concurrent requests, each through its own checked-out
//     Context.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/matrix"
	"repro/internal/obs"
	"repro/internal/semiring"
	"repro/internal/spgemm"
)

// ContentTypeCSRBinary marks a request or response body in the binary CSR
// wire format (matrix.WriteCSRBinary). Anything else uploaded to
// /v1/matrices is parsed as Matrix Market text.
const ContentTypeCSRBinary = "application/x-spgemm-csr"

// Config sizes the server. The zero value of every field selects a
// reasonable default (see withDefaults).
type Config struct {
	// Contexts is the size of the Context checkout pool — the maximum
	// number of multiplies in flight at once. Default 4.
	Contexts int
	// QueueDepth is how many multiply requests may wait for a Context
	// before admission control starts returning 429. Default 64.
	QueueDepth int
	// PlanCacheSize is the maximum number of cached Plans. Default 128.
	PlanCacheSize int
	// Workers is the per-multiply worker count (0 = the scheduler
	// default). With several Contexts in flight the throughput-optimal
	// setting is small; the default is 1.
	Workers int
	// MaxStoreBytes bounds the interned matrix payload; least recently
	// used matrices (and their Plans) are evicted past it. Default 4 GiB.
	MaxStoreBytes int64
	// MaxUploadBytes bounds one upload request body. Default 1 GiB.
	MaxUploadBytes int64
	// MaxDim and MaxNNZ bound the shape a single uploaded matrix may
	// claim, enforced before any shape-proportional allocation — a
	// 32-byte header must not make the server commit gigabytes. Defaults
	// 1<<27 and 1<<31.
	MaxDim int
	MaxNNZ int64
}

func (c Config) withDefaults() Config {
	if c.Contexts <= 0 {
		c.Contexts = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.PlanCacheSize <= 0 {
		c.PlanCacheSize = 128
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.MaxStoreBytes <= 0 {
		c.MaxStoreBytes = 4 << 30
	}
	if c.MaxUploadBytes <= 0 {
		c.MaxUploadBytes = 1 << 30
	}
	if c.MaxDim <= 0 {
		c.MaxDim = 1 << 27
	}
	if c.MaxNNZ <= 0 {
		c.MaxNNZ = 1 << 31
	}
	return c
}

// Server is the HTTP multiply service. Create with New; serve via Handler.
type Server struct {
	cfg   Config
	store *Store
	plans *PlanCache
	pool  *ContextPool
	mux   *http.ServeMux
}

// New returns a Server sized by cfg.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{cfg: cfg}
	s.plans = NewPlanCache(cfg.PlanCacheSize)
	s.store = NewStore(cfg.MaxStoreBytes, s.plans.InvalidateMatrix)
	s.pool = NewContextPool(cfg.Contexts, cfg.QueueDepth)

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/matrices", s.handleUpload)
	mux.HandleFunc("GET /v1/matrices/{hash}", s.handleMatrixInfo)
	mux.HandleFunc("POST /v1/multiply", s.handleMultiply)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"status":"ok","contexts":%d,"matrices":%d,"plans":%d}`+"\n",
			s.pool.Size(), s.store.Len(), s.plans.Len())
	})
	// The same observability surface the CLIs expose with -debug-addr:
	// /metrics (now including the server_* families), /debug/vars,
	// /debug/pprof, /trace.json.
	obs.RegisterDebugHandlers(mux, nil)
	s.mux = mux
	return s
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Store exposes the matrix intern table (tests and the serve CLI preload).
func (s *Server) Store() *Store { return s.store }

// MatrixInfo is the JSON metadata of an interned matrix.
type MatrixInfo struct {
	Hash     string `json:"hash"`
	Rows     int    `json:"rows"`
	Cols     int    `json:"cols"`
	NNZ      int64  `json:"nnz"`
	Sorted   bool   `json:"sorted"`
	Interned bool   `json:"interned,omitempty"` // true when the upload deduplicated
}

func matrixInfo(hash string, m *matrix.CSR, interned bool) MatrixInfo {
	return MatrixInfo{Hash: hash, Rows: m.Rows, Cols: m.Cols, NNZ: m.NNZ(), Sorted: m.Sorted, Interned: interned}
}

// MultiplyRequest is the body of POST /v1/multiply.
type MultiplyRequest struct {
	// A and B are content hashes of previously uploaded matrices.
	A string `json:"a"`
	B string `json:"b"`
	// Algorithm overrides the kernel ("auto", "hash", "hashvec", "heap",
	// ...); empty means auto.
	Algorithm string `json:"algorithm,omitempty"`
	// Semiring selects the ring: "" or "plus-times" (the default, Plan-
	// cacheable), "min-plus", "max-times".
	Semiring string `json:"semiring,omitempty"`
	// Unsorted requests unsorted output rows (skips the per-row sort).
	Unsorted bool `json:"unsorted,omitempty"`
	// Workers overrides the per-multiply worker count (0 = server config).
	Workers int `json:"workers,omitempty"`
	// Return selects the response: "meta" (default) returns metadata only,
	// "store" interns the product and returns its hash, "matrix" streams
	// the product in the binary CSR wire format.
	Return string `json:"return,omitempty"`
}

// MultiplyResponse is the JSON result of a multiply (Return "meta"/"store").
type MultiplyResponse struct {
	Rows           int     `json:"rows"`
	Cols           int     `json:"cols"`
	NNZ            int64   `json:"nnz"`
	Algorithm      string  `json:"algorithm"`
	Semiring       string  `json:"semiring"`
	PlanCacheHit   bool    `json:"planCacheHit"`
	ElapsedSeconds float64 `json:"elapsedSeconds"`
	Flop           int64   `json:"flop"`
	Hash           string  `json:"hash,omitempty"` // set with Return "store"
}

// jsonError is the uniform error body.
type jsonError struct {
	Error string `json:"error"`
}

func (s *Server) writeError(w http.ResponseWriter, code int, format string, args ...any) {
	mErrors.With(strconv.Itoa(code)).Inc()
	w.Header().Set("Content-Type", "application/json")
	if code == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(jsonError{Error: fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// handleUpload parses, validates and interns one matrix.
func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	mRequests.With("upload").Inc()
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes)
	lim := &matrix.ReadLimits{MaxRows: s.cfg.MaxDim, MaxCols: s.cfg.MaxDim, MaxNNZ: s.cfg.MaxNNZ}

	var m *matrix.CSR
	var err error
	ct := r.Header.Get("Content-Type")
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = strings.TrimSpace(ct[:i])
	}
	if ct == ContentTypeCSRBinary {
		m, err = matrix.ReadCSRBinaryLimited(body, lim)
	} else {
		m, err = matrix.ReadMatrixMarketLimited(body, lim)
	}
	if err != nil {
		var tooBig *http.MaxBytesError
		if !errors.As(err, &tooBig) {
			// A parser may fail on the truncated tail of an over-limit
			// body before it observes the limit error itself; probing the
			// reader distinguishes "too big" from "malformed".
			_, probeErr := body.Read(make([]byte, 1))
			errors.As(probeErr, &tooBig)
		}
		if tooBig != nil {
			s.writeError(w, http.StatusRequestEntityTooLarge, "upload exceeds %d bytes", tooBig.Limit)
			return
		}
		s.writeError(w, http.StatusBadRequest, "parse upload: %v", err)
		return
	}
	hash, existed, err := s.store.Put(m)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, "intern: %v", err)
		return
	}
	// Put interns the first copy: respond with the stored matrix, which
	// is m unless this upload deduplicated.
	stored, _ := s.store.Get(hash)
	writeJSON(w, http.StatusOK, matrixInfo(hash, stored, existed))
}

// handleMatrixInfo returns metadata for one interned matrix.
func (s *Server) handleMatrixInfo(w http.ResponseWriter, r *http.Request) {
	mRequests.With("matrix_info").Inc()
	hash := r.PathValue("hash")
	m, ok := s.store.Get(hash)
	if !ok {
		s.writeError(w, http.StatusNotFound, "unknown matrix %q", hash)
		return
	}
	writeJSON(w, http.StatusOK, matrixInfo(hash, m, false))
}

// handleMultiply is the core endpoint: admission control, Plan cache,
// checked-out Context, per-request stats.
func (s *Server) handleMultiply(w http.ResponseWriter, r *http.Request) {
	mRequests.With("multiply").Inc()
	req, ok := s.decodeMultiplyRequest(w, r)
	if !ok {
		return
	}
	alg, ok := spgemm.ParseAlgorithm(req.Algorithm)
	if !ok {
		s.writeError(w, http.StatusBadRequest, "unknown algorithm %q", req.Algorithm)
		return
	}
	switch req.Semiring {
	case "", "plus-times", "min-plus", "max-times":
	default:
		s.writeError(w, http.StatusBadRequest, "unknown semiring %q (want plus-times, min-plus or max-times)", req.Semiring)
		return
	}
	switch req.Return {
	case "", "meta", "store", "matrix":
	default:
		s.writeError(w, http.StatusBadRequest, "unknown return mode %q (want meta, store or matrix)", req.Return)
		return
	}
	if req.Workers < 0 || req.Workers > 4096 {
		s.writeError(w, http.StatusBadRequest, "workers %d out of range [0,4096]", req.Workers)
		return
	}
	a, ok := s.store.Get(req.A)
	if !ok {
		s.writeError(w, http.StatusNotFound, "unknown matrix %q (upload it first)", req.A)
		return
	}
	b, ok := s.store.Get(req.B)
	if !ok {
		s.writeError(w, http.StatusNotFound, "unknown matrix %q (upload it first)", req.B)
		return
	}
	if a.Cols != b.Rows {
		s.writeError(w, http.StatusBadRequest,
			"dimension mismatch: %dx%d × %dx%d (inner dimensions %d and %d differ)",
			a.Rows, a.Cols, b.Rows, b.Cols, a.Cols, b.Rows)
		return
	}
	workers := req.Workers
	if workers == 0 {
		workers = s.cfg.Workers
	}

	// Admission control: check a Context out or shed load.
	start := time.Now()
	ctx, err := s.pool.Acquire(r.Context())
	if err != nil {
		if errors.Is(err, ErrSaturated) {
			s.writeError(w, http.StatusTooManyRequests,
				"server saturated: %d multiplies in flight, %d queued", s.pool.Size(), s.cfg.QueueDepth)
			return
		}
		// Client went away while queued; nothing to answer.
		mErrors.With("499").Inc()
		return
	}
	defer s.pool.Release(ctx)

	stats := &spgemm.ExecStats{}
	c, planHit, err := s.multiply(ctx, stats, a, b, alg, req, workers)
	if err != nil {
		s.writeError(w, http.StatusUnprocessableEntity, "multiply: %v", err)
		return
	}
	elapsed := time.Since(start)
	recordMultiplyMetrics(stats, elapsed, planHit)

	resp := MultiplyResponse{
		Rows:           c.Rows,
		Cols:           c.Cols,
		NNZ:            c.NNZ(),
		Algorithm:      resolvedAlgorithm(stats, alg),
		Semiring:       ringName(req.Semiring),
		PlanCacheHit:   planHit,
		ElapsedSeconds: elapsed.Seconds(),
		Flop:           totalFlop(stats),
	}
	switch req.Return {
	case "store":
		hash, _, err := s.store.Put(c)
		if err != nil {
			s.writeError(w, http.StatusInternalServerError, "intern product: %v", err)
			return
		}
		resp.Hash = hash
		writeJSON(w, http.StatusOK, resp)
	case "matrix":
		w.Header().Set("Content-Type", ContentTypeCSRBinary)
		w.Header().Set("X-Spgemm-Algorithm", resp.Algorithm)
		w.Header().Set("X-Spgemm-Plan-Cache-Hit", strconv.FormatBool(planHit))
		_ = matrix.WriteCSRBinary(w, c)
	default:
		writeJSON(w, http.StatusOK, resp)
	}
}

// decodeMultiplyRequest strictly parses the JSON body: unknown fields,
// trailing garbage and non-JSON bodies are all 400s — silently ignoring
// malformed requests is how wrong answers hide.
func (s *Server) decodeMultiplyRequest(w http.ResponseWriter, r *http.Request) (MultiplyRequest, bool) {
	var req MultiplyRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "decode request: %v", err)
		return req, false
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		s.writeError(w, http.StatusBadRequest, "trailing data after request body")
		return req, false
	}
	if req.A == "" || req.B == "" {
		s.writeError(w, http.StatusBadRequest, "both \"a\" and \"b\" matrix hashes are required")
		return req, false
	}
	return req, true
}

// multiply runs the product through the Plan cache when the request is
// plan-eligible (plus-times, hash-family algorithm), falling back to a
// plain Multiply otherwise. The checked-out Context supplies all mutable
// kernel state either way.
func (s *Server) multiply(ctx *spgemm.Context, stats *spgemm.ExecStats, a, b *matrix.CSR,
	alg spgemm.Algorithm, req MultiplyRequest, workers int) (*matrix.CSR, bool, error) {

	opt := &spgemm.Options{
		Algorithm: alg,
		Unsorted:  req.Unsorted,
		Workers:   workers,
		Context:   ctx,
		Stats:     stats,
	}
	switch req.Semiring {
	case "min-plus":
		c, err := spgemm.MultiplyRing(semiring.MinPlusF64{}, a, b, optG(opt))
		return c, false, err
	case "max-times":
		c, err := spgemm.MultiplyRing(semiring.MaxTimesF64{}, a, b, optG(opt))
		return c, false, err
	}

	key := PlanKey{A: req.A, B: req.B, Algorithm: alg, Unsorted: req.Unsorted, Workers: workers}
	if plan, ok := s.plans.Get(key); ok {
		c, err := plan.ExecuteIn(ctx, stats)
		if err == nil {
			mPlanHits.Inc()
			return c, true, nil
		}
		// Interned matrices are immutable, so a stale plan should be
		// impossible — but if one surfaces, drop it and rebuild below.
		if !errors.Is(err, spgemm.ErrPlanStale) {
			return nil, false, err
		}
		s.plans.Remove(key)
	}
	mPlanMisses.Inc()
	plan, err := spgemm.NewPlan(a, b, opt)
	if err != nil {
		// Not plan-eligible (auto resolved to a non-hash kernel, explicit
		// heap/merge/... request): one-shot multiply through the Context.
		c, merr := spgemm.Multiply(a, b, opt)
		return c, false, merr
	}
	s.plans.Add(key, plan)
	c, err := plan.ExecuteIn(ctx, stats)
	return c, false, err
}

// optG converts the float64 Options to the generic form for MultiplyRing
// with a named ring.
func optG(o *spgemm.Options) *spgemm.OptionsG[float64] {
	return &spgemm.OptionsG[float64]{
		Algorithm: o.Algorithm,
		Workers:   o.Workers,
		Unsorted:  o.Unsorted,
		Stats:     o.Stats,
		Context:   o.Context,
	}
}

func ringName(s string) string {
	if s == "" {
		return "plus-times"
	}
	return s
}

// resolvedAlgorithm names the kernel that actually ran: AlgAuto resolves
// during execution and the choice is recorded in the stats.
func resolvedAlgorithm(stats *spgemm.ExecStats, requested spgemm.Algorithm) string {
	if stats != nil {
		return stats.Algorithm.String()
	}
	return requested.String()
}

func totalFlop(stats *spgemm.ExecStats) int64 {
	if stats == nil {
		return 0
	}
	var flop int64
	for _, ws := range stats.Workers {
		flop += ws.Flop
	}
	return flop
}

// recordMultiplyMetrics folds one request's ExecStats into the server_*
// families.
func recordMultiplyMetrics(stats *spgemm.ExecStats, elapsed time.Duration, planHit bool) {
	mMultiplies.Inc()
	mMultiplySeconds.Observe(elapsed.Seconds())
	if stats != nil {
		mMultiplyFlop.Add(totalFlop(stats))
		for p := spgemm.Phase(0); p < spgemm.NumPhases; p++ {
			if d := stats.Phases[p]; d > 0 {
				mPhaseNanos.With(p.String()).Add(int64(d))
			}
		}
	}
}

// Serve runs h on ln until ctx is canceled, then shuts down gracefully:
// the listener closes immediately, in-flight requests drain for up to
// grace, then remaining connections are closed. This is the same
// drain-don't-truncate exit path the CLIs use for their debug servers.
func Serve(ctx context.Context, ln net.Listener, h http.Handler, grace time.Duration) error {
	srv := &http.Server{Handler: h}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		sctx, cancel := context.WithTimeout(context.Background(), grace)
		defer cancel()
		return srv.Shutdown(sctx)
	}
}
