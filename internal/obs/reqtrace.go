package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// RequestTrace is a request-scoped span timeline: one served request's
// end-to-end story (admission queue wait → Context checkout → plan-cache
// lookup → kernel phases) as named intervals on a single track, plus a small
// bag of attributes (matrix hashes, resolved algorithm, flop, collision
// factor). It is the per-request counterpart of the process-wide Tracer:
// where the Tracer interleaves every concurrent kernel onto shared worker
// lanes, a RequestTrace isolates exactly one request, so a slow outlier can
// be exported and read on its own.
//
// Ownership contract: a RequestTrace is built by the single goroutine
// handling the request and becomes immutable once published to a
// RequestRing; the ring's lock is the happens-before edge to concurrent
// /debug/requests readers. No internal locking is needed or provided.
type RequestTrace struct {
	ID    string    `json:"id"`
	Start time.Time `json:"start"`
	// Status is the HTTP status the request was answered with.
	Status int `json:"status"`
	// TotalMs is the end-to-end handler latency in milliseconds.
	TotalMs float64 `json:"totalMs"`
	// Attrs carries request metadata (operand hashes, algorithm, flop, ...).
	// encoding/json sorts map keys, so the exported shape is deterministic.
	Attrs map[string]any `json:"attrs,omitempty"`
	// Spans are the timeline intervals, in recording order, with offsets
	// relative to Start.
	Spans []ReqSpan `json:"spans"`
	// Err is the error message for non-2xx requests.
	Err string `json:"err,omitempty"`
}

// ReqSpan is one named interval of a RequestTrace.
type ReqSpan struct {
	Name    string  `json:"name"`
	StartMs float64 `json:"startMs"`
	DurMs   float64 `json:"durMs"`
}

// NewRequestTrace starts a trace for one request; its clock starts now.
func NewRequestTrace(id string) *RequestTrace {
	return &RequestTrace{ID: id, Start: time.Now()}
}

// Span records the interval [start, end] under the given name. Offsets are
// taken against the trace's start time, so spans recorded from wall-clock
// reads the handler already performed add no further clock reads.
func (t *RequestTrace) Span(name string, start, end time.Time) {
	t.SpanAt(name, start.Sub(t.Start), end.Sub(start))
}

// SpanAt records an interval by explicit offset and duration — the form used
// when reconstructing kernel phase sub-spans from ExecStats, whose phase
// durations are measured back-to-back from the kernel start.
func (t *RequestTrace) SpanAt(name string, offset, dur time.Duration) {
	t.Spans = append(t.Spans, ReqSpan{
		Name:    name,
		StartMs: float64(offset) / 1e6,
		DurMs:   float64(dur) / 1e6,
	})
}

// SetAttr attaches one metadata key to the trace.
func (t *RequestTrace) SetAttr(key string, v any) {
	if t.Attrs == nil {
		t.Attrs = make(map[string]any, 8)
	}
	t.Attrs[key] = v
}

// Finish stamps the total latency and response status. The trace must not be
// mutated after Finish + ring publication.
func (t *RequestTrace) Finish(status int) {
	t.Status = status
	t.TotalMs = float64(time.Since(t.Start)) / 1e6
}

// Total returns the recorded end-to-end latency.
func (t *RequestTrace) Total() time.Duration {
	return time.Duration(t.TotalMs * 1e6)
}

// SpanSum returns the summed duration of the named spans (all spans when no
// names are given). The request-level accounting invariant mirrors
// ExecStats.PhaseSum() <= Total: every recorded span lies inside the
// [Start, Start+Total] window and sibling spans do not overlap.
func (t *RequestTrace) SpanSum(names ...string) time.Duration {
	var sum time.Duration
	for _, s := range t.Spans {
		if len(names) > 0 {
			found := false
			for _, n := range names {
				if s.Name == n {
					found = true
					break
				}
			}
			if !found {
				continue
			}
		}
		sum += time.Duration(s.DurMs * 1e6)
	}
	return sum
}

// WriteChromeTrace exports the request as a self-contained Chrome trace-event
// JSON document (complete "X" events on one named track), loadable in
// Perfetto exactly like the process Tracer's /trace.json — but containing
// only this request. Attributes ride along as args of the root span.
func (t *RequestTrace) WriteChromeTrace(w io.Writer) error {
	var out chromeTrace
	out.DisplayTimeUnit = "ms"
	out.TraceEvents = append(out.TraceEvents, chromeEvent{
		Name: "thread_name", Ph: "M", PID: 1, TID: 0,
		Args: map[string]any{"name": fmt.Sprintf("request %s", t.ID)},
	})
	root := chromeEvent{
		Name: "request", Cat: "request", Ph: "X",
		TS: 0, PID: 1, TID: 0,
		Args: map[string]any{"id": t.ID, "status": t.Status},
	}
	for k, v := range t.Attrs {
		root.Args[k] = v
	}
	root.Dur = t.TotalMs * 1e3
	out.TraceEvents = append(out.TraceEvents, root)
	for _, s := range t.Spans {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: s.Name, Cat: "request", Ph: "X",
			TS: s.StartMs * 1e3, Dur: s.DurMs * 1e3, PID: 1, TID: 0,
		})
	}
	return json.NewEncoder(w).Encode(&out)
}

// RequestRing is a bounded ring of recently completed RequestTraces — the
// in-memory store behind /debug/requests. Writers publish completed
// (immutable) traces; Snapshot returns them newest-first. The ring holds at
// most its capacity, so a long-running server's memory stays bounded no
// matter how much traffic flows through.
type RequestRing struct {
	mu   sync.Mutex
	buf  []*RequestTrace
	next int   // buf index the next Add writes
	n    int   // live entries (== len(buf) once wrapped)
	adds int64 // total Adds ever, for drop accounting
}

// NewRequestRing returns a ring holding the last capacity traces
// (minimum 1).
func NewRequestRing(capacity int) *RequestRing {
	if capacity < 1 {
		capacity = 1
	}
	return &RequestRing{buf: make([]*RequestTrace, capacity)}
}

// Add publishes a completed trace, displacing the oldest entry when full.
func (r *RequestRing) Add(t *RequestTrace) {
	r.mu.Lock()
	r.buf[r.next] = t
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.adds++
	r.mu.Unlock()
}

// Snapshot returns the live traces newest-first. The returned slice is
// freshly allocated; the traces themselves are shared and immutable.
func (r *RequestRing) Snapshot() []*RequestTrace {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*RequestTrace, 0, r.n)
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(r.next-1-i+2*len(r.buf))%len(r.buf)])
	}
	return out
}

// Get returns the live trace with the given request ID.
func (r *RequestRing) Get(id string) (*RequestTrace, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := 0; i < r.n; i++ {
		t := r.buf[(r.next-1-i+2*len(r.buf))%len(r.buf)]
		if t.ID == id {
			return t, true
		}
	}
	return nil, false
}

// Cap returns the ring's capacity.
func (r *RequestRing) Cap() int { return len(r.buf) }

// Len returns the number of live traces.
func (r *RequestRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Dropped returns how many traces have been displaced by capacity so far —
// surfaced on /debug/requests so "covered everything" is never silently
// false.
func (r *RequestRing) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	d := r.adds - int64(r.n)
	if d < 0 {
		d = 0
	}
	return d
}
