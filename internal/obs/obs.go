// Package obs is the observability subsystem: a per-worker timeline tracer
// with Chrome trace-event export, a registry of atomic counters/gauges/
// histograms with Prometheus text exposition and an expvar bridge, and an
// opt-in debug HTTP surface (/metrics, /debug/vars, /debug/pprof).
//
// The package is always compiled in and zero-cost when disabled. The contract
// every instrumentation hook follows (the same discipline as spgemm's
// phaseTimer):
//
//   - With no active tracer, a trace hook is one atomic pointer load and a
//     nil compare — no clock reads, no allocations, no locks.
//   - Metric updates are single uncontended atomic adds placed at per-call or
//     per-region granularity, never inside per-row or per-element loops.
//
// Tracing is enabled process-wide by installing a Tracer with SetActive; the
// spgemm kernels then stamp their phase boundaries onto the driver lane and
// sched.Pool stamps every worker's region execution onto that worker's lane.
// The resulting timeline loads in Perfetto / chrome://tracing and makes the
// paper's Figure 6 load-balance claim visually checkable; Imbalance reduces
// it to a per-worker busy-time table with a max/mean ratio.
package obs

import "sync/atomic"

// active is the process-wide tracer, nil when tracing is disabled.
var active atomic.Pointer[Tracer]

// SetActive installs t as the process-wide tracer; nil disables tracing.
// Instrumented code picks the tracer up at the start of each region or
// kernel, so a swap takes effect at the next region boundary.
func SetActive(t *Tracer) {
	active.Store(t)
}

// Active returns the process-wide tracer, or nil when tracing is disabled.
// The nil path is one atomic load; callers must treat a nil result as
// "perform no instrumentation work at all".
func Active() *Tracer {
	return active.Load()
}
