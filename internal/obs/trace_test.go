package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// scriptedTracer builds a small deterministic timeline: two phases on the
// driver lane and one region span per worker lane, the shape a two-worker
// hash SpGEMM produces.
func scriptedTracer() *Tracer {
	tr := NewTracer()
	t0 := tr.start
	tr.Span(DriverLane, "partition", t0, t0.Add(time.Millisecond))
	tr.Begin(1, "symbolic")
	tr.Begin(2, "symbolic")
	tr.End(2, "symbolic")
	tr.End(1, "symbolic")
	tr.Span(DriverLane, "symbolic", t0.Add(time.Millisecond), t0.Add(3*time.Millisecond))
	return tr
}

// decodeTrace parses exported Chrome trace JSON.
func decodeTrace(t *testing.T, data []byte) chromeTrace {
	t.Helper()
	var ct chromeTrace
	if err := json.Unmarshal(data, &ct); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	return ct
}

func TestChromeTraceSchemaAndGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := scriptedTracer().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	ct := decodeTrace(t, buf.Bytes())
	if ct.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", ct.DisplayTimeUnit)
	}
	if len(ct.TraceEvents) == 0 {
		t.Fatal("no trace events exported")
	}
	validateTrace(t, ct)

	// Golden comparison on everything but the wall-clock timestamps: ts is
	// replaced with the event's per-lane ordinal, which the monotonicity
	// check above ties to the real order.
	ordinal := map[int]int{}
	for i := range ct.TraceEvents {
		e := &ct.TraceEvents[i]
		if e.Ph == "M" {
			e.TS = 0
			continue
		}
		e.TS = float64(ordinal[e.TID])
		ordinal[e.TID]++
	}
	got, err := json.MarshalIndent(&ct, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	golden := filepath.Join("testdata", "trace_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("normalized trace differs from golden file\n got: %s\nwant: %s", got, want)
	}
}

// validateTrace checks the structural contract of an exported trace: schema
// fields present, per-lane timestamps monotonically non-decreasing, and every
// B matched by an E of the same name in LIFO order.
func validateTrace(t *testing.T, ct chromeTrace) {
	t.Helper()
	lastTS := map[int]float64{}
	stacks := map[int][]string{}
	for i, e := range ct.TraceEvents {
		switch e.Ph {
		case "M":
			if e.Name != "thread_name" || e.Args["name"] == "" {
				t.Errorf("event %d: bad metadata event %+v", i, e)
			}
			continue
		case "B", "E":
		default:
			t.Errorf("event %d: unexpected phase %q", i, e.Ph)
			continue
		}
		if e.Name == "" || e.Cat == "" || e.PID != 1 {
			t.Errorf("event %d: missing schema fields: %+v", i, e)
		}
		if prev, ok := lastTS[e.TID]; ok && e.TS < prev {
			t.Errorf("event %d: ts %v < previous %v on tid %d (not monotonic)", i, e.TS, prev, e.TID)
		}
		lastTS[e.TID] = e.TS
		if e.Ph == "B" {
			stacks[e.TID] = append(stacks[e.TID], e.Name)
		} else {
			st := stacks[e.TID]
			if len(st) == 0 {
				t.Errorf("event %d: E %q on tid %d without open B", i, e.Name, e.TID)
				continue
			}
			if st[len(st)-1] != e.Name {
				t.Errorf("event %d: E %q closes B %q on tid %d", i, e.Name, st[len(st)-1], e.TID)
			}
			stacks[e.TID] = st[:len(st)-1]
		}
	}
	for tid, st := range stacks {
		if len(st) != 0 {
			t.Errorf("tid %d: %d unmatched B events: %v", tid, len(st), st)
		}
	}
}

func TestImbalance(t *testing.T) {
	tr := NewTracer()
	t0 := tr.start
	// Worker 0 busy 4ms in two spans, worker 1 busy 2ms; a nested span on
	// worker 0 must not be double-counted.
	tr.Span(1, "numeric", t0, t0.Add(3*time.Millisecond))
	tr.Begin(1, "numeric")
	tr.Begin(1, "inner")
	tr.End(1, "inner")
	tr.End(1, "numeric")
	// Overwrite the Begin/End timestamps deterministically via Span for the
	// second worker only; worker 0's Begin/End pair above has a real (tiny)
	// duration that we bound below rather than pin.
	tr.Span(2, "numeric", t0, t0.Add(2*time.Millisecond))

	im := tr.Imbalance()
	if len(im.Workers) != 2 {
		t.Fatalf("got %d workers, want 2", len(im.Workers))
	}
	w0, w1 := im.Workers[0], im.Workers[1]
	if w0.Worker != 0 || w1.Worker != 1 {
		t.Fatalf("worker ids = %d,%d", w0.Worker, w1.Worker)
	}
	if w0.Spans != 2 {
		t.Errorf("worker 0 top-level spans = %d, want 2 (nested span double-counted?)", w0.Spans)
	}
	if w0.Busy < 3*time.Millisecond {
		t.Errorf("worker 0 busy = %v, want >= 3ms", w0.Busy)
	}
	if w1.Busy != 2*time.Millisecond || w1.Spans != 1 {
		t.Errorf("worker 1 = %+v, want busy 2ms / 1 span", w1)
	}
	if r := im.Ratio(); r < 1 {
		t.Errorf("ratio = %v, want >= 1", r)
	}
	if im.Report() == "" {
		t.Error("empty report")
	}

	// Sub against itself zeroes the busy time.
	if d := im.Sub(im); d.Ratio() != 1 {
		t.Errorf("self-delta ratio = %v, want 1", d.Ratio())
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				lane := g%4 + 1 // overlap lanes across goroutines on purpose
				tr.Begin(lane, "work")
				tr.End(lane, "work")
			}
		}(g)
	}
	// Concurrent export must not race with appends.
	for i := 0; i < 4; i++ {
		var buf bytes.Buffer
		if err := tr.WriteChromeTrace(&buf); err != nil {
			t.Error(err)
		}
		_ = tr.Imbalance()
	}
	wg.Wait()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	ct := decodeTrace(t, buf.Bytes())
	n := 0
	for _, e := range ct.TraceEvents {
		if e.Ph != "M" {
			n++
		}
	}
	if want := 8 * 200 * 2; n != want {
		t.Errorf("got %d events, want %d", n, want)
	}
}

func TestActiveTracer(t *testing.T) {
	if Active() != nil {
		t.Fatal("tracer active at test start")
	}
	tr := NewTracer()
	SetActive(tr)
	if Active() != tr {
		t.Error("SetActive did not install the tracer")
	}
	SetActive(nil)
	if Active() != nil {
		t.Error("SetActive(nil) did not disable tracing")
	}
}
