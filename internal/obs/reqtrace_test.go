package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestRequestTraceSpansAndChromeExport(t *testing.T) {
	rt := NewRequestTrace("r-1")
	base := rt.Start
	rt.Span("queue.wait", base, base.Add(2*time.Millisecond))
	rt.Span("ctx.checkout", base.Add(2*time.Millisecond), base.Add(3*time.Millisecond))
	rt.SpanAt("kernel.numeric", 3*time.Millisecond, 5*time.Millisecond)
	rt.SetAttr("alg", "hash")
	rt.SetAttr("flop", int64(1234))
	rt.Finish(200)

	if rt.Status != 200 || rt.TotalMs <= 0 {
		t.Fatalf("finish did not stamp status/total: %+v", rt)
	}
	if got := rt.SpanSum("queue.wait"); got != 2*time.Millisecond {
		t.Fatalf("queue.wait sum = %v", got)
	}
	if got := rt.SpanSum(); got != 8*time.Millisecond {
		t.Fatalf("total span sum = %v", got)
	}
	// The spans above are synthetic, longer than the real elapsed time;
	// stamp a matching total so the nesting check below is meaningful.
	rt.TotalMs = 10

	var buf bytes.Buffer
	if err := rt.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace not JSON: %v", err)
	}
	// thread_name meta + root request span + 3 recorded spans.
	if len(doc.TraceEvents) != 5 {
		t.Fatalf("trace has %d events, want 5", len(doc.TraceEvents))
	}
	byName := map[string]int{}
	for i, e := range doc.TraceEvents {
		byName[e.Name] = i
	}
	root := doc.TraceEvents[byName["request"]]
	if root.Ph != "X" || root.Args["id"] != "r-1" || root.Args["alg"] != "hash" {
		t.Fatalf("bad root span: %+v", root)
	}
	kn := doc.TraceEvents[byName["kernel.numeric"]]
	if kn.TS != 3000 || kn.Dur != 5000 { // microseconds
		t.Fatalf("kernel.numeric ts/dur = %v/%v, want 3000/5000", kn.TS, kn.Dur)
	}
	// Every span nests inside the root window — what makes the export read
	// as one request in Perfetto.
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" || e.Name == "request" {
			continue
		}
		if e.TS < 0 || e.TS+e.Dur > root.Dur+1 {
			t.Errorf("span %s [%v,%v] escapes root window %v", e.Name, e.TS, e.TS+e.Dur, root.Dur)
		}
	}
}

func TestRequestRingBoundedNewestFirst(t *testing.T) {
	r := NewRequestRing(3)
	for i := 0; i < 5; i++ {
		rt := NewRequestTrace(fmt.Sprintf("r-%d", i))
		rt.Finish(200)
		r.Add(rt)
	}
	if r.Len() != 3 {
		t.Fatalf("ring len %d, want 3", r.Len())
	}
	if r.Dropped() != 2 {
		t.Fatalf("dropped %d, want 2", r.Dropped())
	}
	snap := r.Snapshot()
	want := []string{"r-4", "r-3", "r-2"}
	for i, id := range want {
		if snap[i].ID != id {
			t.Fatalf("snapshot[%d] = %s, want %s", i, snap[i].ID, id)
		}
	}
	if _, ok := r.Get("r-3"); !ok {
		t.Fatal("r-3 missing")
	}
	if _, ok := r.Get("r-0"); ok {
		t.Fatal("r-0 should have been displaced")
	}
}

// TestRequestRingConcurrent is the -race proof of the publication contract:
// many writers Add completed traces while readers Snapshot and Get.
func TestRequestRingConcurrent(t *testing.T) {
	r := NewRequestRing(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				rt := NewRequestTrace(fmt.Sprintf("g%d-%d", g, i))
				rt.SpanAt("work", 0, time.Microsecond)
				rt.Finish(200)
				r.Add(rt)
			}
		}(g)
	}
	for i := 0; i < 50; i++ {
		for _, rt := range r.Snapshot() {
			_ = rt.SpanSum()
		}
		r.Get("g0-0")
	}
	wg.Wait()
	if r.Len() != 16 {
		t.Fatalf("ring len %d, want 16", r.Len())
	}
}
