package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "operations")
	c.Add(41)
	c.Inc()
	g := r.Gauge("test_bytes", "bytes live")
	g.Set(100)
	g.Add(-25)
	v := r.CounterVec("test_calls_total", "calls by alg", "alg")
	v.With("hash").Add(3)
	v.With("heap").Inc()
	h := r.Histogram("test_cf", "collision factor", []float64{1, 2, 5})
	h.Observe(1.5)
	h.Observe(0.5)
	h.Observe(10)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE test_ops_total counter",
		"test_ops_total 42",
		"# TYPE test_bytes gauge",
		"test_bytes 75",
		`test_calls_total{alg="hash"} 3`,
		`test_calls_total{alg="heap"} 1`,
		"# TYPE test_cf histogram",
		`test_cf_bucket{le="1"} 1`,
		`test_cf_bucket{le="2"} 2`,
		`test_cf_bucket{le="5"} 2`,
		`test_cf_bucket{le="+Inf"} 3`,
		"test_cf_sum 12",
		"test_cf_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
}

func TestHistogramVecExposition(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("test_req_seconds", "latency by alg", "alg", []float64{0.1, 1})
	v.With("hash").Observe(0.05)
	v.With("hash").Observe(0.5)
	v.With("heap").Observe(2)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE test_req_seconds histogram",
		`test_req_seconds_bucket{alg="hash",le="0.1"} 1`,
		`test_req_seconds_bucket{alg="hash",le="1"} 2`,
		`test_req_seconds_bucket{alg="hash",le="+Inf"} 2`,
		`test_req_seconds_sum{alg="hash"} 0.55`,
		`test_req_seconds_count{alg="hash"} 2`,
		`test_req_seconds_bucket{alg="heap",le="+Inf"} 1`,
		`test_req_seconds_count{alg="heap"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// Children share identity: the same label value returns the same child.
	if v.With("hash") != v.With("hash") {
		t.Error("HistogramVec.With returned distinct children for one label")
	}
}

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "a").Add(7)
	r.CounterVec("b_total", "b", "k").With("x").Add(2)
	snap := r.snapshot()
	if snap["a_total"] != int64(7) {
		t.Errorf("a_total = %v", snap["a_total"])
	}
	if snap["b_total{k=x}"] != int64(2) {
		t.Errorf("b_total{k=x} = %v", snap["b_total{k=x}"])
	}
}

func TestRegisterIdempotentAndKindConflict(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("same_total", "h")
	c2 := r.Counter("same_total", "h")
	if c1 != c2 {
		t.Error("re-registering the same counter returned a new instance")
	}
	defer func() {
		if recover() == nil {
			t.Error("re-registering as a different kind did not panic")
		}
	}()
	r.Gauge("same_total", "h")
}

// TestMetricsConcurrent exercises concurrent updates from pool-worker-like
// goroutines together with concurrent scrapes; run under -race in CI.
func TestMetricsConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("race_ops_total", "ops")
	g := r.Gauge("race_bytes", "bytes")
	h := r.Histogram("race_cf", "cf", []float64{1, 2})
	v := r.CounterVec("race_calls_total", "calls", "alg")

	const workers, iters = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			alg := v.With([]string{"hash", "heap"}[w%2])
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 3))
				alg.Inc()
			}
		}(w)
	}
	for i := 0; i < 8; i++ {
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			t.Error(err)
		}
		_ = r.snapshot()
	}
	wg.Wait()
	if got := c.Value(); got != workers*iters {
		t.Errorf("counter = %d, want %d", got, workers*iters)
	}
	if got := h.Count(); got != workers*iters {
		t.Errorf("histogram count = %d, want %d", got, workers*iters)
	}
	sum := v.With("hash").Value() + v.With("heap").Value()
	if sum != workers*iters {
		t.Errorf("vec sum = %d, want %d", sum, workers*iters)
	}
}
