package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestLoggerDisabledByDefaultAndZeroAlloc(t *testing.T) {
	SetLogger(nil) // the process default: disabled
	l := Logger()
	if l.Enabled(context.Background(), slog.LevelError) {
		t.Fatal("default logger claims to be enabled")
	}
	// The disabled guard is the zero-cost contract: no allocations on the
	// would-be log path when logging is off.
	allocs := testing.AllocsPerRun(100, func() {
		if l.Enabled(context.Background(), slog.LevelInfo) {
			l.Info("never", "k", 1)
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled log guard allocates %.0f/op, want 0", allocs)
	}
}

func TestConfigureLoggerJSONAndRuntimeLevel(t *testing.T) {
	var buf bytes.Buffer
	l := ConfigureLogger(&buf, slog.LevelInfo)
	defer SetLogger(nil)

	l.Debug("hidden")
	l.Info("visible", "alg", "hash", "reqID", "r-1")
	if strings.Contains(buf.String(), "hidden") {
		t.Fatal("debug line emitted at info level")
	}
	var line map[string]any
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatalf("log line not JSON: %v: %s", err, buf.String())
	}
	if line["msg"] != "visible" || line["alg"] != "hash" || line["reqID"] != "r-1" {
		t.Fatalf("bad log line: %v", line)
	}

	// Runtime level switch: debug becomes visible without reinstalling.
	SetLogLevel(slog.LevelDebug)
	buf.Reset()
	l.Debug("now visible")
	if !strings.Contains(buf.String(), "now visible") {
		t.Fatal("debug line suppressed after SetLogLevel(debug)")
	}
}

func TestLogLevelEndpoint(t *testing.T) {
	var buf bytes.Buffer
	ConfigureLogger(&buf, slog.LevelInfo)
	defer SetLogger(nil)

	// GET reports the current level.
	rr := httptest.NewRecorder()
	handleLogLevel(rr, httptest.NewRequest("GET", "/debug/loglevel", nil))
	if got := strings.TrimSpace(rr.Body.String()); got != "info" {
		t.Fatalf("GET loglevel = %q, want info", got)
	}

	// PUT switches the live level.
	rr = httptest.NewRecorder()
	handleLogLevel(rr, httptest.NewRequest("PUT", "/debug/loglevel", strings.NewReader("debug")))
	if rr.Code != 200 || LogLevel() != slog.LevelDebug {
		t.Fatalf("PUT debug: code %d level %v", rr.Code, LogLevel())
	}

	// Query form works too; bad levels are 400 and leave the level alone.
	rr = httptest.NewRecorder()
	handleLogLevel(rr, httptest.NewRequest("POST", "/debug/loglevel?level=warn", nil))
	if rr.Code != 200 || LogLevel() != slog.LevelWarn {
		t.Fatalf("POST warn: code %d level %v", rr.Code, LogLevel())
	}
	rr = httptest.NewRecorder()
	handleLogLevel(rr, httptest.NewRequest("PUT", "/debug/loglevel", strings.NewReader("loud")))
	if rr.Code != 400 || LogLevel() != slog.LevelWarn {
		t.Fatalf("PUT bad level: code %d level %v", rr.Code, LogLevel())
	}
}

func TestParseLogLevel(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "INFO": slog.LevelInfo,
		"warn": slog.LevelWarn, "warning": slog.LevelWarn, " error ": slog.LevelError,
	} {
		got, err := ParseLogLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLogLevel(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseLogLevel("loud"); err == nil {
		t.Error("ParseLogLevel accepted garbage")
	}
}
