package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for the Prometheus counter contract).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic value that can move both ways (bytes live, queue depth).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n, which may be negative.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket cumulative histogram in the Prometheus style:
// buckets count observations less than or equal to each upper bound, plus an
// implicit +Inf bucket, a running sum and a count. All updates are atomic.
type Histogram struct {
	upper   []float64
	buckets []atomic.Int64 // len(upper)+1; last is +Inf
	count   atomic.Int64
	sum     atomic.Uint64 // float64 bits, CAS-updated
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.upper, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// metricKind discriminates the exposition format of a family.
type metricKind int

const (
	counterKind metricKind = iota
	gaugeKind
	histogramKind
)

func (k metricKind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	case histogramKind:
		return "histogram"
	}
	return "untyped"
}

// family is one named metric with zero or one label dimension and its
// children (one child per label value; the empty label value for unlabeled
// metrics).
type family struct {
	name    string
	help    string
	label   string
	kind    metricKind
	buckets []float64

	mu       sync.Mutex
	children map[string]any
	order    []string
}

// child returns (creating if needed) the metric for the given label value.
func (f *family) child(value string) any {
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.children[value]; ok {
		return m
	}
	var m any
	switch f.kind {
	case counterKind:
		m = &Counter{}
	case gaugeKind:
		m = &Gauge{}
	case histogramKind:
		h := &Histogram{upper: f.buckets}
		h.buckets = make([]atomic.Int64, len(f.buckets)+1)
		m = h
	}
	f.children[value] = m
	f.order = append(f.order, value)
	return m
}

// CounterVec is a counter family with one label dimension. With returns the
// child counter for a label value; callers on hot paths cache the child.
type CounterVec struct {
	fam *family
}

// With returns the counter for the given label value, creating it on first
// use.
func (v *CounterVec) With(value string) *Counter {
	return v.fam.child(value).(*Counter)
}

// HistogramVec is a histogram family with one label dimension — the shape of
// server_request_seconds{alg="hash"}: one latency distribution per algorithm
// instead of one process-wide blur. All children share the family's bucket
// bounds. As with CounterVec, With does a locked map lookup; callers on hot
// paths cache the child (see the server's per-algorithm child array).
type HistogramVec struct {
	fam *family
}

// With returns the histogram for the given label value, creating it on first
// use.
func (v *HistogramVec) With(value string) *Histogram {
	return v.fam.child(value).(*Histogram)
}

// Registry is an ordered set of metric families. The zero value is not
// usable; use NewRegistry. Registration is typically done in package var
// blocks via the Default registry; lookups at record time are pointer
// dereferences, never by name.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

// defaultRegistry backs the package-level constructors and the debug HTTP
// surface.
var defaultRegistry = NewRegistry()

// DefaultRegistry returns the process-wide registry that the package-level
// NewCounter/NewGauge/NewHistogram constructors register into and that the
// debug HTTP server exposes.
func DefaultRegistry() *Registry { return defaultRegistry }

// register adds (or returns the existing) family with the given shape. It
// panics if the name is already registered with a different kind — metric
// names are a single flat namespace.
func (r *Registry) register(name, help, label string, kind metricKind, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %v (was %v)", name, kind, f.kind))
		}
		return f
	}
	f := &family{
		name: name, help: help, label: label, kind: kind, buckets: buckets,
		children: map[string]any{},
	}
	r.families = append(r.families, f)
	r.byName[name] = f
	return f
}

// Counter registers (or fetches) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, "", counterKind, nil).child("").(*Counter)
}

// CounterVec registers (or fetches) a counter family with one label.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	return &CounterVec{fam: r.register(name, help, label, counterKind, nil)}
}

// Gauge registers (or fetches) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, "", gaugeKind, nil).child("").(*Gauge)
}

// Histogram registers (or fetches) an unlabeled histogram with the given
// bucket upper bounds (must be sorted ascending; +Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.register(name, help, "", histogramKind, buckets).child("").(*Histogram)
}

// HistogramVec registers (or fetches) a histogram family with one label.
// Every child shares the same bucket upper bounds.
func (r *Registry) HistogramVec(name, help, label string, buckets []float64) *HistogramVec {
	return &HistogramVec{fam: r.register(name, help, label, histogramKind, buckets)}
}

// NewCounter registers an unlabeled counter in the default registry.
func NewCounter(name, help string) *Counter { return defaultRegistry.Counter(name, help) }

// NewCounterVec registers a labeled counter family in the default registry.
func NewCounterVec(name, help, label string) *CounterVec {
	return defaultRegistry.CounterVec(name, help, label)
}

// NewGauge registers an unlabeled gauge in the default registry.
func NewGauge(name, help string) *Gauge { return defaultRegistry.Gauge(name, help) }

// NewHistogram registers an unlabeled histogram in the default registry.
func NewHistogram(name, help string, buckets []float64) *Histogram {
	return defaultRegistry.Histogram(name, help, buckets)
}

// NewHistogramVec registers a labeled histogram family in the default
// registry.
func NewHistogramVec(name, help, label string, buckets []float64) *HistogramVec {
	return defaultRegistry.HistogramVec(name, help, label, buckets)
}

// labelPair renders the {label="value"} suffix, empty for unlabeled children.
func labelPair(label, value string) string {
	if label == "" || value == "" {
		return ""
	}
	return fmt.Sprintf("{%s=%q}", label, value)
}

// WritePrometheus writes every family in the Prometheus text exposition
// format (version 0.0.4), in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	families := append([]*family(nil), r.families...)
	r.mu.Unlock()
	for _, f := range families {
		f.mu.Lock()
		order := append([]string(nil), f.order...)
		f.mu.Unlock()
		if len(order) == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind); err != nil {
			return err
		}
		for _, value := range order {
			m := f.child(value)
			switch f.kind {
			case counterKind:
				fmt.Fprintf(w, "%s%s %d\n", f.name, labelPair(f.label, value), m.(*Counter).Value())
			case gaugeKind:
				fmt.Fprintf(w, "%s%s %d\n", f.name, labelPair(f.label, value), m.(*Gauge).Value())
			case histogramKind:
				h := m.(*Histogram)
				// Labelled histogram children carry the family label inside
				// the bucket braces alongside le, per the Prometheus format:
				// name_bucket{alg="hash",le="1"}.
				pre := ""
				if f.label != "" && value != "" {
					pre = fmt.Sprintf("%s=%q,", f.label, value)
				}
				var cum int64
				for i, ub := range h.upper {
					cum += h.buckets[i].Load()
					fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", f.name, pre, formatFloat(ub), cum)
				}
				cum += h.buckets[len(h.upper)].Load()
				fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", f.name, pre, cum)
				fmt.Fprintf(w, "%s_sum%s %v\n", f.name, labelPair(f.label, value), h.Sum())
				fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelPair(f.label, value), h.Count())
			}
		}
	}
	return nil
}

// snapshot flattens the registry into a plain map for the expvar bridge:
// "name" or "name{label=value}" → number.
func (r *Registry) snapshot() map[string]any {
	r.mu.Lock()
	families := append([]*family(nil), r.families...)
	r.mu.Unlock()
	out := map[string]any{}
	for _, f := range families {
		f.mu.Lock()
		order := append([]string(nil), f.order...)
		f.mu.Unlock()
		for _, value := range order {
			key := f.name
			if f.label != "" && value != "" {
				key = fmt.Sprintf("%s{%s=%s}", f.name, f.label, value)
			}
			switch m := f.child(value).(type) {
			case *Counter:
				out[key] = m.Value()
			case *Gauge:
				out[key] = m.Value()
			case *Histogram:
				out[key+"_count"] = m.Count()
				out[key+"_sum"] = m.Sum()
			}
		}
	}
	return out
}

// formatFloat renders bucket bounds the way Prometheus clients expect
// (no trailing zeros, no exponent for small values).
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
