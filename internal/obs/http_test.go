package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestDebugServer(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("http_test_total", "test counter").Add(5)
	srv, err := StartDebugServer("localhost:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, body := get(t, base+"/metrics")
	if code != http.StatusOK || !strings.Contains(body, "http_test_total 5") {
		t.Errorf("/metrics: code %d body %q", code, body)
	}

	code, body = get(t, base+"/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars: code %d", code)
	}
	var vars map[string]any
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if _, ok := vars["memstats"]; !ok {
		t.Error("/debug/vars missing memstats")
	}
	if _, ok := vars["metrics"]; !ok {
		t.Error("/debug/vars missing the registry bridge")
	}

	code, body = get(t, base+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/: code %d", code)
	}

	// No active tracer: 404. With one: a valid Chrome trace.
	code, _ = get(t, base+"/trace.json")
	if code != http.StatusNotFound {
		t.Errorf("/trace.json without tracer: code %d, want 404", code)
	}
	tr := NewTracer()
	tr.Span(DriverLane, "phase", tr.start, tr.start.Add(time.Millisecond))
	SetActive(tr)
	defer SetActive(nil)
	code, body = get(t, base+"/trace.json")
	if code != http.StatusOK {
		t.Fatalf("/trace.json: code %d", code)
	}
	var ct chromeTrace
	if err := json.Unmarshal([]byte(body), &ct); err != nil {
		t.Fatalf("/trace.json not valid trace JSON: %v", err)
	}
	if len(ct.TraceEvents) == 0 {
		t.Error("/trace.json: empty trace")
	}
}

// TestDebugServerGracefulShutdown pins the Shutdown contract the CLIs and
// the multiply server rely on at exit: a scrape in flight when Shutdown is
// called completes with its full body instead of being truncated, and new
// connections are refused.
func TestDebugServerGracefulShutdown(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("shutdown_test_total", "test counter").Add(1)
	srv, err := StartDebugServer("localhost:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + srv.Addr()

	// Start a scrape, then shut down while it is (plausibly) in flight.
	type result struct {
		body string
		err  error
	}
	ch := make(chan result, 1)
	go func() {
		resp, err := http.Get(base + "/metrics")
		if err != nil {
			ch <- result{err: err}
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		ch <- result{body: string(body), err: err}
	}()
	if err := srv.ShutdownTimeout(2 * time.Second); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	r := <-ch
	// The scrape either completed fully (body intact) or never connected
	// (listener already closed) — partial bodies are the bug.
	if r.err == nil && !strings.Contains(r.body, "shutdown_test_total 1") {
		t.Errorf("scrape racing shutdown returned truncated body %q", r.body)
	}

	// After shutdown the listener is gone.
	if _, err := http.Get(base + "/metrics"); err == nil {
		t.Error("server still accepting connections after Shutdown")
	}
}
