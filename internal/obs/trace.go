package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// DriverLane is the lane kernel drivers stamp their sequential phase spans
// onto. Worker w of a parallel region records on lane w+1, so the driver
// timeline never interleaves with worker timelines even though worker 0 runs
// on the driver goroutine.
const DriverLane = 0

// event is one begin or end mark on a lane.
type event struct {
	name string
	ts   int64 // nanoseconds since the tracer started
	ph   byte  // 'B' or 'E'
}

// lane is one append-only per-worker event buffer. Each lane has its own
// mutex: within one kernel a lane is only touched by its own worker, but the
// pool is shared, so concurrent kernels may land on the same lane index.
type lane struct {
	mu sync.Mutex
	ev []event
}

// Tracer records span begin/end events on per-worker lanes and exports them
// as Chrome trace-event JSON (loadable in Perfetto / chrome://tracing).
//
// A Tracer is safe for concurrent use. It is enabled by installing it
// process-wide with SetActive; disabled code paths never reach a Tracer
// method (see the package contract).
type Tracer struct {
	start time.Time
	mu    sync.RWMutex
	lanes []*lane
}

// NewTracer returns an empty tracer whose clock starts now.
func NewTracer() *Tracer {
	return &Tracer{start: time.Now()}
}

// lane returns lane i, growing the lane table on first touch.
func (t *Tracer) lane(i int) *lane {
	if i < 0 {
		i = 0
	}
	t.mu.RLock()
	if i < len(t.lanes) {
		l := t.lanes[i]
		t.mu.RUnlock()
		return l
	}
	t.mu.RUnlock()
	t.mu.Lock()
	for len(t.lanes) <= i {
		t.lanes = append(t.lanes, &lane{})
	}
	l := t.lanes[i]
	t.mu.Unlock()
	return l
}

// Begin records the start of a span named name on the given lane. The
// timestamp is taken under the lane lock, so per-lane timestamps are
// monotonically non-decreasing.
func (t *Tracer) Begin(laneID int, name string) {
	l := t.lane(laneID)
	l.mu.Lock()
	l.ev = append(l.ev, event{name: name, ts: int64(time.Since(t.start)), ph: 'B'})
	l.mu.Unlock()
}

// End records the end of the innermost open span named name on the lane.
func (t *Tracer) End(laneID int, name string) {
	l := t.lane(laneID)
	l.mu.Lock()
	l.ev = append(l.ev, event{name: name, ts: int64(time.Since(t.start)), ph: 'E'})
	l.mu.Unlock()
}

// Span records an already-measured [start, end] interval on the lane as a
// matched begin/end pair in one lock round-trip. Sequential drivers that
// already read the clock at phase boundaries (spgemm's phaseTimer) use this
// so tracing adds no further clock reads.
func (t *Tracer) Span(laneID int, name string, start, end time.Time) {
	l := t.lane(laneID)
	bts := start.Sub(t.start).Nanoseconds()
	ets := end.Sub(t.start).Nanoseconds()
	l.mu.Lock()
	l.ev = append(l.ev, event{name: name, ts: bts, ph: 'B'}, event{name: name, ts: ets, ph: 'E'})
	l.mu.Unlock()
}

// snapshot copies every lane's events under their locks.
func (t *Tracer) snapshot() [][]event {
	t.mu.RLock()
	lanes := make([]*lane, len(t.lanes))
	copy(lanes, t.lanes)
	t.mu.RUnlock()
	out := make([][]event, len(lanes))
	for i, l := range lanes {
		l.mu.Lock()
		out[i] = append([]event(nil), l.ev...)
		l.mu.Unlock()
	}
	return out
}

// chromeEvent is one entry of the Chrome trace-event JSON array. ts is in
// microseconds, per the trace-event format specification.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"` // complete ("X") events only
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object form of the trace-event format.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// laneName returns the human-readable thread name of a lane.
func laneName(laneID int) string {
	if laneID == DriverLane {
		return "driver"
	}
	return fmt.Sprintf("worker %d", laneID-1)
}

// WriteChromeTrace writes the recorded timeline as Chrome trace-event JSON.
// Lane i is emitted as thread id i of process 1, with a thread_name metadata
// event ("driver" for lane 0, "worker N" otherwise), so Perfetto shows one
// named track per worker.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	lanes := t.snapshot()
	var out chromeTrace
	out.DisplayTimeUnit = "ms"
	for id := range lanes {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: id,
			Args: map[string]any{"name": laneName(id)},
		})
	}
	for id, evs := range lanes {
		for _, e := range evs {
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: e.name,
				Cat:  "spgemm",
				Ph:   string(e.ph),
				TS:   float64(e.ts) / 1e3,
				PID:  1,
				TID:  id,
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&out)
}

// WorkerBusy is one worker's total busy time on its lane.
type WorkerBusy struct {
	Worker int
	Busy   time.Duration
	Spans  int // top-level spans summed into Busy
}

// Imbalance is a per-worker busy-time reduction of a trace — the plain-text
// counterpart of eyeballing lane lengths in Perfetto, and the quantitative
// check of the paper's Figure 6 flop-balanced scheduling claim.
type Imbalance struct {
	Workers []WorkerBusy
}

// Imbalance sums, for every worker lane, the durations of its top-level
// spans (nested spans are covered by their parents and not double-counted).
// The driver lane is excluded: phase spans there cover all workers' time.
func (t *Tracer) Imbalance() Imbalance {
	lanes := t.snapshot()
	var im Imbalance
	for id := 1; id < len(lanes); id++ {
		wb := WorkerBusy{Worker: id - 1}
		depth := 0
		var open int64
		for _, e := range lanes[id] {
			switch e.ph {
			case 'B':
				if depth == 0 {
					open = e.ts
				}
				depth++
			case 'E':
				if depth > 0 {
					depth--
					if depth == 0 {
						wb.Busy += time.Duration(e.ts - open)
						wb.Spans++
					}
				}
			}
		}
		im.Workers = append(im.Workers, wb)
	}
	return im
}

// Sub returns the per-worker busy time accrued since prev was captured from
// the same tracer. Workers present only in the receiver keep their values.
func (im Imbalance) Sub(prev Imbalance) Imbalance {
	busyBefore := make(map[int]WorkerBusy, len(prev.Workers))
	for _, wb := range prev.Workers {
		busyBefore[wb.Worker] = wb
	}
	out := Imbalance{Workers: make([]WorkerBusy, 0, len(im.Workers))}
	for _, wb := range im.Workers {
		b := busyBefore[wb.Worker]
		out.Workers = append(out.Workers, WorkerBusy{
			Worker: wb.Worker,
			Busy:   wb.Busy - b.Busy,
			Spans:  wb.Spans - b.Spans,
		})
	}
	return out
}

// active returns the workers that recorded at least one span.
func (im Imbalance) active() []WorkerBusy {
	var out []WorkerBusy
	for _, wb := range im.Workers {
		if wb.Spans > 0 {
			out = append(out, wb)
		}
	}
	return out
}

// MaxMean returns the maximum and mean busy time over workers that recorded
// at least one span. Both are zero when no worker did.
func (im Imbalance) MaxMean() (max, mean time.Duration) {
	act := im.active()
	if len(act) == 0 {
		return 0, 0
	}
	var sum time.Duration
	for _, wb := range act {
		sum += wb.Busy
		if wb.Busy > max {
			max = wb.Busy
		}
	}
	return max, sum / time.Duration(len(act))
}

// Ratio returns max busy time over mean busy time — 1.0 is perfect balance,
// and the value the flop-balanced partition is supposed to keep near 1.0
// where naive static scheduling does not. Returns 1 when no spans were
// recorded.
func (im Imbalance) Ratio() float64 {
	max, mean := im.MaxMean()
	if mean == 0 {
		return 1
	}
	return float64(max) / float64(mean)
}

// Report renders the per-worker busy table with the max/mean summary line.
func (im Imbalance) Report() string {
	var b strings.Builder
	act := im.active()
	sort.Slice(act, func(i, j int) bool { return act[i].Worker < act[j].Worker })
	max, mean := im.MaxMean()
	for _, wb := range act {
		bar := ""
		if max > 0 {
			bar = strings.Repeat("#", int(40*wb.Busy/max))
		}
		fmt.Fprintf(&b, "worker %2d busy %12v spans %4d %s\n", wb.Worker, wb.Busy, wb.Spans, bar)
	}
	fmt.Fprintf(&b, "workers %d  max %v  mean %v  max/mean %.2f\n", len(act), max, mean, im.Ratio())
	return b.String()
}
