package obs

import (
	"context"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// expvarOnce guards the one-time expvar publication of the default registry.
// expvar.Publish panics on duplicate names, and the default registry is
// process-wide, so publishing once is both necessary and sufficient.
var expvarOnce sync.Once

// publishExpvar bridges the default registry into the expvar namespace under
// the key "metrics", making every counter visible at /debug/vars alongside
// the runtime's memstats.
func publishExpvar() {
	expvarOnce.Do(func() {
		expvar.Publish("metrics", expvar.Func(func() any {
			return defaultRegistry.snapshot()
		}))
	})
}

// DebugServer is the opt-in debug HTTP surface. It serves:
//
//	/metrics      Prometheus text exposition of the registry
//	/debug/vars   expvar (runtime memstats + the registry bridge)
//	/debug/pprof  the standard pprof index (profile, heap, trace, ...)
//	/trace.json   the active Tracer's Chrome trace snapshot, if tracing is on
//
// Close shuts the listener down; a DebugServer holds no other state.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// RegisterDebugHandlers mounts the debug surface (/metrics, /debug/vars,
// /debug/pprof, /trace.json) on mux for reg (nil = the default registry).
// The multiply server reuses this to expose the same endpoints on its API
// listener; StartDebugServer wraps it in a standalone server for the CLIs.
func RegisterDebugHandlers(mux *http.ServeMux, reg *Registry) {
	if reg == nil {
		reg = defaultRegistry
	}
	publishExpvar()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/loglevel", handleLogLevel)
	mux.HandleFunc("/trace.json", func(w http.ResponseWriter, r *http.Request) {
		tr := Active()
		if tr == nil {
			http.Error(w, "no active tracer (run with -trace)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = tr.WriteChromeTrace(w)
	})
}

// StartDebugServer listens on addr (e.g. "localhost:6060", or "localhost:0"
// to pick a free port) and serves the debug surface for reg in a background
// goroutine. A nil reg serves the default registry.
func StartDebugServer(addr string, reg *Registry) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "spgemm debug surface\n\n/metrics\n/debug/vars\n/debug/pprof/\n/trace.json\n")
	})
	RegisterDebugHandlers(mux, reg)
	s := &DebugServer{ln: ln, srv: &http.Server{Handler: mux}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the address the server is listening on (useful with ":0").
func (s *DebugServer) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down immediately, dropping in-flight requests.
// Prefer Shutdown at process exit so a scrape racing the exit is not
// truncated mid-body.
func (s *DebugServer) Close() error { return s.srv.Close() }

// Shutdown gracefully shuts the server down: the listener closes
// immediately, in-flight requests (a /metrics scrape, a pprof profile)
// drain until ctx expires, then remaining connections are closed.
func (s *DebugServer) Shutdown(ctx context.Context) error { return s.srv.Shutdown(ctx) }

// ShutdownTimeout is Shutdown with a deadline, shaped for the CLIs'
// defer-at-exit call sites.
func (s *DebugServer) ShutdownTimeout(d time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	return s.Shutdown(ctx)
}
