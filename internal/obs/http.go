package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// expvarOnce guards the one-time expvar publication of the default registry.
// expvar.Publish panics on duplicate names, and the default registry is
// process-wide, so publishing once is both necessary and sufficient.
var expvarOnce sync.Once

// publishExpvar bridges the default registry into the expvar namespace under
// the key "metrics", making every counter visible at /debug/vars alongside
// the runtime's memstats.
func publishExpvar() {
	expvarOnce.Do(func() {
		expvar.Publish("metrics", expvar.Func(func() any {
			return defaultRegistry.snapshot()
		}))
	})
}

// DebugServer is the opt-in debug HTTP surface. It serves:
//
//	/metrics      Prometheus text exposition of the registry
//	/debug/vars   expvar (runtime memstats + the registry bridge)
//	/debug/pprof  the standard pprof index (profile, heap, trace, ...)
//	/trace.json   the active Tracer's Chrome trace snapshot, if tracing is on
//
// Close shuts the listener down; a DebugServer holds no other state.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// StartDebugServer listens on addr (e.g. "localhost:6060", or "localhost:0"
// to pick a free port) and serves the debug surface for reg in a background
// goroutine. A nil reg serves the default registry.
func StartDebugServer(addr string, reg *Registry) (*DebugServer, error) {
	if reg == nil {
		reg = defaultRegistry
	}
	publishExpvar()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "spgemm debug surface\n\n/metrics\n/debug/vars\n/debug/pprof/\n/trace.json\n")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/trace.json", func(w http.ResponseWriter, r *http.Request) {
		tr := Active()
		if tr == nil {
			http.Error(w, "no active tracer (run with -trace)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = tr.WriteChromeTrace(w)
	})
	s := &DebugServer{ln: ln, srv: &http.Server{Handler: mux}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the address the server is listening on (useful with ":0").
func (s *DebugServer) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down immediately.
func (s *DebugServer) Close() error { return s.srv.Close() }
