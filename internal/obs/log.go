package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync/atomic"
)

// Structured logging for the long-running binaries (the multiply server
// first of all). The same zero-cost-when-disabled discipline as tracing:
//
//   - The process logger defaults to a disabled handler whose Enabled always
//     reports false, so an un-configured binary pays one atomic load plus a
//     nil-free Enabled call per would-be log site and never materializes
//     attributes.
//   - Instrumented code guards every log call with Logger().Enabled (or uses
//     LogAttrs with pre-built attrs), so building the attribute set is also
//     skipped when the level is off.
//   - The level is a slog.LevelVar switchable at runtime — /debug/loglevel
//     flips a live server to debug without a restart.

// logLevel is the runtime-adjustable level shared by every handler
// ConfigureLogger installs.
var logLevel slog.LevelVar

// disabledHandler rejects every record; it backs the default logger so that
// log sites in library code are inert until a binary opts in.
type disabledHandler struct{}

func (disabledHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (disabledHandler) Handle(context.Context, slog.Record) error { return nil }
func (d disabledHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d disabledHandler) WithGroup(string) slog.Handler           { return d }

// logger is the process-wide structured logger.
var logger atomic.Pointer[slog.Logger]

func init() {
	logger.Store(slog.New(disabledHandler{}))
}

// Logger returns the process-wide structured logger. The default (before
// ConfigureLogger) discards everything and reports Enabled false for every
// level, so callers can guard attribute construction with
// Logger().Enabled(ctx, level).
func Logger() *slog.Logger { return logger.Load() }

// SetLogger installs l as the process-wide logger; nil restores the
// disabled default.
func SetLogger(l *slog.Logger) {
	if l == nil {
		l = slog.New(disabledHandler{})
	}
	logger.Store(l)
}

// ConfigureLogger installs a JSON-lines handler writing to w at the given
// initial level and returns the logger. The level stays runtime-adjustable
// via SetLogLevel and /debug/loglevel.
func ConfigureLogger(w io.Writer, level slog.Level) *slog.Logger {
	logLevel.Set(level)
	l := slog.New(slog.NewJSONHandler(w, &slog.HandlerOptions{Level: &logLevel}))
	logger.Store(l)
	return l
}

// LogLevel returns the current runtime log level.
func LogLevel() slog.Level { return logLevel.Level() }

// SetLogLevel changes the runtime log level of every handler installed by
// ConfigureLogger.
func SetLogLevel(l slog.Level) { logLevel.Set(l) }

// ParseLogLevel resolves "debug", "info", "warn"/"warning" or "error"
// (case-insensitive).
func ParseLogLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q (want debug, info, warn or error)", s)
}

// handleLogLevel is the /debug/loglevel endpoint: GET returns the current
// level, PUT/POST with a body (or ?level=) of debug|info|warn|error switches
// the live process. curl -X PUT -d debug :8080/debug/loglevel
func handleLogLevel(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		fmt.Fprintf(w, "%s\n", strings.ToLower(logLevel.Level().String()))
	case http.MethodPut, http.MethodPost:
		val := r.URL.Query().Get("level")
		if val == "" {
			b, err := io.ReadAll(io.LimitReader(r.Body, 64))
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			val = string(b)
		}
		lvl, err := ParseLogLevel(val)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		SetLogLevel(lvl)
		Logger().Info("log level changed", "level", strings.ToLower(lvl.String()))
		fmt.Fprintf(w, "%s\n", strings.ToLower(lvl.String()))
	default:
		http.Error(w, "GET, PUT or POST", http.StatusMethodNotAllowed)
	}
}
