package spgemm

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/obs"
)

// TestExecStatsPhaseSumInvariant pins the accounting audit's conclusion:
// under a monotonic clock, PhaseSum() <= Total holds exactly for every
// algorithm — including the ones with post-passes (kokkos adds its sort via
// addPhase to both sides; the inspector sorts inside the finish window) —
// for sorted and unsorted output and across worker counts.
func TestExecStatsPhaseSumInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := gen.ER(9, 8, rng)
	for _, alg := range statsAlgorithms {
		for _, unsorted := range []bool{false, true} {
			if unsorted && !SupportsUnsorted(alg) {
				continue
			}
			for _, workers := range []int{1, 3} {
				var st ExecStats
				opt := &Options{Algorithm: alg, Workers: workers, Unsorted: unsorted, Stats: &st}
				if _, err := Multiply(g, g, opt); err != nil {
					t.Fatalf("%v unsorted=%v: %v", alg, unsorted, err)
				}
				if st.PhaseSum() > st.Total {
					t.Errorf("%v unsorted=%v workers=%d: PhaseSum %v > Total %v",
						alg, unsorted, workers, st.PhaseSum(), st.Total)
				}
			}
		}
	}
	// The plan path has its own timers on both the inspector and executor.
	var st ExecStats
	p, err := NewPlan(g, g, &Options{Algorithm: AlgHash, Stats: &st})
	if err != nil {
		t.Fatal(err)
	}
	if st.PhaseSum() > st.Total {
		t.Errorf("NewPlan: PhaseSum %v > Total %v", st.PhaseSum(), st.Total)
	}
	if _, err := p.Execute(); err != nil {
		t.Fatal(err)
	}
	if st.PhaseSum() > st.Total {
		t.Errorf("Execute: PhaseSum %v > Total %v", st.PhaseSum(), st.Total)
	}
}

// TestExecStatsAdd covers the accumulation API: phases, totals and worker
// counters fold together, and the worker slice grows to the larger run.
func TestExecStatsAdd(t *testing.T) {
	a := ExecStats{Algorithm: AlgHash, Total: 10 * time.Millisecond}
	a.Phases[PhaseNumeric] = 6 * time.Millisecond
	a.Workers = []WorkerStats{{Rows: 3, Flop: 30}}

	b := ExecStats{Algorithm: AlgHashVec, Total: 4 * time.Millisecond}
	b.Phases[PhaseNumeric] = 2 * time.Millisecond
	b.Phases[PhaseSymbolic] = time.Millisecond
	b.Workers = []WorkerStats{{Rows: 1, Flop: 10}, {Rows: 2, Flop: 20, HashLookups: 5}}

	a.Add(&b)
	if a.Total != 14*time.Millisecond {
		t.Errorf("Total = %v", a.Total)
	}
	if a.Phases[PhaseNumeric] != 8*time.Millisecond || a.Phases[PhaseSymbolic] != time.Millisecond {
		t.Errorf("Phases = %v", a.Phases)
	}
	if a.Algorithm != AlgHashVec {
		t.Errorf("Algorithm = %v", a.Algorithm)
	}
	if len(a.Workers) != 2 || a.Workers[0].Rows != 4 || a.Workers[1].HashLookups != 5 {
		t.Errorf("Workers = %+v", a.Workers)
	}
	a.Add(nil) // must not panic
	if a.Total != 14*time.Millisecond {
		t.Errorf("Add(nil) changed Total to %v", a.Total)
	}

	c := a.Clone()
	c.Workers[0].Rows = 99
	if a.Workers[0].Rows == 99 {
		t.Error("Clone shares the Workers slice")
	}
}

// TestContextCumulativeStats verifies the automatic accumulation iterative
// workloads rely on: every stats-enabled Multiply through a Context folds
// into CumulativeStats.
func TestContextCumulativeStats(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	g := gen.ER(8, 6, rng)
	var st ExecStats
	opt := &Options{Algorithm: AlgHash, Workers: 2, Stats: &st, Context: NewContext()}

	const calls = 3
	var wantFlop int64
	for i := 0; i < calls; i++ {
		if _, err := Multiply(g, g, opt); err != nil {
			t.Fatal(err)
		}
		wantFlop += st.TotalWorker().Flop
	}
	if got := opt.Context.CumulativeCalls(); got != calls {
		t.Fatalf("CumulativeCalls = %d, want %d", got, calls)
	}
	cum := opt.Context.CumulativeStats()
	if cum == nil {
		t.Fatal("CumulativeStats = nil after stats-enabled calls")
	}
	if cum.Total < st.Total {
		t.Errorf("cumulative Total %v < last call's %v", cum.Total, st.Total)
	}
	if got := cum.TotalWorker().Flop; got != wantFlop {
		t.Errorf("cumulative flop = %d, want %d", got, wantFlop)
	}
	if cum.TotalWorker().Rows != int64(calls*g.Rows) {
		t.Errorf("cumulative rows = %d, want %d", cum.TotalWorker().Rows, calls*g.Rows)
	}

	// Stats-disabled calls do not accumulate.
	if _, err := Multiply(g, g, &Options{Algorithm: AlgHash, Context: opt.Context}); err != nil {
		t.Fatal(err)
	}
	if got := opt.Context.CumulativeCalls(); got != calls {
		t.Errorf("stats-disabled call accumulated: calls = %d", got)
	}

	opt.Context.ResetCumulative()
	if opt.Context.CumulativeStats() != nil || opt.Context.CumulativeCalls() != 0 {
		t.Error("ResetCumulative did not clear the totals")
	}
}

// TestMetricsExposedSeries pins the /metrics contract: after exercising the
// kernels, the default registry exposes at least the pool, mempool, spgemm
// and plan-reuse series.
func TestMetricsExposedSeries(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	g := gen.ER(8, 6, rng)
	var st ExecStats
	if _, err := Multiply(g, g, &Options{Algorithm: AlgHash, Workers: 2, Stats: &st}); err != nil {
		t.Fatal(err)
	}
	p, err := NewPlan(g, g, &Options{Algorithm: AlgHash, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Execute(); err != nil {
		t.Fatal(err)
	}
	p.Invalidate()
	if _, err := p.Execute(); err != ErrPlanStale {
		t.Fatalf("Execute after Invalidate: %v", err)
	}

	var buf bytes.Buffer
	if err := obs.DefaultRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, series := range []string{
		"sched_pool_regions_total",
		"mempool_live_bytes",
		"spgemm_multiplies_total",
		`spgemm_multiplies_total{alg="hash"}`,
		"spgemm_flop_total",
		"spgemm_collision_factor_count",
		"spgemm_context_acc_alloc_total",
		"spgemm_plan_builds_total",
		"spgemm_plan_executes_total",
		"spgemm_plan_stale_total",
	} {
		if !strings.Contains(out, series) {
			t.Errorf("/metrics missing series %q", series)
		}
	}
}

// TestTracerKernelSpans checks the end-to-end tracer integration: with an
// active tracer, a Multiply emits driver-lane phase spans and worker-lane
// region spans into the Chrome trace export.
func TestTracerKernelSpans(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	g := gen.ER(8, 6, rng)
	tr := obs.NewTracer()
	obs.SetActive(tr)
	_, err := Multiply(g, g, &Options{Algorithm: AlgHash, Workers: 2})
	obs.SetActive(nil)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			TID  int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	driver := map[string]bool{}
	worker := map[string]bool{}
	for _, e := range trace.TraceEvents {
		if e.Ph != "B" {
			continue
		}
		if e.TID == obs.DriverLane {
			driver[e.Name] = true
		} else {
			worker[e.Name] = true
		}
	}
	for _, phase := range []string{"partition", "symbolic", "alloc", "numeric"} {
		if !driver[phase] {
			t.Errorf("driver lane missing phase span %q (got %v)", phase, driver)
		}
	}
	for _, region := range []string{"symbolic", "numeric"} {
		if !worker[region] {
			t.Errorf("worker lanes missing region span %q (got %v)", region, worker)
		}
	}
}
