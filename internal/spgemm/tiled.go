package spgemm

import (
	"repro/internal/accum"
	"repro/internal/matrix"
	"repro/internal/semiring"
)

// Tiled SpGEMM (AlgTiled): cache-conscious execution for skewed inputs.
//
// The hash kernel's implicit assumption is that one row's accumulator fits
// in cache. On power-law inputs (G500/R-MAT) the heavy rows break it: their
// tables spill out of L2, every probe becomes a memory round-trip, and the
// per-row sort of the widest rows dominates. This mode splits B into column
// tiles sized by the installed cache parameters (tilegeom.go) and decomposes
// each heavy row into (row, tile) units: a unit accumulates into a dense
// cache-resident SPA over one tile's column range — direct indexing, no
// collisions, O(1) generation-stamp reset — and units are flop-balanced over
// workers independently of rows, which also fixes the load imbalance a
// single mega-row causes. Light rows keep the single-pass hash path
// unchanged.
//
// Output stitching is free: tiles cover ascending disjoint column ranges, so
// a heavy row's units extract (sorted within the tile, biased to global
// column ids) directly into the row's final [rowPtr + earlier-tiles-nnz)
// slice of the output — in order, with no merge pass and no temp copy.

// tiledSplit is the column-split view of B: tile t holds B's entries whose
// columns fall in [t·tileCols, (t+1)·tileCols), with tile-local column ids,
// stored in flat arrays (nTiles row-pointer blocks of rows+1 entries each,
// holding global offsets into the shared colIdx/vals arrays).
type tiledSplit[V semiring.Value] struct {
	rowPtr []int64
	colIdx []int32
	vals   []V
	rows   int
}

// rowRange returns the entry range of row i within tile t.
//
//spgemm:hotpath
func (s *tiledSplit[V]) rowRange(t, i int) (int64, int64) {
	// One two-element slice check instead of two index checks; the
	// constant indexes below are then provably in bounds.
	base := t*(s.rows+1) + i
	rp := s.rowPtr[base : base+2]
	return rp[0], rp[1]
}

// splitTiles column-splits B into nTiles tiles of width tileCols using the
// context's flat buffers: one pass counts per-(tile, row) entries into the
// flat row-pointer array, one running sum converts the counts to global
// offsets (tile-start slots contribute zero, so the sum carries across tile
// boundaries), and a second pass scatters tile-local column ids and values
// through a separate cursor copy. O(nnz(B)) work, zero allocations at steady
// state. When perm is non-nil (plan builds) it receives, per split entry,
// the index of the originating B entry, so a later execution can re-gather
// fresh values without redoing the split.
func splitTiles[V semiring.Value](ctx *ContextG[V], b *matrix.CSRG[V], tileCols, nTiles int, perm []int64) tiledSplit[V] {
	nnz := int(b.RowPtr[b.Rows])
	rows1 := b.Rows + 1
	rpLen := nTiles * rows1
	ctx.tileRowPtr = ensureI64(ctx.tileRowPtr, rpLen)
	ctx.tileCur = ensureI64(ctx.tileCur, rpLen)
	ctx.tileIdx = ensureI32(ctx.tileIdx, nnz)
	vals := ctx.tileValBuf(nnz)
	rp := ctx.tileRowPtr
	for j := range rp {
		rp[j] = 0
	}
	for i := 0; i < b.Rows; i++ {
		for p := b.RowPtr[i]; p < b.RowPtr[i+1]; p++ {
			t := int(b.ColIdx[p]) / tileCols
			rp[t*rows1+i+1]++
		}
	}
	var acc int64
	for j := 0; j < rpLen; j++ {
		acc += rp[j]
		rp[j] = acc
	}
	cur := ctx.tileCur
	copy(cur[:rpLen], rp[:rpLen])
	idx := ctx.tileIdx
	for i := 0; i < b.Rows; i++ {
		for p := b.RowPtr[i]; p < b.RowPtr[i+1]; p++ {
			col := b.ColIdx[p]
			t := int(col) / tileCols
			slot := t*rows1 + i
			q := cur[slot]
			idx[q] = col - int32(t*tileCols)
			vals[q] = b.Val[p]
			if perm != nil {
				perm[q] = p
			}
			cur[slot] = q + 1
		}
	}
	return tiledSplit[V]{rowPtr: rp[:rpLen], colIdx: idx[:nnz], vals: vals, rows: b.Rows}
}

// tiledUnitSymbolic counts the distinct output columns of one (row, tile)
// unit with a dense accumulator over the tile's column range.
//
//spgemm:hotpath
func tiledUnitSymbolic[V semiring.Value](spa *accum.SPAG[V], a *matrix.CSRG[V], tiles *tiledSplit[V], row, tile int) int64 {
	spa.Reset()
	// Ranging over row sub-slices collapses the per-entry CSR bounds
	// checks into one slice check per row segment.
	alo, ahi := a.RowPtr[row], a.RowPtr[row+1]
	for _, k := range a.ColIdx[alo:ahi] {
		qlo, qhi := tiles.rowRange(tile, int(k))
		for _, c := range tiles.colIdx[qlo:qhi] {
			spa.InsertSymbolic(c)
		}
	}
	return int64(spa.Len())
}

// tiledUnitNumeric accumulates one (row, tile) unit and extracts it directly
// into the unit's slice of the output row, biasing tile-local columns back
// to global ids.
//
//spgemm:hotpath
func tiledUnitNumeric[V semiring.Value, R semiring.Ring[V]](ring R, spa *accum.SPAG[V], a *matrix.CSRG[V], tiles *tiledSplit[V], row, tile int, cols []int32, vals []V, bias int32, sorted bool) {
	spa.Reset()
	alo, ahi := a.RowPtr[row], a.RowPtr[row+1]
	acols := a.ColIdx[alo:ahi]
	avals := a.Val[alo:ahi]
	for x, k := range acols {
		av := avals[x]
		qlo, qhi := tiles.rowRange(tile, int(k))
		tcols := tiles.colIdx[qlo:qhi]
		tvals := tiles.vals[qlo:qhi]
		for y, c := range tcols {
			prod := ring.Mul(av, tvals[y])
			slot, fresh := spa.Upsert(c)
			if fresh {
				*slot = prod
			} else {
				*slot = ring.Add(*slot, prod)
			}
		}
	}
	if sorted {
		spa.ExtractSortedBias(cols, vals, bias)
	} else {
		spa.ExtractUnsortedBias(cols, vals, bias)
	}
}

// tiledMultiply is the AlgTiled driver.
func tiledMultiply[V semiring.Value, R semiring.Ring[V]](ring R, a, b *matrix.CSRG[V], opt *OptionsG[V]) (*matrix.CSRG[V], error) {
	workers := opt.workers()
	if workers > a.Rows && a.Rows > 0 {
		workers = a.Rows
	}
	if workers < 1 {
		workers = 1
	}
	ctx := opt.ctx()
	ctx.ensureWorkers(workers)
	pt := startPhases(opt.Stats, workers)

	flopRow := ctx.perRowFlop(a, b)
	tileCols, heavyFlop := opt.tileGeometry()
	nTiles := 1
	if b.Cols > tileCols {
		nTiles = (b.Cols + tileCols - 1) / tileCols
	}

	// Heavy-row detection: a row whose accumulator bound exceeds the
	// threshold cannot stay cache-resident on the single-pass hash path.
	// With a single tile there is nothing to split, so every row is light.
	nHeavy := 0
	if nTiles > 1 {
		for i := 0; i < a.Rows; i++ {
			if capBound(flopRow[i], b.Cols) > heavyFlop {
				nHeavy++
			}
		}
	}
	heavyRow := func(i int) bool {
		return nHeavy > 0 && capBound(flopRow[i], b.Cols) > heavyFlop
	}

	// Light rows are flop-balanced as usual; heavy rows are zeroed out of
	// the weights so the light partition spreads only the work the light
	// pass will actually do.
	lightFlop := flopRow
	if nHeavy > 0 {
		lightFlop = ctx.lightFlopBuf(a.Rows)
		for i, f := range flopRow {
			if capBound(f, b.Cols) > heavyFlop {
				lightFlop[i] = 0
			} else {
				lightFlop[i] = f
			}
		}
	}
	offsets := ctx.partition(lightFlop, workers, workers)

	// Column-split B and enumerate the heavy (row, tile) units with their
	// per-unit flop (the unit scheduling weights).
	var (
		tiles    tiledSplit[V]
		unitRow  []int32
		unitTile []int32
		unitFlop []int64
		unitNnz  []int64
		unitOff  []int64
		nUnits   int
	)
	if nHeavy > 0 {
		tiles = splitTiles(ctx, b, tileCols, nTiles, nil)
		nUnits = nHeavy * nTiles
		unitRow, unitTile, unitFlop, unitNnz, unitOff = ctx.unitBufs(nUnits)
		u := 0
		for i := 0; i < a.Rows; i++ {
			if !heavyRow(i) {
				continue
			}
			base := u
			for t := 0; t < nTiles; t++ {
				unitRow[base+t] = int32(i)
				unitTile[base+t] = int32(t)
				unitFlop[base+t] = 0
			}
			for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
				k := int(a.ColIdx[p])
				for t := 0; t < nTiles; t++ {
					lo, hi := tiles.rowRange(t, k)
					unitFlop[base+t] += hi - lo
				}
			}
			u += nTiles
		}
	}
	pt.tick(PhasePartition)

	rowNnz := ctx.rowNnzBuf(a.Rows)

	// Symbolic, light rows: the hash path of hashFast, skipping heavy rows.
	ctx.runWorkers("tiled-symbolic", workers, func(w int) {
		lo, hi := offsets[w], offsets[w+1]
		if lo >= hi {
			return
		}
		bound := int64(0)
		for i := lo; i < hi; i++ {
			if lightFlop[i] > bound {
				bound = lightFlop[i]
			}
		}
		table := ctx.hashTable(w, capBound(bound, b.Cols))
		for i := lo; i < hi; i++ {
			if heavyRow(i) {
				continue
			}
			table.Reset()
			alo, ahi := a.RowPtr[i], a.RowPtr[i+1]
			for p := alo; p < ahi; p++ {
				k := a.ColIdx[p]
				blo, bhi := b.RowPtr[k], b.RowPtr[k+1]
				for q := blo; q < bhi; q++ {
					table.InsertSymbolic(b.ColIdx[q])
				}
			}
			rowNnz[i] = int64(table.Len())
		}
	})

	// Symbolic, heavy units: flop-balanced unit-grain scheduling; each unit
	// counts into a dense tile-wide accumulator.
	if nUnits > 0 {
		ctx.balancedUnits("tiled-symbolic-heavy", unitFlop, workers, func(w, ulo, uhi int) {
			if ulo >= uhi {
				return
			}
			spa := ctx.spaTable(w, tileCols)
			for u := ulo; u < uhi; u++ {
				if unitFlop[u] == 0 {
					unitNnz[u] = 0
					continue
				}
				unitNnz[u] = tiledUnitSymbolic(spa, a, &tiles, int(unitRow[u]), int(unitTile[u]))
			}
		})
		for u := 0; u < nUnits; u++ {
			rowNnz[unitRow[u]] += unitNnz[u]
		}
	}
	pt.tick(PhaseSymbolic)

	rowPtr := ctx.prefixSum(rowNnz, nil, workers)
	c := outputShell[V](a.Rows, b.Cols, rowPtr, !opt.Unsorted)
	// Stitch offsets: units of a row appear consecutively in ascending tile
	// order, so each unit's output slice starts at the row base plus the
	// sizes of the row's earlier tiles — one serial scan, no temp buffers.
	for u := 0; u < nUnits; u++ {
		if unitTile[u] == 0 {
			unitOff[u] = rowPtr[unitRow[u]]
		} else {
			unitOff[u] = unitOff[u-1] + unitNnz[u-1]
		}
	}
	pt.tick(PhaseAlloc)

	// Numeric, light rows.
	ctx.runWorkers("tiled-numeric", workers, func(w int) {
		lo, hi := offsets[w], offsets[w+1]
		if lo >= hi {
			return
		}
		table := ctx.hash[w]
		fa, fb, ftab, fastF64 := ptF64Hash(ring, a, b, table)
		rows := int64(0)
		for i := lo; i < hi; i++ {
			if heavyRow(i) {
				continue
			}
			rows++
			table.Reset()
			if fastF64 {
				hashRowNumericF64(ftab, fa, fb, i)
			} else {
				alo, ahi := a.RowPtr[i], a.RowPtr[i+1]
				for p := alo; p < ahi; p++ {
					k := a.ColIdx[p]
					av := a.Val[p]
					blo, bhi := b.RowPtr[k], b.RowPtr[k+1]
					for q := blo; q < bhi; q++ {
						prod := ring.Mul(av, b.Val[q])
						slot, fresh := table.Upsert(b.ColIdx[q])
						if fresh {
							*slot = prod
						} else {
							*slot = ring.Add(*slot, prod)
						}
					}
				}
			}
			start := c.RowPtr[i]
			cols := c.ColIdx[start : start+rowNnz[i]]
			vals := c.Val[start : start+rowNnz[i]]
			if opt.Unsorted {
				table.ExtractUnsorted(cols, vals)
			} else {
				table.ExtractSorted(cols, vals)
			}
		}
		if ws := pt.worker(w); ws != nil {
			ws.Rows += rows
			ws.Flop += rangeFlop(lightFlop, lo, hi)
			ws.HashLookups += table.Lookups()
			ws.HashProbes += table.Probes()
		}
	})

	// Numeric, heavy units: each unit writes its tile's slice of the row
	// straight into the output at the stitched offset. L2Overflows counts
	// the units routed through tiling (the rows that would have overflowed
	// the cache-resident accumulator on the hash path).
	if nUnits > 0 {
		ctx.balancedUnits("tiled-numeric-heavy", unitFlop, workers, func(w, ulo, uhi int) {
			if ulo >= uhi {
				return
			}
			spa := ctx.spaTable(w, tileCols)
			fa, ftl, fspa, fastF64 := ptF64Tiled(ring, a, &tiles, spa)
			var fc *matrix.CSRG[float64]
			if fastF64 {
				fc, _ = any(c).(*matrix.CSRG[float64])
				fastF64 = fc != nil
			}
			var flop, rows int64
			for u := ulo; u < uhi; u++ {
				t := int(unitTile[u])
				if t == 0 {
					rows++
				}
				if unitNnz[u] == 0 {
					continue
				}
				start := unitOff[u]
				cols := c.ColIdx[start : start+unitNnz[u]]
				if fastF64 {
					tiledUnitNumericF64(fspa, fa, ftl, int(unitRow[u]), t, cols, fc.Val[start:start+unitNnz[u]], int32(t*tileCols), !opt.Unsorted)
				} else {
					tiledUnitNumeric(ring, spa, a, &tiles, int(unitRow[u]), t, cols, c.Val[start:start+unitNnz[u]], int32(t*tileCols), !opt.Unsorted)
				}
				flop += unitFlop[u]
			}
			if ws := pt.worker(w); ws != nil {
				ws.Rows += rows
				ws.Flop += flop
				ws.L2Overflows += int64(uhi - ulo)
			}
		})
	}
	pt.tick(PhaseNumeric)
	pt.finish()
	return c, nil
}
