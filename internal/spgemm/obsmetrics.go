package spgemm

import "repro/internal/obs"

// Kernel observability: coarse per-call counters on the package metrics
// registry. Everything here costs one atomic add per Multiply call (or per
// plan build/execute), never per-row work; series are registered once at init
// and the per-algorithm children are cached in an array so the hot path does
// no map lookups.
var (
	mMultiplies = obs.NewCounterVec("spgemm_multiplies_total",
		"successful Multiply calls by resolved algorithm", "alg")
	mFlop = obs.NewCounter("spgemm_flop_total",
		"multiply-accumulate operations counted by the partition pre-pass")
	mSortPost = obs.NewCounter("spgemm_sort_postpasses_total",
		"sorted-output post-pass sorts forced on unsorted-native kernels")
	mCollision = obs.NewHistogram("spgemm_collision_factor",
		"hash collision factor per stats-enabled Multiply call (Equation 2)",
		[]float64{1, 1.1, 1.25, 1.5, 2, 3, 5})

	mCtxReuse = obs.NewCounter("spgemm_context_acc_reuse_total",
		"per-worker accumulators revived from a Context instead of allocated")
	mCtxAlloc = obs.NewCounter("spgemm_context_acc_alloc_total",
		"per-worker accumulators freshly allocated")

	mPlanBuilds = obs.NewCounter("spgemm_plan_builds_total",
		"symbolic plans built by NewPlan")
	mPlanExecs = obs.NewCounter("spgemm_plan_executes_total",
		"successful Plan.Execute calls (symbolic phase skipped)")
	mPlanStale = obs.NewCounter("spgemm_plan_stale_total",
		"Plan.Execute calls rejected with ErrPlanStale")
)

// multiplyCounter caches the per-algorithm child of spgemm_multiplies_total
// so recording a call is a single atomic add.
var multiplyCounter = func() [algLast + 1]*obs.Counter {
	var t [algLast + 1]*obs.Counter
	for a := Algorithm(0); a <= algLast; a++ {
		t[a] = mMultiplies.With(a.String())
	}
	return t
}()
