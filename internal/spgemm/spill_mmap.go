//go:build unix

package spgemm

import (
	"fmt"
	"os"
	"syscall"
)

// mapSpillFile maps size bytes of the spill file read-only. The mapping is
// what bounds resident memory: pages are faulted in on demand and evictable,
// so the assembled product can exceed RAM.
func mapSpillFile(f *os.File, size int64) ([]byte, error) {
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("spgemm: spill mmap: %w", err)
	}
	return data, nil
}

func unmapSpillFile(data []byte) error {
	return syscall.Munmap(data)
}
