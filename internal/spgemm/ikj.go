package spgemm

import (
	"repro/internal/accum"
	"repro/internal/matrix"
	"repro/internal/sched"
	"repro/internal/semiring"
)

// ikjMultiply is the IKJ method of Sulatycke and Ghose (IPPS/SPDP 1998) —
// per the paper's Section 2, the first shared-memory parallel SpGEMM. The
// middle loop runs over the full inner dimension k (not just the nonzeros of
// row a_i*), giving work complexity O(n² + flop): "the IKJ method is only
// competitive when flop ≥ n², which is rare for SpGEMM". It is included as
// the historical baseline; BenchmarkAblationIKJ shows the crossover.
//
// The row of A is first scattered into a generation-stamped dense vector so
// the k-loop is a dense scan (the cache-friendly access pattern that
// motivated the original work), then each hit streams row b_k*.
func ikjMultiply[V semiring.Value, R semiring.Ring[V]](ring R, a, b *matrix.CSRG[V], opt *OptionsG[V]) (*matrix.CSRG[V], error) {
	workers := opt.workers()
	if workers > a.Rows && a.Rows > 0 {
		workers = a.Rows
	}
	if workers < 1 {
		workers = 1
	}
	pt := startPhases(opt.Stats, workers)
	flopRow := perRowFlop(a, b)
	// Balance by flop + the O(n) dense scan each row pays.
	weights := make([]int64, a.Rows)
	for i := range weights {
		weights[i] = flopRow[i] + int64(a.Cols)
	}
	offsets := sched.BalancedPartition(weights, workers, workers)
	pt.tick(PhasePartition)

	rowNnz := make([]int64, a.Rows)
	spas := make([]*accum.SPAG[V], workers)
	arows := make([]*accum.SPAG[V], workers)

	runRow := func(w int, i int, numeric bool, c *matrix.CSRG[V]) {
		acc := spas[w]
		arow := arows[w]
		acc.Reset()
		arow.Reset()
		alo, ahi := a.RowPtr[i], a.RowPtr[i+1]
		for p := alo; p < ahi; p++ {
			slot, fresh := arow.Upsert(a.ColIdx[p])
			if fresh {
				*slot = a.Val[p]
			} else {
				*slot = ring.Add(*slot, a.Val[p])
			}
		}
		// The defining dense K loop.
		for k := 0; k < a.Cols; k++ {
			av, ok := arow.Lookup(int32(k))
			if !ok {
				continue
			}
			blo, bhi := b.RowPtr[k], b.RowPtr[k+1]
			if numeric {
				for q := blo; q < bhi; q++ {
					prod := ring.Mul(av, b.Val[q])
					slot, fresh := acc.Upsert(b.ColIdx[q])
					if fresh {
						*slot = prod
					} else {
						*slot = ring.Add(*slot, prod)
					}
				}
			} else {
				for q := blo; q < bhi; q++ {
					acc.InsertSymbolic(b.ColIdx[q])
				}
			}
		}
		if numeric {
			start := c.RowPtr[i]
			cols := c.ColIdx[start : start+rowNnz[i]]
			vals := c.Val[start : start+rowNnz[i]]
			if opt.Unsorted {
				acc.ExtractUnsorted(cols, vals)
			} else {
				acc.ExtractSorted(cols, vals)
			}
		} else {
			rowNnz[i] = int64(acc.Len())
		}
	}

	sched.RunWorkersNamed("symbolic", workers, func(w int) {
		lo, hi := offsets[w], offsets[w+1]
		if lo >= hi {
			return
		}
		spas[w] = accum.NewSPAG[V](b.Cols)
		arows[w] = accum.NewSPAG[V](a.Cols)
		for i := lo; i < hi; i++ {
			runRow(w, i, false, nil)
		}
	})
	pt.tick(PhaseSymbolic)
	rowPtr := sched.PrefixSum(rowNnz, nil, workers)
	c := outputShell[V](a.Rows, b.Cols, rowPtr, !opt.Unsorted)
	pt.tick(PhaseAlloc)
	sched.RunWorkersNamed("numeric", workers, func(w int) {
		lo, hi := offsets[w], offsets[w+1]
		if lo >= hi {
			return
		}
		for i := lo; i < hi; i++ {
			runRow(w, i, true, c)
		}
		if ws := pt.worker(w); ws != nil {
			ws.Rows = int64(hi - lo)
			ws.Flop = rangeFlop(flopRow, lo, hi)
		}
	})
	pt.tick(PhaseNumeric)
	pt.finish()
	return c, nil
}
