package spgemm

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/matrix"
)

func TestPlanExecuteMatchesMultiply(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	a := matrix.Random(120, 100, 0.06, rng)
	b := matrix.Random(100, 110, 0.06, rng)
	for _, alg := range []Algorithm{AlgHash, AlgHashVec} {
		for _, unsorted := range []bool{false, true} {
			opt := &Options{Algorithm: alg, Workers: 3, Unsorted: unsorted, Context: NewContext()}
			plan, err := NewPlan(a, b, opt)
			if err != nil {
				t.Fatal(err)
			}
			for round := 0; round < 3; round++ {
				got, err := plan.Execute()
				if err != nil {
					t.Fatalf("%v round %d: %v", alg, round, err)
				}
				want, err := Multiply(a, b, opt)
				if err != nil {
					t.Fatal(err)
				}
				if !csrEqual(got, want) {
					t.Fatalf("%v unsorted=%v round %d: plan result differs from Multiply", alg, unsorted, round)
				}
				if plan.NNZ() != want.NNZ() {
					t.Fatalf("plan NNZ %d != %d", plan.NNZ(), want.NNZ())
				}
				// Mutate values in place: same structure, new numbers. The
				// plan must keep applying, the outputs must keep matching.
				for i := range b.Val {
					b.Val[i] *= 1.5
				}
			}
		}
	}
}

func TestPlanStaleOnStructureChange(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	a := matrix.Random(60, 60, 0.08, rng)
	b := matrix.Random(60, 60, 0.08, rng)
	plan, err := NewPlan(a, b, &Options{Algorithm: AlgHash, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.Execute(); err != nil {
		t.Fatal(err)
	}
	// Move one stored entry of B to a different column: identical nnz and
	// row pointers, different pattern — exactly the case a cheap dims+nnz
	// check would miss.
	if len(b.ColIdx) == 0 {
		t.Skip("empty B")
	}
	old := b.ColIdx[0]
	b.ColIdx[0] = (old + 1) % int32(b.Cols)
	if b.ColIdx[0] == old {
		t.Skip("cannot perturb single-column matrix")
	}
	if _, err := plan.Execute(); !errors.Is(err, ErrPlanStale) {
		t.Fatalf("structure change not detected: err = %v", err)
	}
}

func TestPlanInvalidate(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	a := matrix.Random(40, 40, 0.1, rng)
	plan, err := NewPlan(a, a, &Options{Algorithm: AlgHash})
	if err != nil {
		t.Fatal(err)
	}
	plan.Invalidate()
	if _, err := plan.Execute(); !errors.Is(err, ErrPlanStale) {
		t.Fatalf("invalidated plan executed: err = %v", err)
	}
}

func TestPlanRejectsUnsupported(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	a := matrix.Random(30, 30, 0.1, rng)
	if _, err := NewPlan(a, a, &Options{Algorithm: AlgHeap}); err == nil {
		t.Fatal("heap plan accepted")
	}
	if _, err := NewPlan(a, a, &Options{Algorithm: AlgHash, Mask: a}); err == nil {
		t.Fatal("masked plan accepted")
	}
	bad := matrix.Random(30, 20, 0.1, rng)
	if _, err := NewPlan(a, bad, nil); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

// TestPlanExecuteSkipsInspection checks the acceptance criterion directly:
// on re-execution the partition and symbolic phases cost zero (they do not
// run), while the numeric phase does.
func TestPlanExecuteSkipsInspection(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	a := matrix.Random(300, 300, 0.04, rng)
	var stats ExecStats
	plan, err := NewPlan(a, a, &Options{Algorithm: AlgHash, Workers: 2, Stats: &stats})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Phases[PhaseSymbolic] == 0 {
		t.Fatal("inspector recorded no symbolic time")
	}
	if _, err := plan.Execute(); err != nil {
		t.Fatal(err)
	}
	if stats.Phases[PhasePartition] != 0 || stats.Phases[PhaseSymbolic] != 0 {
		t.Fatalf("execute re-ran inspection: partition=%v symbolic=%v",
			stats.Phases[PhasePartition], stats.Phases[PhaseSymbolic])
	}
	if stats.Phases[PhaseNumeric] == 0 {
		t.Fatal("execute recorded no numeric time")
	}
}

// TestPlanSharedContextInterleaved interleaves plan executions with ordinary
// Multiply calls on the same Context: the plan's cached partition and row
// pointers must be immune to the context's buffers being overwritten.
func TestPlanSharedContextInterleaved(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	a := matrix.Random(90, 90, 0.06, rng)
	other := matrix.Random(400, 400, 0.02, rng)
	ctx := NewContext()
	opt := &Options{Algorithm: AlgHash, Workers: 2, Context: ctx}
	plan, err := NewPlan(a, a, opt)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Multiply(a, a, &Options{Algorithm: AlgHash, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		// Clobber the context's bookkeeping with a differently-shaped product.
		if _, err := Multiply(other, other, &Options{Algorithm: AlgHashVec, Workers: 3, Context: ctx}); err != nil {
			t.Fatal(err)
		}
		got, err := plan.Execute()
		if err != nil {
			t.Fatal(err)
		}
		if !csrEqual(got, want) {
			t.Fatalf("round %d: interleaved plan result differs", round)
		}
	}
}

func TestPlanExecuteInMatchesExecute(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	a := matrix.Random(90, 80, 0.07, rng)
	b := matrix.Random(80, 70, 0.07, rng)
	plan, err := NewPlan(a, b, &Options{Algorithm: AlgHash, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	want, err := plan.Execute()
	if err != nil {
		t.Fatal(err)
	}
	// A nil context is a fresh transient one; a caller context is reused.
	got, err := plan.ExecuteIn(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !csrEqual(got, want) {
		t.Fatal("ExecuteIn(nil, nil) differs from Execute")
	}
	ctx := NewContext()
	stats := &ExecStats{}
	got, err = plan.ExecuteIn(ctx, stats)
	if err != nil {
		t.Fatal(err)
	}
	if !csrEqual(got, want) {
		t.Fatal("ExecuteIn(ctx, stats) differs from Execute")
	}
	if stats.Algorithm != AlgHash || stats.Total <= 0 {
		t.Fatalf("stats not populated: %+v", stats)
	}
	if ctx.CumulativeCalls() != 1 {
		t.Fatalf("stats accumulated into the wrong context: %d calls", ctx.CumulativeCalls())
	}
}

// TestPlanConcurrentExecuteIn pins the contract the multiply server's plan
// cache relies on: one shared Plan, concurrently executed through distinct
// Contexts, is race-free (run under -race) and every result is identical.
func TestPlanConcurrentExecuteIn(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	a := matrix.Random(150, 130, 0.05, rng)
	b := matrix.Random(130, 140, 0.05, rng)
	plan, err := NewPlan(a, b, &Options{Algorithm: AlgHashVec, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	want, err := plan.Execute()
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	results := make([]*matrix.CSR, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx := NewContext()
			for round := 0; round < 4; round++ {
				results[g], errs[g] = plan.ExecuteIn(ctx, &ExecStats{})
				if errs[g] != nil {
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		if !csrEqual(results[g], want) {
			t.Fatalf("goroutine %d produced a different product", g)
		}
	}
}
