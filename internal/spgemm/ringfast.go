package spgemm

import (
	"repro/internal/accum"
	"repro/internal/matrix"
	"repro/internal/semiring"
)

// Hand-devirtualized float64 plus-times inner loops.
//
// The generic kernels are shape-stenciled, not fully monomorphized: Go
// compiles one body per GC shape and passes the ring's method set through a
// runtime dictionary, so ring.Add/ring.Mul in the inner loops are indirect
// calls (objdump shows CALL AX at the product sites) that the inliner never
// sees — each dictionary call also costs ~57 inliner units, so any generic
// helper wrapping two of them is over the 80-unit budget before it starts.
// For the flagship ring that every float64 Multiply uses, that indirection
// taxes the exact two instructions the paper's kernels are built around.
//
// The fix is manual monomorphization: each worker asserts once, outside the
// hot loop, whether its ring is semiring.PlusTimesF64, and routes whole rows
// through the concrete loops below. The ring operations are still written as
// method calls on a concrete PlusTimesF64 value — not bare + and * — so the
// compiler reports "inlining call to semiring.PlusTimesF64.Add/.Mul" for
// these sites and `spgemm-lint -mode=inline` can require those lines to be
// present: deleting or regressing the fast path fails CI. Fold order is
// identical to the generic loops, so results are bit-identical
// (TestRingFastEquivalence).
//
// The type assertions live in un-annotated setup code on purpose: an
// interface conversion inside a //spgemm:hotpath body would trip the
// deferhot analyzer. hashVecFast keeps the dictionary path for now; its
// chunked table has a different Upsert contract and the hash/tiled pair
// covers the kernels the tiled work (PR 7) made the defaults.

// ptF64Hash reports whether this hash-kernel instantiation is the float64
// plus-times flagship and, if so, returns the concretely-typed views of the
// operands that the fast path needs. The assertions are exhaustive only in
// the ring: if ring is PlusTimesF64 then V = float64 and the remaining
// assertions cannot fail (the ok result guards against that invariant
// breaking silently).
func ptF64Hash[V semiring.Value, R semiring.Ring[V]](ring R, a, b *matrix.CSRG[V], table *accum.HashTableG[V]) (*matrix.CSRG[float64], *matrix.CSRG[float64], *accum.HashTableG[float64], bool) {
	if _, ok := any(ring).(semiring.PlusTimesF64); !ok {
		return nil, nil, nil, false
	}
	fa, aok := any(a).(*matrix.CSRG[float64])
	fb, bok := any(b).(*matrix.CSRG[float64])
	ft, tok := any(table).(*accum.HashTableG[float64])
	return fa, fb, ft, aok && bok && tok
}

// ptF64Tiled is ptF64Hash for the tiled kernel's heavy-unit path: SPA
// accumulator and column-split view instead of the hash table.
func ptF64Tiled[V semiring.Value, R semiring.Ring[V]](ring R, a *matrix.CSRG[V], tiles *tiledSplit[V], spa *accum.SPAG[V]) (*matrix.CSRG[float64], *tiledSplit[float64], *accum.SPAG[float64], bool) {
	if _, ok := any(ring).(semiring.PlusTimesF64); !ok {
		return nil, nil, nil, false
	}
	fa, aok := any(a).(*matrix.CSRG[float64])
	ft, tok := any(tiles).(*tiledSplit[float64])
	fs, sok := any(spa).(*accum.SPAG[float64])
	return fa, ft, fs, aok && tok && sok
}

// hashRowNumericF64 accumulates one output row of C = A·B into table with
// plus-times float64 arithmetic — the concrete twin of the generic numeric
// row loop in hashFast and the tiled light path. The Mul/Add calls below
// must inline (required entries in lint/inline_allowlist.txt).
//
//spgemm:hotpath
func hashRowNumericF64(table *accum.HashTable, a, b *matrix.CSR, i int) {
	var ring semiring.PlusTimesF64
	// Row sub-slices collapse the per-entry CSR bounds checks into one
	// slice check per row segment (spgemm-lint -mode=bce budgets the rest).
	alo, ahi := a.RowPtr[i], a.RowPtr[i+1]
	acols := a.ColIdx[alo:ahi]
	avals := a.Val[alo:ahi]
	for x, k := range acols {
		av := avals[x]
		brp := b.RowPtr[k : int(k)+2]
		bcols := b.ColIdx[brp[0]:brp[1]]
		bvals := b.Val[brp[0]:brp[1]]
		for y, col := range bcols {
			prod := ring.Mul(av, bvals[y])
			slot, fresh := table.Upsert(col)
			if fresh {
				*slot = prod
			} else {
				*slot = ring.Add(*slot, prod)
			}
		}
	}
}

// tiledUnitNumericF64 is the concrete twin of tiledUnitNumeric: accumulate
// one heavy (row, tile) unit into the dense SPA and extract it, biased back
// to global columns, into the unit's stitched slice of the output row.
//
//spgemm:hotpath
func tiledUnitNumericF64(spa *accum.SPA, a *matrix.CSR, tiles *tiledSplit[float64], row, tile int, cols []int32, vals []float64, bias int32, sorted bool) {
	var ring semiring.PlusTimesF64
	spa.Reset()
	alo, ahi := a.RowPtr[row], a.RowPtr[row+1]
	acols := a.ColIdx[alo:ahi]
	avals := a.Val[alo:ahi]
	for x, k := range acols {
		av := avals[x]
		qlo, qhi := tiles.rowRange(tile, int(k))
		tcols := tiles.colIdx[qlo:qhi]
		tvals := tiles.vals[qlo:qhi]
		for y, c := range tcols {
			prod := ring.Mul(av, tvals[y])
			slot, fresh := spa.Upsert(c)
			if fresh {
				*slot = prod
			} else {
				*slot = ring.Add(*slot, prod)
			}
		}
	}
	if sorted {
		spa.ExtractSortedBias(cols, vals, bias)
	} else {
		spa.ExtractUnsortedBias(cols, vals, bias)
	}
}
