package spgemm

import (
	"fmt"

	"repro/internal/accum"
	"repro/internal/matrix"
	"repro/internal/sched"
	"repro/internal/semiring"
)

// heapMultiply is Heap SpGEMM (Section 4.2.3): one-phase, k-way merge of the
// sorted contributing rows of B with a thread-private binary heap. Output
// rows are produced in sorted order by construction. The five HeapVariant
// values reproduce the scheduling/memory-management comparison of Figure 9.
func heapMultiply[V semiring.Value, R semiring.Ring[V]](ring R, a, b *matrix.CSRG[V], opt *OptionsG[V]) (*matrix.CSRG[V], error) {
	if !b.Sorted {
		return nil, fmt.Errorf("spgemm: heap algorithm requires sorted input rows (B is unsorted)")
	}
	switch opt.HeapVariant {
	case HeapBalancedParallel, HeapBalancedSingle:
		return heapBalanced(ring, a, b, opt)
	case HeapStatic:
		return heapScheduled(ring, a, b, opt, sched.Static, 1)
	case HeapDynamic:
		return heapScheduled(ring, a, b, opt, sched.Dynamic, 16)
	case HeapGuided:
		return heapScheduled(ring, a, b, opt, sched.Guided, 16)
	}
	return nil, fmt.Errorf("spgemm: unknown heap variant %d", opt.HeapVariant)
}

// heapRow merges output row i into cols/vals (which must hold at least
// flop(i) entries) and returns the number of entries produced. An output
// entry exists iff at least one product landed on it; the first product is
// stored directly and later ones folded with ring.Add, so entries whose
// value happens to equal ring.Zero() (min-plus: +Inf inputs) are kept, and
// none are fabricated.
//
//spgemm:hotpath
func heapRow[V semiring.Value, R semiring.Ring[V]](ring R, a, b *matrix.CSRG[V], i int, h *accum.MergeHeapG[V], cols []int32, vals []V) int {
	h.Reset()
	alo, ahi := a.RowPtr[i], a.RowPtr[i+1]
	for p := alo; p < ahi; p++ {
		k := a.ColIdx[p]
		blo, bhi := b.RowPtr[k], b.RowPtr[k+1]
		if blo < bhi {
			h.Push(b.ColIdx[blo], a.Val[p], blo, bhi)
		}
	}
	n := 0
	for h.Len() > 0 {
		col, av, pos := h.Min()
		prod := ring.Mul(av, b.Val[pos])
		if n > 0 && cols[n-1] == col {
			vals[n-1] = ring.Add(vals[n-1], prod)
		} else {
			cols[n] = col
			vals[n] = prod
			n++
		}
		mpos, mend := h.MinPosEnd()
		if mpos+1 < mend {
			h.AdvanceMin(b.ColIdx[mpos+1])
		} else {
			h.PopMin()
		}
	}
	return n
}

// heapBalanced implements the paper's final Heap design: rows partitioned by
// flop (Figure 6), one-phase with per-thread upper-bound temp buffers.
// HeapBalancedParallel gives each worker its own allocation ("parallel"
// memory management, Figure 3); HeapBalancedSingle carves all workers' temp
// space out of one shared slab ("single"), reproducing the costly variant of
// Figures 4 and 9.
func heapBalanced[V semiring.Value, R semiring.Ring[V]](ring R, a, b *matrix.CSRG[V], opt *OptionsG[V]) (*matrix.CSRG[V], error) {
	workers := opt.workers()
	if workers > a.Rows && a.Rows > 0 {
		workers = a.Rows
	}
	if workers < 1 {
		workers = 1
	}
	ctx := opt.ctx()
	ctx.ensureWorkers(workers)
	pt := startPhases(opt.Stats, workers)
	flopRow := ctx.perRowFlop(a, b)
	offsets := ctx.partition(flopRow, workers, workers)
	pt.tick(PhasePartition)

	// Per-worker temp sizes: sum of flop over the worker's rows (each row's
	// nnz is at most its flop).
	tempSize := make([]int64, workers)
	for w := 0; w < workers; w++ {
		var s int64
		for i := offsets[w]; i < offsets[w+1]; i++ {
			s += flopRow[i]
		}
		tempSize[w] = s
	}

	tmpCols := make([][]int32, workers)
	tmpVals := make([][]V, workers)
	if opt.HeapVariant == HeapBalancedSingle {
		// One shared slab, carved into per-worker segments. Deliberately
		// never drawn from the Context: the point of this variant is to
		// reproduce the costly "single" allocation of Figures 4 and 9.
		var total int64
		for _, s := range tempSize {
			total += s
		}
		allCols := make([]int32, total)
		allVals := make([]V, total)
		var off int64
		for w := 0; w < workers; w++ {
			tmpCols[w] = allCols[off : off+tempSize[w]]
			tmpVals[w] = allVals[off : off+tempSize[w]]
			off += tempSize[w]
		}
	}

	rowNnz := ctx.rowNnzBuf(a.Rows)
	used := make([]int64, workers)

	ctx.runWorkers("numeric", workers, func(w int) {
		lo, hi := offsets[w], offsets[w+1]
		if lo >= hi {
			return
		}
		if opt.HeapVariant == HeapBalancedParallel {
			// "parallel" memory management: the worker ensures its own
			// share (first-touched locally, reused across calls).
			s := ctx.workerScratch(w)
			tmpCols[w] = s.EnsureInt32A(int(tempSize[w]))
			tmpVals[w] = ctx.valScratchA(w, int(tempSize[w]))
		}
		var maxK int64
		for i := lo; i < hi; i++ {
			if k := a.RowPtr[i+1] - a.RowPtr[i]; k > maxK {
				maxK = k
			}
		}
		h := ctx.mergeHeap(w, maxK)
		var pos int64
		for i := lo; i < hi; i++ {
			n := heapRow(ring, a, b, i, h, tmpCols[w][pos:], tmpVals[w][pos:])
			rowNnz[i] = int64(n)
			pos += int64(n)
		}
		used[w] = pos
		if ws := pt.worker(w); ws != nil {
			ws.Rows = int64(hi - lo)
			ws.Flop = rangeFlop(flopRow, lo, hi)
			ws.HeapPushes = h.Pushes()
		}
	})
	pt.tick(PhaseNumeric)

	rowPtr := ctx.prefixSum(rowNnz, nil, workers)
	c := outputShell[V](a.Rows, b.Cols, rowPtr, true)
	pt.tick(PhaseAlloc)
	// Each worker's rows are contiguous in both temp and final storage:
	// one bulk copy per worker.
	ctx.runWorkers("assemble", workers, func(w int) {
		lo := offsets[w]
		if lo >= offsets[w+1] {
			return
		}
		dst := rowPtr[lo]
		copy(c.ColIdx[dst:dst+used[w]], tmpCols[w][:used[w]])
		copy(c.Val[dst:dst+used[w]], tmpVals[w][:used[w]])
	})
	pt.tick(PhaseAssemble)
	pt.finish()
	return c, nil
}

// heapScheduled is the naive row-parallel Heap with an OpenMP-style schedule
// (the static/dynamic/guided curves of Figure 9). Workers append finished
// rows to growable private buffers and the matrix is stitched together at
// the end.
func heapScheduled[V semiring.Value, R semiring.Ring[V]](ring R, a, b *matrix.CSRG[V], opt *OptionsG[V], schedule sched.Schedule, grain int) (*matrix.CSRG[V], error) {
	workers := opt.workers()
	if workers > a.Rows && a.Rows > 0 {
		workers = a.Rows
	}
	if workers < 1 {
		workers = 1
	}
	ctx := opt.ctx()
	ctx.ensureWorkers(workers)
	pt := startPhases(opt.Stats, workers)
	flopRow := ctx.perRowFlop(a, b)
	pt.tick(PhasePartition)

	bufCols := make([][]int32, workers)
	bufVals := make([][]V, workers)
	rowNnz := ctx.rowNnzBuf(a.Rows)
	rowWorker := make([]int32, a.Rows)
	rowOffset := make([]int64, a.Rows)

	ctx.parallelFor("numeric", workers, a.Rows, schedule, grain, func(w, lo, hi int) {
		h := ctx.mergeHeap(w, 8)
		sw := ctx.workerScratch(w)
		var rowCols []int32
		var rowVals []V
		for i := lo; i < hi; i++ {
			f := flopRow[i]
			if int64(cap(rowCols)) < f {
				rowCols = sw.EnsureInt32A(int(f))
				rowVals = ctx.valScratchA(w, int(f))
			}
			n := heapRow(ring, a, b, i, h, rowCols[:f], rowVals[:f])
			rowNnz[i] = int64(n)
			rowWorker[i] = int32(w)
			rowOffset[i] = int64(len(bufCols[w]))
			bufCols[w] = append(bufCols[w], rowCols[:n]...)
			bufVals[w] = append(bufVals[w], rowVals[:n]...)
		}
		if ws := pt.worker(w); ws != nil {
			// The heap is chunk-local under dynamic/guided schedules, so
			// its cumulative count is added, not assigned.
			ws.Rows += int64(hi - lo)
			ws.Flop += rangeFlop(flopRow, lo, hi)
			ws.HeapPushes += h.Pushes()
		}
	})
	pt.tick(PhaseNumeric)

	rowPtr := ctx.prefixSum(rowNnz, nil, workers)
	c := outputShell[V](a.Rows, b.Cols, rowPtr, true)
	pt.tick(PhaseAlloc)
	ctx.parallelFor("assemble", workers, a.Rows, sched.Static, 1, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			src := rowWorker[i]
			off := rowOffset[i]
			n := rowNnz[i]
			copy(c.ColIdx[rowPtr[i]:rowPtr[i]+n], bufCols[src][off:off+n])
			copy(c.Val[rowPtr[i]:rowPtr[i]+n], bufVals[src][off:off+n])
		}
	})
	pt.tick(PhaseAssemble)
	pt.finish()
	return c, nil
}
