package spgemm

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/matrix"
	"repro/internal/sched"
	"repro/internal/semiring"
)

var errMismatch = errors.New("result mismatch")

// csrEqual reports whether two matrices are bit-identical (same structure,
// same value bytes, same Sorted flag).
func csrEqual(a, b *matrix.CSR) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols || a.Sorted != b.Sorted {
		return false
	}
	if len(a.RowPtr) != len(b.RowPtr) || len(a.ColIdx) != len(b.ColIdx) || len(a.Val) != len(b.Val) {
		return false
	}
	for i := range a.RowPtr {
		if a.RowPtr[i] != b.RowPtr[i] {
			return false
		}
	}
	for i := range a.ColIdx {
		if a.ColIdx[i] != b.ColIdx[i] {
			return false
		}
	}
	for i := range a.Val {
		if a.Val[i] != b.Val[i] {
			return false
		}
	}
	return true
}

// TestContextReuseMatchesOneShot drives every algorithm through one shared
// Context over a sequence of products with varying shapes and checks each
// result is bit-identical to a fresh one-shot call: cached state growing,
// shrinking and re-resetting must never leak into the output.
func TestContextReuseMatchesOneShot(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	type pair struct{ a, b *matrix.CSR }
	var seq []pair
	for _, dims := range [][3]int{{60, 50, 40}, {200, 180, 190}, {12, 15, 9}, {200, 180, 190}} {
		a := matrix.Random(dims[0], dims[1], 0.06, rng)
		b := matrix.Random(dims[1], dims[2], 0.06, rng)
		seq = append(seq, pair{a, b})
	}
	for _, tc := range allAlgorithms {
		t.Run(tc.alg.String(), func(t *testing.T) {
			ctx := NewContext()
			for round, p := range seq {
				opt := Options{Algorithm: tc.alg, Workers: 3, Context: ctx}
				got, err := Multiply(p.a, p.b, &opt)
				if err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
				fresh := Options{Algorithm: tc.alg, Workers: 3}
				want, err := Multiply(p.a, p.b, &fresh)
				if err != nil {
					t.Fatalf("round %d fresh: %v", round, err)
				}
				if !csrEqual(got, want) {
					t.Fatalf("round %d: context result differs from one-shot", round)
				}
			}
		})
	}
}

// TestContextReuseMaskedAndSemiring exercises the generic two-phase path
// (which owns the ctx-aware accumulator factories) with a mask and with a
// non-default semiring through the same reused Context.
func TestContextReuseMaskedAndSemiring(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := matrix.Random(80, 70, 0.08, rng)
	b := matrix.Random(70, 60, 0.08, rng)
	mask := matrix.Random(80, 60, 0.3, rng)
	ctx := NewContext()
	for round := 0; round < 3; round++ {
		got, err := Multiply(a, b, &Options{Algorithm: AlgHash, Workers: 2, Mask: mask, Context: ctx})
		if err != nil {
			t.Fatal(err)
		}
		want, err := Multiply(a, b, &Options{Algorithm: AlgHash, Workers: 2, Mask: mask})
		if err != nil {
			t.Fatal(err)
		}
		if !csrEqual(got, want) {
			t.Fatalf("round %d: masked context result differs", round)
		}
		sr := semiring.MinPlus()
		got, err = Multiply(a, b, &Options{Algorithm: AlgHash, Workers: 2, Semiring: sr, Context: ctx})
		if err != nil {
			t.Fatal(err)
		}
		want, err = Multiply(a, b, &Options{Algorithm: AlgHash, Workers: 2, Semiring: sr})
		if err != nil {
			t.Fatal(err)
		}
		if !csrEqual(got, want) {
			t.Fatalf("round %d: semiring context result differs", round)
		}
	}
}

// TestContextConcurrentDistinct runs concurrent Multiply calls, each with its
// own Context, sharing nothing but the default worker pool. Run under -race
// in CI; any accidental sharing of cached state would be flagged.
func TestContextConcurrentDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := matrix.Random(150, 150, 0.05, rng)
	want, err := Multiply(a, a, &Options{Algorithm: AlgHash, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx := NewContext()
			for round := 0; round < 4; round++ {
				got, err := Multiply(a, a, &Options{Algorithm: AlgHash, Workers: 2, Context: ctx})
				if err != nil {
					errs[g] = err
					return
				}
				if !csrEqual(got, want) {
					errs[g] = errMismatch
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
}

// TestContextWithDedicatedPool checks a caller-managed sched.Pool carried by
// the Context produces identical results.
func TestContextWithDedicatedPool(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := matrix.Random(120, 120, 0.05, rng)
	pool := sched.NewPool(3)
	defer pool.Close()
	ctx := NewContext()
	ctx.Pool = pool
	got, err := Multiply(a, a, &Options{Algorithm: AlgHashVec, Workers: 3, Context: ctx})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Multiply(a, a, &Options{Algorithm: AlgHashVec, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !csrEqual(got, want) {
		t.Fatal("dedicated-pool result differs")
	}
}

// TestContextStatsPerCall checks that ExecStats counters through a reused
// Context stay per-call (cached accumulators must not leak lifetime counters
// into later calls' stats).
func TestContextStatsPerCall(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := matrix.Random(100, 100, 0.05, rng)
	ctx := NewContext()
	var first, second ExecStats
	if _, err := Multiply(a, a, &Options{Algorithm: AlgHash, Workers: 2, Context: ctx, Stats: &first}); err != nil {
		t.Fatal(err)
	}
	if _, err := Multiply(a, a, &Options{Algorithm: AlgHash, Workers: 2, Context: ctx, Stats: &second}); err != nil {
		t.Fatal(err)
	}
	var l1, l2 int64
	for _, w := range first.Workers {
		l1 += w.HashLookups
	}
	for _, w := range second.Workers {
		l2 += w.HashLookups
	}
	if l1 == 0 {
		t.Fatal("no lookups recorded on first call")
	}
	if l1 != l2 {
		t.Fatalf("lookup counters not per-call: first %d, second %d", l1, l2)
	}
}
