package difftest

import (
	"fmt"
	"math"

	"repro/internal/matrix"
	"repro/internal/semiring"
	"repro/internal/spgemm"
)

// Ring-differential harness: every kernel, cross-checked against the
// NaiveMultiplyRing oracle over every shipped semiring and value type.
//
// The predicate here is deliberately stricter than the float64 Equivalent:
// under a general semiring there is no notion of "explicit zeros may be
// dropped" — the output contract is that an entry exists iff at least one
// intermediate product landed on its position (min-plus keeps +Inf entries;
// plus-times keeps exact cancellations). So after sorting rows, got must
// match the oracle's structure entry-for-entry, with values compared by a
// per-type closeness function (exact for bool and the integer rings, a
// small relative tolerance for the float rings, whose kernels may fold
// contributions in a different association order than the oracle).

// EquivalentRing verifies got against the ring oracle result want: the
// structural InvariantsG, identical shape, exact entry structure after
// row-sorting a copy (no compaction), and per-entry value closeness.
func EquivalentRing[V semiring.Value](got, want *matrix.CSRG[V], close func(x, y V) bool) error {
	if err := InvariantsG(got); err != nil {
		return err
	}
	if got.Rows != want.Rows || got.Cols != want.Cols {
		return fmt.Errorf("shape %dx%d, want %dx%d", got.Rows, got.Cols, want.Rows, want.Cols)
	}
	g := got
	if !g.Sorted || !g.IsSortedRows() {
		g = got.Clone()
		g.SortRows()
	}
	for i := 0; i <= g.Rows; i++ {
		if g.RowPtr[i] != want.RowPtr[i] {
			return fmt.Errorf("RowPtr[%d]=%d, want %d (entries dropped or fabricated)", i, g.RowPtr[i], want.RowPtr[i])
		}
	}
	for p := range want.ColIdx {
		if g.ColIdx[p] != want.ColIdx[p] {
			return fmt.Errorf("ColIdx[%d]=%d, want %d", p, g.ColIdx[p], want.ColIdx[p])
		}
		if !close(g.Val[p], want.Val[p]) {
			return fmt.Errorf("Val[%d]=%v, want %v", p, g.Val[p], want.Val[p])
		}
	}
	return nil
}

// CheckRing multiplies a·b over ring with the given algorithm and verifies
// the result against NaiveMultiplyRing via EquivalentRing. Like Check,
// algorithms that require sorted input rows are expected to reject unsorted
// B with an error.
func CheckRing[V semiring.Value, R semiring.Ring[V]](caseName string, ring R, a, b *matrix.CSRG[V], alg spgemm.Algorithm, unsorted bool, workers int, close func(x, y V) bool) error {
	opt := &spgemm.OptionsG[V]{Algorithm: alg, Unsorted: unsorted, Workers: workers}
	got, err := spgemm.MultiplyRing(ring, a, b, opt)
	if err != nil {
		if spgemm.RequiresSortedInput(alg) && !b.Sorted {
			return nil // documented rejection, not a defect
		}
		return fmt.Errorf("%s/%v unsorted=%v workers=%d: %w", caseName, alg, unsorted, workers, err)
	}
	if spgemm.RequiresSortedInput(alg) && !b.Sorted {
		return fmt.Errorf("%s/%v: accepted unsorted input instead of rejecting it", caseName, alg)
	}
	want := matrix.NaiveMultiplyRing(ring, a, b)
	if err := EquivalentRing(got, want, close); err != nil {
		return fmt.Errorf("%s/%v unsorted=%v workers=%d: %w", caseName, alg, unsorted, workers, err)
	}
	if tc, hf := tinyTiles(alg); tc > 0 {
		fopt := &spgemm.OptionsG[V]{Algorithm: alg, Unsorted: unsorted, Workers: workers,
			TileCols: tc, TileHeavyFlop: hf, ShardStripes: tinyShards(alg)}
		forced, err := spgemm.MultiplyRing(ring, a, b, fopt)
		if err != nil {
			return fmt.Errorf("%s/%v tiny-tiles unsorted=%v workers=%d: %w", caseName, alg, unsorted, workers, err)
		}
		if err := EquivalentRing(forced, want, close); err != nil {
			return fmt.Errorf("%s/%v tiny-tiles unsorted=%v workers=%d: %w", caseName, alg, unsorted, workers, err)
		}
	}
	return nil
}

// Value-closeness predicates for EquivalentRing.

// ExactEq is bit equality — the right predicate for bool and integer rings,
// whose operations are exact and order-independent.
func ExactEq[V semiring.Value](x, y V) bool { return x == y }

// ApproxF64 compares float64 values with relative tolerance Tol, treating
// same-signed infinities as equal (min-plus unreachable entries).
func ApproxF64(x, y float64) bool {
	if x == y {
		return true
	}
	d := math.Abs(x - y)
	scale := math.Max(1, math.Max(math.Abs(x), math.Abs(y)))
	return d <= Tol*scale
}

// TolF32 is the float32 analogue of Tol: float32 has ~7 significant digits,
// so reassociated sums diverge many orders of magnitude sooner.
const TolF32 = 1e-4

// ApproxF32 compares float32 values with relative tolerance TolF32.
func ApproxF32(x, y float32) bool {
	if x == y {
		return true
	}
	xf, yf := float64(x), float64(y)
	d := math.Abs(xf - yf)
	scale := math.Max(1, math.Max(math.Abs(xf), math.Abs(yf)))
	return d <= TolF32*scale
}

// Ring-view constructors: each maps the float64 differential Case inputs
// into a value type suited to one ring, so the whole Cases suite (including
// the degenerate shapes) exercises every instantiation.

// AsF32 converts to float32 values.
func AsF32(m *matrix.CSR) *matrix.CSRG[float32] {
	return matrix.MapValues(m, func(v float64) float32 { return float32(v) })
}

// AsBool converts to the boolean pattern.
func AsBool(m *matrix.CSR) *matrix.CSRG[bool] {
	return matrix.MapValues(m, func(v float64) bool { return v != 0 })
}

// AsI64 converts to small integer weights (round toward a [-3,3] range, so
// products and sums stay far from overflow while zeros still occur).
func AsI64(m *matrix.CSR) *matrix.CSRG[int64] {
	return matrix.MapValues(m, func(v float64) int64 { return int64(math.Round(v * 3)) })
}

// AsMinPlus converts to min-plus path weights: non-negative, with values
// above a threshold pinned to +Inf so unreachable (Zero-valued) output
// entries are common — the structure-preservation hazard of min-plus.
func AsMinPlus(m *matrix.CSR) *matrix.CSR {
	return matrix.MapValues(m, func(v float64) float64 {
		av := math.Abs(v)
		if av > 1.2 {
			return math.Inf(1)
		}
		return av
	})
}
