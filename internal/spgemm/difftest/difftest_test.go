package difftest

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/matrix"
	"repro/internal/spgemm"
)

// TestDifferentialSuite cross-checks every algorithm against the oracle over
// the full generated suite, with sorted and unsorted output requests and
// both serial and parallel worker counts. Runs cleanly under -race: worker
// counters and phase timers must not introduce data races.
func TestDifferentialSuite(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, c := range Cases(rng) {
		for _, alg := range Algorithms {
			for _, unsorted := range []bool{false, true} {
				for _, workers := range []int{1, 4} {
					if err := Check(c, alg, unsorted, workers); err != nil {
						t.Error(err)
					}
				}
			}
		}
	}
}

// TestDifferentialWithStats repeats a slice of the suite with ExecStats
// enabled, so the instrumented paths (not just the nil-Stats fast paths) are
// exercised under -race.
func TestDifferentialWithStats(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, c := range Cases(rng) {
		for _, alg := range Algorithms {
			var st spgemm.ExecStats
			opt := &spgemm.Options{Algorithm: alg, Workers: 4, Stats: &st}
			got, err := spgemm.Multiply(c.A, c.B, opt)
			if err != nil {
				if spgemm.RequiresSortedInput(alg) && !c.B.Sorted {
					continue
				}
				t.Fatalf("%s/%v: %v", c.Name, alg, err)
			}
			if err := Equivalent(got, matrix.NaiveMultiply(c.A, c.B)); err != nil {
				t.Errorf("%s/%v: %v", c.Name, alg, err)
			}
			if st.Algorithm == spgemm.AlgAuto {
				t.Errorf("%s/%v: Stats.Algorithm not resolved past AlgAuto", c.Name, alg)
			}
		}
	}
}

// TestAutoSucceedsOnEverySortednessCombination is the acceptance criterion
// of the recipe bugfix: Multiply with AlgAuto must succeed — never "requires
// sorted input rows" — for every (sorted, unsorted) combination of A and B.
func TestAutoSucceedsOnEverySortednessCombination(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := gen.ER(7, 4, rng)
	gu := gen.Unsorted(g, rng)
	want := matrix.NaiveMultiply(g, g)
	for _, a := range []*matrix.CSR{g, gu} {
		for _, b := range []*matrix.CSR{g, gu} {
			for _, unsorted := range []bool{false, true} {
				got, err := spgemm.Multiply(a, b, &spgemm.Options{Algorithm: spgemm.AlgAuto, Unsorted: unsorted})
				if err != nil {
					t.Fatalf("AlgAuto a.Sorted=%v b.Sorted=%v unsorted=%v: %v", a.Sorted, b.Sorted, unsorted, err)
				}
				if err := Equivalent(got, want); err != nil {
					t.Errorf("AlgAuto a.Sorted=%v b.Sorted=%v unsorted=%v: %v", a.Sorted, b.Sorted, unsorted, err)
				}
			}
		}
	}
}

// TestOutputContract pins the documented explicit-zero / duplicate-merge
// contract with hand-built inputs, through the same canonical predicate the
// whole harness uses.
func TestOutputContract(t *testing.T) {
	// Duplicate COO entries collapse before the multiply; the product of the
	// merged matrix is what every algorithm must return.
	dup := matrix.NewCOO(2, 2)
	dup.Append(0, 0, 1)
	dup.Append(0, 0, 2) // merges to 3
	dup.Append(1, 1, 5)
	a := dup.ToCSR()
	if a.NNZ() != 2 {
		t.Fatalf("COO duplicate merge: nnz = %d, want 2", a.NNZ())
	}

	// Cancellation: row [3 -3] times equal columns gives exact zero; the
	// predicate accepts algorithms that keep it explicitly and ones that drop
	// it.
	cancel := matrix.NewCOO(1, 2)
	cancel.Append(0, 0, 3)
	cancel.Append(0, 1, -3)
	ones := matrix.NewCOO(2, 2)
	ones.Append(0, 0, 1)
	ones.Append(0, 1, 1)
	ones.Append(1, 0, 1)
	ones.Append(1, 1, 1)
	ca, cb := cancel.ToCSR(), ones.ToCSR()
	want := matrix.NaiveMultiply(ca, cb)

	for _, alg := range Algorithms {
		got, err := spgemm.Multiply(a, a, &spgemm.Options{Algorithm: alg})
		if err != nil {
			t.Fatalf("%v dup: %v", alg, err)
		}
		if err := Equivalent(got, matrix.NaiveMultiply(a, a)); err != nil {
			t.Errorf("%v dup: %v", alg, err)
		}
		got, err = spgemm.Multiply(ca, cb, &spgemm.Options{Algorithm: alg})
		if err != nil {
			t.Fatalf("%v cancel: %v", alg, err)
		}
		if err := Equivalent(got, want); err != nil {
			t.Errorf("%v cancel: %v", alg, err)
		}
	}
}

// TestInvariantsRejectsBadOutputs sanity-checks the predicate itself: a
// harness whose checker accepts anything proves nothing.
func TestInvariantsRejectsBadOutputs(t *testing.T) {
	good := &matrix.CSR{Rows: 2, Cols: 3, RowPtr: []int64{0, 2, 3},
		ColIdx: []int32{0, 2, 1}, Val: []float64{1, 2, 3}, Sorted: true}
	if err := Invariants(good); err != nil {
		t.Fatalf("good matrix rejected: %v", err)
	}
	bad := []*matrix.CSR{
		{Rows: 2, Cols: 3, RowPtr: []int64{0, 2}, ColIdx: []int32{0, 2}, Val: []float64{1, 2}},               // short RowPtr
		{Rows: 1, Cols: 3, RowPtr: []int64{0, 2}, ColIdx: []int32{0, 5}, Val: []float64{1, 2}},               // col out of range
		{Rows: 1, Cols: 3, RowPtr: []int64{0, 2}, ColIdx: []int32{1, 1}, Val: []float64{1, 2}},               // duplicate col
		{Rows: 1, Cols: 3, RowPtr: []int64{0, 2}, ColIdx: []int32{2, 0}, Val: []float64{1, 2}, Sorted: true}, // dishonest Sorted
		{Rows: 2, Cols: 3, RowPtr: []int64{0, 2, 1}, ColIdx: []int32{0, 1}, Val: []float64{1, 2}},            // non-monotone
		{Rows: 1, Cols: 3, RowPtr: []int64{0, 1}, ColIdx: []int32{0, 1}, Val: []float64{1, 2}},               // length mismatch
	}
	for i, m := range bad {
		if err := Invariants(m); err == nil {
			t.Errorf("bad matrix %d accepted", i)
		}
	}
	if matrix.EqualApprox(good, &matrix.CSR{Rows: 2, Cols: 3, RowPtr: []int64{0, 2, 3},
		ColIdx: []int32{0, 2, 1}, Val: []float64{1, 2, 4}, Sorted: true}, Tol) {
		t.Error("EqualApprox accepted differing values")
	}
}

// TestDifferentialContextReuse drives every algorithm over the whole suite
// through ONE shared Context per algorithm: cached accumulators and
// bookkeeping grown by one case must never corrupt the next (including the
// degenerate 0×0 and empty-row shapes).
func TestDifferentialContextReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	cases := Cases(rng)
	for _, alg := range Algorithms {
		ctx := spgemm.NewContext()
		for _, c := range cases {
			for _, unsorted := range []bool{false, true} {
				if err := CheckContext(c, alg, unsorted, 3, ctx); err != nil {
					t.Error(err)
				}
			}
		}
	}
}

// TestDifferentialSharded pins the sharded engine's bit-identity contract
// against AlgHash across the whole suite — all rings of inputs the suite
// generates, sorted and unsorted output, serial and parallel — including the
// out-of-core SpillSink repeat at toy scale (see CheckSharded).
func TestDifferentialSharded(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	dir := t.TempDir()
	for _, c := range Cases(rng) {
		for _, unsorted := range []bool{false, true} {
			for _, workers := range []int{1, 4} {
				if err := CheckSharded(c, unsorted, workers, dir); err != nil {
					t.Error(err)
				}
			}
		}
	}
}

// TestDifferentialPlanReuse runs the plan-reuse soundness check (repeated
// bit-identical executions, value perturbation, structural-staleness
// detection) for every plannable algorithm across the suite. The tiled
// algorithm runs under forced tiny tiles (see CheckPlan), so its cached
// split structure and per-execute value re-gather are covered too.
func TestDifferentialPlanReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	for _, alg := range []spgemm.Algorithm{spgemm.AlgHash, spgemm.AlgHashVec, spgemm.AlgTiled, spgemm.AlgSharded} {
		for _, c := range Cases(rng) {
			for _, unsorted := range []bool{false, true} {
				for _, workers := range []int{1, 4} {
					if err := CheckPlan(c, alg, unsorted, workers); err != nil {
						t.Error(err)
					}
				}
			}
		}
	}
}
