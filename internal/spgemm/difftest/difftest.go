// Package difftest is the randomized differential correctness harness for
// the SpGEMM implementations: every Algorithm is cross-checked against the
// sequential matrix.NaiveMultiply oracle over a suite of generated inputs
// (ER, G500, tall-skinny, and degenerate shapes, in sorted and unsorted row
// order), via one canonical equivalence predicate.
//
// # Output contract
//
// The contract every algorithm must satisfy, and that Equivalent encodes:
//
//   - Rows are compacted: within a row, each column index appears at most
//     once (duplicate intermediate products are merged by the accumulator).
//   - Explicit zeros are permitted: a cancellation (e.g. 1·x + (-1)·x) may be
//     kept as an explicit 0 entry or dropped; both representations are
//     equivalent. Structural positions therefore may differ between
//     algorithms, but never the represented values.
//   - The Sorted flag is honest: when the output's Sorted field is true, each
//     row's column indices are strictly increasing.
//   - RowPtr is monotone, starts at 0, and ends at len(ColIdx) == len(Val);
//     every column index is within [0, Cols).
//
// The package is a plain library so both `go test` (including -race) and the
// native fuzz target in this package's tests can share the generators and
// the predicate.
package difftest

import (
	"fmt"
	"math/rand"

	"repro/internal/gen"
	"repro/internal/matrix"
	"repro/internal/semiring"
	"repro/internal/spgemm"
)

// Tol is the relative/absolute tolerance of the canonical predicate. The
// oracle and the kernels sum identical products in different orders, so only
// rounding noise separates them.
const Tol = 1e-9

// Algorithms is every concrete algorithm the harness cross-checks, plus
// AlgAuto (whose recipe dispatch is itself under test).
var Algorithms = []spgemm.Algorithm{
	spgemm.AlgAuto,
	spgemm.AlgHash,
	spgemm.AlgHashVec,
	spgemm.AlgHeap,
	spgemm.AlgSPA,
	spgemm.AlgMKL,
	spgemm.AlgMKLInspector,
	spgemm.AlgKokkos,
	spgemm.AlgMerge,
	spgemm.AlgIKJ,
	spgemm.AlgBlockedSPA,
	spgemm.AlgESC,
	spgemm.AlgTiled,
	spgemm.AlgSharded,
}

// tinyTiles returns geometry overrides that force the tiled kernel's heavy
// (row, tile) path at suite scale: an 8-column tile with a heavy threshold
// of one flop routes essentially every non-empty row through column tiling.
// The analytic width (tens of thousands of columns) never triggers it on the
// small differential inputs, so without the override the suite would only
// cover the light path. The sharded engine reuses the same geometry as its
// column-split trigger, so it gets the same override.
func tinyTiles(alg spgemm.Algorithm) (tileCols int, heavyFlop int64) {
	if alg == spgemm.AlgTiled || alg == spgemm.AlgSharded {
		return 8, 1
	}
	return 0, 0
}

// tinyShards forces a multi-stripe cut for the sharded engine: the auto
// stripe count collapses to the worker floor on suite-scale inputs, which
// would leave the stripe-boundary and merge logic single-stripe-trivial.
func tinyShards(alg spgemm.Algorithm) int {
	if alg == spgemm.AlgSharded {
		return 3
	}
	return 0
}

// Case is one input pair of the differential suite.
type Case struct {
	Name string
	A, B *matrix.CSR
}

// Cases generates the differential suite from rng: the paper's synthetic
// workload families at small scale plus the degenerate shapes that historically
// break SpGEMM implementations (empty matrices, zero dimensions, all-empty
// rows, duplicate-heavy COO inputs, exact cancellations) — each also in
// unsorted-row form where meaningful.
func Cases(rng *rand.Rand) []Case {
	er := gen.ER(6, 4, rng)
	g500 := gen.RMAT(6, 8, gen.G500Params, rng)
	ts := gen.TallSkinny(er, 3, rng)

	cases := []Case{
		{Name: "er-squared", A: er, B: er},
		{Name: "g500-squared", A: g500, B: g500},
		{Name: "er-tallskinny", A: er, B: ts},
		{Name: "er-unsortedB", A: er, B: gen.Unsorted(er, rng)},
		{Name: "er-unsortedAB", A: gen.Unsorted(er, rng), B: gen.Unsorted(er, rng)},
		{Name: "g500-unsortedB", A: g500, B: gen.Unsorted(g500, rng)},
	}

	// Degenerate shapes: 0×0, zero inner dimension, zero output columns, and
	// a matrix with no entries at all.
	empty0 := matrix.NewCOO(0, 0).ToCSR()
	cases = append(cases,
		Case{Name: "0x0", A: empty0, B: empty0},
		Case{Name: "inner-dim-0", A: matrix.NewCOO(4, 0).ToCSR(), B: matrix.NewCOO(0, 5).ToCSR()},
		Case{Name: "zero-cols-out", A: randomCSR(rng, 5, 4, 8), B: matrix.NewCOO(4, 0).ToCSR()},
		Case{Name: "all-empty-rows", A: matrix.NewCOO(8, 8).ToCSR(), B: randomCSR(rng, 8, 8, 12)},
		Case{Name: "empty-times-empty", A: matrix.NewCOO(6, 7).ToCSR(), B: matrix.NewCOO(7, 5).ToCSR()},
	)

	// Duplicate-merged input: COO with many repeated coordinates, so ToCSR
	// exercises the duplicate-merge path before the multiply does.
	dup := matrix.NewCOO(16, 16)
	for e := 0; e < 200; e++ {
		dup.Append(int32(rng.Intn(16)), int32(rng.Intn(16)), 1-rng.Float64())
	}
	dupCSR := dup.ToCSR()
	cases = append(cases,
		Case{Name: "duplicate-merged", A: dupCSR, B: dupCSR},
		Case{Name: "duplicate-merged-unsorted", A: dupCSR, B: gen.Unsorted(dupCSR, rng)},
	)

	// Exact cancellation: A = [1 -1] meeting equal rows of B produces a zero
	// that algorithms may keep explicitly or drop; both must pass.
	cancel := matrix.NewCOO(1, 2)
	cancel.Append(0, 0, 1)
	cancel.Append(0, 1, -1)
	ones := matrix.NewCOO(2, 3)
	for j := int32(0); j < 3; j++ {
		ones.Append(0, j, 1)
		ones.Append(1, j, 1)
	}
	cases = append(cases, Case{Name: "cancellation", A: cancel.ToCSR(), B: ones.ToCSR()})

	// Sparse rectangular with interleaved empty rows.
	cases = append(cases, Case{Name: "ragged-rect", A: randomCSR(rng, 31, 17, 40), B: randomCSR(rng, 17, 23, 30)})

	return cases
}

// randomCSR builds a rows×cols matrix with about nnz uniform entries
// (duplicates merged), leaving some rows empty by construction.
func randomCSR(rng *rand.Rand, rows, cols, nnz int) *matrix.CSR {
	coo := matrix.NewCOO(rows, cols)
	if rows > 0 && cols > 0 {
		for e := 0; e < nnz; e++ {
			coo.Append(int32(rng.Intn(rows)), int32(rng.Intn(cols)), rng.NormFloat64())
		}
	}
	return coo.ToCSR()
}

// Invariants verifies the structural output contract of a CSR result (see
// the package comment): consistent RowPtr, in-range columns, no duplicate
// columns within a row, and an honest Sorted flag.
func Invariants(c *matrix.CSR) error { return InvariantsG(c) }

// InvariantsG is Invariants over any value type — the contract is purely
// structural, so one implementation serves every CSRG instantiation.
func InvariantsG[V semiring.Value](c *matrix.CSRG[V]) error {
	if len(c.RowPtr) != c.Rows+1 {
		return fmt.Errorf("RowPtr length %d, want Rows+1 = %d", len(c.RowPtr), c.Rows+1)
	}
	if c.RowPtr[0] != 0 {
		return fmt.Errorf("RowPtr[0] = %d, want 0", c.RowPtr[0])
	}
	for i := 0; i < c.Rows; i++ {
		if c.RowPtr[i+1] < c.RowPtr[i] {
			return fmt.Errorf("RowPtr not monotone at row %d: %d > %d", i, c.RowPtr[i], c.RowPtr[i+1])
		}
	}
	if n := c.RowPtr[c.Rows]; int(n) != len(c.ColIdx) || int(n) != len(c.Val) {
		return fmt.Errorf("RowPtr end %d disagrees with len(ColIdx)=%d len(Val)=%d", n, len(c.ColIdx), len(c.Val))
	}
	seen := make(map[int32]struct{})
	for i := 0; i < c.Rows; i++ {
		lo, hi := c.RowPtr[i], c.RowPtr[i+1]
		clear(seen)
		for p := lo; p < hi; p++ {
			col := c.ColIdx[p]
			if col < 0 || int(col) >= c.Cols {
				return fmt.Errorf("row %d: column %d out of range [0,%d)", i, col, c.Cols)
			}
			if _, dup := seen[col]; dup {
				return fmt.Errorf("row %d: duplicate column %d (rows must be compacted)", i, col)
			}
			seen[col] = struct{}{}
			if c.Sorted && p > lo && c.ColIdx[p-1] >= col {
				return fmt.Errorf("row %d: Sorted=true but columns not strictly increasing at %d", i, p)
			}
		}
	}
	return nil
}

// Equivalent is the canonical equality predicate of the differential
// harness: got must satisfy the structural Invariants and represent the same
// matrix as want up to Tol, with explicit zeros and entry order ignored
// (matrix.EqualApprox canonicalizes both sides).
func Equivalent(got, want *matrix.CSR) error {
	if err := Invariants(got); err != nil {
		return err
	}
	if got.Rows != want.Rows || got.Cols != want.Cols {
		return fmt.Errorf("shape %dx%d, want %dx%d", got.Rows, got.Cols, want.Rows, want.Cols)
	}
	if !matrix.EqualApprox(got, want, Tol) {
		return fmt.Errorf("values differ from oracle beyond tol=%g", Tol)
	}
	return nil
}

// Check multiplies c.A·c.B with the given algorithm and options and verifies
// the result against the NaiveMultiply oracle. Algorithms that require sorted
// input rows are expected to reject unsorted B with an error — a wrong
// result, or a sorted-only algorithm chosen by AlgAuto for unsorted input,
// is a failure.
func Check(c Case, alg spgemm.Algorithm, unsorted bool, workers int) error {
	opt := &spgemm.Options{Algorithm: alg, Unsorted: unsorted, Workers: workers}
	got, err := spgemm.Multiply(c.A, c.B, opt)
	if err != nil {
		if spgemm.RequiresSortedInput(alg) && !c.B.Sorted {
			return nil // documented rejection, not a defect
		}
		return fmt.Errorf("%s/%v unsorted=%v workers=%d: %w", c.Name, alg, unsorted, workers, err)
	}
	if spgemm.RequiresSortedInput(alg) && !c.B.Sorted {
		return fmt.Errorf("%s/%v: accepted unsorted input instead of rejecting it", c.Name, alg)
	}
	want := matrix.NaiveMultiply(c.A, c.B)
	if err := Equivalent(got, want); err != nil {
		return fmt.Errorf("%s/%v unsorted=%v workers=%d: %w", c.Name, alg, unsorted, workers, err)
	}
	if tc, hf := tinyTiles(alg); tc > 0 {
		fopt := &spgemm.Options{Algorithm: alg, Unsorted: unsorted, Workers: workers,
			TileCols: tc, TileHeavyFlop: hf, ShardStripes: tinyShards(alg)}
		forced, err := spgemm.Multiply(c.A, c.B, fopt)
		if err != nil {
			return fmt.Errorf("%s/%v tiny-tiles unsorted=%v workers=%d: %w", c.Name, alg, unsorted, workers, err)
		}
		if err := Equivalent(forced, want); err != nil {
			return fmt.Errorf("%s/%v tiny-tiles unsorted=%v workers=%d: %w", c.Name, alg, unsorted, workers, err)
		}
	}
	return nil
}

// identical reports whether two results are bit-identical: same shape, same
// Sorted flag, same row pointers, columns and value bytes. Stricter than
// Equivalent — used to pin down reusable-state paths (Context, Plan), which
// must reproduce the one-shot result exactly, not merely up to tolerance.
func identical(got, want *matrix.CSR) error {
	if got.Rows != want.Rows || got.Cols != want.Cols || got.Sorted != want.Sorted {
		return fmt.Errorf("shape/sortedness differ: %dx%d sorted=%v vs %dx%d sorted=%v",
			got.Rows, got.Cols, got.Sorted, want.Rows, want.Cols, want.Sorted)
	}
	for i := range want.RowPtr {
		if got.RowPtr[i] != want.RowPtr[i] {
			return fmt.Errorf("RowPtr[%d] = %d, want %d", i, got.RowPtr[i], want.RowPtr[i])
		}
	}
	if len(got.ColIdx) != len(want.ColIdx) {
		return fmt.Errorf("nnz %d, want %d", len(got.ColIdx), len(want.ColIdx))
	}
	for i := range want.ColIdx {
		if got.ColIdx[i] != want.ColIdx[i] {
			return fmt.Errorf("ColIdx[%d] = %d, want %d", i, got.ColIdx[i], want.ColIdx[i])
		}
		if got.Val[i] != want.Val[i] {
			return fmt.Errorf("Val[%d] = %v, want %v", i, got.Val[i], want.Val[i])
		}
	}
	return nil
}

// CheckSharded pins the sharded engine's identity contract against AlgHash
// over one case, under forced tiny stripe/column-split geometry: sorted
// output must be bit-identical to the hash engine's (the AlgSharded
// acceptance criterion), unsorted output set-equivalent via the oracle. The
// same comparison then repeats through an out-of-core SpillSink whose budget
// is far below the output size, so the spill/admission/mmap path at toy
// scale produces the very same bytes. spillDir hosts the temp spill files.
func CheckSharded(c Case, unsorted bool, workers int, spillDir string) error {
	hash, err := spgemm.Multiply(c.A, c.B, &spgemm.Options{Algorithm: spgemm.AlgHash, Unsorted: unsorted, Workers: workers})
	if err != nil {
		return fmt.Errorf("%s/hash unsorted=%v: %w", c.Name, unsorted, err)
	}
	want := matrix.NaiveMultiply(c.A, c.B)
	opt := &spgemm.Options{Algorithm: spgemm.AlgSharded, Unsorted: unsorted, Workers: workers,
		ShardStripes: 3, TileCols: 8, TileHeavyFlop: 1}
	got, err := spgemm.Multiply(c.A, c.B, opt)
	if err != nil {
		return fmt.Errorf("%s/sharded unsorted=%v workers=%d: %w", c.Name, unsorted, workers, err)
	}
	if err := Equivalent(got, want); err != nil {
		return fmt.Errorf("%s/sharded unsorted=%v workers=%d: %w", c.Name, unsorted, workers, err)
	}
	if !unsorted {
		if err := identical(got, hash); err != nil {
			return fmt.Errorf("%s/sharded not bit-identical to hash (workers=%d): %w", c.Name, workers, err)
		}
	}

	// Out-of-core repeat: resident budget a quarter of the output entries.
	budget := got.NNZ() * 12 / 4
	if budget < 64 {
		budget = 64
	}
	sink := spgemm.NewSpillSink[float64](spillDir, budget)
	defer sink.Close()
	var st spgemm.ExecStats
	sopt := *opt
	sopt.ShardSink = sink
	sopt.Stats = &st
	spilled, err := spgemm.Multiply(c.A, c.B, &sopt)
	if err != nil {
		return fmt.Errorf("%s/sharded-spill unsorted=%v: %w", c.Name, unsorted, err)
	}
	if err := Equivalent(spilled, want); err != nil {
		return fmt.Errorf("%s/sharded-spill unsorted=%v: %w", c.Name, unsorted, err)
	}
	if !unsorted {
		if err := identical(spilled, hash); err != nil {
			return fmt.Errorf("%s/sharded-spill not bit-identical to hash: %w", c.Name, err)
		}
	}
	// Peak resident stripe bytes stay under budget — except when one stripe
	// alone exceeds it, where admission degrades to serial spilling and the
	// bound is that stripe's own footprint.
	allowed := budget
	for _, s := range st.Stripes {
		if !s.Spilled {
			return fmt.Errorf("%s/sharded-spill: stripe [%d,%d) not marked spilled", c.Name, s.Lo, s.Hi)
		}
		if need := s.Nnz * 12; need > allowed {
			allowed = need
		}
	}
	if peak := sink.PeakResident(); peak > allowed {
		return fmt.Errorf("%s/sharded-spill: peak resident %d over bound %d (budget %d)", c.Name, peak, allowed, budget)
	}
	return nil
}

// CheckContext is Check through a caller-supplied reusable Context: the
// result must satisfy the oracle predicate exactly like a one-shot call, and
// for deterministic (sorted-output) calls must be bit-identical to one.
// Passing the same ctx across many calls is the point — cached state from
// one case must never leak into the next.
func CheckContext(c Case, alg spgemm.Algorithm, unsorted bool, workers int, ctx *spgemm.Context) error {
	opt := &spgemm.Options{Algorithm: alg, Unsorted: unsorted, Workers: workers, Context: ctx}
	got, err := spgemm.Multiply(c.A, c.B, opt)
	if err != nil {
		if spgemm.RequiresSortedInput(alg) && !c.B.Sorted {
			return nil
		}
		return fmt.Errorf("%s/%v ctx unsorted=%v workers=%d: %w", c.Name, alg, unsorted, workers, err)
	}
	want := matrix.NaiveMultiply(c.A, c.B)
	if err := Equivalent(got, want); err != nil {
		return fmt.Errorf("%s/%v ctx unsorted=%v workers=%d: %w", c.Name, alg, unsorted, workers, err)
	}
	if !unsorted {
		oneShot := &spgemm.Options{Algorithm: alg, Workers: workers}
		fresh, err := spgemm.Multiply(c.A, c.B, oneShot)
		if err != nil {
			return fmt.Errorf("%s/%v one-shot: %w", c.Name, alg, err)
		}
		if fresh.Sorted { // map-backed baselines emit nondeterministic order pre-sort only
			if err := identical(got, fresh); err != nil {
				return fmt.Errorf("%s/%v ctx result not bit-identical to one-shot: %w", c.Name, alg, err)
			}
		}
	}
	if tc, hf := tinyTiles(alg); tc > 0 {
		fopt := &spgemm.Options{Algorithm: alg, Unsorted: unsorted, Workers: workers, Context: ctx,
			TileCols: tc, TileHeavyFlop: hf, ShardStripes: tinyShards(alg)}
		forced, err := spgemm.Multiply(c.A, c.B, fopt)
		if err != nil {
			return fmt.Errorf("%s/%v ctx tiny-tiles: %w", c.Name, alg, err)
		}
		if err := Equivalent(forced, want); err != nil {
			return fmt.Errorf("%s/%v ctx tiny-tiles: %w", c.Name, alg, err)
		}
		if !unsorted {
			oneShot := &spgemm.Options{Algorithm: alg, Workers: workers,
				TileCols: tc, TileHeavyFlop: hf, ShardStripes: tinyShards(alg)}
			fresh, err := spgemm.Multiply(c.A, c.B, oneShot)
			if err != nil {
				return fmt.Errorf("%s/%v tiny-tiles one-shot: %w", c.Name, alg, err)
			}
			if err := identical(forced, fresh); err != nil {
				return fmt.Errorf("%s/%v ctx tiny-tiles result not bit-identical to one-shot: %w", c.Name, alg, err)
			}
		}
	}
	return nil
}

// CheckPlan builds a Plan for c.A·c.B, executes it repeatedly (perturbing
// values between rounds), and verifies every execution is bit-identical to a
// fresh Multiply with the same options — the plan-reuse soundness criterion.
// It then perturbs B's structure and verifies the fingerprint rejects the
// plan.
func CheckPlan(c Case, alg spgemm.Algorithm, unsorted bool, workers int) error {
	opt := &spgemm.Options{Algorithm: alg, Unsorted: unsorted, Workers: workers, Context: spgemm.NewContext()}
	// For the tiled and sharded algorithms, force tiny geometry so the plan's
	// cached split structure, unit bookkeeping and per-execute value re-gather
	// are all exercised (the analytic geometry would make every suite row
	// light, and the auto stripe cut single-stripe-trivial).
	opt.TileCols, opt.TileHeavyFlop = tinyTiles(alg)
	opt.ShardStripes = tinyShards(alg)
	plan, err := spgemm.NewPlan(c.A, c.B, opt)
	if err != nil {
		return fmt.Errorf("%s/%v plan: %w", c.Name, alg, err)
	}
	for round := 0; round < 3; round++ {
		got, err := plan.Execute()
		if err != nil {
			return fmt.Errorf("%s/%v execute round %d: %w", c.Name, alg, round, err)
		}
		fresh, err := spgemm.Multiply(c.A, c.B, opt)
		if err != nil {
			return fmt.Errorf("%s/%v fresh round %d: %w", c.Name, alg, round, err)
		}
		if err := identical(got, fresh); err != nil {
			return fmt.Errorf("%s/%v round %d plan result not bit-identical: %w", c.Name, alg, round, err)
		}
		want := matrix.NaiveMultiply(c.A, c.B)
		if err := Equivalent(got, want); err != nil {
			return fmt.Errorf("%s/%v round %d vs oracle: %w", c.Name, alg, round, err)
		}
		for i := range c.B.Val {
			c.B.Val[i] *= 0.5
		}
	}
	// Structural perturbation must stale the plan.
	if len(c.B.ColIdx) > 0 && c.B.Cols > 1 {
		old := c.B.ColIdx[0]
		c.B.ColIdx[0] = (old + 1) % int32(c.B.Cols)
		if c.B.ColIdx[0] != old {
			if _, err := plan.Execute(); err == nil {
				return fmt.Errorf("%s/%v: structure change not detected by plan fingerprint", c.Name, alg)
			}
		}
		c.B.ColIdx[0] = old
	}
	return nil
}
