package difftest

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matrix"
	"repro/internal/semiring"
	"repro/internal/spgemm"
)

// TestDifferentialRings cross-checks every algorithm against the ring oracle
// over every shipped semiring instantiation, reusing the float64 Cases suite
// (degenerate shapes included) mapped into each value type.
func TestDifferentialRings(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for _, c := range Cases(rng) {
		for _, alg := range Algorithms {
			for _, unsorted := range []bool{false, true} {
				// plus-times float64 through the generic entry point: must
				// match the oracle exactly like the legacy path does.
				if err := CheckRing(c.Name+"/f64", semiring.PlusTimesF64{}, c.A, c.B, alg, unsorted, 3, ApproxF64); err != nil {
					t.Error(err)
				}
				if err := CheckRing(c.Name+"/f32", semiring.PlusTimesF32{}, AsF32(c.A), AsF32(c.B), alg, unsorted, 3, ApproxF32); err != nil {
					t.Error(err)
				}
				if err := CheckRing(c.Name+"/bool", semiring.OrAndBool{}, AsBool(c.A), AsBool(c.B), alg, unsorted, 3, ExactEq); err != nil {
					t.Error(err)
				}
				if err := CheckRing(c.Name+"/i64", semiring.PlusTimesI64{}, AsI64(c.A), AsI64(c.B), alg, unsorted, 3, ExactEq); err != nil {
					t.Error(err)
				}
				if err := CheckRing(c.Name+"/minplus", semiring.MinPlusF64{}, AsMinPlus(c.A), AsMinPlus(c.B), alg, unsorted, 3, ApproxF64); err != nil {
					t.Error(err)
				}
				if err := CheckRing(c.Name+"/maxtimes", semiring.MaxTimesF64{}, c.A, c.B, alg, unsorted, 3, ApproxF64); err != nil {
					t.Error(err)
				}
			}
		}
	}
}

// TestLegacySemiringAdapter pins the adapter contract: Multiply with a
// non-nil Options.Semiring routes through the semiring.Func adapter ring
// and must agree with (a) the same semiring evaluated by the oracle and
// (b) the monomorphized bool ring on the same pattern.
func TestLegacySemiringAdapter(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, c := range Cases(rng) {
		pa := matrix.MapValues(c.A, func(v float64) float64 {
			if v != 0 {
				return 1
			}
			return 0
		})
		pb := matrix.MapValues(c.B, func(v float64) float64 {
			if v != 0 {
				return 1
			}
			return 0
		})
		for _, alg := range Algorithms {
			legacy, err := spgemm.Multiply(pa, pb, &spgemm.Options{Algorithm: alg, Semiring: semiring.OrAnd()})
			if err != nil {
				if spgemm.RequiresSortedInput(alg) && !pb.Sorted {
					continue
				}
				t.Fatalf("%s/%v legacy semiring: %v", c.Name, alg, err)
			}
			want := matrix.NaiveMultiplyRing(semiring.Func{S: semiring.OrAnd()}, pa, pb)
			if err := EquivalentRing(legacy, want, ApproxF64); err != nil {
				t.Errorf("%s/%v legacy semiring vs oracle: %v", c.Name, alg, err)
			}
			// Same pattern through the monomorphized bool ring.
			boolGot, err := spgemm.MultiplyRing(semiring.OrAndBool{}, AsBool(c.A), AsBool(c.B), &spgemm.OptionsG[bool]{Algorithm: alg})
			if err != nil {
				t.Fatalf("%s/%v bool ring: %v", c.Name, alg, err)
			}
			boolWant := matrix.MapValues(want, func(v float64) bool { return v != 0 })
			if err := EquivalentRing(boolGot, boolWant, ExactEq); err != nil {
				t.Errorf("%s/%v bool ring vs legacy OrAnd pattern: %v", c.Name, alg, err)
			}
		}
	}
}

// legacyMSBFS is the pre-generics reference implementation of the MSBFS
// sweep: float64 frontier, func-pointer or-and semiring. Kept here as the
// oracle for the bool re-plumb of graph.MSBFS.
func legacyMSBFS(g *matrix.CSR, sources []int32, alg spgemm.Algorithm) ([][]int32, error) {
	n := g.Rows
	k := len(sources)
	inner := spgemm.Options{Algorithm: alg, Semiring: semiring.OrAnd(), Context: spgemm.NewContext()}
	at := g.Transpose()
	level := make([][]int32, n)
	for v := range level {
		row := make([]int32, k)
		for j := range row {
			row[j] = -1
		}
		level[v] = row
	}
	frontier := matrix.NewCOO(n, k)
	for j, s := range sources {
		frontier.Append(s, int32(j), 1)
		level[s][j] = 0
	}
	f := frontier.ToCSR()
	for depth := int32(1); f.NNZ() > 0; depth++ {
		next, err := spgemm.Multiply(at, f, &inner)
		if err != nil {
			return nil, err
		}
		nf := matrix.NewCOO(n, k)
		for v := 0; v < n; v++ {
			cols, _ := next.Row(v)
			for _, j := range cols {
				if level[v][j] < 0 {
					level[v][j] = depth
					nf.Append(int32(v), j, 1)
				}
			}
		}
		f = nf.ToCSR()
	}
	return level, nil
}

// TestMSBFSBoolMatchesLegacyFloat is the MSBFS-equivalence acceptance test:
// the bool-ring MSBFS must produce exactly the levels of the historical
// float64 or-and implementation on the same graph and sources.
func TestMSBFSBoolMatchesLegacyFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(2718))
	for _, build := range []struct {
		name string
		g    *matrix.CSR
	}{
		{"er", gen.ER(8, 6, rng)},
		{"g500", gen.RMAT(8, 10, gen.G500Params, rng)},
	} {
		sources := []int32{0, 3, 17, 63}
		for _, alg := range []spgemm.Algorithm{spgemm.AlgHash, spgemm.AlgHashVec} {
			got, err := graph.MSBFS(build.g, sources, &spgemm.Options{Algorithm: alg})
			if err != nil {
				t.Fatalf("%s/%v MSBFS: %v", build.name, alg, err)
			}
			want, err := legacyMSBFS(build.g, sources, alg)
			if err != nil {
				t.Fatalf("%s/%v legacy MSBFS: %v", build.name, alg, err)
			}
			for v := range want {
				for j := range want[v] {
					if got.Level[v][j] != want[v][j] {
						t.Fatalf("%s/%v: Level[%d][%d]=%d, want %d",
							build.name, alg, v, j, got.Level[v][j], want[v][j])
					}
				}
			}
		}
	}
}
