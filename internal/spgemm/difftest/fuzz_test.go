package difftest

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/matrix"
	"repro/internal/spgemm"
)

// FuzzMultiplyDifferential is the native fuzz entry: the fuzzer drives the
// shape, density, sortedness and algorithm choice, the harness builds the
// matrices deterministically from the seed and cross-checks against the
// oracle. Run with
//
//	go test -fuzz=FuzzMultiplyDifferential ./internal/spgemm/difftest
//
// The seed corpus covers each algorithm once, square and rectangular shapes,
// zero dimensions and unsorted inputs.
func FuzzMultiplyDifferential(f *testing.F) {
	f.Add(int64(1), uint8(8), uint8(8), uint8(8), uint8(16), uint8(0), false, false)
	f.Add(int64(2), uint8(16), uint8(4), uint8(32), uint8(40), uint8(1), true, false)
	f.Add(int64(3), uint8(0), uint8(0), uint8(0), uint8(0), uint8(3), false, false)
	f.Add(int64(4), uint8(9), uint8(0), uint8(7), uint8(5), uint8(4), false, true)
	for i := range Algorithms {
		f.Add(int64(100+i), uint8(12), uint8(12), uint8(12), uint8(30), uint8(i), true, true)
	}
	f.Fuzz(func(t *testing.T, seed int64, rowsA, inner, colsB, density, algPick uint8, shuffleB, unsortedOut bool) {
		rng := rand.New(rand.NewSource(seed))
		a := randomCSR(rng, int(rowsA)%64, int(inner)%64, int(density)*2)
		b := randomCSR(rng, int(inner)%64, int(colsB)%64, int(density)*2)
		if shuffleB && b.NNZ() > 0 {
			b = gen.Unsorted(b, rng)
		}
		alg := Algorithms[int(algPick)%len(Algorithms)]
		c := Case{Name: "fuzz", A: a, B: b}
		if err := Check(c, alg, unsortedOut, 1+int(seed%4)); err != nil {
			t.Fatal(err)
		}
	})
}

// TestFuzzSeedsDirect runs the fuzz body over a fixed sweep without the fuzz
// engine, so plain `go test` (and CI's -race pass) covers the same ground.
func TestFuzzSeedsDirect(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		rows := rng.Intn(48)
		inner := rng.Intn(48)
		cols := rng.Intn(48)
		a := randomCSR(rng, rows, inner, rng.Intn(120))
		b := randomCSR(rng, inner, cols, rng.Intn(120))
		if seed%3 == 1 && b.NNZ() > 0 {
			b = gen.Unsorted(b, rng)
		}
		c := Case{Name: "sweep", A: a, B: b}
		want := matrix.NaiveMultiply(a, b)
		for _, alg := range Algorithms {
			got, err := spgemm.Multiply(a, b, &spgemm.Options{Algorithm: alg, Workers: 1 + int(seed%4)})
			if err != nil {
				if spgemm.RequiresSortedInput(alg) && !b.Sorted {
					continue
				}
				t.Fatalf("seed %d %s/%v: %v", seed, c.Name, alg, err)
			}
			if err := Equivalent(got, want); err != nil {
				t.Errorf("seed %d %s/%v: %v", seed, c.Name, alg, err)
			}
		}
	}
}
