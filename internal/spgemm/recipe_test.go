package spgemm

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/matrix"
)

func TestEstimateCompressionRatioExactOnFullSample(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	a := matrix.Random(40, 40, 0.2, rng)
	st := matrix.ProductStats(a, a)
	got := EstimateCompressionRatio(a, a, a.Rows) // full sample → exact
	if math.Abs(got-st.CompressionRatio) > 1e-9 {
		t.Fatalf("estimate %v, exact %v", got, st.CompressionRatio)
	}
}

func TestEstimateCompressionRatioSampledIsClose(t *testing.T) {
	rng := rand.New(rand.NewSource(122))
	a := matrix.RandomWithDegree(2000, 2000, 8, rng)
	exact := matrix.ProductStats(a, a).CompressionRatio
	est := EstimateCompressionRatio(a, a, 200)
	if est < exact*0.7 || est > exact*1.3 {
		t.Fatalf("sampled estimate %v too far from exact %v", est, exact)
	}
}

func TestEstimateCompressionRatioDegenerate(t *testing.T) {
	empty := matrix.NewCSR(0, 0)
	if got := EstimateCompressionRatio(empty, empty, 10); got != 1 {
		t.Fatalf("empty: %v", got)
	}
	z := matrix.NewCSR(5, 5)
	if got := EstimateCompressionRatio(z, z, 10); got != 1 {
		t.Fatalf("zero: %v", got)
	}
}

func TestIsSkewedDistinguishesUniformFromPowerLaw(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	uniform := matrix.RandomWithDegree(500, 500, 8, rng)
	if IsSkewed(uniform) {
		t.Fatal("constant-degree matrix flagged as skewed")
	}
	// Power-law-ish: a few huge rows, many tiny.
	c := matrix.NewCOO(500, 500)
	for i := 0; i < 20; i++ {
		for j := 0; j < 200; j++ {
			c.Append(int32(i), int32(rng.Intn(500)), 1)
		}
	}
	for i := 20; i < 500; i++ {
		c.Append(int32(i), int32(rng.Intn(500)), 1)
	}
	skewed := c.ToCSR()
	if !IsSkewed(skewed) {
		t.Fatal("power-law matrix not flagged as skewed")
	}
}

func TestRecommendCoversTable4(t *testing.T) {
	rng := rand.New(rand.NewSource(124))
	dense := matrix.RandomWithDegree(300, 300, 16, rng) // uniform, EF 16
	sparse := matrix.RandomWithDegree(300, 300, 4, rng) // uniform, EF 4

	// Uniform dense sorted AxA: hash-family expected.
	if alg := Recommend(dense, dense, true, UseSquare); alg != AlgHash && alg != AlgHeap {
		t.Fatalf("uniform dense sorted: %v", alg)
	}
	// Uniform sparse sorted AxA with low CR: heap (Table 4b).
	cr := EstimateCompressionRatio(sparse, sparse, 300)
	if cr <= 2 {
		if alg := Recommend(sparse, sparse, true, UseSquare); alg != AlgHeap {
			t.Fatalf("uniform sparse low-CR sorted: %v", alg)
		}
	}
	// Unsorted high-CR: MKL-inspector (Table 4a).
	band := bandedMatrix(400, 24)
	if EstimateCompressionRatio(band, band, 400) > 2 {
		if alg := Recommend(band, band, false, UseSquare); alg != AlgMKLInspector {
			t.Fatalf("unsorted high-CR: %v", alg)
		}
	}
	// Tall-skinny: hash family always.
	if alg := Recommend(dense, dense, false, UseTallSkinny); alg != AlgHash {
		t.Fatalf("tallskinny unsorted: %v", alg)
	}
	// Triangle, low CR: heap.
	if alg := Recommend(sparse, sparse, true, UseTriangle); cr <= 2 && alg != AlgHeap {
		t.Fatalf("LxU low CR: %v", alg)
	}
	// Every recommendation must be a concrete algorithm.
	for _, uc := range []UseCase{UseSquare, UseTallSkinny, UseTriangle} {
		for _, sorted := range []bool{true, false} {
			alg := Recommend(dense, dense, sorted, uc)
			if alg == AlgAuto {
				t.Fatalf("Recommend returned AlgAuto for %v sorted=%v", uc, sorted)
			}
			if sorted && SupportsUnsorted(alg) == false && alg != AlgHeap && alg != AlgMerge {
				t.Fatalf("inconsistent recommendation %v", alg)
			}
			if !sorted && !SupportsUnsorted(alg) {
				t.Fatalf("unsorted request got sorting-only algorithm %v", alg)
			}
		}
	}
}

// bandedMatrix builds a dense band: row i has entries in columns
// [i-w/2, i+w/2] — a regular pattern with high compression ratio, like the
// paper's FEM matrices.
func bandedMatrix(n, w int) *matrix.CSR {
	c := matrix.NewCOO(n, n)
	for i := 0; i < n; i++ {
		for d := -w / 2; d <= w/2; d++ {
			j := i + d
			if j >= 0 && j < n {
				c.Append(int32(i), int32(j), 1)
			}
		}
	}
	return c.ToCSR()
}

func TestAutoAlgorithmWorks(t *testing.T) {
	rng := rand.New(rand.NewSource(125))
	a := matrix.Random(50, 50, 0.1, rng)
	want := matrix.NaiveMultiply(a, a)
	got, err := Multiply(a, a, &Options{Algorithm: AlgAuto})
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.EqualApprox(want, got, 1e-10) {
		t.Fatal("auto-selected algorithm produced wrong result")
	}
}

func TestUseCaseStrings(t *testing.T) {
	if UseSquare.String() != "AxA" || UseTallSkinny.String() != "TallSkinny" || UseTriangle.String() != "LxU" {
		t.Fatal("use case names wrong")
	}
	if UseCase(9).String() != "unknown" {
		t.Fatal("unknown use case name")
	}
}

func TestCollectAccessStats(t *testing.T) {
	rng := rand.New(rand.NewSource(126))
	a := matrix.RandomWithDegree(100, 100, 8, rng)
	st := CollectAccessStats(a, a, 0)
	flop, _ := matrix.Flop(a, a)
	if st.Flop != flop {
		t.Fatalf("Flop = %d, want %d", st.Flop, flop)
	}
	if st.RandomBytes != flop*8 {
		t.Fatalf("RandomBytes = %d", st.RandomBytes)
	}
	// Each B row has 8 entries = 96 bytes → bucket 6 ([64,128)).
	var stanzaTotal int64
	for k, b := range st.StanzaBytes {
		stanzaTotal += b
		if b > 0 && k != 6 {
			t.Fatalf("unexpected bucket %d with %d bytes", k, b)
		}
	}
	if stanzaTotal != flop*bytesPerEntry {
		t.Fatalf("stanza bytes %d, want %d", stanzaTotal, flop*bytesPerEntry)
	}
	if st.MeanStanzaBytes() < 64 || st.MeanStanzaBytes() >= 128 {
		t.Fatalf("mean stanza %v out of bucket", st.MeanStanzaBytes())
	}
	if st.TotalBytes() <= st.StreamBytes {
		t.Fatal("TotalBytes must include all categories")
	}
}

func TestAccessStatsDenserMeansLongerStanzas(t *testing.T) {
	rng := rand.New(rand.NewSource(127))
	sparse := matrix.RandomWithDegree(200, 200, 4, rng)
	dense := matrix.RandomWithDegree(200, 200, 32, rng)
	if CollectAccessStats(sparse, sparse, 0).MeanStanzaBytes() >=
		CollectAccessStats(dense, dense, 0).MeanStanzaBytes() {
		t.Fatal("denser matrix should have longer stanzas")
	}
}
