package spgemm

import (
	"repro/internal/accum"
	"repro/internal/matrix"
	"repro/internal/sched"
	"repro/internal/semiring"
)

// mapAcc adapts Go's built-in map to the rowAcc interface. It is the
// accumulator of the MKL stand-in baseline: a general-purpose associative
// container with per-operation costs far above the specialized hash table,
// but completely insensitive to sizing.
//
// Map values are not addressable in Go, so Upsert cannot hand out a pointer
// into the map itself; instead the map stores an index into a parallel value
// slice and Upsert returns a pointer into that slice. The pointer is valid
// until the next Upsert (an append may move the backing array), which is
// exactly the rowAcc contract: callers write through the slot immediately.
type mapAcc[V semiring.Value] struct {
	m    map[int32]int32
	keys []int32
	vals []V
}

func newMapAcc[V semiring.Value]() *mapAcc[V] {
	return &mapAcc[V]{m: make(map[int32]int32, 256)}
}

func (m *mapAcc[V]) Reset() {
	clear(m.m)
	m.keys = m.keys[:0]
	m.vals = m.vals[:0]
}

func (m *mapAcc[V]) Len() int { return len(m.keys) }

func (m *mapAcc[V]) InsertSymbolic(key int32) bool {
	if _, ok := m.m[key]; ok {
		return false
	}
	var zero V
	m.m[key] = int32(len(m.keys))
	m.keys = append(m.keys, key)
	m.vals = append(m.vals, zero)
	return true
}

func (m *mapAcc[V]) Upsert(key int32) (*V, bool) {
	if idx, ok := m.m[key]; ok {
		return &m.vals[idx], false
	}
	var zero V
	idx := int32(len(m.keys))
	m.m[key] = idx
	m.keys = append(m.keys, key)
	m.vals = append(m.vals, zero)
	return &m.vals[idx], true
}

func (m *mapAcc[V]) Lookup(key int32) (V, bool) {
	if idx, ok := m.m[key]; ok {
		return m.vals[idx], true
	}
	var zero V
	return zero, false
}

func (m *mapAcc[V]) ExtractUnsorted(cols []int32, vals []V) int {
	n := copy(cols, m.keys)
	copy(vals, m.vals)
	return n
}

func (m *mapAcc[V]) ExtractSorted(cols []int32, vals []V) int {
	n := m.ExtractUnsorted(cols, vals)
	accum.SortPairs(cols[:n], vals[:n])
	return n
}

// mapMultiply is the AlgMKL baseline: two-phase map accumulation with plain
// static scheduling — see the DESIGN.md substitution table for why this
// reproduces MKL's qualitative profile (load imbalance on skewed inputs,
// large sorted-vs-unsorted gap, strength at high compression ratio).
func mapMultiply[V semiring.Value, R semiring.Ring[V]](ring R, a, b *matrix.CSRG[V], opt *OptionsG[V]) (*matrix.CSRG[V], error) {
	cfg := twoPhaseConfig[V]{
		schedule: sched.Static,
		factory:  func(ctx *ContextG[V], w int, bound int64) rowAcc[V] { return newMapAcc[V]() },
	}
	return twoPhase(ring, a, b, opt, cfg)
}

// inspectorMultiply is the AlgMKLInspector baseline: one-phase map
// accumulation into per-worker growable buffers, unsorted output only,
// guided scheduling. One-phase means each row's results are appended to the
// worker's buffer as soon as they are computed and stitched into the final
// matrix afterwards, trading memory for the skipped symbolic pass.
func inspectorMultiply[V semiring.Value, R semiring.Ring[V]](ring R, a, b *matrix.CSRG[V], opt *OptionsG[V]) (*matrix.CSRG[V], error) {
	workers := opt.workers()
	if workers > a.Rows && a.Rows > 0 {
		workers = a.Rows
	}
	if workers < 1 {
		workers = 1
	}
	type rowRef struct {
		row    int
		offset int64
		n      int64
	}
	pt := startPhases(opt.Stats, workers)
	bufCols := make([][]int32, workers)
	bufVals := make([][]V, workers)
	refs := make([][]rowRef, workers)

	sched.ParallelForNamed("numeric", workers, a.Rows, sched.Guided, 16, func(w, lo, hi int) {
		acc := newMapAcc[V]()
		for i := lo; i < hi; i++ {
			acc.Reset()
			alo, ahi := a.RowPtr[i], a.RowPtr[i+1]
			for p := alo; p < ahi; p++ {
				k := a.ColIdx[p]
				av := a.Val[p]
				blo, bhi := b.RowPtr[k], b.RowPtr[k+1]
				for q := blo; q < bhi; q++ {
					prod := ring.Mul(av, b.Val[q])
					slot, fresh := acc.Upsert(b.ColIdx[q])
					if fresh {
						*slot = prod
					} else {
						*slot = ring.Add(*slot, prod)
					}
				}
			}
			off := int64(len(bufCols[w]))
			bufCols[w] = append(bufCols[w], acc.keys...)
			bufVals[w] = append(bufVals[w], acc.vals...)
			refs[w] = append(refs[w], rowRef{row: i, offset: off, n: int64(len(bufCols[w])) - off})
		}
		if ws := pt.worker(w); ws != nil {
			ws.Rows += int64(hi - lo)
			for i := lo; i < hi; i++ {
				alo, ahi := a.RowPtr[i], a.RowPtr[i+1]
				for p := alo; p < ahi; p++ {
					k := a.ColIdx[p]
					ws.Flop += b.RowPtr[k+1] - b.RowPtr[k]
				}
			}
		}
	})
	pt.tick(PhaseNumeric)

	rowNnz := make([]int64, a.Rows)
	rowWorker := make([]int32, a.Rows)
	rowOffset := make([]int64, a.Rows)
	for w := 0; w < workers; w++ {
		for _, r := range refs[w] {
			rowNnz[r.row] = r.n
			rowWorker[r.row] = int32(w)
			rowOffset[r.row] = r.offset
		}
	}
	rowPtr := sched.PrefixSum(rowNnz, nil, workers)
	// The inspector path is inherently unsorted; honor a sorted request by
	// sorting rows at the end (the post-processing a user would need).
	c := outputShell[V](a.Rows, b.Cols, rowPtr, false)
	pt.tick(PhaseAlloc)
	sched.ParallelForNamed("assemble", workers, a.Rows, sched.Static, 1, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			src := rowWorker[i]
			off := rowOffset[i]
			n := rowNnz[i]
			copy(c.ColIdx[rowPtr[i]:rowPtr[i]+n], bufCols[src][off:off+n])
			copy(c.Val[rowPtr[i]:rowPtr[i]+n], bufVals[src][off:off+n])
		}
	})
	if !opt.Unsorted {
		mSortPost.Inc()
		c.SortRows()
	}
	pt.tick(PhaseAssemble)
	pt.finish()
	return c, nil
}
