package spgemm

import (
	"sort"

	"repro/internal/matrix"
	"repro/internal/sched"
)

// mapAcc adapts Go's built-in map to the rowAcc interface. It is the
// accumulator of the MKL stand-in baseline: a general-purpose associative
// container with per-operation costs far above the specialized hash table,
// but completely insensitive to sizing.
type mapAcc struct {
	m map[int32]float64
}

func newMapAcc() *mapAcc { return &mapAcc{m: make(map[int32]float64, 256)} }

func (m *mapAcc) Reset()   { clear(m.m) }
func (m *mapAcc) Len() int { return len(m.m) }

func (m *mapAcc) InsertSymbolic(key int32) bool {
	if _, ok := m.m[key]; ok {
		return false
	}
	m.m[key] = 0
	return true
}

func (m *mapAcc) Accumulate(key int32, v float64) { m.m[key] += v }

func (m *mapAcc) AccumulateFunc(key int32, v float64, add func(a, b float64) float64) {
	if old, ok := m.m[key]; ok {
		m.m[key] = add(old, v)
	} else {
		m.m[key] = v
	}
}

func (m *mapAcc) Lookup(key int32) (float64, bool) {
	v, ok := m.m[key]
	return v, ok
}

func (m *mapAcc) ExtractUnsorted(cols []int32, vals []float64) int {
	i := 0
	for k, v := range m.m {
		cols[i] = k
		vals[i] = v
		i++
	}
	return i
}

func (m *mapAcc) ExtractSorted(cols []int32, vals []float64) int {
	n := m.ExtractUnsorted(cols, vals)
	c := cols[:n]
	vs := vals[:n]
	sort.Sort(&colValSorter{c, vs})
	return n
}

type colValSorter struct {
	cols []int32
	vals []float64
}

func (s *colValSorter) Len() int           { return len(s.cols) }
func (s *colValSorter) Less(i, j int) bool { return s.cols[i] < s.cols[j] }
func (s *colValSorter) Swap(i, j int) {
	s.cols[i], s.cols[j] = s.cols[j], s.cols[i]
	s.vals[i], s.vals[j] = s.vals[j], s.vals[i]
}

// mapMultiply is the AlgMKL baseline: two-phase map accumulation with plain
// static scheduling — see the DESIGN.md substitution table for why this
// reproduces MKL's qualitative profile (load imbalance on skewed inputs,
// large sorted-vs-unsorted gap, strength at high compression ratio).
func mapMultiply(a, b *matrix.CSR, opt *Options) (*matrix.CSR, error) {
	cfg := twoPhaseConfig{
		schedule: sched.Static,
		factory:  func(ctx *Context, w int, bound int64) rowAcc { return newMapAcc() },
	}
	return twoPhase(a, b, opt, cfg)
}

// inspectorMultiply is the AlgMKLInspector baseline: one-phase map
// accumulation into per-worker growable buffers, unsorted output only,
// guided scheduling. One-phase means each row's results are appended to the
// worker's buffer as soon as they are computed and stitched into the final
// matrix afterwards, trading memory for the skipped symbolic pass.
func inspectorMultiply(a, b *matrix.CSR, opt *Options) (*matrix.CSR, error) {
	workers := opt.workers()
	if workers > a.Rows && a.Rows > 0 {
		workers = a.Rows
	}
	if workers < 1 {
		workers = 1
	}
	type rowRef struct {
		row    int
		offset int64
		n      int64
	}
	pt := startPhases(opt.Stats, workers)
	bufCols := make([][]int32, workers)
	bufVals := make([][]float64, workers)
	refs := make([][]rowRef, workers)
	sr := opt.Semiring

	sched.ParallelForNamed("numeric", workers, a.Rows, sched.Guided, 16, func(w, lo, hi int) {
		acc := newMapAcc()
		for i := lo; i < hi; i++ {
			acc.Reset()
			alo, ahi := a.RowPtr[i], a.RowPtr[i+1]
			for p := alo; p < ahi; p++ {
				k := a.ColIdx[p]
				av := a.Val[p]
				blo, bhi := b.RowPtr[k], b.RowPtr[k+1]
				if sr == nil {
					for q := blo; q < bhi; q++ {
						acc.m[b.ColIdx[q]] += av * b.Val[q]
					}
				} else {
					for q := blo; q < bhi; q++ {
						acc.AccumulateFunc(b.ColIdx[q], sr.Mul(av, b.Val[q]), sr.Add)
					}
				}
			}
			off := int64(len(bufCols[w]))
			for k, v := range acc.m {
				bufCols[w] = append(bufCols[w], k)
				bufVals[w] = append(bufVals[w], v)
			}
			refs[w] = append(refs[w], rowRef{row: i, offset: off, n: int64(len(bufCols[w])) - off})
		}
		if ws := pt.worker(w); ws != nil {
			ws.Rows += int64(hi - lo)
			for i := lo; i < hi; i++ {
				alo, ahi := a.RowPtr[i], a.RowPtr[i+1]
				for p := alo; p < ahi; p++ {
					k := a.ColIdx[p]
					ws.Flop += b.RowPtr[k+1] - b.RowPtr[k]
				}
			}
		}
	})
	pt.tick(PhaseNumeric)

	rowNnz := make([]int64, a.Rows)
	rowWorker := make([]int32, a.Rows)
	rowOffset := make([]int64, a.Rows)
	for w := 0; w < workers; w++ {
		for _, r := range refs[w] {
			rowNnz[r.row] = r.n
			rowWorker[r.row] = int32(w)
			rowOffset[r.row] = r.offset
		}
	}
	rowPtr := sched.PrefixSum(rowNnz, nil, workers)
	// The inspector path is inherently unsorted; honor a sorted request by
	// sorting rows at the end (the post-processing a user would need).
	c := outputShell(a.Rows, b.Cols, rowPtr, false)
	pt.tick(PhaseAlloc)
	sched.ParallelForNamed("assemble", workers, a.Rows, sched.Static, 1, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			src := rowWorker[i]
			off := rowOffset[i]
			n := rowNnz[i]
			copy(c.ColIdx[rowPtr[i]:rowPtr[i]+n], bufCols[src][off:off+n])
			copy(c.Val[rowPtr[i]:rowPtr[i]+n], bufVals[src][off:off+n])
		}
	})
	if !opt.Unsorted {
		mSortPost.Inc()
		c.SortRows()
	}
	pt.tick(PhaseAssemble)
	pt.finish()
	return c, nil
}
