package spgemm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/matrix"
	"repro/internal/semiring"
)

// allAlgorithms lists every concrete algorithm with its capabilities.
var allAlgorithms = []struct {
	alg           Algorithm
	unsortedOut   bool // supports Unsorted option natively
	unsortedInput bool // accepts unsorted input rows
}{
	{AlgHash, true, true},
	{AlgHashVec, true, true},
	{AlgHeap, false, false},
	{AlgSPA, true, true},
	{AlgMKL, true, true},
	{AlgMKLInspector, true, true},
	{AlgKokkos, true, true},
	{AlgMerge, false, false},
	{AlgIKJ, true, true},
	{AlgBlockedSPA, true, true},
	{AlgESC, false, true},
	{AlgSharded, true, true},
}

func randPair(rng *rand.Rand, maxDim int, density float64) (*matrix.CSR, *matrix.CSR) {
	m := 1 + rng.Intn(maxDim)
	k := 1 + rng.Intn(maxDim)
	n := 1 + rng.Intn(maxDim)
	return matrix.Random(m, k, density, rng), matrix.Random(k, n, density, rng)
}

func TestAllAlgorithmsMatchNaiveSorted(t *testing.T) {
	for _, tc := range allAlgorithms {
		t.Run(tc.alg.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(101))
			for trial := 0; trial < 25; trial++ {
				a, b := randPair(rng, 40, 0.15)
				want := matrix.NaiveMultiply(a, b)
				got, err := Multiply(a, b, &Options{Algorithm: tc.alg, Workers: 1 + trial%4})
				if err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
				if err := got.Validate(); err != nil {
					t.Fatalf("trial %d: invalid output: %v", trial, err)
				}
				if !got.IsSortedRows() {
					t.Fatalf("trial %d: sorted output requested but rows unsorted", trial)
				}
				if !matrix.EqualApprox(want, got, 1e-10) {
					t.Fatalf("trial %d: %v product disagrees with naive (%v × %v)", trial, tc.alg, a, b)
				}
			}
		})
	}
}

func TestAllAlgorithmsMatchNaiveUnsortedOutput(t *testing.T) {
	for _, tc := range allAlgorithms {
		if !tc.unsortedOut {
			continue
		}
		t.Run(tc.alg.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(102))
			for trial := 0; trial < 15; trial++ {
				a, b := randPair(rng, 40, 0.15)
				want := matrix.NaiveMultiply(a, b)
				got, err := Multiply(a, b, &Options{Algorithm: tc.alg, Unsorted: true, Workers: 3})
				if err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
				if got.Sorted {
					t.Fatal("unsorted output should not claim Sorted")
				}
				if !matrix.EqualApprox(want, got, 1e-10) {
					t.Fatalf("trial %d: %v unsorted product disagrees with naive", trial, tc.alg)
				}
			}
		})
	}
}

func TestUnsortedInputAccepted(t *testing.T) {
	// Hash-family and map algorithms must accept randomly permuted
	// (unsorted) inputs — the paper's unsorted evaluation mode.
	rng := rand.New(rand.NewSource(103))
	a := matrix.Random(30, 30, 0.2, rng)
	perm := matrix.RandomPermutation(30, rng)
	ap := a.PermuteCols(perm) // unsorted rows
	want := matrix.NaiveMultiply(ap, ap)
	for _, tc := range allAlgorithms {
		if !tc.unsortedInput {
			continue
		}
		got, err := Multiply(ap, ap, &Options{Algorithm: tc.alg, Workers: 2})
		if err != nil {
			t.Fatalf("%v: %v", tc.alg, err)
		}
		if !matrix.EqualApprox(want, got, 1e-10) {
			t.Fatalf("%v: wrong product on unsorted input", tc.alg)
		}
	}
}

func TestSortedInputRequiredErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	a := matrix.Random(10, 10, 0.3, rng)
	b := a.PermuteCols(matrix.RandomPermutation(10, rng)) // unsorted
	for _, alg := range []Algorithm{AlgHeap, AlgMerge} {
		if _, err := Multiply(a, b, &Options{Algorithm: alg}); err == nil {
			t.Fatalf("%v: expected error on unsorted B", alg)
		}
	}
}

func TestDimensionMismatch(t *testing.T) {
	a := matrix.Identity(3)
	b := matrix.Identity(4)
	if _, err := Multiply(a, b, nil); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestHeapVariantsAllCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	a, b := randPair(rng, 50, 0.15)
	want := matrix.NaiveMultiply(a, b)
	for _, v := range []HeapVariant{HeapBalancedParallel, HeapBalancedSingle, HeapStatic, HeapDynamic, HeapGuided} {
		got, err := Multiply(a, b, &Options{Algorithm: AlgHeap, HeapVariant: v, Workers: 3})
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if !got.IsSortedRows() {
			t.Fatalf("%v: heap output must be sorted", v)
		}
		if !matrix.EqualApprox(want, got, 1e-10) {
			t.Fatalf("%v: wrong product", v)
		}
	}
}

func TestEmptyMatrices(t *testing.T) {
	for _, tc := range allAlgorithms {
		empty := matrix.NewCSR(5, 5)
		got, err := Multiply(empty, empty, &Options{Algorithm: tc.alg})
		if err != nil {
			t.Fatalf("%v: %v", tc.alg, err)
		}
		if got.NNZ() != 0 || got.Rows != 5 || got.Cols != 5 {
			t.Fatalf("%v: empty product wrong: %v", tc.alg, got)
		}
	}
}

func TestEmptyTimesNonEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(106))
	b := matrix.Random(5, 7, 0.4, rng)
	for _, tc := range allAlgorithms {
		got, err := Multiply(matrix.NewCSR(4, 5), b, &Options{Algorithm: tc.alg})
		if err != nil {
			t.Fatalf("%v: %v", tc.alg, err)
		}
		if got.NNZ() != 0 {
			t.Fatalf("%v: nnz = %d", tc.alg, got.NNZ())
		}
	}
}

func TestIdentityProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	m := matrix.Random(25, 25, 0.2, rng)
	for _, tc := range allAlgorithms {
		got, err := Multiply(m, matrix.Identity(25), &Options{Algorithm: tc.alg})
		if err != nil {
			t.Fatalf("%v: %v", tc.alg, err)
		}
		if !matrix.EqualApprox(m, got, 1e-12) {
			t.Fatalf("%v: M*I != M", tc.alg)
		}
	}
}

func TestRectangularShapes(t *testing.T) {
	// Tall-skinny and short-fat products (the Section 5.5 use case shape).
	rng := rand.New(rand.NewSource(108))
	a := matrix.Random(60, 40, 0.1, rng)
	b := matrix.Random(40, 5, 0.3, rng)
	want := matrix.NaiveMultiply(a, b)
	for _, tc := range allAlgorithms {
		got, err := Multiply(a, b, &Options{Algorithm: tc.alg, Workers: 4})
		if err != nil {
			t.Fatalf("%v: %v", tc.alg, err)
		}
		if !matrix.EqualApprox(want, got, 1e-10) {
			t.Fatalf("%v: wrong rectangular product", tc.alg)
		}
	}
}

func TestSemiringMinPlus(t *testing.T) {
	// Min-plus matrix "product" computes single-hop shortest path combos;
	// verify against a dense reference.
	rng := rand.New(rand.NewSource(109))
	sr := semiring.MinPlus()
	a := matrix.Random(12, 12, 0.4, rng)
	b := matrix.Random(12, 12, 0.4, rng)
	// Make all values positive path lengths.
	for i := range a.Val {
		a.Val[i] = float64(1 + rng.Intn(9))
	}
	for i := range b.Val {
		b.Val[i] = float64(1 + rng.Intn(9))
	}
	// Dense min-plus reference over the sparsity pattern.
	ref := make(map[[2]int32]float64)
	for i := 0; i < a.Rows; i++ {
		acols, avals := a.Row(i)
		for t2, k := range acols {
			bcols, bvals := b.Row(int(k))
			for t3, j := range bcols {
				key := [2]int32{int32(i), j}
				v := avals[t2] + bvals[t3]
				if old, ok := ref[key]; !ok || v < old {
					ref[key] = v
				}
			}
		}
	}
	for _, alg := range []Algorithm{AlgHash, AlgHashVec, AlgHeap, AlgSPA, AlgMKL, AlgMKLInspector, AlgKokkos, AlgMerge, AlgIKJ, AlgBlockedSPA, AlgESC} {
		got, err := Multiply(a, b, &Options{Algorithm: alg, Semiring: sr, Workers: 2})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		var count int64
		for i := 0; i < got.Rows; i++ {
			cols, vals := got.Row(i)
			for t2, c := range cols {
				want, ok := ref[[2]int32{int32(i), c}]
				if !ok {
					t.Fatalf("%v: spurious entry (%d,%d)", alg, i, c)
				}
				if vals[t2] != want {
					t.Fatalf("%v: (%d,%d) = %v, want %v", alg, i, c, vals[t2], want)
				}
				count++
			}
		}
		if count != int64(len(ref)) {
			t.Fatalf("%v: %d entries, want %d", alg, count, len(ref))
		}
	}
}

func TestSemiringOrAnd(t *testing.T) {
	rng := rand.New(rand.NewSource(110))
	a := matrix.Random(15, 15, 0.3, rng)
	for i := range a.Val {
		a.Val[i] = 1
	}
	want := matrix.NaiveMultiply(a, a) // plus-times pattern == or-and pattern
	for _, alg := range []Algorithm{AlgHash, AlgHeap, AlgSPA} {
		got, err := Multiply(a, a, &Options{Algorithm: alg, Semiring: semiring.OrAnd()})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if got.NNZ() != want.NNZ() {
			t.Fatalf("%v: nnz = %d, want %d", alg, got.NNZ(), want.NNZ())
		}
		for _, v := range got.Val {
			if v != 1 {
				t.Fatalf("%v: boolean product value %v", alg, v)
			}
		}
	}
}

func TestMaskedMultiply(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	for trial := 0; trial < 10; trial++ {
		a, b := randPair(rng, 30, 0.2)
		mask := matrix.Random(a.Rows, b.Cols, 0.3, rng)
		full := matrix.NaiveMultiply(a, b)
		// Reference: full product filtered to mask pattern.
		wantD := full.ToDense()
		maskD := mask.ToDense()
		for i := 0; i < wantD.Rows; i++ {
			for j := 0; j < wantD.Cols; j++ {
				if maskD.At(i, j) == 0 {
					wantD.Set(i, j, 0)
				}
			}
		}
		for _, alg := range []Algorithm{AlgHash, AlgHashVec} {
			got, err := Multiply(a, b, &Options{Algorithm: alg, Mask: mask, Workers: 2})
			if err != nil {
				t.Fatalf("%v: %v", alg, err)
			}
			if !got.ToDense().EqualApprox(wantD, 1e-10) {
				t.Fatalf("trial %d %v: masked product wrong", trial, alg)
			}
			// No entry outside the mask.
			for i := 0; i < got.Rows; i++ {
				cols, _ := got.Row(i)
				for _, c := range cols {
					if maskD.At(i, int(c)) == 0 {
						t.Fatalf("%v: entry (%d,%d) outside mask", alg, i, c)
					}
				}
			}
		}
	}
}

func TestMaskRejectedForOtherAlgorithms(t *testing.T) {
	a := matrix.Identity(4)
	if _, err := Multiply(a, a, &Options{Algorithm: AlgHeap, Mask: a}); err == nil {
		t.Fatal("expected error: mask unsupported for heap")
	}
}

func TestMaskDimensionMismatch(t *testing.T) {
	a := matrix.Identity(4)
	m := matrix.Identity(5)
	if _, err := Multiply(a, a, &Options{Algorithm: AlgHash, Mask: m}); err == nil {
		t.Fatal("expected mask dimension error")
	}
}

func TestNilOptionsDefaults(t *testing.T) {
	a := matrix.Identity(6)
	got, err := Multiply(a, a, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.EqualApprox(a, got, 0) {
		t.Fatal("I*I != I")
	}
}

func TestSymbolicCountsMatchNumericNNZ(t *testing.T) {
	// The two-phase algorithms allocate exactly; verify rowptr equals the
	// reference nnz structure (no over-allocation leaks into the result).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randPair(rng, 30, 0.2)
		want := matrix.SymbolicNNZ(a, b)
		c, err := Multiply(a, b, &Options{Algorithm: AlgHash})
		if err != nil {
			return false
		}
		return c.NNZ() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: all algorithms produce identical results on the same input.
func TestAlgorithmsAgreeQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randPair(rng, 25, 0.2)
		base, err := Multiply(a, b, &Options{Algorithm: AlgHash})
		if err != nil {
			return false
		}
		for _, tc := range allAlgorithms[1:] {
			got, err := Multiply(a, b, &Options{Algorithm: tc.alg, Workers: 1 + rng.Intn(4)})
			if err != nil || !matrix.EqualApprox(base, got, 1e-10) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestWorkerCountsDoNotChangeResult(t *testing.T) {
	rng := rand.New(rand.NewSource(112))
	a, b := randPair(rng, 60, 0.1)
	want, _ := Multiply(a, b, &Options{Algorithm: AlgHash, Workers: 1})
	for _, workers := range []int{2, 3, 7, 16, 64, 1000} {
		for _, alg := range []Algorithm{AlgHash, AlgHeap, AlgMKLInspector} {
			got, err := Multiply(a, b, &Options{Algorithm: alg, Workers: workers})
			if err != nil {
				t.Fatalf("workers=%d %v: %v", workers, alg, err)
			}
			if !matrix.EqualApprox(want, got, 1e-10) {
				t.Fatalf("workers=%d %v: result changed", workers, alg)
			}
		}
	}
}

func TestSupportsUnsortedTable(t *testing.T) {
	if SupportsUnsorted(AlgHeap) || SupportsUnsorted(AlgMerge) {
		t.Fatal("heap/merge cannot skip sorting (output inherently sorted)")
	}
	if !SupportsUnsorted(AlgHash) || !SupportsUnsorted(AlgMKLInspector) {
		t.Fatal("hash family must support unsorted")
	}
	if !RequiresSortedInput(AlgHeap) || RequiresSortedInput(AlgHash) {
		t.Fatal("sorted-input requirements wrong")
	}
}

func TestAlgorithmStrings(t *testing.T) {
	for _, tc := range allAlgorithms {
		if tc.alg.String() == "unknown" {
			t.Fatalf("missing name for %d", tc.alg)
		}
	}
	if AlgAuto.String() != "auto" || Algorithm(99).String() != "unknown" {
		t.Fatal("string mapping wrong")
	}
}
