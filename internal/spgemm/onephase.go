package spgemm

import (
	"repro/internal/matrix"
)

// hashOnePhase is the one-phase alternative the paper's Section 2 contrasts
// with the symbolic+numeric design: skip the symbolic pass and write each
// row into thread-private temp buffers sized at the flop upper bound, then
// stitch. It trades the symbolic pass's extra computation for O(flop) extra
// memory — the ablation benchmark BenchmarkAblationPhases quantifies the
// trade on both sides.
//
// Kept unexported: the exported AlgHash is the paper's two-phase design;
// this variant exists for the ablation study.
func hashOnePhase(a, b *matrix.CSR, opt *Options) (*matrix.CSR, error) {
	workers := opt.workers()
	if workers > a.Rows && a.Rows > 0 {
		workers = a.Rows
	}
	if workers < 1 {
		workers = 1
	}
	ctx := opt.ctx()
	ctx.ensureWorkers(workers)
	pt := startPhases(opt.Stats, workers)
	flopRow := ctx.perRowFlop(a, b)
	offsets := ctx.partition(flopRow, workers, workers)
	pt.tick(PhasePartition)

	tmpCols := make([][]int32, workers)
	tmpVals := make([][]float64, workers)
	rowNnz := ctx.rowNnzBuf(a.Rows)
	used := make([]int64, workers)
	sr := opt.Semiring

	ctx.runWorkers("numeric", workers, func(w int) {
		lo, hi := offsets[w], offsets[w+1]
		if lo >= hi {
			return
		}
		var tempSize, bound int64
		for i := lo; i < hi; i++ {
			tempSize += flopRow[i]
			if flopRow[i] > bound {
				bound = flopRow[i]
			}
		}
		s := ctx.workerScratch(w)
		tmpCols[w] = s.EnsureInt32A(int(tempSize))
		tmpVals[w] = s.EnsureFloat64(int(tempSize))
		table := ctx.hashTable(w, capBound(bound, b.Cols))
		var pos int64
		for i := lo; i < hi; i++ {
			table.Reset()
			alo, ahi := a.RowPtr[i], a.RowPtr[i+1]
			for p := alo; p < ahi; p++ {
				k := a.ColIdx[p]
				av := a.Val[p]
				blo, bhi := b.RowPtr[k], b.RowPtr[k+1]
				if sr == nil {
					for q := blo; q < bhi; q++ {
						table.Accumulate(b.ColIdx[q], av*b.Val[q])
					}
				} else {
					for q := blo; q < bhi; q++ {
						table.AccumulateFunc(b.ColIdx[q], sr.Mul(av, b.Val[q]), sr.Add)
					}
				}
			}
			n := table.Len()
			if opt.Unsorted {
				table.ExtractUnsorted(tmpCols[w][pos:pos+int64(n)], tmpVals[w][pos:pos+int64(n)])
			} else {
				table.ExtractSorted(tmpCols[w][pos:pos+int64(n)], tmpVals[w][pos:pos+int64(n)])
			}
			rowNnz[i] = int64(n)
			pos += int64(n)
		}
		used[w] = pos
		if ws := pt.worker(w); ws != nil {
			ws.Rows = int64(hi - lo)
			ws.Flop = rangeFlop(flopRow, lo, hi)
			ws.HashLookups = table.Lookups()
			ws.HashProbes = table.Probes()
		}
	})
	pt.tick(PhaseNumeric)

	rowPtr := ctx.prefixSum(rowNnz, nil, workers)
	c := outputShell(a.Rows, b.Cols, rowPtr, !opt.Unsorted)
	pt.tick(PhaseAlloc)
	ctx.runWorkers("assemble", workers, func(w int) {
		lo := offsets[w]
		if lo >= offsets[w+1] {
			return
		}
		dst := rowPtr[lo]
		copy(c.ColIdx[dst:dst+used[w]], tmpCols[w][:used[w]])
		copy(c.Val[dst:dst+used[w]], tmpVals[w][:used[w]])
	})
	pt.tick(PhaseAssemble)
	pt.finish()
	return c, nil
}
