package spgemm

import (
	"repro/internal/matrix"
	"repro/internal/semiring"
)

// hashOnePhase is the one-phase alternative the paper's Section 2 contrasts
// with the symbolic+numeric design: skip the symbolic pass and write each
// row into thread-private temp buffers sized at the flop upper bound, then
// stitch. It trades the symbolic pass's extra computation for O(flop) extra
// memory — the ablation benchmark BenchmarkAblationPhases quantifies the
// trade on both sides.
//
// Kept unexported: the exported AlgHash is the paper's two-phase design;
// this variant exists for the ablation study.
func hashOnePhase[V semiring.Value, R semiring.Ring[V]](ring R, a, b *matrix.CSRG[V], opt *OptionsG[V]) (*matrix.CSRG[V], error) {
	workers := opt.workers()
	if workers > a.Rows && a.Rows > 0 {
		workers = a.Rows
	}
	if workers < 1 {
		workers = 1
	}
	ctx := opt.ctx()
	ctx.ensureWorkers(workers)
	pt := startPhases(opt.Stats, workers)
	flopRow := ctx.perRowFlop(a, b)
	offsets := ctx.partition(flopRow, workers, workers)
	pt.tick(PhasePartition)

	tmpCols := make([][]int32, workers)
	tmpVals := make([][]V, workers)
	rowNnz := ctx.rowNnzBuf(a.Rows)
	used := make([]int64, workers)

	ctx.runWorkers("numeric", workers, func(w int) {
		lo, hi := offsets[w], offsets[w+1]
		if lo >= hi {
			return
		}
		var tempSize, bound int64
		for i := lo; i < hi; i++ {
			tempSize += flopRow[i]
			if flopRow[i] > bound {
				bound = flopRow[i]
			}
		}
		s := ctx.workerScratch(w)
		tmpCols[w] = s.EnsureInt32A(int(tempSize))
		tmpVals[w] = ctx.valScratchA(w, int(tempSize))
		table := ctx.hashTable(w, capBound(bound, b.Cols))
		var pos int64
		for i := lo; i < hi; i++ {
			table.Reset()
			alo, ahi := a.RowPtr[i], a.RowPtr[i+1]
			for p := alo; p < ahi; p++ {
				k := a.ColIdx[p]
				av := a.Val[p]
				blo, bhi := b.RowPtr[k], b.RowPtr[k+1]
				for q := blo; q < bhi; q++ {
					prod := ring.Mul(av, b.Val[q])
					slot, fresh := table.Upsert(b.ColIdx[q])
					if fresh {
						*slot = prod
					} else {
						*slot = ring.Add(*slot, prod)
					}
				}
			}
			n := table.Len()
			if opt.Unsorted {
				table.ExtractUnsorted(tmpCols[w][pos:pos+int64(n)], tmpVals[w][pos:pos+int64(n)])
			} else {
				table.ExtractSorted(tmpCols[w][pos:pos+int64(n)], tmpVals[w][pos:pos+int64(n)])
			}
			rowNnz[i] = int64(n)
			pos += int64(n)
		}
		used[w] = pos
		if ws := pt.worker(w); ws != nil {
			ws.Rows = int64(hi - lo)
			ws.Flop = rangeFlop(flopRow, lo, hi)
			ws.HashLookups = table.Lookups()
			ws.HashProbes = table.Probes()
		}
	})
	pt.tick(PhaseNumeric)

	rowPtr := ctx.prefixSum(rowNnz, nil, workers)
	c := outputShell[V](a.Rows, b.Cols, rowPtr, !opt.Unsorted)
	pt.tick(PhaseAlloc)
	ctx.runWorkers("assemble", workers, func(w int) {
		lo := offsets[w]
		if lo >= offsets[w+1] {
			return
		}
		dst := rowPtr[lo]
		copy(c.ColIdx[dst:dst+used[w]], tmpCols[w][:used[w]])
		copy(c.Val[dst:dst+used[w]], tmpVals[w][:used[w]])
	})
	pt.tick(PhaseAssemble)
	pt.finish()
	return c, nil
}
