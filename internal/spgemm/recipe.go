package spgemm

import (
	"math"
	"sync/atomic"
	"unsafe"

	"repro/internal/accum"
	"repro/internal/matrix"
	"repro/internal/semiring"
)

// UseCase classifies the multiplication scenario, following the paper's
// evaluation sections: squaring-like products (Section 5.4), square ×
// tall-skinny (Section 5.5), and triangular L×U (Section 5.6).
type UseCase int

const (
	UseSquare UseCase = iota
	UseTallSkinny
	UseTriangle
)

// String returns the use-case label.
func (u UseCase) String() string {
	switch u {
	case UseSquare:
		return "AxA"
	case UseTallSkinny:
		return "TallSkinny"
	case UseTriangle:
		return "LxU"
	}
	return "unknown"
}

// Recommend implements the paper's Table 4 recipe: the empirically (and, via
// the cost model of Section 4.2.4, theoretically) best algorithm for the
// given inputs, sortedness requirement and use case, expressed with this
// repository's algorithm set (MKL-inspector stands in for the paper's
// MKL-inspector column).
// Recommendations are additionally constrained by the inputs themselves:
// algorithms that consume sorted row streams (Heap, Merge) are never
// proposed when B's rows are unsorted — Hash accepts any input order and is
// the recipe's fallback, so Multiply with AlgAuto succeeds for every
// (sorted, unsorted) input combination.
//
// The recipe only inspects sparsity structure, so it applies unchanged to
// any value type.
func Recommend[V semiring.Value](a, b *matrix.CSRG[V], sorted bool, uc UseCase) Algorithm {
	if shardedRecommended(a, b) {
		return AlgSharded
	}
	alg := recommendTable4(a, b, sorted, uc)
	if RequiresSortedInput(alg) && !b.Sorted {
		return AlgHash
	}
	return alg
}

// shardedAutoBytes is the estimated-output-size threshold (bytes) above
// which the recipe overrides Table 4 with AlgSharded: products this large
// are past the regime the paper's per-thread recipe was tuned on, and the
// stripe-wise engine bounds peak memory where the monolithic pipeline
// cannot. Atomic so tests adjusting it stay race-clean.
var shardedAutoBytes atomic.Int64

func init() { shardedAutoBytes.Store(1 << 31) } // 2 GiB of output entries

// SetShardedAutoBytes replaces the output-size threshold routing AlgAuto to
// AlgSharded and returns the previous value. A threshold <= 0 disables the
// routing.
func SetShardedAutoBytes(n int64) int64 { return shardedAutoBytes.Swap(n) }

// ShardedAutoBytes returns the current threshold.
func ShardedAutoBytes() int64 { return shardedAutoBytes.Load() }

// shardedRecommended estimates the output size in bytes — flop over the
// sampled compression ratio, times the per-entry cost — and fires when it
// reaches the threshold. All int64/float64 math: a scale-20+ flop total
// must not wrap (the same hardening as shardStripeCount).
func shardedRecommended[V semiring.Value](a, b *matrix.CSRG[V]) bool {
	limit := shardedAutoBytes.Load()
	if limit <= 0 {
		return false
	}
	var totalFlop int64
	for i := 0; i < a.Rows; i++ {
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			k := a.ColIdx[p]
			totalFlop += b.RowPtr[k+1] - b.RowPtr[k]
		}
	}
	if totalFlop <= 0 {
		return false
	}
	var zero V
	per := float64(4 + unsafe.Sizeof(zero))
	// Cheap upper-bound pre-check before paying for the sampled symbolic
	// phase: if even the no-compression bound stays under the threshold,
	// the estimate below cannot reach it either (cr >= 1).
	if float64(totalFlop)*per < float64(limit) {
		return false
	}
	cr := EstimateCompressionRatio(a, b, 1000)
	if cr < 1 {
		cr = 1
	}
	return float64(totalFlop)/cr*per >= float64(limit)
}

// recommendTable4 is the unconstrained Table 4 lookup.
func recommendTable4[V semiring.Value](a, b *matrix.CSRG[V], sorted bool, uc UseCase) Algorithm {
	ef := a.AvgRowNNZ()
	cr := EstimateCompressionRatio(a, b, 1000)
	skewed := IsSkewed(a)

	switch uc {
	case UseTallSkinny:
		// Table 4(b): TallSkinny row — Hash everywhere except the
		// sorted+dense+skewed cell, where HashVector wins.
		if sorted && ef > 8 && skewed {
			return AlgHashVec
		}
		return AlgHash
	case UseTriangle:
		// Table 4(a): LxU sorted — Heap at low compression ratio, Hash at
		// high. The paper only tabulates the sorted case; for unsorted
		// requests Hash applies (Heap cannot skip sorting anyway).
		if sorted && cr <= 2 {
			return AlgHeap
		}
		return AlgHash
	default: // UseSquare
		if skewed {
			// Table 4(b) synthetic skewed columns. The dense+skewed cell is
			// where heavy rows overflow a cache-resident accumulator — the
			// hash kernel's pain case — so when the heavy-row detector fires
			// the post-paper tiled mode takes over; otherwise the paper's
			// Hash pick stands.
			if ef > 8 {
				if HasHeavyRows(a, b) {
					return AlgTiled
				}
				return AlgHash
			}
			if sorted {
				return AlgHeap
			}
			return AlgHashVec
		}
		// Uniform/real data: Table 4(a) by compression ratio.
		if !sorted && cr > 2 {
			return AlgMKLInspector
		}
		if sorted && ef <= 8 && cr <= 2 {
			return AlgHeap
		}
		return AlgHash
	}
}

// MaxRowFlop returns the largest per-row flop count of a·b — the row-skew
// signal the heavy-row detector and the recipe use to spot accumulator
// overflow. One O(nnz(A)) scan, structure-only, no allocations.
func MaxRowFlop[V semiring.Value](a, b *matrix.CSRG[V]) int64 {
	var max int64
	for i := 0; i < a.Rows; i++ {
		var f int64
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			k := a.ColIdx[p]
			f += b.RowPtr[k+1] - b.RowPtr[k]
		}
		if f > max {
			max = f
		}
	}
	return max
}

// HasHeavyRows reports whether some output row's accumulator bound exceeds
// the analytic cache-resident tile width — the regime where AlgTiled's
// column split beats the single-pass hash path. Deterministic and
// structure-only, so AlgAuto stays reproducible across Context reuse.
func HasHeavyRows[V semiring.Value](a, b *matrix.CSRG[V]) bool {
	tc := tileColsFor[V]()
	if b.Cols <= tc {
		return false
	}
	return capBound(MaxRowFlop(a, b), b.Cols) > int64(tc)
}

// EstimateCompressionRatio estimates flop/nnz(C) by running the symbolic
// phase on a sample of up to sampleRows rows (stride-sampled so both head
// and tail of the matrix contribute). An exact value requires the full
// symbolic phase; the estimate is what a recipe-driven caller can afford.
// Structure-only: the sampling hash table never touches values.
func EstimateCompressionRatio[V semiring.Value](a, b *matrix.CSRG[V], sampleRows int) float64 {
	if a.Rows == 0 {
		return 1
	}
	if sampleRows <= 0 || sampleRows > a.Rows {
		sampleRows = a.Rows
	}
	stride := a.Rows / sampleRows
	if stride < 1 {
		stride = 1
	}
	table := accum.NewHashTable(256)
	table.SetGrow(true)
	var flop, nnz int64
	for i := 0; i < a.Rows; i += stride {
		table.Reset()
		alo, ahi := a.RowPtr[i], a.RowPtr[i+1]
		for p := alo; p < ahi; p++ {
			k := a.ColIdx[p]
			blo, bhi := b.RowPtr[k], b.RowPtr[k+1]
			flop += bhi - blo
			for q := blo; q < bhi; q++ {
				table.InsertSymbolic(b.ColIdx[q])
			}
		}
		nnz += int64(table.Len())
	}
	if nnz == 0 {
		return 1
	}
	return float64(flop) / float64(nnz)
}

// IsSkewed reports whether the row-degree distribution of m looks power-law
// rather than uniform, using the coefficient of variation of row nnz. R-MAT
// G500 matrices have CoV well above 1; ER matrices sit near 1/sqrt(ef).
func IsSkewed[V semiring.Value](m *matrix.CSRG[V]) bool {
	if m.Rows < 2 {
		return false
	}
	mean := m.AvgRowNNZ()
	if mean == 0 {
		return false
	}
	var ss float64
	for i := 0; i < m.Rows; i++ {
		d := float64(m.RowPtr[i+1]-m.RowPtr[i]) - mean
		ss += d * d
	}
	cov := math.Sqrt(ss/float64(m.Rows)) / mean
	return cov > 1.0
}
