// Package spgemm implements the paper's primary contribution: optimized
// shared-memory sparse matrix-matrix multiplication (SpGEMM) kernels for
// highly-threaded processors, together with the baseline algorithms the
// paper evaluates against.
//
// All algorithms follow Gustavson's row-wise formulation (Figure 1 of the
// paper): output row i is the sum of rows b_k* of B scaled by the nonzeros
// a_ik of row a_i*. They differ in the accumulator that merges intermediate
// products — hash table, chunked hash table, heap, dense SPA, sorted-list
// merge, or a general-purpose map — and in phase structure (one-phase with
// upper-bound allocation vs two-phase symbolic+numeric).
//
// Shared architecture-specific machinery (Section 4.1 and 3.2 of the paper):
// rows are partitioned over workers by per-row flop counts via prefix sum and
// binary search (sched.BalancedPartition), and every worker allocates its
// accumulator once at its own upper bound and reinitializes it per row
// (mempool discipline).
package spgemm

import (
	"fmt"

	"repro/internal/matrix"
	"repro/internal/sched"
	"repro/internal/semiring"
)

// Algorithm selects the SpGEMM implementation.
type Algorithm int

const (
	// AlgAuto picks an algorithm with the paper's Table 4 recipe.
	AlgAuto Algorithm = iota
	// AlgHash is the paper's optimized hash-table SpGEMM (Section 4.2.1):
	// two-phase, thread-private linear-probing tables sized to the per-
	// thread flop upper bound, balanced scheduling. Accepts any input
	// order; emits sorted or unsorted output ("Any/Select").
	AlgHash
	// AlgHashVec is Hash with chunked ("vectorized") probing (Section
	// 4.2.2), emulating the AVX2/AVX-512 in-register compare.
	AlgHashVec
	// AlgHeap is the optimized heap SpGEMM (Section 4.2.3): one-phase,
	// k-way merge with a thread-private binary heap, thread-private
	// upper-bound output buffers. Requires sorted inputs and always emits
	// sorted output ("Sorted/Sorted").
	AlgHeap
	// AlgSPA is Gustavson's algorithm with a dense sparse accumulator:
	// O(Cols) memory per thread, no collisions. Included as the classic
	// baseline the paper discusses (Section 2).
	AlgSPA
	// AlgMKL stands in for Intel MKL's mkl_sparse_spmm: a two-phase
	// general-purpose map accumulator with plain static scheduling
	// ("Any/Select"). Proprietary MKL is unavailable; see DESIGN.md for
	// why this baseline reproduces MKL's qualitative profile (competitive
	// on small uniform inputs, load-imbalanced on skew, large benefit
	// from unsorted output).
	AlgMKL
	// AlgMKLInspector stands in for the MKL inspector-executor API:
	// one-phase, unsorted-output-only map accumulation with guided
	// scheduling; strongest at high compression ratios.
	AlgMKLInspector
	// AlgKokkos stands in for KokkosKernels' kkmem: two-phase with a
	// cache-sized level-1 hash and a growable level-2 overflow,
	// dynamic scheduling, unsorted output only ("Any/Unsorted").
	AlgKokkos
	// AlgMerge is an iterative sorted-list row-merging SpGEMM in the style
	// of ViennaCL/Gremse et al., included as an additional baseline.
	// Requires sorted inputs; output is inherently sorted.
	AlgMerge
	// AlgIKJ is the IKJ method of Sulatycke and Ghose (Section 2 of the
	// paper): a dense scan over the inner dimension per row, O(n² + flop)
	// work, "only competitive when flop ≥ n²". Historical baseline.
	AlgIKJ
	// AlgBlockedSPA is the cache-blocked SPA of Patwary et al. (ISC 2015,
	// the paper's reference [26]): B partitioned into column blocks so the
	// dense accumulator stays cache-resident.
	AlgBlockedSPA
	// AlgESC is the expansion/sorting/compression formulation of Dalton,
	// Olson and Bell (reference [10]): materialize all intermediate
	// products, sort, and merge. GPU-oriented; a sort-cost lower-bound
	// baseline on CPUs.
	AlgESC
	// AlgTiled is the cache-conscious tiled execution mode (DBCSR/SpArch
	// direction): B is split into column tiles sized from the installed
	// cache parameters, rows whose accumulator bound overflows one tile are
	// decomposed into (row, tile) units processed by dense cache-resident
	// SPAs and flop-balanced across workers, while light rows keep the
	// single-pass hash path. Tiles ascend in column space, so output rows
	// are stitched sorted with no merge pass. Accepts any input order.
	AlgTiled
	// AlgSharded is the staged shard execution engine: A is cut into
	// flop-balanced row stripes that run the hash pipeline shard-locally
	// (symbolic → numeric → merge behind the ShardUnit interface), with B
	// swept in cache-sized column blocks for stripes whose accumulator
	// bound overflows the memmodel tier, and finished stripes landed in a
	// pluggable ShardSink (in-RAM by default; SpillSink for out-of-core
	// products whose output exceeds resident memory). Sorted output is
	// bit-identical to AlgHash. Accepts any input order.
	AlgSharded

	// algLast is the highest defined Algorithm value; keep in sync when
	// adding algorithms (ParseAlgorithm and the metrics cache iterate to it).
	algLast = AlgSharded

	// NumAlgorithms is the number of defined Algorithm values — the size of
	// any per-algorithm lookup table (the server's cached histogram children,
	// the package's own cached counters).
	NumAlgorithms = int(algLast) + 1
)

// String returns the name used in benchmark tables.
func (a Algorithm) String() string {
	switch a {
	case AlgAuto:
		return "auto"
	case AlgHash:
		return "hash"
	case AlgHashVec:
		return "hashvec"
	case AlgHeap:
		return "heap"
	case AlgSPA:
		return "spa"
	case AlgMKL:
		return "mkl"
	case AlgMKLInspector:
		return "mkl-inspector"
	case AlgKokkos:
		return "kokkos"
	case AlgMerge:
		return "merge"
	case AlgIKJ:
		return "ikj"
	case AlgBlockedSPA:
		return "blockedspa"
	case AlgESC:
		return "esc"
	case AlgTiled:
		return "tiled"
	case AlgSharded:
		return "sharded"
	}
	return "unknown"
}

// ParseAlgorithm is the inverse of Algorithm.String: it resolves the names
// the CLIs and the multiply server accept ("auto", "hash", "hashvec", ...).
// The empty string parses as AlgAuto.
func ParseAlgorithm(name string) (Algorithm, bool) {
	if name == "" {
		return AlgAuto, true
	}
	for alg := AlgAuto; alg <= algLast; alg++ {
		if alg.String() == name {
			return alg, true
		}
	}
	return AlgAuto, false
}

// HeapVariant selects the scheduling/memory-management combination for
// AlgHeap, reproducing the five curves of the paper's Figure 9.
type HeapVariant int

const (
	// HeapBalancedParallel is the paper's final design: flop-balanced row
	// partition, thread-private temp buffers. The default.
	HeapBalancedParallel HeapVariant = iota
	// HeapBalancedSingle uses the balanced partition but one shared temp
	// allocation carved into per-thread segments ("balanced single").
	HeapBalancedSingle
	// HeapStatic, HeapDynamic and HeapGuided parallelize naively by row
	// with the corresponding OpenMP-style schedule.
	HeapStatic
	HeapDynamic
	HeapGuided
)

// String returns the Figure 9 curve label.
func (v HeapVariant) String() string {
	switch v {
	case HeapBalancedParallel:
		return "balanced parallel"
	case HeapBalancedSingle:
		return "balanced single"
	case HeapStatic:
		return "static"
	case HeapDynamic:
		return "dynamic"
	case HeapGuided:
		return "guided"
	}
	return "unknown"
}

// Options configures the float64 Multiply entry point. The zero value
// means: auto algorithm, GOMAXPROCS workers, sorted output, plus-times.
//
// Options is the legacy float64 surface; MultiplyRing with an OptionsG[V]
// is the generic one. The only field that does not carry over is Semiring:
// a ring is a type in the generic API, not a value, so Multiply routes a
// non-nil Semiring through the semiring.Func adapter ring (one indirect
// call per operation — the price of runtime-chosen semantics; the shipped
// rings monomorphize instead).
type Options struct {
	Algorithm Algorithm
	// Workers is the number of parallel workers; 0 means GOMAXPROCS.
	Workers int
	// Unsorted requests unsorted output rows where the algorithm supports
	// the choice (Hash, HashVec, MKL, SPA). Skipping the per-row sort is
	// the significant optimization of the paper's Section 5.4.4.
	Unsorted bool
	// HeapVariant selects the Figure 9 scheduling/memory variant of
	// AlgHeap.
	HeapVariant HeapVariant
	// Semiring, when non-nil, replaces (+, ×) via the semiring.Func
	// adapter ring. The nil default uses the monomorphized plus-times ring.
	Semiring *semiring.Semiring
	// Mask, when non-nil, restricts the output pattern: only entries whose
	// position is nonzero in Mask are produced. Used by the triangle
	// counting use case. Supported by the hash-family algorithms.
	Mask *matrix.CSR
	// UseCase tells the AlgAuto recipe which Table 4 scenario this product
	// is (squaring-like, square × tall-skinny, or triangular L×U). The zero
	// value is UseSquare. Ignored unless Algorithm is AlgAuto.
	UseCase UseCase
	// Stats, when non-nil, receives per-phase wall times and per-worker
	// counters for the call (previous contents are overwritten). A nil
	// Stats costs a few pointer compares and nothing else — no clock reads,
	// no allocations.
	Stats *ExecStats
	// Context, when non-nil, carries reusable execution state (per-worker
	// accumulators, scratch buffers, per-row bookkeeping) across Multiply
	// calls; iterative callers reach a steady state where only the output
	// matrix is allocated. nil preserves one-shot behavior. A Context must
	// not be shared by concurrent Multiply calls.
	Context *Context
	// TileCols overrides the column-tile width used by AlgTiled (and the
	// block width of AlgBlockedSPA). 0 means the analytic width derived
	// from the installed cache parameters (see TileColsForElem).
	TileCols int
	// TileHeavyFlop overrides AlgTiled's heavy-row threshold: rows whose
	// accumulator bound exceeds it are routed through column tiling. 0
	// means the tile width itself. AlgSharded reuses both tile-geometry
	// knobs for its column-split decision.
	TileHeavyFlop int64
	// ShardStripes overrides AlgSharded's stripe count. 0 means derive it
	// from the flop total and ShardMemBudget (at least one stripe per
	// worker, at most one per row).
	ShardStripes int
	// ShardMemBudget is the resident-bytes target one stripe's output
	// upper bound is sized against when AlgSharded derives its stripe
	// count (and the budget an auto-created spill sink would enforce).
	// 0 means a 256 MiB default.
	ShardMemBudget int64
	// ShardSink overrides where AlgSharded lands finished stripes. nil
	// means in-RAM assembly (bit-identical to AlgHash for sorted output);
	// a SpillSink bounds peak resident output memory for out-of-core
	// products. A sink serves a single Multiply call.
	ShardSink ShardSink[float64]
}

// OptionsG configures MultiplyRing over value type V. Field semantics match
// Options; the semiring is the ring argument of MultiplyRing rather than a
// field, so each instantiation compiles its Add/Mul directly into the
// kernels' inner loops.
type OptionsG[V semiring.Value] struct {
	Algorithm   Algorithm
	Workers     int
	Unsorted    bool
	HeapVariant HeapVariant
	// Mask, when non-nil, restricts the output pattern (its values are
	// ignored; only the sparsity structure matters).
	Mask    *matrix.CSRG[V]
	UseCase UseCase
	Stats   *ExecStats
	// Context must be a ContextG over the same V as the inputs.
	Context *ContextG[V]
	// TileCols and TileHeavyFlop mirror the Options fields: tile-geometry
	// overrides for AlgTiled and AlgBlockedSPA (and AlgSharded's
	// column-split decision); zero means analytic.
	TileCols      int
	TileHeavyFlop int64
	// ShardStripes, ShardMemBudget and ShardSink mirror the Options
	// fields: AlgSharded's stripe-count override, resident-bytes target
	// and stripe sink.
	ShardStripes   int
	ShardMemBudget int64
	ShardSink      ShardSink[V]
}

func (o *OptionsG[V]) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return sched.DefaultWorkers()
}

// Multiply computes C = A·B with the selected algorithm. A and B must agree
// on the inner dimension. The returned matrix has compacted rows; its Sorted
// flag reflects the actual ordering produced.
func Multiply(a, b *matrix.CSR, opt *Options) (*matrix.CSR, error) {
	if opt == nil {
		opt = &Options{}
	}
	g := &OptionsG[float64]{
		Algorithm:   opt.Algorithm,
		Workers:     opt.Workers,
		Unsorted:    opt.Unsorted,
		HeapVariant: opt.HeapVariant,
		Mask:        opt.Mask,
		UseCase:     opt.UseCase,
		Stats:       opt.Stats,
		Context:     opt.Context,

		TileCols:      opt.TileCols,
		TileHeavyFlop: opt.TileHeavyFlop,

		ShardStripes:   opt.ShardStripes,
		ShardMemBudget: opt.ShardMemBudget,
		ShardSink:      opt.ShardSink,
	}
	if opt.Semiring != nil {
		return MultiplyRing(semiring.Func{S: opt.Semiring}, a, b, g)
	}
	return MultiplyRing(semiring.PlusTimesF64{}, a, b, g)
}

// MultiplyRing computes C = A·B over the given semiring ring. The kernels
// are generic over (V, ring); Go's shape stenciling means the ring's Add/Mul
// reach the inner loops as runtime-dictionary calls, so the float64
// plus-times flagship additionally gets hand-monomorphized inner loops
// (ringfast.go) that every worker selects with one type assertion. Other
// rings run the dictionary path — identical algorithm, two indirect calls
// per product.
func MultiplyRing[V semiring.Value, R semiring.Ring[V]](ring R, a, b *matrix.CSRG[V], opt *OptionsG[V]) (*matrix.CSRG[V], error) {
	if opt == nil {
		opt = &OptionsG[V]{}
	}
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("spgemm: dimension mismatch %dx%d × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	alg := opt.Algorithm
	if alg == AlgAuto {
		alg = Recommend(a, b, !opt.Unsorted, opt.UseCase)
	}
	if opt.Stats != nil {
		opt.Stats.Algorithm = alg
	}
	if opt.Mask != nil {
		switch alg {
		case AlgHash, AlgHashVec:
		default:
			return nil, fmt.Errorf("spgemm: mask is only supported by hash and hashvec, not %v", alg)
		}
		if opt.Mask.Rows != a.Rows || opt.Mask.Cols != b.Cols {
			return nil, fmt.Errorf("spgemm: mask dimensions %dx%d do not match output %dx%d",
				opt.Mask.Rows, opt.Mask.Cols, a.Rows, b.Cols)
		}
	}
	c, err := dispatch(ring, alg, a, b, opt)
	if err != nil {
		return nil, err
	}
	recordMultiply(alg, opt)
	return c, nil
}

// dispatch routes to the concrete kernel.
func dispatch[V semiring.Value, R semiring.Ring[V]](ring R, alg Algorithm, a, b *matrix.CSRG[V], opt *OptionsG[V]) (*matrix.CSRG[V], error) {
	switch alg {
	case AlgHash:
		return hashMultiply(ring, a, b, opt, false)
	case AlgHashVec:
		return hashMultiply(ring, a, b, opt, true)
	case AlgHeap:
		return heapMultiply(ring, a, b, opt)
	case AlgSPA:
		return spaMultiply(ring, a, b, opt)
	case AlgMKL:
		return mapMultiply(ring, a, b, opt)
	case AlgMKLInspector:
		return inspectorMultiply(ring, a, b, opt)
	case AlgKokkos:
		return kokkosMultiply(ring, a, b, opt)
	case AlgMerge:
		return mergeMultiply(ring, a, b, opt)
	case AlgIKJ:
		return ikjMultiply(ring, a, b, opt)
	case AlgBlockedSPA:
		return blockedSPAMultiply(ring, a, b, opt, blockedSPAConfig{})
	case AlgESC:
		return escMultiply(ring, a, b, opt)
	case AlgTiled:
		return tiledMultiply(ring, a, b, opt)
	case AlgSharded:
		return shardedMultiply(ring, a, b, opt)
	}
	return nil, fmt.Errorf("spgemm: unknown algorithm %d", alg)
}

// recordMultiply stamps the per-call metrics after a successful kernel run
// and folds stats-enabled calls into the Context's cumulative totals.
func recordMultiply[V semiring.Value](alg Algorithm, opt *OptionsG[V]) {
	multiplyCounter[alg].Inc()
	if opt.Stats != nil {
		if cf := opt.Stats.CollisionFactor(); cf > 0 {
			mCollision.Observe(cf)
		}
		if opt.Context != nil {
			opt.Context.accumulate(opt.Stats)
		}
	}
}

// Flop re-exports the flop count used for balancing and MFLOPS metrics.
func Flop[V, W semiring.Value](a *matrix.CSRG[V], b *matrix.CSRG[W]) (total int64, perRow []int64) {
	return matrix.Flop(a, b)
}

// SupportsUnsorted reports whether the algorithm can skip output sorting
// (the paper's Table 1 "Sortedness" column).
func SupportsUnsorted(a Algorithm) bool {
	switch a {
	case AlgHash, AlgHashVec, AlgSPA, AlgMKL, AlgMKLInspector, AlgKokkos, AlgIKJ, AlgBlockedSPA, AlgTiled, AlgSharded:
		return true
	}
	return false
}

// RequiresSortedInput reports whether the algorithm needs sorted input rows
// (Heap and Merge operate on sorted streams).
func RequiresSortedInput(a Algorithm) bool {
	return a == AlgHeap || a == AlgMerge
}

// outputShell allocates the column/value arrays of the result once the row
// pointer array is final.
func outputShell[V semiring.Value](rows, cols int, rowPtr []int64, sorted bool) *matrix.CSRG[V] {
	nnz := rowPtr[rows]
	return &matrix.CSRG[V]{
		Rows:   rows,
		Cols:   cols,
		RowPtr: rowPtr,
		ColIdx: make([]int32, nnz),
		Val:    make([]V, nnz),
		Sorted: sorted,
	}
}
