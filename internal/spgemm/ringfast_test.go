package spgemm

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/accum"
	"repro/internal/gen"
	"repro/internal/matrix"
	"repro/internal/sched"
	"repro/internal/semiring"
)

// Tests and benchmarks for the hand-devirtualized float64 plus-times fast
// paths (ringfast.go). The equivalence tests force the generic dictionary
// path by using a ring type the fast path does not recognize and require
// bit-identical output; BenchmarkMultiply is the kernel-level before/after
// benchmark quoted in EXPERIMENTS.md.

const ringfastWorkers = 8

var ringfastFixture struct {
	once sync.Once
	er   *matrix.CSR // uniform: every row takes the hash path
	g500 *matrix.CSR // power-law: heavy rows take the tiled unit path
}

func ringfastMatrices() (*matrix.CSR, *matrix.CSR) {
	ringfastFixture.once.Do(func() {
		rng := rand.New(rand.NewSource(20180618))
		ringfastFixture.er = gen.ER(13, 16, rng)
		ringfastFixture.g500 = gen.RMAT(12, 16, gen.G500Params, rng)
	})
	return ringfastFixture.er, ringfastFixture.g500
}

// slowPlusTimesF64 is plus-times float64 as an anonymous ring type the fast
// path cannot recognize, pinning the generic dictionary-call code path.
type slowPlusTimesF64 struct{}

func (slowPlusTimesF64) Add(a, b float64) float64 { return a + b }
func (slowPlusTimesF64) Mul(a, b float64) float64 { return a * b }
func (slowPlusTimesF64) Zero() float64            { return 0 }

// TestRingFastEquivalence checks that the devirtualized float64 plus-times
// kernels produce bit-identical output to the generic path on both a uniform
// and a skewed input, sorted and unsorted, for the kernels with a fast path.
func TestRingFastEquivalence(t *testing.T) {
	er, g500 := ringfastMatrices()
	for _, alg := range []Algorithm{AlgHash, AlgTiled} {
		for _, m := range []struct {
			name string
			a    *matrix.CSR
		}{{"ER", er}, {"G500", g500}} {
			for _, unsorted := range []bool{false, true} {
				name := fmt.Sprintf("%v/%s/unsorted=%v", alg, m.name, unsorted)
				t.Run(name, func(t *testing.T) {
					fast, err := Multiply(m.a, m.a, &Options{Algorithm: alg, Workers: ringfastWorkers, Unsorted: unsorted})
					if err != nil {
						t.Fatal(err)
					}
					slow, err := MultiplyRing[float64, slowPlusTimesF64](slowPlusTimesF64{}, m.a, m.a, &OptionsG[float64]{Algorithm: alg, Workers: ringfastWorkers, Unsorted: unsorted})
					if err != nil {
						t.Fatal(err)
					}
					requireSameCSR(t, slow, fast)
				})
			}
		}
	}
}

func requireSameCSR(t *testing.T, want, got *matrix.CSR) {
	t.Helper()
	if want.Rows != got.Rows || want.Cols != got.Cols {
		t.Fatalf("shape mismatch: want %dx%d, got %dx%d", want.Rows, want.Cols, got.Rows, got.Cols)
	}
	for i := 0; i <= want.Rows; i++ {
		if want.RowPtr[i] != got.RowPtr[i] {
			t.Fatalf("rowPtr[%d]: want %d, got %d", i, want.RowPtr[i], got.RowPtr[i])
		}
	}
	nnz := want.RowPtr[want.Rows]
	for p := int64(0); p < nnz; p++ {
		if want.ColIdx[p] != got.ColIdx[p] {
			t.Fatalf("colIdx[%d]: want %d, got %d", p, want.ColIdx[p], got.ColIdx[p])
		}
		if want.Val[p] != got.Val[p] {
			t.Fatalf("val[%d]: want %v, got %v (not bit-identical)", p, want.Val[p], got.Val[p])
		}
	}
}

// TestRingFastSelection pins the dispatch contract: the float64 plus-times
// flagship selects the fast path, every other ring stays generic.
func TestRingFastSelection(t *testing.T) {
	er, _ := ringfastMatrices()
	table := accum.NewHashTable(16)
	if _, _, _, ok := ptF64Hash(semiring.PlusTimesF64{}, er, er, table); !ok {
		t.Fatal("PlusTimesF64 over *matrix.CSR must select the hash fast path")
	}
	if _, _, _, ok := ptF64Hash(slowPlusTimesF64{}, er, er, table); ok {
		t.Fatal("a foreign ring type must not select the fast path")
	}
	if _, _, _, ok := ptF64Hash(semiring.MaxTimesF64{}, er, er, table); ok {
		t.Fatal("MaxTimesF64 must not select the fast path (different Add)")
	}
}

// BenchmarkMultiply is the kernel benchmark for the compiler-feedback gate
// work: C = A² at a pinned worker count with a warm Context, so the numbers
// isolate kernel time (ring-call devirtualization, bounds-check elimination)
// from allocation effects.
func BenchmarkMultiply(b *testing.B) {
	er, g500 := ringfastMatrices()
	for _, m := range []struct {
		name string
		a    *matrix.CSR
	}{{"ER", er}, {"G500", g500}} {
		for _, alg := range []Algorithm{AlgHash, AlgTiled} {
			for _, unsorted := range []bool{false, true} {
				mode := "sorted"
				if unsorted {
					mode = "unsorted"
				}
				b.Run(fmt.Sprintf("%s/%v/%s", m.name, alg, mode), func(b *testing.B) {
					ctx := NewContext()
					ctx.Pool = sched.NewPool(ringfastWorkers)
					defer ctx.Pool.Close()
					opt := &Options{Algorithm: alg, Workers: ringfastWorkers, Unsorted: unsorted, Context: ctx}
					if _, err := Multiply(m.a, m.a, opt); err != nil {
						b.Fatal(err)
					}
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if _, err := Multiply(m.a, m.a, opt); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}
