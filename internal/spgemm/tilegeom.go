package spgemm

import (
	"sync"
	"unsafe"

	"repro/internal/semiring"
)

// Tile geometry: how wide a column tile (and the dense accumulator that
// sweeps it) may be while staying cache-resident. The width used to be the
// magic constant defaultSPABlock; it is now derived from the cache
// parameters the memmodel package installs at init from its fitted memory
// tier, with the constant kept only as the fallback for binaries that never
// link memmodel.
//
// The derivation is the working-set argument of Patwary et al. (ISC 2015)
// and DBCSR: a dense accumulator over w columns costs w value slots plus a
// w-entry generation-stamp array plus (worst case) a w-entry index list, and
// it must share the L2 with the streamed rows of B, so only about half the
// cache is budgeted to it. The floor comes from the tier's latency-bandwidth
// product: tiles narrower than that turn B-row stanza reads latency-bound,
// which is the regime Figure 5 of the paper shows bandwidth collapsing in.

// CacheParams describes the cache level the tiled kernels size their
// accumulators for. Installed once at init by memmodel (see
// memmodel.InstallCacheParams); the zero value means "nothing installed" and
// makes every width query fall back to the legacy constant.
type CacheParams struct {
	// L2Bytes is the per-core L2 capacity the accumulator must fit into.
	L2Bytes int
	// LineBytes is the cache line size.
	LineBytes int
	// MinTileCols is the narrowest tile worth creating: below it, per-tile
	// B-row stanzas are too short to amortize memory latency.
	MinTileCols int
	// TierFitted records whether these parameters came from a fitted
	// memmodel.Tier (true) or a hardcoded default.
	TierFitted bool
	// Source names where the parameters came from, for reports.
	Source string
}

var (
	cacheParamsMu sync.RWMutex
	cacheParams   CacheParams
	haveParams    bool
)

// SetCacheParams installs the cache parameters the tile-width derivation
// uses. Called by memmodel at init; tests may install synthetic geometries.
// Parameters with a non-positive L2 size are rejected (the previous
// installation, if any, stays in effect).
func SetCacheParams(p CacheParams) {
	if p.L2Bytes <= 0 {
		return
	}
	if p.LineBytes <= 0 {
		p.LineBytes = 64
	}
	if p.MinTileCols <= 0 {
		p.MinTileCols = 1024
	}
	cacheParamsMu.Lock()
	cacheParams = p
	haveParams = true
	cacheParamsMu.Unlock()
}

// CurrentCacheParams returns the installed cache parameters and whether any
// have been installed.
//
// Called once per Multiply during planning, never per row, so the defer is
// acceptable here; do not add //spgemm:hotpath (deferhot would reject it).
func CurrentCacheParams() (CacheParams, bool) {
	cacheParamsMu.RLock()
	defer cacheParamsMu.RUnlock()
	return cacheParams, haveParams
}

// TileColsForElem returns the analytic column-tile width for a dense
// accumulator with elemBytes-wide values: the largest power of two whose
// value+stamp+index working set fits half the installed L2, clamped below by
// the latency-amortization floor. With no parameters installed it returns
// the legacy defaultSPABlock constant (which the analytic rule reproduces
// exactly for float64 on a 1 MiB KNL-tile L2 slice).
func TileColsForElem(elemBytes int) int {
	p, ok := CurrentCacheParams()
	if !ok {
		return defaultSPABlock
	}
	if elemBytes < 1 {
		elemBytes = 1
	}
	// Value slot + uint32 generation stamp + int32 index-list entry.
	perCol := elemBytes + 8
	budget := p.L2Bytes / 2
	w := floorPow2(budget / perCol)
	if w < p.MinTileCols {
		w = p.MinTileCols
	}
	return w
}

// tileColsFor is TileColsForElem for a concrete value type.
func tileColsFor[V semiring.Value]() int {
	var zero V
	return TileColsForElem(int(unsafe.Sizeof(zero)))
}

// tileGeometry resolves the effective tile width and heavy-row flop
// threshold for one call: explicit Options overrides win, otherwise the
// analytic width. The default threshold equals the tile width — a row whose
// accumulator bound exceeds one cache-resident tile is exactly a row the
// single-pass hash path cannot keep in cache.
func (o *OptionsG[V]) tileGeometry() (tileCols int, heavyFlop int64) {
	tileCols = o.TileCols
	if tileCols <= 0 {
		tileCols = tileColsFor[V]()
	}
	if tileCols < 1 {
		tileCols = 1
	}
	heavyFlop = o.TileHeavyFlop
	if heavyFlop <= 0 {
		heavyFlop = int64(tileCols)
	}
	return tileCols, heavyFlop
}

// RecommendTileCols refines the analytic tile width with the observability
// signals of a previous run on the same workload (the ExecStats collision
// factor and per-worker flop imbalance): a collision factor beyond 2 means
// the hash tables were degrading, and an imbalance beyond 1.5 means there
// were too few schedulable units — both argue for narrower tiles (more rows
// diverted to the cache-resident path, more (row, tile) units to balance).
// The width never drops below the installed MinTileCols floor. A nil stats
// returns the analytic width unchanged.
func RecommendTileCols(st *ExecStats, elemBytes int) int {
	w := TileColsForElem(elemBytes)
	if st == nil {
		return w
	}
	shrink := 0
	if st.CollisionFactor() > 2 {
		shrink++
	}
	if flopImbalance(st) > 1.5 {
		shrink++
	}
	w >>= shrink
	floor := 1024
	if p, ok := CurrentCacheParams(); ok {
		floor = p.MinTileCols
	}
	if w < floor {
		w = floor
	}
	return w
}

// flopImbalance is max per-worker flop over mean — the load-balance signal
// already collected by every kernel's worker stats.
func flopImbalance(st *ExecStats) float64 {
	if st == nil || len(st.Workers) == 0 {
		return 1
	}
	var total, max int64
	for i := range st.Workers {
		f := st.Workers[i].Flop
		total += f
		if f > max {
			max = f
		}
	}
	if total == 0 {
		return 1
	}
	return float64(max) * float64(len(st.Workers)) / float64(total)
}

// floorPow2 returns the largest power of two not exceeding n (minimum 1).
func floorPow2(n int) int {
	w := 1
	for w<<1 <= n && w<<1 > 0 {
		w <<= 1
	}
	return w
}
