package spgemm

import (
	"repro/internal/matrix"
	"repro/internal/sched"
	"repro/internal/semiring"
)

// AlgSharded: the staged shard driver. The monolithic hash pipeline
// (hashfast.go) partitions rows over exactly `workers` ranges and runs each
// range start-to-finish on its worker; here the same pipeline is cut into
// stripe-local ShardUnits — usually many more stripes than workers — that
// flow through the pool with dynamic scheduling and land in a pluggable
// ShardSink. The decomposition follows the 1.5D/row-stripe shape of
// distributed SpGEMM (Deveci et al., arXiv:1801.03065): stripes are
// flop-balanced (Figure 6 of the paper, via sched.BalancedPartition), and a
// stripe whose accumulator bound overflows the memmodel cache tier sweeps B
// in ascending column blocks (matrix.ColBlock) so its table stays
// cache-resident.
//
// Identity guarantee: with sorted output, the product is bit-identical to
// AlgHash on the same inputs. Each output entry's products fold in A-row
// order in both engines (the column-block sweep also visits every k of a row
// per block, in order), per-row extraction sorts canonically, ascending
// blocks concatenate sorted, and the sink places rows at the same global
// offsets the monolithic kernel computes. With unsorted output the entry
// *sets* match but the order within a row may differ — hash-table iteration
// order depends on table capacity, which legitimately differs per stripe.

// shardedMultiply is the AlgSharded driver.
func shardedMultiply[V semiring.Value, R semiring.Ring[V]](ring R, a, b *matrix.CSRG[V], opt *OptionsG[V]) (*matrix.CSRG[V], error) {
	workers := opt.workers()
	if workers > a.Rows && a.Rows > 0 {
		workers = a.Rows
	}
	if workers < 1 {
		workers = 1
	}
	ctx := opt.ctx()
	ctx.ensureWorkers(workers)
	pt := startPhases(opt.Stats, workers)
	flopRow := ctx.perRowFlop(a, b)
	var totalFlop int64
	for _, f := range flopRow {
		totalFlop += f
	}
	geom := opt.shardPlanGeometry(ctx, flopRow, totalFlop, a.Rows, b.Cols, workers)
	pt.tick(PhasePartition)

	rowNnz := ctx.rowNnzBuf(a.Rows)
	src := newHashShardSource(ring, a, b, ctx, &geom, flopRow, opt.Unsorted)
	shardSymbolic[V](ctx, src, workers, rowNnz)
	pt.tick(PhaseSymbolic)

	rowPtr := ctx.prefixSum(rowNnz, nil, workers)
	var sink ShardSink[V] = opt.ShardSink
	if sink == nil {
		sink = &memShardSink[V]{}
	}
	if err := sink.Bind(a.Rows, b.Cols, rowPtr, !opt.Unsorted); err != nil {
		return nil, err
	}
	pt.tick(PhaseAlloc)

	if err := shardNumeric[V](ctx, src, workers, rowPtr, sink, &pt); err != nil {
		return nil, err
	}
	pt.tick(PhaseNumeric)

	c, err := sink.Assemble()
	if err != nil {
		return nil, err
	}
	pt.tick(PhaseAssemble)
	fillStripeStats(opt.Stats, &geom, flopRow, rowPtr, sink)
	pt.finish()
	return c, nil
}

// shardSymbolic runs every stripe's symbolic stage through the pool with
// dynamic scheduling (stripes are flop-balanced, but symbolic cost still
// varies; stealing idle workers is free here).
func shardSymbolic[V semiring.Value](ctx *ContextG[V], src ShardSource[V], workers int, rowNnz []int64) {
	ctx.parallelFor("shard-symbolic", workers, src.Shards(), sched.Dynamic, 1, func(w, lo, hi int) {
		for s := lo; s < hi; s++ {
			src.Unit(s).Symbolic(w, rowNnz)
		}
	})
}

// shardNumeric runs every stripe's numeric stage and merge through the pool.
// Each stripe checks out its sink window (which may block on an out-of-core
// sink's resident budget), fills it, and commits it before the next stripe
// starts on that worker — overlapping stripe computation with stripe
// writeback is exactly what bounds the sink's resident set.
func shardNumeric[V semiring.Value](ctx *ContextG[V], src ShardSource[V], workers int, rowPtr []int64, sink ShardSink[V], pt *phaseTimer) error {
	n := src.Shards()
	errs := make([]error, n)
	ctx.parallelFor("shard-numeric", workers, n, sched.Dynamic, 1, func(w, lo, hi int) {
		ws := pt.worker(w) // may be nil; units accumulate with +=
		for s := lo; s < hi; s++ {
			u := src.Unit(s)
			slo, shi := src.Rows(s)
			cols, vals, err := sink.Stripe(s, slo, shi)
			if err != nil {
				errs[s] = err
				continue
			}
			u.Numeric(w, rowPtr, cols, vals, ws)
			if err := u.Merge(sink); err != nil {
				errs[s] = err
			}
		}
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// shardSpiller is the optional sink capability StripeStats reports.
type shardSpiller interface{ Spills() bool }

// fillStripeStats records the per-stripe breakdown into ExecStats.
func fillStripeStats[V semiring.Value](st *ExecStats, geom *shardGeometry, flopRow, rowPtr []int64, sink ShardSink[V]) {
	if st == nil {
		return
	}
	spilled := false
	if sp, ok := sink.(shardSpiller); ok {
		spilled = sp.Spills()
	}
	for s := 0; s+1 < len(geom.offsets); s++ {
		lo, hi := geom.offsets[s], geom.offsets[s+1]
		st.Stripes = append(st.Stripes, StripeStats{
			Lo:       lo,
			Hi:       hi,
			Flop:     rangeFlop(flopRow, lo, hi),
			Nnz:      rowPtr[hi] - rowPtr[lo],
			ColSplit: geom.wide[s],
			Spilled:  spilled,
		})
	}
}

// hashShardSource adapts the hash kernel to the shard interfaces: one
// hashStripeUnit per stripe, preallocated so Unit hands out stable pointers.
type hashShardSource[V semiring.Value, R semiring.Ring[V]] struct {
	units []hashStripeUnit[V, R]
}

func newHashShardSource[V semiring.Value, R semiring.Ring[V]](ring R, a, b *matrix.CSRG[V], ctx *ContextG[V], geom *shardGeometry, flopRow []int64, unsorted bool) *hashShardSource[V, R] {
	n := len(geom.offsets) - 1
	src := &hashShardSource[V, R]{units: make([]hashStripeUnit[V, R], n)}
	for s := 0; s < n; s++ {
		src.units[s] = hashStripeUnit[V, R]{
			ring:      ring,
			a:         a,
			b:         b,
			ctx:       ctx,
			s:         s,
			lo:        geom.offsets[s],
			hi:        geom.offsets[s+1],
			bound:     geom.bound[s],
			wide:      geom.wide[s],
			blockCols: geom.blockCols,
			unsorted:  unsorted,
			flopRow:   flopRow,
		}
	}
	return src
}

func (h *hashShardSource[V, R]) Shards() int { return len(h.units) }

func (h *hashShardSource[V, R]) Rows(s int) (int, int) {
	u := &h.units[s]
	return u.lo, u.hi
}

func (h *hashShardSource[V, R]) Unit(s int) ShardUnit[V] { return &h.units[s] }

// hashStripeUnit is the hash kernel scoped to one row stripe. The narrow
// path replicates hashFast's inner loops exactly (including the
// monomorphized float64 plus-times row loop), with global row indices, so
// stripe outputs are byte-for-byte what the monolithic kernel would write at
// the same offsets. The wide path sweeps B in ascending column blocks with a
// table bounded by the block width — the cache-resident regime — and relies
// on per-block sorted extraction concatenating into sorted rows.
type hashStripeUnit[V semiring.Value, R semiring.Ring[V]] struct {
	ring      R
	a, b      *matrix.CSRG[V]
	ctx       *ContextG[V]
	s         int
	lo, hi    int
	bound     int64
	wide      bool
	blockCols int
	unsorted  bool
	flopRow   []int64
}

func (u *hashStripeUnit[V, R]) Symbolic(w int, rowNnz []int64) {
	a, b := u.a, u.b
	if !u.wide {
		table := u.ctx.hashTable(w, u.bound)
		for i := u.lo; i < u.hi; i++ {
			table.Reset()
			alo, ahi := a.RowPtr[i], a.RowPtr[i+1]
			for p := alo; p < ahi; p++ {
				k := a.ColIdx[p]
				blo, bhi := b.RowPtr[k], b.RowPtr[k+1]
				for q := blo; q < bhi; q++ {
					table.InsertSymbolic(b.ColIdx[q])
				}
			}
			rowNnz[i] = int64(table.Len())
		}
		return
	}
	table := u.ctx.hashTable(w, capBound(u.bound, u.blockCols))
	for i := u.lo; i < u.hi; i++ {
		var total int64
		alo, ahi := a.RowPtr[i], a.RowPtr[i+1]
		for c0 := 0; c0 < b.Cols; c0 += u.blockCols {
			c1 := c0 + u.blockCols
			if c1 > b.Cols {
				c1 = b.Cols
			}
			blk := matrix.ColBlockOf(b, int32(c0), int32(c1))
			table.Reset()
			for p := alo; p < ahi; p++ {
				cols, _, exact := blk.Row(int(a.ColIdx[p]))
				if exact {
					for _, col := range cols {
						table.InsertSymbolic(col)
					}
				} else {
					for _, col := range cols {
						if col >= int32(c0) && col < int32(c1) {
							table.InsertSymbolic(col)
						}
					}
				}
			}
			total += int64(table.Len())
		}
		rowNnz[i] = total
	}
}

func (u *hashStripeUnit[V, R]) Numeric(w int, rowPtr []int64, cols []int32, vals []V, ws *WorkerStats) {
	a, b := u.a, u.b
	base := rowPtr[u.lo]
	if !u.wide {
		table := u.ctx.hashTable(w, u.bound)
		fa, fb, ftab, fastF64 := ptF64Hash(u.ring, a, b, table)
		for i := u.lo; i < u.hi; i++ {
			table.Reset()
			if fastF64 {
				hashRowNumericF64(ftab, fa, fb, i)
			} else {
				alo, ahi := a.RowPtr[i], a.RowPtr[i+1]
				for p := alo; p < ahi; p++ {
					k := a.ColIdx[p]
					av := a.Val[p]
					blo, bhi := b.RowPtr[k], b.RowPtr[k+1]
					for q := blo; q < bhi; q++ {
						prod := u.ring.Mul(av, b.Val[q])
						slot, fresh := table.Upsert(b.ColIdx[q])
						if fresh {
							*slot = prod
						} else {
							*slot = u.ring.Add(*slot, prod)
						}
					}
				}
			}
			start := rowPtr[i] - base
			n := rowPtr[i+1] - rowPtr[i]
			if u.unsorted {
				table.ExtractUnsorted(cols[start:start+n], vals[start:start+n])
			} else {
				table.ExtractSorted(cols[start:start+n], vals[start:start+n])
			}
		}
		if ws != nil {
			ws.Rows += int64(u.hi - u.lo)
			ws.Flop += rangeFlop(u.flopRow, u.lo, u.hi)
			ws.HashLookups += table.Lookups()
			ws.HashProbes += table.Probes()
		}
		return
	}
	table := u.ctx.hashTable(w, capBound(u.bound, u.blockCols))
	for i := u.lo; i < u.hi; i++ {
		off := rowPtr[i] - base
		alo, ahi := a.RowPtr[i], a.RowPtr[i+1]
		for c0 := 0; c0 < b.Cols; c0 += u.blockCols {
			c1 := c0 + u.blockCols
			if c1 > b.Cols {
				c1 = b.Cols
			}
			blk := matrix.ColBlockOf(b, int32(c0), int32(c1))
			table.Reset()
			for p := alo; p < ahi; p++ {
				av := a.Val[p]
				bcols, bvals, exact := blk.Row(int(a.ColIdx[p]))
				for q := range bcols {
					col := bcols[q]
					if !exact && (col < int32(c0) || col >= int32(c1)) {
						continue
					}
					prod := u.ring.Mul(av, bvals[q])
					slot, fresh := table.Upsert(col)
					if fresh {
						*slot = prod
					} else {
						*slot = u.ring.Add(*slot, prod)
					}
				}
			}
			n := int64(table.Len())
			if u.unsorted {
				table.ExtractUnsorted(cols[off:off+n], vals[off:off+n])
			} else {
				table.ExtractSorted(cols[off:off+n], vals[off:off+n])
			}
			off += n
		}
	}
	if ws != nil {
		ws.Rows += int64(u.hi - u.lo)
		ws.Flop += rangeFlop(u.flopRow, u.lo, u.hi)
		ws.HashLookups += table.Lookups()
		ws.HashProbes += table.Probes()
	}
}

func (u *hashStripeUnit[V, R]) Merge(sink ShardSink[V]) error { return sink.Commit(u.s) }
