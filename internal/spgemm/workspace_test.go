package spgemm

import (
	"math/rand"
	"testing"

	"repro/internal/matrix"
)

func TestWorkspaceMatchesMultiply(t *testing.T) {
	rng := rand.New(rand.NewSource(141))
	ws := NewWorkspace(3)
	for trial := 0; trial < 15; trial++ {
		a, b := randPair(rng, 40, 0.2)
		want := matrix.NaiveMultiply(a, b)
		for _, unsorted := range []bool{false, true} {
			got, err := ws.Multiply(a, b, unsorted)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if err := got.Validate(); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if !matrix.EqualApprox(want, got, 1e-10) {
				t.Fatalf("trial %d unsorted=%v: workspace product wrong", trial, unsorted)
			}
		}
	}
}

func TestWorkspaceReuseAcrossShrinkingAndGrowingInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(142))
	ws := NewWorkspace(2)
	sizes := []int{50, 10, 80, 5, 80}
	for _, n := range sizes {
		a := matrix.Random(n, n, 0.2, rng)
		want := matrix.NaiveMultiply(a, a)
		got, err := ws.Multiply(a, a, false)
		if err != nil {
			t.Fatal(err)
		}
		if !matrix.EqualApprox(want, got, 1e-10) {
			t.Fatalf("n=%d: wrong product after reuse", n)
		}
	}
}

func TestWorkspaceOutputsAreIndependent(t *testing.T) {
	// Consecutive results must not alias each other's storage.
	rng := rand.New(rand.NewSource(143))
	ws := NewWorkspace(1)
	a := matrix.Random(20, 20, 0.3, rng)
	c1, err := ws.Multiply(a, a, false)
	if err != nil {
		t.Fatal(err)
	}
	saved := c1.Clone()
	if _, err := ws.Multiply(a, a, false); err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(c1, saved) {
		t.Fatal("second Multiply mutated the first result")
	}
}

func TestWorkspaceDimensionMismatch(t *testing.T) {
	ws := NewWorkspace(0)
	if _, err := ws.Multiply(matrix.Identity(3), matrix.Identity(4), false); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestWorkspaceIterativeSquaring(t *testing.T) {
	// MCL-style loop: repeated squaring stays correct with one workspace.
	rng := rand.New(rand.NewSource(144))
	ws := NewWorkspace(2)
	m := matrix.Random(15, 15, 0.25, rng)
	ref := m.Clone()
	for iter := 0; iter < 3; iter++ {
		var err error
		m, err = ws.Multiply(m, m, false)
		if err != nil {
			t.Fatal(err)
		}
		ref = matrix.NaiveMultiply(ref, ref)
		if !matrix.EqualApprox(ref, m, 1e-6) {
			t.Fatalf("iteration %d diverged", iter)
		}
	}
}
