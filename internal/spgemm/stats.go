package spgemm

import "repro/internal/matrix"

// AccessStats characterizes the memory traffic of a row-wise SpGEMM A·B, in
// the three categories of the paper's Section 3.3: streaming access (row
// pointers of A, writing of C), stanza access (reads of B rows at random
// row starts with contiguous runs inside the row), and fine-grained random
// access (accumulator updates). The stanza-length histogram feeds the
// two-tier memory model of internal/memmodel to estimate the MCDRAM benefit
// of Figure 10.
type AccessStats struct {
	// StanzaBytes[k] is the total bytes moved by B-row reads whose stanza
	// length falls in bucket k: [2^k, 2^(k+1)) bytes.
	StanzaBytes []int64
	// StreamBytes is the streamed traffic: reading A once and writing C
	// once.
	StreamBytes int64
	// RandomBytes is the fine-grained accumulator traffic: one 8-byte
	// update per flop.
	RandomBytes int64
	// Flop is the multiplication count, for normalization.
	Flop int64
	// Rows is the number of output rows (per-row overheads in memory
	// models scale with it).
	Rows int
}

// bytesPerEntry is the storage cost of one CSR entry: a 4-byte column index
// plus an 8-byte value.
const bytesPerEntry = 12

// CollectAccessStats derives AccessStats from the structure of A and B
// alone — no multiplication is performed. nnzC, when known (>0), improves
// the stream estimate; pass 0 to estimate C as flop-sized.
func CollectAccessStats(a, b *matrix.CSR, nnzC int64) AccessStats {
	var st AccessStats
	st.StanzaBytes = make([]int64, 32)
	st.Rows = a.Rows
	for i := 0; i < a.Rows; i++ {
		alo, ahi := a.RowPtr[i], a.RowPtr[i+1]
		for p := alo; p < ahi; p++ {
			k := a.ColIdx[p]
			rlen := b.RowPtr[k+1] - b.RowPtr[k]
			if rlen == 0 {
				continue
			}
			bytes := rlen * bytesPerEntry
			st.StanzaBytes[bucketOf(bytes)] += bytes
			st.Flop += rlen
		}
	}
	if nnzC <= 0 {
		nnzC = st.Flop
	}
	st.StreamBytes = a.NNZ()*bytesPerEntry + int64(a.Rows+1)*8 + nnzC*bytesPerEntry
	st.RandomBytes = st.Flop * 8
	return st
}

// bucketOf returns k such that 2^k <= bytes < 2^(k+1), clamped to the
// histogram range.
func bucketOf(bytes int64) int {
	k := 0
	for v := bytes; v > 1; v >>= 1 {
		k++
	}
	if k > 31 {
		k = 31
	}
	return k
}

// MeanStanzaBytes returns the byte-weighted mean stanza length of the B-row
// accesses — the single number that locates a workload on the Figure 5
// bandwidth curve.
func (s AccessStats) MeanStanzaBytes() float64 {
	var total, weighted float64
	for k, b := range s.StanzaBytes {
		if b == 0 {
			continue
		}
		mid := float64(int64(3)<<uint(k)) / 2 // midpoint of [2^k, 2^(k+1))
		total += float64(b)
		weighted += float64(b) * mid
	}
	if total == 0 {
		return 0
	}
	return weighted / total
}

// TotalBytes returns all traffic categories summed.
func (s AccessStats) TotalBytes() int64 {
	t := s.StreamBytes + s.RandomBytes
	for _, b := range s.StanzaBytes {
		t += b
	}
	return t
}
