package spgemm

import (
	"repro/internal/accum"
	"repro/internal/matrix"
	"repro/internal/mempool"
	"repro/internal/sched"
	"repro/internal/semiring"
)

// ContextG is the reusable execution state of the SpGEMM kernels: the
// per-worker accumulators (hash tables, chunked hash tables, merge heaps),
// the per-worker temp buffers of the one-phase kernels, and the per-row
// bookkeeping arrays (flop counts, row sizes, partition offsets, prefix-sum
// scratch). All of it grows monotonically and is reused across Multiply
// calls, so iterative workloads — MCL's repeated M·M, multi-source BFS
// frontiers, label propagation, betweenness — pay the paper's Section 3.2
// memory-management bill once instead of every call. After warm-up, a hash
// SpGEMM through a Context allocates only the output matrix.
//
// A Context is specific to one value type V: its accumulators and value
// scratch hold V entries. The ring used for a given call is independent —
// the same ContextG[float64] serves plus-times, min-plus and max-times
// products alike, because the accumulators store values without ever
// interpreting them (the driver applies the ring to Upsert slots).
//
// Usage: create one Context, point Options.Context at it, and call Multiply
// in a loop. A nil Options.Context preserves the one-shot behavior (every
// call allocates fresh state, exactly as before Contexts existed).
//
// A Context is NOT safe for concurrent use: concurrent Multiply calls must
// use distinct Contexts (or nil). The optional worker pool is the exception —
// sched.Pool is concurrency-safe and may be shared.
type ContextG[V semiring.Value] struct {
	// Pool, when non-nil, runs this context's parallel regions on a caller-
	// managed worker pool instead of the process-wide default pool. Both are
	// persistent (parked goroutines); a dedicated pool only isolates this
	// context's regions from unrelated traffic.
	Pool *sched.Pool

	// Per-worker accumulator state, grown on demand.
	hash    []*accum.HashTableG[V]
	hashVec []*accum.HashVecTableG[V]
	heaps   []*accum.MergeHeapG[V]
	spa     []*accum.SPAG[V]
	scratch *mempool.Pool

	// Per-worker value scratch (the V-typed counterpart of the index buffers
	// in mempool.Scratch), grown monotonically like everything else here.
	// Two independent buffers per worker because the merge kernel ping-pongs.
	valA [][]V
	valB [][]V

	// Per-row bookkeeping, grown on demand.
	flopRow []int64
	rowNnz  []int64
	offsets []int
	ps      []int64

	// Tiled-execution state (AlgTiled): the light-row weight copy, the flat
	// column-split of B (nTiles row-pointer blocks plus tile-local column
	// ids and gathered values), the heavy (row, tile) unit bookkeeping, and
	// a second offsets/prefix-sum pair so unit partitioning never aliases
	// the row partition's buffers.
	lightFlop  []int64
	tileRowPtr []int64
	tileCur    []int64
	tileIdx    []int32
	tileVal    []V
	unitRow    []int32
	unitTile   []int32
	unitFlop   []int64
	unitNnz    []int64
	unitOff    []int64
	uoffsets   []int
	ups        []int64

	// Sharded-execution state (AlgSharded): per-stripe accumulator bounds
	// and column-split flags of the stripe geometry.
	stripeBound []int64
	stripeWide  []bool

	// Cumulative stats across stats-enabled calls through this context
	// (see CumulativeStats).
	cum      ExecStats
	cumCalls int64
}

// Context is the float64 instantiation — the type existing callers hold.
type Context = ContextG[float64]

// NewContext returns an empty float64 Context. Buffers are sized on first
// use and grow monotonically afterwards.
func NewContext() *Context { return &Context{} }

// NewContextG returns an empty Context over V.
func NewContextG[V semiring.Value]() *ContextG[V] { return &ContextG[V]{} }

// ctx returns the reusable context for this call: the caller's when set, or
// a fresh transient one, which makes every ensure-method allocate — byte-for-
// byte the pre-Context one-shot behavior.
func (o *OptionsG[V]) ctx() *ContextG[V] {
	if o.Context != nil {
		return o.Context
	}
	return &ContextG[V]{}
}

// pool returns the worker pool this context's parallel regions run on: the
// caller-managed one when set, the process-wide default otherwise.
func (c *ContextG[V]) pool() *sched.Pool {
	if c.Pool != nil {
		return c.Pool
	}
	return sched.Default()
}

// runWorkers runs a parallel region on the context's pool (or the default).
// name labels the region on the tracer's worker lanes.
func (c *ContextG[V]) runWorkers(name string, workers int, body func(worker int)) {
	c.pool().RunWorkersNamed(name, workers, body)
}

// parallelFor runs a scheduled loop on the context's pool (or the default).
// name labels the region on the tracer's worker lanes.
func (c *ContextG[V]) parallelFor(name string, workers, n int, s sched.Schedule, grain int, body func(worker, lo, hi int)) {
	c.pool().ParallelForNamed(name, workers, n, s, grain, body)
}

// accumulate folds one stats-enabled call into the context's running totals.
func (c *ContextG[V]) accumulate(st *ExecStats) {
	c.cum.Add(st)
	c.cumCalls++
}

// CumulativeStats returns a copy of the phase times and worker counters
// accumulated over every stats-enabled Multiply (and Plan.Execute) routed
// through this context — the aggregate breakdown iterative workloads like MCL
// report instead of just the last call's. Returns nil before the first
// stats-enabled call.
func (c *ContextG[V]) CumulativeStats() *ExecStats {
	if c.cumCalls == 0 {
		return nil
	}
	return c.cum.Clone()
}

// CumulativeCalls returns how many stats-enabled calls have been accumulated.
func (c *ContextG[V]) CumulativeCalls() int64 { return c.cumCalls }

// ResetCumulative clears the running totals (e.g. between benchmark reps).
func (c *ContextG[V]) ResetCumulative() {
	c.cum = ExecStats{}
	c.cumCalls = 0
}

// prefixSum computes the exclusive prefix sum on the context's pool.
func (c *ContextG[V]) prefixSum(weights, out []int64, workers int) []int64 {
	return c.pool().PrefixSum(weights, out, workers)
}

// perRowFlop computes the per-row flop counts into the context's reusable
// buffer (the FlopInto satellite of the allocate-once discipline). The total
// the pre-pass computes anyway feeds the spgemm_flop_total counter.
func (c *ContextG[V]) perRowFlop(a, b *matrix.CSRG[V]) []int64 {
	total, perRow := matrix.FlopInto(a, b, c.flopRow)
	mFlop.Add(total)
	c.flopRow = perRow
	return perRow
}

// partition computes the flop-balanced row partition (Figure 6) into the
// context's reusable offsets and prefix-sum buffers.
func (c *ContextG[V]) partition(flopRow []int64, parts, workers int) []int {
	if n := len(flopRow); cap(c.ps) < n+1 {
		c.ps = make([]int64, n+1)
	}
	c.offsets = c.pool().BalancedPartitionInto(flopRow, parts, workers, c.offsets, c.ps)
	return c.offsets
}

// rowNnzBuf returns the per-row output-size array, zeroed, with length rows.
func (c *ContextG[V]) rowNnzBuf(rows int) []int64 {
	if cap(c.rowNnz) < rows {
		c.rowNnz = make([]int64, rows)
	}
	c.rowNnz = c.rowNnz[:rows]
	for i := range c.rowNnz {
		c.rowNnz[i] = 0
	}
	return c.rowNnz
}

// ensureWorkers grows the per-worker accumulator slices to at least n slots.
func (c *ContextG[V]) ensureWorkers(n int) {
	if n > len(c.hash) {
		grown := make([]*accum.HashTableG[V], n)
		copy(grown, c.hash)
		c.hash = grown
	}
	if n > len(c.hashVec) {
		grown := make([]*accum.HashVecTableG[V], n)
		copy(grown, c.hashVec)
		c.hashVec = grown
	}
	if n > len(c.heaps) {
		grown := make([]*accum.MergeHeapG[V], n)
		copy(grown, c.heaps)
		c.heaps = grown
	}
	if n > len(c.spa) {
		grown := make([]*accum.SPAG[V], n)
		copy(grown, c.spa)
		c.spa = grown
	}
	if n > len(c.valA) {
		grown := make([][]V, n)
		copy(grown, c.valA)
		c.valA = grown
	}
	if n > len(c.valB) {
		grown := make([][]V, n)
		copy(grown, c.valB)
		c.valB = grown
	}
	if c.scratch == nil {
		c.scratch = mempool.NewPool(n)
	} else {
		c.scratch.Ensure(n)
	}
}

// hashTable returns worker w's hash table with capacity for bound entries:
// cached when large enough (reset), re-reserved when the bound grew,
// allocated on first use. ensureWorkers(>w) must have been called.
func (c *ContextG[V]) hashTable(w int, bound int64) *accum.HashTableG[V] {
	t := c.hash[w]
	switch {
	case t == nil:
		mCtxAlloc.Inc()
		t = accum.NewHashTableG[V](bound)
		c.hash[w] = t
		return t
	case int64(t.Cap()) <= bound:
		mCtxReuse.Inc()
		t.Reserve(bound)
	default:
		mCtxReuse.Inc()
		t.Reset()
	}
	t.ResetCounters() // per-call ExecStats semantics, as with a fresh table
	return t
}

// hashVecTable is hashTable for the chunked (HashVector) table.
func (c *ContextG[V]) hashVecTable(w int, bound int64) *accum.HashVecTableG[V] {
	t := c.hashVec[w]
	switch {
	case t == nil:
		mCtxAlloc.Inc()
		t = accum.NewHashVecTableG[V](bound)
		c.hashVec[w] = t
		return t
	case int64(t.Cap()) <= bound:
		mCtxReuse.Inc()
		t.Reserve(bound)
	default:
		mCtxReuse.Inc()
		t.Reset()
	}
	t.ResetCounters()
	return t
}

// mergeHeap returns worker w's merge heap, reset, with capacity for bound
// cursors. ensureWorkers(>w) must have been called.
func (c *ContextG[V]) mergeHeap(w int, bound int64) *accum.MergeHeapG[V] {
	h := c.heaps[w]
	if h == nil {
		mCtxAlloc.Inc()
		h = accum.NewMergeHeapG[V](bound)
		c.heaps[w] = h
	} else {
		mCtxReuse.Inc()
		h.Reset()
		h.ResetCounters()
	}
	return h
}

// workerScratch returns worker w's reusable index-buffer set. ensureWorkers
// must have been called with a count above w.
func (c *ContextG[V]) workerScratch(w int) *mempool.Scratch {
	return c.scratch.Get(w)
}

// valScratchA returns worker w's first value buffer with length at least n
// (contents undefined), growing it monotonically like mempool.Scratch does
// for the index buffers. ensureWorkers must have been called above w.
func (c *ContextG[V]) valScratchA(w, n int) []V {
	if cap(c.valA[w]) < n {
		c.valA[w] = make([]V, n)
	}
	return c.valA[w][:n]
}

// valScratchB is the second, independent value buffer (merge ping-pong).
func (c *ContextG[V]) valScratchB(w, n int) []V {
	if cap(c.valB[w]) < n {
		c.valB[w] = make([]V, n)
	}
	return c.valB[w][:n]
}

// spaTable returns worker w's dense accumulator covering ncols columns,
// reset for a fresh row: cached when large enough, re-reserved when the
// column space grew, allocated on first use. ensureWorkers(>w) must have
// been called.
func (c *ContextG[V]) spaTable(w, ncols int) *accum.SPAG[V] {
	s := c.spa[w]
	if s == nil {
		mCtxAlloc.Inc()
		s = accum.NewSPAG[V](ncols)
		c.spa[w] = s
		return s
	}
	mCtxReuse.Inc()
	s.Reserve(ncols)
	s.Reset()
	return s
}

// ensureI64 grows an int64 buffer to length n, reusing capacity.
func ensureI64(buf []int64, n int) []int64 {
	if cap(buf) < n {
		return make([]int64, n)
	}
	return buf[:n]
}

// ensureI32 grows an int32 buffer to length n, reusing capacity.
func ensureI32(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	return buf[:n]
}

// lightFlopBuf returns the reusable weight array the tiled kernel zeroes
// heavy rows out of (contents undefined).
func (c *ContextG[V]) lightFlopBuf(n int) []int64 {
	c.lightFlop = ensureI64(c.lightFlop, n)
	return c.lightFlop
}

// unitBufs returns the (row, tile) unit bookkeeping arrays for n units
// (contents undefined).
func (c *ContextG[V]) unitBufs(n int) (row, tile []int32, flop, nnz, off []int64) {
	c.unitRow = ensureI32(c.unitRow, n)
	c.unitTile = ensureI32(c.unitTile, n)
	c.unitFlop = ensureI64(c.unitFlop, n)
	c.unitNnz = ensureI64(c.unitNnz, n)
	c.unitOff = ensureI64(c.unitOff, n)
	return c.unitRow, c.unitTile, c.unitFlop, c.unitNnz, c.unitOff
}

// tileValBuf returns the reusable tile-value gather buffer of length n
// (contents undefined) — the Plan execute path refreshes B's split values
// into it on every call.
func (c *ContextG[V]) tileValBuf(n int) []V {
	if cap(c.tileVal) < n {
		c.tileVal = make([]V, n)
	}
	return c.tileVal[:n]
}

// stripeBufs returns the per-stripe geometry arrays for n stripes (contents
// undefined).
func (c *ContextG[V]) stripeBufs(n int) (bound []int64, wide []bool) {
	c.stripeBound = ensureI64(c.stripeBound, n)
	if cap(c.stripeWide) < n {
		c.stripeWide = make([]bool, n)
	}
	c.stripeWide = c.stripeWide[:n]
	return c.stripeBound, c.stripeWide
}

// partitionUnits flop-balances the heavy (row, tile) units over workers into
// the context's secondary offsets/prefix-sum buffers (the primary pair holds
// the light-row partition for the same call).
func (c *ContextG[V]) partitionUnits(unitFlop []int64, parts, workers int) []int {
	if n := len(unitFlop); cap(c.ups) < n+1 {
		c.ups = make([]int64, n+1)
	}
	c.uoffsets = c.pool().BalancedPartitionInto(unitFlop, parts, workers, c.uoffsets, c.ups)
	return c.uoffsets
}

// balancedUnits is the fused partition+dispatch entry for unit-grain
// scheduling: it flop-balances weights and runs body once per worker with
// its unit range, via sched.Pool.BalancedForNamed, reusing the secondary
// partition buffers.
func (c *ContextG[V]) balancedUnits(name string, weights []int64, workers int, body func(worker, lo, hi int)) {
	if n := len(weights); cap(c.ups) < n+1 {
		c.ups = make([]int64, n+1)
	}
	c.uoffsets = c.pool().BalancedForNamed(name, weights, workers, c.uoffsets, c.ups, body)
}
