package spgemm

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/matrix"
	"repro/internal/semiring"
)

// The min-plus semiring's additive identity is +Inf, not 0 — the sharpest
// test of the output-structure invariant every kernel must satisfy: an
// output entry exists iff at least one intermediate product landed on its
// position, regardless of the entry's value. A kernel that initializes
// accumulator slots to the machine zero and relies on "+= prod" fabricates
// min(0, d) = 0 distances; a kernel that drops entries whose value equals
// the ring's Zero() loses legitimately-unreachable (+Inf) path entries.
// Both bugs are invisible under plus-times (where Zero() == 0 == the
// machine zero) and catastrophic under min-plus.

// minPlusInput builds a matrix whose values are small path weights with
// some entries pinned to +Inf (edges "present in structure but unusable"),
// so products landing on +Inf are common.
func minPlusInput(rng *rand.Rand, n int, density float64) *matrix.CSR {
	m := matrix.Random(n, n, density, rng)
	for i := range m.Val {
		switch {
		case rng.Intn(4) == 0:
			m.Val[i] = math.Inf(1)
		case rng.Intn(3) == 0:
			m.Val[i] = 0 // zero-weight edge: value equals the machine zero
		default:
			m.Val[i] = float64(rng.Intn(100)) / 10
		}
	}
	return m
}

// sortedClone returns a row-sorted copy without compacting.
func sortedClone(m *matrix.CSR) *matrix.CSR {
	c := m.Clone()
	c.SortRows()
	return c
}

// requireExactStructure fails unless got and want agree entry-for-entry
// (structure AND bit-exact values; min and + are order-independent here).
func requireExactStructure(t *testing.T, alg Algorithm, got, want *matrix.CSR) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%v: shape %dx%d, want %dx%d", alg, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := 0; i <= got.Rows; i++ {
		if got.RowPtr[i] != want.RowPtr[i] {
			t.Fatalf("%v: RowPtr[%d]=%d, want %d (entries dropped or fabricated)",
				alg, i, got.RowPtr[i], want.RowPtr[i])
		}
	}
	for p := range got.ColIdx {
		if got.ColIdx[p] != want.ColIdx[p] {
			t.Fatalf("%v: ColIdx[%d]=%d, want %d", alg, p, got.ColIdx[p], want.ColIdx[p])
		}
		// NaN never occurs under min-plus on these inputs, so == is exact.
		if got.Val[p] != want.Val[p] {
			t.Fatalf("%v: Val[%d]=%v, want %v", alg, p, got.Val[p], want.Val[p])
		}
	}
}

func TestMinPlusZeroHandlingAllKernels(t *testing.T) {
	ring := semiring.MinPlusF64{}
	rng := rand.New(rand.NewSource(909))
	algs := []Algorithm{
		AlgHash, AlgHashVec, AlgHeap, AlgSPA, AlgMKL, AlgMKLInspector,
		AlgKokkos, AlgMerge, AlgIKJ, AlgBlockedSPA, AlgESC,
	}
	for trial := 0; trial < 8; trial++ {
		a := minPlusInput(rng, 40, 0.15)
		b := minPlusInput(rng, 40, 0.15)
		want := matrix.NaiveMultiplyRing(ring, a, b)
		// Sanity: the scenario must actually exercise both hazards.
		if trial == 0 {
			hasInf := false
			for _, v := range want.Val {
				if math.IsInf(v, 1) {
					hasInf = true
					break
				}
			}
			if !hasInf {
				t.Fatal("test inputs produced no +Inf output entries; scenario is vacuous")
			}
		}
		for _, alg := range algs {
			got, err := MultiplyRing(ring, a, b, &OptionsG[float64]{Algorithm: alg, Workers: 1 + trial%4})
			if err != nil {
				t.Fatalf("%v: %v", alg, err)
			}
			requireExactStructure(t, alg, sortedClone(got), want)
		}
	}
}

// TestMinPlusZeroHandlingMasked covers the masked two-phase path (hash
// family only), where symbolic inserts are filtered by the mask: entries
// whose value is +Inf must survive exactly when the mask admits them.
func TestMinPlusZeroHandlingMasked(t *testing.T) {
	ring := semiring.MinPlusF64{}
	rng := rand.New(rand.NewSource(910))
	a := minPlusInput(rng, 30, 0.2)
	b := minPlusInput(rng, 30, 0.2)
	mask := matrix.Random(30, 30, 0.5, rng)
	full := matrix.NaiveMultiplyRing(ring, a, b)
	// Expected pattern derived by hand rather than via HadamardG (which
	// would drop intersection entries whose value is the storage zero): the
	// mask keeps an entry iff the full product has it AND the mask has the
	// position, with the full product's value — even 0 or +Inf.
	want := maskFilter(full, mask)
	for _, alg := range []Algorithm{AlgHash, AlgHashVec} {
		got, err := MultiplyRing(ring, a, b, &OptionsG[float64]{Algorithm: alg, Mask: mask})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		requireExactStructure(t, alg, sortedClone(got), want)
	}
}

// maskFilter keeps full's entries at positions present in mask.
func maskFilter(full, mask *matrix.CSR) *matrix.CSR {
	out := &matrix.CSR{Rows: full.Rows, Cols: full.Cols, RowPtr: make([]int64, full.Rows+1), Sorted: true}
	ms := sortedClone(mask)
	for i := 0; i < full.Rows; i++ {
		fc, fv := full.Row(i)
		mc, _ := ms.Row(i)
		p, q := 0, 0
		for p < len(fc) && q < len(mc) {
			switch {
			case fc[p] < mc[q]:
				p++
			case mc[q] < fc[p]:
				q++
			default:
				out.ColIdx = append(out.ColIdx, fc[p])
				out.Val = append(out.Val, fv[p])
				p++
				q++
			}
		}
		out.RowPtr[i+1] = int64(len(out.ColIdx))
	}
	return out
}
