package spgemm

import (
	"math"
	"unsafe"

	"repro/internal/matrix"
	"repro/internal/semiring"
)

// The shard abstraction: AlgSharded decomposes a product into row stripes of
// A (matrix.RowStripe geometry), runs each stripe through the symbolic →
// numeric → merge stages of a ShardUnit, and lands the finished stripes in a
// ShardSink. The driver is written against these small interfaces so shards
// are process-local goroutines today but could execute in other processes or
// spill to disk without touching the kernels — the SpillSink in spill.go is
// the shipped second sink, bounding peak resident output memory by writing
// finished stripes to a temp-file-backed CSR.

// ShardUnit is one stripe's slice of the two-phase pipeline. Units are
// executed by pool workers: Symbolic and Numeric receive the worker slot w
// whose per-worker Context scratch (hash tables) they may use, and different
// units run concurrently, so a unit must only write its own stripe's rows.
type ShardUnit[V semiring.Value] interface {
	// Symbolic computes the stripe's per-row output sizes into rowNnz
	// (indexed by global row).
	Symbolic(w int, rowNnz []int64)
	// Numeric fills the stripe's entries into cols/vals — the sink-provided
	// window covering exactly this stripe's slots, so index 0 is the
	// stripe's first entry. rowPtr is the global output row-pointer array.
	// When ws is non-nil the unit accumulates (+=) its counters into it;
	// several units may run on one worker slot.
	Numeric(w int, rowPtr []int64, cols []int32, vals []V, ws *WorkerStats)
	// Merge commits the finished stripe to the sink.
	Merge(sink ShardSink[V]) error
}

// ShardSource enumerates the shards of one product in ascending row order.
type ShardSource[V semiring.Value] interface {
	// Shards returns the number of stripes.
	Shards() int
	// Rows returns stripe s's global row range [lo, hi).
	Rows(s int) (lo, hi int)
	// Unit returns the executable unit of stripe s.
	Unit(s int) ShardUnit[V]
}

// ShardSink receives finished stripes and assembles the product. The call
// protocol per multiply is: one Bind, then for every stripe one Stripe —
// which may block to bound resident memory — followed by writes into the
// returned window and one Commit, from pool workers concurrently; finally
// one Assemble from the driver after every stripe committed. Stripe windows
// for distinct s never overlap, so no synchronization covers the writes
// themselves.
type ShardSink[V semiring.Value] interface {
	// Bind fixes the output geometry. rowPtr is the final global row
	// pointer array (length rows+1); the sink may retain it.
	Bind(rows, cols int, rowPtr []int64, sorted bool) error
	// Stripe returns the entry window for stripe s covering the global rows
	// [lo, hi): slices of length rowPtr[hi]-rowPtr[lo] the unit writes the
	// stripe's columns and values into. May block until resident space is
	// available.
	Stripe(s, lo, hi int) (cols []int32, vals []V, err error)
	// Commit marks stripe s's window fully written. After Commit the window
	// must no longer be touched (an out-of-core sink reuses its buffers).
	Commit(s int) error
	// Assemble returns the finished product once every stripe committed.
	Assemble() (*matrix.CSRG[V], error)
}

// memShardSink is the default in-RAM sink: Bind allocates the output shell
// once and Stripe hands out subslices of it, so the merge is zero-copy and
// Assemble is free. This path is what makes AlgSharded bit-identical to
// AlgHash: units write their rows at exactly the offsets the monolithic
// kernel would.
type memShardSink[V semiring.Value] struct {
	c *matrix.CSRG[V]
}

func (k *memShardSink[V]) Bind(rows, cols int, rowPtr []int64, sorted bool) error {
	k.c = outputShell[V](rows, cols, rowPtr, sorted)
	return nil
}

func (k *memShardSink[V]) Stripe(s, lo, hi int) ([]int32, []V, error) {
	e0, e1 := k.c.RowPtr[lo], k.c.RowPtr[hi]
	return k.c.ColIdx[e0:e1:e1], k.c.Val[e0:e1:e1], nil
}

func (k *memShardSink[V]) Commit(int) error { return nil }

func (k *memShardSink[V]) Assemble() (*matrix.CSRG[V], error) { return k.c, nil }

// defaultShardMemBudget is the resident-bytes target one stripe's output
// upper bound is sized against when Options.ShardMemBudget is zero.
const defaultShardMemBudget int64 = 256 << 20

// shardStripeCount picks the stripe count for AlgSharded: enough stripes
// that the flop upper bound on one stripe's output entries fits the resident
// budget, at least one stripe per worker, at most one per row.
//
// All arithmetic is int64 with explicit saturation: a scale-20+ G500 product
// has flop totals past 2^34, and multiplying by the ~12 bytes/entry cost
// must not wrap on any intermediate — this is the overflow-hardening the
// stripe cutter is regression-tested for with synthetic huge-dimension
// headers (TestShardStripeCountHugeDimensions).
func shardStripeCount(totalFlop int64, rows, workers, elemBytes int, budget int64) int {
	if rows < 1 {
		return 1
	}
	if budget <= 0 {
		budget = defaultShardMemBudget
	}
	per := int64(4 + elemBytes) // int32 column index + one value
	if totalFlop < 0 {
		totalFlop = 0
	}
	est := totalFlop
	if est > math.MaxInt64/per {
		est = math.MaxInt64
	} else {
		est *= per
	}
	n := est / budget
	if est%budget != 0 {
		n++
	}
	floor := int64(workers)
	if floor > int64(rows) {
		floor = int64(rows)
	}
	if floor < 1 {
		floor = 1
	}
	if n < floor {
		n = floor
	}
	if n > int64(rows) {
		n = int64(rows)
	}
	return int(n)
}

// shardGeometry is the stripe plan of one sharded multiply: the
// flop-balanced row offsets, each stripe's accumulator bound, and which
// stripes sweep B by column blocks because that bound overflows the cache
// tier the installed memmodel parameters describe.
type shardGeometry struct {
	offsets   []int   // nStripes+1 row offsets (may alias Context buffers)
	bound     []int64 // per-stripe capBound(max row flop, cols)
	wide      []bool  // per-stripe column-split flag
	blockCols int     // column-block width for wide stripes
	anyWide   bool
}

// shardPlanGeometry cuts A into flop-balanced row stripes and classifies
// each against the tile geometry (TileCols/TileHeavyFlop overrides win,
// otherwise the analytic memmodel width — the same knobs AlgTiled uses, so
// tests can force the column-split path at toy scale). The returned slices
// alias the Context's reusable buffers; Plan copies what it keeps.
func (o *OptionsG[V]) shardPlanGeometry(ctx *ContextG[V], flopRow []int64, totalFlop int64, rows, cols, workers int) shardGeometry {
	var zero V
	elem := int(unsafe.Sizeof(zero))
	nStripes := o.ShardStripes
	if nStripes <= 0 {
		nStripes = shardStripeCount(totalFlop, rows, workers, elem, o.ShardMemBudget)
	}
	if nStripes > rows && rows > 0 {
		nStripes = rows
	}
	if nStripes < 1 {
		nStripes = 1
	}
	g := shardGeometry{offsets: ctx.partition(flopRow, nStripes, workers)}
	g.bound, g.wide = ctx.stripeBufs(nStripes)
	blockCols, heavyFlop := o.tileGeometry()
	g.blockCols = blockCols
	for s := 0; s < nStripes; s++ {
		lo, hi := g.offsets[s], g.offsets[s+1]
		var max int64
		for i := lo; i < hi; i++ {
			if flopRow[i] > max {
				max = flopRow[i]
			}
		}
		g.bound[s] = capBound(max, cols)
		g.wide[s] = cols > blockCols && g.bound[s] > heavyFlop
		g.anyWide = g.anyWide || g.wide[s]
	}
	return g
}
