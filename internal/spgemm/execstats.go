package spgemm

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/obs"
)

// Phase identifies one stage of a SpGEMM kernel. Not every algorithm has
// every phase: one-phase algorithms have no symbolic pass, and algorithms
// that write rows directly into the exactly-sized output have no assemble
// pass. Phases an algorithm does not execute stay at zero.
type Phase int

const (
	// PhasePartition is the pre-pass: per-row flop counting and the
	// flop-balanced row partition (Figure 6), or whatever input
	// preprocessing a baseline needs (e.g. BlockedSPA's column split).
	PhasePartition Phase = iota
	// PhaseSymbolic is the symbolic pass of two-phase algorithms: computing
	// per-row output sizes without touching values (Figure 7, left half).
	PhaseSymbolic
	// PhaseAlloc covers the row-pointer prefix sum and the allocation of
	// the output (and, for one-phase algorithms, upper-bound temp buffers).
	PhaseAlloc
	// PhaseNumeric is the numeric pass: the actual multiply-accumulate work
	// including per-row extraction/sorting.
	PhaseNumeric
	// PhaseAssemble is the final stitching of per-worker temp buffers into
	// the output matrix (one-phase algorithms), plus any post-pass such as
	// sorting rows to honor a sorted-output request.
	PhaseAssemble
	// NumPhases is the number of phases; ExecStats.Phases has this length.
	NumPhases
)

// String returns the phase name used in breakdown tables.
func (p Phase) String() string {
	switch p {
	case PhasePartition:
		return "partition"
	case PhaseSymbolic:
		return "symbolic"
	case PhaseAlloc:
		return "alloc"
	case PhaseNumeric:
		return "numeric"
	case PhaseAssemble:
		return "assemble"
	}
	return "unknown"
}

// WorkerStats holds one worker's counters for a single Multiply call.
// Counters an algorithm's accumulator does not maintain stay at zero.
type WorkerStats struct {
	// Rows is the number of output rows this worker produced.
	Rows int64
	// Flop is the multiply-accumulate count over this worker's rows.
	Flop int64
	// HashLookups counts insert/accumulate operations into a hash-family
	// accumulator (each corresponds to one intermediate product or one
	// symbolic insert).
	HashLookups int64
	// HashProbes counts collision probe steps beyond the first slot/chunk;
	// HashProbes/HashLookups is the mean collision factor of the paper's
	// Equation (2).
	HashProbes int64
	// HeapPushes counts cursor pushes into the merge heap (Heap SpGEMM).
	HeapPushes int64
	// L2Overflows counts keys delegated to the level-2 table of the
	// two-level (Kokkos-style) accumulator.
	L2Overflows int64
}

func (w *WorkerStats) add(o WorkerStats) {
	w.Rows += o.Rows
	w.Flop += o.Flop
	w.HashLookups += o.HashLookups
	w.HashProbes += o.HashProbes
	w.HeapPushes += o.HeapPushes
	w.L2Overflows += o.L2Overflows
}

// ExecStats collects per-phase wall times and per-worker counters for one
// Multiply call. Point Options.Stats at a zero ExecStats to enable
// collection; a nil Options.Stats costs a handful of pointer compares per
// call and performs no clock reads and no allocations.
//
// Workers write only their own Workers[w] entry and the driver joins them
// with the synchronization already inherent in the fork/join worker pool, so
// collection is race-free (verified under `go test -race`).
type ExecStats struct {
	// Algorithm is the concrete algorithm that ran (after AlgAuto
	// resolution).
	Algorithm Algorithm
	// Phases holds wall time per phase, indexed by Phase.
	Phases [NumPhases]time.Duration
	// Total is the wall time of the whole kernel. The per-phase times are
	// measured back-to-back, so Phases sums to Total up to clock
	// granularity.
	Total time.Duration
	// Workers holds one entry per worker that ran.
	Workers []WorkerStats
	// Stripes holds AlgSharded's per-stripe breakdown, in ascending row
	// order; empty for every other algorithm. Unlike the other fields it
	// is per-call detail: Add does not accumulate stripes across calls.
	Stripes []StripeStats
}

// StripeStats describes one stripe of a sharded multiply.
type StripeStats struct {
	// Lo, Hi is the stripe's output row range [Lo, Hi).
	Lo, Hi int
	// Flop is the stripe's multiply-accumulate count.
	Flop int64
	// Nnz is the stripe's output entry count.
	Nnz int64
	// ColSplit reports whether the stripe swept B in column blocks.
	ColSplit bool
	// Spilled reports whether the stripe was committed to an out-of-core
	// sink.
	Spilled bool
}

// reset prepares the stats for a new run with the given worker count,
// reusing the Workers slice when possible.
func (s *ExecStats) reset(workers int) {
	s.Phases = [NumPhases]time.Duration{}
	s.Total = 0
	if cap(s.Workers) >= workers {
		s.Workers = s.Workers[:workers]
		for i := range s.Workers {
			s.Workers[i] = WorkerStats{}
		}
	} else {
		s.Workers = make([]WorkerStats, workers)
	}
	s.Stripes = s.Stripes[:0]
}

// PhaseSum returns the sum of the per-phase times. The accounting invariant
// every kernel maintains is PhaseSum() <= Total: phase times are measured
// back-to-back inside the window finish() stamps as Total, and out-of-band
// post-passes (addPhase) extend the phase and Total by the same duration.
// TestExecStatsPhaseSumInvariant enforces this across all algorithms.
func (s *ExecStats) PhaseSum() time.Duration {
	var t time.Duration
	for _, d := range s.Phases {
		t += d
	}
	return t
}

// PhaseSpan is one executed phase as an interval relative to the kernel
// start: the request-trace form of ExecStats.Phases. Phases that did not run
// (zero duration) are omitted.
type PhaseSpan struct {
	Phase  Phase
	Offset time.Duration // from kernel start
	Dur    time.Duration
}

// PhaseSpans lays the per-phase durations back-to-back from the kernel start
// and returns them as intervals. Phase times are measured back-to-back by
// phaseTimer inside the window Total stamps (see PhaseSum), so the
// reconstruction is exact up to clock granularity: span k starts where span
// k-1 ended, and the last span ends at PhaseSum() <= Total. This is how a
// per-request trace gets kernel sub-spans without threading a tracer through
// every kernel: the server appends these intervals, offset by the kernel's
// start within the request, to the request's timeline.
func (s *ExecStats) PhaseSpans() []PhaseSpan {
	out := make([]PhaseSpan, 0, NumPhases)
	var off time.Duration
	for p := Phase(0); p < NumPhases; p++ {
		d := s.Phases[p]
		if d == 0 {
			continue
		}
		out = append(out, PhaseSpan{Phase: p, Offset: off, Dur: d})
		off += d
	}
	return out
}

// Add folds another call's stats into s: phase times, Total and per-worker
// counters all accumulate (Workers grows to the larger worker count), and
// Algorithm takes o's value. Iterative workloads use this — via the automatic
// accumulation on spgemm.Context — to report aggregate phase breakdowns
// across a whole expansion loop rather than just the last call.
func (s *ExecStats) Add(o *ExecStats) {
	if o == nil {
		return
	}
	s.Algorithm = o.Algorithm
	for p := Phase(0); p < NumPhases; p++ {
		s.Phases[p] += o.Phases[p]
	}
	s.Total += o.Total
	if len(o.Workers) > len(s.Workers) {
		grown := make([]WorkerStats, len(o.Workers))
		copy(grown, s.Workers)
		s.Workers = grown
	}
	for i := range o.Workers {
		s.Workers[i].add(o.Workers[i])
	}
}

// Clone returns a deep copy of s.
func (s *ExecStats) Clone() *ExecStats {
	out := *s
	out.Workers = append([]WorkerStats(nil), s.Workers...)
	out.Stripes = append([]StripeStats(nil), s.Stripes...)
	return &out
}

// TotalWorker returns all worker counters summed.
func (s *ExecStats) TotalWorker() WorkerStats {
	var t WorkerStats
	for i := range s.Workers {
		t.add(s.Workers[i])
	}
	return t
}

// CollisionFactor returns mean hash probes per lookup plus one — the paper's
// collision factor c (Equation 2). Returns 0 when no hash lookups were
// recorded.
func (s *ExecStats) CollisionFactor() float64 {
	t := s.TotalWorker()
	if t.HashLookups == 0 {
		return 0
	}
	return 1 + float64(t.HashProbes)/float64(t.HashLookups)
}

// addPhase adds an out-of-band duration (e.g. a post-pass sort that runs
// after the kernel's own finish() stamped its wall time) to a phase and to
// the total. Charging both sides is what keeps post-passes from being
// double-counted: the post-pass interval lies outside the window finish()
// measured, so extending Phases[p] and Total by the same d preserves the
// PhaseSum() <= Total invariant exactly. Post-passes measured *inside* the
// finish() window (e.g. the inspector baseline's SortRows before its
// PhaseAssemble tick) must use tick, never addPhase — they are already part
// of Total. Safe on a nil receiver so call sites need no guard.
func (s *ExecStats) addPhase(p Phase, d time.Duration) {
	if s == nil {
		return
	}
	s.Phases[p] += d
	s.Total += d
}

// String renders a compact one-call breakdown: phase times with percentages
// and the aggregate counters.
func (s *ExecStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s total=%v", s.Algorithm, s.Total)
	for p := Phase(0); p < NumPhases; p++ {
		d := s.Phases[p]
		if d == 0 {
			continue
		}
		pct := 0.0
		if s.Total > 0 {
			pct = 100 * float64(d) / float64(s.Total)
		}
		fmt.Fprintf(&b, " %s=%v(%.0f%%)", p, d, pct)
	}
	t := s.TotalWorker()
	fmt.Fprintf(&b, " workers=%d rows=%d flop=%d", len(s.Workers), t.Rows, t.Flop)
	if t.HashLookups > 0 {
		fmt.Fprintf(&b, " lookups=%d probes=%d cf=%.2f", t.HashLookups, t.HashProbes, s.CollisionFactor())
	}
	if t.HeapPushes > 0 {
		fmt.Fprintf(&b, " heap_pushes=%d", t.HeapPushes)
	}
	if t.L2Overflows > 0 {
		fmt.Fprintf(&b, " l2_overflows=%d", t.L2Overflows)
	}
	if n := len(s.Stripes); n > 0 {
		split, spilled := 0, 0
		for i := range s.Stripes {
			if s.Stripes[i].ColSplit {
				split++
			}
			if s.Stripes[i].Spilled {
				spilled++
			}
		}
		fmt.Fprintf(&b, " stripes=%d", n)
		if split > 0 {
			fmt.Fprintf(&b, " col_split=%d", split)
		}
		if spilled > 0 {
			fmt.Fprintf(&b, " spilled=%d", spilled)
		}
	}
	return b.String()
}

// phaseTimer stamps phase boundaries into an ExecStats and, when a tracer is
// active, onto the tracer's driver lane as begin/end span pairs. The zero
// value (from a nil *ExecStats with tracing off) is inert: tick and finish
// return immediately without reading the clock, which is what keeps the
// disabled-observability overhead to one atomic load and a couple of nil
// compares per kernel call.
type phaseTimer struct {
	st    *ExecStats
	tr    *obs.Tracer
	start time.Time
	last  time.Time
}

// startPhases resets st for a run with the given worker count, picks up the
// process tracer, and starts the clock. With st nil and no active tracer it
// yields an inert timer without reading the clock.
func startPhases(st *ExecStats, workers int) phaseTimer {
	tr := obs.Active()
	if st == nil && tr == nil {
		return phaseTimer{}
	}
	if st != nil {
		st.reset(workers)
	}
	now := time.Now()
	return phaseTimer{st: st, tr: tr, start: now, last: now}
}

// active reports whether the timer records anything.
func (t *phaseTimer) active() bool { return t.st != nil || t.tr != nil }

// tick charges the time since the previous boundary to phase p, and records
// the interval as a driver-lane span. One clock read serves both sinks.
func (t *phaseTimer) tick(p Phase) {
	if !t.active() {
		return
	}
	now := time.Now()
	if t.st != nil {
		t.st.Phases[p] += now.Sub(t.last)
	}
	if t.tr != nil {
		t.tr.Span(obs.DriverLane, p.String(), t.last, now)
	}
	t.last = now
}

// finish records the total wall time.
func (t *phaseTimer) finish() {
	if t.st == nil {
		return
	}
	t.st.Total = time.Since(t.start)
}

// worker returns the pointer to worker w's counter block, or nil when stats
// are disabled. Kernels hold the pointer for the duration of a parallel
// region and write through it once at the end of the region.
func (t *phaseTimer) worker(w int) *WorkerStats {
	if t.st == nil || w >= len(t.st.Workers) {
		return nil
	}
	return &t.st.Workers[w]
}

// statsNow reads the clock only when stats are enabled; paired with
// statsSince it brackets post-passes (e.g. a sorted-output SortRows) without
// costing disabled callers a clock read.
func statsNow(st *ExecStats) time.Time {
	if st == nil {
		return time.Time{}
	}
	return time.Now()
}

// statsSince returns the elapsed time since start, or 0 with stats disabled.
func statsSince(st *ExecStats, start time.Time) time.Duration {
	if st == nil {
		return 0
	}
	return time.Since(start)
}

// rangeFlop sums flopRow over [lo, hi) — the per-worker Flop counter for
// contiguous partitions.
func rangeFlop(flopRow []int64, lo, hi int) int64 {
	var f int64
	for i := lo; i < hi; i++ {
		f += flopRow[i]
	}
	return f
}
