package spgemm

import (
	"errors"
	"fmt"

	"repro/internal/matrix"
	"repro/internal/sched"
)

// ErrPlanStale is returned by Plan.Execute when the plan no longer applies:
// the structure of A or B changed since NewPlan, or Invalidate was called.
// Build a new plan with NewPlan.
var ErrPlanStale = errors.New("spgemm: plan is stale (input structure changed or plan invalidated)")

// Plan caches the structure-dependent work of a hash SpGEMM — the flop
// counts, the balanced row partition (Figure 6) and the symbolic phase's
// per-row output sizes — so that repeated products with the same sparsity
// structure but updated values skip straight to the numeric phase. This is
// the inspector-executor separation of MKL's two-stage API
// (mkl_sparse_sp2m) and KokkosKernels' reusable handle: inspect once,
// execute many times.
//
// Soundness is guarded by a structure fingerprint (matrix.StructureChecksum,
// an FNV-1a hash of dimensions, row pointers and column indices, blind to
// values): Execute revalidates both inputs and returns ErrPlanStale on any
// structural change, however the values moved. The O(nnz) check is far
// cheaper than the O(flop) symbolic pass it replaces.
//
// Plans are part of the legacy float64 surface and fix the plus-times ring:
// the numeric phase below hard-codes the multiply-add so it stays exactly
// the monomorphized fast path. (A generic plan would have to carry its ring
// as a value or re-instantiate per ring type; the reuse-heavy iterative
// callers plans serve are the float64 solvers.)
//
// A Plan's cached inspector results (offsets, bounds, flop counts, output
// row pointers) are read-only after NewPlan; the mutable execution state
// lives in a Context. Execute is therefore NOT safe for concurrent use —
// it runs on the plan's own Context — but ExecuteIn with distinct Contexts
// is: concurrent ExecuteIn calls on one shared Plan are exactly how the
// multiply server executes cache-hit products from its Context checkout
// pool. Invalidate must not race in-flight Executes.
type Plan struct {
	a, b     *matrix.CSR
	alg      Algorithm
	workers  int
	unsorted bool
	stats    *ExecStats
	ctx      *Context

	fpA, fpB uint64
	// Plan-owned copies of the inspector results: the Context's own buffers
	// may be overwritten by unrelated Multiply calls between Executes.
	offsets []int
	bounds  []int64 // per-worker accumulator size bound (capped at Cols)
	flopRow []int64
	rowPtr  []int64
	valid   bool

	// Tiled-plan state (alg == AlgTiled): the cached tile geometry and
	// column-split structure of B plus the heavy (row, tile) unit
	// bookkeeping. Values are NOT cached — perm maps each split entry back
	// to its originating B entry, and every execution re-gathers B's current
	// values through it into the Context's buffer, which keeps executions
	// bit-identical to Multiply after value updates and keeps concurrent
	// ExecuteIn calls (distinct Contexts) safe on one shared Plan.
	tileCols   int
	nTiles     int
	heavyFlop  int64
	nHeavy     int
	lightFlop  []int64 // flopRow with heavy rows zeroed (aliases flopRow when none)
	tileRowPtr []int64
	tileIdx    []int32
	perm       []int64
	unitRow    []int32
	unitTile   []int32
	unitFlop   []int64
	unitNnz    []int64
	unitOff    []int64
	uoffsets   []int

	// Sharded-plan state (alg == AlgSharded): the cached stripe geometry —
	// flop-balanced row offsets, per-stripe accumulator bounds, column-split
	// flags and the block width (see shardGeometry).
	stripeOffsets  []int
	stripeBounds   []int64
	stripeWide     []bool
	shardBlockCols int
}

// NewPlan runs the inspector: flop counts, balanced partition and symbolic
// phase for C = A·B, and returns a Plan whose Execute performs the numeric
// phase only. Supported algorithms are AlgHash, AlgHashVec, AlgTiled and
// AlgSharded (AlgAuto resolves through the recipe and then must land on one
// of those); Mask, Semiring and ShardSink are not supported. opt.Context, when set, supplies the
// reusable accumulators Execute will use; opt.Stats, when set, receives
// per-phase times for the inspector call and for every Execute.
func NewPlan(a, b *matrix.CSR, opt *Options) (*Plan, error) {
	if opt == nil {
		opt = &Options{}
	}
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("spgemm: dimension mismatch %dx%d × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	if opt.Mask != nil || opt.Semiring != nil {
		return nil, fmt.Errorf("spgemm: plans support plus-times unmasked products only")
	}
	alg := opt.Algorithm
	if alg == AlgAuto {
		alg = Recommend(a, b, !opt.Unsorted, opt.UseCase)
	}
	if alg != AlgHash && alg != AlgHashVec && alg != AlgTiled && alg != AlgSharded {
		return nil, fmt.Errorf("spgemm: plans support hash, hashvec, tiled and sharded, not %v", alg)
	}
	if opt.ShardSink != nil {
		return nil, fmt.Errorf("spgemm: plans do not support a ShardSink (spilled products are single-use)")
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = sched.DefaultWorkers()
	}
	if workers > a.Rows && a.Rows > 0 {
		workers = a.Rows
	}
	if workers < 1 {
		workers = 1
	}
	ctx := opt.Context
	if ctx == nil {
		ctx = NewContext()
	}
	ctx.ensureWorkers(workers)

	p := &Plan{
		a: a, b: b,
		alg:      alg,
		workers:  workers,
		unsorted: opt.Unsorted,
		stats:    opt.Stats,
		ctx:      ctx,
		fpA:      a.StructureChecksum(),
		fpB:      b.StructureChecksum(),
	}
	if opt.Stats != nil {
		opt.Stats.Algorithm = alg
	}
	if alg == AlgTiled {
		p.buildTiled(opt, ctx)
		p.valid = true
		mPlanBuilds.Inc()
		return p, nil
	}
	if alg == AlgSharded {
		p.buildSharded(opt, ctx)
		p.valid = true
		mPlanBuilds.Inc()
		return p, nil
	}

	pt := startPhases(opt.Stats, workers)
	flopRow := ctx.perRowFlop(a, b)
	p.flopRow = append(p.flopRow[:0], flopRow...)
	p.offsets = append(p.offsets[:0], ctx.partition(flopRow, workers, workers)...)
	pt.tick(PhasePartition)

	p.bounds = make([]int64, workers)
	rowNnz := ctx.rowNnzBuf(a.Rows)
	ctx.runWorkers("inspect-symbolic", workers, func(w int) {
		lo, hi := p.offsets[w], p.offsets[w+1]
		if lo >= hi {
			return
		}
		bound := int64(0)
		for i := lo; i < hi; i++ {
			if p.flopRow[i] > bound {
				bound = p.flopRow[i]
			}
		}
		p.bounds[w] = capBound(bound, b.Cols)
		if p.alg == AlgHashVec {
			table := ctx.hashVecTable(w, p.bounds[w])
			for i := lo; i < hi; i++ {
				table.Reset()
				alo, ahi := a.RowPtr[i], a.RowPtr[i+1]
				for q := alo; q < ahi; q++ {
					k := a.ColIdx[q]
					for r := b.RowPtr[k]; r < b.RowPtr[k+1]; r++ {
						table.InsertSymbolic(b.ColIdx[r])
					}
				}
				rowNnz[i] = int64(table.Len())
			}
		} else {
			table := ctx.hashTable(w, p.bounds[w])
			for i := lo; i < hi; i++ {
				table.Reset()
				alo, ahi := a.RowPtr[i], a.RowPtr[i+1]
				for q := alo; q < ahi; q++ {
					k := a.ColIdx[q]
					for r := b.RowPtr[k]; r < b.RowPtr[k+1]; r++ {
						table.InsertSymbolic(b.ColIdx[r])
					}
				}
				rowNnz[i] = int64(table.Len())
			}
		}
	})
	pt.tick(PhaseSymbolic)
	p.rowPtr = ctx.prefixSum(rowNnz, make([]int64, a.Rows+1), workers)
	pt.finish()
	p.valid = true
	mPlanBuilds.Inc()
	return p, nil
}

// NNZ returns the number of nonzeros every Execute will produce.
func (p *Plan) NNZ() int64 { return p.rowPtr[len(p.rowPtr)-1] }

// Invalidate marks the plan stale; every later Execute returns ErrPlanStale.
// Call it after changing the structure of A or B in a way the caller knows
// about — the fingerprint check would catch it anyway, but an explicit
// invalidation documents intent and skips the checksum of a doomed Execute.
func (p *Plan) Invalidate() { p.valid = false }

// Execute runs the numeric phase against the current values of A and B and
// returns a freshly allocated product, bit-identical to what
// Multiply(a, b, ...) with the plan's options would produce. The inputs'
// structure is revalidated by fingerprint; ErrPlanStale means the plan (and
// its cached symbolic result) no longer applies.
func (p *Plan) Execute() (*matrix.CSR, error) {
	return p.ExecuteIn(p.ctx, p.stats)
}

// ExecuteIn is Execute with caller-supplied mutable state: the numeric
// phase draws its accumulators and scratch from ctx (nil means a fresh
// transient context) and reports into stats (nil disables stats). The plan
// itself is only read, so concurrent ExecuteIn calls on the same Plan are
// safe as long as each uses a distinct Context — the contract the multiply
// server's plan cache relies on.
func (p *Plan) ExecuteIn(ctx *Context, stats *ExecStats) (*matrix.CSR, error) {
	if !p.valid {
		mPlanStale.Inc()
		return nil, ErrPlanStale
	}
	if p.a.StructureChecksum() != p.fpA || p.b.StructureChecksum() != p.fpB {
		mPlanStale.Inc()
		return nil, ErrPlanStale
	}
	if p.alg == AlgTiled {
		return p.executeTiled(ctx, stats)
	}
	if p.alg == AlgSharded {
		return p.executeSharded(ctx, stats)
	}
	a, b := p.a, p.b
	if ctx == nil {
		ctx = NewContext()
	}
	ctx.ensureWorkers(p.workers)
	pt := startPhases(stats, p.workers)
	if stats != nil {
		stats.Algorithm = p.alg
	}

	outPtr := make([]int64, len(p.rowPtr))
	copy(outPtr, p.rowPtr)
	c := outputShell[float64](a.Rows, b.Cols, outPtr, !p.unsorted)
	pt.tick(PhaseAlloc)

	ctx.runWorkers("plan-numeric", p.workers, func(w int) {
		lo, hi := p.offsets[w], p.offsets[w+1]
		if lo >= hi {
			return
		}
		if p.alg == AlgHashVec {
			table := ctx.hashVecTable(w, p.bounds[w])
			for i := lo; i < hi; i++ {
				table.Reset()
				alo, ahi := a.RowPtr[i], a.RowPtr[i+1]
				for q := alo; q < ahi; q++ {
					k := a.ColIdx[q]
					av := a.Val[q]
					for r := b.RowPtr[k]; r < b.RowPtr[k+1]; r++ {
						prod := av * b.Val[r]
						slot, fresh := table.Upsert(b.ColIdx[r])
						if fresh {
							*slot = prod
						} else {
							*slot += prod
						}
					}
				}
				start := c.RowPtr[i]
				n := c.RowPtr[i+1] - start
				if p.unsorted {
					table.ExtractUnsorted(c.ColIdx[start:start+n], c.Val[start:start+n])
				} else {
					table.ExtractSorted(c.ColIdx[start:start+n], c.Val[start:start+n])
				}
			}
			if ws := pt.worker(w); ws != nil {
				ws.Rows = int64(hi - lo)
				ws.Flop = rangeFlop(p.flopRow, lo, hi)
				ws.HashLookups = table.Lookups()
				ws.HashProbes = table.Probes()
			}
		} else {
			table := ctx.hashTable(w, p.bounds[w])
			for i := lo; i < hi; i++ {
				table.Reset()
				alo, ahi := a.RowPtr[i], a.RowPtr[i+1]
				for q := alo; q < ahi; q++ {
					k := a.ColIdx[q]
					av := a.Val[q]
					for r := b.RowPtr[k]; r < b.RowPtr[k+1]; r++ {
						prod := av * b.Val[r]
						slot, fresh := table.Upsert(b.ColIdx[r])
						if fresh {
							*slot = prod
						} else {
							*slot += prod
						}
					}
				}
				start := c.RowPtr[i]
				n := c.RowPtr[i+1] - start
				if p.unsorted {
					table.ExtractUnsorted(c.ColIdx[start:start+n], c.Val[start:start+n])
				} else {
					table.ExtractSorted(c.ColIdx[start:start+n], c.Val[start:start+n])
				}
			}
			if ws := pt.worker(w); ws != nil {
				ws.Rows = int64(hi - lo)
				ws.Flop = rangeFlop(p.flopRow, lo, hi)
				ws.HashLookups = table.Lookups()
				ws.HashProbes = table.Probes()
			}
		}
	})
	pt.tick(PhaseNumeric)
	pt.finish()
	mPlanExecs.Inc()
	if stats != nil {
		ctx.accumulate(stats)
	}
	return c, nil
}
