package spgemm

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/matrix"
)

// TestStressAllAlgorithmsOnRMAT is the heavy integration test: every
// algorithm against the naive oracle on realistic R-MAT inputs (skewed and
// uniform), at several worker counts, sorted and unsorted.
func TestStressAllAlgorithmsOnRMAT(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short")
	}
	rng := rand.New(rand.NewSource(601))
	inputs := []*matrix.CSR{
		gen.ER(9, 8, rng),
		gen.RMAT(9, 8, gen.G500Params, rng),
	}
	for _, a := range inputs {
		want := matrix.NaiveMultiply(a, a)
		for _, tc := range allAlgorithms {
			for _, workers := range []int{1, 3, 8} {
				got, err := Multiply(a, a, &Options{Algorithm: tc.alg, Workers: workers})
				if err != nil {
					t.Fatalf("%v workers=%d: %v", tc.alg, workers, err)
				}
				if err := got.Validate(); err != nil {
					t.Fatalf("%v workers=%d: %v", tc.alg, workers, err)
				}
				if !matrix.EqualApprox(want, got, 1e-9) {
					t.Fatalf("%v workers=%d: wrong product on %v", tc.alg, workers, a)
				}
				if tc.unsortedOut {
					got, err = Multiply(a, a, &Options{Algorithm: tc.alg, Workers: workers, Unsorted: true})
					if err != nil || !matrix.EqualApprox(want, got, 1e-9) {
						t.Fatalf("%v workers=%d unsorted: wrong product (%v)", tc.alg, workers, err)
					}
				}
			}
		}
	}
}

// TestStressAssociativity checks (A·B)·C == A·(B·C) through the library for
// the main algorithms — a three-matrix integration property.
func TestStressAssociativity(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short")
	}
	rng := rand.New(rand.NewSource(602))
	for trial := 0; trial < 5; trial++ {
		a := matrix.Random(30, 25, 0.2, rng)
		b := matrix.Random(25, 35, 0.2, rng)
		c := matrix.Random(35, 20, 0.2, rng)
		for _, alg := range []Algorithm{AlgHash, AlgHeap, AlgSPA} {
			opt := &Options{Algorithm: alg}
			ab, err := Multiply(a, b, opt)
			if err != nil {
				t.Fatal(err)
			}
			left, err := Multiply(ab, c, opt)
			if err != nil {
				t.Fatal(err)
			}
			bc, err := Multiply(b, c, opt)
			if err != nil {
				t.Fatal(err)
			}
			right, err := Multiply(a, bc, opt)
			if err != nil {
				t.Fatal(err)
			}
			if !matrix.EqualApprox(left, right, 1e-8) {
				t.Fatalf("trial %d %v: associativity broken", trial, alg)
			}
		}
	}
}

// TestSpecialValuesPropagate: NaN and Inf in inputs must flow through the
// accumulators, not crash or silently vanish when they land on a stored
// entry.
func TestSpecialValuesPropagate(t *testing.T) {
	// A = [NaN 0; 0 Inf], B = I → C == A elementwise (NaN stays NaN).
	a := matrix.Identity(2)
	a.Val[0] = math.NaN()
	a.Val[1] = math.Inf(1)
	for _, tc := range allAlgorithms {
		got, err := Multiply(a, matrix.Identity(2), &Options{Algorithm: tc.alg})
		if err != nil {
			t.Fatalf("%v: %v", tc.alg, err)
		}
		if got.NNZ() != 2 {
			t.Fatalf("%v: nnz = %d", tc.alg, got.NNZ())
		}
		if !math.IsNaN(got.Val[0]) {
			t.Fatalf("%v: NaN lost: %v", tc.alg, got.Val[0])
		}
		if !math.IsInf(got.Val[1], 1) {
			t.Fatalf("%v: Inf lost: %v", tc.alg, got.Val[1])
		}
	}
}

// TestNumericCancellationKeptStructural: entries that sum to exactly zero
// remain structurally present (two-phase algorithms allocate symbolically),
// and all algorithms agree on the structure.
func TestNumericCancellationKeptStructural(t *testing.T) {
	// A row with +1 and -1 hitting the same output column.
	a := &matrix.CSR{
		Rows: 1, Cols: 2, RowPtr: []int64{0, 2}, ColIdx: []int32{0, 1},
		Val: []float64{1, -1}, Sorted: true,
	}
	b := &matrix.CSR{
		Rows: 2, Cols: 1, RowPtr: []int64{0, 1, 2}, ColIdx: []int32{0, 0},
		Val: []float64{1, 1}, Sorted: true,
	}
	for _, tc := range allAlgorithms {
		got, err := Multiply(a, b, &Options{Algorithm: tc.alg})
		if err != nil {
			t.Fatalf("%v: %v", tc.alg, err)
		}
		if got.NNZ() != 1 || got.Val[0] != 0 {
			t.Fatalf("%v: cancelled entry handling: nnz=%d vals=%v", tc.alg, got.NNZ(), got.Val)
		}
	}
}

// TestSingleRowSingleColumn exercises the degenerate shapes.
func TestSingleRowSingleColumn(t *testing.T) {
	rng := rand.New(rand.NewSource(603))
	row := matrix.Random(1, 20, 0.5, rng)  // 1×20
	col := matrix.Random(20, 1, 0.5, rng)  // 20×1
	want := matrix.NaiveMultiply(row, col) // 1×1
	for _, tc := range allAlgorithms {
		got, err := Multiply(row, col, &Options{Algorithm: tc.alg, Workers: 4})
		if err != nil {
			t.Fatalf("%v: %v", tc.alg, err)
		}
		if !matrix.EqualApprox(want, got, 1e-12) {
			t.Fatalf("%v: outer-ish product wrong", tc.alg)
		}
	}
	// Outer product: 20×1 · 1×20 → rank-1 20×20.
	want = matrix.NaiveMultiply(col, row)
	for _, tc := range allAlgorithms {
		got, err := Multiply(col, row, &Options{Algorithm: tc.alg})
		if err != nil {
			t.Fatalf("%v: %v", tc.alg, err)
		}
		if !matrix.EqualApprox(want, got, 1e-12) {
			t.Fatalf("%v: rank-1 product wrong", tc.alg)
		}
	}
}

// TestRowsOfZeros: interior empty rows and columns must not confuse the
// balanced partition or the prefix sums.
func TestRowsOfZeros(t *testing.T) {
	coo := matrix.NewCOO(50, 50)
	// Only rows 0 and 49 have entries.
	for j := int32(0); j < 50; j++ {
		coo.Append(0, j, 1)
		coo.Append(49, j, 1)
	}
	a := coo.ToCSR()
	want := matrix.NaiveMultiply(a, a)
	for _, tc := range allAlgorithms {
		got, err := Multiply(a, a, &Options{Algorithm: tc.alg, Workers: 8})
		if err != nil {
			t.Fatalf("%v: %v", tc.alg, err)
		}
		if !matrix.EqualApprox(want, got, 1e-12) {
			t.Fatalf("%v: sparse-rows product wrong", tc.alg)
		}
	}
}
