package spgemm

import (
	"math/rand"
	"testing"

	"repro/internal/accum"
	"repro/internal/gen"
	"repro/internal/matrix"
	"repro/internal/obs"
)

// withCacheParams swaps the installed tile-geometry cache parameters for the
// duration of one test (same-package access to the guarded globals), so
// geometry tests neither depend on nor disturb what other tests see.
func withCacheParams(t *testing.T, p CacheParams, installed bool) {
	t.Helper()
	cacheParamsMu.Lock()
	prevP, prevHave := cacheParams, haveParams
	cacheParams, haveParams = p, installed
	cacheParamsMu.Unlock()
	t.Cleanup(func() {
		cacheParamsMu.Lock()
		cacheParams, haveParams = prevP, prevHave
		cacheParamsMu.Unlock()
	})
}

func TestTileColsForElem(t *testing.T) {
	// No parameters installed: the legacy constant is the fallback.
	withCacheParams(t, CacheParams{}, false)
	if w := TileColsForElem(8); w != defaultSPABlock {
		t.Errorf("fallback width = %d, want defaultSPABlock = %d", w, defaultSPABlock)
	}

	// The KNL-tile geometry (1 MiB L2 slice) must reproduce the legacy
	// constant exactly for float64: floorPow2((1<<20 / 2) / (8+8)) = 32768.
	withCacheParams(t, CacheParams{L2Bytes: 1 << 20, LineBytes: 64, MinTileCols: 1024}, true)
	if w := TileColsForElem(8); w != 32768 {
		t.Errorf("KNL-tile f64 width = %d, want 32768", w)
	}
	// Narrower values get wider tiles out of the same budget (bool: 1+8=9
	// bytes/col → floorPow2(524288/9) = 32768 still; float32: 12 bytes/col
	// → floorPow2(43690) = 32768). A small L2 separates them.
	withCacheParams(t, CacheParams{L2Bytes: 96 << 10, MinTileCols: 256}, true)
	if w := TileColsForElem(8); w != 2048 { // floorPow2(49152/16) = 2048
		t.Errorf("96K f64 width = %d, want 2048", w)
	}
	if w := TileColsForElem(4); w != 4096 { // floorPow2(49152/12) = 4096
		t.Errorf("96K f32 width = %d, want 4096", w)
	}
	// The MinTileCols floor clamps from below.
	withCacheParams(t, CacheParams{L2Bytes: 1 << 10, MinTileCols: 512}, true)
	if w := TileColsForElem(8); w != 512 {
		t.Errorf("floored width = %d, want MinTileCols = 512", w)
	}
}

func TestSetCacheParamsRejectsAndDefaults(t *testing.T) {
	withCacheParams(t, CacheParams{}, false)
	SetCacheParams(CacheParams{L2Bytes: 0}) // rejected
	if _, ok := CurrentCacheParams(); ok {
		t.Fatal("SetCacheParams accepted L2Bytes=0")
	}
	SetCacheParams(CacheParams{L2Bytes: 1 << 20})
	p, ok := CurrentCacheParams()
	if !ok {
		t.Fatal("SetCacheParams did not install valid parameters")
	}
	if p.LineBytes != 64 || p.MinTileCols != 1024 {
		t.Errorf("defaults not applied: LineBytes=%d MinTileCols=%d", p.LineBytes, p.MinTileCols)
	}
}

func TestTileGeometryOverrides(t *testing.T) {
	withCacheParams(t, CacheParams{L2Bytes: 1 << 20, MinTileCols: 1024}, true)
	o := &OptionsG[float64]{}
	tc, hf := o.tileGeometry()
	if tc != 32768 || hf != 32768 {
		t.Errorf("analytic geometry = (%d, %d), want (32768, 32768)", tc, hf)
	}
	o = &OptionsG[float64]{TileCols: 64}
	if tc, hf = o.tileGeometry(); tc != 64 || hf != 64 {
		t.Errorf("TileCols override = (%d, %d), want (64, 64)", tc, hf)
	}
	o = &OptionsG[float64]{TileCols: 64, TileHeavyFlop: 7}
	if tc, hf = o.tileGeometry(); tc != 64 || hf != 7 {
		t.Errorf("full override = (%d, %d), want (64, 7)", tc, hf)
	}
}

func TestRecommendTileCols(t *testing.T) {
	withCacheParams(t, CacheParams{L2Bytes: 1 << 20, MinTileCols: 1024}, true)
	if w := RecommendTileCols(nil, 8); w != 32768 {
		t.Errorf("nil stats width = %d, want analytic 32768", w)
	}
	// Benign run: collision factor ~1, balanced workers — keep the width.
	benign := &ExecStats{Workers: []WorkerStats{
		{Flop: 100, HashLookups: 100, HashProbes: 5},
		{Flop: 100, HashLookups: 100, HashProbes: 5},
	}}
	if w := RecommendTileCols(benign, 8); w != 32768 {
		t.Errorf("benign stats width = %d, want 32768", w)
	}
	// Degrading hash tables (collision factor > 2): halve.
	colliding := &ExecStats{Workers: []WorkerStats{
		{Flop: 100, HashLookups: 100, HashProbes: 150},
		{Flop: 100, HashLookups: 100, HashProbes: 150},
	}}
	if w := RecommendTileCols(colliding, 8); w != 16384 {
		t.Errorf("colliding stats width = %d, want 16384", w)
	}
	// Collisions AND load imbalance: quarter.
	both := &ExecStats{Workers: []WorkerStats{
		{Flop: 400, HashLookups: 100, HashProbes: 150},
		{Flop: 10, HashLookups: 100, HashProbes: 150},
	}}
	if w := RecommendTileCols(both, 8); w != 8192 {
		t.Errorf("colliding+imbalanced width = %d, want 8192", w)
	}
	// Never below the installed floor.
	withCacheParams(t, CacheParams{L2Bytes: 64 << 10, MinTileCols: 2048}, true)
	if w := RecommendTileCols(both, 8); w != 2048 {
		t.Errorf("floored recommendation = %d, want MinTileCols = 2048", w)
	}
}

// heavyRowCase builds a skewed product with one genuinely heavy row at
// default geometry: A is 64×n with row 0 touching 40000 columns, B is the
// n×n identity (so row flop = row nnz), n = 70000 > the 32768 analytic
// tile width. MaxRowFlop = 40000 > 32768 ⇒ HasHeavyRows fires.
func heavyRowCase() (a, b *matrix.CSR) {
	const n = 70000
	const heavy = 40000
	ca := matrix.NewCOO(64, n)
	for j := 0; j < heavy; j++ {
		ca.Append(0, int32(j), 1+float64(j%7))
	}
	for i := 1; i < 64; i++ {
		ca.Append(int32(i), int32(i*997%n), 2)
	}
	cb := matrix.NewCOO(n, n)
	for i := 0; i < n; i++ {
		cb.Append(int32(i), int32(i), float64(1+i%3))
	}
	return ca.ToCSR(), cb.ToCSR()
}

func TestHasHeavyRows(t *testing.T) {
	a, b := heavyRowCase()
	if !HasHeavyRows(a, b) {
		t.Error("HasHeavyRows = false on a 40000-flop row with 70000 output columns")
	}
	if MaxRowFlop(a, b) != 40000 {
		t.Errorf("MaxRowFlop = %d, want 40000", MaxRowFlop(a, b))
	}
	// Narrow output (fits one tile): never heavy, regardless of flop.
	rng := rand.New(rand.NewSource(5))
	g := gen.ER(8, 8, rng)
	if HasHeavyRows(g, g) {
		t.Error("HasHeavyRows = true on a 256-column product")
	}
}

// TestTiledMatchesHash forces tiny tiles on a skewed G500 input so the heavy
// (row, tile) path does real work, and requires the result to be
// BIT-IDENTICAL to the hash kernel's: both paths fold each output entry's
// contributions in ascending A-row entry order, so even float64 rounding
// must agree exactly.
func TestTiledMatchesHash(t *testing.T) {
	rng := rand.New(rand.NewSource(20180618))
	a := gen.RMAT(9, 8, gen.G500Params, rng)
	for _, unsorted := range []bool{false, true} {
		for _, workers := range []int{1, 4} {
			want, err := Multiply(a, a, &Options{Algorithm: AlgHash, Unsorted: unsorted, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			var st ExecStats
			got, err := Multiply(a, a, &Options{
				Algorithm: AlgTiled, Unsorted: unsorted, Workers: workers,
				TileCols: 64, TileHeavyFlop: 16, Stats: &st,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !unsorted {
				assertIdenticalCSR(t, got, want)
			} else {
				gs, ws := got.Clone(), want.Clone()
				gs.SortRows()
				ws.SortRows()
				assertIdenticalCSR(t, gs, ws)
			}
			if st.TotalWorker().L2Overflows == 0 {
				t.Errorf("unsorted=%v workers=%d: no units routed through tiling under forced 64-wide tiles", unsorted, workers)
			}
			if st.Algorithm != AlgTiled {
				t.Errorf("Stats.Algorithm = %v, want AlgTiled", st.Algorithm)
			}
		}
	}
}

func assertIdenticalCSR(t *testing.T, got, want *matrix.CSR) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols || got.NNZ() != want.NNZ() {
		t.Fatalf("shape/nnz mismatch: got %dx%d/%d, want %dx%d/%d",
			got.Rows, got.Cols, got.NNZ(), want.Rows, want.Cols, want.NNZ())
	}
	for i := 0; i <= got.Rows; i++ {
		if got.RowPtr[i] != want.RowPtr[i] {
			t.Fatalf("RowPtr[%d] = %d, want %d", i, got.RowPtr[i], want.RowPtr[i])
		}
	}
	for p := range want.ColIdx {
		if got.ColIdx[p] != want.ColIdx[p] {
			t.Fatalf("ColIdx[%d] = %d, want %d", p, got.ColIdx[p], want.ColIdx[p])
		}
		if got.Val[p] != want.Val[p] {
			t.Fatalf("Val[%d] = %v, want %v (not bit-identical)", p, got.Val[p], want.Val[p])
		}
	}
}

// TestTiledDefaultGeometryAllLight: at analytic geometry a small product has
// a single tile, so every row stays on the light hash path and nothing is
// counted as an overflow.
func TestTiledDefaultGeometryAllLight(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := gen.ER(8, 8, rng)
	var st ExecStats
	got, err := Multiply(a, a, &Options{Algorithm: AlgTiled, Workers: 2, Stats: &st})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Multiply(a, a, &Options{Algorithm: AlgHash, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	assertIdenticalCSR(t, got, want)
	if n := st.TotalWorker().L2Overflows; n != 0 {
		t.Errorf("L2Overflows = %d on a single-tile product, want 0", n)
	}
}

// TestAutoSelectsTiledOnHeavyRows: the recipe routes the skewed heavy-row
// regime to AlgTiled, the resolved algorithm lands in Stats, and the result
// matches the hash kernel bit for bit. At default geometry the product
// splits into ⌈70000/32768⌉ = 3 tiles and the heavy row really overflows.
func TestAutoSelectsTiledOnHeavyRows(t *testing.T) {
	a, b := heavyRowCase()
	if alg := Recommend(a, b, true, UseSquare); alg != AlgTiled {
		t.Fatalf("Recommend = %v, want AlgTiled", alg)
	}
	var st ExecStats
	got, err := Multiply(a, b, &Options{Algorithm: AlgAuto, Stats: &st})
	if err != nil {
		t.Fatal(err)
	}
	if st.Algorithm != AlgTiled {
		t.Fatalf("AlgAuto resolved to %v, want AlgTiled", st.Algorithm)
	}
	if st.TotalWorker().L2Overflows == 0 {
		t.Error("heavy row not routed through tiling at default geometry")
	}
	want, err := Multiply(a, b, &Options{Algorithm: AlgHash})
	if err != nil {
		t.Fatal(err)
	}
	assertIdenticalCSR(t, got, want)
}

// TestTiledSortedInvariant: forced tiny tiles on an unsorted-B input with
// sorted output requested — the per-tile sorted extraction plus ascending
// tile stitch must yield globally sorted rows without any post-pass.
func TestTiledSortedInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := gen.RMAT(8, 8, gen.G500Params, rng)
	u := gen.Unsorted(g, rng)
	c, err := Multiply(u, u, &Options{Algorithm: AlgTiled, Workers: 3, TileCols: 32, TileHeavyFlop: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !c.Sorted || !c.IsSortedRows() {
		t.Fatal("tiled output not sorted despite Sorted flag contract")
	}
}

// TestTiledSteadyStateAllocs is the satellite pin: with a reused Context and
// forced tiny tiles (so the split + stitch + heavy units all run every
// call), steady-state allocations must stay at the output-only level of the
// other kernels — the split buffers, unit arrays, and stitch must all come
// from the Context.
func TestTiledSteadyStateAllocs(t *testing.T) {
	if obs.Active() != nil {
		t.Skip("tracing enabled")
	}
	rng := rand.New(rand.NewSource(7))
	a := gen.RMAT(8, 8, gen.G500Params, rng)
	opt := &Options{
		Algorithm: AlgTiled, Workers: 1, Context: NewContext(),
		TileCols: 64, TileHeavyFlop: 16,
	}
	var sink *matrix.CSR
	run := func() {
		c, err := Multiply(a, a, opt)
		if err != nil {
			t.Fatal(err)
		}
		sink = c
	}
	run() // warm the context: split buffers, unit arrays, SPA, hash tables
	allocs := testing.AllocsPerRun(10, run)
	// Output CSR arrays + header + the fixed per-call closures; anything
	// growing per row or per tile would blow well past this.
	if allocs > 16 {
		t.Errorf("tiled Multiply with Context: %v allocs/op, want <= 16 (output-only)", allocs)
	}
	_ = sink

	// The stitch primitive itself: extracting a unit into a preallocated
	// output slice allocates nothing at all.
	spa := accum.NewSPAG[float64](64)
	cols := make([]int32, 64)
	vals := make([]float64, 64)
	requireZeroAllocs(t, "tiled stitch extract", func() {
		spa.Reset()
		for k := int32(60); k > 0; k -= 3 {
			slot, fresh := spa.Upsert(k)
			if fresh {
				*slot = float64(k)
			} else {
				*slot += 1
			}
		}
		n := spa.Len()
		spa.ExtractSortedBias(cols[:n], vals[:n], 128)
	})
}
