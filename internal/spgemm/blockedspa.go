package spgemm

import (
	"repro/internal/accum"
	"repro/internal/matrix"
	"repro/internal/sched"
	"repro/internal/semiring"
)

// blockedSPAMultiply implements the cache-blocked SPA SpGEMM of Patwary et
// al. (ISC 2015), described in the paper's Section 2: "a SPA-based algorithm
// can still achieve good performance by 'blocking' SPA in order to decrease
// cache miss rates. Patwary et al. achieved this by partitioning the data
// structure of B by columns."
//
// B is pre-split into column blocks; each worker sweeps its rows once per
// block with a SPA the size of one block (cache-resident), emitting each
// row's entries block by block — which also yields sorted output for free
// across blocks (and within a block after the per-block sort of the SPA's
// index list).
type blockedSPAConfig struct {
	// blockCols is the SPA width; 0 picks a cache-sized default.
	blockCols int
}

// defaultSPABlock holds the dense value+stamp arrays of one block in ~384 KiB
// (32768 × 12 bytes), comfortably inside an L2 slice.
const defaultSPABlock = 32768

func blockedSPAMultiply[V semiring.Value, R semiring.Ring[V]](ring R, a, b *matrix.CSRG[V], opt *OptionsG[V], cfg blockedSPAConfig) (*matrix.CSRG[V], error) {
	blockCols := cfg.blockCols
	if blockCols <= 0 {
		blockCols = opt.TileCols
	}
	if blockCols <= 0 {
		// Analytic cache-derived width (tilegeom.go); falls back to the
		// legacy defaultSPABlock constant when no cache parameters are
		// installed.
		blockCols = tileColsFor[V]()
	}
	nBlocks := (b.Cols + blockCols - 1) / blockCols
	if nBlocks < 1 {
		nBlocks = 1
	}
	workers := opt.workers()
	if workers > a.Rows && a.Rows > 0 {
		workers = a.Rows
	}
	if workers < 1 {
		workers = 1
	}
	pt := startPhases(opt.Stats, workers)
	// Split B by columns: blocks[k] holds B's entries with column in
	// [k·blockCols, (k+1)·blockCols), columns relabeled to block-local.
	blocks := splitColumns(b, blockCols, nBlocks)
	flopRow := perRowFlop(a, b)
	offsets := sched.BalancedPartition(flopRow, workers, workers)
	pt.tick(PhasePartition)

	// One-phase with per-worker growable buffers; rows stay contiguous per
	// worker because workers own contiguous row ranges.
	bufCols := make([][]int32, workers)
	bufVals := make([][]V, workers)
	rowNnz := make([]int64, a.Rows)
	rowOffset := make([]int64, a.Rows)

	sched.RunWorkersNamed("numeric", workers, func(w int) {
		lo, hi := offsets[w], offsets[w+1]
		if lo >= hi {
			return
		}
		spa := accum.NewSPAG[V](blockCols)
		scratchCols := make([]int32, blockCols)
		scratchVals := make([]V, blockCols)
		for i := lo; i < hi; i++ {
			rowOffset[i] = int64(len(bufCols[w]))
			alo, ahi := a.RowPtr[i], a.RowPtr[i+1]
			var produced int64
			for blk := 0; blk < nBlocks; blk++ {
				bb := blocks[blk]
				spa.Reset()
				for p := alo; p < ahi; p++ {
					k := a.ColIdx[p]
					av := a.Val[p]
					blo, bhi := bb.RowPtr[k], bb.RowPtr[k+1]
					for q := blo; q < bhi; q++ {
						prod := ring.Mul(av, bb.Val[q])
						slot, fresh := spa.Upsert(bb.ColIdx[q])
						if fresh {
							*slot = prod
						} else {
							*slot = ring.Add(*slot, prod)
						}
					}
				}
				n := spa.Len()
				if n == 0 {
					continue
				}
				var cnt int
				if opt.Unsorted {
					cnt = spa.ExtractUnsorted(scratchCols[:n], scratchVals[:n])
				} else {
					cnt = spa.ExtractSorted(scratchCols[:n], scratchVals[:n])
				}
				base := int32(blk * blockCols)
				for t := 0; t < cnt; t++ {
					bufCols[w] = append(bufCols[w], scratchCols[t]+base)
					bufVals[w] = append(bufVals[w], scratchVals[t])
				}
				produced += int64(cnt)
			}
			rowNnz[i] = produced
		}
		if ws := pt.worker(w); ws != nil {
			ws.Rows = int64(hi - lo)
			ws.Flop = rangeFlop(flopRow, lo, hi)
		}
	})
	pt.tick(PhaseNumeric)

	rowPtr := sched.PrefixSum(rowNnz, nil, workers)
	// Blocks are emitted in increasing column order, so with sorted
	// per-block extraction the whole row is sorted.
	c := outputShell[V](a.Rows, b.Cols, rowPtr, !opt.Unsorted)
	pt.tick(PhaseAlloc)
	sched.RunWorkersNamed("assemble", workers, func(w int) {
		lo, hi := offsets[w], offsets[w+1]
		for i := lo; i < hi; i++ {
			off := rowOffset[i]
			n := rowNnz[i]
			copy(c.ColIdx[rowPtr[i]:rowPtr[i]+n], bufCols[w][off:off+n])
			copy(c.Val[rowPtr[i]:rowPtr[i]+n], bufVals[w][off:off+n])
		}
	})
	pt.tick(PhaseAssemble)
	pt.finish()
	return c, nil
}

// splitColumns partitions b into column blocks with block-local column ids.
func splitColumns[V semiring.Value](b *matrix.CSRG[V], blockCols, nBlocks int) []*matrix.CSRG[V] {
	blocks := make([]*matrix.CSRG[V], nBlocks)
	counts := make([][]int64, nBlocks)
	for k := range blocks {
		width := blockCols
		if (k+1)*blockCols > b.Cols {
			width = b.Cols - k*blockCols
		}
		blocks[k] = &matrix.CSRG[V]{
			Rows:   b.Rows,
			Cols:   width,
			RowPtr: make([]int64, b.Rows+1),
			Sorted: b.Sorted,
		}
		counts[k] = make([]int64, b.Rows)
	}
	for i := 0; i < b.Rows; i++ {
		lo, hi := b.RowPtr[i], b.RowPtr[i+1]
		for p := lo; p < hi; p++ {
			counts[int(b.ColIdx[p])/blockCols][i]++
		}
	}
	for k := range blocks {
		var acc int64
		for i := 0; i < b.Rows; i++ {
			acc += counts[k][i]
			blocks[k].RowPtr[i+1] = acc
		}
		blocks[k].ColIdx = make([]int32, acc)
		blocks[k].Val = make([]V, acc)
		// Reuse counts[k] as per-row insertion cursors.
		for i := 0; i < b.Rows; i++ {
			counts[k][i] = blocks[k].RowPtr[i]
		}
	}
	for i := 0; i < b.Rows; i++ {
		lo, hi := b.RowPtr[i], b.RowPtr[i+1]
		for p := lo; p < hi; p++ {
			k := int(b.ColIdx[p]) / blockCols
			q := counts[k][i]
			blocks[k].ColIdx[q] = b.ColIdx[p] - int32(k*blockCols)
			blocks[k].Val[q] = b.Val[p]
			counts[k][i] = q + 1
		}
	}
	return blocks
}
