package spgemm

import (
	"repro/internal/matrix"
	"repro/internal/semiring"
)

// Tiled plan build/execute: the AlgTiled arm of the inspector-executor
// split. The inspector caches everything structure-dependent — the tile
// geometry resolved at build time, the column-split of B (structure plus a
// permutation back to B's entry order), the heavy (row, tile) units with
// their flop weights, sizes and stitched output offsets, and both balanced
// partitions — so an execution is numeric work only: gather B's current
// split values through the permutation, then replay the light hash phase
// and the heavy dense-accumulator units straight into the output.

// buildTiled runs the tiled inspector into plan-owned buffers. Mirrors
// tiledMultiply's partition+symbolic phases; see tiled.go for the algorithm
// commentary.
func (p *Plan) buildTiled(opt *Options, ctx *Context) {
	a, b := p.a, p.b
	workers := p.workers
	g := &OptionsG[float64]{TileCols: opt.TileCols, TileHeavyFlop: opt.TileHeavyFlop}
	p.tileCols, p.heavyFlop = g.tileGeometry()
	p.nTiles = 1
	if b.Cols > p.tileCols {
		p.nTiles = (b.Cols + p.tileCols - 1) / p.tileCols
	}

	pt := startPhases(opt.Stats, workers)
	flopRow := ctx.perRowFlop(a, b)
	p.flopRow = append(p.flopRow[:0], flopRow...)

	p.nHeavy = 0
	if p.nTiles > 1 {
		for i := 0; i < a.Rows; i++ {
			if capBound(p.flopRow[i], b.Cols) > p.heavyFlop {
				p.nHeavy++
			}
		}
	}
	p.lightFlop = p.flopRow
	if p.nHeavy > 0 {
		p.lightFlop = make([]int64, a.Rows)
		for i, f := range p.flopRow {
			if capBound(f, b.Cols) > p.heavyFlop {
				p.lightFlop[i] = 0
			} else {
				p.lightFlop[i] = f
			}
		}
	}
	p.offsets = append(p.offsets[:0], ctx.partition(p.lightFlop, workers, workers)...)

	nUnits := 0
	if p.nHeavy > 0 {
		p.perm = make([]int64, b.RowPtr[b.Rows])
		tiles := splitTiles(ctx, b, p.tileCols, p.nTiles, p.perm)
		p.tileRowPtr = append(p.tileRowPtr[:0], tiles.rowPtr...)
		p.tileIdx = append(p.tileIdx[:0], tiles.colIdx...)
		tiles.rowPtr = p.tileRowPtr
		tiles.colIdx = p.tileIdx

		nUnits = p.nHeavy * p.nTiles
		p.unitRow = make([]int32, nUnits)
		p.unitTile = make([]int32, nUnits)
		p.unitFlop = make([]int64, nUnits)
		p.unitNnz = make([]int64, nUnits)
		p.unitOff = make([]int64, nUnits)
		u := 0
		for i := 0; i < a.Rows; i++ {
			if capBound(p.flopRow[i], b.Cols) <= p.heavyFlop {
				continue
			}
			base := u
			for t := 0; t < p.nTiles; t++ {
				p.unitRow[base+t] = int32(i)
				p.unitTile[base+t] = int32(t)
			}
			for q := a.RowPtr[i]; q < a.RowPtr[i+1]; q++ {
				k := int(a.ColIdx[q])
				for t := 0; t < p.nTiles; t++ {
					lo, hi := tiles.rowRange(t, k)
					p.unitFlop[base+t] += hi - lo
				}
			}
			u += p.nTiles
		}
		p.uoffsets = append(p.uoffsets[:0], ctx.partitionUnits(p.unitFlop, workers, workers)...)
	}
	pt.tick(PhasePartition)

	p.bounds = make([]int64, workers)
	rowNnz := ctx.rowNnzBuf(a.Rows)
	ctx.runWorkers("inspect-symbolic", workers, func(w int) {
		lo, hi := p.offsets[w], p.offsets[w+1]
		if lo >= hi {
			return
		}
		bound := int64(0)
		for i := lo; i < hi; i++ {
			if p.lightFlop[i] > bound {
				bound = p.lightFlop[i]
			}
		}
		p.bounds[w] = capBound(bound, b.Cols)
		table := ctx.hashTable(w, p.bounds[w])
		for i := lo; i < hi; i++ {
			if p.nHeavy > 0 && capBound(p.flopRow[i], b.Cols) > p.heavyFlop {
				continue
			}
			table.Reset()
			alo, ahi := a.RowPtr[i], a.RowPtr[i+1]
			for q := alo; q < ahi; q++ {
				k := a.ColIdx[q]
				for r := b.RowPtr[k]; r < b.RowPtr[k+1]; r++ {
					table.InsertSymbolic(b.ColIdx[r])
				}
			}
			rowNnz[i] = int64(table.Len())
		}
	})
	if nUnits > 0 {
		tiles := tiledSplit[float64]{rowPtr: p.tileRowPtr, colIdx: p.tileIdx, rows: b.Rows}
		ctx.runWorkers("inspect-symbolic-heavy", workers, func(w int) {
			ulo, uhi := p.uoffsets[w], p.uoffsets[w+1]
			if ulo >= uhi {
				return
			}
			spa := ctx.spaTable(w, p.tileCols)
			for u := ulo; u < uhi; u++ {
				if p.unitFlop[u] == 0 {
					continue
				}
				p.unitNnz[u] = tiledUnitSymbolic(spa, a, &tiles, int(p.unitRow[u]), int(p.unitTile[u]))
			}
		})
		for u := 0; u < nUnits; u++ {
			rowNnz[p.unitRow[u]] += p.unitNnz[u]
		}
	}
	pt.tick(PhaseSymbolic)
	p.rowPtr = ctx.prefixSum(rowNnz, make([]int64, a.Rows+1), workers)
	for u := 0; u < nUnits; u++ {
		if p.unitTile[u] == 0 {
			p.unitOff[u] = p.rowPtr[p.unitRow[u]]
		} else {
			p.unitOff[u] = p.unitOff[u-1] + p.unitNnz[u-1]
		}
	}
	pt.finish()
}

// executeTiled replays the numeric phase of a tiled plan against the current
// values of A and B. The plan is read-only here; all mutable state (hash
// tables, dense accumulators, the gathered tile values) comes from ctx, so
// concurrent calls with distinct Contexts are safe.
func (p *Plan) executeTiled(ctx *Context, stats *ExecStats) (*matrix.CSR, error) {
	a, b := p.a, p.b
	ring := semiring.PlusTimesF64{}
	if ctx == nil {
		ctx = NewContext()
	}
	ctx.ensureWorkers(p.workers)
	pt := startPhases(stats, p.workers)
	if stats != nil {
		stats.Algorithm = p.alg
	}

	// Re-gather B's current split values through the cached permutation —
	// the only per-execution tile work; O(nnz(B)) with no allocations at
	// steady state.
	var tiles tiledSplit[float64]
	nUnits := len(p.unitRow)
	if nUnits > 0 {
		vals := ctx.tileValBuf(len(p.perm))
		for q, src := range p.perm {
			vals[q] = b.Val[src]
		}
		tiles = tiledSplit[float64]{rowPtr: p.tileRowPtr, colIdx: p.tileIdx, vals: vals, rows: b.Rows}
	}
	pt.tick(PhasePartition)
	pt.tick(PhaseSymbolic)

	outPtr := make([]int64, len(p.rowPtr))
	copy(outPtr, p.rowPtr)
	c := outputShell[float64](a.Rows, b.Cols, outPtr, !p.unsorted)
	pt.tick(PhaseAlloc)

	ctx.runWorkers("plan-numeric", p.workers, func(w int) {
		lo, hi := p.offsets[w], p.offsets[w+1]
		if lo >= hi {
			return
		}
		table := ctx.hashTable(w, p.bounds[w])
		rows := int64(0)
		for i := lo; i < hi; i++ {
			if p.nHeavy > 0 && capBound(p.flopRow[i], b.Cols) > p.heavyFlop {
				continue
			}
			rows++
			table.Reset()
			alo, ahi := a.RowPtr[i], a.RowPtr[i+1]
			for q := alo; q < ahi; q++ {
				k := a.ColIdx[q]
				av := a.Val[q]
				for r := b.RowPtr[k]; r < b.RowPtr[k+1]; r++ {
					prod := av * b.Val[r]
					slot, fresh := table.Upsert(b.ColIdx[r])
					if fresh {
						*slot = prod
					} else {
						*slot += prod
					}
				}
			}
			start := c.RowPtr[i]
			n := c.RowPtr[i+1] - start
			if p.unsorted {
				table.ExtractUnsorted(c.ColIdx[start:start+n], c.Val[start:start+n])
			} else {
				table.ExtractSorted(c.ColIdx[start:start+n], c.Val[start:start+n])
			}
		}
		if ws := pt.worker(w); ws != nil {
			ws.Rows += rows
			ws.Flop += rangeFlop(p.lightFlop, lo, hi)
			ws.HashLookups += table.Lookups()
			ws.HashProbes += table.Probes()
		}
	})
	if nUnits > 0 {
		ctx.runWorkers("plan-numeric-heavy", p.workers, func(w int) {
			ulo, uhi := p.uoffsets[w], p.uoffsets[w+1]
			if ulo >= uhi {
				return
			}
			spa := ctx.spaTable(w, p.tileCols)
			var flop, rows int64
			for u := ulo; u < uhi; u++ {
				t := int(p.unitTile[u])
				if t == 0 {
					rows++
				}
				if p.unitNnz[u] == 0 {
					continue
				}
				start := p.unitOff[u]
				cols := c.ColIdx[start : start+p.unitNnz[u]]
				vals := c.Val[start : start+p.unitNnz[u]]
				tiledUnitNumeric(ring, spa, a, &tiles, int(p.unitRow[u]), t, cols, vals, int32(t*p.tileCols), !p.unsorted)
				flop += p.unitFlop[u]
			}
			if ws := pt.worker(w); ws != nil {
				ws.Rows += rows
				ws.Flop += flop
				ws.L2Overflows += int64(uhi - ulo)
			}
		})
	}
	pt.tick(PhaseNumeric)
	pt.finish()
	mPlanExecs.Inc()
	if stats != nil {
		ctx.accumulate(stats)
	}
	return c, nil
}
