package spgemm

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/matrix"
	"repro/internal/sched"
)

// The acceptance workload of the reusable-execution-context work: A² on an
// Erdős–Rényi scale-14 matrix (2^14 rows, edge factor 16), the paper's
// uniform synthetic family at a size where per-call allocation is clearly
// visible. Run with -benchmem: the context and plan variants must sit at a
// small fraction (≥10× reduction) of the one-shot allocs/op, and the plan
// variant additionally skips partition+symbolic (see
// TestPlanExecuteSkipsInspection for the ExecStats assertion).
//
// The worker count is pinned rather than taken from GOMAXPROCS so the
// allocation accounting is comparable across machines: one-shot allocations
// grow with the worker count (per-worker tables), reuse stays flat.

const reuseWorkers = 8

var reuseFixture struct {
	once sync.Once
	a    *matrix.CSR
}

func reuseMatrix(b *testing.B) *matrix.CSR {
	reuseFixture.once.Do(func() {
		rng := rand.New(rand.NewSource(20180618))
		reuseFixture.a = gen.ER(14, 16, rng)
	})
	return reuseFixture.a
}

func BenchmarkMultiplyReuse(b *testing.B) {
	a := reuseMatrix(b)
	for _, alg := range []Algorithm{AlgHash, AlgHashVec} {
		b.Run(alg.String(), func(b *testing.B) {
			b.Run("oneshot", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := Multiply(a, a, &Options{Algorithm: alg, Workers: reuseWorkers}); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run("context", func(b *testing.B) {
				// A dedicated persistent pool keeps every dispatch on a
				// parked goroutine (the default pool is sized to
				// GOMAXPROCS and overflow-spawns beyond that).
				ctx := NewContext()
				ctx.Pool = sched.NewPool(reuseWorkers)
				defer ctx.Pool.Close()
				opt := &Options{Algorithm: alg, Workers: reuseWorkers, Context: ctx}
				// Warm up outside the timer: steady state is the claim.
				if _, err := Multiply(a, a, opt); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := Multiply(a, a, opt); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run("plan", func(b *testing.B) {
				ctx := NewContext()
				ctx.Pool = sched.NewPool(reuseWorkers)
				defer ctx.Pool.Close()
				plan, err := NewPlan(a, a, &Options{Algorithm: alg, Workers: reuseWorkers, Context: ctx})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := plan.Execute(); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := plan.Execute(); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}
