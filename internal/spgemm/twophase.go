package spgemm

import (
	"repro/internal/accum"
	"repro/internal/matrix"
	"repro/internal/sched"
	"repro/internal/semiring"
)

// rowAcc is the per-row accumulator contract shared by the two-phase
// algorithms (Hash, HashVector, SPA, Kokkos-style and the MKL map stand-in).
// An accumulator is owned by one worker, allocated once, and Reset between
// rows — the paper's thread-private "parallel" memory discipline.
//
// Accumulators are generic over the value type only and never see the
// semiring: Upsert hands the driver a pointer to the key's value slot plus a
// freshness flag, and the driver applies the ring (store on fresh,
// ring.Add otherwise). One accumulator implementation therefore serves
// every ring over V.
type rowAcc[V semiring.Value] interface {
	Reset()
	Len() int
	InsertSymbolic(key int32) bool
	Upsert(key int32) (*V, bool)
	Lookup(key int32) (V, bool)
	ExtractUnsorted(cols []int32, vals []V) int
	ExtractSorted(cols []int32, vals []V) int
}

// Interface conformance for the accum package types.
var (
	_ rowAcc[float64] = (*accum.HashTable)(nil)
	_ rowAcc[float64] = (*accum.HashVecTable)(nil)
	_ rowAcc[float64] = (*accum.SPA)(nil)
	_ rowAcc[float64] = (*accum.TwoLevelHash)(nil)
	_ rowAcc[bool]    = (*accum.HashTableG[bool])(nil)
)

// twoPhaseConfig parameterizes the shared symbolic+numeric driver.
type twoPhaseConfig[V semiring.Value] struct {
	// factory builds (or, via the call's Context, revives) worker w's
	// accumulator. bound is an upper bound on the entries any single row
	// handled by this worker can produce (max per-row flop, capped at the
	// column count) — the paper's Figure 7 sizing rule. Factories that
	// cache in ctx (hash, hashvec) make repeated calls allocation-free;
	// the baseline factories ignore ctx by design.
	factory func(ctx *ContextG[V], w int, bound int64) rowAcc[V]
	// schedule distributes rows over workers. Balanced uses the flop-
	// weighted partition of Figure 6; the others exist to reproduce
	// baseline behaviour (MKL: static; Kokkos: dynamic).
	schedule sched.Schedule
	// grain is the chunk size for dynamic/guided scheduling.
	grain int
}

// twoPhase runs the symbolic phase (per-row output sizes), materializes the
// row pointer array with a parallel prefix sum, and runs the numeric phase
// into the exactly-sized output — Figure 7 of the paper. The ring is applied
// by this driver alone; the accumulators only store values.
func twoPhase[V semiring.Value, R semiring.Ring[V]](ring R, a, b *matrix.CSRG[V], opt *OptionsG[V], cfg twoPhaseConfig[V]) (*matrix.CSRG[V], error) {
	workers := opt.workers()
	if workers > a.Rows && a.Rows > 0 {
		workers = a.Rows
	}
	if workers < 1 {
		workers = 1
	}
	ctx := opt.ctx()
	ctx.ensureWorkers(workers)
	pt := startPhases(opt.Stats, workers)
	flopRow := ctx.perRowFlop(a, b)

	// Row → worker assignment.
	var offsets []int
	balanced := cfg.schedule == sched.Balanced
	if balanced {
		offsets = ctx.partition(flopRow, workers, workers)
	}

	// Upper bound for accumulator sizing. Balanced workers size to their
	// own rows' max flop; other schedules cannot know their rows up front
	// and size to the global max (still capped at Cols).
	globalBound := int64(0)
	if !balanced {
		for _, f := range flopRow {
			if f > globalBound {
				globalBound = f
			}
		}
		globalBound = capBound(globalBound, b.Cols)
	}
	pt.tick(PhasePartition)

	accs := make([]rowAcc[V], workers)
	var maskAccs []*accum.HashTableG[V]
	if opt.Mask != nil {
		maskAccs = make([]*accum.HashTableG[V], workers)
	}
	getAcc := func(w int, bound int64) rowAcc[V] {
		if accs[w] == nil {
			accs[w] = cfg.factory(ctx, w, bound)
			if maskAccs != nil {
				maskBound := capBound(opt.Mask.MaxRowNNZ(), b.Cols)
				maskAccs[w] = accum.NewHashTableG[V](maskBound)
			}
		}
		return accs[w]
	}

	rowNnz := ctx.rowNnzBuf(a.Rows)

	// recordWorker folds worker w's row/flop tally and its accumulator's
	// cumulative counters into the stats. Called at the end of each numeric
	// chunk; the counter reads are assignments of cumulative values, so
	// repeated calls from the same worker are idempotent-safe.
	recordWorker := func(w, rows int, flop int64) {
		ws := pt.worker(w)
		if ws == nil {
			return
		}
		ws.Rows += int64(rows)
		ws.Flop += flop
		acc := accs[w]
		if acc == nil {
			return
		}
		if pc, ok := acc.(interface {
			Probes() int64
			Lookups() int64
		}); ok {
			ws.HashProbes = pc.Probes()
			ws.HashLookups = pc.Lookups()
		}
		if oc, ok := acc.(interface{ Overflows() int64 }); ok {
			ws.L2Overflows = oc.Overflows()
		}
	}

	symbolicRow := func(acc rowAcc[V], maskAcc *accum.HashTableG[V], i int) {
		acc.Reset()
		if maskAcc != nil {
			loadMask(maskAcc, opt.Mask, i)
		}
		alo, ahi := a.RowPtr[i], a.RowPtr[i+1]
		for p := alo; p < ahi; p++ {
			k := a.ColIdx[p]
			blo, bhi := b.RowPtr[k], b.RowPtr[k+1]
			for q := blo; q < bhi; q++ {
				c := b.ColIdx[q]
				if maskAcc != nil {
					if _, ok := maskAcc.Lookup(c); !ok {
						continue
					}
				}
				acc.InsertSymbolic(c)
			}
		}
		rowNnz[i] = int64(acc.Len())
	}

	// --- Symbolic phase ---
	if balanced {
		ctx.runWorkers("symbolic", workers, func(w int) {
			lo, hi := offsets[w], offsets[w+1]
			bound := int64(0)
			for i := lo; i < hi; i++ {
				if flopRow[i] > bound {
					bound = flopRow[i]
				}
			}
			acc := getAcc(w, capBound(bound, b.Cols))
			var maskAcc *accum.HashTableG[V]
			if maskAccs != nil {
				maskAcc = maskAccs[w]
			}
			for i := lo; i < hi; i++ {
				symbolicRow(acc, maskAcc, i)
			}
		})
	} else {
		ctx.parallelFor("symbolic", workers, a.Rows, cfg.schedule, cfg.grain, func(w, lo, hi int) {
			acc := getAcc(w, globalBound)
			var maskAcc *accum.HashTableG[V]
			if maskAccs != nil {
				maskAcc = maskAccs[w]
			}
			for i := lo; i < hi; i++ {
				symbolicRow(acc, maskAcc, i)
			}
		})
	}

	pt.tick(PhaseSymbolic)

	rowPtr := ctx.prefixSum(rowNnz, nil, workers)
	c := outputShell[V](a.Rows, b.Cols, rowPtr, !opt.Unsorted)
	pt.tick(PhaseAlloc)

	numericRow := func(acc rowAcc[V], maskAcc *accum.HashTableG[V], i int) {
		acc.Reset()
		if maskAcc != nil {
			loadMask(maskAcc, opt.Mask, i)
		}
		alo, ahi := a.RowPtr[i], a.RowPtr[i+1]
		for p := alo; p < ahi; p++ {
			k := a.ColIdx[p]
			av := a.Val[p]
			blo, bhi := b.RowPtr[k], b.RowPtr[k+1]
			for q := blo; q < bhi; q++ {
				col := b.ColIdx[q]
				if maskAcc != nil {
					if _, ok := maskAcc.Lookup(col); !ok {
						continue
					}
				}
				prod := ring.Mul(av, b.Val[q])
				slot, fresh := acc.Upsert(col)
				if fresh {
					*slot = prod
				} else {
					*slot = ring.Add(*slot, prod)
				}
			}
		}
		start := c.RowPtr[i]
		cols := c.ColIdx[start : start+rowNnz[i]]
		vals := c.Val[start : start+rowNnz[i]]
		if opt.Unsorted {
			acc.ExtractUnsorted(cols, vals)
		} else {
			acc.ExtractSorted(cols, vals)
		}
	}

	// --- Numeric phase ---
	if balanced {
		ctx.runWorkers("numeric", workers, func(w int) {
			lo, hi := offsets[w], offsets[w+1]
			acc := accs[w]
			if acc == nil { // worker had no rows in symbolic (possible with 0-row spans)
				return
			}
			var maskAcc *accum.HashTableG[V]
			if maskAccs != nil {
				maskAcc = maskAccs[w]
			}
			for i := lo; i < hi; i++ {
				numericRow(acc, maskAcc, i)
			}
			recordWorker(w, hi-lo, rangeFlop(flopRow, lo, hi))
		})
	} else {
		ctx.parallelFor("numeric", workers, a.Rows, cfg.schedule, cfg.grain, func(w, lo, hi int) {
			acc := getAcc(w, globalBound)
			var maskAcc *accum.HashTableG[V]
			if maskAccs != nil {
				maskAcc = maskAccs[w]
			}
			for i := lo; i < hi; i++ {
				numericRow(acc, maskAcc, i)
			}
			recordWorker(w, hi-lo, rangeFlop(flopRow, lo, hi))
		})
	}
	pt.tick(PhaseNumeric)
	pt.finish()
	return c, nil
}

// perRowFlop returns the flop count of each output row.
func perRowFlop[V semiring.Value](a, b *matrix.CSRG[V]) []int64 {
	_, perRow := matrix.Flop(a, b)
	return perRow
}

// capBound clamps an accumulator size bound at the number of output columns
// (a row cannot have more distinct entries than columns) — the min(Ncol,
// size) of the paper's Figure 7. A matrix with no columns needs no
// accumulator capacity at all, so cols == 0 yields 0 (the accumulator
// constructors apply their own minimum capacities).
//
//spgemm:hotpath
func capBound(bound int64, cols int) int64 {
	if bound > int64(cols) {
		bound = int64(cols)
	}
	if bound < 0 {
		bound = 0
	}
	return bound
}

// loadMask fills the worker's mask table with the column pattern of mask row
// i. Only the mask's structure matters; its values are never read.
//
//spgemm:hotpath
func loadMask[V semiring.Value](maskAcc *accum.HashTableG[V], mask *matrix.CSRG[V], i int) {
	maskAcc.Reset()
	lo, hi := mask.RowPtr[i], mask.RowPtr[i+1]
	for p := lo; p < hi; p++ {
		maskAcc.InsertSymbolic(mask.ColIdx[p])
	}
}
