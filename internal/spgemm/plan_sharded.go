package spgemm

import (
	"repro/internal/matrix"
	"repro/internal/semiring"
)

// Sharded plans: the inspector caches the stripe geometry (flop-balanced
// offsets, per-stripe accumulator bounds, column-split flags) along with the
// usual symbolic result, so every Execute replays only the numeric stage of
// each stripe into a fresh in-RAM sink. Spill sinks are rejected at NewPlan:
// a spilled product aliases its temp-file mapping and is single-use, the
// opposite of what a reusable plan is for.

// buildSharded runs the sharded inspector: flop counts, stripe geometry and
// the stripe-local symbolic phase. Mirrors shardedMultiply up to PhaseAlloc.
func (p *Plan) buildSharded(opt *Options, ctx *Context) {
	a, b := p.a, p.b
	g := &OptionsG[float64]{
		Workers:        p.workers,
		Unsorted:       p.unsorted,
		Context:        ctx,
		TileCols:       opt.TileCols,
		TileHeavyFlop:  opt.TileHeavyFlop,
		ShardStripes:   opt.ShardStripes,
		ShardMemBudget: opt.ShardMemBudget,
	}
	pt := startPhases(opt.Stats, p.workers)
	flopRow := ctx.perRowFlop(a, b)
	p.flopRow = append(p.flopRow[:0], flopRow...)
	var totalFlop int64
	for _, f := range flopRow {
		totalFlop += f
	}
	geom := g.shardPlanGeometry(ctx, flopRow, totalFlop, a.Rows, b.Cols, p.workers)
	p.stripeOffsets = append(p.stripeOffsets[:0], geom.offsets...)
	p.stripeBounds = append(p.stripeBounds[:0], geom.bound...)
	p.stripeWide = append(p.stripeWide[:0], geom.wide...)
	p.shardBlockCols = geom.blockCols
	pt.tick(PhasePartition)

	rowNnz := ctx.rowNnzBuf(a.Rows)
	src := newHashShardSource(semiring.PlusTimesF64{}, a, b, ctx, &geom, flopRow, p.unsorted)
	shardSymbolic[float64](ctx, src, p.workers, rowNnz)
	pt.tick(PhaseSymbolic)
	p.rowPtr = ctx.prefixSum(rowNnz, make([]int64, a.Rows+1), p.workers)
	pt.finish()
}

// executeSharded replays the numeric stage of every stripe against the
// current values of A and B — bit-identical to what Multiply with the plan's
// options would produce (see shardedMultiply's identity guarantee).
func (p *Plan) executeSharded(ctx *Context, stats *ExecStats) (*matrix.CSR, error) {
	a, b := p.a, p.b
	if ctx == nil {
		ctx = NewContext()
	}
	ctx.ensureWorkers(p.workers)
	pt := startPhases(stats, p.workers)
	if stats != nil {
		stats.Algorithm = p.alg
	}
	geom := shardGeometry{
		offsets:   p.stripeOffsets,
		bound:     p.stripeBounds,
		wide:      p.stripeWide,
		blockCols: p.shardBlockCols,
	}
	src := newHashShardSource(semiring.PlusTimesF64{}, a, b, ctx, &geom, p.flopRow, p.unsorted)

	outPtr := make([]int64, len(p.rowPtr))
	copy(outPtr, p.rowPtr)
	sink := &memShardSink[float64]{}
	if err := sink.Bind(a.Rows, b.Cols, outPtr, !p.unsorted); err != nil {
		return nil, err
	}
	pt.tick(PhaseAlloc)

	if err := shardNumeric[float64](ctx, src, p.workers, outPtr, sink, &pt); err != nil {
		return nil, err
	}
	pt.tick(PhaseNumeric)
	c, err := sink.Assemble()
	if err != nil {
		return nil, err
	}
	pt.tick(PhaseAssemble)
	fillStripeStats(stats, &geom, p.flopRow, outPtr, sink)
	pt.finish()
	mPlanExecs.Inc()
	if stats != nil {
		ctx.accumulate(stats)
	}
	return c, nil
}
