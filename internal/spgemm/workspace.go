package spgemm

import (
	"fmt"

	"repro/internal/accum"
	"repro/internal/matrix"
	"repro/internal/sched"
)

// Workspace amortizes SpGEMM scratch allocations across repeated
// multiplications — the pattern of iterative applications such as Markov
// clustering (C = M·M every round) and AMG setup. It holds the per-worker
// hash tables and the per-row bookkeeping arrays, growing them monotonically
// and reusing them on every call; after warm-up, a Multiply allocates only
// the output matrix.
//
// A Workspace is NOT safe for concurrent use; give each goroutine its own.
type Workspace struct {
	workers int
	tables  []*accum.HashTable
	flopRow []int64
	rowNnz  []int64
	rowPtr  []int64
}

// NewWorkspace returns a workspace for the given worker count (0 means
// GOMAXPROCS, fixed at construction time).
func NewWorkspace(workers int) *Workspace {
	if workers <= 0 {
		workers = sched.DefaultWorkers()
	}
	return &Workspace{
		workers: workers,
		tables:  make([]*accum.HashTable, workers),
	}
}

// Multiply computes C = A·B with the hash algorithm (plus-times), reusing
// the workspace's scratch. Options semantics match spgemm.Multiply with
// Algorithm fixed to AlgHash; Mask and Semiring are not supported here (use
// spgemm.Multiply for those).
func (ws *Workspace) Multiply(a, b *matrix.CSR, unsorted bool) (*matrix.CSR, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("spgemm: dimension mismatch %dx%d × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	workers := ws.workers
	if workers > a.Rows && a.Rows > 0 {
		workers = a.Rows
	}
	if workers < 1 {
		workers = 1
	}

	// Reusable per-row arrays.
	if cap(ws.flopRow) < a.Rows {
		ws.flopRow = make([]int64, a.Rows)
		ws.rowNnz = make([]int64, a.Rows)
		ws.rowPtr = make([]int64, a.Rows+1)
	}
	flopRow := ws.flopRow[:a.Rows]
	rowNnz := ws.rowNnz[:a.Rows]
	for i := 0; i < a.Rows; i++ {
		lo, hi := a.RowPtr[i], a.RowPtr[i+1]
		var f int64
		for p := lo; p < hi; p++ {
			k := a.ColIdx[p]
			f += b.RowPtr[k+1] - b.RowPtr[k]
		}
		flopRow[i] = f
	}
	offsets := sched.BalancedPartition(flopRow, workers, workers)

	// Symbolic phase with reusable tables.
	sched.RunWorkers(workers, func(w int) {
		lo, hi := offsets[w], offsets[w+1]
		if lo >= hi {
			return
		}
		bound := int64(0)
		for i := lo; i < hi; i++ {
			if flopRow[i] > bound {
				bound = flopRow[i]
			}
		}
		bound = capBound(bound, b.Cols)
		table := ws.tables[w]
		if table == nil {
			table = accum.NewHashTable(bound)
			ws.tables[w] = table
		} else if int64(table.Cap()) <= bound {
			table.Reserve(bound)
		} else {
			table.Reset()
		}
		for i := lo; i < hi; i++ {
			table.Reset()
			alo, ahi := a.RowPtr[i], a.RowPtr[i+1]
			for p := alo; p < ahi; p++ {
				k := a.ColIdx[p]
				blo, bhi := b.RowPtr[k], b.RowPtr[k+1]
				for q := blo; q < bhi; q++ {
					table.InsertSymbolic(b.ColIdx[q])
				}
			}
			rowNnz[i] = int64(table.Len())
		}
	})

	rowPtr := sched.PrefixSum(rowNnz, ws.rowPtr[:a.Rows+1], workers)
	// The output arrays belong to the caller: allocate fresh, but reuse
	// the row pointer array only transiently (copy it out).
	outPtr := make([]int64, a.Rows+1)
	copy(outPtr, rowPtr)
	c := outputShell(a.Rows, b.Cols, outPtr, !unsorted)

	sched.RunWorkers(workers, func(w int) {
		lo, hi := offsets[w], offsets[w+1]
		if lo >= hi {
			return
		}
		table := ws.tables[w]
		for i := lo; i < hi; i++ {
			table.Reset()
			alo, ahi := a.RowPtr[i], a.RowPtr[i+1]
			for p := alo; p < ahi; p++ {
				k := a.ColIdx[p]
				av := a.Val[p]
				blo, bhi := b.RowPtr[k], b.RowPtr[k+1]
				for q := blo; q < bhi; q++ {
					table.Accumulate(b.ColIdx[q], av*b.Val[q])
				}
			}
			start := c.RowPtr[i]
			cols := c.ColIdx[start : start+rowNnz[i]]
			vals := c.Val[start : start+rowNnz[i]]
			if unsorted {
				table.ExtractUnsorted(cols, vals)
			} else {
				table.ExtractSorted(cols, vals)
			}
		}
	})
	return c, nil
}
