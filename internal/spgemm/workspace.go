package spgemm

import (
	"repro/internal/matrix"
	"repro/internal/sched"
)

// Workspace amortizes SpGEMM scratch allocations across repeated
// multiplications — the pattern of iterative applications such as Markov
// clustering (C = M·M every round) and AMG setup. It predates Context and is
// kept as a convenience wrapper: a Workspace is a Context with a fixed worker
// count and the algorithm pinned to Hash. New code should use Options.Context
// directly, which covers every algorithm and composes with Plan.
//
// A Workspace is NOT safe for concurrent use; give each goroutine its own.
type Workspace struct {
	workers int
	ctx     *Context
}

// NewWorkspace returns a workspace for the given worker count (0 means
// GOMAXPROCS, fixed at construction time).
func NewWorkspace(workers int) *Workspace {
	if workers <= 0 {
		workers = sched.DefaultWorkers()
	}
	return &Workspace{workers: workers, ctx: NewContext()}
}

// Context returns the workspace's underlying reusable execution context.
func (ws *Workspace) Context() *Context { return ws.ctx }

// Multiply computes C = A·B with the hash algorithm (plus-times), reusing
// the workspace's scratch. Options semantics match spgemm.Multiply with
// Algorithm fixed to AlgHash; Mask and Semiring are not supported here (use
// spgemm.Multiply for those).
func (ws *Workspace) Multiply(a, b *matrix.CSR, unsorted bool) (*matrix.CSR, error) {
	return Multiply(a, b, &Options{
		Algorithm: AlgHash,
		Workers:   ws.workers,
		Unsorted:  unsorted,
		Context:   ws.ctx,
	})
}
