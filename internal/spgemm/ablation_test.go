package spgemm

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/accum"
	"repro/internal/gen"
	"repro/internal/matrix"
	"repro/internal/sched"
	"repro/internal/semiring"
)

// Correctness of the one-phase ablation variant.
func TestHashOnePhaseMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	for trial := 0; trial < 15; trial++ {
		a, b := randPair(rng, 35, 0.2)
		want := matrix.NaiveMultiply(a, b)
		for _, unsorted := range []bool{false, true} {
			opt := &OptionsG[float64]{Unsorted: unsorted, Workers: 1 + trial%3}
			got, err := hashOnePhase(semiring.PlusTimesF64{}, a, b, opt)
			if err != nil {
				t.Fatal(err)
			}
			if err := got.Validate(); err != nil {
				t.Fatal(err)
			}
			if !matrix.EqualApprox(want, got, 1e-10) {
				t.Fatalf("trial %d unsorted=%v: one-phase hash wrong", trial, unsorted)
			}
			if !unsorted && !got.IsSortedRows() {
				t.Fatal("sorted request produced unsorted rows")
			}
		}
	}
}

func TestHashOnePhaseSemiring(t *testing.T) {
	rng := rand.New(rand.NewSource(132))
	a := matrix.Random(20, 20, 0.3, rng)
	for i := range a.Val {
		a.Val[i] = 1
	}
	got, err := hashOnePhase(semiring.Func{S: semiring.OrAnd()}, a, a, &OptionsG[float64]{})
	if err != nil {
		t.Fatal(err)
	}
	want := matrix.NaiveMultiply(a, a)
	if got.NNZ() != want.NNZ() {
		t.Fatalf("pattern nnz %d, want %d", got.NNZ(), want.NNZ())
	}
	for _, v := range got.Val {
		if v != 1 {
			t.Fatalf("boolean value %v", v)
		}
	}
}

// --- Ablation benchmarks (design choices from DESIGN.md §5) ---------------

var ablFixture struct {
	g500 *matrix.CSR
}

func ablMatrix(b *testing.B) *matrix.CSR {
	b.Helper()
	if ablFixture.g500 == nil {
		rng := rand.New(rand.NewSource(77))
		ablFixture.g500 = gen.RMAT(10, 16, gen.G500Params, rng)
	}
	return ablFixture.g500
}

// BenchmarkAblationPhases: two-phase (symbolic+numeric, exact allocation)
// vs one-phase (upper-bound temp buffers) hash SpGEMM.
func BenchmarkAblationPhases(b *testing.B) {
	a := ablMatrix(b)
	b.Run("two-phase", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := hashMultiply(semiring.PlusTimesF64{}, a, a, &OptionsG[float64]{}, false); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("one-phase", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := hashOnePhase(semiring.PlusTimesF64{}, a, a, &OptionsG[float64]{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationSchedHash: the paper's balanced schedule vs plain
// static/dynamic/guided for the two-phase hash driver.
func BenchmarkAblationSchedHash(b *testing.B) {
	a := ablMatrix(b)
	for _, s := range []sched.Schedule{sched.Balanced, sched.Static, sched.Dynamic, sched.Guided} {
		b.Run(s.String(), func(b *testing.B) {
			cfg := twoPhaseConfig[float64]{
				schedule: s,
				grain:    16,
				factory: func(ctx *ContextG[float64], w int, bound int64) rowAcc[float64] {
					return accum.NewHashTable(bound)
				},
			}
			for i := 0; i < b.N; i++ {
				if _, err := twoPhase(semiring.PlusTimesF64{}, a, a, &OptionsG[float64]{}, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationIKJ: the paper's Section 2 claim that the IKJ method is
// "only competitive when flop ≥ n²". A dense-ish small matrix (flop ≫ n²)
// vs a hypersparse one (flop ≪ n²).
func BenchmarkAblationIKJ(b *testing.B) {
	rng := rand.New(rand.NewSource(78))
	dense := matrix.Random(256, 256, 0.25, rng)          // flop ≈ 256·64² ≫ n²
	hyper := matrix.RandomWithDegree(4096, 4096, 2, rng) // flop ≈ 4·4096 ≪ n²
	for _, tc := range []struct {
		name string
		m    *matrix.CSR
	}{{"flop>>n2", dense}, {"flop<<n2", hyper}} {
		for _, alg := range []Algorithm{AlgIKJ, AlgHash} {
			b.Run(fmt.Sprintf("%s/%v", tc.name, alg), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := Multiply(tc.m, tc.m, &Options{Algorithm: alg}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkAblationSortSkip: the Section 5.4.4 design point in isolation —
// identical input, sorted vs unsorted extraction.
func BenchmarkAblationSortSkip(b *testing.B) {
	a := ablMatrix(b)
	for _, unsorted := range []bool{false, true} {
		b.Run(fmt.Sprintf("unsorted=%v", unsorted), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := hashMultiply(semiring.PlusTimesF64{}, a, a, &OptionsG[float64]{Unsorted: unsorted}, false); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
