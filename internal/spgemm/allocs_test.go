package spgemm

import (
	"math/rand"
	"testing"

	"repro/internal/accum"
	"repro/internal/gen"
	"repro/internal/mempool"
	"repro/internal/obs"
)

// These tests pin the steady-state allocation behavior the hot paths are
// built around: once scratch state has reached its high-water mark, the
// per-row and per-call numeric work must not touch the heap. A regression
// here is exactly the class of bug the hotalloc analyzer and the escape
// budget guard against at the source level; this is the runtime check.

// requireZeroAllocs runs f once to warm high-water marks, then asserts zero
// allocations per run.
func requireZeroAllocs(t *testing.T, name string, f func()) {
	t.Helper()
	f() // reach steady state
	if n := testing.AllocsPerRun(20, f); n != 0 {
		t.Errorf("%s: %v allocs/op in steady state, want 0", name, n)
	}
}

func TestSteadyStateZeroAllocs(t *testing.T) {
	if obs.Active() != nil {
		t.Skip("tracing enabled; allocation pinning requires the disabled-obs configuration")
	}

	t.Run("HashTableCycle", func(t *testing.T) {
		h := accum.NewHashTable(256)
		cols := make([]int32, 256)
		vals := make([]float64, 256)
		requireZeroAllocs(t, "hash upsert/extract", func() {
			h.Reset()
			for k := int32(0); k < 200; k++ {
				slot, fresh := h.Upsert(k * 7 % 251)
				if fresh {
					*slot = float64(k)
				} else {
					*slot += float64(k)
				}
			}
			h.ExtractSorted(cols, vals)
		})
	})

	// The generic instantiations must hit the same zero-alloc steady state
	// as the float64 alias: Upsert hands out a pointer into the table's
	// value array, so no boxing and no per-operation escapes.
	t.Run("HashTableCycleGenericF32", func(t *testing.T) {
		h := accum.NewHashTableG[float32](256)
		cols := make([]int32, 256)
		vals := make([]float32, 256)
		requireZeroAllocs(t, "generic hash upsert/extract", func() {
			h.Reset()
			for k := int32(0); k < 200; k++ {
				slot, fresh := h.Upsert(k * 7 % 251)
				if fresh {
					*slot = float32(k)
				} else {
					*slot += float32(k)
				}
			}
			h.ExtractSorted(cols, vals)
		})
	})

	t.Run("HashTableCycleGenericBool", func(t *testing.T) {
		h := accum.NewHashTableG[bool](256)
		cols := make([]int32, 256)
		vals := make([]bool, 256)
		requireZeroAllocs(t, "bool hash upsert/extract", func() {
			h.Reset()
			for k := int32(0); k < 200; k++ {
				slot, _ := h.Upsert(k * 7 % 251)
				*slot = true
			}
			h.ExtractSorted(cols, vals)
		})
	})

	t.Run("MergeHeapCycle", func(t *testing.T) {
		h := accum.NewMergeHeap(64)
		requireZeroAllocs(t, "heap push/pop", func() {
			h.Reset()
			for k := 0; k < 64; k++ {
				h.Push(int32(97-k), float64(k), 0, 1)
			}
			for h.Len() > 0 {
				h.PopMin()
			}
		})
	})

	t.Run("ScratchEnsureAtHighWater", func(t *testing.T) {
		var s mempool.Scratch
		requireZeroAllocs(t, "Ensure*", func() {
			s.EnsureInt32A(512)
			s.EnsureInt64A(512)
			s.EnsureFloat64(512)
		})
	})

	t.Run("AcquireReleaseCycle", func(t *testing.T) {
		// Warm the free list so the cycle recycles instead of allocating.
		warm := mempool.Acquire()
		warm.EnsureInt64A(1024)
		mempool.Release(warm)
		requireZeroAllocs(t, "Acquire/Release", func() {
			s := mempool.Acquire()
			buf := s.EnsureInt64A(1024)
			buf[0] = 1
			mempool.Release(s)
		})
	})

	t.Run("DisabledStatsPhaseTimer", func(t *testing.T) {
		// With Stats == nil the phase timer must cost nothing.
		pt := startPhases(nil, 1)
		requireZeroAllocs(t, "phaseTimer", func() {
			pt.tick(PhaseSymbolic)
			pt.tick(PhaseNumeric)
			pt.finish()
		})
	})
}

// TestContextReuseSteadyAllocs pins the per-call allocation count of a
// Context-reused Multiply: after warmup the only allocations left are the
// output matrix's three arrays plus the result header — per-row numeric
// state must come from the Context's cached tables.
func TestContextReuseSteadyAllocs(t *testing.T) {
	if obs.Active() != nil {
		t.Skip("tracing enabled")
	}
	rng := rand.New(rand.NewSource(7))
	a := gen.ER(8, 8, rng) // 256×256, ~8 nnz/row: real per-row numeric work
	for _, alg := range []Algorithm{AlgHash, AlgHashVec, AlgHeap, AlgTiled} {
		t.Run(alg.String(), func(t *testing.T) {
			// Forced tiny tiles so AlgTiled's split + heavy-unit + stitch
			// machinery runs every call (ignored by the other algorithms).
			opt := &Options{Algorithm: alg, Workers: 1, Context: NewContext(),
				TileCols: 64, TileHeavyFlop: 16}
			run := func() {
				if _, err := Multiply(a, a, opt); err != nil {
					t.Fatal(err)
				}
			}
			run() // warm the context's tables and partitions
			allocs := testing.AllocsPerRun(10, run)
			// Output CSR: RowPtr + ColIdx + Val + header, plus minor
			// per-call bookkeeping. The bound is deliberately tight: the
			// seed measured 4-8 depending on algorithm; growth past 16
			// means per-row state stopped being reused.
			if allocs > 16 {
				t.Errorf("Multiply with Context: %v allocs/op, want <= 16 (output-only)", allocs)
			}
		})
	}
}
