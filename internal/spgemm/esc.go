package spgemm

import (
	"repro/internal/matrix"
)

// escMultiply implements the ESC (expansion, sorting, compression) SpGEMM of
// Dalton, Olson and Bell (ACM TOMS 2015, the paper's reference [10]): every
// intermediate product is materialized into a per-row triple buffer
// (expansion), the buffer is sorted by column (sorting), and adjacent equal
// columns are summed (compression). ESC was designed for GPUs, where the
// sort maps onto radix-sort primitives; on CPUs its O(flop·log flop) sort
// makes it a lower bound illustration of why accumulator-based formulations
// win — exactly the framing of the paper's Section 2.
func escMultiply(a, b *matrix.CSR, opt *Options) (*matrix.CSR, error) {
	workers := opt.workers()
	if workers > a.Rows && a.Rows > 0 {
		workers = a.Rows
	}
	if workers < 1 {
		workers = 1
	}
	ctx := opt.ctx()
	ctx.ensureWorkers(workers)
	pt := startPhases(opt.Stats, workers)
	flopRow := ctx.perRowFlop(a, b)
	offsets := ctx.partition(flopRow, workers, workers)
	pt.tick(PhasePartition)
	sr := opt.Semiring

	bufCols := make([][]int32, workers)
	bufVals := make([][]float64, workers)
	rowNnz := ctx.rowNnzBuf(a.Rows)
	rowOffset := make([]int64, a.Rows)

	ctx.runWorkers("numeric", workers, func(w int) {
		lo, hi := offsets[w], offsets[w+1]
		if lo >= hi {
			return
		}
		var maxFlop int64
		for i := lo; i < hi; i++ {
			if flopRow[i] > maxFlop {
				maxFlop = flopRow[i]
			}
		}
		s := ctx.workerScratch(w)
		expCols := s.EnsureInt32A(int(maxFlop))
		expVals := s.EnsureFloat64(int(maxFlop))
		for i := lo; i < hi; i++ {
			// Expansion.
			var n int64
			alo, ahi := a.RowPtr[i], a.RowPtr[i+1]
			for p := alo; p < ahi; p++ {
				k := a.ColIdx[p]
				av := a.Val[p]
				blo, bhi := b.RowPtr[k], b.RowPtr[k+1]
				if sr == nil {
					for q := blo; q < bhi; q++ {
						expCols[n] = b.ColIdx[q]
						expVals[n] = av * b.Val[q]
						n++
					}
				} else {
					for q := blo; q < bhi; q++ {
						expCols[n] = b.ColIdx[q]
						expVals[n] = sr.Mul(av, b.Val[q])
						n++
					}
				}
			}
			// Sorting.
			sortInt32Float64(expCols[:n], expVals[:n])
			// Compression.
			rowOffset[i] = int64(len(bufCols[w]))
			var out int64
			for p := int64(0); p < n; {
				col := expCols[p]
				v := expVals[p]
				p++
				for p < n && expCols[p] == col {
					if sr == nil {
						v += expVals[p]
					} else {
						v = sr.Add(v, expVals[p])
					}
					p++
				}
				bufCols[w] = append(bufCols[w], col)
				bufVals[w] = append(bufVals[w], v)
				out++
			}
			rowNnz[i] = out
		}
		if ws := pt.worker(w); ws != nil {
			ws.Rows = int64(hi - lo)
			ws.Flop = rangeFlop(flopRow, lo, hi)
		}
	})
	pt.tick(PhaseNumeric)

	rowPtr := ctx.prefixSum(rowNnz, nil, workers)
	c := outputShell(a.Rows, b.Cols, rowPtr, true) // compression leaves rows sorted
	pt.tick(PhaseAlloc)
	ctx.runWorkers("assemble", workers, func(w int) {
		lo, hi := offsets[w], offsets[w+1]
		for i := lo; i < hi; i++ {
			off := rowOffset[i]
			n := rowNnz[i]
			copy(c.ColIdx[rowPtr[i]:rowPtr[i]+n], bufCols[w][off:off+n])
			copy(c.Val[rowPtr[i]:rowPtr[i]+n], bufVals[w][off:off+n])
		}
	})
	pt.tick(PhaseAssemble)
	pt.finish()
	return c, nil
}

// sortInt32Float64 sorts cols ascending carrying vals, same contract as
// accum's sortPairs but local to avoid exporting that helper; quicksort with
// median-of-three and insertion-sort base case.
//
//spgemm:hotpath
func sortInt32Float64(cols []int32, vals []float64) {
	for len(cols) > 24 {
		n := len(cols)
		m := n / 2
		if cols[m] < cols[0] {
			cols[m], cols[0] = cols[0], cols[m]
			vals[m], vals[0] = vals[0], vals[m]
		}
		if cols[n-1] < cols[0] {
			cols[n-1], cols[0] = cols[0], cols[n-1]
			vals[n-1], vals[0] = vals[0], vals[n-1]
		}
		if cols[n-1] < cols[m] {
			cols[n-1], cols[m] = cols[m], cols[n-1]
			vals[n-1], vals[m] = vals[m], vals[n-1]
		}
		pivot := cols[m]
		i, j := 0, n-1
		for i <= j {
			for cols[i] < pivot {
				i++
			}
			for cols[j] > pivot {
				j--
			}
			if i <= j {
				cols[i], cols[j] = cols[j], cols[i]
				vals[i], vals[j] = vals[j], vals[i]
				i++
				j--
			}
		}
		if j+1 < n-i {
			sortInt32Float64(cols[:j+1], vals[:j+1])
			cols, vals = cols[i:], vals[i:]
		} else {
			sortInt32Float64(cols[i:], vals[i:])
			cols, vals = cols[:j+1], vals[:j+1]
		}
	}
	for i := 1; i < len(cols); i++ {
		c, v := cols[i], vals[i]
		j := i - 1
		for j >= 0 && cols[j] > c {
			cols[j+1] = cols[j]
			vals[j+1] = vals[j]
			j--
		}
		cols[j+1] = c
		vals[j+1] = v
	}
}
