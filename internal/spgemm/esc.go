package spgemm

import (
	"repro/internal/accum"
	"repro/internal/matrix"
	"repro/internal/semiring"
)

// escMultiply implements the ESC (expansion, sorting, compression) SpGEMM of
// Dalton, Olson and Bell (ACM TOMS 2015, the paper's reference [10]): every
// intermediate product is materialized into a per-row triple buffer
// (expansion), the buffer is sorted by column (sorting), and adjacent equal
// columns are summed (compression). ESC was designed for GPUs, where the
// sort maps onto radix-sort primitives; on CPUs its O(flop·log flop) sort
// makes it a lower bound illustration of why accumulator-based formulations
// win — exactly the framing of the paper's Section 2.
func escMultiply[V semiring.Value, R semiring.Ring[V]](ring R, a, b *matrix.CSRG[V], opt *OptionsG[V]) (*matrix.CSRG[V], error) {
	workers := opt.workers()
	if workers > a.Rows && a.Rows > 0 {
		workers = a.Rows
	}
	if workers < 1 {
		workers = 1
	}
	ctx := opt.ctx()
	ctx.ensureWorkers(workers)
	pt := startPhases(opt.Stats, workers)
	flopRow := ctx.perRowFlop(a, b)
	offsets := ctx.partition(flopRow, workers, workers)
	pt.tick(PhasePartition)

	bufCols := make([][]int32, workers)
	bufVals := make([][]V, workers)
	rowNnz := ctx.rowNnzBuf(a.Rows)
	rowOffset := make([]int64, a.Rows)

	ctx.runWorkers("numeric", workers, func(w int) {
		lo, hi := offsets[w], offsets[w+1]
		if lo >= hi {
			return
		}
		var maxFlop int64
		for i := lo; i < hi; i++ {
			if flopRow[i] > maxFlop {
				maxFlop = flopRow[i]
			}
		}
		s := ctx.workerScratch(w)
		expCols := s.EnsureInt32A(int(maxFlop))
		expVals := ctx.valScratchA(w, int(maxFlop))
		for i := lo; i < hi; i++ {
			// Expansion.
			var n int64
			alo, ahi := a.RowPtr[i], a.RowPtr[i+1]
			for p := alo; p < ahi; p++ {
				k := a.ColIdx[p]
				av := a.Val[p]
				blo, bhi := b.RowPtr[k], b.RowPtr[k+1]
				for q := blo; q < bhi; q++ {
					expCols[n] = b.ColIdx[q]
					expVals[n] = ring.Mul(av, b.Val[q])
					n++
				}
			}
			// Sorting.
			accum.SortPairs(expCols[:n], expVals[:n])
			// Compression.
			rowOffset[i] = int64(len(bufCols[w]))
			var out int64
			for p := int64(0); p < n; {
				col := expCols[p]
				v := expVals[p]
				p++
				for p < n && expCols[p] == col {
					v = ring.Add(v, expVals[p])
					p++
				}
				bufCols[w] = append(bufCols[w], col)
				bufVals[w] = append(bufVals[w], v)
				out++
			}
			rowNnz[i] = out
		}
		if ws := pt.worker(w); ws != nil {
			ws.Rows = int64(hi - lo)
			ws.Flop = rangeFlop(flopRow, lo, hi)
		}
	})
	pt.tick(PhaseNumeric)

	rowPtr := ctx.prefixSum(rowNnz, nil, workers)
	c := outputShell[V](a.Rows, b.Cols, rowPtr, true) // compression leaves rows sorted
	pt.tick(PhaseAlloc)
	ctx.runWorkers("assemble", workers, func(w int) {
		lo, hi := offsets[w], offsets[w+1]
		for i := lo; i < hi; i++ {
			off := rowOffset[i]
			n := rowNnz[i]
			copy(c.ColIdx[rowPtr[i]:rowPtr[i]+n], bufCols[w][off:off+n])
			copy(c.Val[rowPtr[i]:rowPtr[i]+n], bufVals[w][off:off+n])
		}
	})
	pt.tick(PhaseAssemble)
	pt.finish()
	return c, nil
}
