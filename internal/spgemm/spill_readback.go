//go:build !unix

package spgemm

import (
	"fmt"
	"io"
	"os"
)

// mapSpillFile on platforms without mmap reads the spill file back into the
// heap. Correctness is preserved; the resident-memory bound is not — the
// out-of-core guarantee of SpillSink is unix-only.
func mapSpillFile(f *os.File, size int64) ([]byte, error) {
	data := make([]byte, size)
	if _, err := f.ReadAt(data, 0); err != nil && err != io.EOF {
		return nil, fmt.Errorf("spgemm: spill readback: %w", err)
	}
	return data, nil
}

func unmapSpillFile([]byte) error { return nil }
