package spgemm

import (
	"repro/internal/matrix"
	"repro/internal/semiring"
)

// Specialized monomorphized drivers for Hash and HashVector SpGEMM.
//
// These duplicate the control flow of the generic twoPhase driver with the
// accumulator as a concrete type, so the symbolic insert and numeric
// accumulate in the innermost loop compile to direct calls. The duplication
// is deliberate: Hash/HashVector are the paper's contribution and their
// measured position relative to the hand-written heap driver (which has no
// interface in its inner loop either) is the headline result; routing them
// through an interface would tax exactly the algorithms the paper optimizes.
//
// Since the drivers are generic over the ring type, the same specialized
// code path serves every semiring, and the historic plus-times-only
// restriction (with a func-pointer slow path for everything else) is gone.
// One caveat the inline gate (spgemm-lint -mode=inline) documents: generics
// alone do NOT devirtualize the ring — Go's shape stenciling routes
// ring.Add/ring.Mul through a runtime dictionary, an indirect call per
// product. The numeric workers therefore test once, outside the row loop,
// for the float64 plus-times flagship and route whole rows through the
// hand-monomorphized loops in ringfast.go; every other ring stays on the
// dictionary path.
//
// All transient state (flop counts, partition, row sizes, hash tables) lives
// in the call's Context, so iterative callers that pass Options.Context reach
// a steady state where only the output matrix is allocated.

// hashFast is the unmasked Hash SpGEMM over an arbitrary ring.
func hashFast[V semiring.Value, R semiring.Ring[V]](ring R, a, b *matrix.CSRG[V], opt *OptionsG[V]) (*matrix.CSRG[V], error) {
	workers := opt.workers()
	if workers > a.Rows && a.Rows > 0 {
		workers = a.Rows
	}
	if workers < 1 {
		workers = 1
	}
	ctx := opt.ctx()
	ctx.ensureWorkers(workers)
	pt := startPhases(opt.Stats, workers)
	flopRow := ctx.perRowFlop(a, b)
	offsets := ctx.partition(flopRow, workers, workers)
	pt.tick(PhasePartition)
	rowNnz := ctx.rowNnzBuf(a.Rows)

	// Symbolic phase.
	ctx.runWorkers("symbolic", workers, func(w int) {
		lo, hi := offsets[w], offsets[w+1]
		if lo >= hi {
			return
		}
		bound := int64(0)
		for i := lo; i < hi; i++ {
			if flopRow[i] > bound {
				bound = flopRow[i]
			}
		}
		table := ctx.hashTable(w, capBound(bound, b.Cols))
		for i := lo; i < hi; i++ {
			table.Reset()
			alo, ahi := a.RowPtr[i], a.RowPtr[i+1]
			for p := alo; p < ahi; p++ {
				k := a.ColIdx[p]
				blo, bhi := b.RowPtr[k], b.RowPtr[k+1]
				for q := blo; q < bhi; q++ {
					table.InsertSymbolic(b.ColIdx[q])
				}
			}
			rowNnz[i] = int64(table.Len())
		}
	})
	pt.tick(PhaseSymbolic)

	rowPtr := ctx.prefixSum(rowNnz, nil, workers)
	c := outputShell[V](a.Rows, b.Cols, rowPtr, !opt.Unsorted)
	pt.tick(PhaseAlloc)

	// Numeric phase.
	ctx.runWorkers("numeric", workers, func(w int) {
		lo, hi := offsets[w], offsets[w+1]
		if lo >= hi {
			return
		}
		table := ctx.hash[w]
		fa, fb, ftab, fastF64 := ptF64Hash(ring, a, b, table)
		for i := lo; i < hi; i++ {
			table.Reset()
			if fastF64 {
				hashRowNumericF64(ftab, fa, fb, i)
			} else {
				alo, ahi := a.RowPtr[i], a.RowPtr[i+1]
				for p := alo; p < ahi; p++ {
					k := a.ColIdx[p]
					av := a.Val[p]
					blo, bhi := b.RowPtr[k], b.RowPtr[k+1]
					for q := blo; q < bhi; q++ {
						prod := ring.Mul(av, b.Val[q])
						slot, fresh := table.Upsert(b.ColIdx[q])
						if fresh {
							*slot = prod
						} else {
							*slot = ring.Add(*slot, prod)
						}
					}
				}
			}
			start := c.RowPtr[i]
			cols := c.ColIdx[start : start+rowNnz[i]]
			vals := c.Val[start : start+rowNnz[i]]
			if opt.Unsorted {
				table.ExtractUnsorted(cols, vals)
			} else {
				table.ExtractSorted(cols, vals)
			}
		}
		if ws := pt.worker(w); ws != nil {
			ws.Rows = int64(hi - lo)
			ws.Flop = rangeFlop(flopRow, lo, hi)
			ws.HashLookups = table.Lookups()
			ws.HashProbes = table.Probes()
		}
	})
	pt.tick(PhaseNumeric)
	pt.finish()
	return c, nil
}

// hashVecFast is the unmasked HashVector SpGEMM over an arbitrary ring.
func hashVecFast[V semiring.Value, R semiring.Ring[V]](ring R, a, b *matrix.CSRG[V], opt *OptionsG[V]) (*matrix.CSRG[V], error) {
	workers := opt.workers()
	if workers > a.Rows && a.Rows > 0 {
		workers = a.Rows
	}
	if workers < 1 {
		workers = 1
	}
	ctx := opt.ctx()
	ctx.ensureWorkers(workers)
	pt := startPhases(opt.Stats, workers)
	flopRow := ctx.perRowFlop(a, b)
	offsets := ctx.partition(flopRow, workers, workers)
	pt.tick(PhasePartition)
	rowNnz := ctx.rowNnzBuf(a.Rows)

	ctx.runWorkers("symbolic", workers, func(w int) {
		lo, hi := offsets[w], offsets[w+1]
		if lo >= hi {
			return
		}
		bound := int64(0)
		for i := lo; i < hi; i++ {
			if flopRow[i] > bound {
				bound = flopRow[i]
			}
		}
		table := ctx.hashVecTable(w, capBound(bound, b.Cols))
		for i := lo; i < hi; i++ {
			table.Reset()
			alo, ahi := a.RowPtr[i], a.RowPtr[i+1]
			for p := alo; p < ahi; p++ {
				k := a.ColIdx[p]
				blo, bhi := b.RowPtr[k], b.RowPtr[k+1]
				for q := blo; q < bhi; q++ {
					table.InsertSymbolic(b.ColIdx[q])
				}
			}
			rowNnz[i] = int64(table.Len())
		}
	})
	pt.tick(PhaseSymbolic)

	rowPtr := ctx.prefixSum(rowNnz, nil, workers)
	c := outputShell[V](a.Rows, b.Cols, rowPtr, !opt.Unsorted)
	pt.tick(PhaseAlloc)

	ctx.runWorkers("numeric", workers, func(w int) {
		lo, hi := offsets[w], offsets[w+1]
		if lo >= hi {
			return
		}
		table := ctx.hashVec[w]
		for i := lo; i < hi; i++ {
			table.Reset()
			alo, ahi := a.RowPtr[i], a.RowPtr[i+1]
			for p := alo; p < ahi; p++ {
				k := a.ColIdx[p]
				av := a.Val[p]
				blo, bhi := b.RowPtr[k], b.RowPtr[k+1]
				for q := blo; q < bhi; q++ {
					prod := ring.Mul(av, b.Val[q])
					slot, fresh := table.Upsert(b.ColIdx[q])
					if fresh {
						*slot = prod
					} else {
						*slot = ring.Add(*slot, prod)
					}
				}
			}
			start := c.RowPtr[i]
			cols := c.ColIdx[start : start+rowNnz[i]]
			vals := c.Val[start : start+rowNnz[i]]
			if opt.Unsorted {
				table.ExtractUnsorted(cols, vals)
			} else {
				table.ExtractSorted(cols, vals)
			}
		}
		if ws := pt.worker(w); ws != nil {
			ws.Rows = int64(hi - lo)
			ws.Flop = rangeFlop(flopRow, lo, hi)
			ws.HashLookups = table.Lookups()
			ws.HashProbes = table.Probes()
		}
	})
	pt.tick(PhaseNumeric)
	pt.finish()
	return c, nil
}
