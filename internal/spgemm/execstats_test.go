package spgemm

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/matrix"
)

// statsAlgorithms is every algorithm the breakdown instrumentation covers.
var statsAlgorithms = []Algorithm{
	AlgHash, AlgHashVec, AlgHeap, AlgSPA, AlgMKL, AlgMKLInspector,
	AlgKokkos, AlgMerge, AlgIKJ, AlgBlockedSPA, AlgESC,
}

// TestExecStatsPhaseSumMatchesTotal is the tentpole acceptance criterion:
// phases are timed back-to-back, so their sum must account for the measured
// total within 5% (plus a small absolute floor for clock granularity on the
// cheapest algorithms).
func TestExecStatsPhaseSumMatchesTotal(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := gen.ER(10, 8, rng)
	for _, alg := range statsAlgorithms {
		var st ExecStats
		if _, err := Multiply(g, g, &Options{Algorithm: alg, Stats: &st}); err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if st.Total <= 0 {
			t.Fatalf("%v: Total = %v, want > 0", alg, st.Total)
		}
		diff := st.Total - st.PhaseSum()
		if diff < 0 {
			diff = -diff
		}
		if float64(diff) > 0.05*float64(st.Total)+float64(200_000) { // 0.2ms floor
			t.Errorf("%v: PhaseSum %v vs Total %v (diff %v > 5%%)", alg, st.PhaseSum(), st.Total, diff)
		}
		if st.Algorithm != alg {
			t.Errorf("%v: Stats.Algorithm = %v", alg, st.Algorithm)
		}
	}
}

// TestExecStatsPhaseSpans pins the interval reconstruction the multiply
// server's request traces are built from: spans are back-to-back, in phase
// order, cover exactly PhaseSum(), and stay inside the Total window.
func TestExecStatsPhaseSpans(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := gen.ER(10, 8, rng)
	for _, alg := range statsAlgorithms {
		var st ExecStats
		if _, err := Multiply(g, g, &Options{Algorithm: alg, Stats: &st}); err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		spans := st.PhaseSpans()
		if len(spans) == 0 {
			t.Fatalf("%v: no phase spans", alg)
		}
		var end, sum int64
		last := Phase(-1)
		for _, sp := range spans {
			if sp.Phase <= last {
				t.Errorf("%v: spans out of phase order: %v after %v", alg, sp.Phase, last)
			}
			last = sp.Phase
			if int64(sp.Offset) != end {
				t.Errorf("%v: span %v starts at %v, want back-to-back at %v", alg, sp.Phase, sp.Offset, end)
			}
			if sp.Dur <= 0 {
				t.Errorf("%v: span %v has non-positive duration %v", alg, sp.Phase, sp.Dur)
			}
			end = int64(sp.Offset + sp.Dur)
			sum += int64(sp.Dur)
		}
		if sum != int64(st.PhaseSum()) {
			t.Errorf("%v: span sum %v != PhaseSum %v", alg, sum, st.PhaseSum())
		}
	}

	// Synthetic check with gaps: phases the kernel never ran are skipped but
	// offsets still accumulate only executed time.
	var st ExecStats
	st.Phases[PhaseSymbolic] = 3
	st.Phases[PhaseNumeric] = 5
	spans := st.PhaseSpans()
	if len(spans) != 2 || spans[0].Phase != PhaseSymbolic || spans[0].Offset != 0 ||
		spans[1].Phase != PhaseNumeric || spans[1].Offset != 3 || spans[1].Dur != 5 {
		t.Fatalf("synthetic spans wrong: %+v", spans)
	}
}

// TestExecStatsCounters checks the per-worker counters against ground truth:
// rows and flop are exact, and each accumulator family reports its own
// operation counts.
func TestExecStatsCounters(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	g := gen.ER(9, 8, rng)
	totalFlop, _ := Flop(g, g)
	for _, alg := range statsAlgorithms {
		var st ExecStats
		if _, err := Multiply(g, g, &Options{Algorithm: alg, Workers: 4, Stats: &st}); err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		tot := st.TotalWorker()
		if tot.Rows != int64(g.Rows) {
			t.Errorf("%v: worker rows sum to %d, want %d", alg, tot.Rows, g.Rows)
		}
		if tot.Flop != totalFlop {
			t.Errorf("%v: worker flop sums to %d, want %d", alg, tot.Flop, totalFlop)
		}
		switch alg {
		case AlgHash, AlgHashVec:
			if tot.HashLookups < totalFlop {
				// Symbolic + numeric passes each touch every product once.
				t.Errorf("%v: HashLookups = %d, want >= flop %d", alg, tot.HashLookups, totalFlop)
			}
			if cf := st.CollisionFactor(); cf < 1 {
				t.Errorf("%v: collision factor %f < 1", alg, cf)
			}
		case AlgHeap:
			if tot.HeapPushes == 0 {
				t.Errorf("%v: no heap pushes recorded", alg)
			}
		case AlgKokkos:
			// The two-level table counts only level-2 traffic (the L1 CAS
			// loop stays uncounted by design), so lookups == delegations.
			if tot.HashLookups != tot.L2Overflows {
				t.Errorf("%v: HashLookups %d != L2Overflows %d", alg, tot.HashLookups, tot.L2Overflows)
			}
		}
	}
}

// TestExecStatsHeapVariants covers the Figure 9 scheduling variants, which
// take a different driver than the default balanced heap.
func TestExecStatsHeapVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := gen.ER(8, 4, rng)
	for _, v := range []HeapVariant{HeapBalancedParallel, HeapBalancedSingle, HeapStatic, HeapDynamic, HeapGuided} {
		var st ExecStats
		if _, err := Multiply(g, g, &Options{Algorithm: AlgHeap, HeapVariant: v, Workers: 3, Stats: &st}); err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if tot := st.TotalWorker(); tot.Rows != int64(g.Rows) || tot.HeapPushes == 0 {
			t.Errorf("%v: rows=%d pushes=%d", v, tot.Rows, tot.HeapPushes)
		}
	}
}

// TestExecStatsReusedAcrossCalls verifies a Stats struct is reset per call,
// not accumulated, including when the worker count changes.
func TestExecStatsReusedAcrossCalls(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	g := gen.ER(8, 4, rng)
	var st ExecStats
	if _, err := Multiply(g, g, &Options{Algorithm: AlgHash, Workers: 4, Stats: &st}); err != nil {
		t.Fatal(err)
	}
	first := st.TotalWorker()
	if _, err := Multiply(g, g, &Options{Algorithm: AlgHash, Workers: 2, Stats: &st}); err != nil {
		t.Fatal(err)
	}
	if len(st.Workers) != 2 {
		t.Fatalf("Workers len = %d after 2-worker run", len(st.Workers))
	}
	second := st.TotalWorker()
	if second.Rows != first.Rows || second.Flop != first.Flop {
		t.Errorf("stats accumulated across calls: %+v vs %+v", second, first)
	}
}

// TestExecStatsString smoke-tests the breakdown rendering.
func TestExecStatsString(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	g := gen.ER(7, 4, rng)
	var st ExecStats
	if _, err := Multiply(g, g, &Options{Algorithm: AlgHash, Stats: &st}); err != nil {
		t.Fatal(err)
	}
	s := st.String()
	for _, want := range []string{"hash", "total=", "numeric=", "flop="} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
	for p := Phase(0); p <= NumPhases; p++ {
		_ = p.String()
	}
}

// TestExecStatsNilSafe pins the nil-Stats contract: the helpers used on hot
// paths must be inert on nil.
func TestExecStatsNilSafe(t *testing.T) {
	pt := startPhases(nil, 8)
	pt.tick(PhaseNumeric)
	pt.finish()
	if ws := pt.worker(0); ws != nil {
		t.Fatal("worker() on disabled timer returned non-nil")
	}
	var nilStats *ExecStats
	nilStats.addPhase(PhaseAssemble, 1) // must not panic
	if !statsNow(nil).IsZero() {
		t.Fatal("statsNow(nil) read the clock")
	}
	if statsSince(nil, statsNow(nil)) != 0 {
		t.Fatal("statsSince(nil) nonzero")
	}
}

// TestCapBoundDegenerate is the regression for the capBound bug: a
// zero-column output must get a zero bound (the old code returned 1, making
// accumulators allocate for impossible entries).
func TestCapBoundDegenerate(t *testing.T) {
	cases := []struct {
		bound int64
		cols  int
		want  int64
	}{
		{5, 0, 0}, {0, 10, 0}, {-3, 10, 0}, {20, 10, 10}, {7, 10, 7}, {0, 0, 0},
	}
	for _, c := range cases {
		if got := capBound(c.bound, c.cols); got != c.want {
			t.Errorf("capBound(%d, %d) = %d, want %d", c.bound, c.cols, got, c.want)
		}
	}
}

// TestRecommendNeverReturnsSortedOnlyForUnsortedB is the dispatch-bug
// regression (the PR's headline fix): whatever Table 4 says, Recommend must
// not hand an unsorted B to Heap or Merge. The ER scale-10 sorted-output
// request is the original repro — low compression ratio and low degree made
// Table 4 pick Heap, which then rejected the unsorted input.
func TestRecommendNeverReturnsSortedOnlyForUnsortedB(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	er := gen.ER(10, 4, rng)
	erU := gen.Unsorted(er, rng)
	if alg := recommendTable4(er, er, true, UseSquare); alg != AlgHeap {
		t.Skipf("table 4 no longer picks heap for this input (got %v); repro void", alg)
	}
	for _, uc := range []UseCase{UseSquare, UseTallSkinny, UseTriangle} {
		for _, sorted := range []bool{true, false} {
			if alg := Recommend(er, erU, sorted, uc); RequiresSortedInput(alg) {
				t.Errorf("Recommend(sorted=%v, %v) = %v for unsorted B", sorted, uc, alg)
			}
		}
	}
	// The original failure: AlgAuto on unsorted input returned "heap
	// algorithm requires sorted input rows".
	got, err := Multiply(er, erU, &Options{Algorithm: AlgAuto})
	if err != nil {
		t.Fatalf("AlgAuto on unsorted B: %v", err)
	}
	if !matrix.EqualApprox(got, matrix.NaiveMultiply(er, erU), 1e-9) {
		t.Fatal("AlgAuto fallback produced wrong result")
	}
}

// TestUseCasePlumbing verifies Multiply consults Options.UseCase (it used to
// hardcode UseSquare): for each use case the algorithm recorded in Stats
// matches a direct Recommend call with that use case.
func TestUseCasePlumbing(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := gen.RMAT(8, 8, gen.G500Params, rng)
	ts := gen.TallSkinny(g, 3, rng)
	pairs := []struct {
		uc   UseCase
		a, b *matrix.CSR
	}{
		{UseSquare, g, g},
		{UseTallSkinny, g, ts},
		{UseTriangle, g, g},
	}
	for _, p := range pairs {
		var st ExecStats
		got, err := Multiply(p.a, p.b, &Options{Algorithm: AlgAuto, UseCase: p.uc, Stats: &st})
		if err != nil {
			t.Fatalf("%v: %v", p.uc, err)
		}
		want := Recommend(p.a, p.b, true, p.uc)
		if st.Algorithm != want {
			t.Errorf("%v: dispatched %v, Recommend says %v", p.uc, st.Algorithm, want)
		}
		if !matrix.EqualApprox(got, matrix.NaiveMultiply(p.a, p.b), 1e-9) {
			t.Errorf("%v: wrong result", p.uc)
		}
	}
}

// BenchmarkStatsOverhead quantifies the disabled-stats cost for the PR's
// <2% acceptance criterion: run with
//
//	go test -bench BenchmarkStatsOverhead -benchtime 3s ./internal/spgemm
//
// and compare the nil and enabled lines.
func BenchmarkStatsOverhead(b *testing.B) {
	rng := rand.New(rand.NewSource(18))
	g := gen.ER(12, 8, rng)
	for _, cfg := range []struct {
		name  string
		stats *ExecStats
	}{
		{"nil", nil},
		{"enabled", &ExecStats{}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			opt := &Options{Algorithm: AlgHash, Stats: cfg.stats}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Multiply(g, g, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
