package spgemm

import (
	"math"
	"math/rand"
	"os"
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/matrix"
)

// bitIdentical reports whether two products are byte-for-byte the same
// (structure, values, sortedness flag).
func bitIdentical(a, b *matrix.CSR) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols || a.Sorted != b.Sorted || a.NNZ() != b.NNZ() {
		return false
	}
	for i := range a.RowPtr {
		if a.RowPtr[i] != b.RowPtr[i] {
			return false
		}
	}
	for k := range a.ColIdx {
		if a.ColIdx[k] != b.ColIdx[k] || a.Val[k] != b.Val[k] {
			return false
		}
	}
	return true
}

// TestShardedBitIdenticalToHash is the engine's acceptance criterion: sorted
// sharded output must be bit-identical to AlgHash on the same inputs, across
// stripe counts (including auto), worker counts, and with the column-split
// path forced at toy scale via tiny tile geometry.
func TestShardedBitIdenticalToHash(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	inputs := []struct {
		name string
		a, b *matrix.CSR
	}{
		{"g500", gen.RMAT(9, 8, gen.G500Params, rng), gen.RMAT(9, 8, gen.G500Params, rng)},
		{"er", gen.ER(8, 6, rng), gen.ER(8, 6, rng)},
		{"tallskinny", gen.RMAT(8, 8, gen.G500Params, rng), matrix.Random(1<<8, 5, 0.4, rng)},
		{"empty", matrix.NewCSR(17, 13), matrix.NewCSR(13, 9)},
	}
	for _, in := range inputs {
		want, err := Multiply(in.a, in.b, &Options{Algorithm: AlgHash})
		if err != nil {
			t.Fatalf("%s: hash: %v", in.name, err)
		}
		for _, stripes := range []int{0, 1, 3, 16} {
			for _, workers := range []int{1, 4} {
				for _, tiny := range []bool{false, true} {
					opt := &Options{Algorithm: AlgSharded, Workers: workers, ShardStripes: stripes}
					if tiny {
						opt.TileCols, opt.TileHeavyFlop = 8, 1
					}
					got, err := Multiply(in.a, in.b, opt)
					if err != nil {
						t.Fatalf("%s stripes=%d workers=%d tiny=%v: %v", in.name, stripes, workers, tiny, err)
					}
					if !bitIdentical(want, got) {
						t.Errorf("%s stripes=%d workers=%d tiny=%v: sharded differs from hash", in.name, stripes, workers, tiny)
					}
				}
			}
		}
	}
}

// TestShardedUnsortedEquivalent: with unsorted output only the per-row entry
// sets are guaranteed (hash iteration order is capacity-dependent and stripe
// tables size independently), so compare after canonicalizing.
func TestShardedUnsortedEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	a := gen.RMAT(8, 8, gen.G500Params, rng)
	b := gen.RMAT(8, 8, gen.G500Params, rng)
	want, err := Multiply(a, b, &Options{Algorithm: AlgHash, Unsorted: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Multiply(a, b, &Options{Algorithm: AlgSharded, Unsorted: true, ShardStripes: 5, TileCols: 8, TileHeavyFlop: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got.Sorted {
		t.Error("unsorted request produced Sorted output flag")
	}
	ws, gs := want.Clone(), got.Clone()
	ws.SortRows()
	gs.SortRows()
	ws.Sorted, gs.Sorted = true, true
	if !bitIdentical(ws, gs) {
		t.Error("sharded unsorted entry sets differ from hash")
	}
}

// TestShardedUnsortedInputColSplit drives the inexact ColBlock path: B's
// rows unsorted, column split forced.
func TestShardedUnsortedInputColSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	a := gen.RMAT(8, 8, gen.G500Params, rng)
	b := gen.RMAT(8, 8, gen.G500Params, rng)
	b = gen.Unsorted(b, rng)
	want, err := Multiply(a, b, &Options{Algorithm: AlgHash})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Multiply(a, b, &Options{Algorithm: AlgSharded, ShardStripes: 4, TileCols: 8, TileHeavyFlop: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !bitIdentical(want, got) {
		t.Error("sharded over unsorted B differs from hash")
	}
}

// TestShardStripeCountHugeDimensions is the int64-overflow regression for
// the stripe cutter: synthetic flop totals and dimensions past any 32-bit
// intermediate (a scale-20+ product) must produce sane stripe counts, and
// saturation rather than wraparound at the extreme.
func TestShardStripeCountHugeDimensions(t *testing.T) {
	const budget = int64(256) << 20
	// Scale-22-ish: 2^40 flop over 2^22 rows. With 12 bytes per upper-bound
	// entry the byte estimate (~1.3e13) needs ~49k stripes; a 32-bit wrap
	// would collapse this to the worker floor.
	n := shardStripeCount(1<<40, 1<<22, 64, 8, budget)
	if n < 1<<15 || n > 1<<22 {
		t.Errorf("scale-22 stripe count = %d, want ~49k", n)
	}
	// MaxInt64 flop saturates instead of wrapping negative.
	if n := shardStripeCount(math.MaxInt64, 1<<22, 64, 8, budget); n != 1<<22 {
		t.Errorf("saturated count = %d, want row cap %d", n, 1<<22)
	}
	// Negative flop (corrupt header) clamps to the worker floor, never panics.
	if n := shardStripeCount(-5, 1000, 8, 8, budget); n != 8 {
		t.Errorf("negative-flop count = %d, want worker floor 8", n)
	}
	// Zero budget takes the default; tiny products stay at the floor.
	if n := shardStripeCount(1000, 1000, 4, 8, 0); n != 4 {
		t.Errorf("default-budget count = %d, want 4", n)
	}
	// Workers above rows: capped at one stripe per row.
	if n := shardStripeCount(1000, 3, 8, 8, budget); n != 3 {
		t.Errorf("row-capped count = %d, want 3", n)
	}
	// No rows at all.
	if n := shardStripeCount(0, 0, 8, 8, budget); n != 1 {
		t.Errorf("empty count = %d, want 1", n)
	}
	// capBound with a near-MaxInt32 column count must stay int64-clean.
	if got := capBound(1<<40, math.MaxInt32); got != math.MaxInt32 {
		t.Errorf("capBound(2^40, MaxInt32) = %d", got)
	}
}

// TestSpillSinkShardedMatchesHash runs the out-of-core path at toy scale: a
// resident budget far below the output size forces stripes to queue for
// admission, and the mmap-backed result must still match AlgHash exactly.
func TestSpillSinkShardedMatchesHash(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	a := gen.RMAT(9, 8, gen.G500Params, rng)
	b := gen.RMAT(9, 8, gen.G500Params, rng)
	want, err := Multiply(a, b, &Options{Algorithm: AlgHash})
	if err != nil {
		t.Fatal(err)
	}
	outBytes := want.NNZ() * 12
	budget := outBytes / 4
	if budget < 64 {
		budget = 64
	}
	sink := NewSpillSink[float64](t.TempDir(), budget)
	got, err := Multiply(a, b, &Options{Algorithm: AlgSharded, ShardStripes: 16, ShardSink: sink})
	if err != nil {
		t.Fatal(err)
	}
	if !bitIdentical(want, got) {
		t.Error("spilled product differs from hash")
	}
	if peak := sink.PeakResident(); peak > budget {
		t.Errorf("peak resident %d exceeds budget %d", peak, budget)
	}
	if sink.SpilledBytes() < outBytes {
		t.Errorf("spilled %d bytes, want >= %d", sink.SpilledBytes(), outBytes)
	}
	path := sink.f.Name()
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("spill file missing before Close: %v", err)
	}
	if err := sink.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("spill file survives Close")
	}
	if err := sink.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

// TestSpillSinkSingleUse: a sink serves exactly one multiply.
func TestSpillSinkSingleUse(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	a, b := matrix.Random(20, 20, 0.2, rng), matrix.Random(20, 20, 0.2, rng)
	sink := NewSpillSink[float64](t.TempDir(), 1<<20)
	defer sink.Close()
	if _, err := Multiply(a, b, &Options{Algorithm: AlgSharded, ShardSink: sink}); err != nil {
		t.Fatal(err)
	}
	if _, err := Multiply(a, b, &Options{Algorithm: AlgSharded, ShardSink: sink}); err == nil {
		t.Error("second multiply through one SpillSink succeeded")
	}
}

// TestShardedPlanReplay: sharded plans replay numeric-only and stay
// bit-identical to one-shot Multiply across value updates; concurrent
// ExecuteIn on one shared plan with distinct contexts is the server's
// plan-cache contract.
func TestShardedPlanReplay(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	a := gen.RMAT(8, 8, gen.G500Params, rng)
	b := gen.RMAT(8, 8, gen.G500Params, rng)
	opt := &Options{Algorithm: AlgSharded, ShardStripes: 6, TileCols: 8, TileHeavyFlop: 1}
	plan, err := NewPlan(a, b, opt)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		want, err := Multiply(a, b, opt)
		if err != nil {
			t.Fatal(err)
		}
		got, err := plan.Execute()
		if err != nil {
			t.Fatal(err)
		}
		if !bitIdentical(want, got) {
			t.Fatalf("round %d: plan execute differs from multiply", round)
		}
		for i := range b.Val {
			b.Val[i] *= 0.5
		}
	}

	var wg sync.WaitGroup
	results := make([]*matrix.CSR, 4)
	errs := make([]error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g], errs[g] = plan.ExecuteIn(NewContext(), nil)
		}(g)
	}
	wg.Wait()
	for g := 0; g < 4; g++ {
		if errs[g] != nil {
			t.Fatalf("concurrent ExecuteIn %d: %v", g, errs[g])
		}
		if !bitIdentical(results[0], results[g]) {
			t.Fatalf("concurrent ExecuteIn %d differs", g)
		}
	}

	// Structural change must surface staleness.
	if a.NNZ() > 0 {
		a.ColIdx[0] ^= 1
		if _, err := plan.Execute(); err != ErrPlanStale {
			t.Fatalf("structural change: got %v, want ErrPlanStale", err)
		}
	}
}

// TestShardedPlanRejectsSpillSink: plans are reuse-oriented; spilled
// products are single-use.
func TestShardedPlanRejectsSpillSink(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	a, b := matrix.Random(10, 10, 0.3, rng), matrix.Random(10, 10, 0.3, rng)
	sink := NewSpillSink[float64](t.TempDir(), 1<<20)
	defer sink.Close()
	if _, err := NewPlan(a, b, &Options{Algorithm: AlgSharded, ShardSink: sink}); err == nil {
		t.Error("NewPlan accepted a ShardSink")
	}
}

// TestShardedStripeStats: per-stripe counters cover every output row and
// entry, the column-split flag follows the forced geometry, and PhaseSpans
// gains assemble coverage.
func TestShardedStripeStats(t *testing.T) {
	rng := rand.New(rand.NewSource(48))
	a := gen.RMAT(8, 8, gen.G500Params, rng)
	b := gen.RMAT(8, 8, gen.G500Params, rng)
	var st ExecStats
	c, err := Multiply(a, b, &Options{
		Algorithm: AlgSharded, ShardStripes: 5, TileCols: 8, TileHeavyFlop: 1, Stats: &st,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Stripes) == 0 {
		t.Fatal("no stripe stats recorded")
	}
	var nnz, flop int64
	prevHi := 0
	anySplit := false
	for _, s := range st.Stripes {
		if s.Lo != prevHi {
			t.Fatalf("stripe gap: lo=%d after hi=%d", s.Lo, prevHi)
		}
		prevHi = s.Hi
		nnz += s.Nnz
		flop += s.Flop
		anySplit = anySplit || s.ColSplit
		if s.Spilled {
			t.Error("in-RAM sink reported spilled stripes")
		}
	}
	if prevHi != a.Rows {
		t.Fatalf("stripes cover %d rows, want %d", prevHi, a.Rows)
	}
	if nnz != c.NNZ() {
		t.Errorf("stripe nnz sum %d, want %d", nnz, c.NNZ())
	}
	if tw := st.TotalWorker(); tw.Flop != flop {
		t.Errorf("worker flop %d != stripe flop %d", tw.Flop, flop)
	}
	if !anySplit {
		t.Error("forced tiny tile geometry produced no column-split stripes")
	}
	if st.Phases[PhaseAssemble] <= 0 {
		t.Error("sharded run recorded no assemble phase")
	}
	if st.PhaseSum() > st.Total {
		t.Errorf("PhaseSum %v exceeds Total %v", st.PhaseSum(), st.Total)
	}
	if st.String() == "" {
		t.Error("empty stats string")
	}

	// Stats reset on reuse: a hash call through the same ExecStats must
	// clear the stripe breakdown.
	if _, err := Multiply(a, b, &Options{Algorithm: AlgHash, Stats: &st}); err != nil {
		t.Fatal(err)
	}
	if len(st.Stripes) != 0 {
		t.Error("stale stripe stats survive reset")
	}
}

// TestShardedContextReuseSteady: repeated sharded multiplies through one
// Context must keep working as buffers are reused and stripe geometry
// changes shape between calls.
func TestShardedContextReuseSteady(t *testing.T) {
	rng := rand.New(rand.NewSource(49))
	ctx := NewContext()
	for round := 0; round < 4; round++ {
		a, b := randPair(rng, 60, 0.15)
		want, err := Multiply(a, b, &Options{Algorithm: AlgHash})
		if err != nil {
			t.Fatal(err)
		}
		got, err := Multiply(a, b, &Options{
			Algorithm: AlgSharded, Context: ctx, ShardStripes: 1 + round*3, TileCols: 8, TileHeavyFlop: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !bitIdentical(want, got) {
			t.Fatalf("round %d: context-reuse sharded differs from hash", round)
		}
	}
}

// TestShardedAutoRouting: the recipe overrides Table 4 with AlgSharded once
// the estimated output crosses the threshold, and leaves small products
// alone.
func TestShardedAutoRouting(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	a := gen.RMAT(8, 8, gen.G500Params, rng)
	b := gen.RMAT(8, 8, gen.G500Params, rng)
	prev := SetShardedAutoBytes(1) // any nonzero output crosses it
	defer SetShardedAutoBytes(prev)
	if alg := Recommend(a, b, true, UseSquare); alg != AlgSharded {
		t.Errorf("tiny threshold: Recommend = %v, want sharded", alg)
	}
	var st ExecStats
	if _, err := Multiply(a, b, &Options{Stats: &st}); err != nil {
		t.Fatal(err)
	}
	if st.Algorithm != AlgSharded {
		t.Errorf("auto multiply ran %v, want sharded", st.Algorithm)
	}
	SetShardedAutoBytes(1 << 60)
	if alg := Recommend(a, b, true, UseSquare); alg == AlgSharded {
		t.Error("huge threshold still routed to sharded")
	}
	SetShardedAutoBytes(0)
	if alg := Recommend(a, b, true, UseSquare); alg == AlgSharded {
		t.Error("disabled threshold still routed to sharded")
	}
}
