package spgemm

import (
	"fmt"
	"os"
	"sync"
	"unsafe"

	"repro/internal/matrix"
	"repro/internal/semiring"
)

// SpillSink is the out-of-core ShardSink: finished stripes are written to a
// temp-file-backed CSR and re-mapped (read-only) for the merge, so the peak
// resident memory of the *output* is bounded by Budget regardless of how
// large the product is — the row-stripe analogue of the out-of-core path the
// Gao et al. SpGEMM survey (arXiv:2002.11273) describes.
//
// Spill file format (host byte order; the file never leaves the process):
//
//	[ColIdx  int32 × nnz]
//	[padding to an 8-byte boundary]
//	[Val     V     × nnz]
//
// Each stripe's Commit writes its two segments at the exact offsets the
// global row pointer dictates, so stripes may commit in any order and the
// file is complete — with no rewrite pass — once every stripe committed. Row
// pointers stay in memory (O(rows), not budget-accounted); entry storage is
// what out-of-core execution is bounding.
//
// Admission control: Stripe blocks while admitting the stripe's buffer would
// push resident bytes over Budget, and always admits a stripe when nothing
// else is resident, so one stripe larger than the whole budget degrades to
// serial spilling rather than deadlocking. Commit releases the stripe's
// bytes and recycles its buffer.
//
// A SpillSink serves exactly one multiply (Bind errors on reuse). The
// assembled matrix aliases the mapping: it is read-only, and valid only
// until Close, which unmaps it and removes the temp file.
type SpillSink[V semiring.Value] struct {
	dir    string
	budget int64

	mu       sync.Mutex
	cond     *sync.Cond
	resident int64
	peak     int64
	free     []spillBuf[V]
	inFlight map[int]spillBuf[V]

	f      *os.File
	rows   int
	cols   int
	sorted bool
	rowPtr []int64
	valOff int64
	mapped []byte
	result *matrix.CSRG[V]
}

type spillBuf[V semiring.Value] struct {
	cols []int32
	vals []V
	lo   int
	need int64
}

// NewSpillSink returns a sink spilling to a temp file under dir (empty means
// the OS temp directory) with the given resident-bytes budget for stripe
// buffers (<= 0 means defaultShardMemBudget). Close must be called when the
// assembled product is no longer needed.
func NewSpillSink[V semiring.Value](dir string, budget int64) *SpillSink[V] {
	if budget <= 0 {
		budget = defaultShardMemBudget
	}
	k := &SpillSink[V]{dir: dir, budget: budget, inFlight: make(map[int]spillBuf[V])}
	k.cond = sync.NewCond(&k.mu)
	return k
}

// Budget returns the configured resident-bytes budget.
func (k *SpillSink[V]) Budget() int64 { return k.budget }

// PeakResident returns the high-water mark of resident stripe-buffer bytes.
func (k *SpillSink[V]) PeakResident() int64 {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.peak
}

// Spills reports that this sink is out-of-core (see StripeStats.Spilled).
func (k *SpillSink[V]) Spills() bool { return true }

func (k *SpillSink[V]) elemBytes() int64 {
	var zero V
	return int64(unsafe.Sizeof(zero))
}

func (k *SpillSink[V]) Bind(rows, cols int, rowPtr []int64, sorted bool) error {
	if k.f != nil || k.result != nil {
		return fmt.Errorf("spgemm: SpillSink serves one multiply; create a fresh sink")
	}
	f, err := os.CreateTemp(k.dir, "spgemm-spill-*.csr")
	if err != nil {
		return fmt.Errorf("spgemm: spill file: %w", err)
	}
	k.f = f
	k.rows, k.cols, k.sorted = rows, cols, sorted
	k.rowPtr = rowPtr
	nnz := rowPtr[rows]
	k.valOff = (4*nnz + 7) &^ 7
	if err := f.Truncate(k.valOff + k.elemBytes()*nnz); err != nil {
		return fmt.Errorf("spgemm: spill truncate: %w", err)
	}
	return nil
}

func (k *SpillSink[V]) Stripe(s, lo, hi int) ([]int32, []V, error) {
	if k.f == nil {
		return nil, nil, fmt.Errorf("spgemm: SpillSink.Stripe before Bind")
	}
	n := k.rowPtr[hi] - k.rowPtr[lo]
	need := n * (4 + k.elemBytes())
	k.mu.Lock()
	for k.resident > 0 && k.resident+need > k.budget {
		k.cond.Wait()
	}
	k.resident += need
	if k.resident > k.peak {
		k.peak = k.resident
	}
	var buf spillBuf[V]
	for i, fb := range k.free {
		if int64(cap(fb.cols)) >= n {
			buf = fb
			k.free = append(k.free[:i], k.free[i+1:]...)
			break
		}
	}
	if int64(cap(buf.cols)) < n {
		buf = spillBuf[V]{cols: make([]int32, n), vals: make([]V, n)}
	}
	buf.cols, buf.vals = buf.cols[:n], buf.vals[:n]
	buf.lo, buf.need = lo, need
	k.inFlight[s] = buf
	k.mu.Unlock()
	return buf.cols, buf.vals, nil
}

func (k *SpillSink[V]) Commit(s int) error {
	k.mu.Lock()
	buf, ok := k.inFlight[s]
	delete(k.inFlight, s)
	k.mu.Unlock()
	if !ok {
		return fmt.Errorf("spgemm: SpillSink.Commit(%d) without Stripe", s)
	}
	e0 := k.rowPtr[buf.lo]
	var err error
	if len(buf.cols) > 0 {
		if _, werr := k.f.WriteAt(i32Bytes(buf.cols), 4*e0); werr != nil {
			err = fmt.Errorf("spgemm: spill write (cols): %w", werr)
		} else if _, werr := k.f.WriteAt(valBytes(buf.vals), k.valOff+k.elemBytes()*e0); werr != nil {
			err = fmt.Errorf("spgemm: spill write (vals): %w", werr)
		}
	}
	k.mu.Lock()
	k.resident -= buf.need
	k.free = append(k.free, buf)
	k.cond.Broadcast()
	k.mu.Unlock()
	return err
}

func (k *SpillSink[V]) Assemble() (*matrix.CSRG[V], error) {
	if k.f == nil {
		return nil, fmt.Errorf("spgemm: SpillSink.Assemble before Bind")
	}
	k.mu.Lock()
	pending := len(k.inFlight)
	k.free = nil // stripe buffers are done; let them go
	k.mu.Unlock()
	if pending > 0 {
		return nil, fmt.Errorf("spgemm: SpillSink.Assemble with %d uncommitted stripes", pending)
	}
	nnz := k.rowPtr[k.rows]
	c := &matrix.CSRG[V]{
		Rows:   k.rows,
		Cols:   k.cols,
		RowPtr: k.rowPtr,
		ColIdx: []int32{},
		Val:    []V{},
		Sorted: k.sorted,
	}
	if nnz > 0 {
		size := k.valOff + k.elemBytes()*nnz
		data, err := mapSpillFile(k.f, size)
		if err != nil {
			return nil, err
		}
		k.mapped = data
		c.ColIdx = unsafe.Slice((*int32)(unsafe.Pointer(&data[0])), nnz)
		c.Val = unsafe.Slice((*V)(unsafe.Pointer(&data[k.valOff])), nnz)
	}
	k.result = c
	return c, nil
}

// Close unmaps the assembled product (which becomes invalid), closes and
// removes the spill file. Safe to call multiple times.
func (k *SpillSink[V]) Close() error {
	var err error
	if k.mapped != nil {
		err = unmapSpillFile(k.mapped)
		k.mapped = nil
	}
	if k.f != nil {
		name := k.f.Name()
		if cerr := k.f.Close(); err == nil {
			err = cerr
		}
		if rerr := os.Remove(name); err == nil {
			err = rerr
		}
		k.f = nil
	}
	return err
}

// SpilledBytes returns the size of the spill file contents.
func (k *SpillSink[V]) SpilledBytes() int64 {
	if k.f == nil || k.rowPtr == nil {
		return 0
	}
	return k.valOff + k.elemBytes()*k.rowPtr[k.rows]
}

// i32Bytes views an int32 slice as raw bytes (host order).
func i32Bytes(s []int32) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), 4*len(s))
}

// valBytes views a value slice as raw bytes (host order).
func valBytes[V semiring.Value](s []V) []byte {
	if len(s) == 0 {
		return nil
	}
	var zero V
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), int(unsafe.Sizeof(zero))*len(s))
}
