package spgemm

import (
	"repro/internal/accum"
	"repro/internal/matrix"
	"repro/internal/sched"
)

// hashMultiply is Hash SpGEMM (Figure 7) and, with vectorized=true,
// HashVector SpGEMM: two-phase, balanced scheduling, thread-private tables
// sized to each thread's maximum per-row flop.
//
// The common case (plus-times, no mask) runs through the specialized
// concrete-type driver in hashfast.go — the headline algorithm must not pay
// an interface dispatch per intermediate product when the hand-written heap
// driver does not. Masked and semiring multiplications take the generic
// two-phase driver.
func hashMultiply(a, b *matrix.CSR, opt *Options, vectorized bool) (*matrix.CSR, error) {
	if opt.Mask == nil && opt.Semiring == nil {
		if vectorized {
			return hashVecFast(a, b, opt)
		}
		return hashFast(a, b, opt)
	}
	cfg := twoPhaseConfig{
		schedule: sched.Balanced,
		factory: func(ctx *Context, w int, bound int64) rowAcc {
			if vectorized {
				return ctx.hashVecTable(w, bound)
			}
			return ctx.hashTable(w, bound)
		},
	}
	return twoPhase(a, b, opt, cfg)
}

// spaMultiply is Gustavson's algorithm with a dense sparse accumulator:
// every worker owns an O(Cols) dense array with generation-stamped
// occupancy. Balanced scheduling, two-phase for exact allocation.
func spaMultiply(a, b *matrix.CSR, opt *Options) (*matrix.CSR, error) {
	cfg := twoPhaseConfig{
		schedule: sched.Balanced,
		factory: func(ctx *Context, w int, bound int64) rowAcc {
			return accum.NewSPA(b.Cols)
		},
	}
	return twoPhase(a, b, opt, cfg)
}

// kokkosMultiply models KokkosKernels' kkmem: two-level hashmap accumulator
// with dynamic scheduling; unsorted output only (Table 1: "Any/Unsorted").
// A sorted request is honored by sorting rows afterwards, mirroring how a
// user of such a library would have to post-process.
func kokkosMultiply(a, b *matrix.CSR, opt *Options) (*matrix.CSR, error) {
	inner := *opt
	inner.Unsorted = true
	cfg := twoPhaseConfig{
		schedule: sched.Dynamic,
		grain:    64,
		factory: func(ctx *Context, w int, bound int64) rowAcc {
			return accum.NewTwoLevelHash(0)
		},
	}
	c, err := twoPhase(a, b, &inner, cfg)
	if err != nil {
		return nil, err
	}
	if !opt.Unsorted {
		mSortPost.Inc()
		start := statsNow(opt.Stats)
		c.SortRows()
		opt.Stats.addPhase(PhaseAssemble, statsSince(opt.Stats, start))
	}
	return c, nil
}
