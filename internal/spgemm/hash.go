package spgemm

import (
	"repro/internal/accum"
	"repro/internal/matrix"
	"repro/internal/sched"
	"repro/internal/semiring"
)

// hashMultiply is Hash SpGEMM (Figure 7) and, with vectorized=true,
// HashVector SpGEMM: two-phase, balanced scheduling, thread-private tables
// sized to each thread's maximum per-row flop.
//
// The unmasked case runs through the specialized concrete-type driver in
// hashfast.go for every ring — the headline algorithm must not pay an
// interface dispatch per intermediate product when the hand-written heap
// driver does not. Masked multiplications take the generic two-phase driver.
func hashMultiply[V semiring.Value, R semiring.Ring[V]](ring R, a, b *matrix.CSRG[V], opt *OptionsG[V], vectorized bool) (*matrix.CSRG[V], error) {
	if opt.Mask == nil {
		if vectorized {
			return hashVecFast(ring, a, b, opt)
		}
		return hashFast(ring, a, b, opt)
	}
	cfg := twoPhaseConfig[V]{
		schedule: sched.Balanced,
		factory: func(ctx *ContextG[V], w int, bound int64) rowAcc[V] {
			if vectorized {
				return ctx.hashVecTable(w, bound)
			}
			return ctx.hashTable(w, bound)
		},
	}
	return twoPhase(ring, a, b, opt, cfg)
}

// spaMultiply is Gustavson's algorithm with a dense sparse accumulator:
// every worker owns an O(Cols) dense array with generation-stamped
// occupancy. Balanced scheduling, two-phase for exact allocation.
func spaMultiply[V semiring.Value, R semiring.Ring[V]](ring R, a, b *matrix.CSRG[V], opt *OptionsG[V]) (*matrix.CSRG[V], error) {
	cfg := twoPhaseConfig[V]{
		schedule: sched.Balanced,
		factory: func(ctx *ContextG[V], w int, bound int64) rowAcc[V] {
			return accum.NewSPAG[V](b.Cols)
		},
	}
	return twoPhase(ring, a, b, opt, cfg)
}

// kokkosMultiply models KokkosKernels' kkmem: two-level hashmap accumulator
// with dynamic scheduling; unsorted output only (Table 1: "Any/Unsorted").
// A sorted request is honored by sorting rows afterwards, mirroring how a
// user of such a library would have to post-process.
func kokkosMultiply[V semiring.Value, R semiring.Ring[V]](ring R, a, b *matrix.CSRG[V], opt *OptionsG[V]) (*matrix.CSRG[V], error) {
	inner := *opt
	inner.Unsorted = true
	cfg := twoPhaseConfig[V]{
		schedule: sched.Dynamic,
		grain:    64,
		factory: func(ctx *ContextG[V], w int, bound int64) rowAcc[V] {
			return accum.NewTwoLevelHashG[V](0)
		},
	}
	c, err := twoPhase(ring, a, b, &inner, cfg)
	if err != nil {
		return nil, err
	}
	if !opt.Unsorted {
		mSortPost.Inc()
		start := statsNow(opt.Stats)
		c.SortRows()
		opt.Stats.addPhase(PhaseAssemble, statsSince(opt.Stats, start))
	}
	return c, nil
}
