package spgemm

import (
	"fmt"

	"repro/internal/matrix"
	"repro/internal/sched"
	"repro/internal/semiring"
)

// mergeMultiply is an iterative row-merging SpGEMM in the style of
// ViennaCL / Gremse et al.: the contributing (sorted) rows of B are merged
// pairwise, round after round, like the merge phase of merge sort, combining
// duplicate columns as they meet. One-phase with growable per-worker output
// buffers; output is inherently sorted.
func mergeMultiply[V semiring.Value, R semiring.Ring[V]](ring R, a, b *matrix.CSRG[V], opt *OptionsG[V]) (*matrix.CSRG[V], error) {
	if !b.Sorted {
		return nil, fmt.Errorf("spgemm: merge algorithm requires sorted input rows (B is unsorted)")
	}
	workers := opt.workers()
	if workers > a.Rows && a.Rows > 0 {
		workers = a.Rows
	}
	if workers < 1 {
		workers = 1
	}
	ctx := opt.ctx()
	ctx.ensureWorkers(workers)
	pt := startPhases(opt.Stats, workers)
	flopRow := ctx.perRowFlop(a, b)
	pt.tick(PhasePartition)

	bufCols := make([][]int32, workers)
	bufVals := make([][]V, workers)
	rowNnz := ctx.rowNnzBuf(a.Rows)
	rowWorker := make([]int32, a.Rows)
	rowOffset := make([]int64, a.Rows)

	ctx.parallelFor("numeric", workers, a.Rows, sched.Static, 1, func(w, lo, hi int) {
		// Ping-pong scratch for merge rounds, grown to the largest row —
		// the worker's reusable Scratch pair (A/B) from the call's Context.
		sw := ctx.workerScratch(w)
		var sc [2][]int32
		var sv [2][]V
		// Per-round segment boundaries within the scratch buffers.
		var segs [][2]int64
		var next [][2]int64

		for i := lo; i < hi; i++ {
			f := flopRow[i]
			if int64(len(sc[0])) < f {
				sc[0] = sw.EnsureInt32A(int(f))
				sc[1] = sw.EnsureInt32B(int(f))
				sv[0] = ctx.valScratchA(w, int(f))
				sv[1] = ctx.valScratchB(w, int(f))
			}
			// Round 0: copy each contributing row of B, scaled by a_ik,
			// into scratch 0.
			segs = segs[:0]
			var pos int64
			alo, ahi := a.RowPtr[i], a.RowPtr[i+1]
			for p := alo; p < ahi; p++ {
				k := a.ColIdx[p]
				av := a.Val[p]
				blo, bhi := b.RowPtr[k], b.RowPtr[k+1]
				if blo == bhi {
					continue
				}
				start := pos
				for q := blo; q < bhi; q++ {
					sc[0][pos] = b.ColIdx[q]
					sv[0][pos] = ring.Mul(av, b.Val[q])
					pos++
				}
				segs = append(segs, [2]int64{start, pos})
			}

			// Merge rounds: combine segment pairs until one remains.
			cur := 0
			for len(segs) > 1 {
				nxt := cur ^ 1
				next = next[:0]
				var out int64
				for s := 0; s+1 < len(segs); s += 2 {
					start := out
					out = mergeSegments(
						ring,
						sc[cur], sv[cur], segs[s], segs[s+1],
						sc[nxt], sv[nxt], out,
					)
					next = append(next, [2]int64{start, out})
				}
				if len(segs)%2 == 1 {
					// Odd segment carries over verbatim.
					last := segs[len(segs)-1]
					start := out
					copy(sc[nxt][out:], sc[cur][last[0]:last[1]])
					copy(sv[nxt][out:], sv[cur][last[0]:last[1]])
					out += last[1] - last[0]
					next = append(next, [2]int64{start, out})
				}
				segs, next = next, segs
				cur = nxt
			}

			var n int64
			if len(segs) == 1 {
				n = segs[0][1] - segs[0][0]
				rowOffset[i] = int64(len(bufCols[w]))
				bufCols[w] = append(bufCols[w], sc[cur][segs[0][0]:segs[0][1]]...)
				bufVals[w] = append(bufVals[w], sv[cur][segs[0][0]:segs[0][1]]...)
			} else {
				rowOffset[i] = int64(len(bufCols[w]))
			}
			rowNnz[i] = n
			rowWorker[i] = int32(w)
		}
		if ws := pt.worker(w); ws != nil {
			ws.Rows += int64(hi - lo)
			ws.Flop += rangeFlop(flopRow, lo, hi)
		}
	})
	pt.tick(PhaseNumeric)

	rowPtr := ctx.prefixSum(rowNnz, nil, workers)
	c := outputShell[V](a.Rows, b.Cols, rowPtr, true)
	pt.tick(PhaseAlloc)
	ctx.parallelFor("assemble", workers, a.Rows, sched.Static, 1, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			src := rowWorker[i]
			off := rowOffset[i]
			n := rowNnz[i]
			copy(c.ColIdx[rowPtr[i]:rowPtr[i]+n], bufCols[src][off:off+n])
			copy(c.Val[rowPtr[i]:rowPtr[i]+n], bufVals[src][off:off+n])
		}
	})
	pt.tick(PhaseAssemble)
	pt.finish()
	return c, nil
}

// mergeSegments merges two sorted segments of (srcC, srcV), combining equal
// columns with ring.Add, into (dstC, dstV) starting at out; returns the new
// output cursor.
//
//spgemm:hotpath
func mergeSegments[V semiring.Value, R semiring.Ring[V]](ring R, srcC []int32, srcV []V, s1, s2 [2]int64, dstC []int32, dstV []V, out int64) int64 {
	p, pe := s1[0], s1[1]
	q, qe := s2[0], s2[1]
	for p < pe && q < qe {
		cp, cq := srcC[p], srcC[q]
		switch {
		case cp < cq:
			dstC[out] = cp
			dstV[out] = srcV[p]
			p++
		case cq < cp:
			dstC[out] = cq
			dstV[out] = srcV[q]
			q++
		default:
			dstC[out] = cp
			dstV[out] = ring.Add(srcV[p], srcV[q])
			p++
			q++
		}
		out++
	}
	for ; p < pe; p++ {
		dstC[out] = srcC[p]
		dstV[out] = srcV[p]
		out++
	}
	for ; q < qe; q++ {
		dstC[out] = srcC[q]
		dstV[out] = srcV[q]
		out++
	}
	return out
}
