// Package mempool implements the memory-management schemes of the paper's
// Section 3.2.
//
// The paper finds that on KNL, deallocating one large shared allocation
// ("single") costs orders of magnitude more than letting each thread
// allocate and free its own share ("parallel"), and that SpGEMM should
// therefore size thread-private scratch up front and reuse it across rows.
// This package provides (a) per-worker reusable scratch buffers with
// ensure-capacity semantics — the allocate-once, reinitialize-per-row
// discipline of the Hash/Heap SpGEMM kernels — and (b) the single/parallel
// allocation round-trip measurements behind Figure 4.
package mempool

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/sched"
)

// Scratch observability: growth happens only when a buffer's high-water mark
// rises, so these updates are off the per-row hot path by construction.
var (
	mGrow = obs.NewCounter("mempool_grow_events_total",
		"scratch buffer growth (re)allocations past the high-water mark")
	mLive = obs.NewGauge("mempool_live_bytes",
		"bytes currently held by per-worker scratch buffers")
)

// grew records one buffer growth from oldCap to n elements of elemSize bytes.
func grew(oldCap, n, elemSize int) {
	mGrow.Inc()
	mLive.Add(int64(n-oldCap) * int64(elemSize))
}

// LiveBytes returns the bytes currently held by per-worker scratch buffers
// process-wide — the mempool_live_bytes gauge. Bounded-memory smokes assert
// against it after an out-of-core run.
func LiveBytes() int64 { return mLive.Value() }

// Scratch is one worker's reusable scratch space. Slices only ever grow;
// reusing a Scratch across rows therefore performs no allocation after the
// high-water mark is reached — the paper's "allocate the table once per
// thread, reinitialize per row" discipline.
type Scratch struct {
	Int32A   []int32
	Int32B   []int32
	Int64A   []int64
	Float64  []float64
	Float64B []float64
}

// EnsureInt32A returns s.Int32A with length at least n (contents undefined).
func (s *Scratch) EnsureInt32A(n int) []int32 {
	if cap(s.Int32A) < n {
		grew(cap(s.Int32A), n, 4)
		s.Int32A = make([]int32, n)
	}
	s.Int32A = s.Int32A[:n]
	return s.Int32A
}

// EnsureInt32B returns s.Int32B with length at least n (contents undefined).
func (s *Scratch) EnsureInt32B(n int) []int32 {
	if cap(s.Int32B) < n {
		grew(cap(s.Int32B), n, 4)
		s.Int32B = make([]int32, n)
	}
	s.Int32B = s.Int32B[:n]
	return s.Int32B
}

// EnsureInt64A returns s.Int64A with length at least n (contents undefined).
func (s *Scratch) EnsureInt64A(n int) []int64 {
	if cap(s.Int64A) < n {
		grew(cap(s.Int64A), n, 8)
		s.Int64A = make([]int64, n)
	}
	s.Int64A = s.Int64A[:n]
	return s.Int64A
}

// EnsureFloat64 returns s.Float64 with length at least n (contents undefined).
func (s *Scratch) EnsureFloat64(n int) []float64 {
	if cap(s.Float64) < n {
		grew(cap(s.Float64), n, 8)
		s.Float64 = make([]float64, n)
	}
	s.Float64 = s.Float64[:n]
	return s.Float64
}

// EnsureFloat64B returns s.Float64B with length at least n (contents
// undefined). A second float64 buffer for kernels that ping-pong between two
// (the merge SpGEMM rounds).
func (s *Scratch) EnsureFloat64B(n int) []float64 {
	if cap(s.Float64B) < n {
		grew(cap(s.Float64B), n, 8)
		s.Float64B = make([]float64, n)
	}
	s.Float64B = s.Float64B[:n]
	return s.Float64B
}

// Pool is a set of per-worker Scratch spaces. Worker w owns Get(w); no
// locking is needed because each worker only touches its own entry.
type Pool struct {
	scratch []Scratch
}

// NewPool returns a pool with one Scratch per worker.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = sched.DefaultWorkers()
	}
	return &Pool{scratch: make([]Scratch, workers)}
}

// Workers returns the number of per-worker slots.
func (p *Pool) Workers() int { return len(p.scratch) }

// Get returns worker w's scratch space.
func (p *Pool) Get(w int) *Scratch { return &p.scratch[w] }

// Ensure grows the pool to at least workers slots, preserving the existing
// Scratch spaces (and their high-water-mark buffers). A no-op when the pool
// is already large enough. Must not be called while workers are using the
// pool; spgemm.Context calls it between parallel regions.
func (p *Pool) Ensure(workers int) {
	if workers <= len(p.scratch) {
		return
	}
	grown := make([]Scratch, workers)
	copy(grown, p.scratch)
	p.scratch = grown
}

// ---------------------------------------------------------------------------
// Transient checkout: a process-wide Scratch free list.
// ---------------------------------------------------------------------------

// The per-worker Pool covers parallel regions, where worker w owns Get(w).
// Sequential driver code (graph-app post-passes, per-iteration compaction)
// also needs reusable temp buffers but has no worker index; it checks a
// Scratch out of this free list and returns it when done. Checkouts are
// expected to be coarse — per call or per iteration, never per row — so one
// mutex round trip each way is noise.
var (
	freeMu   sync.Mutex
	freeList []*Scratch

	mOutstanding = obs.NewGauge("mempool_acquired_scratch",
		"Scratch buffers checked out via Acquire and not yet Released")
)

// Acquire checks a Scratch out of the process-wide free list, allocating a
// fresh one when the list is empty. Every Acquire must be paired with exactly
// one Release on all control-flow paths, early returns and panics included —
// `defer mempool.Release(s)` directly after Acquire is the recommended form.
// The pairing is enforced by spgemm-lint's poolpair analyzer.
func Acquire() *Scratch {
	mOutstanding.Add(1)
	freeMu.Lock()
	if n := len(freeList); n > 0 {
		s := freeList[n-1]
		freeList = freeList[:n-1]
		freeMu.Unlock()
		return s
	}
	freeMu.Unlock()
	return &Scratch{}
}

// Release returns a Scratch obtained from Acquire to the free list. The
// caller must not use s afterwards. The buffers keep their high-water-mark
// capacity, so a steady-state Acquire/use/Release cycle allocates nothing.
func Release(s *Scratch) {
	if s == nil {
		return
	}
	mOutstanding.Add(-1)
	freeMu.Lock()
	freeList = append(freeList, s)
	freeMu.Unlock()
}

// ---------------------------------------------------------------------------
// Figure 4: single vs parallel allocation/deallocation round trips.
// ---------------------------------------------------------------------------

// AllocTiming reports the cost of one allocate–touch–release round trip.
// In Go "release" means dropping the last reference and forcing a collection,
// which is the closest observable analogue of delete/scalable_free.
type AllocTiming struct {
	Alloc   time.Duration // allocation + first touch
	Dealloc time.Duration // release + forced GC
}

// touchPageSize is the stride used for first-touch writes; 4KiB matches the
// default page size the paper's first-touch costs are governed by.
const touchPageSize = 4096

// MeasureSingle performs the paper's "single" scheme: one goroutine
// allocates totalBytes, touches every page, then releases the whole block.
func MeasureSingle(totalBytes int) AllocTiming {
	start := time.Now()
	buf := make([]byte, totalBytes)
	for i := 0; i < len(buf); i += touchPageSize {
		buf[i] = 1
	}
	alloc := time.Since(start)

	start = time.Now()
	sink(buf)
	buf = nil
	_ = buf
	runtime.GC()
	dealloc := time.Since(start)
	return AllocTiming{Alloc: alloc, Dealloc: dealloc}
}

// MeasureParallel performs the paper's "parallel" scheme of Figure 3: each
// of the workers allocates totalBytes/workers, touches its own pages, and
// releases its own share. The release phase still needs one GC cycle, but
// the allocation, touching and unlinking are all thread-local.
func MeasureParallel(totalBytes, workers int) AllocTiming {
	if workers <= 0 {
		workers = sched.DefaultWorkers()
	}
	each := totalBytes / workers
	if each < 1 {
		each = 1
	}
	bufs := make([][]byte, workers)

	start := time.Now()
	sched.RunWorkers(workers, func(w int) {
		b := make([]byte, each)
		for i := 0; i < len(b); i += touchPageSize {
			b[i] = 1
		}
		bufs[w] = b
	})
	alloc := time.Since(start)

	start = time.Now()
	sched.RunWorkers(workers, func(w int) {
		sink(bufs[w])
		bufs[w] = nil
	})
	runtime.GC()
	dealloc := time.Since(start)
	return AllocTiming{Alloc: alloc, Dealloc: dealloc}
}

// sinkByte defeats dead-store elimination of the touch loops. It is written
// concurrently by every worker of MeasureParallel, so the update is atomic.
var sinkByte atomic.Uint32

func sink(b []byte) {
	if len(b) > 0 {
		sinkByte.Add(uint32(b[0]))
	}
}
