package mempool

import (
	"testing"
)

func TestScratchEnsureGrowsAndReuses(t *testing.T) {
	var s Scratch
	a := s.EnsureInt32A(10)
	if len(a) != 10 {
		t.Fatalf("len = %d", len(a))
	}
	a[5] = 42
	// Shrinking request must not reallocate.
	b := s.EnsureInt32A(4)
	if len(b) != 4 {
		t.Fatalf("len = %d", len(b))
	}
	if &b[0] != &a[0] {
		t.Fatal("shrink reallocated")
	}
	// Growing request reallocates.
	c := s.EnsureInt32A(100)
	if len(c) != 100 {
		t.Fatalf("len = %d", len(c))
	}
}

func TestScratchAllBuffers(t *testing.T) {
	var s Scratch
	if len(s.EnsureInt32B(7)) != 7 {
		t.Fatal("Int32B")
	}
	if len(s.EnsureInt64A(8)) != 8 {
		t.Fatal("Int64A")
	}
	if len(s.EnsureFloat64(9)) != 9 {
		t.Fatal("Float64")
	}
	// Buffers are independent.
	s.EnsureInt32A(3)[0] = 1
	s.EnsureInt32B(3)[0] = 2
	if s.Int32A[0] == s.Int32B[0] {
		t.Fatal("buffers alias")
	}
}

func TestPoolPerWorkerIsolation(t *testing.T) {
	p := NewPool(4)
	if p.Workers() != 4 {
		t.Fatalf("Workers = %d", p.Workers())
	}
	p.Get(0).EnsureFloat64(5)[0] = 1.5
	p.Get(1).EnsureFloat64(5)[0] = 2.5
	if p.Get(0).Float64[0] != 1.5 || p.Get(1).Float64[0] != 2.5 {
		t.Fatal("worker scratch not isolated")
	}
}

func TestPoolDefaultWorkers(t *testing.T) {
	p := NewPool(0)
	if p.Workers() < 1 {
		t.Fatalf("Workers = %d", p.Workers())
	}
}

func TestMeasureSingleReturnsPositiveTimes(t *testing.T) {
	res := MeasureSingle(1 << 20)
	if res.Alloc <= 0 || res.Dealloc <= 0 {
		t.Fatalf("timings = %+v", res)
	}
}

func TestMeasureParallelReturnsPositiveTimes(t *testing.T) {
	res := MeasureParallel(1<<20, 4)
	if res.Alloc <= 0 || res.Dealloc <= 0 {
		t.Fatalf("timings = %+v", res)
	}
}

func TestMeasureParallelTinySize(t *testing.T) {
	// totalBytes smaller than worker count must not panic or allocate zero.
	res := MeasureParallel(2, 8)
	if res.Alloc <= 0 {
		t.Fatalf("timings = %+v", res)
	}
}

func TestScratchEnsureFloat64B(t *testing.T) {
	var s Scratch
	b1 := s.EnsureFloat64B(100)
	if len(b1) != 100 {
		t.Fatalf("len = %d", len(b1))
	}
	b1[99] = 7
	b2 := s.EnsureFloat64B(50)
	if len(b2) != 50 || cap(b2) < 100 {
		t.Fatalf("shrink reallocated: len=%d cap=%d", len(b2), cap(b2))
	}
	// Independent of the primary float64 buffer.
	f := s.EnsureFloat64(10)
	if &f[0] == &b2[0] {
		t.Fatal("Float64 and Float64B alias")
	}
}

func TestPoolEnsureGrowsPreservingScratch(t *testing.T) {
	p := NewPool(2)
	p.Get(1).EnsureInt32A(64)[0] = 42
	p.Ensure(5)
	if p.Workers() != 5 {
		t.Fatalf("Workers = %d, want 5", p.Workers())
	}
	if got := p.Get(1).Int32A; len(got) != 64 || got[0] != 42 {
		t.Fatalf("scratch not preserved across Ensure: len=%d", len(got))
	}
	p.Ensure(3) // shrink request is a no-op
	if p.Workers() != 5 {
		t.Fatalf("Workers shrank to %d", p.Workers())
	}
}

func TestAcquireReleaseRecyclesScratch(t *testing.T) {
	// Drain anything other tests parked so the identity check below is
	// deterministic for this test's own buffers.
	var drained []*Scratch
	for i := 0; i < 64; i++ {
		drained = append(drained, Acquire())
	}
	s := drained[len(drained)-1]
	s.EnsureInt64A(1 << 10)[0] = 11
	Release(s)
	got := Acquire()
	if got != s {
		t.Fatal("Acquire did not pop the most recently released Scratch")
	}
	if cap(got.Int64A) < 1<<10 {
		t.Fatalf("high-water capacity lost: cap=%d", cap(got.Int64A))
	}
	Release(got)
	for _, d := range drained[:len(drained)-1] {
		Release(d)
	}
	// Release(nil) must be a safe no-op (deferred releases on error paths).
	Release(nil)
}
